package seculator

import (
	"seculator/internal/parallel"
	"seculator/internal/runner"
	"seculator/internal/secure"
)

// SetParallelism sets the worker count every fan-out in the experiment
// engine uses — runner.RunAll's design fan-out, the sweeps, the figure
// experiments, the attack matrix and the fault campaign. n <= 0 restores
// the default (GOMAXPROCS). All experiment outputs are deterministic in
// the worker count: results land by index, never by completion order.
func SetParallelism(n int) { parallel.SetWorkers(n) }

// Parallelism returns the current worker count.
func Parallelism() int { return parallel.Workers() }

// SetInferParallelism sets the process-default worker count for the
// *intra-inference* crypto pipeline: per-tile AES-CTR keystreams and
// SHA-256 block MACs are sharded across workers and folded back with the
// commutative XOR-MAC, so the output tensor and every MAC register are
// bit-identical to the serial run at any worker count. n <= 1 restores
// serial execution. Per-call overrides (InferenceOptions.Parallel,
// SessionOptions.Parallel) take precedence; the SECULATOR_INFER_PARALLEL
// environment variable seeds the initial default.
func SetInferParallelism(n int) { secure.SetDefaultParallel(n) }

// InferParallelism returns the current process-default intra-inference
// worker count (1 = serial).
func InferParallelism() int { return secure.DefaultParallel() }

// CacheStats is a snapshot of the memoizing simulation cache's counters.
type CacheStats = parallel.MemoStats

// SimCacheStats reports the simulation cache's hits, misses and resident
// entries. Experiments share (network, design, config) points — Fig4 and
// Fig5 reuse every point, the sweeps re-run the base configuration per
// knob — so a full regeneration shows a substantial hit count.
func SimCacheStats() CacheStats { return runner.CacheStats() }

// ResetSimCache discards every memoized simulation result. Long-lived
// hosts call it to bound memory; tests call it to force cold runs.
func ResetSimCache() { runner.ResetCache() }

// ResetSimCacheStats zeroes the cache's hit/miss counters without evicting
// any entry, so a long-running process (the serving daemon's /metrics
// scraper, a soak test) can window the counters — hit rate since the last
// reset — instead of only accumulating since process start.
func ResetSimCacheStats() { runner.ResetCacheStats() }
