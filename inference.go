package seculator

import (
	"context"

	"seculator/internal/attack"
	"seculator/internal/nn"
	"seculator/internal/secure"
	"seculator/internal/trace"
	"seculator/internal/workload"
)

// Tensor is a dense int32 activation volume (channel-major, row-major);
// integer arithmetic keeps the tiled secure execution bit-comparable to the
// direct reference.
type Tensor = nn.Tensor

// NewTensor allocates a zero activation tensor.
func NewTensor(chans, h, w int) *Tensor { return nn.NewTensor(chans, h, w) }

// ModelWeights is the filter tensor of one layer.
type ModelWeights = nn.Weights

// RandomModel builds deterministic random weights and input for a network.
func RandomModel(net Network, seed int64) (*Tensor, []*ModelWeights) {
	return nn.RandomModel(net, seed)
}

// ReferenceInference runs the network through the direct (unprotected)
// reference computation — the golden model.
func ReferenceInference(net Network, in *Tensor, weights []*ModelWeights) (*Tensor, error) {
	return nn.ForwardNetwork(net, in, weights)
}

// InferenceResult is the outcome of a secure functional inference.
type InferenceResult = secure.Result

// SecureInferenceHook lets callers (tests, demos) interpose an attacker
// between execution phases; see secure.Hook.
type SecureInferenceHook = secure.Hook

// SecureInference executes the network functionally through Seculator's
// full protection path — AES-CTR encrypted DRAM, FSM-generated version
// numbers, XOR-MAC layer verification — and returns the decrypted output,
// which is guaranteed (and tested) to be bit-identical to
// ReferenceInference. A non-nil hook can mutate DRAM between phases; any
// resulting integrity violation aborts the run.
func SecureInference(net Network, in *Tensor, weights []*ModelWeights, hook SecureInferenceHook) (InferenceResult, error) {
	return SecureInferenceContext(context.Background(), net, in, weights, InferenceOptions{Hook: hook})
}

// InferenceOptions tunes a secure functional inference.
type InferenceOptions struct {
	// Hook, when non-nil, interposes an attacker between execution phases.
	Hook SecureInferenceHook
	// Injector, when non-nil, attaches a fault injector to the DRAM's
	// functional read/write paths.
	Injector FaultInjector
	// Retry overrides the layer-level recovery policy; the zero value uses
	// DefaultRetryPolicy().
	Retry RetryPolicy
	// Parallel is the intra-inference crypto worker count: 0 uses the
	// process default (SetInferParallelism / SECULATOR_INFER_PARALLEL),
	// 1 forces serial execution, >1 shards block MACs and keystreams
	// across that many workers. Output and MAC digests are bit-identical
	// at any setting.
	Parallel int
}

// SecureInferenceContext is SecureInference with cancellation and full
// control over fault injection and the layer-level detect-and-recover
// policy. The returned result carries per-run recovery statistics.
func SecureInferenceContext(ctx context.Context, net Network, in *Tensor, weights []*ModelWeights, opts InferenceOptions) (InferenceResult, error) {
	x := secure.NewExecutor()
	x.AfterPhase = opts.Hook
	x.Injector = opts.Injector
	x.Parallel = opts.Parallel
	if opts.Retry != (RetryPolicy{}) {
		x.Retry = opts.Retry
	}
	return x.Run(ctx, net, in, weights)
}

// TransformerConfig shapes an encoder-only transformer built from the tiled
// matmuls of Table 4.
type TransformerConfig = workload.TransformerConfig

// BERTBase returns the canonical BERT-base encoder shape (~85 M params).
func BERTBase() TransformerConfig { return workload.BERTBase() }

// TinyTransformer returns a small configuration for quick experiments.
func TinyTransformer() TransformerConfig { return workload.TinyTransformer() }

// Transformer builds the encoder network for a configuration.
func Transformer(cfg TransformerConfig) (Network, error) { return workload.Transformer(cfg) }

// MemoryTrace is a captured address trace with attacker-view analyses
// (footprints, boundary inference, entropy).
type MemoryTrace = trace.Trace

// CaptureTrace simulates (network, design) and records the bus-visible
// address trace.
func CaptureTrace(n Network, d Design, cfg Config) (*MemoryTrace, error) {
	return trace.Capture(context.Background(), n, d, cfg)
}

// CaptureTraceContext is CaptureTrace with cancellation between layers.
func CaptureTraceContext(ctx context.Context, n Network, d Design, cfg Config) (*MemoryTrace, error) {
	return trace.Capture(ctx, n, d, cfg)
}

// DetectionCell is one (design, attack) outcome of the behavioural
// detection matrix.
type DetectionCell = attack.DetectionCell

// DetectionAttack names one attack of the matrix.
type DetectionAttack = attack.MatrixAttack

// The detection-matrix attack rows, in Table 5 order. AttackReplay restores
// a stale ciphertext alone (a stale-VN fault); the WithMAC variants also
// restore/swap the matching MAC lines — the coherent attacks only
// layer-level verification catches structurally.
const (
	AttackNone          = attack.AttackNone
	AttackTamper        = attack.AttackTamper
	AttackReplay        = attack.AttackReplay
	AttackReplayWithMAC = attack.AttackReplayWithMAC
	AttackSplice        = attack.AttackSplice
	AttackSpliceWithMAC = attack.AttackSpliceWithMAC
)

// DetectionMatrix mounts tamper/replay/splice attacks (with and without
// coherent MAC manipulation) against every design's functional memory and
// reports who detects what — the behavioural validation of Table 5.
func DetectionMatrix(s AttackScenario) ([]DetectionCell, error) {
	return attack.DetectionMatrix(context.Background(), s)
}

// DetectionMatrixContext is DetectionMatrix with cancellation between
// cells.
func DetectionMatrixContext(ctx context.Context, s AttackScenario) ([]DetectionCell, error) {
	return attack.DetectionMatrix(ctx, s)
}

// DetectionMatrixTable renders the matrix.
func DetectionMatrixTable(s AttackScenario) (Table, error) {
	cells, err := attack.DetectionMatrix(context.Background(), s)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Detection matrix (behavioural Table 5)",
		Header: []string{"design"},
		Notes: []string{
			"DETECTED: integrity error raised; SILENT-CORRUPT: consumer got wrong data unnoticed; ok: honest run",
		},
	}
	for _, a := range attack.MatrixAttacks() {
		t.Header = append(t.Header, a.String())
	}
	rows := map[Design][]string{}
	var order []Design
	for _, c := range cells {
		if _, ok := rows[c.Design]; !ok {
			rows[c.Design] = []string{c.Design.String()}
			order = append(order, c.Design)
		}
		cell := "ok"
		switch {
		case c.Detected:
			cell = "DETECTED"
		case c.Corrupted:
			cell = "SILENT-CORRUPT"
		}
		rows[c.Design] = append(rows[c.Design], cell)
	}
	for _, d := range order {
		t.Rows = append(t.Rows, rows[d])
	}
	return t, nil
}
