package seculator

import (
	"seculator/internal/attack"
	"seculator/internal/hw"
	"seculator/internal/mem"
	"seculator/internal/widen"
)

// AttackScenario shapes the functional two-layer execution that the attack
// API mounts its attacks against.
type AttackScenario = attack.Scenario

// AttackLayout tells an attacker where the victim's data lives in DRAM.
type AttackLayout = attack.Layout

// Attacker mutates DRAM between execution phases — the threat model's
// physical adversary.
type Attacker = attack.Mutator

// DRAM is the functional memory an Attacker manipulates (tamper, snapshot,
// restore, swap).
type DRAM = mem.DRAM

// DefaultAttackScenario returns a small but non-trivial execution.
func DefaultAttackScenario() AttackScenario { return attack.DefaultScenario() }

// RunAttack executes two layers on the functional Seculator memory with
// optional attacker hooks: midLayer runs after the first version sweep
// (where replay snapshots are taken), mutate runs before the consumer layer
// reads. A nil error means verification passed (honest run); an attack is
// detected when the error wraps the integrity failure.
func RunAttack(s AttackScenario, midLayer, mutate Attacker) error {
	return attack.RunSeculator(s, midLayer, mutate)
}

// Eavesdrop runs an honest execution and reports what a bus snooper learns:
// how many ciphertext blocks equal their (all-zero) plaintext, and the byte
// histogram of the ciphertext.
func Eavesdrop(s AttackScenario) (leaks int, histogram [256]int, err error) {
	return attack.Eavesdrop(s)
}

// NetworkLeakage quantifies model-extraction leakage: the attacker observes
// observedNet's address footprints and reconstructs layer shapes, scored
// against realNet (0 = perfect extraction; grows under widening).
func NetworkLeakage(realNet, observedNet Network, cfg Config) (float64, error) {
	return attack.NetworkLeakage(realNet, observedNet, cfg.NPU, cfg.DRAM)
}

// WidenNetwork scales every layer's spatial extent by factor (>= 1) with
// junk padding — Seculator+'s MEA countermeasure (Section 7.5).
func WidenNetwork(n Network, factor float64) (Network, error) {
	return widen.Network(n, factor)
}

// WidenLayer pads one layer's input geometry up to (h, w, c).
func WidenLayer(l Layer, h, w, c int) (Layer, error) { return widen.Layer(l, h, w, c) }

// WideningReport quantifies the data-volume cost of widening.
type WideningReport = widen.Report

// CompareWidening sums the activation volumes of the original and widened
// networks.
func CompareWidening(orig, widened Network) WideningReport { return widen.Compare(orig, widened) }

// DummyNetwork builds a decoy network for MEA noise injection.
func DummyNetwork(name string, layers, h, w, c, k int) (Network, error) {
	return widen.Dummy(name, layers, h, w, c, k)
}

// HardwareModule is one synthesized security block of Table 6.
type HardwareModule = hw.Module

// SeculatorHardware returns the security-module inventory (AES-128,
// SHA-256, VN generator) with modeled area and power.
func SeculatorHardware() []HardwareModule { return hw.SeculatorModules() }

// HardwareTotals returns the summed area (µm²) and power (µW) of the
// security modules.
func HardwareTotals() (areaUM2, powerUW float64) {
	ms := hw.SeculatorModules()
	return hw.TotalArea(ms), hw.TotalPower(ms)
}
