// Package seculator is a from-scratch Go reproduction of "Seculator: A Fast
// and Secure Neural Processing Unit" (Shrivastava & Sarangi, HPCA 2023): a
// secure-NPU architecture simulator with functional cryptography.
//
// Seculator protects a DNN accelerator's off-chip data with three ideas:
//
//   - Deterministic version-number generation: the VN sequence of any layer
//     collapses to the master equation (1^η, 2^η, …, κ^η)^ρ, regenerated at
//     runtime by a tiny FSM (package internal/vngen) instead of the VN
//     tables, counter caches or host schedulers of prior work.
//   - Layer-level XOR-MAC integrity: per-block SHA-256 MACs fold into four
//     256-bit registers, and one check — MAC_W = MAC_FR ⊕ MAC_R — verifies
//     a whole layer (package internal/mac).
//   - Seculator+: layer widening and dummy-network noise against model
//     extraction via address traces (package internal/widen).
//
// The package simulates six designs (Baseline, SGX-like Secure, TNPU,
// GuardNN, Seculator, Seculator+) over five CNN benchmarks and regenerates
// the shape of every table and figure in the paper's evaluation; see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Quick start:
//
//	cfg := seculator.DefaultConfig()
//	base, _ := seculator.Run(seculator.ResNet18(), seculator.Baseline, cfg)
//	sec, _ := seculator.Run(seculator.ResNet18(), seculator.Seculator, cfg)
//	fmt.Printf("Seculator overhead: %.1f%%\n", (1/sec.Performance(base)-1)*100)
package seculator

import (
	"context"

	"seculator/internal/mem"
	"seculator/internal/npu"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/workload"
)

// Design identifies one of the six simulated protection schemes (Table 5).
type Design = protect.Design

// The simulated designs, in Table 5 order.
const (
	// Baseline is the unprotected accelerator.
	Baseline = protect.Baseline
	// Secure is the SGX-Client-style configuration (counters + Merkle
	// tree + per-block MACs).
	Secure = protect.Secure
	// TNPU uses a tensor table for VNs and an on-chip MAC cache.
	TNPU = protect.TNPU
	// GuardNN uses host-scheduled VNs and uncached per-block MACs.
	GuardNN = protect.GuardNN
	// Seculator is the paper's design: FSM VNs + layer-level XOR-MACs.
	Seculator = protect.Seculator
	// SeculatorPlus adds model-extraction countermeasures.
	SeculatorPlus = protect.SeculatorPlus
)

// Designs returns all simulated designs in Table 5 order.
func Designs() []Design { return protect.Designs() }

// DesignProperties is the Table 5 security-feature row of a design.
type DesignProperties = protect.Properties

// PropertiesOf returns the Table 5 row for a design.
func PropertiesOf(d Design) DesignProperties { return protect.PropertiesOf(d) }

// Config collects every model parameter: the NPU fabric (Table 1), the
// DRAM model, and the protection machinery.
type Config = runner.Config

// NPUConfig describes the compute fabric (PE array, global buffer, clock).
type NPUConfig = npu.Config

// DRAMConfig describes the memory model.
type DRAMConfig = mem.Config

// ProtectParams are the protection-machinery knobs (cache sizes, crypto
// latencies, host round trips).
type ProtectParams = protect.Params

// DefaultConfig returns the paper's Table 1 system: a 32x32 PE array at
// 2.75 GHz with a 240 KB global buffer, dual-channel DDR4 at 100 cycles,
// an 8 KB MAC cache and a 4 KB counter cache.
func DefaultConfig() Config { return runner.DefaultConfig() }

// Layer is one network layer (shape + kernel + stride).
type Layer = workload.Layer

// LayerType classifies a layer.
type LayerType = workload.LayerType

// Layer types.
const (
	// Conv is a standard convolution.
	Conv = workload.Conv
	// Depthwise is a depthwise convolution.
	Depthwise = workload.Depthwise
	// Pointwise is a 1x1 convolution.
	Pointwise = workload.Pointwise
	// FC is a fully connected layer.
	FC = workload.FC
	// Pool is a pooling layer.
	Pool = workload.Pool
)

// Network is an ordered list of layers.
type Network = workload.Network

// The five benchmark networks of Table 1.
var (
	// MobileNet returns MobileNet-V1 (~4.2 M parameters).
	MobileNet = workload.MobileNet
	// ResNet18 returns ResNet-18 (~11 M parameters).
	ResNet18 = workload.ResNet18
	// AlexNet returns AlexNet (~62 M parameters).
	AlexNet = workload.AlexNet
	// VGG16 returns VGG-16 (~138 M parameters).
	VGG16 = workload.VGG16
	// VGG19 returns VGG-19 (~143 M parameters).
	VGG19 = workload.VGG19
)

// Benchmarks returns the five networks in the paper's order.
func Benchmarks() []Network { return workload.All() }

// NetworkByName looks a benchmark up by name ("MobileNet", "ResNet18",
// "AlexNet", "VGG16", "VGG19").
func NetworkByName(name string) (Network, error) { return workload.ByName(name) }

// Result is the outcome of one (network, design) simulation: total cycles,
// per-class DRAM traffic, per-layer breakdown and metadata-cache stats.
type Result = runner.Result

// LayerResult is the per-layer slice of a Result.
type LayerResult = runner.LayerResult

// Run simulates one network on one design.
func Run(n Network, d Design, cfg Config) (Result, error) {
	return runner.Run(context.Background(), n, d, cfg)
}

// RunContext is Run with a context: the simulation stops between layers
// when ctx is cancelled or its deadline passes.
func RunContext(ctx context.Context, n Network, d Design, cfg Config) (Result, error) {
	return runner.Run(ctx, n, d, cfg)
}

// RunAll simulates a network across several designs.
func RunAll(n Network, designs []Design, cfg Config) ([]Result, error) {
	return runner.RunAll(context.Background(), n, designs, cfg)
}

// RunAllContext is RunAll with a context: cancellation is observed between
// designs and between layers.
func RunAllContext(ctx context.Context, n Network, designs []Design, cfg Config) ([]Result, error) {
	return runner.RunAll(ctx, n, designs, cfg)
}
