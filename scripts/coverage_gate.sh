#!/usr/bin/env bash
# Coverage gate for the crypto/verification core and the serving tier.
# Fails if `go test -cover` for any gated package drops below the floor
# recorded when its gate was introduced (measured values at the time:
# secure 87.8%, mac 68.7%, vngen 97.5%, serve 86.8%, workload 94.5% —
# floors sit a hair below to absorb formatting-level drift, not real
# coverage loss).
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A floor=(
  [seculator/internal/secure]=87.0
  [seculator/internal/mac]=68.0
  [seculator/internal/vngen]=97.0
  [seculator/internal/serve]=85.0
  [seculator/internal/workload]=93.0
)

fail=0
for pkg in "${!floor[@]}"; do
  out=$(go test -cover "$pkg")
  echo "$out"
  pct=$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*')
  if [ -z "$pct" ]; then
    echo "coverage_gate: no coverage figure for $pkg" >&2
    fail=1
    continue
  fi
  if awk -v p="$pct" -v f="${floor[$pkg]}" 'BEGIN { exit !(p < f) }'; then
    echo "coverage_gate: $pkg at ${pct}% is below the ${floor[$pkg]}% floor" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "coverage_gate: FAILED — raise the tests, not the floor" >&2
  exit 1
fi
echo "coverage_gate: all floors held"
