#!/bin/sh
# bench_baseline.sh — snapshot the crypto/MAC/pool microbenchmarks to
# BENCH_baseline.json so perf regressions show up as a diff. Standard
# library + awk only; no external dependencies.
#
# Usage: scripts/bench_baseline.sh [output.json]
set -eu

out="${1:-BENCH_baseline.json}"
cd "$(dirname "$0")/.."

go test -run='^$' -bench='Block|Fold|ParallelSpeedup' -benchtime=100x -benchmem \
	. ./internal/crypto/ ./internal/mac/ |
	awk '
	BEGIN { print "{"; n = 0 }
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		nsop = ""; bop = ""; allocs = ""
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") nsop = $i
			if ($(i+1) == "B/op") bop = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		if (nsop == "") next
		if (n++) printf ",\n"
		printf "  \"%s\": {\"ns_per_op\": %s", name, nsop
		if (bop != "") printf ", \"bytes_per_op\": %s", bop
		if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
		printf "}"
	}
	END { print "\n}" }
	' >"$out"

echo "wrote $out:"
cat "$out"
