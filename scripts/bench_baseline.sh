#!/bin/sh
# bench_baseline.sh — snapshot the crypto/MAC/pool microbenchmarks plus the
# HTTP serving-path benchmarks to BENCH_baseline.json so perf regressions
# show up as a diff. Standard library + awk only; no external dependencies.
#
# Schema: top-level keys are the historical microbenchmark entries
# (unchanged), the serving figures nest under one "serve" key, and the
# end-to-end secure-inference figures (serial vs parallel worker counts)
# nest under one "infer" key:
#
#   {
#     "BenchmarkEncryptBlock": {"ns_per_op": ..., ...},
#     ...
#     "infer": {
#       "BenchmarkSecureInference/deep/serial": {"ns_per_op": ..., ...},
#       ...
#     },
#     "serve": {
#       "BenchmarkServeInfer": {"ns_per_op": ..., ...},
#       ...
#     },
#     "gateway": {
#       "BenchmarkGatewayInfer": {"ns_per_op": ..., ...},
#       ...
#     }
#   }
#
# Usage: scripts/bench_baseline.sh [output.json]
set -eu

out="${1:-BENCH_baseline.json}"
cd "$(dirname "$0")/.."

# entries <indent> — read `go test -bench` output on stdin, emit one JSON
# member per benchmark line (no surrounding braces, no trailing comma).
entries() {
	awk -v pad="$1" '
	BEGIN { n = 0 }
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		nsop = ""; bop = ""; allocs = ""
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") nsop = $i
			if ($(i+1) == "B/op") bop = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		if (nsop == "") next
		if (n++) printf ",\n"
		printf "%s\"%s\": {\"ns_per_op\": %s", pad, name, nsop
		if (bop != "") printf ", \"bytes_per_op\": %s", bop
		if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
		printf "}"
	}
	'
}

micro=$(go test -run='^$' -bench='Block|Fold|ParallelSpeedup' -benchtime=100x -benchmem \
	. ./internal/crypto/ ./internal/mac/ | entries '  ')

# End-to-end secure inference: small + deep CNNs, serial vs 8-way sharded
# crypto. Few iterations — each op is a full encrypted, MAC-verified run.
infer=$(go test -run='^$' -bench='SecureInference' -benchtime=5x -benchmem \
	. | entries '    ')

# Serving path: full HTTP round-trips through scheduler + secure executor.
# 50 iterations — each op is an entire inference, but the admission-path
# guard (scripts/bench_guard.sh) compares against these figures, so they
# need to be stable, not just cheap.
serve=$(go test -run='^$' -bench='Serve' -benchtime=50x -benchmem \
	./internal/serve/ | entries '    ')

# Gateway front tier: the same inference through one extra HTTP hop plus
# routing — the delta against the serve figures is the proxy overhead.
gway=$(go test -run='^$' -bench='Gateway' -benchtime=50x -benchmem \
	./internal/gateway/ | entries '    ')

{
	echo "{"
	printf '%s,\n' "$micro"
	echo '  "infer": {'
	printf '%s\n' "$infer"
	echo "  },"
	echo '  "serve": {'
	printf '%s\n' "$serve"
	echo "  },"
	echo '  "gateway": {'
	printf '%s\n' "$gway"
	echo "  }"
	echo "}"
} >"$out"

echo "wrote $out:"
cat "$out"
