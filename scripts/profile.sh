#!/bin/sh
# profile.sh — capture CPU and allocation profiles of the serving hot path.
#
# Runs the in-process load generator (server + generator in one process, so
# one profile covers the full request path: HTTP decode, scheduler,
# secure executor, MAC pipeline, encode) and writes pprof files ready for
# `go tool pprof`. The allocation profile is the steady-state allocation
# budget's evidence file: after the arena/pool work (DESIGN.md §15) the
# top of `alloc_objects` should be session/handshake setup and Go runtime
# internals, not per-request serving code.
#
# Usage: scripts/profile.sh [outdir] [extra seculator-serve flags...]
#   outdir — where cpu.pprof / mem.pprof / loadgen.log land
#            (default ./profiles).
#
# Examples:
#   scripts/profile.sh
#   scripts/profile.sh /tmp/prof -network Deep -rps 50 -duration 10s
#   go tool pprof -top profiles/mem.pprof
#   go tool pprof -http=:6060 profiles/cpu.pprof
set -eu

outdir="${1:-profiles}"
[ $# -gt 0 ] && shift
cd "$(dirname "$0")/.."
mkdir -p "$outdir"

echo "profile: building seculator-serve..."
go build -o "$outdir/seculator-serve" ./cmd/seculator-serve

echo "profile: driving in-process loadgen (profiles in $outdir)..."
"$outdir/seculator-serve" -loadgen \
	-cpuprofile "$outdir/cpu.pprof" -memprofile "$outdir/mem.pprof" \
	-fixed-model -rps 200 -duration 5s \
	"$@" | tee "$outdir/loadgen.log"

echo "profile: wrote $outdir/cpu.pprof and $outdir/mem.pprof"
echo "profile: inspect with:"
echo "  go tool pprof -top $outdir/cpu.pprof"
echo "  go tool pprof -top -sample_index=alloc_objects $outdir/mem.pprof"
