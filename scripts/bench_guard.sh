#!/bin/sh
# bench_guard.sh — regression guard for the serving-path benchmarks.
#
# Re-runs the serve benchmarks and compares each ns/op figure against the
# committed BENCH_baseline.json "serve" section. Fails when the serial
# path (BenchmarkServeInfer) regresses beyond the tolerance factor, so
# admission-layer changes (tenant gates, fair queue) cannot silently tax
# the per-request hot path. Other serve entries are reported but only the
# serial path gates — the parallel/session figures wobble more on shared
# runners.
#
# Usage: scripts/bench_guard.sh [tolerance]
#   tolerance — allowed ns/op growth factor for BenchmarkServeInfer
#               (default 2.0: generous for CI noise, tight enough to catch
#               an accidental O(n) admission scan or lock convoy).
set -eu

tol="${1:-2.0}"
cd "$(dirname "$0")/.."

baseline_ns() {
	# Pull "Benchmark<name>": {"ns_per_op": N, ...} out of the named
	# section ($2, default "serve") of BENCH_baseline.json.
	awk -v name="$1" -v section="\"${2:-serve}\": {" '
	index($0, section) { inserve = 1 }
	inserve && $0 ~ "\"" name "\":" {
		if (match($0, /"ns_per_op": [0-9.]+/)) {
			s = substr($0, RSTART, RLENGTH)
			sub(/.*: /, "", s)
			print s
			exit
		}
	}
	' BENCH_baseline.json
}

echo "bench_guard: running serve benchmarks (20 iterations each)..."
out=$(go test -run='^$' -bench='Serve' -benchtime=20x ./internal/serve/)
echo "$out" | grep '^Benchmark' || { echo "bench_guard: no benchmark output"; exit 1; }

fail=0
for name in BenchmarkServeInfer BenchmarkServeInferParallel BenchmarkServeSessionInfer; do
	old=$(baseline_ns "$name")
	new=$(echo "$out" | awk -v name="$name" '$1 ~ "^" name "(-[0-9]+)?$" { print $3; exit }')
	if [ -z "$old" ] || [ -z "$new" ]; then
		echo "bench_guard: $name missing (baseline='$old' run='$new')"
		fail=1
		continue
	fi
	verdict=$(awk -v o="$old" -v n="$new" -v t="$tol" 'BEGIN {
		ratio = n / o
		printf "%.2fx", ratio
		exit (ratio > t) ? 1 : 0
	}') && ok=1 || ok=0
	echo "bench_guard: $name ${new} ns/op vs baseline ${old} ns/op (${verdict}, tolerance ${tol}x)"
	if [ "$ok" = 0 ] && [ "$name" = "BenchmarkServeInfer" ]; then
		echo "bench_guard: FAIL — serial serving path regressed beyond ${tol}x"
		fail=1
	fi
done

# Gateway front tier: reported for visibility, never gating — the proxied
# path stacks two HTTP hops and wobbles too much on shared runners.
echo "bench_guard: running gateway benchmarks (20 iterations each)..."
gout=$(go test -run='^$' -bench='Gateway' -benchtime=20x ./internal/gateway/ || true)
for name in BenchmarkGatewayInfer BenchmarkGatewaySessionInfer; do
	old=$(baseline_ns "$name" gateway)
	new=$(echo "$gout" | awk -v name="$name" '$1 ~ "^" name "(-[0-9]+)?$" { print $3; exit }')
	if [ -z "$old" ] || [ -z "$new" ]; then
		echo "bench_guard: $name missing (baseline='$old' run='$new'), not gating"
		continue
	fi
	ratio=$(awk -v o="$old" -v n="$new" 'BEGIN { printf "%.2fx", n / o }')
	echo "bench_guard: $name ${new} ns/op vs baseline ${old} ns/op (${ratio}, informational)"
done
exit "$fail"
