#!/bin/sh
# bench_guard.sh — regression guard for the serving-path benchmarks.
#
# Re-runs the serve benchmarks and compares each figure against the
# committed BENCH_baseline.json "serve" section. Two gates:
#
#   ns/op — fails when the serial path (BenchmarkServeInfer) regresses
#           beyond the tolerance factor, so admission-layer changes
#           (tenant gates, fair queue) cannot silently tax the
#           per-request hot path. Other serve entries are reported but
#           only the serial path gates — the parallel/session figures
#           wobble more on shared runners.
#
#   allocs/op — fails when ANY gated serve benchmark allocates more than
#           its tolerance times its baseline. The serial benchmarks'
#           counts are deterministic (no CI-noise excuse), so their
#           tolerance is tight: the steady-state serving path is
#           allocation-budgeted (DESIGN.md §15) and a new per-request
#           allocation chain is a bug even when the wall clock doesn't
#           notice yet. The concurrent benchmarks (Parallel, Session)
#           batch differently run to run, which moves their counts a few
#           percent, so they gate at 2x the configured margin.
#
# Usage: scripts/bench_guard.sh [tolerance] [alloc_tolerance]
#   tolerance — allowed ns/op growth factor for BenchmarkServeInfer
#               (default 2.0: generous for CI noise, tight enough to catch
#               an accidental O(n) admission scan or lock convoy).
#   alloc_tolerance — allowed allocs/op growth factor for every gated
#               serve benchmark (default 1.1: >10% regression fails).
#
# Workload-suite mode: scripts/bench_guard.sh workloads [duration] [scale]
#   Runs the named workload mixes (W1–W6, cmd/seculator-workloads) and
#   gates each mix's overall p99 and shed rate against the committed
#   BENCH_workloads.json snapshot. The per-mix tolerances live in the Go
#   gate (scenario.GateOptions defaults); this entry point just picks the
#   run length. Regenerate the snapshot with:
#     go run ./cmd/seculator-workloads -duration 3s -out BENCH_workloads.json
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "workloads" ]; then
	exec go run ./cmd/seculator-workloads \
		-duration "${2:-3s}" -scale "${3:-1}" -seed 1 \
		-baseline BENCH_workloads.json
fi

tol="${1:-2.0}"
atol="${2:-1.1}"

baseline_field() {
	# Pull "Benchmark<name>": {..., "<field>": N, ...} out of the named
	# section ($3, default "serve") of BENCH_baseline.json.
	awk -v name="$1" -v field="$2" -v section="\"${3:-serve}\": {" '
	index($0, section) { inserve = 1 }
	inserve && $0 ~ "\"" name "\":" {
		if (match($0, "\"" field "\": [0-9.]+")) {
			s = substr($0, RSTART, RLENGTH)
			sub(/.*: /, "", s)
			print s
			exit
		}
	}
	' BENCH_baseline.json
}

baseline_ns() { baseline_field "$1" ns_per_op "${2:-serve}"; }
baseline_allocs() { baseline_field "$1" allocs_per_op "${2:-serve}"; }

# run_field <output> <name> <unit> — extract the figure reported just
# before <unit> (ns/op, allocs/op) on the named benchmark's line.
run_field() {
	echo "$1" | awk -v name="$2" -v unit="$3" '
	$1 ~ "^" name "(-[0-9]+)?$" {
		for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit }
	}'
}

echo "bench_guard: running serve benchmarks (20 iterations each)..."
out=$(go test -run='^$' -bench='Serve' -benchtime=20x -benchmem ./internal/serve/)
echo "$out" | grep '^Benchmark' || { echo "bench_guard: no benchmark output"; exit 1; }

fail=0
for name in BenchmarkServeInfer BenchmarkServeInferResident BenchmarkServeInferParallel BenchmarkServeSessionInfer; do
	old=$(baseline_ns "$name")
	new=$(run_field "$out" "$name" ns/op)
	if [ -z "$old" ] || [ -z "$new" ]; then
		echo "bench_guard: $name missing (baseline='$old' run='$new')"
		fail=1
		continue
	fi
	verdict=$(awk -v o="$old" -v n="$new" -v t="$tol" 'BEGIN {
		ratio = n / o
		printf "%.2fx", ratio
		exit (ratio > t) ? 1 : 0
	}') && ok=1 || ok=0
	echo "bench_guard: $name ${new} ns/op vs baseline ${old} ns/op (${verdict}, tolerance ${tol}x)"
	if [ "$ok" = 0 ] && [ "$name" = "BenchmarkServeInfer" ]; then
		echo "bench_guard: FAIL — serial serving path regressed beyond ${tol}x"
		fail=1
	fi

	# Allocation gate: every serve benchmark gates, the serial ones
	# (deterministic counts) at atol, the concurrent ones at double the
	# margin above 1.0 (batch formation wobbles their counts).
	aold=$(baseline_allocs "$name")
	anew=$(run_field "$out" "$name" allocs/op)
	if [ -z "$aold" ] || [ -z "$anew" ]; then
		echo "bench_guard: $name allocs/op missing (baseline='$aold' run='$anew')"
		fail=1
		continue
	fi
	case "$name" in
	BenchmarkServeInferParallel | BenchmarkServeSessionInfer)
		t=$(awk -v t="$atol" 'BEGIN { printf "%.2f", 1 + 2 * (t - 1) }')
		;;
	*)
		t="$atol"
		;;
	esac
	averdict=$(awk -v o="$aold" -v n="$anew" -v t="$t" 'BEGIN {
		ratio = n / o
		printf "%.2fx", ratio
		exit (ratio > t) ? 1 : 0
	}') && aok=1 || aok=0
	echo "bench_guard: $name ${anew} allocs/op vs baseline ${aold} allocs/op (${averdict}, tolerance ${t}x)"
	if [ "$aok" = 0 ]; then
		echo "bench_guard: FAIL — $name allocations regressed beyond ${t}x"
		fail=1
	fi
done

# Gateway front tier: reported for visibility, never gating — the proxied
# path stacks two HTTP hops and wobbles too much on shared runners.
echo "bench_guard: running gateway benchmarks (20 iterations each)..."
gout=$(go test -run='^$' -bench='Gateway' -benchtime=20x ./internal/gateway/ || true)
for name in BenchmarkGatewayInfer BenchmarkGatewaySessionInfer; do
	old=$(baseline_ns "$name" gateway)
	new=$(echo "$gout" | awk -v name="$name" '$1 ~ "^" name "(-[0-9]+)?$" { print $3; exit }')
	if [ -z "$old" ] || [ -z "$new" ]; then
		echo "bench_guard: $name missing (baseline='$old' run='$new'), not gating"
		continue
	fi
	ratio=$(awk -v o="$old" -v n="$new" 'BEGIN { printf "%.2fx", n / o }')
	echo "bench_guard: $name ${new} ns/op vs baseline ${old} ns/op (${ratio}, informational)"
done
exit "$fail"
