package seculator

import (
	"errors"
	"strings"
	"testing"

	"seculator/internal/mac"
)

func TestPublicRunRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	net := Network{
		Name: "tiny",
		Layers: []Layer{
			{Name: "c1", Type: Conv, C: 3, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: Conv, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
		},
	}
	base, err := Run(net, Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := Run(net, Seculator, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p := sec.Performance(base); p <= 0 || p > 1 {
		t.Fatalf("Seculator normalized performance = %g", p)
	}
}

func TestBenchmarksAndByName(t *testing.T) {
	if len(Benchmarks()) != 5 {
		t.Fatal("five benchmarks expected")
	}
	n, err := NetworkByName("AlexNet")
	if err != nil || n.Name != "AlexNet" {
		t.Fatalf("ByName: %v %v", n.Name, err)
	}
	if _, err := NetworkByName("unknown"); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestDesignsSurface(t *testing.T) {
	if len(Designs()) != 6 {
		t.Fatal("six designs expected")
	}
	if !PropertiesOf(SeculatorPlus).MEAProtection {
		t.Fatal("Seculator+ must protect against MEA")
	}
}

func TestPatternSurface(t *testing.T) {
	tables := PatternTables()
	if len(tables) < 20 {
		t.Fatalf("pattern tables too small: %d rows", len(tables))
	}
	tr := Triplet{Eta: 2, Kappa: 3, Rho: 4}
	if ClassifyPattern(tr) != PatternMultiStep {
		t.Fatal("classification broken")
	}
	got, ok := CompressPattern(tr.Expand())
	if !ok || got != tr {
		t.Fatalf("compress round trip: %v %v", got, ok)
	}
	g := NewVNGenerator(tr)
	if v, ok := g.Next(); !ok || v != 1 {
		t.Fatal("generator broken")
	}
}

func TestExperimentFig4(t *testing.T) {
	res, err := Fig4Characterization(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5*4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	tbl := res.Fig4Table()
	if len(tbl.Rows) != 5 || !strings.Contains(tbl.String(), "Figure 4") {
		t.Fatal("Fig4 table malformed")
	}
	f5 := res.Fig5Table()
	if len(f5.Rows) != 5 {
		t.Fatal("Fig5 table malformed")
	}
	for net, m := range res.MACMissRate {
		if c := res.CounterMissRate[net]; m <= c {
			t.Fatalf("%s: MAC miss %.3f not above counter miss %.3f", net, m, c)
		}
	}
}

func TestExperimentFig7And8(t *testing.T) {
	res, err := Fig7Performance(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5*6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	secMean := res.Mean(Seculator, false)
	tnpuMean := res.Mean(TNPU, false)
	gnnMean := res.Mean(GuardNN, false)
	if !(secMean > tnpuMean && tnpuMean > gnnMean) {
		t.Fatalf("ordering broken: sec=%.3f tnpu=%.3f gnn=%.3f", secMean, tnpuMean, gnnMean)
	}
	// The headline result: Seculator ~16-20% over TNPU.
	if up := secMean/tnpuMean - 1; up < 0.08 || up > 0.35 {
		t.Errorf("Seculator speedup over TNPU = %.1f%%", up*100)
	}
	if res.Mean(Seculator, true) != 1.0 {
		t.Error("Seculator must add zero traffic")
	}
	if res.Mean(GuardNN, true) < res.Mean(TNPU, true) {
		t.Error("GuardNN must move more traffic than TNPU")
	}
	if len(res.Fig7Table().Rows) != 5 || len(res.Fig8Table().Rows) != 5 {
		t.Fatal("tables malformed")
	}
}

func TestExperimentFig9(t *testing.T) {
	res, err := Fig9Widening(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6*6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Seculator must be the most scalable secure design: at the largest
	// widening its latency must stay below every prior secure design's.
	secG := res.Growth(Seculator)
	for _, d := range []Design{Secure, TNPU, GuardNN} {
		if g := res.Growth(d); g < secG {
			t.Errorf("%s growth %.2f below Seculator %.2f", d, g, secG)
		}
	}
	// And it must track the unprotected baseline closely even at 192x192.
	if baseG := res.Growth(Baseline); secG > baseG*1.10 {
		t.Errorf("Seculator at 192 (%.2f) strays >10%% from baseline (%.2f)", secG, baseG)
	}
	if len(res.Fig9Table().Rows) != 6 {
		t.Fatal("Fig9 table malformed")
	}
}

func TestTable5And6(t *testing.T) {
	t5 := Table5Matrix()
	if len(t5.Rows) != 6 {
		t.Fatalf("Table 5 rows = %d", len(t5.Rows))
	}
	t6 := Table6Hardware()
	if len(t6.Rows) != 4 { // 3 modules + total
		t.Fatalf("Table 6 rows = %d", len(t6.Rows))
	}
	if !strings.Contains(t6.String(), "AES-128") {
		t.Fatal("Table 6 missing AES row")
	}
	area, power := HardwareTotals()
	if area < 4000 || area > 4500 || power <= 0 {
		t.Fatalf("hardware totals: %.1f um^2 %.1f uW", area, power)
	}
}

func TestPatternTableRender(t *testing.T) {
	g := PatternGrid{AlphaHW: 2, AlphaC: 3, AlphaK: 4, OfmapTileBlocks: 1}
	tbl := PatternTable("table2-ir", g)
	if len(tbl.Rows) != 6 {
		t.Fatalf("table2-ir rows = %d", len(tbl.Rows))
	}
	all := PatternTable("all", g)
	if len(all.Rows) <= len(tbl.Rows) {
		t.Fatal("'all' must include every table")
	}
}

func TestAttackSurface(t *testing.T) {
	if err := RunAttack(DefaultAttackScenario(), nil, nil); err != nil {
		t.Fatalf("honest attack run: %v", err)
	}
	err := RunAttack(DefaultAttackScenario(), nil, func(d *DRAM, l AttackLayout) {
		d.Tamper(l.Addr(0, 0), 0, 1)
	})
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("tamper undetected: %v", err)
	}
	leaks, _, err := Eavesdrop(DefaultAttackScenario())
	if err != nil || leaks != 0 {
		t.Fatalf("eavesdrop: leaks=%d err=%v", leaks, err)
	}
}

func TestWideningSurface(t *testing.T) {
	net := MobileNet()
	w, err := WidenNetwork(net, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rep := CompareWidening(net, w)
	if rep.Overhead() <= 1 {
		t.Fatal("widening must cost volume")
	}
	leakBase, err := NetworkLeakage(net, net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	leakWide, err := NetworkLeakage(net, w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if leakWide <= leakBase {
		t.Fatalf("widening did not reduce extraction accuracy: %.3f <= %.3f", leakWide, leakBase)
	}
	if _, err := WidenLayer(Layer{Type: Conv, C: 3, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1}, 16, 16, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := DummyNetwork("d", 2, 8, 8, 4, 4); err != nil {
		t.Fatal(err)
	}
}

func TestTableString(t *testing.T) {
	tbl := Table{
		Title:  "test",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
		Notes:  []string{"n"},
	}
	s := tbl.String()
	for _, want := range []string{"== test ==", "xxx", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table render missing %q:\n%s", want, s)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := Table{
		Title:  "md",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	md := tbl.Markdown()
	for _, want := range []string{"### md", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
