package seculator_test

import (
	"fmt"

	"seculator"
)

// The basic flow: simulate a benchmark on two designs and compare.
func ExampleRun() {
	cfg := seculator.DefaultConfig()
	net := seculator.ResNet18()

	base, err := seculator.Run(net, seculator.Baseline, cfg)
	if err != nil {
		panic(err)
	}
	sec, err := seculator.Run(net, seculator.Seculator, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Seculator traffic vs baseline: %.3fx\n", sec.NormalizedTraffic(base))
	// Output:
	// Seculator traffic vs baseline: 1.000x
}

// The master equation of Section 5: classify, expand and regenerate a VN
// pattern with the hardware FSM.
func ExampleTriplet() {
	tr := seculator.Triplet{Eta: 2, Kappa: 3, Rho: 2}
	fmt.Println(tr, seculator.ClassifyPattern(tr))

	gen := seculator.NewVNGenerator(tr)
	for {
		v, ok := gen.Next()
		if !ok {
			break
		}
		fmt.Print(v, " ")
	}
	fmt.Println()
	// Output:
	// (1^2,2^2...3^2)^2 P1:Multi-step
	// 1 1 2 2 3 3 1 1 2 2 3 3
}

// Parse the paper's symbolic notation back into a triplet.
func ExampleParsePattern() {
	tr, err := seculator.ParsePattern("(1^4,2^4...8^4)^3")
	if err != nil {
		panic(err)
	}
	fmt.Printf("eta=%d kappa=%d rho=%d len=%d\n", tr.Eta, tr.Kappa, tr.Rho, tr.Len())
	// Output:
	// eta=4 kappa=8 rho=3 len=96
}

// Derive a layer mapping's write pattern analytically.
func ExampleDeriveWritePattern() {
	m := &seculator.Mapping{
		Name:    "example",
		Order:   []seculator.LoopVariable{seculator.LoopSpatial, seculator.LoopChannel, seculator.LoopFilter},
		AlphaHW: 4, AlphaC: 3, AlphaK: 2,
		OfmapTileBlocks: 1,
	}
	fmt.Println(seculator.DeriveWritePattern(m))
	// Output:
	// (1^2,2^2...3^2)^4
}

// Run a real (integer) network through the functional encrypted path and
// confirm the output matches the unprotected reference.
func ExampleSecureInference() {
	net := seculator.Network{
		Name: "tiny",
		Layers: []seculator.Layer{
			{Name: "c1", Type: seculator.Conv, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
		},
	}
	in, ws := seculator.RandomModel(net, 1)
	golden, err := seculator.ReferenceInference(net, in, ws)
	if err != nil {
		panic(err)
	}
	res, err := seculator.SecureInference(net, in, ws, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("bit-identical:", res.Output.Equal(golden))
	// Output:
	// bit-identical: true
}
