package seculator

import "testing"

// sweepNet is a two-conv network small enough that the four sensitivity
// sweeps finish quickly at every worker count.
func sweepNet() Network {
	return Network{
		Name: "det-sweep",
		Layers: []Layer{
			{Name: "c1", Type: Conv, C: 3, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: Conv, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
		},
	}
}

// TestParallelDeterminism is the acceptance check for the worker-pool
// rewiring: Fig4/Fig5 and all four sensitivity sweeps render byte-identical
// tables no matter the worker count, because every fan-out lands results by
// item index, never by completion order.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration in -short mode")
	}
	cfg := DefaultConfig()
	net := sweepNet()

	render := func() []string {
		ResetSimCache()
		var out []string
		ch, err := Fig4Characterization(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ch.Fig4Table().String(), ch.Fig5Table().String())
		bw, err := SweepBandwidth(net, cfg, []float64{0.11, 0.44})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, SweepTable(bw).String())
		gb, err := SweepGlobalBuffer(net, cfg, []int{120, 480})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, SweepTable(gb).String())
		pe, err := SweepPEArray(net, cfg, []int{16, 64})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, SweepTable(pe).String())
		mc, err := SweepMACCache(net, cfg, []int{2, 64})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, SweepTable(mc).String())
		return out
	}

	defer SetParallelism(0)
	defer ResetSimCache()
	SetParallelism(1)
	serial := render()

	for _, workers := range []int{4, 16} {
		SetParallelism(workers)
		got := render()
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("workers=%d: table %d differs from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
					workers, i, serial[i], workers, got[i])
			}
		}
	}
}

// TestSimCacheReuse: regenerating the same experiment hits the memoized
// simulation cache instead of re-simulating.
func TestSimCacheReuse(t *testing.T) {
	cfg := DefaultConfig()
	net := sweepNet()
	ResetSimCache()
	defer ResetSimCache()

	if _, err := SweepBandwidth(net, cfg, []float64{0.11, 0.44}); err != nil {
		t.Fatal(err)
	}
	cold := SimCacheStats()
	if cold.Misses == 0 {
		t.Fatal("cold sweep recorded no cache misses")
	}
	if _, err := SweepBandwidth(net, cfg, []float64{0.11, 0.44}); err != nil {
		t.Fatal(err)
	}
	warm := SimCacheStats()
	if warm.Misses != cold.Misses {
		t.Fatalf("warm sweep re-simulated: misses %d -> %d", cold.Misses, warm.Misses)
	}
	if warm.Hits <= cold.Hits {
		t.Fatalf("warm sweep recorded no cache hits: %+v", warm)
	}
}
