package seculator

import (
	"context"

	"seculator/internal/defence"
	"seculator/internal/host"
)

// HostCommand is one "run layer" order the host CPU issues to the NPU over
// the secure command channel (Section 6.1): the layer geometry, the data
// region bases, the VN triplet and the golden digests.
type HostCommand = host.Command

// HostPacket is the authenticated wire form of a command.
type HostPacket = host.Packet

// HostController is the CPU endpoint of the command channel.
type HostController = host.Controller

// NPUEndpoint is the accelerator endpoint: it authenticates commands and
// latches a security breach on any channel violation.
type NPUEndpoint = host.Endpoint

// NewHostController creates the CPU side for a session key.
func NewHostController(sessionKey []byte) *HostController { return host.NewController(sessionKey) }

// NewNPUEndpoint creates the NPU side for a session key.
func NewNPUEndpoint(sessionKey []byte) *NPUEndpoint { return host.NewEndpoint(sessionKey) }

// DefencePlan is a chosen Seculator+ obfuscation configuration.
type DefencePlan = defence.Plan

// DefenceOptions bound the planner's search.
type DefenceOptions = defence.Options

// DefaultDefenceOptions returns a pragmatic search space.
func DefaultDefenceOptions() DefenceOptions { return defence.DefaultOptions() }

// PlanDefence searches widening factors (adding dummy-network injection
// when geometry alone cannot reach the target) for the cheapest Seculator+
// configuration with model-extraction leakage error >= target and runtime
// overhead <= maxOverhead.
func PlanDefence(victim Network, cfg Config, target, maxOverhead float64, opt DefenceOptions) (DefencePlan, error) {
	return defence.PlanDefence(context.Background(), victim, cfg, target, maxOverhead, opt)
}

// PlanDefenceContext is PlanDefence with a context: the search's underlying
// simulations stop when ctx is cancelled.
func PlanDefenceContext(ctx context.Context, victim Network, cfg Config, target, maxOverhead float64, opt DefenceOptions) (DefencePlan, error) {
	return defence.PlanDefence(ctx, victim, cfg, target, maxOverhead, opt)
}

// SessionResult is a full secure-session outcome: the simulated execution
// plus command-channel accounting.
type SessionResult = host.SessionResult

// SessionIntercept lets tests/demos play the man in the middle on the
// PCIe link.
type SessionIntercept = host.Intercept

// SessionOptions extends a secure session beyond the timing simulation: a
// man-in-the-middle intercept, a functional model (Input/Weights) executed
// with layer-level detect-and-recover, a retry policy, a fault injector,
// and a DRAM-phase attack hook (Hook) for replay/splice demos.
type SessionOptions = host.SessionOptions

// RunSecureSession drives the complete Figure 6 flow on the Seculator
// design: the host issues one authenticated command per layer (geometry +
// VN triplet), the NPU endpoint authenticates and cross-derives each
// triplet, and the commanded network executes. Channel violations abort
// the session with a typed ChannelError.
func RunSecureSession(net Network, cfg Config, sessionKey []byte, mitm SessionIntercept) (SessionResult, error) {
	return host.RunSession(context.Background(), net, cfg, sessionKey, SessionOptions{Intercept: mitm})
}

// RunSecureSessionContext is the full-control session entry point: ctx
// cancels between commands and layers, and opts can attach a functional
// model, a recovery policy and a fault injector. No panic escapes; all
// failures carry the resilience error taxonomy.
func RunSecureSessionContext(ctx context.Context, net Network, cfg Config, sessionKey []byte, opts SessionOptions) (SessionResult, error) {
	return host.RunSession(ctx, net, cfg, sessionKey, opts)
}
