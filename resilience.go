package seculator

import (
	"seculator/internal/fault"
	"seculator/internal/mem"
	"seculator/internal/resilience"
)

// The resilience error taxonomy. Every failure surfaced by Run, RunAll,
// RunSecureSession and SecureInference is (or wraps) one of these typed
// errors; match with errors.As.
type (
	// IntegrityError reports an XOR-MAC or per-block MAC verification
	// failure, carrying the layer, tensor class and persistence verdict.
	IntegrityError = resilience.IntegrityError
	// FreshnessError reports a persistent replay/splice-signature violation
	// on versioned data; the session is aborted and the breach latched.
	FreshnessError = resilience.FreshnessError
	// ChannelError reports a host-NPU command-channel violation.
	ChannelError = resilience.ChannelError
	// ConfigError reports an invalid configuration at a public entry point.
	ConfigError = resilience.ConfigError
	// InternalError wraps a recovered panic that crossed a public API
	// boundary — always a bug, never an expected outcome.
	InternalError = resilience.InternalError
)

// TensorClass names the data class an integrity violation hit.
type TensorClass = resilience.TensorClass

// Tensor classes carried by IntegrityError and FreshnessError.
const (
	ClassInput      = resilience.ClassInput
	ClassWeight     = resilience.ClassWeight
	ClassActivation = resilience.ClassActivation
	ClassPartial    = resilience.ClassPartial
	ClassOutput     = resilience.ClassOutput
)

// Retryable reports whether err is worth a layer-level retry: true only
// for transient integrity violations, false for persistent tampering,
// freshness, channel, config and internal errors.
func Retryable(err error) bool { return resilience.Retryable(err) }

// RetryPolicy bounds the layer-level detect-and-recover loop: maximum
// re-executions per layer and the exponential backoff between them.
type RetryPolicy = resilience.Policy

// DefaultRetryPolicy returns the executor's default recovery policy
// (3 retries, 100µs base backoff, 5ms cap).
func DefaultRetryPolicy() RetryPolicy { return resilience.DefaultPolicy() }

// NoRetryPolicy disables layer-level recovery: the first violation aborts.
func NoRetryPolicy() RetryPolicy { return resilience.Disabled() }

// RecoveryStats counts detect-and-recover activity across a run.
type RecoveryStats = resilience.Stats

// FaultInjector mutates blocks on the functional DRAM's read/write paths;
// see the constructors below for the built-in fault models.
type FaultInjector = mem.Injector

// NewBitFlipInjector returns a seeded injector flipping one random bit of
// a read block with probability rate — the transient-upset model.
func NewBitFlipInjector(rate float64, seed int64) *BitFlipInjector {
	return fault.NewBitFlip(rate, seed)
}

// BitFlipInjector is the random single-bit-flip fault model.
type BitFlipInjector = fault.BitFlip

// NewStuckAtInjector returns an injector forcing one bit of every
// period-th stored block — the persistent stuck-at fault model.
func NewStuckAtInjector(period, phase uint64, bit uint) *StuckAtInjector {
	return fault.NewStuckAt(period, phase, bit)
}

// StuckAtInjector is the persistent stuck-at fault model.
type StuckAtInjector = fault.StuckAt

// NewBurstInjector returns a seeded injector corrupting a span of
// consecutive reads — the burst-noise model.
func NewBurstInjector(start, count uint64, bytesPerRead int, seed int64) *BurstInjector {
	return fault.NewBurst(start, count, bytesPerRead, seed)
}

// BurstInjector is the burst-corruption fault model.
type BurstInjector = fault.Burst

// NewReplayInjector returns an injector that snapshots the first write to
// every line and persistently serves the stale ciphertext once a line is
// overwritten — the classic replay attack as a fault model.
func NewReplayInjector() *ReplayInjector { return fault.NewReplay() }

// ReplayInjector is the stale-ciphertext replay fault model.
type ReplayInjector = fault.Replay

// FaultKind enumerates the campaign's injectable fault classes.
type FaultKind = fault.Kind

// The campaign fault classes.
const (
	FaultBitFlip     = fault.KindBitFlip
	FaultStuckAt     = fault.KindStuckAt
	FaultBurst       = fault.KindBurst
	FaultReplay      = fault.KindReplay
	FaultMACRegister = fault.KindMACRegister
)

// FaultKinds returns every campaign fault class.
func FaultKinds() []FaultKind { return fault.Kinds() }

// FaultCampaign sweeps fault models and rates against the secure executor
// and reports detection/recovery outcomes per point.
type FaultCampaign = fault.Campaign

// FaultPoint is one (fault, rate) campaign sample.
type FaultPoint = fault.Point

// RunFaultCampaign executes the campaign; see fault.Campaign.
var RunFaultCampaign = fault.Run
