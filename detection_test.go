package seculator

import (
	"context"
	"testing"
)

// TestTable5DetectionRegression is the Table 5 regression guard: every
// protected design must detect every fault class, and the unprotected
// baseline must silently corrupt under each of them. A change that weakens
// any design's detection machinery fails the corresponding named subtest.
func TestTable5DetectionRegression(t *testing.T) {
	cells, err := DetectionMatrix(DefaultAttackScenario())
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		d Design
		a DetectionAttack
	}
	matrix := make(map[key]DetectionCell, len(cells))
	for _, c := range cells {
		matrix[key{c.Design, c.Attack}] = c
	}

	faults := []struct {
		name   string
		attack DetectionAttack
	}{
		{"bit-flip", AttackTamper},
		{"stale-VN", AttackReplay},
		{"replay", AttackReplayWithMAC},
		{"splice", AttackSpliceWithMAC},
	}
	protected := []Design{Secure, TNPU, GuardNN, Seculator}

	for _, f := range faults {
		f := f
		t.Run(f.name, func(t *testing.T) {
			for _, d := range protected {
				c, ok := matrix[key{d, f.attack}]
				if !ok {
					t.Fatalf("%s: no matrix cell for %s", d, f.attack)
				}
				if !c.Detected {
					t.Errorf("%s: %s fault undetected (corrupted=%v)", d, f.name, c.Corrupted)
				}
			}
			base, ok := matrix[key{Baseline, f.attack}]
			if !ok {
				t.Fatalf("no baseline cell for %s", f.attack)
			}
			if base.Detected {
				t.Errorf("baseline claims detection of %s with no integrity machinery", f.name)
			}
			if !base.Corrupted {
				t.Errorf("baseline not corrupted by %s; the attack exercised nothing", f.name)
			}
		})
	}

	// The honest control row: nobody detects, nobody corrupts.
	for _, d := range append(protected, Baseline) {
		c := matrix[key{d, AttackNone}]
		if c.Detected || c.Corrupted {
			t.Errorf("%s: honest run misreported (detected=%v corrupted=%v)",
				d, c.Detected, c.Corrupted)
		}
	}

	// Cancellation propagates between cells.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DetectionMatrixContext(ctx, DefaultAttackScenario()); err == nil {
		t.Error("cancelled detection matrix returned no error")
	}
}
