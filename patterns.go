package seculator

import (
	"seculator/internal/dataflow"
	"seculator/internal/pattern"
	"seculator/internal/vngen"
)

// Triplet is the master-equation parameter set ⟨η, κ, ρ⟩ of Section 5: the
// VN sequence (1^η, 2^η, …, κ^η)^ρ.
type Triplet = pattern.Triplet

// PatternClass is the paper's P1–P5 taxonomy of VN patterns.
type PatternClass = pattern.Class

// Pattern classes (Table 2).
const (
	// PatternEmpty is the empty sequence.
	PatternEmpty = pattern.ClassEmpty
	// PatternMultiStep is P1: repeated ramps of runs.
	PatternMultiStep = pattern.P1MultiStep
	// PatternStep is P2: one ramp of runs.
	PatternStep = pattern.P2Step
	// PatternLinear is P3: 1,2,…,κ.
	PatternLinear = pattern.P3Linear
	// PatternSawtooth is P4: repeated plain ramps.
	PatternSawtooth = pattern.P4Sawtooth
	// PatternLine is P5: a constant run of 1s.
	PatternLine = pattern.P5Line
)

// ClassifyPattern maps a triplet to its P1–P5 class.
func ClassifyPattern(t Triplet) PatternClass { return pattern.Classify(t) }

// CompressPattern infers the canonical triplet of an observed VN sequence,
// or ok=false if the sequence is not an instance of the master equation.
func CompressPattern(seq []int) (Triplet, bool) { return pattern.Compress(seq) }

// ParsePattern reads a symbolic pattern expression like "(1^2,2^2...4^2)^3"
// back into a triplet — the inverse of Triplet.String.
func ParsePattern(s string) (Triplet, error) { return pattern.Parse(s) }

// Mapping describes how one layer executes: loop nest, tile grid and tile
// transfer sizes — the input to pattern derivation and the VN generator.
type Mapping = dataflow.Mapping

// LoopVariable names one tile iterator of a mapping's loop nest.
type LoopVariable = dataflow.LoopVar

// LoopOrder is a nest order, outermost first.
type LoopOrder = dataflow.LoopOrder

// The tile iterators.
const (
	// LoopSpatial iterates spatial tiles (h_T, w_T fused).
	LoopSpatial = dataflow.LoopS
	// LoopChannel iterates input-channel groups (c_T, the reduction loop).
	LoopChannel = dataflow.LoopC
	// LoopFilter iterates output-channel groups (k_T).
	LoopFilter = dataflow.LoopK
)

// PatternTableEntry is one row of the paper's pattern tables (Tables 2-4,
// 8-10) with its mapping constructor and expected WP/RP expressions.
type PatternTableEntry = dataflow.TableEntry

// PatternGrid parameterizes a pattern-table row with concrete alpha factors.
type PatternGrid = dataflow.GridSpec

// PatternTables returns every pattern-table row the paper publishes, in
// order: Table 2 (conv IR/OR), Table 3 (weight reuse), Table 4 (matmul),
// Tables 8-10 (pre-processing styles 1-3).
func PatternTables() []PatternTableEntry { return dataflow.AllTableEntries() }

// DeriveWritePattern returns the analytical triplet of the ofmap write-VN
// sequence of a mapping; DeriveReadPattern the partial-sum read sequence.
func DeriveWritePattern(m *Mapping) Triplet { return dataflow.DeriveWrite(m) }

// DeriveReadPattern returns the read-observer triplet of a mapping.
func DeriveReadPattern(m *Mapping) Triplet { return dataflow.DeriveRead(m) }

// VNGenerator is the streaming hardware FSM that regenerates a triplet's VN
// sequence at runtime (Section 6.2).
type VNGenerator = vngen.Generator

// NewVNGenerator builds the FSM for a triplet.
func NewVNGenerator(t Triplet) *VNGenerator { return vngen.New(t) }
