package seculator

import (
	"context"
	"fmt"

	"seculator/internal/energy"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/sweep"
	"seculator/internal/workload"
)

// GANGeneratorConfig shapes a DCGAN-style generator built from
// deconvolutions (zero-insertion upsample + convolution, Section 5.2).
type GANGeneratorConfig = workload.GANGeneratorConfig

// DCGAN returns the canonical generator shape (4x4x1024 -> 64x64x3).
func DCGAN() GANGeneratorConfig { return workload.DCGAN() }

// TinyGAN returns a small generator for quick experiments.
func TinyGAN() GANGeneratorConfig { return workload.TinyGAN() }

// GANGenerator builds the generator network for a configuration.
func GANGenerator(cfg GANGeneratorConfig) (Network, error) { return workload.GANGenerator(cfg) }

// Deconv builds a deconvolution as the paper prescribes: an Upsample layer
// followed by an ordinary convolution.
func Deconv(name string, c, h, w, k, r, up int) ([]Layer, error) {
	return workload.Deconv(name, c, h, w, k, r, up)
}

// EnergyModel holds the per-operation energy constants of the energy
// extension.
type EnergyModel = energy.Model

// EnergyBreakdown is a per-inference energy estimate.
type EnergyBreakdown = energy.Breakdown

// DefaultEnergyModel returns literature/Table 6 constants.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// EnergyTable runs the network across the designs and renders per-design
// energy breakdowns (extension experiment E17).
func EnergyTable(n Network, cfg Config) (Table, error) {
	rs, err := runner.RunAll(context.Background(), n, protect.Designs(), cfg)
	if err != nil {
		return Table{}, err
	}
	bs, over, err := energy.Compare(n, rs)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  fmt.Sprintf("Energy per inference — %s", n.Name),
		Header: []string{"design", "DRAM (mJ)", "compute (mJ)", "crypto (uJ)", "total (mJ)", "vs baseline"},
		Notes:  []string{"DRAM access energy dominates; metadata traffic is an energy tax in the same proportion as bandwidth"},
	}
	for i, b := range bs {
		t.Rows = append(t.Rows, []string{
			b.Design,
			fmt.Sprintf("%.2f", b.DRAMnJ/1e6),
			fmt.Sprintf("%.2f", b.MACnJ/1e6),
			fmt.Sprintf("%.1f", b.CryptonJ/1e3),
			fmt.Sprintf("%.2f", b.Total()/1e6),
			fmt.Sprintf("%.3fx", over[i]),
		})
	}
	return t, nil
}

// SweepResult is a sensitivity sweep over one system parameter.
type SweepResult = sweep.Result

// SweepBandwidth re-measures the design comparison across DRAM bandwidths.
func SweepBandwidth(n Network, cfg Config, values []float64) (SweepResult, error) {
	return sweep.Bandwidth(context.Background(), n, cfg, values)
}

// SweepBandwidthContext is SweepBandwidth with cancellation between points.
func SweepBandwidthContext(ctx context.Context, n Network, cfg Config, values []float64) (SweepResult, error) {
	return sweep.Bandwidth(ctx, n, cfg, values)
}

// SweepGlobalBuffer sweeps the on-chip buffer capacity (KB).
func SweepGlobalBuffer(n Network, cfg Config, kbs []int) (SweepResult, error) {
	return sweep.GlobalBuffer(context.Background(), n, cfg, kbs)
}

// SweepGlobalBufferContext is SweepGlobalBuffer with cancellation between
// points.
func SweepGlobalBufferContext(ctx context.Context, n Network, cfg Config, kbs []int) (SweepResult, error) {
	return sweep.GlobalBuffer(ctx, n, cfg, kbs)
}

// SweepPEArray sweeps the (square) systolic array extent.
func SweepPEArray(n Network, cfg Config, dims []int) (SweepResult, error) {
	return sweep.PEArray(context.Background(), n, cfg, dims)
}

// SweepPEArrayContext is SweepPEArray with cancellation between points.
func SweepPEArrayContext(ctx context.Context, n Network, cfg Config, dims []int) (SweepResult, error) {
	return sweep.PEArray(ctx, n, cfg, dims)
}

// SweepMACCache sweeps the MAC-cache size (KB) of the per-block designs.
func SweepMACCache(n Network, cfg Config, kbs []int) (SweepResult, error) {
	return sweep.MACCache(context.Background(), n, cfg, kbs)
}

// SweepMACCacheContext is SweepMACCache with cancellation between points.
func SweepMACCacheContext(ctx context.Context, n Network, cfg Config, kbs []int) (SweepResult, error) {
	return sweep.MACCache(ctx, n, cfg, kbs)
}

// SweepTable renders a sweep result.
func SweepTable(r SweepResult) Table {
	t := Table{
		Title:  fmt.Sprintf("Sensitivity: %s (%s)", r.Name, r.Unit),
		Header: []string{r.Unit},
	}
	for _, d := range r.Designs {
		t.Header = append(t.Header, d.String())
	}
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%g", p.Param)}
		for _, d := range r.Designs {
			row = append(row, fmt.Sprintf("%.3f", p.Performance[d]))
		}
		t.Rows = append(t.Rows, row)
	}
	lo, hi := r.AdvantageRange()
	t.Notes = append(t.Notes, fmt.Sprintf("Seculator advantage over TNPU across the sweep: %.1f%% .. %.1f%%", lo*100, hi*100))
	return t
}
