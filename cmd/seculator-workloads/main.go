// seculator-workloads drives the named workload mixes (W1–W6) against an
// in-process serving stack and reports per-phase percentile trajectories —
// the serving-layer benchmark suite behind BENCH_workloads.json.
//
// Modes:
//
//	seculator-workloads                       run every mix, print the table
//	seculator-workloads -mix W1,W4            run a subset
//	seculator-workloads -out BENCH_workloads.json
//	                                          run and write the snapshot
//	seculator-workloads -baseline BENCH_workloads.json
//	                                          run, then gate p99 + shed rate
//	                                          per mix against the snapshot;
//	                                          exit 1 on regression
//	seculator-workloads -baseline snap.json -in run.json
//	                                          gate a previously written run
//	                                          without re-running anything
//
// Runs are seeded (-seed): the same seed replays the same arrival
// schedules, which is what makes the snapshot comparable run to run.
// -scale shrinks or grows every mix's offered rates together, so CI smoke
// runs and capacity probes share one definition of the suite.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"seculator/internal/workload"
	"seculator/internal/workload/scenario"
)

func main() {
	var (
		mixList  = flag.String("mix", "all", "comma-separated mix names (W1..W6 or titles), or \"all\"")
		duration = flag.Duration("duration", 6*time.Second, "total run time per mix, split across its arrival phases")
		seed     = flag.Int64("seed", 1, "suite seed; the same seed replays the same arrival schedules")
		scale    = flag.Float64("scale", 1, "offered-rate multiplier applied to every phase")
		out      = flag.String("out", "", "write the suite result JSON here")
		in       = flag.String("in", "", "gate an existing result file instead of running (requires -baseline)")
		baseline = flag.String("baseline", "", "gate the run against this snapshot; exit 1 on regression")
		p99f     = flag.Float64("p99-factor", 2.5, "gate: allowed p99 growth factor over baseline")
		p99slack = flag.Float64("p99-slack-ms", 50, "gate: minimum absolute p99 headroom in ms")
		shed     = flag.Float64("shed-slack", 0.15, "gate: allowed absolute shed-rate growth")
		quiet    = flag.Bool("q", false, "suppress the summary table")
	)
	flag.Parse()

	if err := run(*mixList, *duration, *seed, *scale, *out, *in, *baseline,
		scenario.GateOptions{P99Factor: *p99f, P99SlackMs: *p99slack, ShedSlack: *shed}, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "seculator-workloads:", err)
		os.Exit(1)
	}
}

func run(mixList string, duration time.Duration, seed int64, scale float64,
	out, in, baseline string, gate scenario.GateOptions, quiet bool) error {
	var suite scenario.Suite
	if in != "" {
		if baseline == "" {
			return fmt.Errorf("-in requires -baseline (nothing else to do with an existing result)")
		}
		data, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		suite, err = scenario.DecodeSuite(data)
		if err != nil {
			return err
		}
	} else {
		mixes, err := selectMixes(mixList)
		if err != nil {
			return err
		}
		suite, err = scenario.RunAll(context.Background(), mixes, scenario.Options{
			Duration: duration, Seed: seed, Scale: scale,
		})
		if err != nil {
			return err
		}
		suite.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}

	if !quiet {
		fmt.Print(suite.Table())
	}
	if out != "" {
		data, err := suite.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		base, err := scenario.DecodeSuite(data)
		if err != nil {
			return err
		}
		if violations := scenario.Gate(suite, base, gate); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "GATE FAIL:", v)
			}
			return fmt.Errorf("%d workload gate violation(s) against %s", len(violations), baseline)
		}
		fmt.Printf("workload gate: %d mix(es) within tolerance of %s\n", len(base.Mixes), baseline)
	}
	return nil
}

func selectMixes(list string) ([]workload.Mix, error) {
	if list == "" || list == "all" {
		return workload.Mixes(), nil
	}
	var out []workload.Mix
	for _, name := range strings.Split(list, ",") {
		m, err := workload.MixByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
