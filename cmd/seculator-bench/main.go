// Command seculator-bench regenerates the paper's evaluation: every figure
// and table of the experiment index in DESIGN.md.
//
// Usage:
//
//	seculator-bench               # everything
//	seculator-bench -exp fig7     # one experiment
//	seculator-bench -exp table6
//	seculator-bench -parallel 8   # pin the fan-out worker count
//	seculator-bench -cache-stats  # report simulation-cache hits/misses
//
// Experiments: fig4, fig5, fig7, fig8, fig9, table5, table6, matrix, energy,
// sensitivity, patterns, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"seculator"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig4, fig5, fig7, fig8, fig9, table5, table6, matrix, energy, sensitivity, patterns, all)")
	format := flag.String("format", "text", "output format: text or markdown")
	par := flag.Int("parallel", 0, "worker count for experiment fan-out (0 = GOMAXPROCS, 1 = serial)")
	stats := flag.Bool("cache-stats", false, "print simulation-cache hit/miss counters after the run")
	flag.Parse()
	seculator.SetParallelism(*par)

	show := func(t seculator.Table) {
		if *format == "markdown" {
			fmt.Println(t.Markdown())
			return
		}
		fmt.Println(t)
	}

	cfg := seculator.DefaultConfig()
	ran := false
	want := func(name string) bool {
		if *exp == "all" || *exp == name {
			ran = true
			return true
		}
		return false
	}

	if want("fig4") || want("fig5") {
		res, err := seculator.Fig4Characterization(cfg)
		check(err)
		if *exp != "fig5" {
			show(res.Fig4Table())
		}
		if *exp != "fig4" {
			show(res.Fig5Table())
		}
	}
	if want("fig7") || want("fig8") {
		res, err := seculator.Fig7Performance(cfg)
		check(err)
		if *exp != "fig8" {
			show(res.Fig7Table())
			fmt.Printf("mean speedup of Seculator over TNPU: %.1f%%\n",
				(res.Mean(seculator.Seculator, false)/res.Mean(seculator.TNPU, false)-1)*100)
			fmt.Printf("mean speedup of Seculator over GuardNN: %.1f%%\n\n",
				(res.Mean(seculator.Seculator, false)/res.Mean(seculator.GuardNN, false)-1)*100)
		}
		if *exp != "fig7" {
			show(res.Fig8Table())
		}
	}
	if want("fig9") {
		res, err := seculator.Fig9Widening(cfg)
		check(err)
		show(res.Fig9Table())
	}
	if want("table5") {
		show(seculator.Table5Matrix())
	}
	if want("table6") {
		show(seculator.Table6Hardware())
	}
	if want("energy") {
		net, err := seculator.NetworkByName("ResNet18")
		check(err)
		tbl, err := seculator.EnergyTable(net, cfg)
		check(err)
		show(tbl)
	}
	if want("sensitivity") {
		net, err := seculator.NetworkByName("ResNet18")
		check(err)
		bw, err := seculator.SweepBandwidth(net, cfg, []float64{0.11, 0.22, 0.44})
		check(err)
		show(seculator.SweepTable(bw))
		gb, err := seculator.SweepGlobalBuffer(net, cfg, []int{120, 240, 480})
		check(err)
		show(seculator.SweepTable(gb))
		pe, err := seculator.SweepPEArray(net, cfg, []int{16, 32, 64})
		check(err)
		show(seculator.SweepTable(pe))
		mc, err := seculator.SweepMACCache(net, cfg, []int{2, 8, 32, 64})
		check(err)
		show(seculator.SweepTable(mc))
	}
	if want("matrix") {
		tbl, err := seculator.DetectionMatrixTable(seculator.DefaultAttackScenario())
		check(err)
		show(tbl)
	}
	if want("patterns") {
		g := seculator.PatternGrid{AlphaHW: 4, AlphaC: 3, AlphaK: 2, OfmapTileBlocks: 1}
		show(seculator.PatternTable("all", g))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "seculator-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *stats {
		cs := seculator.SimCacheStats()
		fmt.Printf("sim cache: %d hits, %d misses, %d entries (%.0f%% hit rate), %d workers\n",
			cs.Hits, cs.Misses, cs.Entries, cs.HitRate()*100, seculator.Parallelism())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "seculator-bench: %v\n", err)
		os.Exit(1)
	}
}
