// Command seculator-gateway is the replica-sharding front tier: it proxies
// the seculator-serve HTTP API across N replica daemons with
// consistent-hash session routing, health-checked forwarding, live session
// migration on membership change, and hot config reload.
//
// Usage:
//
//	seculator-gateway -config gateway.json                # serve on :8090
//	seculator-gateway -replicas http://a:8080,http://b:8080
//	seculator-gateway -local 3                            # in-process fleet
//	seculator-gateway -local 2 -smoke                     # CI round trip
//	seculator-gateway -chaos -seed 1 -duration 2s         # replica-kill campaign
//
// -config points at a JSON file ({"replicas":[{"name":…,"url":…}],
// "vnodes":…,"load_factor":…}); SIGHUP or POST /admin/reload re-reads it
// and live-migrates any session whose ring owner changed, without
// dropping in-flight requests. -replicas is the config-free shorthand
// (names auto-assigned replica-0, replica-1, …).
//
// -local N starts N in-process replicas and fronts them on -addr — a
// self-contained fleet for development. -smoke is the CI mode: bring up a
// local fleet, run one session round trip through the gateway verified
// against the reference computation, then drain. -chaos runs the
// multi-replica kill campaign (traffic mid-run, one replica killed, zero
// session loss required) and exits non-zero on any violation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seculator"
	"seculator/internal/gateway"
	"seculator/internal/serve"
	"seculator/internal/serve/chaos"
	"seculator/internal/serve/client"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		cfgPath  = flag.String("config", "", "gateway config file (JSON); SIGHUP re-reads it")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (shorthand for -config)")
		adminKey = flag.String("admin-key", "", "admin key shared with the replicas' /admin surface; also gates POST /admin/reload")
		local    = flag.Int("local", 0, "start N in-process replicas and front them (self-contained fleet)")

		probeEvery = flag.Duration("probe-interval", 500*time.Millisecond, "health probe period")
		failAfter  = flag.Int("fail-after", 3, "consecutive failures before ejecting a replica")
		ejectFor   = flag.Duration("eject-for", 2*time.Second, "hold-down before an ejected replica is probed half-open")

		smoke = flag.Bool("smoke", false, "local fleet, one verified round trip through the gateway, drain, exit")

		doChaos  = flag.Bool("chaos", false, "run the replica-kill campaign instead of serving; exit 1 on violations")
		seed     = flag.Int64("seed", 1, "chaos: campaign seed")
		duration = flag.Duration("duration", 2*time.Second, "chaos: traffic window (kill lands halfway)")
		rps      = flag.Float64("rps", 40, "chaos: stateless traffic rate through the gateway")
		sessions = flag.Int("sessions", 4, "chaos: live sessions carried through the kill")
	)
	flag.Parse()

	health := gateway.HealthConfig{
		ProbeInterval: *probeEvery,
		FailAfter:     *failAfter,
		EjectFor:      *ejectFor,
	}

	switch {
	case *smoke:
		n := *local
		if n <= 0 {
			n = 2
		}
		if err := runSmoke(n); err != nil {
			fail(err)
		}
	case *doChaos:
		n := *local
		if n <= 0 {
			n = 3
		}
		if err := runChaos(*seed, n, *sessions, *rps, *duration); err != nil {
			fail(err)
		}
	case *local > 0:
		if err := runLocal(*local, *addr, health); err != nil {
			fail(err)
		}
	default:
		if err := runGateway(*addr, *cfgPath, *replicas, *adminKey, health); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "seculator-gateway: %v\n", err)
	os.Exit(1)
}

// replicasConfig expands the -replicas shorthand into a Config.
func replicasConfig(urls string) gateway.Config {
	var cfg gateway.Config
	for i, u := range strings.Split(urls, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		cfg.Replicas = append(cfg.Replicas, gateway.ReplicaConfig{
			Name: fmt.Sprintf("replica-%d", i), URL: u,
		})
	}
	return cfg
}

// runGateway serves until SIGTERM/SIGINT; SIGHUP hot-reloads the config
// file without dropping in-flight requests.
func runGateway(addr, cfgPath, replicas, adminKey string, health gateway.HealthConfig) error {
	opts := gateway.Options{ConfigPath: cfgPath, AdminKey: adminKey, Health: health}
	if cfgPath == "" {
		if replicas == "" {
			return errors.New("need -config or -replicas (or -local N)")
		}
		opts.Config = replicasConfig(replicas)
	}
	g, err := gateway.New(opts)
	if err != nil {
		return err
	}
	defer g.Close()
	return serveLoop(g, addr, cfgPath != "")
}

// serveLoop runs the HTTP front until SIGTERM/SIGINT, handling SIGHUP
// reloads when the config came from a file.
func serveLoop(g *gateway.Gateway, addr string, hupReloads bool) error {
	hs := &http.Server{Addr: addr, Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("seculator-gateway: listening on %s (ring gen %d)\n", addr, g.Gen())
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if !hupReloads {
					fmt.Println("seculator-gateway: SIGHUP ignored (no -config file)")
					continue
				}
				moved, err := g.ReloadFromFile()
				if err != nil {
					fmt.Fprintf(os.Stderr, "seculator-gateway: reload failed: %v\n", err)
					continue
				}
				fmt.Printf("seculator-gateway: reloaded (ring gen %d, %d sessions migrated)\n", g.Gen(), moved)
				continue
			}
			fmt.Printf("seculator-gateway: %v, draining\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			return hs.Shutdown(ctx)
		}
	}
}

// runLocal brings up an in-process fleet and fronts it on addr.
func runLocal(n int, addr string, health gateway.HealthConfig) error {
	lc, err := gateway.StartLocal(gateway.LocalOptions{
		Replicas: n,
		Gateway:  gateway.Options{Health: health},
	})
	if err != nil {
		return err
	}
	defer lc.Stop()
	for _, r := range lc.Replicas {
		fmt.Printf("seculator-gateway: local %s at %s\n", r.Name, r.URL)
	}
	return serveLoop(lc.Gateway, addr, false)
}

// runChaos executes the replica-kill campaign and reports.
func runChaos(seed int64, replicas, sessions int, rps float64, duration time.Duration) error {
	res, err := chaos.RunGateway(context.Background(), chaos.GatewayOptions{
		Seed:     seed,
		Replicas: replicas,
		Sessions: sessions,
		RPS:      rps,
		Duration: duration,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(res)
	if !res.Ok() {
		return fmt.Errorf("chaos: %d violations", len(res.Violations))
	}
	return nil
}

// runSmoke is the CI round trip: a session inference through the gateway
// whose output checksum must equal the local reference computation, the
// session's sealed state visible via the gateway snapshot API, then a
// clean stop.
func runSmoke(replicas int) error {
	lc, err := gateway.StartLocal(gateway.LocalOptions{Replicas: replicas})
	if err != nil {
		return err
	}
	defer lc.Stop()
	c := client.New(lc.GatewayURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		return fmt.Errorf("smoke: create session: %w", err)
	}
	const seed = 7
	resp, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: seed, Session: sess.SessionID})
	if err != nil {
		return fmt.Errorf("smoke: infer: %w", err)
	}
	if resp.Replica == "" {
		return errors.New("smoke: response not stamped with the serving replica")
	}

	net := serve.MiniNet()
	in, ws := seculator.RandomModel(net, seed)
	golden, err := seculator.ReferenceInference(net, in, ws)
	if err != nil {
		return fmt.Errorf("smoke: reference: %w", err)
	}
	if want := serve.OutputSum(golden); resp.OutputSum != want {
		return fmt.Errorf("smoke: output checksum %#x, reference %#x", resp.OutputSum, want)
	}
	if _, err := c.SnapshotSession(ctx, sess.SessionID); err != nil {
		return fmt.Errorf("smoke: snapshot through gateway: %w", err)
	}
	if err := c.CloseSession(ctx, sess.SessionID); err != nil {
		return fmt.Errorf("smoke: close session: %w", err)
	}
	fmt.Printf("SMOKE OK: %d replicas behind the gateway, served by %s, checksum %#x\n",
		replicas, resp.Replica, resp.OutputSum)
	return nil
}
