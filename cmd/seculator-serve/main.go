// Command seculator-serve is the secure inference serving daemon: it
// exposes the Seculator host/NPU stack over HTTP with session management,
// micro-batching and admission control, and drains gracefully on
// SIGTERM/SIGINT.
//
// Usage:
//
//	seculator-serve                          # serve on :8080
//	seculator-serve -addr 127.0.0.1:9090
//	seculator-serve -batch 16 -linger 5ms -queue 512 -workers 8
//	seculator-serve -infer-parallel 8           # shard each request's crypto
//	seculator-serve -loadgen -rps 200 -duration 5s -network Mini
//	seculator-serve -loadgen -target http://host:8080 -rps 100
//	seculator-serve -loadgen -gateway http://gw:8080 -rps 100   # per-replica attribution
//	seculator-serve -loadgen -replicas 2 -rps 100    # in-process cluster + gateway
//	seculator-serve -tenants tenants.json       # multi-tenant front
//	seculator-serve -snapshot-key $KEY          # stable session-snapshot sealing
//	seculator-serve -chaos -seed 1 -duration 1s # seeded fault campaign, exit 0/1
//	seculator-serve -smoke                   # start, one round-trip, drain
//	seculator-serve -loadgen -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -loadgen without -target starts an in-process server, drives it at the
// requested rate, prints p50/p95/p99 latency and sustained RPS, and exits.
// -gateway points the generator at a replica-sharding gateway (the report
// then attributes completions per replica); -replicas N instead starts an
// in-process N-replica cluster fronted by a gateway and drives that.
// -tenants takes a path to (or an inline) JSON array of tenant configs
// ({"key","name","weight","rate_rps","burst","max_pending"}); without it
// the server runs single-tenant and unauthenticated as before.
// -chaos runs the three-phase isolation campaign from the chaos package
// (honest + slow + adversarial tenants, mid-attack restart) and exits
// non-zero if any isolation invariant is violated.
// -smoke is the CI mode: start, one session round-trip verified against
// the reference computation, graceful shutdown.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"seculator"
	"seculator/internal/gateway"
	"seculator/internal/serve"
	"seculator/internal/serve/chaos"
	"seculator/internal/serve/client"
	"seculator/internal/serve/loadgen"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		queue   = flag.Int("queue", 256, "admission queue depth (429 beyond it)")
		batch   = flag.Int("batch", 8, "max requests per micro-batch")
		linger  = flag.Duration("linger", 2*time.Millisecond, "batch formation window")
		workers = flag.Int("workers", 0, "batch executor pool size (0 = GOMAXPROCS)")
		inferP  = flag.Int("infer-parallel", 0, "intra-inference crypto workers per request (0 = process default, 1 = serial)")
		idle    = flag.Duration("session-idle", 5*time.Minute, "session idle expiry")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-request deadline")

		tenants = flag.String("tenants", "", "tenant registry: path to, or inline, JSON array of tenant configs (empty = single anonymous tenant)")
		snapKey = flag.String("snapshot-key", "", "session-snapshot sealing key (empty = random per process; set it so snapshots survive restarts)")

		doChaos = flag.Bool("chaos", false, "run the seeded isolation campaign instead of serving; exit 1 on violations")
		seed    = flag.Int64("seed", 1, "chaos campaign / loadgen schedule seed (same seed = identical request schedule)")
		restart = flag.Bool("restart", true, "chaos: kill and restore the server mid-attack")

		doLoad   = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target   = flag.String("target", "", "loadgen target base URL (empty = in-process server)")
		gwURL    = flag.String("gateway", "", "loadgen: gateway base URL to drive (reports per-replica attribution)")
		replicas = flag.Int("replicas", 0, "loadgen: start an in-process N-replica cluster behind a gateway and drive that")
		rps      = flag.Float64("rps", 100, "loadgen target arrival rate")
		duration = flag.Duration("duration", 3*time.Second, "loadgen run length")
		network  = flag.String("network", "Mini", "loadgen network")
		sessions = flag.Bool("sessions", false, "loadgen: bind requests to a secure session")
		apiKey   = flag.String("api-key", "", "loadgen: API key sent with every request (for tenant-gated targets)")
		fixed    = flag.Bool("fixed-model", false, "loadgen: pin one model and vary inputs (residency-cache serving shape)")
		mseed    = flag.Int64("model-seed", 1, "loadgen: pinned model seed under -fixed-model")
		poisson  = flag.Bool("poisson", false, "loadgen: exponential (memoryless) inter-arrival gaps instead of uniform spacing")
		noRes    = flag.Bool("no-residency", false, "disable the verified-weight residency cache (per-request provisioning)")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (loadgen/chaos/smoke)")
		memProf = flag.String("memprofile", "", "write an end-of-run allocation profile to this file")

		smoke = flag.Bool("smoke", false, "start, one verified round-trip, graceful drain, exit")
	)
	flag.Parse()

	opts := serve.Options{
		Scheduler: serve.SchedulerConfig{
			Workers:  *workers,
			MaxQueue: *queue,
			MaxBatch: *batch,
			Linger:   *linger,
		},
		SessionIdle:    *idle,
		DefaultTimeout: *timeout,
		InferWorkers:   *inferP,
		Residency:      serve.ResidencyConfig{Disabled: *noRes},
	}
	if *tenants != "" {
		tcs, err := loadTenants(*tenants)
		if err != nil {
			fail(err)
		}
		opts.Tenants = tcs
	}
	if *snapKey != "" {
		opts.SnapshotKey = []byte(*snapKey)
	}

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}

	switch {
	case *smoke:
		if err := runSmoke(opts); err != nil {
			stopProf()
			fail(err)
		}
	case *doChaos:
		if err := runChaos(opts, *seed, *duration, *restart); err != nil {
			stopProf()
			fail(err)
		}
	case *doLoad:
		if err := runLoadgen(opts, loadTarget(*target, *gwURL), *replicas, *apiKey, loadgen.Options{
			RPS: *rps, Duration: *duration, Network: *network, Sessions: *sessions,
			FixedModel: *fixed, ModelSeed: *mseed, Seed: *seed, Poisson: *poisson,
		}); err != nil {
			stopProf()
			fail(err)
		}
	default:
		if err := runServer(opts, *addr); err != nil {
			stopProf()
			fail(err)
		}
	}
	if err := stopProf(); err != nil {
		fail(err)
	}
}

// startProfiles arms the requested pprof outputs and returns the function
// that flushes them; the in-process loadgen runs server and generator in
// one process, so a single CPU/alloc profile covers the whole serving hot
// path. The returned stop is idempotent.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		fmt.Printf("seculator-serve: profiling CPU to %s\n", cpuPath)
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			fmt.Printf("seculator-serve: wrote allocation profile to %s\n", memPath)
		}
		return nil
	}, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "seculator-serve: %v\n", err)
	os.Exit(1)
}

// loadTenants parses the -tenants argument: a path to a JSON file, or the
// JSON array itself.
func loadTenants(arg string) ([]serve.TenantConfig, error) {
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "[") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("tenants: %w", err)
		}
		data = b
	}
	var tcs []serve.TenantConfig
	if err := json.Unmarshal(data, &tcs); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	for i, tc := range tcs {
		if tc.Key == "" {
			return nil, fmt.Errorf("tenants: entry %d has no key", i)
		}
	}
	return tcs, nil
}

// runChaos drives the three-phase isolation campaign against an
// in-process server and exits non-zero on any invariant violation. The
// scheduler shape comes from the serving flags; the tenant cast is fixed
// (honest on sessions, slow, adversarial at 2x its rate limit) so the
// campaign always exercises every fault class.
func runChaos(opts serve.Options, seed int64, phase time.Duration, restart bool) error {
	res, err := chaos.Run(context.Background(), chaos.Options{
		Seed: seed,
		Plans: []chaos.TenantPlan{
			{
				Tenant:   serve.TenantConfig{Key: "k-good", Name: "good", Weight: 2, RateRPS: 200, Burst: 50, MaxPending: 64},
				RPS:      30,
				Sessions: true,
			},
			{
				Tenant:           serve.TenantConfig{Key: "k-slow", Name: "slow", Weight: 1, RateRPS: 200, Burst: 50, MaxPending: 64},
				RPS:              10,
				SlowEveryLayerMs: 2,
			},
			{
				Tenant:      serve.TenantConfig{Key: "k-evil", Name: "evil", Weight: 1, RateRPS: 40, Burst: 10, MaxPending: 64},
				RPS:         20,
				Adversarial: true,
			},
		},
		Scheduler: opts.Scheduler,
		Quarantine: serve.QuarantineConfig{
			ThrottleAfter: 1, OpenAfter: 3, Window: time.Minute,
			OpenFor: 50 * time.Millisecond, MaxOpenFor: 300 * time.Millisecond,
			ThrottleRPS: 1000, ThrottleBurst: 1000, ProbeSuccesses: 2,
		},
		SnapshotKey: opts.SnapshotKey,
		PhaseFor:    phase,
		Restart:     restart,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(res)
	if !res.Ok() {
		return fmt.Errorf("chaos: %d isolation violations", len(res.Violations))
	}
	return nil
}

// runServer serves until SIGTERM/SIGINT, then drains: the listener closes,
// in-flight HTTP requests finish, the scheduler delivers everything it
// admitted, and only then does the process exit.
func runServer(opts serve.Options, addr string) error {
	srv, err := serve.New(opts)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("seculator-serve: listening on %s\n", addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("seculator-serve: %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Close(ctx); err != nil {
		return fmt.Errorf("scheduler drain: %w", err)
	}
	fmt.Println("seculator-serve: drained cleanly")
	return nil
}

// startInProcess brings a server up on a loopback listener and returns its
// base URL plus a drain function.
func startInProcess(opts serve.Options) (string, func() error, error) {
	srv, err := serve.New(opts)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	drain := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		return srv.Close(ctx)
	}
	return "http://" + ln.Addr().String(), drain, nil
}

// loadTarget resolves the loadgen base URL: -gateway wins over -target so
// a gateway run gets per-replica attribution without repurposing -target.
func loadTarget(target, gatewayURL string) string {
	if gatewayURL != "" {
		return gatewayURL
	}
	return target
}

func runLoadgen(opts serve.Options, target string, replicas int, apiKey string, lopts loadgen.Options) error {
	base := target
	drain := func() error { return nil }
	switch {
	case base != "":
		// remote target; nothing to start or drain
	case replicas > 0:
		lc, err := gateway.StartLocal(gateway.LocalOptions{
			Replicas:     replicas,
			ServeOptions: func(int) serve.Options { return opts },
		})
		if err != nil {
			return err
		}
		base = lc.GatewayURL
		drain = func() error { lc.Stop(); return nil }
		fmt.Printf("seculator-serve: in-process %d-replica cluster behind gateway at %s\n", replicas, base)
	default:
		var err error
		base, drain, err = startInProcess(opts)
		if err != nil {
			return err
		}
		fmt.Printf("seculator-serve: in-process server at %s\n", base)
	}
	c := client.New(base, nil)
	if apiKey != "" {
		c.SetAPIKey(apiKey)
	}
	rep, err := loadgen.Run(context.Background(), c, lopts)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	m, err := c.Metrics(context.Background())
	if err == nil {
		fmt.Println("server metrics after run:")
		fmt.Print(m)
	}
	return drain()
}

// runSmoke is the CI round-trip: session inference over HTTP whose output
// checksum must equal the local reference computation, then a clean drain.
func runSmoke(opts serve.Options) error {
	base, drain, err := startInProcess(opts)
	if err != nil {
		return err
	}
	c := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		return fmt.Errorf("smoke: create session: %w", err)
	}
	const seed = 7
	resp, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: seed, Session: sess.SessionID})
	if err != nil {
		return fmt.Errorf("smoke: infer: %w", err)
	}

	net := serve.MiniNet()
	in, ws := seculator.RandomModel(net, seed)
	golden, err := seculator.ReferenceInference(net, in, ws)
	if err != nil {
		return fmt.Errorf("smoke: reference: %w", err)
	}
	if want := serve.OutputSum(golden); resp.OutputSum != want {
		return fmt.Errorf("smoke: output checksum %#x, reference %#x", resp.OutputSum, want)
	}
	if resp.Commands != len(net.Layers) {
		return fmt.Errorf("smoke: %d commands for %d layers", resp.Commands, len(net.Layers))
	}
	if err := c.CloseSession(ctx, sess.SessionID); err != nil {
		return fmt.Errorf("smoke: close session: %w", err)
	}
	if err := drain(); err != nil {
		return fmt.Errorf("smoke: drain: %w", err)
	}
	fmt.Printf("SMOKE OK: %s over HTTP, %d commands, checksum %#x, batch %d, drained cleanly\n",
		resp.Network, resp.Commands, resp.OutputSum, resp.BatchSize)
	return nil
}
