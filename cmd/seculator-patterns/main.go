// Command seculator-patterns prints the paper's VN pattern tables
// (Tables 2-4 and 8-10) for a chosen tile grid, and can expand the VN
// stream of an arbitrary triplet — the tool behind Section 5's analysis.
//
// Usage:
//
//	seculator-patterns -table table2-ir -ahw 3 -ac 4 -ak 2
//	seculator-patterns -table all
//	seculator-patterns -expand 2,3,4     # stream of (1^2,2^2,3^2)^4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"seculator"
)

func main() {
	var (
		table    = flag.String("table", "all", "pattern table: table2-ir, table2-or, table3, table4, table8, table9, table10-ir, table10-or, all")
		ahw      = flag.Int("ahw", 4, "alpha_HW: spatial tiles per fmap")
		ac       = flag.Int("ac", 3, "alpha_C: input channel groups")
		ak       = flag.Int("ak", 2, "alpha_K: output channel groups")
		expand   = flag.String("expand", "", "expand a triplet eta,kappa,rho into its VN stream")
		parseExp = flag.String("parse", "", "parse a symbolic expression like '(1^2,2^2...4^2)^3'")
	)
	flag.Parse()

	if *parseExp != "" {
		tr, err := seculator.ParsePattern(*parseExp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seculator-patterns: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("triplet : eta=%d kappa=%d rho=%d  (%s, class %s, %d VNs)\n",
			tr.Eta, tr.Kappa, tr.Rho, tr, seculator.ClassifyPattern(tr), tr.Len())
		return
	}
	if *expand != "" {
		expandTriplet(*expand)
		return
	}
	g := seculator.PatternGrid{AlphaHW: *ahw, AlphaC: *ac, AlphaK: *ak, OfmapTileBlocks: 1}
	tbl := seculator.PatternTable(*table, g)
	if len(tbl.Rows) == 0 {
		fmt.Fprintf(os.Stderr, "seculator-patterns: unknown table %q\n", *table)
		os.Exit(2)
	}
	fmt.Println(tbl)
}

func expandTriplet(spec string) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		fmt.Fprintln(os.Stderr, "seculator-patterns: -expand wants eta,kappa,rho")
		os.Exit(2)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "seculator-patterns: bad triplet component %q\n", p)
			os.Exit(2)
		}
		vals[i] = v
	}
	tr := seculator.Triplet{Eta: vals[0], Kappa: vals[1], Rho: vals[2]}
	fmt.Printf("triplet : %s  (class %s, %d VNs)\n", tr, seculator.ClassifyPattern(tr), tr.Len())
	gen := seculator.NewVNGenerator(tr)
	fmt.Print("stream  : ")
	for {
		v, ok := gen.Next()
		if !ok {
			break
		}
		fmt.Printf("%d ", v)
	}
	fmt.Println()
}
