// Command seculator-sim runs one network on one (or every) simulated design
// and prints cycles, normalized performance, traffic breakdown, cache
// statistics and an optional per-layer table.
//
// Usage:
//
//	seculator-sim -network ResNet18 -design Seculator
//	seculator-sim -network VGG16 -all -layers
//	seculator-sim -conformance 200 -seed 1
//	seculator-sim -replay 'seed=7 oracle=vn config={...}'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"seculator"
	"seculator/internal/conformance"
	"seculator/internal/sim"
)

func main() {
	var (
		networkName = flag.String("network", "ResNet18", "network (MobileNet, ResNet18, AlexNet, VGG16, VGG19, BERT-base, TinyTransformer)")
		designName  = flag.String("design", "Seculator", "design (Baseline, Secure, TNPU, GuardNN, Seculator, Seculator+)")
		all         = flag.Bool("all", false, "run every design and print a comparison")
		layers      = flag.Bool("layers", false, "print the per-layer breakdown")
		showTrace   = flag.Bool("trace", false, "capture and summarize the memory-address trace")
		asJSON      = flag.Bool("json", false, "emit the result as JSON")
		confN       = flag.Int("conformance", 0, "run N seeded conformance trials through all six oracles and exit")
		confSeed    = flag.Int64("seed", 1, "base seed for -conformance (trial i uses seed+i)")
		replayLine  = flag.String("replay", "", "replay one conformance repro line ('seed=… oracle=… config=…', or '-' to read from stdin)")
	)
	flag.Parse()

	if *replayLine != "" {
		replayRepro(*replayLine)
		return
	}
	if *confN > 0 {
		runConformance(*confSeed, *confN)
		return
	}

	net, err := seculator.NetworkByName(*networkName)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := seculator.DefaultConfig()

	if *showTrace {
		d := seculator.Baseline
		if !*all {
			var err error
			d, err = designByName(*designName)
			if err != nil {
				fatalf("%v", err)
			}
		}
		tr, err := seculator.CaptureTrace(net, d, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(tr.Summary())
		fmt.Printf("read/write ratio: %.2f\n", tr.ReadWriteRatio())
		for _, f := range tr.LayerFootprints() {
			fmt.Printf("  layer %2d: %8d read blk  %8d write blk  %8d unique\n",
				f.Layer, f.ReadBlocks, f.WriteBlocks, f.UniqueBlocks)
		}
		return
	}

	if *all {
		runAll(net, cfg, *layers)
		return
	}
	design, err := designByName(*designName)
	if err != nil {
		fatalf("%v", err)
	}
	base, err := seculator.Run(net, seculator.Baseline, cfg)
	if err != nil {
		fatalf("baseline: %v", err)
	}
	res, err := seculator.Run(net, design, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
		return
	}
	printResult(res, base, cfg, *layers)
}

func runAll(net seculator.Network, cfg seculator.Config, layers bool) {
	results, err := seculator.RunAll(net, seculator.Designs(), cfg)
	if err != nil {
		fatalf("%v", err)
	}
	base := results[0]
	fmt.Printf("%s (%d layers, %.1fM params)\n\n", net.Name, len(net.Layers), float64(net.Params())/1e6)
	fmt.Printf("%-11s %14s %8s %9s %12s\n", "design", "cycles", "perf", "traffic", "overhead-blk")
	for _, r := range results {
		fmt.Printf("%-11s %14d %8.3f %9.3f %12d\n",
			r.Design, r.Cycles, r.Performance(base), r.NormalizedTraffic(base), r.Traffic.Overhead())
	}
	if layers {
		for _, r := range results {
			fmt.Println()
			printResult(r, base, cfg, true)
		}
	}
}

func printResult(r, base seculator.Result, cfg seculator.Config, layers bool) {
	fmt.Printf("network  : %s\n", r.Network)
	fmt.Printf("design   : %s\n", r.Design)
	fmt.Printf("cycles   : %d (%.3f ms at %.2f GHz)\n",
		r.Cycles, r.Seconds(cfg.NPU.FreqHz)*1e3, cfg.NPU.FreqHz/1e9)
	fmt.Printf("perf     : %.3f (baseline = 1.0)\n", r.Performance(base))
	fmt.Printf("traffic  : %.3f x baseline (%d blocks, %d metadata)\n",
		r.NormalizedTraffic(base), r.Traffic.Total(), r.Traffic.Overhead())
	for _, k := range sim.TrafficKinds() {
		if n := r.Traffic.ByKind(k); n > 0 {
			fmt.Printf("  %-8s %d blocks\n", k, n)
		}
	}
	if r.HasMACCache {
		fmt.Printf("mac cache    : %.1f%% miss (%d accesses)\n", r.MACCache.MissRate()*100, r.MACCache.Accesses)
	}
	if r.HasCounterCache {
		fmt.Printf("counter cache: %.1f%% miss (%d accesses)\n", r.CounterCache.MissRate()*100, r.CounterCache.Accesses)
	}
	if layers {
		fmt.Printf("\n%-12s %12s %12s %12s %10s %10s %6s %s\n",
			"layer", "cycles", "compute", "memory", "data-blk", "extra-blk", "util", "bound")
		for _, l := range r.Layers {
			bound := "compute"
			if l.MemoryBound {
				bound = "memory"
			}
			fmt.Printf("%-12s %12d %12d %12d %10d %10d %5.1f%% %s\n",
				l.Name, l.Cycles, l.ComputeCycles, l.MemCycles, l.DataBlocks, l.ExtraBlocks,
				l.Utilization*100, bound)
		}
	}
}

// runConformance drives n seeded trials through the six-oracle battery.
// Any failure prints its minimized one-line repro and the process exits 1.
func runConformance(base int64, n int) {
	fmt.Printf("conformance: %d trials, seeds %d..%d, oracles: %s %s %s %s %s %s\n",
		n, base, base+int64(n)-1, conformance.OracleVN, conformance.OracleCrossScheme,
		conformance.OracleSerialParallel, conformance.OracleAttack, conformance.OraclePipeline,
		conformance.OracleGateway)
	fails := conformance.Run(base, n, func(done int, f *conformance.Failure) {
		if f != nil {
			fmt.Printf("FAIL %s\n", f.ReproLine())
			fmt.Printf("     %v\n", f.Err)
		}
		if done%50 == 0 {
			fmt.Printf("  %d/%d trials done\n", done, n)
		}
	})
	if len(fails) > 0 {
		fatalf("conformance: %d/%d trials failed (repro lines above replay with -replay)", len(fails), n)
	}
	fmt.Printf("conformance: all %d trials passed\n", n)
}

// replayRepro re-executes one repro line deterministically.
func replayRepro(line string) {
	if line == "-" {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		if !sc.Scan() {
			fatalf("replay: no repro line on stdin")
		}
		line = sc.Text()
	}
	cfg, oracle, err := conformance.ParseRepro(line)
	if err != nil {
		fatalf("%v", err)
	}
	if err := conformance.Replay(cfg, oracle); err != nil {
		fatalf("replay: failure reproduces: %v", err)
	}
	which := oracle
	if which == "" {
		which = "all oracles"
	}
	fmt.Printf("replay: seed=%d passes %s\n", cfg.Seed, which)
}

func designByName(name string) (seculator.Design, error) {
	for _, d := range seculator.Designs() {
		if strings.EqualFold(d.String(), name) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown design %q (want one of Baseline, Secure, TNPU, GuardNN, Seculator, Seculator+)", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "seculator-sim: "+format+"\n", args...)
	os.Exit(1)
}
