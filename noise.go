package seculator

import (
	"context"

	"seculator/internal/runner"
	"seculator/internal/trace"
	"seculator/internal/widen"
	"seculator/internal/workload"
)

// IntersperseDummy builds a Seculator+ noise schedule: after every `period`
// real layers, one decoy layer from the dummy network is inserted. The
// result is an execution schedule for RunLayerSchedule (decoys need not
// chain with the victim).
func IntersperseDummy(real, dummy Network, period int) ([]Layer, error) {
	return widen.Intersperse(real, dummy, period)
}

// RunLayerSchedule simulates an arbitrary layer schedule (e.g. a
// dummy-interspersed execution) on a design.
func RunLayerSchedule(name string, layers []Layer, d Design, cfg Config) (Result, error) {
	return runner.RunLayers(context.Background(), name, layers, d, cfg)
}

// RunLayerScheduleContext is RunLayerSchedule with cancellation between
// layers.
func RunLayerScheduleContext(ctx context.Context, name string, layers []Layer, d Design, cfg Config) (Result, error) {
	return runner.RunLayers(ctx, name, layers, d, cfg)
}

// CaptureLayerTrace records the address trace of a layer schedule.
func CaptureLayerTrace(name string, layers []Layer, d Design, cfg Config) (*MemoryTrace, error) {
	return trace.CaptureLayers(context.Background(), name, layers, d, cfg)
}

// PreprocStyle is the computation style of an image pre-processing stage
// (Tables 8-10).
type PreprocStyle = workload.PreprocStyle

// Pre-processing styles of Section 5.2.1.
const (
	// PreprocStyle1 transforms each channel independently.
	PreprocStyle1 = workload.Style1
	// PreprocStyle2 folds all channels into one output channel.
	PreprocStyle2 = workload.Style2
	// PreprocStyle3 folds all channels into several transformed outputs.
	PreprocStyle3 = workload.Style3
)

// PreprocStage builds one pre-processing layer of the given style.
func PreprocStage(name string, style PreprocStyle, c, h, w, r, k int) (Layer, error) {
	return workload.PreprocStage(name, style, c, h, w, r, k)
}

// PreprocPipeline builds a camera-style pre-processing pipeline exercising
// all three styles over an h x w RGB image.
func PreprocPipeline(h, w int) (Network, error) {
	return workload.PreprocPipeline(h, w)
}
