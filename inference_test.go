package seculator

import (
	"errors"
	"strings"
	"testing"

	"seculator/internal/mac"
)

func demoNet() Network {
	return Network{
		Name: "demo",
		Layers: []Layer{
			{Name: "c1", Type: Conv, C: 3, H: 12, W: 12, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "p1", Type: Pool, C: 8, H: 12, W: 12, K: 8, R: 2, S: 2, Stride: 2, Valid: true},
			{Name: "fc", Type: FC, C: 8 * 6 * 6, H: 1, W: 1, K: 4, R: 1, S: 1, Stride: 1},
		},
	}
}

func TestSecureInferenceEquivalence(t *testing.T) {
	net := demoNet()
	in, ws := RandomModel(net, 99)
	golden, err := ReferenceInference(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SecureInference(net, in, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("secure inference diverged from reference")
	}
}

func TestSecureInferenceDetectsHookTamper(t *testing.T) {
	net := demoNet()
	in, ws := RandomModel(net, 99)
	_, err := SecureInference(net, in, ws, func(phase int, d *DRAM) {
		if phase == 0 {
			var last uint64
			for addr := uint64(0); addr < 100000; addr++ {
				if d.Peek(addr) != nil {
					last = addr
				}
			}
			d.Tamper(last, 1, 0x10)
		}
	})
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("hook tamper not detected: %v", err)
	}
}

func TestTransformerSurface(t *testing.T) {
	net, err := Transformer(TinyTransformer())
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunAll(net, []Design{Baseline, TNPU, Seculator}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := results[0]
	if !(results[2].Performance(base) > results[1].Performance(base)) {
		t.Fatal("Seculator must beat TNPU on the transformer too")
	}
	if _, err := Transformer(TransformerConfig{}); err == nil {
		t.Fatal("invalid transformer config accepted")
	}
	if n, err := NetworkByName("TinyTransformer"); err != nil || len(n.Layers) == 0 {
		t.Fatalf("ByName transformer lookup: %v", err)
	}
}

func TestCaptureTraceSurface(t *testing.T) {
	tr, err := CaptureTrace(demoNet(), Baseline, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 || tr.InferredLayerCount() != len(demoNet().Layers) {
		t.Fatalf("trace: %s", tr.Summary())
	}
}

func TestDetectionMatrixSurface(t *testing.T) {
	cells, err := DetectionMatrix(DefaultAttackScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5*6 {
		t.Fatalf("matrix cells = %d, want 30", len(cells))
	}
	for _, c := range cells {
		if c.Design == Baseline && c.Detected {
			t.Fatal("baseline cell detected an attack")
		}
		if c.Design != Baseline && c.Attack != 0 && !c.Detected {
			t.Fatalf("%s/%s undetected", c.Design, c.Attack)
		}
	}
	tbl, err := DetectionMatrixTable(DefaultAttackScenario())
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	if !strings.Contains(s, "SILENT-CORRUPT") || !strings.Contains(s, "DETECTED") {
		t.Fatalf("matrix table malformed:\n%s", s)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("matrix rows = %d", len(tbl.Rows))
	}
}

func TestNoiseScheduleSurface(t *testing.T) {
	victim := demoNet()
	dummy, err := DummyNetwork("noise", 2, 8, 8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := IntersperseDummy(victim, dummy, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLayerSchedule("noisy", sched, SeculatorPlus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(victim, SeculatorPlus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= clean.Cycles {
		t.Fatal("noise injection must cost cycles")
	}
	tr, err := CaptureLayerTrace("noisy", sched, SeculatorPlus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.InferredLayerCount() <= len(victim.Layers) {
		t.Fatalf("noise did not inflate inferred depth: %d", tr.InferredLayerCount())
	}
}

func TestPreprocSurface(t *testing.T) {
	pp, err := PreprocPipeline(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunAll(pp, []Design{Baseline, Seculator}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := results[1].Performance(results[0]); p <= 0.9 {
		t.Fatalf("Seculator on preprocessing should be near-free, got %.3f", p)
	}
	if _, err := PreprocStage("s", PreprocStyle2, 3, 16, 16, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGANSurface(t *testing.T) {
	net, err := GANGenerator(TinyGAN())
	if err != nil {
		t.Fatal(err)
	}
	in, ws := RandomModel(net, 3)
	golden, err := ReferenceInference(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SecureInference(net, in, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("GAN secure inference diverged")
	}
	if _, err := Deconv("d", 4, 8, 8, 2, 3, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := GANGenerator(GANGeneratorConfig{}); err == nil {
		t.Fatal("invalid GAN config accepted")
	}
}

func TestEnergySurface(t *testing.T) {
	tbl, err := EnergyTable(demoNet(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("energy rows = %d", len(tbl.Rows))
	}
	if m := DefaultEnergyModel(); m.DRAMBlockNJ <= 0 {
		t.Fatal("default energy model degenerate")
	}
}

func TestSweepSurface(t *testing.T) {
	cfg := DefaultConfig()
	net := demoNet()
	res, err := SweepBandwidth(net, cfg, []float64{0.11, 0.44})
	if err != nil {
		t.Fatal(err)
	}
	tbl := SweepTable(res)
	if len(tbl.Rows) != 2 || len(tbl.Header) != 6 {
		t.Fatalf("sweep table shape: %dx%d", len(tbl.Rows), len(tbl.Header))
	}
	if _, err := SweepGlobalBuffer(net, cfg, []int{240}); err != nil {
		t.Fatal(err)
	}
	if _, err := SweepPEArray(net, cfg, []int{16}); err != nil {
		t.Fatal(err)
	}
	if _, err := SweepMACCache(net, cfg, []int{8}); err != nil {
		t.Fatal(err)
	}
}

func TestHostChannelSurface(t *testing.T) {
	key := []byte("k0")
	h := NewHostController(key)
	e := NewNPUEndpoint(key)
	cmd := HostCommand{
		LayerIndex: 1,
		Layer:      Layer{Type: Conv, C: 3, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
		Triplet:    Triplet{Eta: 1, Kappa: 2, Rho: 3},
	}
	got, err := e.Receive(h.Issue(cmd))
	if err != nil || got.Triplet != cmd.Triplet {
		t.Fatalf("channel round trip: %v %+v", err, got)
	}
	p := h.Issue(cmd)
	p.Payload[0] ^= 1
	if _, err := e.Receive(p); err == nil {
		t.Fatal("tampered command accepted")
	}
	if !e.Breached() {
		t.Fatal("breach not latched")
	}
}

func TestPlanDefenceSurface(t *testing.T) {
	p, err := PlanDefence(demoNet(), DefaultConfig(), 0.3, 30, DefaultDefenceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Leakage < 0.3 || p.Overhead <= 0 {
		t.Fatalf("bad plan: %+v", p)
	}
}
