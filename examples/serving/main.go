// Serving demonstrates the secure inference service end to end, all in one
// process: it brings up the HTTP server on a loopback port, opens a secure
// session (the Figure-6 key negotiation, here delivered as an API key),
// runs inferences through the micro-batching scheduler, verifies the
// returned checksum against the local reference computation, shows how a
// command-channel breach maps to a typed HTTP error that evicts the
// session, and finally drains the server gracefully.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"seculator"
	"seculator/internal/host"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

func main() {
	// A replay switch the breach demo flips after the honest traffic: the
	// MITM captures layer 2's authenticated command and substitutes it for
	// layer 4's.
	var (
		mu       sync.Mutex
		replay   bool
		captured *host.Packet
	)
	srv, err := serve.New(serve.Options{
		Scheduler: serve.SchedulerConfig{MaxBatch: 8, Linger: 2 * time.Millisecond},
		Intercept: func(layer int, p *host.Packet) {
			mu.Lock()
			defer mu.Unlock()
			if !replay {
				return
			}
			switch layer {
			case 2:
				cp := *p
				cp.Payload = append([]byte(nil), p.Payload...)
				captured = &cp
			case 4:
				if captured != nil {
					*p = *captured
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()

	base := "http://" + ln.Addr().String()
	c := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fmt.Printf("serving on %s\n", base)

	// Session round-trip: every layer command rides the authenticated
	// channel, and the output checksum must match the local reference.
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		log.Fatal(err)
	}
	const seed = 11
	resp, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: seed, Session: sess.SessionID})
	if err != nil {
		log.Fatal(err)
	}
	netw := serve.MiniNet()
	in, ws := seculator.RandomModel(netw, seed)
	golden, err := seculator.ReferenceInference(netw, in, ws)
	if err != nil {
		log.Fatal(err)
	}
	status := "MISMATCH"
	if serve.OutputSum(golden) == resp.OutputSum {
		status = "matches reference"
	}
	fmt.Printf("session %s: %s in %d cycles, %d authenticated commands, checksum %#x (%s)\n",
		sess.SessionID, resp.Network, resp.Cycles, resp.Commands, resp.OutputSum, status)

	// A burst of concurrent requests rides shared micro-batches.
	var wg sync.WaitGroup
	batched := 0
	var bmu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: seed})
			if err != nil {
				return
			}
			bmu.Lock()
			if r.BatchSize > batched {
				batched = r.BatchSize
			}
			bmu.Unlock()
		}(int64(i + 100))
	}
	wg.Wait()
	fmt.Printf("burst of 8: largest micro-batch %d\n", batched)

	// Breach: the next session request crosses a compromised channel. The
	// server maps the typed ChannelError to 409 and evicts the session.
	mu.Lock()
	replay = true
	mu.Unlock()
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: seed, Session: sess.SessionID})
	var ae *client.APIError
	if errors.As(err, &ae) && client.IsBreach(err) {
		fmt.Printf("replayed command: %d %s at layer %d, session evicted=%v\n",
			ae.StatusCode, ae.Body.Class, *ae.Body.Layer, ae.Body.SessionEvicted)
	} else {
		log.Fatalf("replay was not detected: %v", err)
	}

	// Graceful drain: in-flight work finishes, then the process exits.
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := srv.Close(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
