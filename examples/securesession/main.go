// Securesession drives the complete system flow of Figure 6: the host CPU
// negotiates a session key, issues one authenticated command per layer over
// the PCIe link — carrying the layer geometry and the master-equation
// triplet for the VN generator — and the NPU executes the model under
// Seculator protection. A man-in-the-middle rewriting a command in flight
// trips the channel authentication and aborts the session, and the defence
// planner then picks a Seculator+ configuration for a leakage target.
package main

import (
	"errors"
	"fmt"
	"log"

	"seculator"
	"seculator/internal/host"
)

func main() {
	cfg := seculator.DefaultConfig()
	net := seculator.MobileNet()
	key := []byte("negotiated-session-key")

	res, err := seculator.RunSecureSession(net, cfg, key, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secure session: %s executed under Seculator\n", net.Name)
	fmt.Printf("  %d authenticated layer commands delivered\n", res.Commands)
	fmt.Printf("  %d cycles (%.2f ms), %d DRAM blocks, 0 metadata blocks\n",
		res.Cycles, res.Seconds(cfg.NPU.FreqHz)*1e3, res.Traffic.Total())

	// A man in the middle rewrites layer 5's command in flight.
	_, err = seculator.RunSecureSession(net, cfg, key,
		func(layer int, p *seculator.HostPacket) {
			if layer == 5 {
				p.Payload[25] ^= 0x01
			}
		})
	if errors.Is(err, host.ErrChannel) {
		fmt.Println("\nMITM on the command channel: DETECTED -> session aborted, reboot required")
	} else {
		log.Fatalf("unexpected MITM outcome: %v", err)
	}

	// Plan a Seculator+ defence: at least 0.5 leakage error within 8x.
	plan, err := seculator.PlanDefence(net, cfg, 0.5, 8, seculator.DefaultDefenceOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndefence plan for %s (target leakage >= 0.5, budget 8x):\n", net.Name)
	fmt.Printf("  widen %.2fx", plan.WidenFactor)
	if plan.DummyPeriod > 0 {
		fmt.Printf(" + decoy every %d layers", plan.DummyPeriod)
	}
	fmt.Printf("\n  achieved leakage error %.2f at %.2fx runtime\n", plan.Leakage, plan.Overhead)
}
