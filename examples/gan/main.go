// Gan demonstrates the paper's Section 5.2 claim that Seculator's pattern
// machinery covers deconvolution: a DCGAN-style generator — each
// deconvolution implemented, as the paper prescribes, by zero-insertion
// upsampling pre-processing followed by ordinary convolution — runs both
// through the timing comparison and through the functional encrypted path,
// where the generated "image" must match the unprotected reference bit for
// bit.
package main

import (
	"fmt"
	"log"

	"seculator"
)

func main() {
	cfg := seculator.DefaultConfig()

	// Timing: the canonical DCGAN generator across designs.
	dcgan, err := seculator.GANGenerator(seculator.DCGAN())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d layers (%d deconv stages), %.1fM params, %.2f GMACs\n\n",
		dcgan.Name, len(dcgan.Layers), len(dcgan.Layers)/2,
		float64(dcgan.Params())/1e6, float64(dcgan.MACs())/1e9)

	results, err := seculator.RunAll(dcgan, seculator.Designs(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	base := results[0]
	fmt.Printf("%-11s %8s %9s\n", "design", "perf", "traffic")
	for _, r := range results {
		fmt.Printf("%-11s %8.3f %9.3f\n", r.Design, r.Performance(base), r.NormalizedTraffic(base))
	}

	// Functional: generate an "image" securely and compare with the
	// reference generator.
	tiny, err := seculator.GANGenerator(seculator.TinyGAN())
	if err != nil {
		log.Fatal(err)
	}
	seed, ws := seculator.RandomModel(tiny, 77)
	golden, err := seculator.ReferenceInference(tiny, seed, ws)
	if err != nil {
		log.Fatal(err)
	}
	res, err := seculator.SecureInference(tiny, seed, ws, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional generation (%s): %dx%dx%d image through encrypted DRAM\n",
		tiny.Name, res.Output.Chans, res.Output.H, res.Output.W)
	if res.Output.Equal(golden) {
		fmt.Println("generated image is BIT-IDENTICAL to the unprotected reference")
	} else {
		log.Fatal("generator outputs diverged!")
	}

	// The deconvolution's VN pattern: the upsample + conv pair follows the
	// same conv pattern tables (Table 2), as Section 5.2 argues.
	fmt.Println("\ndeconvolution = upsample + conv; both follow the conv pattern tables:")
	g := seculator.PatternGrid{AlphaHW: 4, AlphaC: 2, AlphaK: 2, OfmapTileBlocks: 1}
	fmt.Println(seculator.PatternTable("table2-ir", g))
}
