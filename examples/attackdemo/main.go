// Attackdemo mounts the threat-model attacks of Section 3 against the
// functional Seculator memory — real AES-CTR encryption, real SHA-256
// XOR-MACs, a real Equation 1 check — and shows each one being detected:
//
//   - tamper:    flip a bit of a ciphertext block in DRAM
//   - replay:    capture an old version of a block, restore it later
//   - splice:    swap two valid ciphertext blocks between addresses
//   - eavesdrop: inspect ciphertext for plaintext leakage
package main

import (
	"errors"
	"fmt"
	"log"

	"seculator"
	"seculator/internal/mac"
)

func main() {
	s := seculator.DefaultAttackScenario()

	fmt.Println("Seculator functional security demo")
	fmt.Printf("scenario: %d tiles x %d versions x %d blocks, AES-CTR + XOR-MAC\n\n",
		s.Tiles, s.Versions, s.BlocksPerTile)

	report("honest execution", seculator.RunAttack(s, nil, nil), false)

	report("tamper (bit-flip in DRAM)", seculator.RunAttack(s, nil,
		func(d *seculator.DRAM, l seculator.AttackLayout) {
			d.Tamper(l.Addr(1, 2), 33, 0x01)
		}), true)

	var snapshot []byte
	report("replay (restore stale version)", seculator.RunAttack(s,
		func(d *seculator.DRAM, l seculator.AttackLayout) {
			snapshot, _ = d.Snapshot(l.Addr(0, 0))
		},
		func(d *seculator.DRAM, l seculator.AttackLayout) {
			d.Restore(l.Addr(0, 0), snapshot)
		}), true)

	report("splice (swap two ciphertexts)", seculator.RunAttack(s, nil,
		func(d *seculator.DRAM, l seculator.AttackLayout) {
			d.Swap(l.Addr(0, 0), l.Addr(2, 3))
		}), true)

	leaks, hist, err := seculator.Eavesdrop(s)
	if err != nil {
		log.Fatal(err)
	}
	nonZero := 0
	for _, c := range hist[1:] {
		if c > 0 {
			nonZero++
		}
	}
	fmt.Printf("%-32s blocks leaking plaintext: %d; ciphertext spans %d/255 byte values\n",
		"eavesdrop (bus snooping):", leaks, nonZero)
}

func report(name string, err error, wantDetect bool) {
	switch {
	case err == nil && !wantDetect:
		fmt.Printf("%-32s verification PASSED (as expected)\n", name+":")
	case errors.Is(err, mac.ErrIntegrity) && wantDetect:
		fmt.Printf("%-32s DETECTED -> security breach, NPU reboots\n", name+":")
	default:
		log.Fatalf("%s: unexpected outcome: %v", name, err)
	}
}
