// Modelzoo sweeps the five benchmark CNNs of Table 1 across all six
// simulated designs — the full evaluation of Figures 7 and 8 — and prints
// normalized performance, normalized traffic and metadata-cache behaviour.
package main

import (
	"fmt"
	"log"

	"seculator"
)

func main() {
	cfg := seculator.DefaultConfig()

	fmt.Println("Model zoo: five CNNs x six designs (Figures 7 & 8)")
	fmt.Println()
	for _, net := range seculator.Benchmarks() {
		results, err := seculator.RunAll(net, seculator.Designs(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		base := results[0]
		fmt.Printf("%s — %d layers, %.1fM params, %.2f GMACs\n",
			net.Name, len(net.Layers), float64(net.Params())/1e6, float64(net.MACs())/1e9)
		fmt.Printf("  %-11s %8s %9s %11s %10s\n", "design", "perf", "traffic", "extra-blk", "mac-miss")
		for _, r := range results {
			macMiss := "-"
			if r.HasMACCache {
				macMiss = fmt.Sprintf("%.1f%%", r.MACCache.MissRate()*100)
			}
			fmt.Printf("  %-11s %8.3f %9.3f %11d %10s\n",
				r.Design, r.Performance(base), r.NormalizedTraffic(base),
				r.Traffic.Overhead(), macMiss)
		}
		fmt.Println()
	}

	res, err := seculator.Fig7Performance(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean normalized performance: Secure %.3f, TNPU %.3f, GuardNN %.3f, Seculator %.3f\n",
		res.Mean(seculator.Secure, false), res.Mean(seculator.TNPU, false),
		res.Mean(seculator.GuardNN, false), res.Mean(seculator.Seculator, false))
	fmt.Printf("Seculator speedup over TNPU: %.1f%% (paper: ~16%%)\n",
		(res.Mean(seculator.Seculator, false)/res.Mean(seculator.TNPU, false)-1)*100)
}
