// Faultcampaign drives seeded fault-injection storms into Seculator's
// functional protection path and prints the recovery report:
//
//  1. a seeded bit-flip storm into a ResNet-18-style network (reduced
//     resolution so the functional AES+SHA path stays quick) — transient
//     upsets are detected by the XOR-MAC layer checks and repaired by
//     layer-level re-execution, and the final output stays bit-identical
//     to the unprotected reference;
//  2. a persistent stuck-at fault — retries cannot repair it, so the run
//     aborts with a typed error and the breach latched;
//  3. the full campaign sweep (fault class x rate x design), the
//     robustness counterpart of the Table 5 detection matrix.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"seculator"
)

// resnetSlice is the ResNet-18 recipe (stem, stage of 3x3 convs, pooling,
// classifier) at 32x32 so the demo runs in seconds.
func resnetSlice() seculator.Network {
	return seculator.Network{
		Name: "resnet18-slice",
		Layers: []seculator.Layer{
			{Name: "conv1", Type: seculator.Conv, C: 3, H: 32, W: 32, K: 16, R: 7, S: 7, Stride: 2},
			{Name: "pool1", Type: seculator.Pool, C: 16, H: 16, W: 16, K: 16, R: 3, S: 3, Stride: 2},
			{Name: "conv2_1", Type: seculator.Conv, C: 16, H: 8, W: 8, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "conv2_2", Type: seculator.Conv, C: 16, H: 8, W: 8, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "conv3_1", Type: seculator.Conv, C: 16, H: 8, W: 8, K: 32, R: 3, S: 3, Stride: 2},
			{Name: "avgpool", Type: seculator.Pool, C: 32, H: 4, W: 4, K: 32, R: 4, S: 4, Stride: 4},
			{Name: "fc", Type: seculator.FC, C: 32, H: 1, W: 1, K: 10, R: 1, S: 1, Stride: 1},
		},
	}
}

func main() {
	ctx := context.Background()
	net := resnetSlice()
	input, weights := seculator.RandomModel(net, 0x5eed)
	golden, err := seculator.ReferenceInference(net, input, weights)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Seeded bit-flip storm (transient upsets on the DRAM read path) ==")
	for _, seed := range []int64{1, 2, 3, 4} {
		inj := seculator.NewBitFlipInjector(0.001, seed)
		res, err := seculator.SecureInferenceContext(ctx, net, input, weights,
			seculator.InferenceOptions{Injector: inj})
		switch {
		case err != nil:
			fmt.Printf("  seed %d: %3d flips delivered -> aborted: %v\n", seed, inj.Injected(), err)
		case !res.Output.Equal(golden):
			log.Fatalf("seed %d: SILENT CORRUPTION — detection failed", seed)
		default:
			fmt.Printf("  seed %d: %3d flips delivered -> output bit-identical"+
				" (retries %d, layers recovered %d)\n",
				seed, inj.Injected(), res.Recovery.Retries, res.Recovery.Recovered)
		}
	}

	fmt.Println("\n== Persistent stuck-at fault (re-fetching re-observes it) ==")
	res, err := seculator.SecureInferenceContext(ctx, net, input, weights,
		seculator.InferenceOptions{Injector: seculator.NewStuckAtInjector(16, 3, 5)})
	if err == nil {
		log.Fatal("persistent fault went unnoticed")
	}
	var ie *seculator.IntegrityError
	var fe *seculator.FreshnessError
	switch {
	case errors.As(err, &fe):
		fmt.Printf("  aborted with FreshnessError at layer %d (%s path), breach latched=%v\n",
			fe.Layer, fe.Tensor, res.Recovery.Breached)
	case errors.As(err, &ie):
		fmt.Printf("  aborted with persistent IntegrityError at layer %d (%s path), breach latched=%v\n",
			ie.Layer, ie.Tensor, res.Recovery.Breached)
	default:
		log.Fatalf("abort outside the taxonomy: %v", err)
	}
	fmt.Printf("  retries spent before giving up: %d\n", res.Recovery.Retries)

	fmt.Println("\n== Campaign sweep: fault class x rate x design ==")
	campaign := seculator.FaultCampaign{
		Faults:  seculator.FaultKinds(),
		Rates:   []float64{0.002, 0.02},
		Designs: []seculator.Design{seculator.Baseline, seculator.Secure, seculator.Seculator},
		Trials:  2,
		Seed:    0x5eed,
	}
	points, err := seculator.RunFaultCampaign(ctx, campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s %-8s %-10s %9s %9s %9s %7s %6s\n",
		"fault", "rate", "design", "recovered", "aborted", "silent", "benign", "clean")
	for _, p := range points {
		o := p.Outcome
		fmt.Printf("  %-12s %-8g %-10s %9d %9d %9d %7d %6d\n",
			p.Fault, p.Rate, p.Design, o.Recovered, o.Aborted, o.FalseNegative, o.Benign, o.Clean)
	}
	fmt.Println("\n  silent = delivered fault, corrupted output, no detection (the failure mode)")
}
