// Secureinference runs a real (integer) CNN end to end through Seculator's
// functional protection path — AES-CTR encrypted DRAM, FSM version numbers,
// XOR-MAC layer verification — and shows three things:
//
//  1. the decrypted output is bit-identical to the unprotected reference,
//  2. an attacker tampering DRAM mid-inference is caught at the next layer
//     check, and
//  3. the behavioural detection matrix across all five designs.
package main

import (
	"errors"
	"fmt"
	"log"

	"seculator"
	"seculator/internal/mac"
)

func main() {
	net := seculator.Network{
		Name: "demo-cnn",
		Layers: []seculator.Layer{
			{Name: "conv1", Type: seculator.Conv, C: 3, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "pool1", Type: seculator.Pool, C: 8, H: 16, W: 16, K: 8, R: 2, S: 2, Stride: 2, Valid: true},
			{Name: "dw2", Type: seculator.Depthwise, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "pw2", Type: seculator.Pointwise, C: 8, H: 8, W: 8, K: 16, R: 1, S: 1, Stride: 1},
			{Name: "fc", Type: seculator.FC, C: 16 * 8 * 8, H: 1, W: 1, K: 10, R: 1, S: 1, Stride: 1},
		},
	}
	input, weights := seculator.RandomModel(net, 2026)

	golden, err := seculator.ReferenceInference(net, input, weights)
	if err != nil {
		log.Fatal(err)
	}

	res, err := seculator.SecureInference(net, input, weights, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secure inference over %d layers, %d encrypted DRAM lines\n", res.Layers, res.Blocks)
	fmt.Printf("logits (secure): %v\n", res.Output.Data)
	fmt.Printf("logits (golden): %v\n", golden.Data)
	if res.Output.Equal(golden) {
		fmt.Println("outputs are BIT-IDENTICAL: the protection is transparent to the numerics")
	} else {
		log.Fatal("outputs diverged!")
	}

	// Attack the same inference: flip one DRAM byte after layer 1.
	_, err = seculator.SecureInference(net, input, weights,
		func(phase int, d *seculator.DRAM) {
			if phase == 1 {
				var last uint64
				for addr := uint64(0); addr < 100000; addr++ {
					if d.Peek(addr) != nil {
						last = addr
					}
				}
				d.Tamper(last, 7, 0x04)
			}
		})
	if errors.Is(err, mac.ErrIntegrity) {
		fmt.Println("\nmid-inference DRAM tamper: DETECTED -> execution aborted, NPU reboots")
	} else {
		log.Fatalf("tamper outcome unexpected: %v", err)
	}

	// The behavioural Table 5 across all designs.
	tbl, err := seculator.DetectionMatrixTable(seculator.DefaultAttackScenario())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(tbl)
}
