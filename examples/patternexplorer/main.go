// Patternexplorer walks the analytical core of the paper (Section 5): it
// derives the master-equation triplet for every pattern-table row, streams
// the VN sequence from the hardware FSM, and cross-checks both against the
// ground truth of the simulated dataflow — the experiment that justifies
// replacing VN tables with a 40 um^2 generator.
package main

import (
	"fmt"
	"log"

	"seculator"
	"seculator/internal/dataflow"
	"seculator/internal/sim"
	"seculator/internal/tensor"
)

func main() {
	grid := seculator.PatternGrid{
		AlphaHW: 3, AlphaC: 4, AlphaK: 2,
		IfmapTileBlocks: 4, OfmapTileBlocks: 4, WeightTileBlocks: 1,
	}

	fmt.Println("VN pattern explorer (Section 5 master equation)")
	fmt.Printf("grid: aHW=%d aC=%d aK=%d\n\n", grid.AlphaHW, grid.AlphaC, grid.AlphaK)

	verified := 0
	for _, entry := range seculator.PatternTables() {
		m := entry.Build(grid)

		// Analytical derivation.
		wp := seculator.DeriveWritePattern(m)
		rp := seculator.DeriveReadPattern(m)

		// Ground truth from the simulated dataflow.
		var simWrites []int
		err := dataflow.Generate(m, func(e dataflow.Event) bool {
			if e.Tensor == tensor.Ofmap && e.Kind == sim.Write {
				simWrites = append(simWrites, e.VN)
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		simTriplet, ok := seculator.CompressPattern(simWrites)
		if !ok {
			log.Fatalf("%s row %d: simulated VNs are not a master-equation instance", entry.Table, entry.Row)
		}

		// The FSM must regenerate the stream exactly.
		gen := seculator.NewVNGenerator(wp)
		for i, want := range simWrites {
			got, ok := gen.Next()
			if !ok || got != want {
				log.Fatalf("%s row %d: FSM diverges at position %d", entry.Table, entry.Row, i)
			}
		}
		verified++

		fmt.Printf("%-11s row %d  %-14s order %-12s  WP %-22s RP %-20s class %s (sim: %s)\n",
			entry.Table, entry.Row, entry.Style, entry.OrderDesc,
			wp, rp, seculator.ClassifyPattern(wp), simTriplet)
	}
	fmt.Printf("\n%d table rows verified: derivation == FSM == simulation\n", verified)
	fmt.Println("hardware cost of the generator: 6 x 32-bit registers (Table 6: 40 um^2, 4.4 uW)")
}
