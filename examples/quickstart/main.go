// Quickstart: simulate ResNet-18 on the unprotected baseline, on TNPU (the
// closest prior work) and on Seculator, and print the paper's headline
// numbers — Seculator's near-zero overhead and its speedup over TNPU.
package main

import (
	"fmt"
	"log"

	"seculator"
)

func main() {
	cfg := seculator.DefaultConfig()
	net := seculator.ResNet18()

	base, err := seculator.Run(net, seculator.Baseline, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tnpu, err := seculator.Run(net, seculator.TNPU, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sec, err := seculator.Run(net, seculator.Seculator, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ResNet-18 on the Table 1 NPU (32x32 PEs @ %.2f GHz)\n\n", cfg.NPU.FreqHz/1e9)
	for _, r := range []seculator.Result{base, tnpu, sec} {
		fmt.Printf("%-10s  %12d cycles  %.3f ms  perf %.3f  traffic %.3fx\n",
			r.Design, r.Cycles, r.Seconds(cfg.NPU.FreqHz)*1e3,
			r.Performance(base), r.NormalizedTraffic(base))
	}

	fmt.Printf("\nSeculator security overhead vs baseline : %+.1f%%\n",
		(1/sec.Performance(base)-1)*100)
	fmt.Printf("Seculator speedup over TNPU              : %+.1f%%\n",
		(sec.Performance(base)/tnpu.Performance(base)-1)*100)
	fmt.Printf("Metadata DRAM blocks (TNPU vs Seculator) : %d vs %d\n",
		tnpu.Traffic.Overhead(), sec.Traffic.Overhead())

	area, power := seculator.HardwareTotals()
	fmt.Printf("Added security hardware                  : %.0f um^2, %.0f uW (Table 6)\n", area, power)
}
