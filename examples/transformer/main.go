// Transformer evaluates the secure designs on an encoder-only transformer —
// the matmul-dominated workload class the paper's Table 4 characterizes —
// showing that Seculator's advantage carries beyond CNNs, and prints the
// Table 4 pattern rows its tiled matmuls follow.
package main

import (
	"fmt"
	"log"

	"seculator"
)

func main() {
	cfg := seculator.DefaultConfig()

	net, err := seculator.Transformer(seculator.BERTBase())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d matmul layers (seq=128, d=768), %.1fM parameters, %.1f GMACs\n\n",
		net.Name, len(net.Layers), float64(net.Params())/1e6, float64(net.MACs())/1e9)

	results, err := seculator.RunAll(net, seculator.Designs(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	base := results[0]
	fmt.Printf("%-11s %10s %9s %12s\n", "design", "perf", "traffic", "extra-blk")
	for _, r := range results {
		fmt.Printf("%-11s %10.3f %9.3f %12d\n",
			r.Design, r.Performance(base), r.NormalizedTraffic(base), r.Traffic.Overhead())
	}

	sec := results[4]
	tnpu := results[2]
	fmt.Printf("\nSeculator speedup over TNPU on the transformer: %+.1f%%\n",
		(sec.Performance(base)/tnpu.Performance(base)-1)*100)

	// The Table 4 patterns these matmuls follow: a (seq x d)*(d x d)
	// projection tiled with the mapper's grid.
	fmt.Println("\nTable 4 pattern rows for tiled matmul (sample grid aH=4, aC=3, aW=2):")
	g := seculator.PatternGrid{AlphaHW: 2, AlphaC: 3, AlphaK: 4, OfmapTileBlocks: 1}
	fmt.Println(seculator.PatternTable("table4", g))
}
