// Widening demonstrates Seculator+'s model-extraction defence (Section
// 7.5): layer widening pads a network's geometry with junk data, making the
// address trace describe shapes far from the real model, and the Figure 9
// sweep shows Seculator scaling best under that extra traffic. A dummy
// decoy network adds alignment confusion on top.
package main

import (
	"fmt"
	"log"

	"seculator"
)

func main() {
	cfg := seculator.DefaultConfig()
	victim := seculator.MobileNet()

	fmt.Println("Seculator+ MEA defence: layer widening (Section 7.5)")
	fmt.Println()
	fmt.Printf("%-8s %14s %16s %18s\n", "widen", "volume cost", "leakage error", "Seculator+ slowdown")

	baseRun, err := seculator.Run(victim, seculator.SeculatorPlus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	baseLeak, err := seculator.NetworkLeakage(victim, victim, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %13.2fx %16.3f %17.2fx\n", "1.00x", 1.0, baseLeak, 1.0)

	for _, factor := range []float64{1.25, 1.5, 2.0} {
		wnet, err := seculator.WidenNetwork(victim, factor)
		if err != nil {
			log.Fatal(err)
		}
		rep := seculator.CompareWidening(victim, wnet)
		leak, err := seculator.NetworkLeakage(victim, wnet, cfg)
		if err != nil {
			log.Fatal(err)
		}
		run, err := seculator.Run(wnet, seculator.SeculatorPlus, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %13.2fx %16.3f %17.2fx\n",
			fmt.Sprintf("%.2fx", factor), rep.Overhead(), leak,
			float64(run.Cycles)/float64(baseRun.Cycles))
	}

	fmt.Println("\nFigure 9: widening a 32x32x3 layer, latency normalized to the baseline design")
	f9, err := seculator.Fig9Widening(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f9.Fig9Table())

	dummy, err := seculator.DummyNetwork("decoy", 4, 28, 28, 16, 32)
	if err != nil {
		log.Fatal(err)
	}
	dr, err := seculator.Run(dummy, seculator.SeculatorPlus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dummy decoy network: %d layers, %d cycles of noise per injection (%.2f%% of MobileNet)\n",
		len(dummy.Layers), dr.Cycles, 100*float64(dr.Cycles)/float64(baseRun.Cycles))
}
