package seculator

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see the experiment index in DESIGN.md) and adds the ablation
// studies DESIGN.md calls out. Results are reported as custom benchmark
// metrics so `go test -bench=. -benchmem` prints the reproduced numbers
// next to the runtime cost of producing them.

import (
	"context"
	"testing"

	"seculator/internal/crypto"
	"seculator/internal/dataflow"
	"seculator/internal/mac"
	"seculator/internal/npu"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/vngen"
	"seculator/internal/workload"
)

// ---------------------------------------------------------------- figures

// BenchmarkFig4Characterization regenerates Figure 4: Baseline vs Secure vs
// TNPU vs GuardNN performance across the five CNNs.
func BenchmarkFig4Characterization(b *testing.B) {
	cfg := DefaultConfig()
	var res CharacterizationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig4Characterization(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	report := func(d Design) float64 {
		var sum float64
		var n int
		for _, p := range res.Points {
			if p.Design == d {
				sum += p.Performance
				n++
			}
		}
		return sum / float64(n)
	}
	b.ReportMetric(report(Secure), "secure-perf")
	b.ReportMetric(report(TNPU), "tnpu-perf")
	b.ReportMetric(report(GuardNN), "guardnn-perf")
}

// BenchmarkFig5CacheMissRates regenerates Figure 5: MAC-cache vs
// counter-cache miss rates of the Secure configuration.
func BenchmarkFig5CacheMissRates(b *testing.B) {
	cfg := DefaultConfig()
	var res CharacterizationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig4Characterization(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var macSum, ctrSum float64
	for _, n := range workload.All() {
		macSum += res.MACMissRate[n.Name]
		ctrSum += res.CounterMissRate[n.Name]
	}
	b.ReportMetric(macSum/5, "mac-missrate")
	b.ReportMetric(ctrSum/5, "ctr-missrate")
}

// BenchmarkFig7Performance regenerates Figure 7: normalized performance of
// all six designs, and the headline Seculator-over-TNPU speedup.
func BenchmarkFig7Performance(b *testing.B) {
	cfg := DefaultConfig()
	var res EvaluationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig7Performance(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mean(Seculator, false), "seculator-perf")
	b.ReportMetric(res.Mean(TNPU, false), "tnpu-perf")
	b.ReportMetric((res.Mean(Seculator, false)/res.Mean(TNPU, false)-1)*100, "speedup-vs-tnpu-%")
	b.ReportMetric((res.Mean(Seculator, false)/res.Mean(GuardNN, false)-1)*100, "speedup-vs-guardnn-%")
}

// BenchmarkFig8Traffic regenerates Figure 8: normalized DRAM traffic.
func BenchmarkFig8Traffic(b *testing.B) {
	cfg := DefaultConfig()
	var res EvaluationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig7Performance(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mean(TNPU, true), "tnpu-traffic")
	b.ReportMetric(res.Mean(GuardNN, true), "guardnn-traffic")
	b.ReportMetric(res.Mean(Seculator, true), "seculator-traffic")
}

// BenchmarkFig9Widening regenerates Figure 9: layer-widening latency
// scaling from 32x32x3 to 192x192x3 across designs.
func BenchmarkFig9Widening(b *testing.B) {
	cfg := DefaultConfig()
	var res WideningResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Fig9Widening(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Growth(Seculator), "seculator-192")
	b.ReportMetric(res.Growth(TNPU), "tnpu-192")
	b.ReportMetric(res.Growth(GuardNN), "guardnn-192")
}

// ----------------------------------------------------------------- tables

// BenchmarkTable2ConvPatterns regenerates the conv pattern tables (Tables 2
// and 3): derives, simulates and cross-checks every row.
func BenchmarkTable2ConvPatterns(b *testing.B) {
	benchPatternTable(b, dataflow.ConvTableEntries())
}

// BenchmarkTable4MatmulPatterns regenerates Table 4.
func BenchmarkTable4MatmulPatterns(b *testing.B) {
	benchPatternTable(b, dataflow.MatmulTableEntries())
}

// BenchmarkTable8PreprocPatterns regenerates Tables 8-10.
func BenchmarkTable8PreprocPatterns(b *testing.B) {
	benchPatternTable(b, dataflow.PreprocTableEntries())
}

func benchPatternTable(b *testing.B, entries []dataflow.TableEntry) {
	g := dataflow.GridSpec{
		AlphaHW: 4, AlphaC: 3, AlphaK: 2,
		IfmapTileBlocks: 4, OfmapTileBlocks: 4, WeightTileBlocks: 1,
	}
	verified := 0
	for i := 0; i < b.N; i++ {
		verified = 0
		for _, e := range entries {
			m := e.Build(g)
			wp := dataflow.DeriveWrite(m)
			gen := vngen.New(wp)
			ok := true
			err := dataflow.Generate(m, func(ev dataflow.Event) bool {
				if ev.Tensor == tensor.Ofmap && ev.Kind == sim.Write {
					v, has := gen.Next()
					if !has || v != ev.VN {
						ok = false
						return false
					}
				}
				return true
			})
			if err != nil || !ok {
				b.Fatalf("%s row %d failed verification", e.Table, e.Row)
			}
			verified++
		}
	}
	b.ReportMetric(float64(verified), "rows-verified")
}

// BenchmarkTable5DesignMatrix renders the design feature matrix.
func BenchmarkTable5DesignMatrix(b *testing.B) {
	var t Table
	for i := 0; i < b.N; i++ {
		t = Table5Matrix()
	}
	b.ReportMetric(float64(len(t.Rows)), "designs")
}

// BenchmarkTable6HardwareModel regenerates the hardware-overhead table.
func BenchmarkTable6HardwareModel(b *testing.B) {
	var area, power float64
	for i := 0; i < b.N; i++ {
		area, power = HardwareTotals()
	}
	b.ReportMetric(area, "area-um2")
	b.ReportMetric(power, "power-uW")
}

// -------------------------------------------------------------- ablations

// BenchmarkAblationOverlap quantifies the double-buffering assumption:
// Seculator on ResNet-18 with and without compute/memory overlap.
func BenchmarkAblationOverlap(b *testing.B) {
	overlap := DefaultConfig()
	serial := DefaultConfig()
	serial.NoOverlap = true
	net := workload.ResNet18()
	var ratio float64
	for i := 0; i < b.N; i++ {
		a, err := runner.Run(context.Background(), net, protect.Seculator, overlap)
		if err != nil {
			b.Fatal(err)
		}
		s, err := runner.Run(context.Background(), net, protect.Seculator, serial)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(s.Cycles) / float64(a.Cycles)
	}
	b.ReportMetric(ratio, "serial/overlap")
}

// BenchmarkAblationMACCacheSize sweeps the TNPU MAC cache from 2 KB to
// 64 KB: streaming DNN data defeats caching at every size, the paper's
// argument for abandoning MAC caches entirely.
func BenchmarkAblationMACCacheSize(b *testing.B) {
	net := workload.ResNet18()
	for _, kb := range []int{2, 8, 32, 64} {
		b.Run(formatKB(kb), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Protect.MACCacheBytes = kb * 1024
			var miss float64
			for i := 0; i < b.N; i++ {
				r, err := runner.Run(context.Background(), net, protect.TNPU, cfg)
				if err != nil {
					b.Fatal(err)
				}
				miss = r.MACCache.MissRate()
			}
			b.ReportMetric(miss*100, "mac-miss-%")
		})
	}
}

func formatKB(kb int) string {
	return map[int]string{2: "2KB", 8: "8KB", 32: "32KB", 64: "64KB"}[kb]
}

// BenchmarkAblationVNStorage compares the three VN mechanisms on ResNet-18:
// Seculator's FSM (zero traffic), TNPU's tensor table, and GuardNN's host
// scheduler — isolating the cost of storing versus generating VNs.
func BenchmarkAblationVNStorage(b *testing.B) {
	cfg := DefaultConfig()
	net := workload.ResNet18()
	var fsm, table, host uint64
	for i := 0; i < b.N; i++ {
		rs, err := runner.RunAll(context.Background(), net,
			[]protect.Design{protect.Seculator, protect.TNPU, protect.GuardNN}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fsm, table, host = uint64(rs[0].Cycles), uint64(rs[1].Cycles), uint64(rs[2].Cycles)
	}
	b.ReportMetric(float64(table)/float64(fsm), "table/fsm")
	b.ReportMetric(float64(host)/float64(fsm), "host/fsm")
}

// BenchmarkAblationIntegrityGranularity compares integrity granularities on
// ResNet-18: per-block uncached (GuardNN), per-block cached (TNPU) and
// per-layer (Seculator), in metadata blocks moved.
func BenchmarkAblationIntegrityGranularity(b *testing.B) {
	cfg := DefaultConfig()
	net := workload.ResNet18()
	var uncached, cached, layer uint64
	for i := 0; i < b.N; i++ {
		rs, err := runner.RunAll(context.Background(), net,
			[]protect.Design{protect.GuardNN, protect.TNPU, protect.Seculator}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		uncached, cached, layer = rs[0].Traffic.Overhead(), rs[1].Traffic.Overhead(), rs[2].Traffic.Overhead()
	}
	b.ReportMetric(float64(uncached), "block-uncached")
	b.ReportMetric(float64(cached), "block-cached")
	b.ReportMetric(float64(layer), "layer")
}

// BenchmarkParallelSpeedup measures the experiment engine's fan-out at one
// worker versus GOMAXPROCS workers. Each iteration resets the simulation
// cache so both arms do the same cold work; on a multi-core host the
// parallel arm's ns/op divided into the serial arm's is the speedup.
func BenchmarkParallelSpeedup(b *testing.B) {
	cfg := DefaultConfig()
	for _, arm := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"gomaxprocs", 0},
	} {
		b.Run(arm.name, func(b *testing.B) {
			SetParallelism(arm.workers)
			defer SetParallelism(0)
			for i := 0; i < b.N; i++ {
				ResetSimCache()
				if _, err := Fig4Characterization(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------- microbenchmarks

// BenchmarkVNGenerator measures the FSM's throughput: one VN per Next call.
func BenchmarkVNGenerator(b *testing.B) {
	tr := Triplet{Eta: 16, Kappa: 64, Rho: 1 << 20}
	gen := vngen.New(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := gen.Next(); !ok {
			gen.Reset()
		}
	}
}

// BenchmarkAESCTRBlock measures the functional encryption path per 64-byte
// block.
func BenchmarkAESCTRBlock(b *testing.B) {
	e := crypto.NewCTR(0xfeed, 0xcafe)
	src := make([]byte, tensor.BlockBytes)
	dst := make([]byte, tensor.BlockBytes)
	b.SetBytes(tensor.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncryptBlock(dst, src, crypto.Counter{VN: uint32(i), Block: uint32(i)})
	}
}

// BenchmarkXTSBlock measures TNPU's XTS path per block.
func BenchmarkXTSBlock(b *testing.B) {
	e := crypto.NewXTS(1, 2)
	src := make([]byte, tensor.BlockBytes)
	dst := make([]byte, tensor.BlockBytes)
	b.SetBytes(tensor.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncryptBlock(dst, src, uint64(i))
	}
}

// BenchmarkBlockMAC measures the SHA-256 block MAC plus register fold.
func BenchmarkBlockMAC(b *testing.B) {
	data := make([]byte, tensor.BlockBytes)
	var reg mac.Register
	b.SetBytes(tensor.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Fold(mac.BlockMAC(mac.BlockRef{Layer: 1, Index: uint32(i)}, data))
	}
}

// BenchmarkDataflowGenerate measures tile-event generation for a large
// conv layer mapping.
func BenchmarkDataflowGenerate(b *testing.B) {
	m := &dataflow.Mapping{
		Name:    "bench",
		Reuse:   dataflow.InputReuse,
		Order:   dataflow.LoopOrder{dataflow.LoopS, dataflow.LoopC, dataflow.LoopK},
		AlphaHW: 56, AlphaC: 16, AlphaK: 16,
		IfmapTileBlocks: 8, OfmapTileBlocks: 8, WeightTileBlocks: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := dataflow.Generate(m, func(dataflow.Event) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunResNet18 measures one full (network, design) simulation.
func BenchmarkRunResNet18(b *testing.B) {
	cfg := DefaultConfig()
	net := workload.ResNet18()
	for _, d := range []protect.Design{protect.Baseline, protect.Secure, protect.Seculator} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(context.Background(), net, d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------- functional & extension benches

// BenchmarkSecureInference measures the full functional path — encrypted
// DRAM, per-block AES-CTR + SHA-256, XOR-MAC layer verification — at two
// model scales and two intra-inference worker counts, verifying
// equivalence each iteration. serial vs parallel8 on the same net is the
// tentpole speedup figure: the sharded crypto pipeline must be faster on a
// multi-core runner while staying bit-identical.
func BenchmarkSecureInference(b *testing.B) {
	small := Network{
		Name: "bench-cnn",
		Layers: []Layer{
			{Name: "c1", Type: Conv, C: 3, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "p1", Type: Pool, C: 8, H: 16, W: 16, K: 8, R: 2, S: 2, Stride: 2, Valid: true},
			{Name: "fc", Type: FC, C: 8 * 8 * 8, H: 1, W: 1, K: 10, R: 1, S: 1, Stride: 1},
		},
	}
	// deep carries enough blocks per tile that every stage of the parallel
	// pipeline engages: sharded reads/writes, keystream precompute, and
	// overlapped weight loading across its eight layers.
	deep := Network{
		Name: "bench-deep",
		Layers: []Layer{
			{Name: "c1", Type: Conv, C: 3, H: 24, W: 24, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: Conv, C: 16, H: 24, W: 24, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "p1", Type: Pool, C: 16, H: 24, W: 24, K: 16, R: 2, S: 2, Stride: 2, Valid: true},
			{Name: "c3", Type: Conv, C: 16, H: 12, W: 12, K: 32, R: 3, S: 3, Stride: 1},
			{Name: "c4", Type: Conv, C: 32, H: 12, W: 12, K: 32, R: 3, S: 3, Stride: 1},
			{Name: "pw", Type: Pointwise, C: 32, H: 12, W: 12, K: 64, R: 1, S: 1, Stride: 1},
			{Name: "fc", Type: FC, C: 64 * 12 * 12, H: 1, W: 1, K: 10, R: 1, S: 1, Stride: 1},
		},
	}
	for _, bm := range []struct {
		name    string
		net     Network
		workers int
	}{
		{"small/serial", small, 1},
		{"small/parallel8", small, 8},
		{"deep/serial", deep, 1},
		{"deep/parallel8", deep, 8},
	} {
		b.Run(bm.name, func(b *testing.B) {
			in, ws := RandomModel(bm.net, 1)
			golden, err := ReferenceInference(bm.net, in, ws)
			if err != nil {
				b.Fatal(err)
			}
			opts := InferenceOptions{Parallel: bm.workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := SecureInferenceContext(context.Background(), bm.net, in, ws, opts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Output.Equal(golden) {
					b.Fatal("diverged")
				}
			}
		})
	}
}

// BenchmarkTransformerEvaluation runs the BERT-base encoder across the
// three headline designs — Table 4's workload class.
func BenchmarkTransformerEvaluation(b *testing.B) {
	net, err := Transformer(BERTBase())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rs, err := RunAll(net, []Design{Baseline, TNPU, Seculator}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		speedup = (rs[2].Performance(rs[0])/rs[1].Performance(rs[0]) - 1) * 100
	}
	b.ReportMetric(speedup, "speedup-vs-tnpu-%")
}

// BenchmarkDetectionMatrix runs the behavioural Table 5 (5 designs x 6
// attacks, functional crypto throughout).
func BenchmarkDetectionMatrix(b *testing.B) {
	var detected int
	for i := 0; i < b.N; i++ {
		cells, err := DetectionMatrix(DefaultAttackScenario())
		if err != nil {
			b.Fatal(err)
		}
		detected = 0
		for _, c := range cells {
			if c.Detected {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "detections")
}

// BenchmarkTraceCapture measures address-trace capture and analysis on
// MobileNet.
func BenchmarkTraceCapture(b *testing.B) {
	cfg := DefaultConfig()
	net := workload.MobileNet()
	var entropy float64
	for i := 0; i < b.N; i++ {
		tr, err := CaptureTrace(net, Baseline, cfg)
		if err != nil {
			b.Fatal(err)
		}
		entropy = tr.AddressEntropy()
	}
	b.ReportMetric(entropy, "entropy-bits")
}

// BenchmarkEnergyComparison regenerates the energy extension (E17).
func BenchmarkEnergyComparison(b *testing.B) {
	cfg := DefaultConfig()
	net := workload.ResNet18()
	var tbl Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = EnergyTable(net, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tbl.Rows)), "designs")
}

// BenchmarkSensitivityBandwidth regenerates the bandwidth sensitivity sweep
// (E18) and reports the advantage range.
func BenchmarkSensitivityBandwidth(b *testing.B) {
	cfg := DefaultConfig()
	net := workload.ResNet18()
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		res, err := SweepBandwidth(net, cfg, []float64{0.11, 0.22, 0.44})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi = res.AdvantageRange()
	}
	b.ReportMetric(lo*100, "min-advantage-%")
	b.ReportMetric(hi*100, "max-advantage-%")
}

// BenchmarkGANGenerator runs the DCGAN generator across designs — the
// deconvolution workload of Section 5.2.
func BenchmarkGANGenerator(b *testing.B) {
	net, err := GANGenerator(DCGAN())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	var perf float64
	for i := 0; i < b.N; i++ {
		rs, err := RunAll(net, []Design{Baseline, TNPU, Seculator}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		perf = rs[2].Performance(rs[0]) / rs[1].Performance(rs[0])
	}
	b.ReportMetric((perf-1)*100, "speedup-vs-tnpu-%")
}

// BenchmarkAblationRowBuffer isolates the row-locality damage of per-block
// metadata interleaving — overhead the flat bandwidth model cannot see,
// and the microarchitectural root of the paper's "accessing secure memory
// is expensive" observation.
func BenchmarkAblationRowBuffer(b *testing.B) {
	tr, err := CaptureTrace(workload.ResNet18(), Baseline, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var clean, dirty float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clean, err = tr.RowBufferHitRate(2, 16, 128)
		if err != nil {
			b.Fatal(err)
		}
		dirty, err = tr.RowBufferHitRateWithMetadata(2, 16, 128, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(clean*100, "clean-rowhit-%")
	b.ReportMetric(dirty*100, "metadata-rowhit-%")
}

// BenchmarkAblationArrayDataflow compares the systolic array's
// stationarity choices on ResNet-18 under the Seculator design — a
// SCALE-Sim-style compute-side ablation showing the protection comparison
// is insensitive to the array dataflow.
func BenchmarkAblationArrayDataflow(b *testing.B) {
	net := workload.ResNet18()
	var ws, os, is uint64
	for i := 0; i < b.N; i++ {
		for _, df := range []struct {
			d   npu.ArrayDataflow
			dst *uint64
		}{
			{npu.WeightStationary, &ws}, {npu.OutputStationary, &os}, {npu.InputStationary, &is},
		} {
			cfg := DefaultConfig()
			cfg.NPU.Dataflow = df.d
			r, err := runner.Run(context.Background(), net, protect.Seculator, cfg)
			if err != nil {
				b.Fatal(err)
			}
			*df.dst = uint64(r.Cycles)
		}
	}
	b.ReportMetric(float64(os)/float64(ws), "OS/WS")
	b.ReportMetric(float64(is)/float64(ws), "IS/WS")
}

// BenchmarkHostChannel measures the command channel's issue+receive path.
func BenchmarkHostChannel(b *testing.B) {
	key := []byte("bench-session-key")
	h := NewHostController(key)
	e := NewNPUEndpoint(key)
	cmd := HostCommand{
		Layer:   Layer{Type: Conv, C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Stride: 1},
		Triplet: Triplet{Eta: 4, Kappa: 8, Rho: 16},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Receive(h.Issue(cmd)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDefencePlanning measures the Seculator+ planner on MobileNet.
func BenchmarkDefencePlanning(b *testing.B) {
	cfg := DefaultConfig()
	net := workload.MobileNet()
	var plan DefencePlan
	var err error
	for i := 0; i < b.N; i++ {
		plan, err = PlanDefence(net, cfg, 0.5, 8, DefaultDefenceOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plan.WidenFactor, "widen-factor")
	b.ReportMetric(plan.Overhead, "overhead-x")
}
