module seculator

go 1.22
