package counter

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPageOfAndValueDefaults(t *testing.T) {
	if PageOf(0) != 0 || PageOf(63) != 0 || PageOf(64) != 1 || PageOf(129) != 2 {
		t.Fatal("PageOf wrong")
	}
	s := NewStore()
	v := s.Value(10)
	if v.Major != 0 || v.Minor != 0 {
		t.Fatalf("fresh counter = %v", v)
	}
	if s.Pages() != 0 {
		t.Fatal("Value must not allocate pages")
	}
}

func TestIncrement(t *testing.T) {
	s := NewStore()
	v, of := s.Increment(5)
	if of || v.Major != 0 || v.Minor != 1 {
		t.Fatalf("first increment = %v overflow=%v", v, of)
	}
	v, _ = s.Increment(5)
	if v.Minor != 2 {
		t.Fatalf("second increment = %v", v)
	}
	// Another block on the same page has its own minor.
	v, _ = s.Increment(6)
	if v.Minor != 1 {
		t.Fatalf("sibling block minor = %v", v)
	}
	if s.Pages() != 1 || s.Increments() != 3 {
		t.Fatalf("pages=%d increments=%d", s.Pages(), s.Increments())
	}
}

func TestMinorOverflow(t *testing.T) {
	s := NewStore()
	s.Increment(70) // sibling on page 1 gets minor 1
	var v Value
	var of bool
	for i := 0; i < MinorLimit-1; i++ {
		v, of = s.Increment(64)
		if of {
			t.Fatalf("premature overflow at %d", i)
		}
	}
	if v.Minor != MinorLimit-1 {
		t.Fatalf("minor before overflow = %v", v)
	}
	v, of = s.Increment(64)
	if !of {
		t.Fatal("overflow not reported")
	}
	if v.Major != 1 || v.Minor != 1 {
		t.Fatalf("post-overflow counter = %v", v)
	}
	// All other minors on the page were reset.
	if got := s.Value(70); got.Major != 1 || got.Minor != 0 {
		t.Fatalf("sibling after overflow = %v", got)
	}
	if s.Overflows() != 1 {
		t.Fatalf("Overflows = %d", s.Overflows())
	}
}

// Freshness invariant: the combined counter value of a block never repeats
// across consecutive increments, even through overflows.
func TestCounterNeverRepeatsProperty(t *testing.T) {
	f := func(n uint16) bool {
		s := NewStore()
		seen := map[Value]bool{{}: true} // initial value
		for i := 0; i < int(n%200)+MinorLimit+5; i++ {
			v, _ := s.Increment(3)
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSerialize(t *testing.T) {
	s := NewStore()
	img := make([]byte, 64)
	s.Serialize(0, img)
	if !bytes.Equal(img, make([]byte, 64)) {
		t.Fatal("missing page must serialize as zeros")
	}
	s.Increment(0) // page 0, slot 0 -> minor 1
	s.Serialize(0, img)
	// Major still 0; first minor (6 bits) = 1 -> bits 64..69 = 000001.
	if img[8] != 0b00000100 {
		t.Fatalf("packed minors wrong: byte8=%08b", img[8])
	}
	before := append([]byte(nil), img...)
	s.Increment(1)
	s.Serialize(0, img)
	if bytes.Equal(img, before) {
		t.Fatal("serialization must change when any counter changes")
	}
	// Major counter serializes big-endian in the first 8 bytes.
	s.TamperMajor(0, 0x0102)
	s.Serialize(0, img)
	if img[6] != 0x01 || img[7] != 0x02 {
		t.Fatalf("major bytes = % x", img[:8])
	}
}

func TestSerializeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short buffer should panic")
		}
	}()
	NewStore().Serialize(0, make([]byte, 8))
}

func TestTamperMajor(t *testing.T) {
	s := NewStore()
	if s.TamperMajor(0, 1) {
		t.Fatal("tampering a missing page should fail")
	}
	s.Increment(0)
	if !s.TamperMajor(0, 5) {
		t.Fatal("TamperMajor failed")
	}
	if v := s.Value(0); v.Major != 5 {
		t.Fatalf("major after tamper = %v", v)
	}
}

func TestValueString(t *testing.T) {
	if (Value{Major: 2, Minor: 3}).String() != "2.3" {
		t.Fatal("Value.String wrong")
	}
}
