// Package counter implements the SGX-Client-style encryption counters used
// by the paper's "Secure" baseline configuration (Section 2.1.1): every
// 4 KB page carries a 64-bit major counter and each of its 64 blocks a
// 6-bit minor counter. The combined value (major ‖ minor) seeds the CTR
// encryption of the block and is bumped on every write-back; a minor
// counter overflow increments the major counter and forces the whole page
// to be re-encrypted under fresh minors.
//
// One 64-byte counter line holds a page's major counter (8 B) plus its 64
// minor counters (48 B), so counter lines map 1:1 to pages — the unit the
// 4 KB counter cache and the Merkle tree operate on.
package counter

import "fmt"

const (
	// BlocksPerPage is the number of 64-byte blocks per 4 KB page.
	BlocksPerPage = 64
	// MinorBits is the width of a minor counter.
	MinorBits = 6
	// MinorLimit is the exclusive upper bound of a minor counter.
	MinorLimit = 1 << MinorBits
)

// Value is a combined encryption counter.
type Value struct {
	Major uint64
	Minor uint8
}

// String implements fmt.Stringer.
func (v Value) String() string { return fmt.Sprintf("%d.%d", v.Major, v.Minor) }

// page is the counter state of one 4 KB page.
type page struct {
	major  uint64
	minors [BlocksPerPage]uint8
}

// Store holds the counters of all protected pages. The zero state of a page
// (major 0, minors 0) is its freshly-initialized value.
type Store struct {
	pages map[uint64]*page

	increments uint64
	overflows  uint64
}

// NewStore returns an empty counter store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64]*page)}
}

// PageOf returns the page index of a block address (block units).
func PageOf(blockAddr uint64) uint64 { return blockAddr / BlocksPerPage }

// slotOf returns the minor-counter slot of a block address.
func slotOf(blockAddr uint64) int { return int(blockAddr % BlocksPerPage) }

// Value returns the current counter of a block.
func (s *Store) Value(blockAddr uint64) Value {
	p, ok := s.pages[PageOf(blockAddr)]
	if !ok {
		return Value{}
	}
	return Value{Major: p.major, Minor: p.minors[slotOf(blockAddr)]}
}

// Increment bumps the block's minor counter for a write-back and returns
// the new counter. overflowed reports that the minor wrapped: the major
// counter was incremented, every minor on the page was reset, and the
// caller must re-encrypt all other blocks of the page (BlocksPerPage-1
// extra block writes).
func (s *Store) Increment(blockAddr uint64) (v Value, overflowed bool) {
	pi := PageOf(blockAddr)
	p, ok := s.pages[pi]
	if !ok {
		p = &page{}
		s.pages[pi] = p
	}
	s.increments++
	slot := slotOf(blockAddr)
	p.minors[slot]++
	if p.minors[slot] == MinorLimit {
		s.overflows++
		p.major++
		for i := range p.minors {
			p.minors[i] = 0
		}
		p.minors[slot] = 1
		return Value{Major: p.major, Minor: 1}, true
	}
	return Value{Major: p.major, Minor: p.minors[slot]}, false
}

// Pages returns how many pages have live counters.
func (s *Store) Pages() int { return len(s.pages) }

// Increments returns the total number of counter bumps.
func (s *Store) Increments() uint64 { return s.increments }

// Overflows returns how many minor-counter overflows occurred.
func (s *Store) Overflows() uint64 { return s.overflows }

// Serialize packs a page's counters into its 64-byte counter line image,
// the quantity the Merkle tree hashes. Missing pages serialize as zeros.
func (s *Store) Serialize(pageIdx uint64, dst []byte) {
	if len(dst) != 64 {
		panic(fmt.Sprintf("counter: line image must be 64 bytes, got %d", len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	p, ok := s.pages[pageIdx]
	if !ok {
		return
	}
	for i := 0; i < 8; i++ {
		dst[i] = byte(p.major >> (8 * (7 - i)))
	}
	// Pack 64 six-bit minors into 48 bytes, starting after the major.
	bit := 8 * 8
	for _, m := range p.minors {
		for b := MinorBits - 1; b >= 0; b-- {
			if m&(1<<b) != 0 {
				dst[bit/8] |= 1 << (7 - bit%8)
			}
			bit++
		}
	}
}

// TamperMajor adds delta to a page's major counter without going through
// Increment — the attacker primitive for counter-corruption tests. It
// reports whether the page existed.
func (s *Store) TamperMajor(pageIdx uint64, delta uint64) bool {
	p, ok := s.pages[pageIdx]
	if !ok {
		return false
	}
	p.major += delta
	return true
}
