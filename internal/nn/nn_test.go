package nn

import (
	"testing"
	"testing/quick"

	"seculator/internal/workload"
)

func convLayer() workload.Layer {
	return workload.Layer{
		Name: "conv", Type: workload.Conv,
		C: 3, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1,
	}
}

func TestTensorBasics(t *testing.T) {
	tt := NewTensor(2, 3, 4)
	tt.Set(1, 2, 3, 42)
	if tt.At(1, 2, 3) != 42 {
		t.Fatal("Set/At broken")
	}
	if tt.AtPadded(1, -1, 0) != 0 || tt.AtPadded(1, 3, 0) != 0 || tt.AtPadded(1, 0, 4) != 0 {
		t.Fatal("padding must read as zero")
	}
	o := NewTensor(2, 3, 4)
	if tt.Equal(o) {
		t.Fatal("different tensors reported equal")
	}
	o.Set(1, 2, 3, 42)
	if !tt.Equal(o) {
		t.Fatal("equal tensors reported different")
	}
	if tt.Equal(NewTensor(1, 3, 4)) {
		t.Fatal("shape mismatch reported equal")
	}
}

func TestNewTensorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape should panic")
		}
	}()
	NewTensor(0, 1, 1)
}

func TestRandomizeDeterministic(t *testing.T) {
	a := NewTensor(2, 4, 4)
	b := NewTensor(2, 4, 4)
	a.Randomize(7)
	b.Randomize(7)
	if !a.Equal(b) {
		t.Fatal("same seed must give same tensor")
	}
	b.Randomize(8)
	if a.Equal(b) {
		t.Fatal("different seeds should differ")
	}
	for _, v := range a.Data {
		if v < -8 || v >= 8 {
			t.Fatalf("value %d out of range", v)
		}
	}
}

func TestWeights(t *testing.T) {
	w := NewWeights(2, 3, 3, 3)
	w.Data[((1*3+2)*3+1)*3+2] = 9
	if w.At(1, 2, 1, 2) != 9 {
		t.Fatal("Weights.At broken")
	}
	if WeightsFor(workload.Layer{Type: workload.Pool, C: 1, K: 1, R: 1, S: 1}) != nil {
		t.Fatal("pool has no weights")
	}
	dw := WeightsFor(workload.Layer{Type: workload.Depthwise, C: 4, K: 4, R: 3, S: 3})
	if dw.C != 1 || dw.K != 4 {
		t.Fatalf("depthwise weights shape: %+v", dw)
	}
}

func TestPadOrigin(t *testing.T) {
	l := convLayer() // same padding, 3x3 stride 1 on 8x8 -> pad 1
	if py, px := PadOrigin(l); py != 1 || px != 1 {
		t.Fatalf("same pad = (%d,%d)", py, px)
	}
	l.Valid = true
	if py, px := PadOrigin(l); py != 0 || px != 0 {
		t.Fatal("valid padding must be zero")
	}
	// 1x1 conv: no padding needed even in same mode.
	pw := workload.Layer{Type: workload.Pointwise, C: 2, H: 4, W: 4, K: 2, R: 1, S: 1, Stride: 1}
	if py, px := PadOrigin(pw); py != 0 || px != 0 {
		t.Fatal("1x1 conv needs no padding")
	}
}

// A hand-computed 1-channel convolution.
func TestForwardKnownValues(t *testing.T) {
	l := workload.Layer{Type: workload.Conv, C: 1, H: 3, W: 3, K: 1, R: 3, S: 3, Stride: 1, Valid: true}
	in := NewTensor(1, 3, 3)
	w := NewWeights(1, 1, 3, 3)
	for i := range in.Data {
		in.Data[i] = int32(i + 1) // 1..9
	}
	for i := range w.Data {
		w.Data[i] = 1
	}
	out, err := Forward(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 1 || out.W != 1 || out.At(0, 0, 0) != 45 {
		t.Fatalf("conv sum = %d, want 45", out.At(0, 0, 0))
	}
}

func TestForwardPoolKnownValues(t *testing.T) {
	l := workload.Layer{Type: workload.Pool, C: 1, H: 4, W: 4, K: 1, R: 2, S: 2, Stride: 2, Valid: true}
	in := NewTensor(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = int32(i)
	}
	out, err := Forward(l, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{5, 7}, {13, 15}}
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if out.At(0, y, x) != want[y][x] {
				t.Fatalf("pool[%d][%d] = %d, want %d", y, x, out.At(0, y, x), want[y][x])
			}
		}
	}
}

func TestForwardFCFlatten(t *testing.T) {
	l := workload.Layer{Type: workload.FC, C: 8, H: 1, W: 1, K: 2, R: 1, S: 1, Stride: 1}
	in := NewTensor(2, 2, 2) // flattens to 8
	for i := range in.Data {
		in.Data[i] = 1
	}
	w := NewWeights(2, 8, 1, 1)
	for i := range w.Data {
		w.Data[i] = 2
	}
	out, err := Forward(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0) != 16 || out.At(1, 0, 0) != 16 {
		t.Fatalf("fc out = %d,%d want 16,16", out.At(0, 0, 0), out.At(1, 0, 0))
	}
}

func TestForwardErrors(t *testing.T) {
	l := convLayer()
	if _, err := Forward(l, NewTensor(1, 8, 8), NewWeights(4, 3, 3, 3)); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if _, err := Forward(l, NewTensor(3, 8, 8), nil); err == nil {
		t.Fatal("missing weights accepted")
	}
	bad := workload.Layer{Type: workload.FC, C: 9, H: 1, W: 1, K: 2, R: 1, S: 1, Stride: 1}
	if _, err := Forward(bad, NewTensor(2, 2, 2), NewWeights(2, 9, 1, 1)); err == nil {
		t.Fatal("flatten size mismatch accepted")
	}
}

// Partial accumulation must compose: summing contributions over channel
// groups and row bands in any split equals the direct computation.
func TestAccumulateConvComposesProperty(t *testing.T) {
	l := convLayer()
	f := func(seed int64, split uint8) bool {
		in := NewTensor(l.C, l.H, l.W)
		in.Randomize(seed)
		w := NewWeights(l.K, l.C, l.R, l.S)
		w.Randomize(seed + 1)

		direct, err := Forward(l, in, w)
		if err != nil {
			return false
		}

		tiled := NewTensor(l.K, l.OutH(), l.OutW())
		cSplit := int(split%3) + 1
		for c0 := 0; c0 < l.C; c0 += cSplit {
			for y0 := 0; y0 < l.OutH(); y0 += 3 {
				for k0 := 0; k0 < l.K; k0 += 2 {
					AccumulateConv(tiled, in, w, l, k0, k0+2, c0, c0+cSplit, y0, y0+3)
				}
			}
		}
		return tiled.Equal(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthwiseForward(t *testing.T) {
	l := workload.Layer{Type: workload.Depthwise, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Stride: 1}
	in := NewTensor(2, 4, 4)
	in.Randomize(3)
	w := NewWeights(2, 1, 3, 3)
	w.Randomize(4)
	out, err := Forward(l, in, w)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 of the output must be independent of channel 1 of the input.
	in2 := NewTensor(2, 4, 4)
	copy(in2.Data, in.Data)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			in2.Set(1, y, x, 99)
		}
	}
	out2, err := Forward(l, in2, w)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			if out.At(0, y, x) != out2.At(0, y, x) {
				t.Fatal("depthwise channel 0 depends on input channel 1")
			}
		}
	}
}

func TestForwardNetworkAndRandomModel(t *testing.T) {
	net := workload.Network{
		Name: "mini",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
			{Name: "p1", Type: workload.Pool, C: 4, H: 8, W: 8, K: 4, R: 2, S: 2, Stride: 2, Valid: true},
			{Name: "fc", Type: workload.FC, C: 4 * 4 * 4, H: 1, W: 1, K: 3, R: 1, S: 1, Stride: 1},
		},
	}
	in, ws := RandomModel(net, 11)
	out, err := ForwardNetwork(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if out.Chans != 3 || out.H != 1 || out.W != 1 {
		t.Fatalf("output shape %dx%dx%d", out.Chans, out.H, out.W)
	}
	if _, err := ForwardNetwork(net, in, ws[:1]); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
}
