// Package nn provides the numerical layer of the reproduction: exact
// (int32) tensors and forward-pass kernels for the layer types the
// simulator schedules — convolution, depthwise convolution, pooling and
// fully connected layers.
//
// Integer arithmetic is deliberate: the secure executor computes layers as
// tiled partial sums in a dataflow-dependent order, and the end-to-end
// tests require bit-exact agreement with this package's direct reference
// implementation, which floating point's non-associativity would forbid.
// Int32 also matches the 4-byte fixed-point pixels of the NPU model.
package nn

import (
	"fmt"
	"math/rand"

	"seculator/internal/workload"
)

// Tensor is a dense (Chans, H, W) activation volume of int32 elements in
// channel-major, row-major order.
type Tensor struct {
	Chans, H, W int
	Data        []int32
}

// NewTensor allocates a zero tensor.
func NewTensor(chans, h, w int) *Tensor {
	if chans <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor shape %dx%dx%d", chans, h, w))
	}
	return &Tensor{Chans: chans, H: h, W: w, Data: make([]int32, chans*h*w)}
}

// At returns the element at (c, y, x).
func (t *Tensor) At(c, y, x int) int32 {
	return t.Data[(c*t.H+y)*t.W+x]
}

// Set stores v at (c, y, x).
func (t *Tensor) Set(c, y, x int, v int32) {
	t.Data[(c*t.H+y)*t.W+x] = v
}

// AtPadded returns the element at (c, y, x), or 0 outside the bounds —
// zero padding as the convolution kernels see it.
func (t *Tensor) AtPadded(c, y, x int) int32 {
	if y < 0 || y >= t.H || x < 0 || x >= t.W {
		return 0
	}
	return t.At(c, y, x)
}

// Equal reports element-wise equality of same-shaped tensors.
func (t *Tensor) Equal(o *Tensor) bool {
	if t.Chans != o.Chans || t.H != o.H || t.W != o.W {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// Randomize fills the tensor with small deterministic values in [-8, 8)
// from the seed, keeping tiled accumulation far from int32 overflow.
func (t *Tensor) Randomize(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range t.Data {
		t.Data[i] = int32(rng.Intn(16) - 8)
	}
}

// Weights is the filter tensor of one layer: K filters of (C, R, S).
type Weights struct {
	K, C, R, S int
	Data       []int32
}

// NewWeights allocates zero weights.
func NewWeights(k, c, r, s int) *Weights {
	if k <= 0 || c <= 0 || r <= 0 || s <= 0 {
		panic(fmt.Sprintf("nn: invalid weight shape %dx%dx%dx%d", k, c, r, s))
	}
	return &Weights{K: k, C: c, R: r, S: s, Data: make([]int32, k*c*r*s)}
}

// At returns w[k][c][r][s].
func (w *Weights) At(k, c, r, s int) int32 {
	return w.Data[((k*w.C+c)*w.R+r)*w.S+s]
}

// Randomize fills the weights with small deterministic values in [-4, 4).
func (w *Weights) Randomize(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range w.Data {
		w.Data[i] = int32(rng.Intn(8) - 4)
	}
}

// WeightsFor allocates the weight tensor a layer needs (nil for pools and
// upsampling).
func WeightsFor(l workload.Layer) *Weights {
	switch l.Type {
	case workload.Pool, workload.Upsample:
		return nil
	case workload.Depthwise:
		return NewWeights(l.K, 1, l.R, l.S)
	case workload.FC:
		return NewWeights(l.K, l.C, l.R, l.S)
	default:
		return NewWeights(l.K, l.C, l.R, l.S)
	}
}

// PadOrigin returns the top/left padding offsets of a layer: zero for
// valid padding, centered for "same" padding (TensorFlow convention).
func PadOrigin(l workload.Layer) (padY, padX int) {
	if l.Valid {
		return 0, 0
	}
	needY := (l.OutH()-1)*l.Stride + l.R - l.H
	needX := (l.OutW()-1)*l.Stride + l.S - l.W
	if needY < 0 {
		needY = 0
	}
	if needX < 0 {
		needX = 0
	}
	return needY / 2, needX / 2
}

// AccumulateConv adds the partial convolution contribution of input
// channels [c0, c1) to out for output channels [k0, k1) and output rows
// [y0, y1), over all output columns. Depthwise layers reduce each output
// channel against its own input channel regardless of [c0, c1).
func AccumulateConv(out *Tensor, in *Tensor, w *Weights, l workload.Layer,
	k0, k1, c0, c1, y0, y1 int) {
	padY, padX := PadOrigin(l)
	depthwise := l.Type == workload.Depthwise
	for k := k0; k < k1 && k < l.K; k++ {
		for y := y0; y < y1 && y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				var sum int32
				if depthwise {
					if c0 > 0 {
						continue // single reduction step: only c-group 0 contributes
					}
					for r := 0; r < l.R; r++ {
						for s := 0; s < l.S; s++ {
							sum += in.AtPadded(k, y*l.Stride+r-padY, x*l.Stride+s-padX) * w.At(k, 0, r, s)
						}
					}
				} else {
					for c := c0; c < c1 && c < l.C; c++ {
						for r := 0; r < l.R; r++ {
							for s := 0; s < l.S; s++ {
								sum += in.AtPadded(c, y*l.Stride+r-padY, x*l.Stride+s-padX) * w.At(k, c, r, s)
							}
						}
					}
				}
				out.Set(k, y, x, out.At(k, y, x)+sum)
			}
		}
	}
}

// AccumulatePool writes the max-pool result for channels [k0, k1) and
// output rows [y0, y1) into out (pooling has a single reduction step).
func AccumulatePool(out *Tensor, in *Tensor, l workload.Layer, k0, k1, y0, y1 int) {
	padY, padX := PadOrigin(l)
	for k := k0; k < k1 && k < l.K; k++ {
		for y := y0; y < y1 && y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				first := true
				var best int32
				for r := 0; r < l.R; r++ {
					for s := 0; s < l.S; s++ {
						iy, ix := y*l.Stride+r-padY, x*l.Stride+s-padX
						if iy < 0 || iy >= in.H || ix < 0 || ix >= in.W {
							continue
						}
						v := in.At(k, iy, ix)
						if first || v > best {
							best, first = v, false
						}
					}
				}
				out.Set(k, y, x, best)
			}
		}
	}
}

// AccumulateUpsample writes zero-insertion upsampling for channels [k0, k1)
// and output rows [y0, y1): output (y, x) carries input (y/f, x/f) when both
// coordinates are multiples of the factor, zero otherwise — the
// deconvolution pre-processing of Section 5.2.
func AccumulateUpsample(out *Tensor, in *Tensor, l workload.Layer, k0, k1, y0, y1 int) {
	f := l.Stride
	for k := k0; k < k1 && k < l.K; k++ {
		for y := y0; y < y1 && y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				var v int32
				if y%f == 0 && x%f == 0 {
					v = in.At(k, y/f, x/f)
				}
				out.Set(k, y, x, v)
			}
		}
	}
}

// Forward computes one layer's full output directly — the golden reference
// the secure executor is checked against. FC layers flatten their input.
func Forward(l workload.Layer, in *Tensor, w *Weights) (*Tensor, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	in, err := reshapeInput(l, in)
	if err != nil {
		return nil, err
	}
	out := NewTensor(l.K, l.OutH(), l.OutW())
	switch l.Type {
	case workload.Pool:
		AccumulatePool(out, in, l, 0, l.K, 0, out.H)
	case workload.Upsample:
		AccumulateUpsample(out, in, l, 0, l.K, 0, out.H)
	default:
		if w == nil {
			return nil, fmt.Errorf("nn: layer %q needs weights", l.Name)
		}
		AccumulateConv(out, in, w, l, 0, l.K, 0, l.ReductionChannels(), 0, out.H)
	}
	return out, nil
}

// reshapeInput flattens the previous activation volume for FC layers and
// validates the shape otherwise.
func reshapeInput(l workload.Layer, in *Tensor) (*Tensor, error) {
	if l.Type == workload.FC && l.H == 1 && l.W == 1 {
		if len(in.Data) != l.C {
			return nil, fmt.Errorf("nn: layer %q: flattened input %d != expected %d",
				l.Name, len(in.Data), l.C)
		}
		return &Tensor{Chans: l.C, H: 1, W: 1, Data: in.Data}, nil
	}
	if in.Chans != l.C || in.H != l.H || in.W != l.W {
		return nil, fmt.Errorf("nn: layer %q: input %dx%dx%d != expected %dx%dx%d",
			l.Name, in.Chans, in.H, in.W, l.C, l.H, l.W)
	}
	return in, nil
}

// ForwardNetwork runs a whole network through the reference path with the
// given per-layer weights (nil entries for pools).
func ForwardNetwork(net workload.Network, in *Tensor, weights []*Weights) (*Tensor, error) {
	if len(weights) != len(net.Layers) {
		return nil, fmt.Errorf("nn: %d weight tensors for %d layers", len(weights), len(net.Layers))
	}
	cur := in
	for i, l := range net.Layers {
		out, err := Forward(l, cur, weights[i])
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		cur = out
	}
	return cur, nil
}

// RandomModel builds deterministic random weights for every layer of a
// network plus a random input tensor.
func RandomModel(net workload.Network, seed int64) (*Tensor, []*Weights) {
	first := net.Layers[0]
	in := NewTensor(first.C, first.H, first.W)
	in.Randomize(seed)
	ws := make([]*Weights, len(net.Layers))
	for i, l := range net.Layers {
		if w := WeightsFor(l); w != nil {
			w.Randomize(seed + int64(i) + 1)
			ws[i] = w
		}
	}
	return in, ws
}
