package parallel

import (
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Pool.Submit after Close has begun: the pool
// drains what it already accepted but takes no new work.
var ErrPoolClosed = errors.New("parallel: pool closed")

// Pool is the persistent counterpart to Map/ForEach: a fixed set of worker
// goroutines consuming an unbounded FIFO of tasks. Map is built for one-shot
// experiment fan-outs that start and finish together; a long-lived server
// needs workers that outlive any single request, so the serving scheduler
// submits each micro-batch here instead of spawning goroutines per request.
//
// The queue is deliberately unbounded: admission control (bounding how much
// work may be outstanding) belongs to the caller, which can reject work
// before it is submitted — the serving layer does exactly that with its
// queue-depth limit. An in-pool bound would make Submit block, and a
// blocking Submit under the scheduler's lock is a deadlock.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts a pool with n workers (n <= 0 means Workers()).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = Workers()
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		task()
	}
}

// Submit enqueues a task for the next free worker. It never blocks; after
// Close it rejects the task with ErrPoolClosed.
func (p *Pool) Submit(task func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.queue = append(p.queue, task)
	p.cond.Signal()
	return nil
}

// Fork runs fn(0), fn(1), …, fn(n-1) concurrently — shards 1..n-1 on pool
// workers, shard 0 inline on the calling goroutine — and returns when every
// call has completed. It is the fork-join primitive under the secure
// executor's intra-inference sharding: the caller keeps doing useful work
// instead of blocking, so a Fork degrades gracefully to plain serial
// execution when the pool is busy (or closed, in which case the remaining
// shards also run inline).
//
// A panic in any shard is captured, and the first one re-raised on the
// calling goroutine after all shards have finished — never on a pool
// worker, where it would kill the process, and never before the join,
// where the caller could unwind while shards still touch shared state.
//
// Fork must not be called from inside a pool task: a fully busy pool whose
// tasks all wait on sub-forks would deadlock.
func (p *Pool) Fork(n int, fn func(shard int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	run := func(shard int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicVal == nil {
					panicVal = r
				}
				panicMu.Unlock()
			}
		}()
		fn(shard)
	}
	wg.Add(n - 1)
	for s := 1; s < n; s++ {
		s := s
		task := func() {
			defer wg.Done()
			run(s)
		}
		if p.Submit(task) != nil {
			task() // pool closed: degrade to inline
		}
	}
	run(0)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Depth returns the number of tasks waiting for a worker (not counting
// tasks already executing).
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Close stops accepting new tasks, lets the workers drain everything
// already accepted, and waits for them to exit. Safe to call twice.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
