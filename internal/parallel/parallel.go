// Package parallel is the experiment engine's fan-out primitive: a
// context-aware, bounded-concurrency worker pool with errgroup-style
// first-error propagation and deterministic result ordering (results land
// by item index, never by completion order).
//
// The evaluation pipeline is embarrassingly parallel across independent
// (network x design x sweep-point x fault-trial) simulations; every
// fan-out site in the repository — runner.RunAll, the four sweeps, the
// figure experiments, the attack matrix and the fault campaign — is built
// on Map/ForEach so a full table regeneration saturates all cores.
//
// Concurrency contract: fn is invoked from multiple goroutines, each call
// on a distinct item. Everything fn touches must either be goroutine-safe
// or owned by the call — the simulation stack satisfies this by
// constructing one protection engine, DRAM and crypto engine per
// simulation (the "engine per worker" contract; see DESIGN.md §8).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the GOMAXPROCS-scaled default when positive.
var defaultWorkers atomic.Int64

// SetWorkers sets the default worker count used when Map/ForEach are
// called with workers <= 0. n <= 0 restores the GOMAXPROCS default.
// It is the hook behind the seculator-bench -parallel flag.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers returns the current default worker count: SetWorkers' value if
// set, otherwise GOMAXPROCS.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every item with at most `workers` concurrent calls
// (workers <= 0 means Workers()) and returns the outputs in item order.
// The first error wins: it cancels the context passed to in-flight calls,
// prevents un-started items from running, and is the error returned.
// A cancelled parent context yields ctx.Err().
func Map[I, O any](ctx context.Context, workers int, items []I, fn func(ctx context.Context, item I) (O, error)) ([]O, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}

	out := make([]O, n)
	if workers == 1 {
		// Serial fast path: no goroutines, same semantics.
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o, err := fn(ctx, items[i])
			if err != nil {
				return nil, err
			}
			out[i] = o
		}
		return out, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // work-stealing item cursor
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := wctx.Err(); err != nil {
					return
				}
				o, err := fn(wctx, items[i])
				if err != nil {
					fail(err)
					return
				}
				out[i] = o
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The parent may have been cancelled after the last item completed;
	// report it rather than returning a silently truncated run.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach is Map without outputs: it applies fn to every item with
// bounded concurrency and first-error propagation.
func ForEach[I any](ctx context.Context, workers int, items []I, fn func(ctx context.Context, item I) error) error {
	_, err := Map(ctx, workers, items, func(ctx context.Context, item I) (struct{}, error) {
		return struct{}{}, fn(ctx, item)
	})
	return err
}
