package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() { ran.Add(1); wg.Done() }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	p.Close()
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", ran.Load())
	}
}

func TestPoolCloseDrainsAcceptedWork(t *testing.T) {
	p := NewPool(1)
	var order []int
	var mu sync.Mutex
	block := make(chan struct{})
	p.Submit(func() { <-block })
	for i := 0; i < 5; i++ {
		i := i
		p.Submit(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	time.Sleep(10 * time.Millisecond) // Close must be waiting, not cancelling
	close(block)
	<-done
	if len(order) != 5 {
		t.Fatalf("drained %d of 5 queued tasks", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("submit after close: %v, want ErrPoolClosed", err)
	}
}

func TestPoolDepth(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	release := make(chan struct{})
	p.Submit(func() { close(block); <-release })
	<-block
	p.Submit(func() {})
	p.Submit(func() {})
	if d := p.Depth(); d != 2 {
		t.Fatalf("depth %d, want 2", d)
	}
	close(release)
}
