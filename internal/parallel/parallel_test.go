package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapDeterministicOrdering: outputs land by item index regardless of
// worker count or completion order. Run under -race this also exercises
// the pool's synchronization.
func TestMapDeterministicOrdering(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	fn := func(_ context.Context, v int) (int, error) {
		if v%7 == 0 {
			runtime.Gosched() // perturb completion order
		}
		return v*v + 1, nil
	}
	want, err := Map(context.Background(), 1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 150} {
		got, err := Map(context.Background(), workers, items, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapFirstErrorWins: an error cancels the fan-out, is the returned
// error, and stops remaining work promptly.
func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	var started atomic.Int64
	_, err := Map(context.Background(), 4, items, func(ctx context.Context, v int) (int, error) {
		started.Add(1)
		if v == 5 {
			return 0, boom
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Cancellation prevents the un-started tail from running: with 4
	// workers failing around item 5, nowhere near all 1000 items start.
	if n := started.Load(); n >= int64(len(items)) {
		t.Fatalf("all %d items ran despite early error", n)
	}
}

// TestMapErrorSerial: the serial fast path propagates errors identically.
func TestMapErrorSerial(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	_, err := Map(context.Background(), 1, []int{1, 2, 3, 4}, func(_ context.Context, v int) (int, error) {
		ran++
		if v == 2 {
			return 0, boom
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if ran != 2 {
		t.Fatalf("ran %d items after error, want 2", ran)
	}
}

// TestMapCancellation: cancelling the parent context mid-fan-out returns
// ctx.Err() promptly even with items blocked on the context.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 64)
	var entered atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 4, items, func(ctx context.Context, _ int) (int, error) {
			if entered.Add(1) == 1 {
				cancel() // first call pulls the plug on everyone
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return promptly after cancellation")
	}
}

// TestMapPreCancelled: a context cancelled before the call runs nothing.
func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(ctx, 4, []int{1, 2, 3}, func(context.Context, int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran.Load())
	}
}

// TestMapEmptyAndWorkerClamp: zero items is a no-op; absurd worker counts
// clamp to the item count.
func TestMapEmptyAndWorkerClamp(t *testing.T) {
	out, err := Map(context.Background(), 8, nil, func(context.Context, int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("empty Map = (%v, %v), want (nil, nil)", out, err)
	}
	got, err := Map(context.Background(), 1000, []int{7}, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("clamped Map = (%v, %v)", got, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int{1, 2, 3, 4, 5}
	if err := ForEach(context.Background(), 3, items, func(_ context.Context, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d, want 15", sum.Load())
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
}

// TestMemoSingleflight: concurrent Do calls on one key compute exactly
// once and agree on the result; counters add up.
func TestMemoSingleflight(t *testing.T) {
	m := NewMemo[string, int]()
	var computes atomic.Int64
	const callers = 16
	results, err := Map(context.Background(), callers, make([]int, callers), func(context.Context, int) (int, error) {
		return m.Do("key", func() (int, error) {
			computes.Add(1)
			return 42, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r != 42 {
			t.Fatalf("cached result = %d, want 42", r)
		}
	}
	if computes.Load() != 1 {
		t.Fatalf("computed %d times, want 1 (singleflight)", computes.Load())
	}
	s := m.Stats()
	if s.Misses != 1 || s.Hits != callers-1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, %d hits, 1 entry", s, callers-1)
	}
	if got := s.HitRate(); got <= 0.9 {
		t.Fatalf("hit rate %.2f too low", got)
	}
}

// TestMemoColdWarmIdentity: a warm hit returns the identical value of the
// cold computation, and errors are cached alongside values.
func TestMemoColdWarmIdentity(t *testing.T) {
	m := NewMemo[int, string]()
	cold, err := m.Do(1, func() (string, error) { return "v1", nil })
	if err != nil {
		t.Fatal(err)
	}
	warm, err := m.Do(1, func() (string, error) {
		t.Fatal("recomputed a cached key")
		return "", nil
	})
	if err != nil || warm != cold {
		t.Fatalf("warm = (%q, %v), want (%q, nil)", warm, err, cold)
	}

	boom := errors.New("boom")
	if _, err := m.Do(2, func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Fatalf("cold error = %v, want boom", err)
	}
	if _, err := m.Do(2, func() (string, error) { return "fine", nil }); !errors.Is(err, boom) {
		t.Fatalf("warm error = %v, want cached boom", err)
	}

	m.Forget(2)
	if v, err := m.Do(2, func() (string, error) { return "fine", nil }); err != nil || v != "fine" {
		t.Fatalf("after Forget: (%q, %v), want (fine, nil)", v, err)
	}

	m.Reset()
	if s := m.Stats(); s.Entries != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats after Reset = %+v", s)
	}
}

// TestMemoDistinctKeys: different keys do not collide.
func TestMemoDistinctKeys(t *testing.T) {
	m := NewMemo[string, string]()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		want := fmt.Sprintf("v%d", i)
		got, err := m.Do(key, func() (string, error) { return want, nil })
		if err != nil || got != want {
			t.Fatalf("Do(%s) = (%q, %v)", key, got, err)
		}
	}
	if s := m.Stats(); s.Entries != 10 || s.Misses != 10 {
		t.Fatalf("stats = %+v, want 10 entries / 10 misses", s)
	}
}
