package parallel

import (
	"sync"
)

// MemoStats is a snapshot of a Memo's hit/miss counters.
type MemoStats struct {
	Hits    uint64 // Do calls served from the cache (including waits on an in-flight compute)
	Misses  uint64 // Do calls that triggered a compute
	Entries int    // distinct keys cached
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s MemoStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// memoEntry is one cached computation. The sync.Once gives singleflight
// semantics: concurrent misses on the same key compute exactly once, the
// losers block on the Once and read the stored result.
type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Memo is a concurrency-safe memoization cache for deterministic
// computations, keyed by a comparable fingerprint. A sync.RWMutex guards
// the key map; per-key sync.Once serializes the compute so a point is
// never simulated twice. Both values and errors are cached — the
// simulations it fronts are pure functions of their fingerprint.
//
// Cached values are shared across callers: treat anything returned
// through a Memo as immutable.
type Memo[K comparable, V any] struct {
	mu           sync.RWMutex
	entries      map[K]*memoEntry[V]
	hits, misses uint64
}

// NewMemo returns an empty cache.
func NewMemo[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{entries: make(map[K]*memoEntry[V])}
}

// Do returns the cached result for key, computing it with fn on first
// use. Concurrent calls with the same key run fn once; the rest wait and
// share the result.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	m.mu.RLock()
	e, ok := m.entries[key]
	m.mu.RUnlock()
	if !ok {
		m.mu.Lock()
		if e, ok = m.entries[key]; !ok {
			e = &memoEntry[V]{}
			m.entries[key] = e
			m.misses++
		} else {
			m.hits++
		}
		m.mu.Unlock()
	} else {
		m.mu.Lock()
		m.hits++
		m.mu.Unlock()
	}
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// Forget drops the entry for key, if any. Callers use it to evict a
// result that should not persist — e.g. a compute that failed with a
// context cancellation rather than a deterministic error.
func (m *Memo[K, V]) Forget(key K) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, key)
}

// Stats returns a snapshot of the counters.
func (m *Memo[K, V]) Stats() MemoStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Entries: len(m.entries)}
}

// Reset discards every entry and zeroes the counters.
func (m *Memo[K, V]) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = make(map[K]*memoEntry[V])
	m.hits, m.misses = 0, 0
}

// ResetStats zeroes the hit/miss counters while keeping every cached entry.
// Long-running processes use it to window the counters (hit rate since the
// last scrape) without throwing away warm state.
func (m *Memo[K, V]) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hits, m.misses = 0, 0
}
