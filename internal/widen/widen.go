// Package widen implements the MEA countermeasures of Seculator+
// (Section 7.5, after Li et al.'s NeurObfuscator): layer widening — padding
// every layer's geometry with junk data so an address-trace observer cannot
// recover the real model dimensions — and dummy-network execution, which
// intersperses the trace with decoy layers.
//
// Widening trades bandwidth for obfuscation; because Seculator's
// per-layer protection overhead is O(1) in the layer size, it scales best
// under widening (Figure 9).
package widen

import (
	"fmt"

	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// Layer pads a layer's input geometry up to at least (h, w, c) while
// preserving its type, kernel and stride. The padded regions hold junk
// data; the real computation is a sub-window. Output channels are padded
// proportionally to keep the channel ratio plausible to an observer.
func Layer(l workload.Layer, h, w, c int) (workload.Layer, error) {
	if h < l.H || w < l.W || c < l.C {
		return workload.Layer{}, fmt.Errorf("widen: target %dx%dx%d smaller than layer %dx%dx%d",
			h, w, c, l.H, l.W, l.C)
	}
	out := l
	out.Name = l.Name + "+pad"
	out.H, out.W = h, w
	if c > l.C {
		scale := (c + l.C - 1) / l.C
		out.C = c
		if l.Type == workload.Depthwise || l.Type == workload.Pool {
			out.K = c // K must track C for per-channel layers
		} else {
			out.K = l.K * scale
		}
	}
	return out, nil
}

// Network widens every layer's spatial extent by factor (>= 1), rebuilding
// the inter-layer chaining so the result still validates.
func Network(n workload.Network, factor float64) (workload.Network, error) {
	if factor < 1 {
		return workload.Network{}, fmt.Errorf("widen: factor %g < 1", factor)
	}
	out := workload.Network{Name: fmt.Sprintf("%s+widen%.2f", n.Name, factor), Note: n.Note}
	h, w := 0, 0
	for i, l := range n.Layers {
		wl := l
		wl.Name = l.Name + "+pad"
		if i == 0 {
			wl.H = scaleDim(l.H, factor)
			wl.W = scaleDim(l.W, factor)
		} else {
			// Chain from the previous widened layer.
			if l.Type == workload.FC && l.H == 1 && l.W == 1 {
				prev := out.Layers[i-1]
				wl.C = prev.K * prev.OutH() * prev.OutW()
			} else {
				wl.H, wl.W = h, w
			}
		}
		h, w = wl.OutH(), wl.OutW()
		out.Layers = append(out.Layers, wl)
	}
	if err := out.Validate(); err != nil {
		return workload.Network{}, fmt.Errorf("widen: widened network invalid: %w", err)
	}
	return out, nil
}

func scaleDim(d int, f float64) int {
	s := int(float64(d)*f + 0.5)
	if s < d {
		s = d
	}
	return s
}

// Report quantifies the data-volume cost of widening.
type Report struct {
	RealBytes   int64
	PaddedBytes int64
}

// Overhead returns the padded/real volume ratio (>= 1).
func (r Report) Overhead() float64 {
	if r.RealBytes == 0 {
		return 0
	}
	return float64(r.PaddedBytes) / float64(r.RealBytes)
}

// PaddingFraction returns the junk fraction of the padded volume.
func (r Report) PaddingFraction() float64 {
	if r.PaddedBytes == 0 {
		return 0
	}
	return float64(r.PaddedBytes-r.RealBytes) / float64(r.PaddedBytes)
}

// Compare sums the activation volumes (input fmaps of every layer) of the
// original and widened networks.
func Compare(orig, widened workload.Network) Report {
	var r Report
	for _, l := range orig.Layers {
		r.RealBytes += int64(tensor.FmapShape{Chans: l.C, H: l.H, W: l.W}.Bytes())
	}
	for _, l := range widened.Layers {
		r.PaddedBytes += int64(tensor.FmapShape{Chans: l.C, H: l.H, W: l.W}.Bytes())
	}
	return r
}

// Intersperse interleaves decoy layers into a real layer sequence: after
// every `period` real layers, one dummy layer (cycling through the decoy
// network) is inserted. The result is an execution schedule for
// runner.RunLayers, not a chained network — that is the point: the decoys'
// shapes are unrelated to the victim's, so a trace observer cannot segment
// the real model.
func Intersperse(real, dummy workload.Network, period int) ([]workload.Layer, error) {
	if period <= 0 {
		return nil, fmt.Errorf("widen: intersperse period must be positive, got %d", period)
	}
	if len(dummy.Layers) == 0 {
		return nil, fmt.Errorf("widen: empty dummy network")
	}
	var out []workload.Layer
	di := 0
	for i, l := range real.Layers {
		out = append(out, l)
		if (i+1)%period == 0 {
			out = append(out, dummy.Layers[di%len(dummy.Layers)])
			di++
		}
	}
	return out, nil
}

// Dummy builds a decoy network of `layers` identical conv layers, used to
// inject plausible-but-fake traffic between real inferences.
func Dummy(name string, layers, h, w, c, k int) (workload.Network, error) {
	if layers <= 0 {
		return workload.Network{}, fmt.Errorf("widen: dummy needs at least one layer, got %d", layers)
	}
	n := workload.Network{Name: name, Note: "decoy network for MEA noise"}
	in := c
	for i := 0; i < layers; i++ {
		n.Layers = append(n.Layers, workload.Layer{
			Name: fmt.Sprintf("dummy%d", i+1), Type: workload.Conv,
			C: in, H: h, W: w, K: k, R: 3, S: 3, Stride: 1,
		})
		in = k
	}
	if err := n.Validate(); err != nil {
		return workload.Network{}, err
	}
	return n, nil
}
