package widen

import (
	"testing"

	"seculator/internal/workload"
)

func baseLayer() workload.Layer {
	return workload.Layer{
		Name: "base", Type: workload.Conv,
		C: 3, H: 32, W: 32, K: 16, R: 3, S: 3, Stride: 1,
	}
}

func TestLayerWidening(t *testing.T) {
	l, err := Layer(baseLayer(), 64, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.H != 64 || l.W != 64 || l.C != 3 || l.K != 16 {
		t.Fatalf("widened layer: %+v", l)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayerWideningChannels(t *testing.T) {
	l, err := Layer(baseLayer(), 32, 32, 12)
	if err != nil {
		t.Fatal(err)
	}
	if l.C != 12 || l.K != 16*4 {
		t.Fatalf("channel widening: C=%d K=%d", l.C, l.K)
	}
	dw := workload.Layer{Name: "dw", Type: workload.Depthwise, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1}
	wdw, err := Layer(dw, 16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if wdw.K != wdw.C {
		t.Fatal("depthwise widening must keep K == C")
	}
	if err := wdw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayerWideningRejectsShrink(t *testing.T) {
	if _, err := Layer(baseLayer(), 16, 32, 3); err == nil {
		t.Fatal("shrinking accepted")
	}
}

func TestNetworkWidening(t *testing.T) {
	n := workload.MobileNet()
	w, err := Network(n, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Layers) != len(n.Layers) {
		t.Fatal("layer count changed")
	}
	if w.Layers[0].H != 336 { // 224 * 1.5
		t.Fatalf("first layer H = %d, want 336", w.Layers[0].H)
	}
	rep := Compare(n, w)
	if rep.Overhead() <= 1.5 {
		t.Fatalf("1.5x spatial widening should cost >1.5x volume, got %.2f", rep.Overhead())
	}
	if f := rep.PaddingFraction(); f <= 0 || f >= 1 {
		t.Fatalf("padding fraction = %.3f", f)
	}
}

func TestNetworkWideningIdentity(t *testing.T) {
	n := workload.ResNet18()
	w, err := Network(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare(n, w)
	if rep.Overhead() != 1.0 {
		t.Fatalf("identity widening overhead = %.3f", rep.Overhead())
	}
}

func TestNetworkWideningRejectsBadFactor(t *testing.T) {
	if _, err := Network(workload.MobileNet(), 0.5); err == nil {
		t.Fatal("factor < 1 accepted")
	}
}

func TestReportEdgeCases(t *testing.T) {
	if (Report{}).Overhead() != 0 {
		t.Fatal("empty report overhead")
	}
	if (Report{}).PaddingFraction() != 0 {
		t.Fatal("empty report fraction")
	}
}

func TestDummy(t *testing.T) {
	d, err := Dummy("noise", 3, 28, 28, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Layers) != 3 {
		t.Fatalf("dummy layers = %d", len(d.Layers))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dummy("bad", 0, 1, 1, 1, 1); err == nil {
		t.Fatal("zero-layer dummy accepted")
	}
}

func TestIntersperse(t *testing.T) {
	real := workload.MobileNet()
	dummy, err := Dummy("noise", 3, 28, 28, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	layers, err := Intersperse(real, dummy, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantDummies := len(real.Layers) / 4
	if len(layers) != len(real.Layers)+wantDummies {
		t.Fatalf("interspersed %d layers, want %d", len(layers), len(real.Layers)+wantDummies)
	}
	// Every 5th entry is a decoy.
	if layers[4].Name[:5] != "dummy" {
		t.Fatalf("expected dummy at index 4, got %q", layers[4].Name)
	}
	if _, err := Intersperse(real, dummy, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Intersperse(real, workload.Network{}, 2); err == nil {
		t.Fatal("empty dummy accepted")
	}
}
