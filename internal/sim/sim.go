// Package sim provides the shared simulation primitives used by every
// component of the Seculator model: cycle arithmetic, memory-access
// descriptors, and named statistic counters.
//
// The simulator is event-level rather than cycle-by-cycle: components
// account for elapsed cycles analytically (systolic-array fill/drain,
// DRAM service time, crypto pipeline latency) and the engine combines
// them per tile pass. Cycles is therefore just a saturating uint64 with
// helpers, not a global clock.
package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Cycles counts elapsed NPU clock cycles.
type Cycles uint64

// Add returns c+d, saturating at the maximum value instead of wrapping.
func (c Cycles) Add(d Cycles) Cycles {
	if c > math.MaxUint64-d {
		return math.MaxUint64
	}
	return c + d
}

// Max returns the larger of c and d.
func (c Cycles) Max(d Cycles) Cycles {
	if c > d {
		return c
	}
	return d
}

// Seconds converts a cycle count to wall time at the given clock frequency.
func (c Cycles) Seconds(freqHz float64) float64 {
	if freqHz <= 0 {
		return 0
	}
	return float64(c) / freqHz
}

// AccessKind distinguishes reads from writes at the memory interface.
type AccessKind uint8

const (
	// Read is a memory read (DRAM -> NPU).
	Read AccessKind = iota
	// Write is a memory write (NPU -> DRAM).
	Write
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// Traffic classifies DRAM traffic by purpose so that experiments can report
// the overhead each protection scheme adds on top of raw tensor data.
type Traffic uint8

const (
	// DataTraffic is tensor payload (ifmaps, ofmaps, weights).
	DataTraffic Traffic = iota
	// MACTraffic is per-block MAC lines moved by Secure/TNPU/GuardNN.
	MACTraffic
	// CounterTraffic is SGX-style counter blocks (Secure design only).
	CounterTraffic
	// MerkleTraffic is integrity-tree node fetches (Secure design only).
	MerkleTraffic
	// TableTraffic is tensor-table / VN-scheduler metadata (TNPU, GuardNN).
	TableTraffic
	// PaddingTraffic is junk data moved by Seculator+ layer widening.
	PaddingTraffic

	numTraffic
)

// String implements fmt.Stringer.
func (t Traffic) String() string {
	switch t {
	case DataTraffic:
		return "data"
	case MACTraffic:
		return "mac"
	case CounterTraffic:
		return "counter"
	case MerkleTraffic:
		return "merkle"
	case TableTraffic:
		return "table"
	case PaddingTraffic:
		return "padding"
	default:
		return fmt.Sprintf("Traffic(%d)", uint8(t))
	}
}

// TrafficKinds lists every traffic class in display order.
func TrafficKinds() []Traffic {
	ts := make([]Traffic, numTraffic)
	for i := range ts {
		ts[i] = Traffic(i)
	}
	return ts
}

// Stats is a set of named uint64 counters. The zero value is ready to use.
// Stats is not safe for concurrent use; each simulation owns its own set.
type Stats struct {
	counters map[string]uint64
}

// Inc adds delta to the named counter.
func (s *Stats) Inc(name string, delta uint64) {
	if s.counters == nil {
		s.counters = make(map[string]uint64)
	}
	s.counters[name] += delta
}

// Get returns the value of the named counter (zero if never incremented).
func (s *Stats) Get(name string) uint64 {
	return s.counters[name]
}

// Names returns all counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every counter of other into s.
func (s *Stats) Merge(other *Stats) {
	for n, v := range other.counters {
		s.Inc(n, v)
	}
}

// Reset clears all counters.
func (s *Stats) Reset() {
	s.counters = nil
}

// String renders the counters one per line, sorted by name.
func (s *Stats) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%s=%d\n", n, s.counters[n])
	}
	return b.String()
}

// Ratio returns num/den as a float, or 0 when den is 0. It is a convenience
// for miss-rate style derived statistics.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
