package sim

import (
	"math"
	"testing"
)

func TestCyclesAddSaturates(t *testing.T) {
	c := Cycles(math.MaxUint64 - 5)
	got := c.Add(10)
	if got != math.MaxUint64 {
		t.Fatalf("Add should saturate: got %d", got)
	}
	if got := Cycles(3).Add(4); got != 7 {
		t.Fatalf("Add(3,4) = %d, want 7", got)
	}
}

func TestCyclesMax(t *testing.T) {
	if got := Cycles(3).Max(9); got != 9 {
		t.Fatalf("Max(3,9) = %d", got)
	}
	if got := Cycles(11).Max(9); got != 11 {
		t.Fatalf("Max(11,9) = %d", got)
	}
}

func TestCyclesSeconds(t *testing.T) {
	c := Cycles(2_750_000_000) // one second at 2.75 GHz
	if got := c.Seconds(2.75e9); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Seconds = %g, want 1.0", got)
	}
	if got := c.Seconds(0); got != 0 {
		t.Fatalf("Seconds with zero freq = %g, want 0", got)
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("unexpected AccessKind strings: %s %s", Read, Write)
	}
	if AccessKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestTrafficKinds(t *testing.T) {
	kinds := TrafficKinds()
	if len(kinds) != int(numTraffic) {
		t.Fatalf("TrafficKinds returned %d kinds, want %d", len(kinds), numTraffic)
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate traffic name %q", s)
		}
		seen[s] = true
	}
	for _, want := range []string{"data", "mac", "counter", "merkle", "table", "padding"} {
		if !seen[want] {
			t.Fatalf("missing traffic kind %q", want)
		}
	}
}

func TestStatsBasics(t *testing.T) {
	var s Stats
	if s.Get("x") != 0 {
		t.Fatal("zero-value Stats should read 0")
	}
	s.Inc("x", 2)
	s.Inc("x", 3)
	s.Inc("a", 1)
	if s.Get("x") != 5 || s.Get("a") != 1 {
		t.Fatalf("unexpected counters: x=%d a=%d", s.Get("x"), s.Get("a"))
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "x" {
		t.Fatalf("Names not sorted: %v", names)
	}
}

func TestStatsMergeAndReset(t *testing.T) {
	var a, b Stats
	a.Inc("hits", 10)
	b.Inc("hits", 5)
	b.Inc("misses", 2)
	a.Merge(&b)
	if a.Get("hits") != 15 || a.Get("misses") != 2 {
		t.Fatalf("Merge wrong: %v", a.String())
	}
	a.Reset()
	if a.Get("hits") != 0 || len(a.Names()) != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	s.Inc("b", 1)
	s.Inc("a", 2)
	want := "a=2\nb=1\n"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 4); got != 0.25 {
		t.Fatalf("Ratio(1,4) = %g", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Fatalf("Ratio(1,0) = %g, want 0", got)
	}
}
