package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

var errCheck = errors.New("mac check failed")

func TestErrorWrapping(t *testing.T) {
	ie := &IntegrityError{Layer: 3, Tensor: ClassActivation, Err: errCheck}
	if !errors.Is(ie, errCheck) {
		t.Fatal("IntegrityError does not unwrap to the check error")
	}
	wrapped := fmt.Errorf("secure: layer 3: %w", ie)
	var got *IntegrityError
	if !errors.As(wrapped, &got) || got.Layer != 3 {
		t.Fatal("errors.As failed through a wrapping layer")
	}

	fe := &FreshnessError{Layer: 2, Tensor: ClassActivation, Retries: 3, Err: ie}
	if !errors.Is(fe, errCheck) {
		t.Fatal("FreshnessError does not unwrap transitively")
	}
	var gotFE *FreshnessError
	if !errors.As(fmt.Errorf("outer: %w", fe), &gotFE) || gotFE.Retries != 3 {
		t.Fatal("errors.As failed for FreshnessError")
	}

	ce := &ChannelError{Layer: 0, Err: errCheck}
	cfg := &ConfigError{Err: errCheck}
	for _, e := range []error{ce, cfg} {
		if !errors.Is(e, errCheck) {
			t.Fatalf("%T does not unwrap", e)
		}
	}
}

func TestRetryable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&IntegrityError{Tensor: ClassActivation, Err: errCheck}, true},
		{fmt.Errorf("wrap: %w", &IntegrityError{Err: errCheck}), true},
		{&IntegrityError{Persistent: true, Err: errCheck}, false},
		{&FreshnessError{Err: errCheck}, false},
		{&ChannelError{Err: errCheck}, false},
		{&ConfigError{Err: errCheck}, false},
		{&InternalError{Value: "boom"}, false},
		{errCheck, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// A FreshnessError wrapping a (non-persistent) IntegrityError must stay
	// non-retryable: the outermost classification wins.
	fe := &FreshnessError{Err: &IntegrityError{Err: errCheck}}
	if Retryable(fe) {
		t.Fatal("FreshnessError wrapping IntegrityError must not be retryable")
	}
}

func TestPolicyBackoff(t *testing.T) {
	p := Policy{MaxRetries: 5, Base: time.Millisecond, Max: 4 * time.Millisecond}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	for i, w := range want {
		if got := p.BackoffFor(i + 1); got != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
	if Disabled().BackoffFor(1) != 0 {
		t.Fatal("disabled policy must not back off")
	}
}

func TestPolicyWaitCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxRetries: 1, Base: time.Hour}
	if err := p.Wait(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled context = %v, want context.Canceled", err)
	}
}

func TestRecoverBackstop(t *testing.T) {
	run := func() (err error) {
		defer Recover(&err)
		panic("unreachable invariant")
	}
	err := run()
	var ie *InternalError
	if !errors.As(err, &ie) || ie.Value != "unreachable invariant" {
		t.Fatalf("panic not captured: %v", err)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("captured panic carries no stack")
	}
}

func TestStatsAdd(t *testing.T) {
	var s Stats
	s.Add(Stats{Retries: 2, Recovered: 1})
	s.Add(Stats{Retries: 1, Persistent: 1, Breached: true})
	if s.Retries != 3 || s.Recovered != 1 || s.Persistent != 1 || !s.Breached {
		t.Fatalf("stats = %+v", s)
	}
}
