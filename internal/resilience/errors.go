// Package resilience defines the typed error taxonomy and the layer-level
// detect-and-recover machinery of the secure execution path.
//
// Seculator verifies off-chip data at layer granularity (the
// MAC_W = MAC_FR ⊕ MAC_R check), which makes the layer the natural unit of
// recovery: a transient DRAM bit flip caught by the check can be repaired by
// re-fetching the layer's working set and re-executing the layer, while a
// violation that persists across bounded retries indicates active tampering
// (replay, splicing) and must abort the session with the breach latched.
// This package provides the vocabulary for that distinction:
//
//   - IntegrityError  — a MAC/XOR-MAC verification failure. Retryable while
//     Persistent is false; a Persistent integrity failure on host-written
//     golden data (weights, layer-0 inputs) stays an IntegrityError.
//   - FreshnessError  — a persistent violation on the versioned activation
//     path, consistent with stale-ciphertext replay or splicing. Never
//     retryable; the session must abort and the breach latch.
//   - ChannelError    — a host↔NPU command-channel authentication failure
//     (bad tag, replayed sequence number). Never retryable: the endpoint
//     latches its breach flag and requires a reboot.
//   - ConfigError     — an invalid configuration rejected at a public entry
//     point, before any simulation state is built. Never retryable.
//   - InternalError   — a panic captured at a public API boundary by
//     Recover: a programmer error surfaced as an error instead of taking
//     down the host process. Never retryable.
//
// Error classification rule: errors.Is/As work through every type here, so
// callers match either the concrete class (resilience.IntegrityError) or the
// wrapped sentinel (mac.ErrIntegrity, host channel errors).
package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// TensorClass names the data class an integrity violation hit.
type TensorClass string

// The tensor classes carried by integrity and freshness errors.
const (
	ClassInput      TensorClass = "input"      // layer-0 inputs (host golden)
	ClassWeight     TensorClass = "weight"     // per-layer weights (host golden)
	ClassActivation TensorClass = "activation" // inter-layer activations (VN path)
	ClassPartial    TensorClass = "partial"    // in-layer partial sums
	ClassOutput     TensorClass = "output"     // final outputs at host readout
)

// IntegrityError reports a failed MAC verification: which layer, which data
// class, and (when known) the block address. Persistent marks a failure that
// survived the bounded retry policy.
type IntegrityError struct {
	Layer      int         // layer index the check covered (-1 if unknown)
	Tensor     TensorClass // data class of the failed check
	Addr       uint64      // offending block address, 0 if not localized
	Persistent bool        // survived all retries
	Err        error       // underlying check failure (wraps mac.ErrIntegrity)
}

// Error implements error.
func (e *IntegrityError) Error() string {
	state := "transient?"
	if e.Persistent {
		state = "persistent"
	}
	return fmt.Sprintf("integrity violation (%s) on %s data, layer %d: %v",
		state, e.Tensor, e.Layer, e.Err)
}

// Unwrap exposes the underlying verification error.
func (e *IntegrityError) Unwrap() error { return e.Err }

// FreshnessError reports a persistent violation on the versioned activation
// path — the signature of a replay or splice of stale ciphertext, which
// re-fetching cannot repair. It wraps the final IntegrityError.
type FreshnessError struct {
	Layer   int         // layer whose verification kept failing
	Tensor  TensorClass // data class (activation or output)
	Retries int         // recovery attempts that all failed
	Err     error       // the last integrity failure
}

// Error implements error.
func (e *FreshnessError) Error() string {
	return fmt.Sprintf("freshness violation on %s data, layer %d (persisted across %d retries): %v",
		e.Tensor, e.Layer, e.Retries, e.Err)
}

// Unwrap exposes the final integrity failure.
func (e *FreshnessError) Unwrap() error { return e.Err }

// ChannelError reports a host↔NPU command-channel authentication failure.
type ChannelError struct {
	Layer int   // index of the refused command (-1 if not per-layer)
	Err   error // underlying authentication failure
}

// Error implements error.
func (e *ChannelError) Error() string {
	return fmt.Sprintf("command channel violation at layer %d: %v", e.Layer, e.Err)
}

// Unwrap exposes the underlying channel failure.
func (e *ChannelError) Unwrap() error { return e.Err }

// ConfigError reports an invalid configuration rejected at an API boundary.
type ConfigError struct {
	Err error
}

// Error implements error.
func (e *ConfigError) Error() string { return fmt.Sprintf("invalid configuration: %v", e.Err) }

// Unwrap exposes the underlying validation failure.
func (e *ConfigError) Unwrap() error { return e.Err }

// QuarantineError reports that a tenant's work was refused by the serving
// layer's breach quarantine: the tenant accumulated security breaches and
// its per-tenant circuit breaker is throttled or open. It is the
// service-level escalation of the per-session breach latch — the session
// died with its breach, the tenant is contained here. Never retryable
// before RetryAfter elapses.
type QuarantineError struct {
	Tenant     string        // tenant the breaker contains
	State      string        // breaker state ("throttled", "open", "half-open")
	Breaches   int           // breach events inside the observation window
	RetryAfter time.Duration // when the breaker will consider work again
}

// Error implements error.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("tenant %s quarantined (breaker %s after %d breaches), retry after %v",
		e.Tenant, e.State, e.Breaches, e.RetryAfter)
}

// SnapshotIntegrityError reports that an imported session snapshot failed
// its integrity check: the envelope MAC did not verify, the version is
// unknown, or the payload does not decode. A snapshot is host-golden data
// crossing a trust boundary; a failed check means tampering or corruption
// and the import must not create any session state. Never retryable.
type SnapshotIntegrityError struct {
	Reason string // what failed ("mac", "version", "payload")
	Err    error  // underlying failure, when one exists
}

// Error implements error.
func (e *SnapshotIntegrityError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("session snapshot integrity violation (%s): %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("session snapshot integrity violation (%s)", e.Reason)
}

// Unwrap exposes the underlying failure.
func (e *SnapshotIntegrityError) Unwrap() error { return e.Err }

// InternalError is a panic captured at a public API boundary.
type InternalError struct {
	Value any    // the recovered panic value
	Stack []byte // stack trace at the panic site
}

// Error implements error.
func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error (recovered panic): %v", e.Value)
}

// Retryable reports whether layer-level re-execution can plausibly repair
// the failure: only non-persistent integrity violations qualify. Freshness,
// channel, config and internal errors never do.
func Retryable(err error) bool {
	// Terminal classes first: a FreshnessError wraps the final
	// IntegrityError, so the outermost classification must win.
	var fe *FreshnessError
	var ce *ChannelError
	var cfg *ConfigError
	var internal *InternalError
	var quar *QuarantineError
	var snap *SnapshotIntegrityError
	if errors.As(err, &fe) || errors.As(err, &ce) || errors.As(err, &cfg) ||
		errors.As(err, &internal) || errors.As(err, &quar) || errors.As(err, &snap) {
		return false
	}
	var ie *IntegrityError
	if errors.As(err, &ie) {
		return !ie.Persistent
	}
	return false
}

// Recover is the panic backstop for public API boundaries: deferred as
//
//	defer resilience.Recover(&err)
//
// it converts a panic on the data path into an *InternalError assigned to
// *errp, so no library panic ever escapes a public entry point.
func Recover(errp *error) {
	if r := recover(); r != nil {
		*errp = &InternalError{Value: r, Stack: debug.Stack()}
	}
}
