package resilience

import (
	"context"
	"time"
)

// Policy bounds the layer-level recovery loop: how many re-executions a
// failed layer gets and how the backoff between them grows. Backoff is
// exponential (Base, 2·Base, 4·Base, …) capped at Max; the wait is
// context-aware so cancellation and deadlines cut recovery short.
type Policy struct {
	MaxRetries int           // re-executions after the first failure (0 disables recovery)
	Base       time.Duration // first backoff; 0 means no waiting between retries
	Max        time.Duration // backoff cap; 0 means uncapped
}

// DefaultPolicy returns the recovery policy of the simulated system: three
// layer re-executions with a short exponential backoff. The backoff models
// the DRAM scrub window a real controller would allow a transient upset to
// clear in; it is deliberately tiny so simulations stay fast.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 3, Base: 100 * time.Microsecond, Max: 5 * time.Millisecond}
}

// Disabled returns the fail-fast policy: every detection is terminal.
func Disabled() Policy { return Policy{} }

// BackoffFor returns the wait before retry attempt n (1-based).
func (p Policy) BackoffFor(attempt int) time.Duration {
	if p.Base <= 0 || attempt <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			return p.Max
		}
	}
	if p.Max > 0 && d > p.Max {
		return p.Max
	}
	return d
}

// Wait sleeps the backoff for retry attempt n (1-based), returning early
// with the context's error if it is cancelled first.
func (p Policy) Wait(ctx context.Context, attempt int) error {
	d := p.BackoffFor(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stats counts recovery activity across one run or session.
type Stats struct {
	Retries    int  // layer re-executions performed
	Recovered  int  // layers that verified after at least one retry
	Persistent int  // layers whose violation survived every retry
	Breached   bool // the run aborted with the security breach latched
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Retries += o.Retries
	s.Recovered += o.Recovered
	s.Persistent += o.Persistent
	s.Breached = s.Breached || o.Breached
}
