package tensor

import (
	"testing"
	"testing/quick"
)

func TestFmapShape(t *testing.T) {
	s := FmapShape{Chans: 3, H: 32, W: 32}
	if s.Pixels() != 3*32*32 {
		t.Fatalf("Pixels = %d", s.Pixels())
	}
	if s.Bytes() != 3*32*32*4 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
	// 32*32*4 = 4096 bytes per fmap = 64 blocks; 3 fmaps = 192 blocks.
	if s.Blocks() != 192 {
		t.Fatalf("Blocks = %d, want 192", s.Blocks())
	}
	if !s.Valid() {
		t.Fatal("shape should be valid")
	}
	if (FmapShape{Chans: 0, H: 1, W: 1}).Valid() {
		t.Fatal("zero-channel shape should be invalid")
	}
	if s.String() != "32x32x3" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestBlocksPerFmapRoundsUp(t *testing.T) {
	// 5x5 pixels * 4 B = 100 B -> 2 blocks.
	if got := BlocksPerFmap(5, 5); got != 2 {
		t.Fatalf("BlocksPerFmap(5,5) = %d, want 2", got)
	}
	// Exactly one block: 4x4 pixels * 4 B = 64 B.
	if got := BlocksPerFmap(4, 4); got != 1 {
		t.Fatalf("BlocksPerFmap(4,4) = %d, want 1", got)
	}
}

func TestFilterShape(t *testing.T) {
	f := FilterShape{K: 64, C: 3, R: 3, S: 3}
	if f.Weights() != 64*27 {
		t.Fatalf("Weights = %d", f.Weights())
	}
	if f.Bytes() != 64*27*4 {
		t.Fatalf("Bytes = %d", f.Bytes())
	}
	// Each filter: 27*4 = 108 B -> 2 blocks; 64 filters -> 128 blocks.
	if f.Blocks() != 128 {
		t.Fatalf("Blocks = %d, want 128", f.Blocks())
	}
	if !f.Valid() || (FilterShape{}).Valid() {
		t.Fatal("Valid misbehaves")
	}
}

func TestMakeGrid(t *testing.T) {
	g := MakeGrid(32, 32, 16, 64, Tiling{HT: 8, WT: 8, CT: 4, KT: 16})
	if g.AlphaH != 4 || g.AlphaW != 4 || g.AlphaC != 4 || g.AlphaK != 4 {
		t.Fatalf("grid = %+v", g)
	}
	if g.AlphaHW != 16 {
		t.Fatalf("AlphaHW = %d", g.AlphaHW)
	}
	if g.OfmapTiles() != 64 || g.IfmapTiles() != 64 {
		t.Fatalf("tile counts: of=%d if=%d", g.OfmapTiles(), g.IfmapTiles())
	}
}

func TestMakeGridRoundsUp(t *testing.T) {
	g := MakeGrid(7, 7, 3, 5, Tiling{HT: 4, WT: 4, CT: 2, KT: 2})
	if g.AlphaH != 2 || g.AlphaW != 2 || g.AlphaC != 2 || g.AlphaK != 3 {
		t.Fatalf("grid = %+v", g)
	}
}

func TestTileID(t *testing.T) {
	id := TileID{Kind: Ofmap, Fmap: 2, Spatial: 3}
	if id.Linear(10) != 23 {
		t.Fatalf("Linear = %d, want 23", id.Linear(10))
	}
	if id.String() != "ofmap[f=2 s=3]" {
		t.Fatalf("String = %q", id.String())
	}
}

func TestTileBlocksAndBytes(t *testing.T) {
	// 8x8 tile, 2 channels: 256 B/channel = 4 blocks each -> 8 blocks total.
	if got := TileBlocks(8, 8, 2); got != 8 {
		t.Fatalf("TileBlocks = %d, want 8", got)
	}
	if got := TileBytes(8, 8, 2); got != 8*8*2*4 {
		t.Fatalf("TileBytes = %d", got)
	}
	// Non-multiple tile rounds up per channel: 3x3 = 36 B -> 1 block.
	if got := TileBlocks(3, 3, 5); got != 5 {
		t.Fatalf("TileBlocks(3,3,5) = %d, want 5", got)
	}
}

func TestKindString(t *testing.T) {
	if Ifmap.String() != "ifmap" || Ofmap.String() != "ofmap" || Weight.String() != "weight" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown Kind should render")
	}
}

func TestCeilDivPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv(1,0) should panic")
		}
	}()
	CeilDiv(1, 0)
}

// Property: a grid always covers the full tensor — tiles * tile size >= extent.
func TestGridCoversProperty(t *testing.T) {
	f := func(h, w, c, k, ht, wt, ct, kt uint8) bool {
		H, W, C, K := int(h%64)+1, int(w%64)+1, int(c%32)+1, int(k%32)+1
		tl := Tiling{HT: int(ht%16) + 1, WT: int(wt%16) + 1, CT: int(ct%8) + 1, KT: int(kt%8) + 1}
		g := MakeGrid(H, W, C, K, tl)
		return g.AlphaH*tl.HT >= H && g.AlphaW*tl.WT >= W &&
			g.AlphaC*tl.CT >= C && g.AlphaK*tl.KT >= K &&
			(g.AlphaH-1)*tl.HT < H && (g.AlphaW-1)*tl.WT < W
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tile blocks * bytes-per-block always covers the tile payload.
func TestTileBlocksCoverProperty(t *testing.T) {
	f := func(ht, wt, ch uint8) bool {
		h, w, c := int(ht%32)+1, int(wt%32)+1, int(ch%16)+1
		return TileBlocks(h, w, c)*BlockBytes >= TileBytes(h, w, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
