// Package tensor models the geometry of DNN data as seen by the NPU memory
// system: feature maps (fmaps), filter tensors, the tiles that dataflows
// move between DRAM and the global buffer, and the 64-byte blocks that the
// security engines encrypt and MAC.
//
// Terminology follows the paper (Table 1): H/W are fmap rows/columns, C is
// the number of input channels (ifmaps), K the number of output channels
// (ofmaps), R/S the filter rows/columns. A Tiling groups pixels into tiles
// of HT x WT pixels across CT (or KT) channels.
package tensor

import "fmt"

const (
	// BlockBytes is the protection granularity of all prior schemes:
	// one 64-byte memory block.
	BlockBytes = 64
	// PixelBytes is the size of one fmap element (4-byte fixed point / FP32).
	PixelBytes = 4
	// PixelsPerBlock is the number of fmap elements per 64-byte block.
	PixelsPerBlock = BlockBytes / PixelBytes
	// MACBytes is the size of one per-block MAC in prior work (8 bytes).
	MACBytes = 8
	// MACsPerBlock is how many per-block MACs fit in one 64-byte MAC line.
	MACsPerBlock = BlockBytes / MACBytes
)

// Kind identifies which tensor a tile or block belongs to.
type Kind uint8

const (
	// Ifmap is input feature-map data (read-only within a layer).
	Ifmap Kind = iota
	// Ofmap is output feature-map data (written; re-read when partial).
	Ofmap
	// Weight is filter data (read-only).
	Weight
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Ifmap:
		return "ifmap"
	case Ofmap:
		return "ofmap"
	case Weight:
		return "weight"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// FmapShape is the shape of a set of feature maps: Chans fmaps of H x W
// pixels each.
type FmapShape struct {
	Chans int // number of channels (C for ifmaps, K for ofmaps)
	H     int // rows per fmap
	W     int // columns per fmap
}

// Pixels returns the total element count.
func (s FmapShape) Pixels() int { return s.Chans * s.H * s.W }

// Bytes returns the total byte size.
func (s FmapShape) Bytes() int { return s.Pixels() * PixelBytes }

// Blocks returns the number of 64-byte blocks needed to hold the fmaps,
// assuming each channel is padded to a whole number of blocks (the layout
// used by the accelerator so that a block never straddles two fmaps).
func (s FmapShape) Blocks() int { return s.Chans * BlocksPerFmap(s.H, s.W) }

// Valid reports whether all dimensions are positive.
func (s FmapShape) Valid() bool { return s.Chans > 0 && s.H > 0 && s.W > 0 }

// String implements fmt.Stringer.
func (s FmapShape) String() string {
	return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.Chans)
}

// BlocksPerFmap returns the number of 64-byte blocks per H x W fmap,
// rounding up so fmaps start block-aligned.
func BlocksPerFmap(h, w int) int {
	return ceilDiv(h*w*PixelBytes, BlockBytes)
}

// FilterShape is the shape of a 4-D weight tensor: K filters of C x R x S.
type FilterShape struct {
	K int // number of filters (output channels)
	C int // input channels per filter
	R int // filter rows
	S int // filter columns
}

// Weights returns the number of scalar weights.
func (f FilterShape) Weights() int { return f.K * f.C * f.R * f.S }

// Bytes returns the byte size of the weight tensor.
func (f FilterShape) Bytes() int { return f.Weights() * PixelBytes }

// Blocks returns the number of 64-byte blocks holding the weights, with
// each filter (C x R x S) padded to a block boundary.
func (f FilterShape) Blocks() int {
	return f.K * ceilDiv(f.C*f.R*f.S*PixelBytes, BlockBytes)
}

// Valid reports whether all dimensions are positive.
func (f FilterShape) Valid() bool { return f.K > 0 && f.C > 0 && f.R > 0 && f.S > 0 }

// Tiling describes how a dataflow partitions fmaps into tiles: tiles of
// HT x WT pixels, grouping CT input channels and KT output channels.
// A value of a dimension equal to the full extent means "untiled".
type Tiling struct {
	HT int // tile rows
	WT int // tile columns
	CT int // input-channel group size
	KT int // output-channel group size
}

// Valid reports whether all tile dimensions are positive.
func (t Tiling) Valid() bool { return t.HT > 0 && t.WT > 0 && t.CT > 0 && t.KT > 0 }

// String implements fmt.Stringer.
func (t Tiling) String() string {
	return fmt.Sprintf("HT=%d WT=%d CT=%d KT=%d", t.HT, t.WT, t.CT, t.KT)
}

// Grid describes the tile decomposition of a conv layer under a tiling:
// the alpha factors of the paper's pattern tables.
type Grid struct {
	AlphaH  int // H / HT: row-tile count
	AlphaW  int // W / WT: column-tile count
	AlphaC  int // C / CT: input channel-group count
	AlphaK  int // K / KT: output channel-group count
	AlphaHW int // AlphaH * AlphaW: spatial tiles per fmap
}

// MakeGrid computes the tile grid for fmaps of the given spatial size and
// channel counts under tiling t. Dimensions that do not divide evenly are
// rounded up (edge tiles are padded), matching accelerator behaviour.
func MakeGrid(h, w, c, k int, t Tiling) Grid {
	g := Grid{
		AlphaH: ceilDiv(h, t.HT),
		AlphaW: ceilDiv(w, t.WT),
		AlphaC: ceilDiv(c, t.CT),
		AlphaK: ceilDiv(k, t.KT),
	}
	g.AlphaHW = g.AlphaH * g.AlphaW
	return g
}

// OfmapTiles returns the number of distinct ofmap tiles in the grid.
func (g Grid) OfmapTiles() int { return g.AlphaK * g.AlphaHW }

// IfmapTiles returns the number of distinct ifmap tiles in the grid.
func (g Grid) IfmapTiles() int { return g.AlphaC * g.AlphaHW }

// TileID names one tile of one tensor. Fmap is the channel-group index
// (k_T for ofmaps, c_T for ifmaps, filter-group for weights); Spatial is
// the row-major spatial tile index (h_T * AlphaW + w_T); Kind says which
// tensor the tile belongs to.
type TileID struct {
	Kind    Kind
	Fmap    int
	Spatial int
}

// String implements fmt.Stringer.
func (id TileID) String() string {
	return fmt.Sprintf("%s[f=%d s=%d]", id.Kind, id.Fmap, id.Spatial)
}

// Linear returns a dense index for the tile given the spatial tile count of
// its grid, suitable for array-backed tile state.
func (id TileID) Linear(spatialTiles int) int {
	return id.Fmap*spatialTiles + id.Spatial
}

// TileBlocks returns the number of 64-byte blocks in one fmap tile of
// ht x wt pixels spanning chans channels, with each channel's tile slice
// padded to a block boundary.
func TileBlocks(ht, wt, chans int) int {
	return chans * ceilDiv(ht*wt*PixelBytes, BlockBytes)
}

// TileBytes returns the unpadded payload bytes of an fmap tile.
func TileBytes(ht, wt, chans int) int {
	return ht * wt * chans * PixelBytes
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("tensor: ceilDiv by non-positive %d", b))
	}
	return (a + b - 1) / b
}

// CeilDiv exposes ceiling division for other geometry computations.
func CeilDiv(a, b int) int { return ceilDiv(a, b) }
