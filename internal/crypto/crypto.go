// Package crypto implements the memory-encryption engines of the simulated
// designs (Section 6.3), functionally and with a pipeline latency model.
//
// Seculator, GuardNN and the SGX-like Secure design use AES counter-mode:
// a 64-byte block is XORed with a one-time pad obtained by encrypting a
// per-block counter. Following the paper, the 128-bit key concatenates the
// accelerator's embedded secret ID with a boot-time random number, the
// major counter concatenates the fmap ID and layer ID, and the minor
// counter concatenates the block's version number and its index within the
// fmap — so the same plaintext at the same address encrypts differently on
// every version.
//
// TNPU uses AES-XTS (Table 5), which derives its tweak from the block
// address alone; we implement the standard XEX construction with GF(2^128)
// tweak doubling over the four 16-byte lanes of a 64-byte block.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"seculator/internal/sim"
	"seculator/internal/tensor"
)

// Counter is the per-block counter of the paper's CTR construction.
type Counter struct {
	Fmap  uint32 // fmap ID            (major counter, high half)
	Layer uint32 // layer ID           (major counter, low half)
	VN    uint32 // version number     (minor counter, high half)
	Block uint32 // block index in the fmap (minor counter, low half)
}

// String implements fmt.Stringer.
func (c Counter) String() string {
	return fmt.Sprintf("ctr{f=%d l=%d vn=%d b=%d}", c.Fmap, c.Layer, c.VN, c.Block)
}

// CTREngine is the counter-mode memory encryption engine. Four parallel
// AES-128 lanes produce the 64-byte one-time pad for a block.
//
// An engine is NOT safe for concurrent use: the per-block pad and counter
// buffers are reusable scratch, which keeps the encrypt/decrypt hot path
// allocation-free. The experiment engine upholds this by construction —
// every simulation, functional memory and secure executor owns a private
// engine (the engine-per-worker contract; see DESIGN.md §8).
type CTREngine struct {
	block cipher.Block
	key   [16]byte

	// Scratch reused across EncryptBlock/DecryptBlock calls. Stack arrays
	// would escape through the cipher.Block interface call and allocate
	// per block; engine-owned buffers do not.
	padBuf [tensor.BlockBytes]byte
	ctrBuf [16]byte
}

// NewCTR builds the engine with the hardware-specific key: the
// accelerator's embedded secret ID concatenated with a random number drawn
// before execution, so the key changes every run.
func NewCTR(secretID, bootRandom uint64) *CTREngine {
	var key [16]byte
	binary.BigEndian.PutUint64(key[0:8], secretID)
	binary.BigEndian.PutUint64(key[8:16], bootRandom)
	b, err := aes.NewCipher(key[:])
	if err != nil {
		// aes.NewCipher only fails on bad key sizes; 16 is always valid.
		panic(fmt.Sprintf("crypto: %v", err))
	}
	return &CTREngine{block: b, key: key}
}

// Clone returns an engine that shares the immutable AES key schedule but
// owns private scratch buffers. cipher.Block is safe for concurrent use, so
// clones of one engine may run on different goroutines simultaneously and
// produce identical pads — the per-worker engine of the sharded secure
// execution path (DESIGN.md §8, §10).
func (e *CTREngine) Clone() *CTREngine {
	return &CTREngine{block: e.block, key: e.key}
}

// pad computes the 64-byte one-time pad for the counter into dst: four AES
// blocks, one per 16-byte lane, distinguished by a 2-bit lane index.
func (e *CTREngine) pad(dst []byte, c Counter) {
	in := &e.ctrBuf
	binary.BigEndian.PutUint32(in[0:4], c.Fmap)
	binary.BigEndian.PutUint32(in[4:8], c.Layer)
	binary.BigEndian.PutUint32(in[8:12], c.VN)
	for lane := 0; lane < 4; lane++ {
		binary.BigEndian.PutUint32(in[12:16], c.Block<<2|uint32(lane))
		e.block.Encrypt(dst[lane*16:(lane+1)*16], in[:])
	}
}

// Keystream writes the 64-byte one-time pad for counter c into dst. Pads
// are data-independent — counter mode never sees the plaintext — so they
// can be generated any time the counter is known; the secure executor's
// keystream-precompute stage exploits exactly that, because the VN FSM
// makes every counter of a layer deterministic in advance. Combine a pad
// with data via XORPad.
func (e *CTREngine) Keystream(dst []byte, c Counter) {
	if len(dst) != tensor.BlockBytes {
		panic(fmt.Sprintf("crypto: keystream dst must be %d bytes, got %d",
			tensor.BlockBytes, len(dst)))
	}
	e.pad(dst, c)
}

// XORPad combines a 64-byte block with a precomputed pad: dst = src ⊕ pad.
// It is the consume half of Keystream; dst may alias src.
func XORPad(dst, src, pad []byte) {
	if len(dst) != tensor.BlockBytes || len(src) != tensor.BlockBytes || len(pad) != tensor.BlockBytes {
		panic(fmt.Sprintf("crypto: XORPad needs %d-byte slices, got dst=%d src=%d pad=%d",
			tensor.BlockBytes, len(dst), len(src), len(pad)))
	}
	for i := range dst {
		dst[i] = src[i] ^ pad[i]
	}
}

// EncryptBlock encrypts one 64-byte block: dst = src XOR pad(counter).
// dst and src must both be 64 bytes; they may alias.
func (e *CTREngine) EncryptBlock(dst, src []byte, c Counter) {
	if len(dst) != tensor.BlockBytes || len(src) != tensor.BlockBytes {
		panic(fmt.Sprintf("crypto: CTR block must be %d bytes, got dst=%d src=%d",
			tensor.BlockBytes, len(dst), len(src)))
	}
	e.pad(e.padBuf[:], c)
	for i := range e.padBuf {
		dst[i] = src[i] ^ e.padBuf[i]
	}
}

// DecryptBlock decrypts one block; CTR decryption is encryption.
func (e *CTREngine) DecryptBlock(dst, src []byte, c Counter) {
	e.EncryptBlock(dst, src, c)
}

// EncryptBlocks encrypts n consecutive blocks of one fmap row — counters
// c, c+1, … in the Block field — from src into dst, both caller-owned and
// at least n*64 bytes. The batch entry point keeps row-granular callers out
// of the per-block call overhead without any hidden staging.
func (e *CTREngine) EncryptBlocks(dst, src []byte, c Counter, n int) {
	if len(dst) < n*tensor.BlockBytes || len(src) < n*tensor.BlockBytes {
		panic(fmt.Sprintf("crypto: CTR batch of %d blocks needs %d bytes, got dst=%d src=%d",
			n, n*tensor.BlockBytes, len(dst), len(src)))
	}
	for b := 0; b < n; b++ {
		o := b * tensor.BlockBytes
		e.EncryptBlock(dst[o:o+tensor.BlockBytes], src[o:o+tensor.BlockBytes], c)
		c.Block++
	}
}

// DecryptBlocks reverses EncryptBlocks; CTR decryption is encryption.
func (e *CTREngine) DecryptBlocks(dst, src []byte, c Counter, n int) {
	e.EncryptBlocks(dst, src, c, n)
}

// XTSEngine is the AES-XTS-style engine TNPU uses: the tweak is the block's
// address, independent of any version number, so freshness must come from
// elsewhere (TNPU's tensor table).
//
// Like CTREngine, an XTSEngine is NOT safe for concurrent use: the tweak
// and lane buffers are engine-owned scratch so the per-block path never
// allocates. Give each goroutine its own engine.
type XTSEngine struct {
	data  cipher.Block // K1: data encryption
	tweak cipher.Block // K2: tweak encryption

	seedBuf, twBuf, laneBuf [16]byte // per-block scratch (see CTREngine)
}

// NewXTS builds the two-key XTS engine.
func NewXTS(key1, key2 uint64) *XTSEngine {
	var k1, k2 [16]byte
	binary.BigEndian.PutUint64(k1[0:8], key1)
	binary.BigEndian.PutUint64(k1[8:16], ^key1)
	binary.BigEndian.PutUint64(k2[0:8], key2)
	binary.BigEndian.PutUint64(k2[8:16], ^key2)
	b1, err := aes.NewCipher(k1[:])
	if err != nil {
		panic(fmt.Sprintf("crypto: %v", err))
	}
	b2, err := aes.NewCipher(k2[:])
	if err != nil {
		panic(fmt.Sprintf("crypto: %v", err))
	}
	return &XTSEngine{data: b1, tweak: b2}
}

// gfDouble multiplies a 16-byte tweak by alpha in GF(2^128) with the XTS
// primitive polynomial x^128 + x^7 + x^2 + x + 1 (little-endian carry).
func gfDouble(t *[16]byte) {
	carry := t[15] >> 7
	for i := 15; i > 0; i-- {
		t[i] = t[i]<<1 | t[i-1]>>7
	}
	t[0] <<= 1
	if carry != 0 {
		t[0] ^= 0x87
	}
}

// EncryptBlock encrypts a 64-byte block whose global address (in block
// units) is addr: each 16-byte lane j uses tweak E_K2(addr) * alpha^j.
func (e *XTSEngine) EncryptBlock(dst, src []byte, addr uint64) {
	e.process(dst, src, addr, true)
}

// DecryptBlock reverses EncryptBlock.
func (e *XTSEngine) DecryptBlock(dst, src []byte, addr uint64) {
	e.process(dst, src, addr, false)
}

func (e *XTSEngine) process(dst, src []byte, addr uint64, encrypt bool) {
	if len(dst) != tensor.BlockBytes || len(src) != tensor.BlockBytes {
		panic(fmt.Sprintf("crypto: XTS block must be %d bytes, got dst=%d src=%d",
			tensor.BlockBytes, len(dst), len(src)))
	}
	seed, tw, buf := &e.seedBuf, &e.twBuf, &e.laneBuf
	// seed[0:8] is never written, so it stays zero across reuses.
	binary.BigEndian.PutUint64(seed[8:16], addr)
	e.tweak.Encrypt(tw[:], seed[:])
	for lane := 0; lane < 4; lane++ {
		o := lane * 16
		for i := 0; i < 16; i++ {
			buf[i] = src[o+i] ^ tw[i]
		}
		if encrypt {
			e.data.Encrypt(buf[:], buf[:])
		} else {
			e.data.Decrypt(buf[:], buf[:])
		}
		for i := 0; i < 16; i++ {
			dst[o+i] = buf[i] ^ tw[i]
		}
		gfDouble(tw)
	}
}

// LatencyModel describes a pipelined crypto unit: the first block pays the
// full pipeline depth, subsequent back-to-back blocks are hidden behind the
// pipeline and cost only the issue interval.
type LatencyModel struct {
	PipelineDepth sim.Cycles // latency of one block through the unit
	IssueInterval sim.Cycles // cycles between successive block completions
}

// Total returns the cycles to process n back-to-back blocks.
func (l LatencyModel) Total(n int) sim.Cycles {
	if n <= 0 {
		return 0
	}
	return l.PipelineDepth.Add(l.IssueInterval * sim.Cycles(n-1))
}

// Default latencies for the synthesized units (Table 6 context): a 40-cycle
// AES-128 pipeline issuing one 64-byte block per cycle group of four lanes,
// and an 80-cycle SHA-256 pipeline (64 rounds + ingest).
var (
	AESLatency = LatencyModel{PipelineDepth: 40, IssueInterval: 1}
	SHALatency = LatencyModel{PipelineDepth: 80, IssueInterval: 1}
)
