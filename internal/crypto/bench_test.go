package crypto

import (
	"testing"

	"seculator/internal/tensor"
)

// The hot-path contract: per-block encryption/decryption performs zero heap
// allocations. The engines stage pads and tweaks in reusable scratch fields
// (engine-per-worker contract; see DESIGN.md §8), so the only way an alloc
// creeps back in is a local escaping through the cipher.Block interface —
// which these benchmarks and tests catch via -benchmem / AllocsPerRun.

func BenchmarkCTREncryptBlock(b *testing.B) {
	e := NewCTR(0xfeed, 0xcafe)
	src := make([]byte, tensor.BlockBytes)
	dst := make([]byte, tensor.BlockBytes)
	b.SetBytes(tensor.BlockBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncryptBlock(dst, src, Counter{VN: uint32(i), Block: uint32(i)})
	}
}

func BenchmarkCTRDecryptBlock(b *testing.B) {
	e := NewCTR(0xfeed, 0xcafe)
	src := make([]byte, tensor.BlockBytes)
	dst := make([]byte, tensor.BlockBytes)
	b.SetBytes(tensor.BlockBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DecryptBlock(dst, src, Counter{VN: uint32(i), Block: uint32(i)})
	}
}

func BenchmarkXTSEncryptBlock(b *testing.B) {
	e := NewXTS(1, 2)
	src := make([]byte, tensor.BlockBytes)
	dst := make([]byte, tensor.BlockBytes)
	b.SetBytes(tensor.BlockBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncryptBlock(dst, src, uint64(i))
	}
}

func BenchmarkXTSDecryptBlock(b *testing.B) {
	e := NewXTS(1, 2)
	src := make([]byte, tensor.BlockBytes)
	dst := make([]byte, tensor.BlockBytes)
	b.SetBytes(tensor.BlockBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DecryptBlock(dst, src, uint64(i))
	}
}

// TestBlockOpsAllocFree enforces the de-allocation acceptance criterion
// (allocs/op <= 1 on the per-block paths) as a plain test so CI's race job
// catches regressions without running benchmarks.
func TestBlockOpsAllocFree(t *testing.T) {
	ctr := NewCTR(0xfeed, 0xcafe)
	xts := NewXTS(1, 2)
	src := make([]byte, tensor.BlockBytes)
	dst := make([]byte, tensor.BlockBytes)
	for _, op := range []struct {
		name string
		fn   func()
	}{
		{"CTR.EncryptBlock", func() { ctr.EncryptBlock(dst, src, Counter{VN: 1, Block: 2}) }},
		{"CTR.DecryptBlock", func() { ctr.DecryptBlock(dst, src, Counter{VN: 1, Block: 2}) }},
		{"XTS.EncryptBlock", func() { xts.EncryptBlock(dst, src, 7) }},
		{"XTS.DecryptBlock", func() { xts.DecryptBlock(dst, src, 7) }},
	} {
		if allocs := testing.AllocsPerRun(100, op.fn); allocs > 1 {
			t.Errorf("%s: %.0f allocs/op, want <= 1", op.name, allocs)
		}
	}
}
