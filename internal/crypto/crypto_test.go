package crypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"seculator/internal/tensor"
)

func block(seed byte) []byte {
	b := make([]byte, tensor.BlockBytes)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestCTRRoundTrip(t *testing.T) {
	e := NewCTR(0xdeadbeef, 0x12345678)
	src := block(7)
	ct := make([]byte, tensor.BlockBytes)
	pt := make([]byte, tensor.BlockBytes)
	c := Counter{Fmap: 3, Layer: 2, VN: 5, Block: 11}
	e.EncryptBlock(ct, src, c)
	if bytes.Equal(ct, src) {
		t.Fatal("ciphertext equals plaintext")
	}
	e.DecryptBlock(pt, ct, c)
	if !bytes.Equal(pt, src) {
		t.Fatal("round trip failed")
	}
}

func TestCTRInPlace(t *testing.T) {
	e := NewCTR(1, 2)
	src := block(9)
	buf := append([]byte(nil), src...)
	c := Counter{Fmap: 1, Layer: 1, VN: 1, Block: 1}
	e.EncryptBlock(buf, buf, c)
	e.DecryptBlock(buf, buf, c)
	if !bytes.Equal(buf, src) {
		t.Fatal("in-place round trip failed")
	}
}

// The core freshness property: identical plaintext at the same address
// encrypts differently when any counter component differs.
func TestCTRCounterSeparation(t *testing.T) {
	e := NewCTR(0xa, 0xb)
	src := block(0)
	enc := func(c Counter) []byte {
		out := make([]byte, tensor.BlockBytes)
		e.EncryptBlock(out, src, c)
		return out
	}
	base := Counter{Fmap: 1, Layer: 2, VN: 3, Block: 4}
	variants := []Counter{
		{Fmap: 2, Layer: 2, VN: 3, Block: 4},
		{Fmap: 1, Layer: 3, VN: 3, Block: 4},
		{Fmap: 1, Layer: 2, VN: 4, Block: 4}, // new version -> new ciphertext
		{Fmap: 1, Layer: 2, VN: 3, Block: 5},
	}
	ref := enc(base)
	for _, v := range variants {
		if bytes.Equal(ref, enc(v)) {
			t.Fatalf("counter %v produced identical ciphertext to %v", v, base)
		}
	}
	if !bytes.Equal(ref, enc(base)) {
		t.Fatal("encryption must be deterministic for equal counters")
	}
}

func TestCTRKeySeparation(t *testing.T) {
	src := block(1)
	c := Counter{Fmap: 1, Layer: 1, VN: 1, Block: 1}
	a := make([]byte, tensor.BlockBytes)
	b := make([]byte, tensor.BlockBytes)
	NewCTR(1, 2).EncryptBlock(a, src, c)
	NewCTR(1, 3).EncryptBlock(b, src, c) // different boot random
	if bytes.Equal(a, b) {
		t.Fatal("different boot randomness must change ciphertext")
	}
}

func TestCTRBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short block should panic")
		}
	}()
	NewCTR(1, 2).EncryptBlock(make([]byte, 16), make([]byte, 16), Counter{})
}

func TestXTSRoundTrip(t *testing.T) {
	e := NewXTS(0x1111, 0x2222)
	src := block(3)
	ct := make([]byte, tensor.BlockBytes)
	pt := make([]byte, tensor.BlockBytes)
	e.EncryptBlock(ct, src, 42)
	if bytes.Equal(ct, src) {
		t.Fatal("XTS ciphertext equals plaintext")
	}
	e.DecryptBlock(pt, ct, 42)
	if !bytes.Equal(pt, src) {
		t.Fatal("XTS round trip failed")
	}
}

func TestXTSAddressSeparation(t *testing.T) {
	e := NewXTS(5, 6)
	src := block(0)
	a := make([]byte, tensor.BlockBytes)
	b := make([]byte, tensor.BlockBytes)
	e.EncryptBlock(a, src, 1)
	e.EncryptBlock(b, src, 2)
	if bytes.Equal(a, b) {
		t.Fatal("different addresses must produce different ciphertext")
	}
}

// XTS has no version input: re-encrypting the same data at the same address
// yields the same ciphertext. This is exactly why TNPU needs its tensor
// table for freshness (Table 5).
func TestXTSIsPositionOnlyDeterministic(t *testing.T) {
	e := NewXTS(5, 6)
	src := block(4)
	a := make([]byte, tensor.BlockBytes)
	b := make([]byte, tensor.BlockBytes)
	e.EncryptBlock(a, src, 9)
	e.EncryptBlock(b, src, 9)
	if !bytes.Equal(a, b) {
		t.Fatal("XTS must be deterministic per (data, address)")
	}
}

func TestXTSLanesDiffer(t *testing.T) {
	// Equal plaintext lanes must encrypt differently thanks to tweak doubling.
	e := NewXTS(7, 8)
	src := make([]byte, tensor.BlockBytes) // all lanes identical (zero)
	ct := make([]byte, tensor.BlockBytes)
	e.EncryptBlock(ct, src, 0)
	for lane := 1; lane < 4; lane++ {
		if bytes.Equal(ct[0:16], ct[lane*16:(lane+1)*16]) {
			t.Fatalf("lane %d ciphertext equals lane 0", lane)
		}
	}
}

func TestXTSBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short block should panic")
		}
	}()
	NewXTS(1, 2).EncryptBlock(make([]byte, 8), make([]byte, 8), 0)
}

func TestGFDouble(t *testing.T) {
	// Doubling zero stays zero.
	var z [16]byte
	gfDouble(&z)
	if z != [16]byte{} {
		t.Fatal("0*alpha != 0")
	}
	// Doubling 1 gives 2 (shift left).
	var one [16]byte
	one[0] = 1
	gfDouble(&one)
	if one[0] != 2 {
		t.Fatalf("1*alpha = %v", one)
	}
	// Overflow folds in the XTS polynomial 0x87.
	var hi [16]byte
	hi[15] = 0x80
	gfDouble(&hi)
	if hi[0] != 0x87 || hi[15] != 0 {
		t.Fatalf("alpha^128 reduction wrong: %v", hi)
	}
}

func TestLatencyModel(t *testing.T) {
	l := LatencyModel{PipelineDepth: 40, IssueInterval: 2}
	if l.Total(0) != 0 {
		t.Fatal("Total(0) != 0")
	}
	if l.Total(1) != 40 {
		t.Fatalf("Total(1) = %d", l.Total(1))
	}
	if l.Total(5) != 48 {
		t.Fatalf("Total(5) = %d, want 48", l.Total(5))
	}
}

func TestCounterString(t *testing.T) {
	c := Counter{Fmap: 1, Layer: 2, VN: 3, Block: 4}
	if c.String() != "ctr{f=1 l=2 vn=3 b=4}" {
		t.Fatalf("String = %q", c.String())
	}
}

// Property: CTR round-trips for arbitrary data and counters.
func TestCTRRoundTripProperty(t *testing.T) {
	e := NewCTR(0xfeed, 0xcafe)
	f := func(data [64]byte, fmap, layer, vn, blk uint16) bool {
		c := Counter{Fmap: uint32(fmap), Layer: uint32(layer), VN: uint32(vn), Block: uint32(blk)}
		ct := make([]byte, 64)
		pt := make([]byte, 64)
		e.EncryptBlock(ct, data[:], c)
		e.DecryptBlock(pt, ct, c)
		return bytes.Equal(pt, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: XTS round-trips for arbitrary data and addresses.
func TestXTSRoundTripProperty(t *testing.T) {
	e := NewXTS(0xaaaa, 0x5555)
	f := func(data [64]byte, addr uint32) bool {
		ct := make([]byte, 64)
		pt := make([]byte, 64)
		e.EncryptBlock(ct, data[:], uint64(addr))
		e.DecryptBlock(pt, ct, uint64(addr))
		return bytes.Equal(pt, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decrypting with a wrong VN never yields the plaintext — a
// replayed ciphertext cannot be silently accepted as current data.
func TestCTRWrongVNGarblesProperty(t *testing.T) {
	e := NewCTR(0x77, 0x88)
	f := func(data [64]byte, vn uint16) bool {
		c := Counter{Fmap: 1, Layer: 1, VN: uint32(vn), Block: 1}
		wrong := c
		wrong.VN++
		ct := make([]byte, 64)
		pt := make([]byte, 64)
		e.EncryptBlock(ct, data[:], c)
		e.DecryptBlock(pt, ct, wrong)
		return !bytes.Equal(pt, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
