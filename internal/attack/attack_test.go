package attack

import (
	"errors"
	"testing"
	"testing/quick"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/npu"
	"seculator/internal/widen"
	"seculator/internal/workload"
)

func TestHonestExecutionVerifies(t *testing.T) {
	if err := RunSeculator(DefaultScenario(), nil, nil); err != nil {
		t.Fatalf("honest execution failed verification: %v", err)
	}
}

func TestDegenerateScenarioRejected(t *testing.T) {
	if err := RunSeculator(Scenario{}, nil, nil); err == nil {
		t.Fatal("degenerate scenario accepted")
	}
}

// Integrity attack: flip one bit of one ciphertext block in DRAM.
func TestTamperDetected(t *testing.T) {
	err := RunSeculator(DefaultScenario(), nil, func(d *mem.DRAM, l Layout) {
		if !d.Tamper(l.Addr(2, 1), 17, 0x40) {
			t.Fatal("tamper primitive failed")
		}
	})
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("tampering not detected: %v", err)
	}
}

// Replay attack: snapshot version-1 ciphertext mid-layer, restore it after
// the final version was written.
func TestReplayDetected(t *testing.T) {
	var snap []byte
	mid := func(d *mem.DRAM, l Layout) {
		s, ok := d.Snapshot(l.Addr(1, 0))
		if !ok {
			t.Fatal("snapshot failed")
		}
		snap = s
	}
	mutate := func(d *mem.DRAM, l Layout) {
		if !d.Restore(l.Addr(1, 0), snap) {
			t.Fatal("restore failed")
		}
	}
	err := RunSeculator(DefaultScenario(), mid, mutate)
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("replay not detected: %v", err)
	}
}

// Splicing attack: swap two ciphertext blocks between addresses. Both
// blocks are valid ciphertexts, but each is bound to its (fmap, index)
// position through the counter and the MAC.
func TestSpliceDetected(t *testing.T) {
	err := RunSeculator(DefaultScenario(), nil, func(d *mem.DRAM, l Layout) {
		if !d.Swap(l.Addr(0, 0), l.Addr(3, 2)) {
			t.Fatal("swap primitive failed")
		}
	})
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("splicing not detected: %v", err)
	}
}

// Swapping two blocks with identical plaintext positions across tiles must
// still be caught: the MAC binds the fmap ID.
func TestCrossTileSwapDetected(t *testing.T) {
	err := RunSeculator(DefaultScenario(), nil, func(d *mem.DRAM, l Layout) {
		d.Swap(l.Addr(0, 1), l.Addr(1, 1))
	})
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("cross-tile swap not detected: %v", err)
	}
}

// Property: any single-byte tamper at any position is detected.
func TestTamperAnywhereDetectedProperty(t *testing.T) {
	s := DefaultScenario()
	f := func(tile, block, off, mask uint8) bool {
		m := mask
		if m == 0 {
			m = 1
		}
		ti := int(tile) % s.Tiles
		bl := int(block) % s.BlocksPerTile
		of := int(off) % 64
		err := RunSeculator(s, nil, func(d *mem.DRAM, l Layout) {
			d.Tamper(l.Addr(ti, bl), of, m)
		})
		return errors.Is(err, mac.ErrIntegrity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Eavesdropping: ciphertext of all-zero plaintext must not leak zeros and
// must look roughly uniform.
func TestEavesdropLearnsNothing(t *testing.T) {
	s := DefaultScenario()
	s.Tiles, s.BlocksPerTile = 16, 16 // 16 KB of ciphertext
	leaks, hist, err := Eavesdrop(s)
	if err != nil {
		t.Fatal(err)
	}
	if leaks != 0 {
		t.Fatalf("%d blocks leaked plaintext", leaks)
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	// Roughly uniform: no byte value above 4x its expected frequency.
	expected := float64(total) / 256
	for v, c := range hist {
		if float64(c) > 4*expected+8 {
			t.Fatalf("byte value %#x appears %d times (expected ~%.0f): ciphertext is biased", v, c, expected)
		}
	}
}

// MEA against an unwidened network: the address trace reveals layer
// volumes almost exactly.
func TestMEAExtractsUnprotectedShapes(t *testing.T) {
	n := workload.MobileNet()
	leak, err := NetworkLeakage(n, n, npu.DefaultConfig(), mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Block padding causes small rounding error; the attacker is
	// essentially exact.
	if leak > 0.25 {
		t.Fatalf("unprotected leakage error = %.3f, attacker should reconstruct shapes", leak)
	}
}

// MEA against a widened execution (Seculator+): reconstruction error grows
// with the widening factor.
func TestWideningDefeatsMEA(t *testing.T) {
	real := workload.Network{
		Name: "victim",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 32, W: 32, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 16, H: 32, W: 32, K: 32, R: 3, S: 3, Stride: 1},
		},
	}
	base, err := NetworkLeakage(real, real, npu.DefaultConfig(), mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := base
	for _, factor := range []float64{1.75, 3.0, 5.0} {
		wnet, err := widen.Network(real, factor)
		if err != nil {
			t.Fatal(err)
		}
		leak, err := NetworkLeakage(real, wnet, npu.DefaultConfig(), mem.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if leak <= prev {
			t.Fatalf("widening %.2fx did not increase confusion: %.3f <= %.3f", factor, leak, prev)
		}
		prev = leak
	}
	if prev < 0.55 {
		t.Fatalf("5x widening leaves error %.3f; expected heavy obfuscation", prev)
	}
}

// Dummy-network injection: the observed trace has extra layers, so the
// attacker cannot even align layers with the real model.
func TestDummyNetworkConfusesAlignment(t *testing.T) {
	real := workload.MobileNet()
	dummy, err := widen.Dummy("noise", 4, 28, 28, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	combined := workload.Network{Name: "mixed", Layers: append(append([]workload.Layer{}, real.Layers...), dummy.Layers...)}
	// The combined network does not chain; leakage analysis observes each
	// mapped layer independently, so craft the observation directly.
	leak, err := NetworkLeakage(real, workload.Network{Name: "obs", Note: "", Layers: combined.Layers}, npu.DefaultConfig(), mem.DefaultConfig())
	if err == nil && leak != 1 {
		t.Fatalf("misaligned trace should give total confusion, got %.3f (err=%v)", leak, err)
	}
}

func TestObserveFootprints(t *testing.T) {
	n := workload.Network{
		Name: "single",
		Layers: []workload.Layer{
			{Name: "c", Type: workload.Conv, C: 4, H: 16, W: 16, K: 8, R: 3, S: 3, Stride: 1},
		},
	}
	obs, err := Observe(n, npu.DefaultConfig(), mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("observed %d layers", len(obs))
	}
	inf := Infer(obs[0])
	truth := TrueShape(n.Layers[0])
	if inf.OutputVolume < truth.OutputVolume {
		t.Fatalf("inferred output volume %d below truth %d", inf.OutputVolume, truth.OutputVolume)
	}
	if ShapeError(n.Layers[0], truth) != 0 {
		t.Fatal("self shape error must be 0")
	}
}

func TestLayoutAddr(t *testing.T) {
	l := Layout{Base: 100, Tiles: 4, BlocksPerTile: 8}
	if l.Addr(2, 3) != 100+19 {
		t.Fatalf("Addr = %d", l.Addr(2, 3))
	}
}
