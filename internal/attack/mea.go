package attack

import (
	"math"

	"seculator/internal/mem"
	"seculator/internal/npu"
	"seculator/internal/sched"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// ObservedLayer is what an address-trace snooper extracts for one layer:
// the distinct footprints of the three tensor regions, in blocks. Encrypted
// traffic hides values but not addresses, so these volumes leak directly on
// designs without MEA protection (Table 5).
type ObservedLayer struct {
	Name         string
	IfmapBlocks  uint64
	OfmapBlocks  uint64
	WeightBlocks uint64
}

// Observe records the per-layer address-range footprints an attacker on
// the memory bus accumulates: the extents of the stored ifmap, ofmap and
// weight regions each layer touches. The mapper is consulted only to
// confirm the network is executable (an unmappable network produces no
// trace); footprints are the tensor regions themselves, which is exactly
// what distinct-address observation reconstructs.
func Observe(n workload.Network, cfg npu.Config, dram mem.Config) ([]ObservedLayer, error) {
	if _, err := sched.MapNetwork(n, cfg, dram); err != nil {
		return nil, err
	}
	denseBlocks := func(elems int) uint64 {
		return uint64(tensor.CeilDiv(elems*tensor.PixelBytes, tensor.BlockBytes))
	}
	out := make([]ObservedLayer, len(n.Layers))
	for i, l := range n.Layers {
		o := ObservedLayer{
			Name:        l.Name,
			IfmapBlocks: denseBlocks(l.C * l.H * l.W),
			OfmapBlocks: denseBlocks(l.K * l.OutH() * l.OutW()),
		}
		if l.Type != workload.Pool {
			o.WeightBlocks = denseBlocks(int(l.Params()))
		}
		out[i] = o
	}
	return out, nil
}

// InferredShape is the attacker's reconstruction of a layer from observed
// footprints: the activation and weight volumes in scalar elements.
type InferredShape struct {
	InputVolume  int64 // ~ C*H*W
	OutputVolume int64 // ~ K*OutH*OutW
	WeightVolume int64 // ~ K*C*R*S
}

// Infer converts observed block footprints into volume estimates.
func Infer(o ObservedLayer) InferredShape {
	return InferredShape{
		InputVolume:  int64(o.IfmapBlocks) * tensor.PixelsPerBlock,
		OutputVolume: int64(o.OfmapBlocks) * tensor.PixelsPerBlock,
		WeightVolume: int64(o.WeightBlocks) * tensor.PixelsPerBlock,
	}
}

// TrueShape returns the real volumes of a layer, the attacker's target.
func TrueShape(l workload.Layer) InferredShape {
	s := InferredShape{
		InputVolume:  int64(l.C) * int64(l.H) * int64(l.W),
		OutputVolume: int64(l.K) * int64(l.OutH()) * int64(l.OutW()),
	}
	if l.Type != workload.Pool {
		s.WeightVolume = l.Params()
	}
	return s
}

// ShapeError is the attacker's mean normalized reconstruction error across
// the three volumes, against the REAL layer: each component scores
// |observed - true| / max(observed, true), so the error lives in [0, 1) —
// 0 means perfect extraction, values near 1 mean the observation says
// nothing about the true magnitude. Layer widening drives it up because
// the observed footprints describe the padded geometry.
func ShapeError(real workload.Layer, inferred InferredShape) float64 {
	truth := TrueShape(real)
	var sum float64
	var n int
	for _, pair := range [][2]int64{
		{truth.InputVolume, inferred.InputVolume},
		{truth.OutputVolume, inferred.OutputVolume},
		{truth.WeightVolume, inferred.WeightVolume},
	} {
		if pair[0] == 0 {
			continue
		}
		a, b := float64(pair[0]), float64(pair[1])
		sum += math.Abs(b-a) / math.Max(a, math.Max(b, 1))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// NetworkLeakage runs the full extraction against a (possibly widened)
// execution of realNet: the attacker observes observedNet's traffic and
// reconstructs shapes, which are scored against the real layers. Returns
// the mean shape error across layers, in [0, 1] — the paper's qualitative
// MEA metric: near 0 for unprotected designs, approaching 1 under heavy
// Seculator+ obfuscation; 1 exactly when decoy layers destroy alignment.
func NetworkLeakage(realNet, observedNet workload.Network, cfg npu.Config, dram mem.Config) (float64, error) {
	obs, err := Observe(observedNet, cfg, dram)
	if err != nil {
		return 0, err
	}
	if len(obs) != len(realNet.Layers) {
		// Dummy-layer injection changed the layer count: the attacker
		// cannot even align layers; report total confusion.
		return 1, nil
	}
	var sum float64
	for i, o := range obs {
		sum += ShapeError(realNet.Layers[i], Infer(o))
	}
	return sum / float64(len(obs)), nil
}
