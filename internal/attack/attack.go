// Package attack implements the adversary of the threat model (Section 3):
// an agent with full control over DRAM and the memory bus who can
// eavesdrop, tamper with data, replay stale ciphertexts, splice blocks
// across addresses, and observe the address trace to extract the model
// (MEA). The package drives the functional Seculator memory through
// multi-layer executions with an attacker hook, and provides the
// shape-inference analyzer used to evaluate Seculator+'s layer widening.
package attack

import (
	"fmt"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/protect"
	"seculator/internal/tensor"
)

// Scenario shapes the functional two-layer execution the attacks target.
type Scenario struct {
	Tiles         int // ofmap tiles produced by layer 1
	Versions      int // partial-sum versions per tile (write pattern ramp)
	BlocksPerTile int // 64-byte blocks per tile
	Secret        uint64
	BootRandom    uint64
}

// DefaultScenario returns a small but non-trivial execution.
func DefaultScenario() Scenario {
	return Scenario{Tiles: 4, Versions: 3, BlocksPerTile: 4, Secret: 0x5ec0_1a70, BootRandom: 0xb007}
}

// Layout tells the attacker where layer 1's data lives.
type Layout struct {
	Base          uint64 // block address of tile 0, block 0
	Tiles         int
	BlocksPerTile int
	FinalVN       int
}

// Addr returns the DRAM line address of (tile, block).
func (l Layout) Addr(tile, block int) uint64 {
	return l.Base + uint64(tile*l.BlocksPerTile+block)
}

// Mutator is the attacker hook, invoked after layer 1 has written all its
// outputs (and read back its partials) but before layer 2 consumes them.
// It may mutate DRAM arbitrarily and may also capture snapshots earlier via
// the MidLayer hook.
type Mutator func(d *mem.DRAM, l Layout)

// RunSeculator executes two layers functionally on the Seculator memory:
// layer 1 writes every tile `Versions` times (reading back each non-final
// partial, as the dataflows guarantee), then layer 2 first-reads all final
// outputs and runs the Equation 1 verification. midLayer (optional) runs
// after layer 1's first version sweep — the window where replay snapshots
// are naturally taken; mutate (optional) runs before layer 2's reads.
//
// The returned error is nil for honest executions and wraps
// mac.ErrIntegrity when the verification catches the attacker.
func RunSeculator(s Scenario, midLayer, mutate Mutator) error {
	if s.Tiles <= 0 || s.Versions <= 0 || s.BlocksPerTile <= 0 {
		return fmt.Errorf("attack: degenerate scenario %+v", s)
	}
	dram, err := mem.New(mem.DefaultConfig())
	if err != nil {
		return err
	}
	sm := protect.NewSeculatorMemory(dram, s.Secret, s.BootRandom)
	layout := Layout{Base: 0, Tiles: s.Tiles, BlocksPerTile: s.BlocksPerTile, FinalVN: s.Versions}

	plain := func(tile, vn, block int) []byte {
		b := make([]byte, tensor.BlockBytes)
		for i := range b {
			b[i] = byte(tile*31 + vn*7 + block*3 + i)
		}
		return b
	}

	// Layer 1: partial-sum write/read/update cycles, in-place per tile.
	sm.BeginLayer(1)
	for vn := 1; vn <= s.Versions; vn++ {
		for tile := 0; tile < s.Tiles; tile++ {
			for block := 0; block < s.BlocksPerTile; block++ {
				addr := layout.Addr(tile, block)
				if vn > 1 {
					sm.ReadPartial(addr, uint32(tile), vn-1, uint32(block))
				}
				sm.WriteBlock(addr, uint32(tile), vn, uint32(block), plain(tile, vn, block))
			}
		}
		if vn == 1 && midLayer != nil {
			midLayer(dram, layout)
		}
	}

	if mutate != nil {
		mutate(dram, layout)
	}

	// Layer 2: first-read everything layer 1 finalized, then verify.
	sm.BeginLayer(2)
	for tile := 0; tile < s.Tiles; tile++ {
		for block := 0; block < s.BlocksPerTile; block++ {
			sm.ReadInput(layout.Addr(tile, block), 1, uint32(tile), s.Versions, uint32(block), true)
		}
	}
	return sm.VerifyPreviousLayer(mac.Digest{})
}

// Eavesdrop captures what a bus snooper learns from layer 1's ciphertext:
// it runs an honest execution and returns, for every stored block, whether
// the ciphertext leaks the plaintext (equality) and the byte-value
// histogram of all ciphertext, for entropy analysis.
func Eavesdrop(s Scenario) (leaks int, histogram [256]int, err error) {
	dram, err := mem.New(mem.DefaultConfig())
	if err != nil {
		return 0, histogram, err
	}
	sm := protect.NewSeculatorMemory(dram, s.Secret, s.BootRandom)
	layout := Layout{Base: 0, Tiles: s.Tiles, BlocksPerTile: s.BlocksPerTile, FinalVN: s.Versions}

	sm.BeginLayer(1)
	for tile := 0; tile < s.Tiles; tile++ {
		for block := 0; block < s.BlocksPerTile; block++ {
			pt := make([]byte, tensor.BlockBytes) // all-zero plaintext: worst case
			sm.WriteBlock(layout.Addr(tile, block), uint32(tile), 1, uint32(block), pt)
		}
	}
	for tile := 0; tile < s.Tiles; tile++ {
		for block := 0; block < s.BlocksPerTile; block++ {
			ct := dram.Peek(layout.Addr(tile, block))
			if ct == nil {
				return 0, histogram, fmt.Errorf("attack: missing ciphertext at tile %d block %d", tile, block)
			}
			zero := true
			for _, b := range ct {
				histogram[b]++
				if b != 0 {
					zero = false
				}
			}
			if zero {
				leaks++
			}
		}
	}
	return leaks, histogram, nil
}
