package attack

import (
	"bytes"
	"errors"
	"fmt"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/protect"
	"seculator/internal/tensor"
)

// MatrixAttack names one attack of the Table 5 detection matrix.
type MatrixAttack uint8

const (
	// AttackNone is the honest execution (control row).
	AttackNone MatrixAttack = iota
	// AttackTamper flips one ciphertext byte in DRAM.
	AttackTamper
	// AttackReplay restores a stale ciphertext.
	AttackReplay
	// AttackReplayWithMAC restores a stale (ciphertext, MAC) pair — the
	// coherent replay that defeats naive MAC schemes.
	AttackReplayWithMAC
	// AttackSplice swaps two ciphertexts between addresses.
	AttackSplice
	// AttackSpliceWithMAC swaps two (ciphertext, MAC) pairs.
	AttackSpliceWithMAC
)

// String implements fmt.Stringer.
func (a MatrixAttack) String() string {
	switch a {
	case AttackNone:
		return "none"
	case AttackTamper:
		return "tamper"
	case AttackReplay:
		return "replay"
	case AttackReplayWithMAC:
		return "replay+mac"
	case AttackSplice:
		return "splice"
	case AttackSpliceWithMAC:
		return "splice+mac"
	default:
		return fmt.Sprintf("MatrixAttack(%d)", uint8(a))
	}
}

// MatrixAttacks returns every attack row.
func MatrixAttacks() []MatrixAttack {
	return []MatrixAttack{AttackNone, AttackTamper, AttackReplay,
		AttackReplayWithMAC, AttackSplice, AttackSpliceWithMAC}
}

// MatrixResult is the outcome of one (design, attack) cell.
type MatrixResult struct {
	Detected  bool  // an integrity error was raised
	Corrupted bool  // the consumer received wrong data without detection
	Err       error // the raised error, for reporting
}

// scenarioPlain is the deterministic plaintext of block (tile, vn, blk).
func scenarioPlain(tile, vn, blk int) []byte {
	b := make([]byte, tensor.BlockBytes)
	for i := range b {
		b[i] = byte(tile*31 + vn*7 + blk*3 + i)
	}
	return b
}

// RunMatrix drives one functional memory through the canonical two-layer
// execution (layer 1 writes Versions partial versions per tile, layer 2
// consumes the finals) while mounting the given attack, and reports whether
// the design detected it and whether the consumer silently received
// corrupted data. macs may be nil for designs without an off-chip MAC store
// (Baseline, Seculator); dram is the shared data DRAM the attacker mutates.
func RunMatrix(m protect.FunctionalMemory, macs *protect.MACStore, dram *mem.DRAM,
	s Scenario, atk MatrixAttack) (MatrixResult, error) {

	if s.Tiles < 2 || s.Versions < 2 || s.BlocksPerTile < 1 {
		return MatrixResult{}, fmt.Errorf("attack: matrix scenario needs >=2 tiles and versions, got %+v", s)
	}
	layout := Layout{Base: 0, Tiles: s.Tiles, BlocksPerTile: s.BlocksPerTile, FinalVN: s.Versions}
	target := layout.Addr(1, 0)
	spliceA, spliceB := layout.Addr(0, 0), layout.Addr(s.Tiles-1, s.BlocksPerTile-1)

	var staleData []byte
	var staleMAC mac.Digest
	var haveStaleMAC bool

	detect := func(err error) (MatrixResult, bool) {
		if err == nil {
			return MatrixResult{}, false
		}
		if errors.Is(err, mac.ErrIntegrity) {
			return MatrixResult{Detected: true, Err: err}, true
		}
		return MatrixResult{Err: err}, true
	}

	// Layer 1: partial-sum write/read/update cycles. A tile is read back
	// whole and then written back whole — tiles evict atomically, which is
	// what keeps the per-tile version tables of TNPU/GuardNN coherent.
	m.BeginLayer(1)
	for vn := 1; vn <= s.Versions; vn++ {
		for tile := 0; tile < s.Tiles; tile++ {
			if vn > 1 {
				for blk := 0; blk < s.BlocksPerTile; blk++ {
					if _, err := m.Read(layout.Addr(tile, blk), 1, uint32(tile), vn-1, uint32(blk), false); err != nil {
						if r, stop := detect(err); stop {
							return r, nil
						}
					}
				}
			}
			for blk := 0; blk < s.BlocksPerTile; blk++ {
				m.Write(layout.Addr(tile, blk), uint32(tile), vn, uint32(blk), scenarioPlain(tile, vn, blk))
			}
		}
		if vn == 1 {
			// Replay snapshot point: capture version 1 of the target.
			staleData, _ = dram.Snapshot(target)
			if macs != nil {
				staleMAC, haveStaleMAC = macs.Snapshot(target)
			}
		}
	}

	// Mount the attack.
	switch atk {
	case AttackTamper:
		dram.Tamper(target, 9, 0x20)
	case AttackReplay:
		dram.Restore(target, staleData)
	case AttackReplayWithMAC:
		dram.Restore(target, staleData)
		if haveStaleMAC {
			macs.Restore(target, staleMAC)
		}
	case AttackSplice:
		dram.Swap(spliceA, spliceB)
	case AttackSpliceWithMAC:
		dram.Swap(spliceA, spliceB)
		if macs != nil {
			macs.Swap(spliceA, spliceB)
		}
	}

	// Layer 2: consume the finals.
	m.BeginLayer(2)
	var corrupted bool
	for tile := 0; tile < s.Tiles; tile++ {
		for blk := 0; blk < s.BlocksPerTile; blk++ {
			pt, err := m.Read(layout.Addr(tile, blk), 1, uint32(tile), s.Versions, uint32(blk), true)
			if err != nil {
				if r, stop := detect(err); stop {
					return r, nil
				}
			}
			if !bytes.Equal(pt, scenarioPlain(tile, s.Versions, blk)) {
				corrupted = true
			}
		}
	}
	if err := m.EndLayer(); err != nil {
		if r, stop := detect(err); stop {
			return r, nil
		}
	}
	return MatrixResult{Corrupted: corrupted}, nil
}
