package attack

import (
	"context"
	"fmt"

	"seculator/internal/mem"
	"seculator/internal/parallel"
	"seculator/internal/protect"
)

// NewFunctionalMemory constructs the functional memory of a design over a
// fresh DRAM, returning its off-chip MAC store when the design has one
// (nil for Baseline and Seculator). Seculator+ shares Seculator's memory.
func NewFunctionalMemory(d protect.Design) (protect.FunctionalMemory, *protect.MACStore, *mem.DRAM, error) {
	dram, err := mem.New(mem.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	switch d {
	case protect.Baseline:
		return protect.NewBaselineMemory(dram), nil, dram, nil
	case protect.Secure:
		m, err := protect.NewSGXMemory(dram, 0x5ec_0001, 0x5ec_0002, 64)
		if err != nil {
			return nil, nil, nil, err
		}
		return m, m.MACs(), dram, nil
	case protect.TNPU:
		m := protect.NewTNPUMemory(dram, 0x5ec_0003, 0x5ec_0004)
		return m, m.MACs(), dram, nil
	case protect.GuardNN:
		m := protect.NewGuardNNMemory(dram, 0x5ec_0005, 0x5ec_0006)
		return m, m.MACs(), dram, nil
	case protect.Seculator, protect.SeculatorPlus:
		return protect.NewSeculatorFunctional(dram, 0x5ec_0007, 0x5ec_0008), nil, dram, nil
	default:
		return nil, nil, nil, fmt.Errorf("attack: no functional memory for design %d", uint8(d))
	}
}

// DetectionCell is one (design, attack) outcome of the behavioural Table 5.
type DetectionCell struct {
	Design    protect.Design
	Attack    MatrixAttack
	Detected  bool
	Corrupted bool
}

// DetectionMatrix runs every attack against every design's functional
// memory and returns the full matrix in design-major, attack-minor order.
// Cells fan out on the worker pool — each builds its own functional memory
// over a fresh DRAM, so no state is shared between concurrent attacks.
// ctx cancels in-flight cells.
func DetectionMatrix(ctx context.Context, s Scenario) ([]DetectionCell, error) {
	designs := []protect.Design{
		protect.Baseline, protect.Secure, protect.TNPU, protect.GuardNN, protect.Seculator,
	}
	type cell struct {
		d   protect.Design
		atk MatrixAttack
	}
	var cells []cell
	for _, d := range designs {
		for _, atk := range MatrixAttacks() {
			cells = append(cells, cell{d, atk})
		}
	}
	return parallel.Map(ctx, 0, cells, func(ctx context.Context, c cell) (DetectionCell, error) {
		m, macs, dram, err := NewFunctionalMemory(c.d)
		if err != nil {
			return DetectionCell{}, err
		}
		res, err := RunMatrix(m, macs, dram, s, c.atk)
		if err != nil {
			return DetectionCell{}, fmt.Errorf("attack: %s/%s: %w", c.d, c.atk, err)
		}
		return DetectionCell{
			Design: c.d, Attack: c.atk,
			Detected: res.Detected, Corrupted: res.Corrupted,
		}, nil
	})
}
