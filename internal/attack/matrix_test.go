package attack

import (
	"testing"

	"seculator/internal/mem"
	"seculator/internal/protect"
)

// buildMemory constructs the functional memory (and its off-chip MAC store,
// when the design has one) for a matrix run.
func buildMemory(t *testing.T, d protect.Design) (protect.FunctionalMemory, *protect.MACStore, *mem.DRAM) {
	t.Helper()
	m, macs, dram, err := NewFunctionalMemory(d)
	if err != nil {
		t.Fatal(err)
	}
	return m, macs, dram
}

// The behavioural Table 5: the Baseline fails to detect every attack (and
// silently serves corrupted data), while every protected design — per-block
// immediately, Seculator at its layer check — detects all of them.
func mustDRAM(t *testing.T) *mem.DRAM {
	t.Helper()
	d, err := mem.New(mem.DefaultConfig())
	if err != nil {
		t.Fatalf("mem.New: %v", err)
	}
	return d
}

func TestDetectionMatrix(t *testing.T) {
	s := DefaultScenario()
	designs := []protect.Design{
		protect.Baseline, protect.Secure, protect.TNPU, protect.GuardNN, protect.Seculator,
	}
	for _, d := range designs {
		for _, atk := range MatrixAttacks() {
			m, macs, dram := buildMemory(t, d)
			res, err := RunMatrix(m, macs, dram, s, atk)
			if err != nil {
				t.Fatalf("%s/%s: driver error: %v", d, atk, err)
			}
			switch {
			case atk == AttackNone:
				if res.Detected || res.Corrupted {
					t.Errorf("%s/none: honest run flagged: %+v", d, res)
				}
			case d == protect.Baseline:
				if res.Detected {
					t.Errorf("Baseline/%s: baseline cannot detect anything", atk)
				}
				if !res.Corrupted {
					t.Errorf("Baseline/%s: attack should corrupt data silently", atk)
				}
			default:
				if !res.Detected {
					t.Errorf("%s/%s: attack not detected (corrupted=%v)", d, atk, res.Corrupted)
				}
			}
		}
	}
}

// Per-block designs must detect at the offending read, not only at layer
// end: the tampered block read returns the error directly.
func TestPerBlockDesignsDetectImmediately(t *testing.T) {
	for _, d := range []protect.Design{protect.Secure, protect.TNPU, protect.GuardNN} {
		m, _, dram := buildMemory(t, d)
		m.BeginLayer(1)
		m.Write(0, 0, 1, 0, scenarioPlain(0, 1, 0))
		dram.Tamper(0, 3, 0xF0)
		if _, err := m.Read(0, 1, 0, 1, 0, true); err == nil {
			t.Errorf("%s: tampered read returned no error", d)
		}
	}
}

// Counter rollback against the Secure design: the Merkle tree catches it.
func TestSecureCounterRollback(t *testing.T) {
	dram := mustDRAM(t)
	m, err := protect.NewSGXMemory(dram, 1, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	m.BeginLayer(1)
	m.Write(0, 0, 1, 0, scenarioPlain(0, 1, 0))
	m.Counters().TamperMajor(0, 5) // off-band counter mutation
	if _, err := m.Read(0, 1, 0, 1, 0, true); err == nil {
		t.Fatal("counter rollback not detected")
	}
}

// XTS determinism is TNPU's known residual leak: rewriting identical data
// at the same address yields identical ciphertext, whereas CTR designs
// refresh it. The matrix machinery makes the contrast observable.
func TestXTSDeterminismVsCTRFreshness(t *testing.T) {
	pt := scenarioPlain(0, 1, 0)

	dram1 := mustDRAM(t)
	tnpu := protect.NewTNPUMemory(dram1, 9, 10)
	tnpu.BeginLayer(1)
	tnpu.Write(0, 0, 1, 0, pt)
	first, _ := dram1.Snapshot(0)
	tnpu.Write(0, 0, 2, 0, pt) // same data, new version
	second, _ := dram1.Snapshot(0)
	if string(first) != string(second) {
		t.Fatal("XTS should produce identical ciphertext for identical (data, address)")
	}

	dram2 := mustDRAM(t)
	gnn := protect.NewGuardNNMemory(dram2, 9, 10)
	gnn.BeginLayer(1)
	gnn.Write(0, 0, 1, 0, pt)
	first, _ = dram2.Snapshot(0)
	gnn.Write(0, 0, 2, 0, pt)
	second, _ = dram2.Snapshot(0)
	if string(first) == string(second) {
		t.Fatal("CTR must refresh ciphertext across versions")
	}
}

func TestMatrixAttackStrings(t *testing.T) {
	for _, a := range MatrixAttacks() {
		if a.String() == "" {
			t.Fatalf("empty string for attack %d", a)
		}
	}
	if MatrixAttack(99).String() == "" {
		t.Fatal("unknown attack should render")
	}
}

func TestRunMatrixValidation(t *testing.T) {
	m, macs, dram := buildMemory(t, protect.Seculator)
	if _, err := RunMatrix(m, macs, dram, Scenario{Tiles: 1, Versions: 1, BlocksPerTile: 1}, AttackNone); err == nil {
		t.Fatal("degenerate matrix scenario accepted")
	}
}
