// Package dataflow generates the memory-access event streams that tiled DNN
// dataflows present to the NPU's memory interface, and derives the VN
// pattern triplets of the paper's Section 5 analytically from the mapping.
//
// A Mapping is a loop nest over up to three tile iterators — S (spatial
// tiles, h_T/w_T fused), C (input-channel groups, c_T) and K (output-channel
// groups, k_T) — plus a reuse style. Generate walks the nest exactly as the
// accelerator would and emits one Event per tile transfer: ifmap/weight tile
// reads, partial ofmap read-modify-write round trips, and final ofmap
// writes. Ground-truth version numbers are tracked per ofmap tile (VN
// increments on every write-back), which is what the paper's read/write
// observers record.
//
// The same engine covers convolution input/output/weight reuse (Tables 2
// and 3), tiled matrix multiplication (Table 4), and the image
// pre-processing / pooling styles (Tables 8-10), because all of them are
// loop nests over (S, C, K) with one semantic switch: whether the C
// (reduction) loop is innermost. When it is — or when there is only one
// C step — every ofmap tile is fully accumulated in the global buffer and
// written exactly once (output-stationary); otherwise each C step forces a
// partial-sum eviction and later read-back.
package dataflow

import (
	"fmt"

	"seculator/internal/pattern"
	"seculator/internal/sim"
	"seculator/internal/tensor"
)

// ReuseStyle is the data-reuse goal of a mapping (Section 5.1).
type ReuseStyle uint8

const (
	// InputReuse keeps ifmap tiles stationary in the global buffer.
	InputReuse ReuseStyle = iota
	// OutputReuse fully accumulates each ofmap tile before eviction.
	OutputReuse
	// WeightReuse keeps a weight-tile group stationary.
	WeightReuse
)

// String implements fmt.Stringer.
func (r ReuseStyle) String() string {
	switch r {
	case InputReuse:
		return "input-reuse"
	case OutputReuse:
		return "output-reuse"
	case WeightReuse:
		return "weight-reuse"
	default:
		return fmt.Sprintf("ReuseStyle(%d)", uint8(r))
	}
}

// LoopVar names one tile iterator of the nest.
type LoopVar uint8

const (
	// LoopS iterates spatial tiles (h_T, w_T fused, row-major).
	LoopS LoopVar = iota
	// LoopC iterates input-channel groups (c_T) — the reduction loop.
	LoopC
	// LoopK iterates output-channel groups (k_T).
	LoopK
)

// String implements fmt.Stringer.
func (v LoopVar) String() string {
	switch v {
	case LoopS:
		return "hT>wT"
	case LoopC:
		return "cT"
	case LoopK:
		return "kT"
	default:
		return fmt.Sprintf("LoopVar(%d)", uint8(v))
	}
}

// LoopOrder is the nest order, outermost first. Iterators absent from the
// order have a single iteration (their dimension is untiled or fully
// resident); they are treated as innermost with bound 1.
type LoopOrder []LoopVar

// String renders the order in the paper's notation, e.g. "hT>wT>cT>kT".
func (o LoopOrder) String() string {
	if len(o) == 0 {
		return "(none)"
	}
	s := ""
	for i, v := range o {
		if i > 0 {
			s += ">"
		}
		s += v.String()
	}
	return s
}

// Contains reports whether v appears in the order.
func (o LoopOrder) Contains(v LoopVar) bool {
	for _, w := range o {
		if w == v {
			return true
		}
	}
	return false
}

// Valid reports whether the order mentions each variable at most once.
func (o LoopOrder) Valid() bool {
	var seen [3]bool
	for _, v := range o {
		if v > LoopK || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Mapping fully describes how one layer executes: the loop nest, the tile
// grid bounds, the reuse style, and the tile transfer sizes in 64-byte
// blocks. It is the unit the protection engines and the VN generator are
// configured with.
type Mapping struct {
	Name  string     // table row / style label, for reporting
	Reuse ReuseStyle // reuse goal (informational; semantics come from Order)
	Order LoopOrder  // nest order, outermost first

	// Grid bounds. Any bound < 1 is treated as 1.
	AlphaHW int // spatial tiles per fmap
	AlphaC  int // input channel groups
	AlphaK  int // output channel groups

	// Tile transfer sizes (blocks per tile).
	IfmapTileBlocks  int // one ifmap tile (incl. halo)
	OfmapTileBlocks  int // one ofmap tile
	WeightTileBlocks int // one weight-tile group (KT x CT x R x S)

	// WeightsResident marks mappings whose weights fit in the global
	// buffer for the whole layer (loaded once, not per visit).
	WeightsResident bool

	// PerChannel marks mappings of depthwise/pooling layers, where each
	// output channel reduces only its own input channel: the ifmap tile
	// identity follows the output-channel group (k, s) instead of the
	// reduction group (c, s).
	PerChannel bool
}

// Bound returns the iteration count of v under m (>=1).
func (m *Mapping) Bound(v LoopVar) int {
	var b int
	switch v {
	case LoopS:
		b = m.AlphaHW
	case LoopC:
		b = m.AlphaC
	case LoopK:
		b = m.AlphaK
	default:
		panic(fmt.Sprintf("dataflow: unknown loop var %d", v))
	}
	if b < 1 {
		return 1
	}
	return b
}

// Validate checks structural sanity of the mapping.
func (m *Mapping) Validate() error {
	if !m.Order.Valid() {
		return fmt.Errorf("dataflow: invalid loop order %v", m.Order)
	}
	if m.OfmapTileBlocks <= 0 {
		return fmt.Errorf("dataflow: mapping %q has no ofmap tile size", m.Name)
	}
	if m.IfmapTileBlocks < 0 || m.WeightTileBlocks < 0 {
		return fmt.Errorf("dataflow: mapping %q has negative tile size", m.Name)
	}
	// Every multi-iteration loop must appear in the order; absent loops are
	// appended innermost by the generator, which would silently change the
	// nest the mapping claims to describe.
	for _, v := range []LoopVar{LoopS, LoopC, LoopK} {
		if m.Bound(v) > 1 && !m.Order.Contains(v) {
			return fmt.Errorf("dataflow: mapping %q: loop %v has bound %d but is absent from order %v",
				m.Name, v, m.Bound(v), m.Order)
		}
	}
	return nil
}

// outputStationary reports whether ofmap tiles are fully accumulated in the
// GB before their single write-back. This holds when (a) the mapping's goal
// is output reuse — by definition partial sums never leave the GB, whatever
// the traversal order (Section 5.1.2) — or (b) the reduction loop C is
// innermost among the present loops, or (c) there is a single reduction
// step. Otherwise every C step forces a partial-sum eviction.
func (m *Mapping) outputStationary() bool {
	if m.Reuse == OutputReuse {
		return true
	}
	if m.Bound(LoopC) == 1 {
		return true
	}
	if !m.Order.Contains(LoopC) {
		return true
	}
	last := m.Order[len(m.Order)-1]
	return last == LoopC
}

// LoopIdx is the current index of each loop variable during generation;
// indices of absent loops are 0. It is carried on every Event so that the
// hardware first-read predicate (all non-binding indices zero) can be
// evaluated without per-tile state.
type LoopIdx struct {
	S, C, K int
}

// Event is one tile transfer at the DRAM interface.
type Event struct {
	Kind   sim.AccessKind
	Tensor tensor.Kind
	Tile   tensor.TileID
	VN     int     // version: writes carry the new VN, reads the stored VN
	First  bool    // first access to this tile in this layer
	Final  bool    // for ofmap writes: last write (consumed by next layer)
	Blocks int     // transfer size in 64-byte blocks
	Idx    LoopIdx // loop indices at emission
}

// Visitor receives the event stream. Returning false stops generation.
type Visitor func(Event) bool

// Generate walks the mapping's loop nest and emits the full event stream to
// v in program order. VN ground truth: every ofmap tile's VN starts at 0 and
// increments on each write-back; reads observe the stored VN. Ifmap and
// weight tiles are read-only (their VN is owned by the previous layer /
// initial load and reported as 0 here; the protection engines substitute
// the cross-layer VN).
func Generate(m *Mapping, v Visitor) error {
	return GenerateWithCompute(m, v, nil)
}

// GenerateWithCompute is Generate with a compute hook: body is invoked once
// per loop-nest body visit, after the visit's input fetch events (ifmap,
// weight, partial-ofmap read) and before its ofmap write-back — the point
// where the PE array consumes the staged tiles. The functional executor
// uses it to run the actual arithmetic of the visit. A false return stops
// generation, like the Visitor's.
func GenerateWithCompute(m *Mapping, v Visitor, body func(LoopIdx) bool) error {
	if err := m.Validate(); err != nil {
		return err
	}
	g := &generator{m: m, visit: v, body: body}
	g.run()
	return nil
}

type generator struct {
	m       *Mapping
	visit   Visitor
	body    func(LoopIdx) bool
	stopped bool

	ofmapVN     []int // per ofmap tile: current VN (writes so far)
	ofmapWrites []int // per ofmap tile: writes emitted (for Final detection)
	ifmapSeen   []bool
	weightSeen  []bool
	wResident   bool // weights already loaded (WeightsResident mode)
}

func (g *generator) run() {
	m := g.m
	nOf := m.Bound(LoopK) * m.Bound(LoopS)
	nIf := m.Bound(LoopC) * m.Bound(LoopS)
	if m.PerChannel {
		nIf = m.Bound(LoopK) * m.Bound(LoopS)
	}
	nW := m.Bound(LoopK) * m.Bound(LoopC)
	g.ofmapVN = make([]int, nOf)
	g.ofmapWrites = make([]int, nOf)
	g.ifmapSeen = make([]bool, nIf)
	g.weightSeen = make([]bool, nW)

	order := g.fullOrder()
	var idx LoopIdx
	g.nest(order, 0, &idx)
}

// fullOrder returns the loop order with absent variables appended innermost
// (bound 1, so position is immaterial for iteration but gives them an index).
func (g *generator) fullOrder() LoopOrder {
	order := append(LoopOrder{}, g.m.Order...)
	for _, v := range []LoopVar{LoopS, LoopC, LoopK} {
		if !order.Contains(v) {
			order = append(order, v)
		}
	}
	return order
}

func (g *generator) nest(order LoopOrder, depth int, idx *LoopIdx) {
	if g.stopped {
		return
	}
	if depth == len(order) {
		g.visitBody(*idx)
		return
	}
	v := order[depth]
	for i := 0; i < g.m.Bound(v); i++ {
		switch v {
		case LoopS:
			idx.S = i
		case LoopC:
			idx.C = i
		case LoopK:
			idx.K = i
		}
		g.nest(order, depth+1, idx)
		if g.stopped {
			return
		}
	}
}

// visitBody is one (s, c, k) visit: the NPU processes ifmap tile (c, s)
// against weight group (k, c), updating ofmap tile (k, s).
func (g *generator) visitBody(idx LoopIdx) {
	m := g.m
	stationary := m.outputStationary()
	lastC := idx.C == m.Bound(LoopC)-1

	// Ifmap tile read. Stationarity in the GB: the tile stays resident
	// while only loops inside its binding loops vary; we model re-fetch
	// whenever any binding index changed since last visit, which for a
	// canonical nest equals "fetch on every visit where the innermost
	// varying non-binding loop wrapped". A simpler faithful rule used by
	// the paper's traffic accounting: ifmap tile (c,s) is fetched once per
	// distinct visit combination of the loops that enclose its reuse, i.e.
	// once per (s, c, kGroupSweep). With K innermost the tile is fetched
	// once and reused across k; with K outside C or S the tile is
	// re-fetched for each k.
	if m.IfmapTileBlocks > 0 && g.ifmapFetchNeeded(idx) {
		fmapIdx := idx.C
		if m.PerChannel {
			fmapIdx = idx.K
		}
		first := !g.ifmapSeen[g.ifIndex(idx)]
		g.ifmapSeen[g.ifIndex(idx)] = true
		g.emit(Event{
			Kind: sim.Read, Tensor: tensor.Ifmap,
			Tile:   tensor.TileID{Kind: tensor.Ifmap, Fmap: fmapIdx, Spatial: idx.S},
			First:  first,
			Blocks: m.IfmapTileBlocks,
			Idx:    idx,
		})
	}

	// Weight tile read.
	if m.WeightTileBlocks > 0 && g.weightFetchNeeded(idx) {
		first := !g.weightSeen[g.wIndex(idx)]
		g.weightSeen[g.wIndex(idx)] = true
		g.emit(Event{
			Kind: sim.Read, Tensor: tensor.Weight,
			Tile:   tensor.TileID{Kind: tensor.Weight, Fmap: idx.K, Spatial: idx.C},
			First:  first,
			Blocks: m.WeightTileBlocks,
			Idx:    idx,
		})
	}

	of := g.ofIndex(idx)
	tile := tensor.TileID{Kind: tensor.Ofmap, Fmap: idx.K, Spatial: idx.S}

	if stationary {
		// All inputs staged: the PE array consumes them now.
		if g.body != nil && !g.stopped && !g.body(idx) {
			g.stopped = true
			return
		}
		// Fully accumulated in GB; single write at the last reduction step.
		if lastC {
			g.ofmapVN[of]++
			g.ofmapWrites[of]++
			g.emit(Event{
				Kind: sim.Write, Tensor: tensor.Ofmap,
				Tile: tile, VN: g.ofmapVN[of],
				First: g.ofmapWrites[of] == 1, Final: true,
				Blocks: m.OfmapTileBlocks, Idx: idx,
			})
		}
		return
	}

	// Partial-sum round trip: read back the previous partial (if any),
	// update, and evict with an incremented VN.
	if g.ofmapVN[of] > 0 {
		g.emit(Event{
			Kind: sim.Read, Tensor: tensor.Ofmap,
			Tile: tile, VN: g.ofmapVN[of],
			Blocks: m.OfmapTileBlocks, Idx: idx,
		})
	}
	// All inputs staged (including the partial): compute the update.
	if g.body != nil && !g.stopped && !g.body(idx) {
		g.stopped = true
		return
	}
	g.ofmapVN[of]++
	g.ofmapWrites[of]++
	g.emit(Event{
		Kind: sim.Write, Tensor: tensor.Ofmap,
		Tile: tile, VN: g.ofmapVN[of],
		First: g.ofmapWrites[of] == 1, Final: lastC,
		Blocks: m.OfmapTileBlocks, Idx: idx,
	})
}

// ifmapFetchNeeded: the ifmap tile (c, s) must be (re)loaded unless it is
// still resident from the immediately preceding visit — i.e. unless the only
// loops that advanced since the last body call are nested inside both its
// binding loops. For the canonical nests we model, this reduces to: fetch
// when the non-binding loop (K) is at its first iteration OR K is not the
// innermost present loop (in which case (c,s) changes every K step anyway).
func (g *generator) ifmapFetchNeeded(idx LoopIdx) bool {
	m := g.m
	if m.PerChannel {
		// The tile binds (k, s); only the (degenerate) C loop can repeat
		// a visit with the same identity.
		return idx.C == 0
	}
	if m.Bound(LoopK) == 1 {
		return true // every visit has a fresh (c,s)
	}
	if g.innermost() == LoopK {
		return idx.K == 0 // resident across the K sweep
	}
	return true
}

// weightFetchNeeded mirrors ifmapFetchNeeded for weight group (k, c), whose
// non-binding loop is S. WeightsResident mappings load each group once.
func (g *generator) weightFetchNeeded(idx LoopIdx) bool {
	m := g.m
	if m.WeightsResident {
		return !g.weightSeen[g.wIndex(idx)]
	}
	if m.Bound(LoopS) == 1 {
		return true
	}
	if g.innermost() == LoopS {
		return idx.S == 0
	}
	return true
}

// innermost returns the innermost *present* loop variable.
func (g *generator) innermost() LoopVar {
	if n := len(g.m.Order); n > 0 {
		return g.m.Order[n-1]
	}
	return LoopK
}

func (g *generator) ofIndex(idx LoopIdx) int { return idx.K*g.m.Bound(LoopS) + idx.S }

func (g *generator) ifIndex(idx LoopIdx) int {
	if g.m.PerChannel {
		return idx.K*g.m.Bound(LoopS) + idx.S
	}
	return idx.C*g.m.Bound(LoopS) + idx.S
}
func (g *generator) wIndex(idx LoopIdx) int { return idx.K*g.m.Bound(LoopC) + idx.C }

func (g *generator) emit(e Event) {
	if g.stopped {
		return
	}
	if !g.visit(e) {
		g.stopped = true
	}
}

// Collect runs Generate and returns the full event slice.
func Collect(m *Mapping) ([]Event, error) {
	var out []Event
	err := Generate(m, func(e Event) bool {
		out = append(out, e)
		return true
	})
	return out, err
}

// DeriveWrite returns the master-equation triplet of the ofmap VN sequence
// seen by the write-observer, computed analytically from the mapping
// (Section 5 / Table 2). The expansion of the returned triplet equals the
// VN sequence of the ofmap write events emitted by Generate.
func DeriveWrite(m *Mapping) pattern.Triplet {
	if m.outputStationary() {
		n := m.Bound(LoopK) * m.Bound(LoopS)
		return pattern.Triplet{Eta: n, Kappa: 1, Rho: 1}
	}
	inside, outside := m.splitAroundC()
	return pattern.Triplet{Eta: inside, Kappa: m.Bound(LoopC), Rho: outside}
}

// DeriveRead returns the triplet of the ofmap VN sequence seen by the
// read-observer (partial-sum read-backs). Output-stationary mappings never
// read partials, so the result is Empty; otherwise the ramp tops out one
// below the write ramp (the final version is read by the next layer).
func DeriveRead(m *Mapping) pattern.Triplet {
	if m.outputStationary() {
		return pattern.Empty
	}
	if m.Bound(LoopC) == 2 {
		// Ramp of height 1: a line of ones, canonical Line form.
		inside, outside := m.splitAroundC()
		return pattern.Triplet{Eta: inside * outside, Kappa: 1, Rho: 1}
	}
	inside, outside := m.splitAroundC()
	return pattern.Triplet{Eta: inside, Kappa: m.Bound(LoopC) - 1, Rho: outside}
}

// splitAroundC returns the product of loop bounds strictly inside the C
// loop (η) and strictly outside it (ρ). Absent loops count as inside with
// bound 1.
func (m *Mapping) splitAroundC() (inside, outside int) {
	inside, outside = 1, 1
	pos := -1
	for i, v := range m.Order {
		if v == LoopC {
			pos = i
			break
		}
	}
	if pos < 0 {
		return inside, outside
	}
	for i, v := range m.Order {
		switch {
		case i < pos:
			outside *= m.Bound(v)
		case i > pos:
			inside *= m.Bound(v)
		}
	}
	return inside, outside
}

// WriteVNs extracts the ofmap VN sequence observed by the write-observer
// from an event stream; ReadVNs likewise for the read-observer.
func WriteVNs(events []Event) []int {
	var out []int
	for _, e := range events {
		if e.Tensor == tensor.Ofmap && e.Kind == sim.Write {
			out = append(out, e.VN)
		}
	}
	return out
}

// ReadVNs extracts the ofmap partial-sum VN sequence (read-observer).
func ReadVNs(events []Event) []int {
	var out []int
	for _, e := range events {
		if e.Tensor == tensor.Ofmap && e.Kind == sim.Read {
			out = append(out, e.VN)
		}
	}
	return out
}

// FirstReadBlocks sums the blocks of first-touch ifmap reads (the data the
// MAC_FR register must cover in the next layer's verification).
func FirstReadBlocks(events []Event) int {
	n := 0
	for _, e := range events {
		if e.Tensor == tensor.Ifmap && e.Kind == sim.Read && e.First {
			n += e.Blocks
		}
	}
	return n
}
