package dataflow

import (
	"reflect"
	"testing"
	"testing/quick"

	"seculator/internal/pattern"
	"seculator/internal/sim"
	"seculator/internal/tensor"
)

// equalInts compares element-wise, treating nil and empty as equal.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sampleGrid() GridSpec {
	return GridSpec{
		AlphaHW: 3, AlphaC: 4, AlphaK: 2,
		IfmapTileBlocks: 8, OfmapTileBlocks: 8, WeightTileBlocks: 2,
	}
}

func TestMappingValidate(t *testing.T) {
	m := mapping("ok", InputReuse, LoopOrder{LoopS, LoopC, LoopK}, sampleGrid(), false)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	bad := *m
	bad.Order = LoopOrder{LoopS, LoopS}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate loop var accepted")
	}
	bad = *m
	bad.OfmapTileBlocks = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ofmap tile size accepted")
	}
	bad = *m
	bad.Order = LoopOrder{LoopS, LoopK} // C absent but AlphaC=4
	if err := bad.Validate(); err == nil {
		t.Fatal("absent multi-iteration loop accepted")
	}
}

func TestLoopOrderString(t *testing.T) {
	o := LoopOrder{LoopS, LoopC, LoopK}
	if o.String() != "hT>wT>cT>kT" {
		t.Fatalf("String = %q", o.String())
	}
	if (LoopOrder{}).String() != "(none)" {
		t.Fatal("empty order string")
	}
}

func TestReuseStyleString(t *testing.T) {
	for _, r := range []ReuseStyle{InputReuse, OutputReuse, WeightReuse} {
		if r.String() == "" {
			t.Fatalf("empty string for %d", r)
		}
	}
}

// Table 2 row 1 worked example from the paper: C=2, K=3, one-tile GB.
// Write pattern must be 1,1,1,2,2,2 per spatial tile.
func TestPaperWorkedExample(t *testing.T) {
	m := mapping("worked", InputReuse, LoopOrder{LoopS, LoopC, LoopK},
		GridSpec{AlphaHW: 1, AlphaC: 2, AlphaK: 3, IfmapTileBlocks: 4, OfmapTileBlocks: 4}, false)
	evs, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	wantW := []int{1, 1, 1, 2, 2, 2}
	if got := WriteVNs(evs); !reflect.DeepEqual(got, wantW) {
		t.Fatalf("write VNs = %v, want %v", got, wantW)
	}
	// Reads: each ofmap tile read back once at VN 1 before its second write.
	wantR := []int{1, 1, 1}
	if got := ReadVNs(evs); !reflect.DeepEqual(got, wantR) {
		t.Fatalf("read VNs = %v, want %v", got, wantR)
	}
}

// The central validation: for every pattern-table row, the simulated VN
// streams must match both the analytical derivation (DeriveWrite/DeriveRead)
// and the paper's printed WP/RP expressions.
func TestAllTableRowsMatchPaper(t *testing.T) {
	grids := []GridSpec{
		sampleGrid(),
		{AlphaHW: 1, AlphaC: 2, AlphaK: 3, IfmapTileBlocks: 1, OfmapTileBlocks: 1, WeightTileBlocks: 1},
		{AlphaHW: 4, AlphaC: 3, AlphaK: 1, IfmapTileBlocks: 2, OfmapTileBlocks: 2, WeightTileBlocks: 1},
		{AlphaHW: 2, AlphaC: 5, AlphaK: 4, IfmapTileBlocks: 16, OfmapTileBlocks: 8, WeightTileBlocks: 4},
	}
	for _, entry := range AllTableEntries() {
		for gi, g := range grids {
			m := entry.Build(g)
			if err := m.Validate(); err != nil {
				t.Fatalf("%s row %d grid %d: invalid mapping: %v", entry.Table, entry.Row, gi, err)
			}
			evs, err := Collect(m)
			if err != nil {
				t.Fatalf("%s row %d grid %d: %v", entry.Table, entry.Row, gi, err)
			}
			// Effective grid after the row's Build fixups.
			eff := GridSpec{AlphaHW: m.AlphaHW, AlphaC: m.AlphaC, AlphaK: m.AlphaK}

			gotW := WriteVNs(evs)
			wantW := entry.PaperWP(eff)
			if !equalInts(gotW, wantW.Expand()) {
				t.Errorf("%s row %d grid %d: write VNs %v != paper WP %v",
					entry.Table, entry.Row, gi, pattern.FormatRLE(pattern.RunLengthEncode(gotW)), wantW)
			}
			if dw := DeriveWrite(m); !pattern.Equal(dw, wantW) {
				t.Errorf("%s row %d grid %d: DeriveWrite %v != paper WP %v",
					entry.Table, entry.Row, gi, dw, wantW)
			}

			gotR := ReadVNs(evs)
			wantR := entry.PaperRP(eff)
			if !equalInts(gotR, wantR.Expand()) {
				t.Errorf("%s row %d grid %d: read VNs %v != paper RP %v",
					entry.Table, entry.Row, gi, pattern.FormatRLE(pattern.RunLengthEncode(gotR)), wantR)
			}
			if dr := DeriveRead(m); !pattern.Equal(dr, wantR) {
				t.Errorf("%s row %d grid %d: DeriveRead %v != paper RP %v",
					entry.Table, entry.Row, gi, dr, wantR)
			}
		}
	}
}

// Property: for random mappings, the simulated write/read VN streams always
// match the analytical triplets — the core claim enabling Seculator's VN FSM.
func TestDeriveMatchesSimulationProperty(t *testing.T) {
	orders := []LoopOrder{
		{LoopS, LoopC, LoopK},
		{LoopC, LoopS, LoopK},
		{LoopS, LoopK, LoopC},
		{LoopK, LoopC, LoopS},
		{LoopK, LoopS, LoopC},
		{LoopC, LoopK, LoopS},
	}
	reuses := []ReuseStyle{InputReuse, OutputReuse, WeightReuse}
	f := func(oi, ri, s, c, k uint8) bool {
		m := mapping("prop", reuses[int(ri)%len(reuses)], orders[int(oi)%len(orders)],
			GridSpec{
				AlphaHW: int(s%5) + 1, AlphaC: int(c%5) + 1, AlphaK: int(k%5) + 1,
				IfmapTileBlocks: 2, OfmapTileBlocks: 2, WeightTileBlocks: 1,
			}, false)
		evs, err := Collect(m)
		if err != nil {
			return false
		}
		gotW, _ := pattern.Compress(WriteVNs(evs))
		gotR, _ := pattern.Compress(ReadVNs(evs))
		return pattern.Equal(gotW, DeriveWrite(m)) && pattern.Equal(gotR, DeriveRead(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: conservation — everything written with a non-final VN is read
// back exactly once in-layer, and final writes are never read in-layer.
// This is the structural fact behind the MAC_W = MAC_FR xor MAC_R check.
func TestWriteReadConservationProperty(t *testing.T) {
	f := func(oi, s, c, k uint8) bool {
		orders := []LoopOrder{
			{LoopS, LoopC, LoopK}, {LoopC, LoopS, LoopK}, {LoopS, LoopK, LoopC},
		}
		m := mapping("cons", InputReuse, orders[int(oi)%len(orders)],
			GridSpec{
				AlphaHW: int(s%4) + 1, AlphaC: int(c%4) + 1, AlphaK: int(k%4) + 1,
				IfmapTileBlocks: 1, OfmapTileBlocks: 1,
			}, false)
		evs, err := Collect(m)
		if err != nil {
			return false
		}
		type ver struct {
			tile tensor.TileID
			vn   int
		}
		written := map[ver]bool{}
		finals := map[ver]bool{}
		for _, e := range evs {
			if e.Tensor != tensor.Ofmap {
				continue
			}
			v := ver{e.Tile, e.VN}
			if e.Kind == sim.Write {
				if written[v] {
					return false // same version written twice
				}
				written[v] = true
				if e.Final {
					finals[v] = true
				}
			}
		}
		for _, e := range evs {
			if e.Tensor != tensor.Ofmap || e.Kind != sim.Read {
				continue
			}
			v := ver{e.Tile, e.VN}
			if !written[v] || finals[v] {
				return false // read something never written, or a final
			}
			delete(written, v)
		}
		// Whatever remains unread must be exactly the final writes.
		for v := range written {
			if !finals[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// First-touch marking: every ifmap tile is First exactly once.
func TestIfmapFirstReads(t *testing.T) {
	m := mapping("first", OutputReuse, LoopOrder{LoopS, LoopK, LoopC}, sampleGrid(), false)
	evs, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	firsts := map[tensor.TileID]int{}
	total := map[tensor.TileID]int{}
	for _, e := range evs {
		if e.Tensor != tensor.Ifmap {
			continue
		}
		total[e.Tile]++
		if e.First {
			firsts[e.Tile]++
		}
	}
	wantTiles := m.AlphaC * m.AlphaHW
	if len(total) != wantTiles {
		t.Fatalf("saw %d distinct ifmap tiles, want %d", len(total), wantTiles)
	}
	for tile, n := range firsts {
		if n != 1 {
			t.Fatalf("tile %v marked First %d times", tile, n)
		}
	}
	// Output reuse with K between S and C: each ifmap tile is re-fetched
	// for every k group.
	for tile, n := range total {
		if n != m.AlphaK {
			t.Fatalf("tile %v fetched %d times, want %d", tile, n, m.AlphaK)
		}
	}
	if fb := FirstReadBlocks(evs); fb != wantTiles*m.IfmapTileBlocks {
		t.Fatalf("FirstReadBlocks = %d, want %d", fb, wantTiles*m.IfmapTileBlocks)
	}
}

// Hardware first-read predicate: a tile read is First iff all loop indices
// of loops not binding the tile's identity are zero. This is the pure
// function of loop indices that Seculator's first-read detector implements.
func TestFirstReadIsPureFunctionOfIndices(t *testing.T) {
	for _, entry := range AllTableEntries() {
		m := entry.Build(sampleGrid())
		evs, err := Collect(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evs {
			if e.Kind != sim.Read {
				continue
			}
			var want bool
			switch e.Tensor {
			case tensor.Ifmap:
				want = e.Idx.K == 0 // K does not bind (c, s)
			case tensor.Weight:
				if m.WeightsResident {
					continue // loaded once by definition
				}
				want = e.Idx.S == 0 // S does not bind (k, c)
			default:
				continue
			}
			if e.First != want {
				t.Fatalf("%s row %d: %v read at %+v: First=%v, predicate says %v",
					entry.Table, entry.Row, e.Tensor, e.Idx, e.First, want)
			}
		}
	}
}

// Ifmap residency: with K innermost, each ifmap tile is fetched exactly once.
func TestIfmapResidencyKInnermost(t *testing.T) {
	m := mapping("resident", InputReuse, LoopOrder{LoopS, LoopC, LoopK}, sampleGrid(), false)
	evs, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range evs {
		if e.Tensor == tensor.Ifmap {
			n++
			if !e.First {
				t.Fatal("re-fetch of a resident ifmap tile")
			}
		}
	}
	if n != m.AlphaC*m.AlphaHW {
		t.Fatalf("ifmap fetches = %d, want %d", n, m.AlphaC*m.AlphaHW)
	}
}

func TestWeightsResidentLoadsOnce(t *testing.T) {
	g := sampleGrid()
	m := mapping("wres", WeightReuse, LoopOrder{LoopC, LoopK}, GridSpec{
		AlphaHW: 1, AlphaC: g.AlphaC, AlphaK: g.AlphaK,
		IfmapTileBlocks: 4, OfmapTileBlocks: 4, WeightTileBlocks: 2,
	}, true)
	evs, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range evs {
		if e.Tensor == tensor.Weight {
			n++
		}
	}
	if n != m.AlphaC*m.AlphaK {
		t.Fatalf("weight group loads = %d, want %d", n, m.AlphaC*m.AlphaK)
	}
}

func TestGenerateStops(t *testing.T) {
	m := mapping("stop", InputReuse, LoopOrder{LoopS, LoopC, LoopK}, sampleGrid(), false)
	count := 0
	if err := Generate(m, func(Event) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("visitor called %d times after stop, want 5", count)
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	m := mapping("bad", InputReuse, LoopOrder{LoopS}, sampleGrid(), false)
	if err := Generate(m, func(Event) bool { return true }); err == nil {
		t.Fatal("invalid mapping accepted")
	}
}

func TestLoopVarString(t *testing.T) {
	if LoopS.String() != "hT>wT" || LoopC.String() != "cT" || LoopK.String() != "kT" {
		t.Fatal("LoopVar strings wrong")
	}
}
