package dataflow

import (
	"fmt"

	"seculator/internal/pattern"
)

// GridSpec parameterizes a pattern-table row with a concrete tile grid and
// tile transfer sizes. The alpha factors follow the paper:
// AlphaHW = H*W / (HT*WT), AlphaC = C/CT, AlphaK = K/KT.
type GridSpec struct {
	AlphaHW int
	AlphaC  int
	AlphaK  int

	IfmapTileBlocks  int
	OfmapTileBlocks  int
	WeightTileBlocks int
}

func (g GridSpec) withDefaults() GridSpec {
	if g.AlphaHW < 1 {
		g.AlphaHW = 1
	}
	if g.AlphaC < 1 {
		g.AlphaC = 1
	}
	if g.AlphaK < 1 {
		g.AlphaK = 1
	}
	if g.OfmapTileBlocks < 1 {
		g.OfmapTileBlocks = 1
	}
	if g.IfmapTileBlocks < 0 {
		g.IfmapTileBlocks = 0
	}
	if g.WeightTileBlocks < 0 {
		g.WeightTileBlocks = 0
	}
	return g
}

// TableEntry is one row of one pattern table from the paper, with a
// constructor for the mapping and the analytically expected write/read
// pattern triplets (the paper's WP/RP columns).
type TableEntry struct {
	Table     string // "table2-ir", "table2-or", "table3", "table4", "table8", "table9", "table10-or", "table10-ir"
	Row       int
	Style     string // tiling-style label from the paper
	OrderDesc string // the paper's loop-order notation
	Note      string // discrepancy / clarification notes

	// Build constructs the mapping for a concrete grid.
	Build func(g GridSpec) *Mapping

	// PaperWP/PaperRP give the WP/RP columns of the paper as triplets in
	// terms of the grid. They must agree with DeriveWrite/DeriveRead.
	PaperWP func(g GridSpec) pattern.Triplet
	PaperRP func(g GridSpec) pattern.Triplet
}

func mapping(name string, reuse ReuseStyle, order LoopOrder, g GridSpec, weightsResident bool) *Mapping {
	g = g.withDefaults()
	return &Mapping{
		Name:             name,
		Reuse:            reuse,
		Order:            order,
		AlphaHW:          g.AlphaHW,
		AlphaC:           g.AlphaC,
		AlphaK:           g.AlphaK,
		IfmapTileBlocks:  g.IfmapTileBlocks,
		OfmapTileBlocks:  g.OfmapTileBlocks,
		WeightTileBlocks: g.WeightTileBlocks,
		WeightsResident:  weightsResident,
	}
}

// Triplet helpers for the expected-pattern closures.

func lineOf(n int) pattern.Triplet {
	if n <= 0 {
		return pattern.Empty
	}
	return pattern.Triplet{Eta: n, Kappa: 1, Rho: 1}
}

func rampOf(eta, kappa, rho int) pattern.Triplet {
	if kappa <= 0 || eta*rho <= 0 {
		return pattern.Empty
	}
	if kappa == 1 {
		return lineOf(eta * rho)
	}
	return pattern.Triplet{Eta: eta, Kappa: kappa, Rho: rho}
}

func emptyPattern(GridSpec) pattern.Triplet { return pattern.Empty }

// ConvTableEntries returns every row of Table 2 (conv, input & output reuse)
// and Table 3 (weight reuse).
func ConvTableEntries() []TableEntry {
	var entries []TableEntry

	// ---- Table 2, input reuse ----
	irRamp := func(g GridSpec) pattern.Triplet {
		return rampOf(g.AlphaK, g.AlphaC, g.AlphaHW)
	}
	irRampRead := func(g GridSpec) pattern.Triplet {
		return rampOf(g.AlphaK, g.AlphaC-1, g.AlphaHW)
	}
	entries = append(entries,
		TableEntry{
			Table: "table2-ir", Row: 1, Style: "Partial channel",
			OrderDesc: "hT>wT>c>kT",
			Build: func(g GridSpec) *Mapping {
				return mapping("t2r1-ir", InputReuse, LoopOrder{LoopS, LoopC, LoopK}, g, false)
			},
			PaperWP: irRamp, PaperRP: irRampRead,
		},
		TableEntry{
			Table: "table2-ir", Row: 2, Style: "Partial-multi-channel",
			OrderDesc: "hT>wT>cT>kT",
			Build: func(g GridSpec) *Mapping {
				return mapping("t2r2-ir", InputReuse, LoopOrder{LoopS, LoopC, LoopK}, g, false)
			},
			PaperWP: irRamp, PaperRP: irRampRead,
		},
		TableEntry{
			Table: "table2-ir", Row: 3, Style: "Partial channel (w/h movement)",
			OrderDesc: "c>hT>wT>kT",
			Build: func(g GridSpec) *Mapping {
				return mapping("t2r3-ir", InputReuse, LoopOrder{LoopC, LoopS, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaK*g.AlphaHW, g.AlphaC, 1)
			},
			PaperRP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaK*g.AlphaHW, g.AlphaC-1, 1)
			},
		},
		TableEntry{
			Table: "table2-ir", Row: 4, Style: "Partial-multi-channel (w/h movement)",
			OrderDesc: "cT>hT>wT>kT",
			Build: func(g GridSpec) *Mapping {
				return mapping("t2r4-ir", InputReuse, LoopOrder{LoopC, LoopS, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaK*g.AlphaHW, g.AlphaC, 1)
			},
			PaperRP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaK*g.AlphaHW, g.AlphaC-1, 1)
			},
		},
		TableEntry{
			Table: "table2-ir", Row: 5, Style: "Channel-wise",
			OrderDesc: "c>kT (cT>kT)", Note: "AlphaHW must be 1: a tile is a whole channel",
			Build: func(g GridSpec) *Mapping {
				g.AlphaHW = 1
				return mapping("t2r5-ir", InputReuse, LoopOrder{LoopC, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaK, g.AlphaC, 1) },
			PaperRP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaK, g.AlphaC-1, 1) },
		},
		TableEntry{
			Table: "table2-ir", Row: 6, Style: "Full-channel",
			OrderDesc: "hT>wT>kT", Note: "AlphaC must be 1: all input channels resident",
			Build: func(g GridSpec) *Mapping {
				g.AlphaC = 1
				return mapping("t2r6-ir", InputReuse, LoopOrder{LoopS, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK * g.AlphaHW) },
			PaperRP: emptyPattern,
		},
	)

	// ---- Table 2, output reuse ----
	orLine := func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK * g.AlphaHW) }
	entries = append(entries,
		TableEntry{
			Table: "table2-or", Row: 1, Style: "Partial channel",
			OrderDesc: "hT>wT>kT>c",
			Build: func(g GridSpec) *Mapping {
				return mapping("t2r1-or", OutputReuse, LoopOrder{LoopS, LoopK, LoopC}, g, false)
			},
			PaperWP: orLine, PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table2-or", Row: 2, Style: "Partial-multi-channel",
			OrderDesc: "hT>wT>kT>cT",
			Build: func(g GridSpec) *Mapping {
				return mapping("t2r2-or", OutputReuse, LoopOrder{LoopS, LoopK, LoopC}, g, false)
			},
			PaperWP: orLine, PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table2-or", Row: 5, Style: "Channel-wise",
			OrderDesc: "kT>c (kT>cT)", Note: "AlphaHW must be 1",
			Build: func(g GridSpec) *Mapping {
				g.AlphaHW = 1
				return mapping("t2r5-or", OutputReuse, LoopOrder{LoopK, LoopC}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK) },
			PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table2-or", Row: 6, Style: "Full-channel",
			OrderDesc: "hT>wT>kT", Note: "AlphaC must be 1",
			Build: func(g GridSpec) *Mapping {
				g.AlphaC = 1
				return mapping("t2r6-or", OutputReuse, LoopOrder{LoopS, LoopK}, g, false)
			},
			PaperWP: orLine, PaperRP: emptyPattern,
		},
	)

	// ---- Table 3, weight reuse ----
	entries = append(entries,
		TableEntry{
			Table: "table3", Row: 1, Style: "Multi-channel wise (filter movement)",
			OrderDesc: "cT>kT", Note: "tiles are whole fmaps: AlphaHW must be 1",
			Build: func(g GridSpec) *Mapping {
				g.AlphaHW = 1
				return mapping("t3r1", WeightReuse, LoopOrder{LoopC, LoopK}, g, true)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaK, g.AlphaC, 1) },
			PaperRP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaK, g.AlphaC-1, 1) },
		},
		TableEntry{
			Table: "table3", Row: 2, Style: "Channel-wise",
			OrderDesc: "kT>c", Note: "AlphaHW must be 1; C innermost keeps the ofmap group stationary",
			Build: func(g GridSpec) *Mapping {
				g.AlphaHW = 1
				return mapping("t3r2", WeightReuse, LoopOrder{LoopK, LoopC}, g, true)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK) },
			PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table3", Row: 3, Style: "Full-filter",
			OrderDesc: "kT", Note: "AlphaHW and AlphaC must be 1",
			Build: func(g GridSpec) *Mapping {
				g.AlphaHW, g.AlphaC = 1, 1
				return mapping("t3r3", WeightReuse, LoopOrder{LoopK}, g, true)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK) },
			PaperRP: emptyPattern,
		},
	)
	return entries
}

// MatmulTableEntries returns Table 4: tiled matrix multiplication R = P x Q
// with P of H x C and Q of C x W. The engine's K axis carries the output row
// tiles (alphaH) and the S axis the output column tiles (alphaW); C is the
// shared reduction dimension.
func MatmulTableEntries() []TableEntry {
	return []TableEntry{
		{
			Table: "table4", Row: 1, Style: "Fix P",
			OrderDesc: "hT>cT>wT",
			Build: func(g GridSpec) *Mapping {
				// K axis = row tiles (outer), S axis = column tiles (inner).
				return mapping("t4r1", InputReuse, LoopOrder{LoopK, LoopC, LoopS}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaHW, g.AlphaC, g.AlphaK) // (1^aW..aC^aW)^aH
			},
			PaperRP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaHW, g.AlphaC-1, g.AlphaK)
			},
		},
		{
			Table: "table4", Row: 2, Style: "Fix Q",
			OrderDesc: "cT>wT>hT",
			Note: "the paper's WP (1^aH..aC^aH)^aW corresponds to nest wT>cT>hT; " +
				"the printed order cT>wT>hT appears to transpose the outer loops",
			Build: func(g GridSpec) *Mapping {
				// S axis = column tiles (outer), K axis = row tiles (inner).
				return mapping("t4r2", InputReuse, LoopOrder{LoopS, LoopC, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaK, g.AlphaC, g.AlphaHW) // (1^aH..aC^aH)^aW
			},
			PaperRP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaK, g.AlphaC-1, g.AlphaHW)
			},
		},
		{
			Table: "table4", Row: 3, Style: "Fix R",
			OrderDesc: "wT>hT>cT", Note: "C innermost: every R tile is fully reduced before store",
			Build: func(g GridSpec) *Mapping {
				return mapping("t4r3", InputReuse, LoopOrder{LoopS, LoopK, LoopC}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaHW * g.AlphaK) },
			PaperRP: emptyPattern,
		},
	}
}

// PreprocTableEntries returns Tables 8-10: image pre-processing and pooling
// pattern tables for computation Styles 1-3.
func PreprocTableEntries() []TableEntry {
	var entries []TableEntry

	// ---- Table 8, Style-1: Sx = Tx(X). One output channel per input
	// channel, no cross-channel reduction (AlphaC = 1 semantically).
	style1 := func(row int, style, orderDesc string, order LoopOrder,
		wp func(GridSpec) pattern.Triplet, fix func(*GridSpec)) TableEntry {
		return TableEntry{
			Table: "table8", Row: row, Style: style, OrderDesc: orderDesc,
			Note: "Style-1: no reduction, AlphaC fixed to 1",
			Build: func(g GridSpec) *Mapping {
				g.AlphaC = 1
				if fix != nil {
					fix(&g)
				}
				return mapping(fmt.Sprintf("t8r%d", row), OutputReuse, order, g, false)
			},
			PaperWP: wp, PaperRP: emptyPattern,
		}
	}
	entries = append(entries,
		style1(1, "Channel-wise", "k", LoopOrder{LoopK},
			func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK) },
			func(g *GridSpec) { g.AlphaHW = 1 }),
		style1(2, "Multi-channel", "kT", LoopOrder{LoopK},
			func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK) },
			func(g *GridSpec) { g.AlphaHW = 1 }),
		style1(3, "Partial channel", "h>w>kT", LoopOrder{LoopS, LoopK},
			func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK * g.AlphaHW) }, nil),
		style1(4, "Partial-multi-channel", "hT>wT>kT", LoopOrder{LoopS, LoopK},
			func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK * g.AlphaHW) }, nil),
		style1(5, "Full-channel", "hT>wT", LoopOrder{LoopS},
			func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaHW) },
			func(g *GridSpec) { g.AlphaK = 1 }),
	)

	// ---- Table 9, Style-2: S = T(R,G,B). All input channels fold into a
	// single output channel (AlphaK = 1).
	entries = append(entries,
		TableEntry{
			Table: "table9", Row: 1, Style: "Channel-wise", OrderDesc: "c (cT)",
			Note: "whole channels resident; single accumulated output write. " +
				"The paper prints RP:1, which we read as the trivial self-read " +
				"of the final tile by the next layer; in-layer RP is empty",
			Build: func(g GridSpec) *Mapping {
				g.AlphaHW, g.AlphaK = 1, 1
				return mapping("t9r1", OutputReuse, LoopOrder{LoopC}, g, false)
			},
			PaperWP: func(GridSpec) pattern.Triplet { return lineOf(1) },
			PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table9", Row: 3, Style: "Partial channel (channel movement)",
			OrderDesc: "hT>wT>c",
			Build: func(g GridSpec) *Mapping {
				g.AlphaK = 1
				return mapping("t9r3", InputReuse, LoopOrder{LoopS, LoopC}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaHW) },
			PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table9", Row: 5, Style: "Partial channel (w/h movement)",
			OrderDesc: "c>hT>wT",
			Build: func(g GridSpec) *Mapping {
				g.AlphaK = 1
				return mapping("t9r5", InputReuse, LoopOrder{LoopC, LoopS}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaHW, g.AlphaC, 1) },
			PaperRP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaHW, g.AlphaC-1, 1) },
		},
		TableEntry{
			Table: "table9", Row: 7, Style: "Full-channel", OrderDesc: "hT>wT",
			Build: func(g GridSpec) *Mapping {
				g.AlphaK, g.AlphaC = 1, 1
				return mapping("t9r7", InputReuse, LoopOrder{LoopS}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaHW) },
			PaperRP: emptyPattern,
		},
	)

	// ---- Table 10, Style-3: Si = Ti(R,G,B). Multiple transformed outputs
	// from all input channels; structurally identical to convolution.
	entries = append(entries,
		TableEntry{
			Table: "table10-or", Row: 1, Style: "Channel-wise", OrderDesc: "c>kT",
			Note: "all K output fmaps resident and accumulated; single write each",
			Build: func(g GridSpec) *Mapping {
				g.AlphaHW = 1
				return mapping("t10r1-or", OutputReuse, LoopOrder{LoopC, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK) },
			PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table10-ir", Row: 1, Style: "Channel-wise", OrderDesc: "kT>c",
			Note: "paper's WP ramp implies the nest c>kT (k innermost); Table 10 " +
				"transposes IR loop orders relative to Table 2's convention",
			Build: func(g GridSpec) *Mapping {
				g.AlphaHW = 1
				return mapping("t10r1-ir", InputReuse, LoopOrder{LoopC, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaK, g.AlphaC, 1) },
			PaperRP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaK, g.AlphaC-1, 1) },
		},
		TableEntry{
			Table: "table10-or", Row: 3, Style: "Partial channel (channel movement)",
			OrderDesc: "hT>wT>kT>c",
			Build: func(g GridSpec) *Mapping {
				return mapping("t10r3-or", OutputReuse, LoopOrder{LoopS, LoopK, LoopC}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK * g.AlphaHW) },
			PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table10-ir", Row: 3, Style: "Partial channel (channel movement)",
			OrderDesc: "kT>hT>wT>c",
			Note:      "WP (1^aK..aC^aK)^aHW implies nest hT>wT>c>kT",
			Build: func(g GridSpec) *Mapping {
				return mapping("t10r3-ir", InputReuse, LoopOrder{LoopS, LoopC, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaK, g.AlphaC, g.AlphaHW) },
			PaperRP: func(g GridSpec) pattern.Triplet { return rampOf(g.AlphaK, g.AlphaC-1, g.AlphaHW) },
		},
		TableEntry{
			Table: "table10-ir", Row: 5, Style: "Partial channel (w/h movement)",
			OrderDesc: "kT>hT>wT>c",
			Note:      "WP 1^(aK aHW)..aC^(aK aHW) implies nest c>hT>wT>kT",
			Build: func(g GridSpec) *Mapping {
				return mapping("t10r5-ir", InputReuse, LoopOrder{LoopC, LoopS, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaK*g.AlphaHW, g.AlphaC, 1)
			},
			PaperRP: func(g GridSpec) pattern.Triplet {
				return rampOf(g.AlphaK*g.AlphaHW, g.AlphaC-1, 1)
			},
		},
		TableEntry{
			Table: "table10-or", Row: 7, Style: "Full-channel", OrderDesc: "hT>wT>kT",
			Build: func(g GridSpec) *Mapping {
				g.AlphaC = 1
				return mapping("t10r7-or", OutputReuse, LoopOrder{LoopS, LoopK}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaK * g.AlphaHW) },
			PaperRP: emptyPattern,
		},
		TableEntry{
			Table: "table10-ir", Row: 7, Style: "Full-channel", OrderDesc: "kT>hT>wT",
			Build: func(g GridSpec) *Mapping {
				g.AlphaC = 1
				return mapping("t10r7-ir", InputReuse, LoopOrder{LoopK, LoopS}, g, false)
			},
			PaperWP: func(g GridSpec) pattern.Triplet { return lineOf(g.AlphaHW * g.AlphaK) },
			PaperRP: emptyPattern,
		},
	)
	return entries
}

// AllTableEntries returns every pattern-table row in paper order.
func AllTableEntries() []TableEntry {
	var all []TableEntry
	all = append(all, ConvTableEntries()...)
	all = append(all, MatmulTableEntries()...)
	all = append(all, PreprocTableEntries()...)
	return all
}
