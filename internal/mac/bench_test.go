package mac

import (
	"crypto/sha256"
	"testing"

	"seculator/internal/tensor"
)

// BenchmarkXORMACFold measures the per-block integrity path: SHA-256 block
// MAC plus the XOR-MAC register fold. Blocks up to maxInlineData bytes take
// the single-shot sha256.Sum256 fast path, which keeps the whole fold
// allocation-free (see -benchmem).
func BenchmarkXORMACFold(b *testing.B) {
	data := make([]byte, tensor.BlockBytes)
	var reg Register
	b.SetBytes(tensor.BlockBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Fold(BlockMAC(BlockRef{Layer: 1, Index: uint32(i)}, data))
	}
}

// BenchmarkBlockMACLarge exercises the streaming fallback for payloads past
// the inline threshold; this path allocates (hash state) and exists only
// for oversized callers outside the simulator's 64-byte block hot path.
func BenchmarkBlockMACLarge(b *testing.B) {
	data := make([]byte, 4*tensor.BlockBytes)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BlockMAC(BlockRef{Layer: 1, Index: uint32(i)}, data)
	}
}

// TestBlockMACAllocFree pins the fast path's zero-allocation property for
// simulator-sized blocks.
func TestBlockMACAllocFree(t *testing.T) {
	data := make([]byte, tensor.BlockBytes)
	var reg Register
	allocs := testing.AllocsPerRun(100, func() {
		reg.Fold(BlockMAC(BlockRef{Layer: 3, Index: 9}, data))
	})
	if allocs > 0 {
		t.Errorf("BlockMAC+Fold: %.0f allocs/op, want 0", allocs)
	}
}

// BenchmarkFoldRow measures the batched row-MAC path used by host weight
// loads and residency builds: header built once per row, index patched per
// block, caller-owned scratch — zero allocations per row.
func BenchmarkFoldRow(b *testing.B) {
	const blocks = 64
	data := make([]byte, blocks*tensor.BlockBytes)
	var h RowHasher
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = h.FoldRow(BlockRef{Layer: 1, Fmap: uint32(i)}, data)
	}
}

// TestFoldRowAllocFree pins the batched path's zero-allocation property:
// the scratch lives in the caller-owned RowHasher, so an entire model load
// reuses one buffer.
func TestFoldRowAllocFree(t *testing.T) {
	data := make([]byte, 32*tensor.BlockBytes)
	var h RowHasher
	var p PartialBank
	allocs := testing.AllocsPerRun(100, func() {
		_ = p.OnWriteRow(BlockRef{Layer: 5, Index: 2}, data, &h)
	})
	if allocs > 0 {
		t.Errorf("FoldRow via OnWriteRow: %.0f allocs/op, want 0", allocs)
	}
}

// TestFoldRowMatchesPerBlock: the row fold must be bit-equal to folding
// each block's MAC individually, so callers can swap loops for FoldRow
// without changing any golden digest.
func TestFoldRowMatchesPerBlock(t *testing.T) {
	const blocks = 7
	data := make([]byte, blocks*tensor.BlockBytes)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	ref := BlockRef{Secret: 0xabc, Layer: 4, Fmap: 2, VN: 9, Index: 100}
	got, n := new(RowHasher).FoldRow(ref, data)
	if n != blocks {
		t.Fatalf("FoldRow count = %d, want %d", n, blocks)
	}
	var want Digest
	for b := 0; b < blocks; b++ {
		r := ref
		r.Index += uint32(b)
		want = want.Xor(BlockMAC(r, data[b*tensor.BlockBytes:(b+1)*tensor.BlockBytes]))
	}
	if got != want {
		t.Errorf("FoldRow %v != per-block fold %v", got, want)
	}
}

// TestBlockMACFastSlowAgree: the inline fast path and the streaming
// fallback must produce identical digests at the boundary.
func TestBlockMACFastSlowAgree(t *testing.T) {
	ref := BlockRef{Layer: 2, Index: 5}
	for _, n := range []int{0, 1, maxInlineData - 1, maxInlineData, maxInlineData + 1, 256} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 31)
		}
		got := BlockMAC(ref, data)
		want := streamingBlockMAC(ref, data)
		if got != want {
			t.Errorf("len=%d: fast path %v != streaming %v", n, got, want)
		}
	}
}

// streamingBlockMAC is an independent reference: always hash through a
// hash.Hash, never the inline buffer.
func streamingBlockMAC(ref BlockRef, data []byte) Digest {
	h := sha256.New()
	var hdr [hdrSize]byte
	putHeader(hdr[:], ref)
	h.Write(hdr[:])
	h.Write(data)
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}
