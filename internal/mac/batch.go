package mac

import (
	"crypto/sha256"
	"encoding/binary"
)

// batch.go — batched XOR-MAC folding over rows of consecutive blocks.
//
// The per-block path (BlockMAC) rebuilds the full 24-byte header for every
// 64-byte block. But the bulk producers — host weight load, residency
// build, residency epoch re-verification — always MAC *rows*: runs of
// blocks that share Secret/Layer/Fmap/VN and differ only in the block
// index. RowHasher assembles the header once per row and patches only the
// index field per block, hashing many blocks per call with zero heap
// allocations (the message buffer is caller-owned scratch inside the
// hasher value, so one hasher amortizes across an entire model load).

// RowHasher is caller-owned scratch for batched row-MAC folding. The zero
// value is ready to use. Not safe for concurrent use — give each worker
// its own (it is 88 bytes; embed it or stack-allocate it).
type RowHasher struct {
	buf [hdrSize + maxInlineData]byte
}

// FoldRow returns the XOR of BlockMAC(ref with Index+i, block i) over all
// len(data)/64 consecutive 64-byte blocks in data, plus the block count.
// data must be a whole number of 64-byte blocks. The result is bit-equal
// to folding each BlockMAC individually (XOR is commutative), so callers
// can swap per-block loops for one FoldRow call without changing any
// golden digest.
func (h *RowHasher) FoldRow(ref BlockRef, data []byte) (Digest, int) {
	n := len(data) / maxInlineData
	if n == 0 {
		return Digest{}, 0
	}
	putHeader(h.buf[:hdrSize], ref)
	var acc Digest
	for b := 0; b < n; b++ {
		binary.BigEndian.PutUint32(h.buf[20:24], ref.Index+uint32(b))
		copy(h.buf[hdrSize:], data[b*maxInlineData:(b+1)*maxInlineData])
		d := Digest(sha256.Sum256(h.buf[:]))
		for i := range acc {
			acc[i] ^= d[i]
		}
	}
	return acc, n
}

// OnWriteRow folds a whole row of written blocks into the bank's W
// register in one call: the row's XOR-MAC lands in the accumulator and the
// fold count advances by the block count, exactly as n individual OnWrite
// calls would leave it. h is the caller's scratch (see RowHasher).
func (p *PartialBank) OnWriteRow(ref BlockRef, data []byte, h *RowHasher) Digest {
	d, n := h.FoldRow(ref, data)
	p.W.value = p.W.value.Xor(d)
	p.W.folds += uint64(n)
	return d
}
