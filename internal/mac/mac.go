// Package mac implements Seculator's layer-level integrity scheme
// (Section 6.4). A 32-byte MAC is computed per 64-byte block as
//
//	MAC = SHA256(P || L || F || VN || I || B)
//
// where P is the accelerator's secret ID, L the layer ID, F the fmap ID,
// VN the version number, I the block index within the fmap, and B the block
// contents — but instead of storing MACs, they are XOR-folded into four
// on-chip 256-bit registers:
//
//	MAC_W  — everything written this layer
//	MAC_R  — every partial ofmap read back this layer
//	MAC_FR — every ifmap block read for the FIRST time this layer,
//	         computed with the PREVIOUS layer's ID and final VN so it
//	         matches what that layer folded into its MAC_W
//	MAC_IR — every ifmap block read this layer (first and repeat)
//
// Because in a layer everything written is read back except the final
// versions — which the next layer reads as its first-touch inputs — the
// single check MAC_W = MAC_FR ⊕ MAC_R (Equation 1) verifies integrity,
// freshness and completeness of an entire layer's data. The XOR fold is
// Bellare et al.'s XOR-MAC, secure because each folded MAC binds a unique
// (layer, fmap, VN, index) position.
//
// Verification of layer i's writes completes only while layer i+1 runs, so
// the hardware keeps two register banks that alternate between even and odd
// layers; LayerChecker models exactly that.
package mac

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the MAC register width in bytes (SHA-256 digest).
const Size = sha256.Size

// Digest is a 256-bit MAC value / XOR-MAC register.
type Digest [Size]byte

// IsZero reports whether every bit of the digest is zero.
func (d Digest) IsZero() bool { return d == Digest{} }

// Xor returns d ⊕ o.
func (d Digest) Xor(o Digest) Digest {
	var out Digest
	for i := range d {
		out[i] = d[i] ^ o[i]
	}
	return out
}

// String renders the first 8 bytes, enough to identify a digest in logs.
func (d Digest) String() string { return fmt.Sprintf("%x…", d[:8]) }

// BlockRef identifies the position a block MAC binds: all the non-data
// inputs of the MAC computation.
type BlockRef struct {
	Secret uint64 // accelerator secret ID (P)
	Layer  uint32 // producing layer ID (L)
	Fmap   uint32 // fmap ID (F)
	VN     uint32 // version number
	Index  uint32 // block index within the fmap (I)
}

// hdrSize is the serialized BlockRef prefix: P(8) L(4) F(4) VN(4) I(4).
const hdrSize = 24

// maxInlineData sizes the stack buffer of BlockMAC's allocation-free fast
// path; 64 covers the simulator's one block size (tensor.BlockBytes).
const maxInlineData = 64

// BlockMAC computes SHA256(P || L || F || VN || I || B).
//
// For data up to 64 bytes — every caller in the simulator; blocks are
// 64-byte DRAM lines — the message is assembled in a stack buffer and
// hashed with sha256.Sum256, so the per-block MAC path performs zero heap
// allocations. Longer data streams through a hash.Hash.
func BlockMAC(ref BlockRef, data []byte) Digest {
	if len(data) <= maxInlineData {
		var buf [hdrSize + maxInlineData]byte
		putHeader(buf[:hdrSize], ref)
		copy(buf[hdrSize:], data)
		return Digest(sha256.Sum256(buf[:hdrSize+len(data)]))
	}
	h := sha256.New()
	var hdr [hdrSize]byte
	putHeader(hdr[:], ref)
	h.Write(hdr[:])
	h.Write(data)
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

func putHeader(hdr []byte, ref BlockRef) {
	binary.BigEndian.PutUint64(hdr[0:8], ref.Secret)
	binary.BigEndian.PutUint32(hdr[8:12], ref.Layer)
	binary.BigEndian.PutUint32(hdr[12:16], ref.Fmap)
	binary.BigEndian.PutUint32(hdr[16:20], ref.VN)
	binary.BigEndian.PutUint32(hdr[20:24], ref.Index)
}

// Register is one XOR-MAC accumulator.
type Register struct {
	value Digest
	folds uint64
}

// Fold XORs m into the register.
func (r *Register) Fold(m Digest) {
	r.value = r.value.Xor(m)
	r.folds++
}

// Value returns the accumulated digest.
func (r *Register) Value() Digest { return r.value }

// Folds returns how many MACs have been folded in.
func (r *Register) Folds() uint64 { return r.folds }

// Reset clears the register.
func (r *Register) Reset() { *r = Register{} }

// Merge folds another register's accumulated state into r — the reduction
// step of a sharded XOR-MAC. Because XOR is commutative and associative,
// merging per-shard partial registers in any order yields exactly the value
// a single register folding every MAC serially would hold; the fold counts
// add for the same reason.
func (r *Register) Merge(o Register) {
	r.value = r.value.Xor(o.value)
	r.folds += o.folds
}

// PartialBank is a shard-private set of the four XOR-MAC accumulators. A
// worker folds the block MACs of its slice of a tile into its own partial
// bank — no locks, no sharing — and the orchestrator reduces all partial
// banks into the layer's real bank with LayerChecker.FoldBank once the
// shards have joined. Soundness rests on the XOR-MAC itself: each folded
// MAC binds a unique (layer, fmap, VN, index) position, so the fold order
// across shards is immaterial (see Register.Merge).
type PartialBank struct {
	W  Register // writes
	R  Register // in-layer partial reads
	FR Register // first reads of the previous layer's outputs
	IR Register // all ifmap reads (first + repeats)
}

// OnWrite folds the MAC of a block being written.
func (p *PartialBank) OnWrite(m Digest) { p.W.Fold(m) }

// OnPartialRead folds the MAC of a partial ofmap block read back in-layer.
func (p *PartialBank) OnPartialRead(m Digest) { p.R.Fold(m) }

// OnFirstRead folds the MAC of an ifmap block touched for the first time
// this layer (FR and IR, mirroring LayerChecker.OnFirstRead).
func (p *PartialBank) OnFirstRead(m Digest) {
	p.FR.Fold(m)
	p.IR.Fold(m)
}

// OnRepeatRead folds the MAC of an ifmap block re-read after its first touch.
func (p *PartialBank) OnRepeatRead(m Digest) { p.IR.Fold(m) }

// Folds returns the total number of MACs folded across the four registers.
func (p *PartialBank) Folds() uint64 {
	return p.W.folds + p.R.folds + p.FR.folds + p.IR.folds
}

// Reset clears the bank for reuse.
func (p *PartialBank) Reset() { *p = PartialBank{} }

// Bank is the register set for one layer in flight.
type Bank struct {
	W  Register // writes
	R  Register // in-layer partial reads
	FR Register // first reads of the previous layer's outputs
	IR Register // all ifmap reads (first + repeats)

	layer  uint32
	active bool
}

// Reset clears the bank for a new layer.
func (b *Bank) Reset(layer uint32) {
	*b = Bank{layer: layer, active: true}
}

// ErrIntegrity is returned when a layer's MAC verification fails — in
// hardware this raises the security-breach signal and forces a reboot.
var ErrIntegrity = errors.New("mac: layer integrity verification failed")

// ErrProtocol is returned on misuse of the checker (e.g. verifying a layer
// that never ran).
var ErrProtocol = errors.New("mac: checker protocol violation")

// LayerChecker drives the two alternating register banks across the layers
// of a network, implementing the Equation 1 check
//
//	MAC_W(i) == MAC_R(i) ⊕ MAC_FR(i+1)
//
// and the read-only re-read check on MAC_IR: every ifmap tile is read the
// same deterministic number of times (known from the mapping), so the IR
// register must equal zero after an even number of sweeps and MAC_FR after
// an odd number.
type LayerChecker struct {
	banks [2]Bank
	cur   int  // index of the bank accumulating the current layer
	ran   bool // at least one layer begun
}

// Begin starts accumulating a new layer. The verification of the previous
// layer's writes remains pending until the new layer's first reads complete;
// call VerifyPrevious (typically at the end of the new layer) to check it.
func (c *LayerChecker) Begin(layer uint32) {
	if c.ran {
		c.cur ^= 1
	}
	c.banks[c.cur].Reset(layer)
	c.ran = true
}

// Current returns the bank of the layer in flight.
func (c *LayerChecker) Current() *Bank {
	return &c.banks[c.cur]
}

// Restart clears the current layer's bank without advancing to the other
// one — the recovery primitive: when the in-flight layer's verification
// fails and the executor re-fetches and re-executes it, the layer's own
// accumulated folds must be discarded while the previous layer's pending
// bank stays intact for the re-verification.
func (c *LayerChecker) Restart() {
	if !c.ran {
		return
	}
	b := c.Current()
	b.Reset(b.layer)
}

// Tamper XORs mask into the first byte of one register of the current bank
// ("W", "R", "FR" or "IR") — the fault-injection model of an on-chip MAC
// register upset. Unknown names are ignored.
func (c *LayerChecker) Tamper(register string, mask byte) {
	if !c.ran || mask == 0 {
		return
	}
	b := c.Current()
	var r *Register
	switch register {
	case "W":
		r = &b.W
	case "R":
		r = &b.R
	case "FR":
		r = &b.FR
	case "IR":
		r = &b.IR
	default:
		return
	}
	var d Digest
	d[0] = mask
	r.value = r.value.Xor(d)
}

// previous returns the other bank (last layer), or nil before layer two.
func (c *LayerChecker) previous() *Bank {
	b := &c.banks[c.cur^1]
	if !b.active {
		return nil
	}
	return b
}

// OnWrite folds the MAC of a block being written.
func (c *LayerChecker) OnWrite(m Digest) { c.Current().W.Fold(m) }

// OnPartialRead folds the MAC of a partial ofmap block read back in-layer.
func (c *LayerChecker) OnPartialRead(m Digest) { c.Current().R.Fold(m) }

// OnFirstRead folds the MAC of an ifmap block touched for the first time.
// The caller must compute m with the previous layer's ID and final VN.
func (c *LayerChecker) OnFirstRead(m Digest) {
	b := c.Current()
	b.FR.Fold(m)
	b.IR.Fold(m)
}

// OnRepeatRead folds the MAC of an ifmap block re-read after its first touch.
func (c *LayerChecker) OnRepeatRead(m Digest) { c.Current().IR.Fold(m) }

// FoldBank reduces a shard's partial bank into the current layer's bank —
// the join step of the commutative XOR-fold tree. Reducing the partial
// banks in any order produces registers bit-identical to the serial fold
// (see PartialBank).
func (c *LayerChecker) FoldBank(p *PartialBank) {
	b := c.Current()
	b.W.Merge(p.W)
	b.R.Merge(p.R)
	b.FR.Merge(p.FR)
	b.IR.Merge(p.IR)
}

// VerifyPrevious runs Equation 1 for the previous layer, consuming its
// bank: MAC_W(prev) must equal MAC_R(prev) ⊕ MAC_FR(current). external is
// XORed into the expected side to account for final outputs that are NOT
// consumed by the current layer (for the last layer the host supplies it);
// pass the zero Digest when the current layer reads everything.
func (c *LayerChecker) VerifyPrevious(external Digest) error {
	prev := c.previous()
	if prev == nil {
		return fmt.Errorf("%w: no previous layer to verify", ErrProtocol)
	}
	want := prev.R.Value().Xor(c.Current().FR.Value()).Xor(external)
	if prev.W.Value() != want {
		return fmt.Errorf("%w: layer %d: MAC_W=%v, MAC_R⊕MAC_FR=%v",
			ErrIntegrity, prev.layer, prev.W.Value(), want)
	}
	prev.active = false
	return nil
}

// VerifyFirstLayerInputs checks the current layer's first reads against a
// golden XOR-MAC provided by the host for data it wrote itself (the model
// input for layer 0, or weights): the FR register must match it exactly.
func (c *LayerChecker) VerifyFirstLayerInputs(golden Digest) error {
	if !c.ran {
		return fmt.Errorf("%w: no layer in flight", ErrProtocol)
	}
	if got := c.Current().FR.Value(); got != golden {
		return fmt.Errorf("%w: layer %d inputs: FR=%v, golden=%v",
			ErrIntegrity, c.Current().layer, got, golden)
	}
	return nil
}

// VerifyRereads checks the IR register invariant for the current layer:
// with every ifmap block read exactly `sweeps` times (deterministic from
// the mapping), IR must be zero for even sweeps and equal FR for odd.
func (c *LayerChecker) VerifyRereads(sweeps int) error {
	if !c.ran {
		return fmt.Errorf("%w: no layer in flight", ErrProtocol)
	}
	b := c.Current()
	var want Digest
	if sweeps%2 == 1 {
		want = b.FR.Value()
	}
	if got := b.IR.Value(); got != want {
		return fmt.Errorf("%w: layer %d re-reads: IR=%v, want %v (sweeps=%d)",
			ErrIntegrity, b.layer, got, want, sweeps)
	}
	return nil
}

// FinalW returns the W register of the layer in flight — after the last
// layer this is what the host uses to verify the network outputs it reads.
func (c *LayerChecker) FinalW() Digest { return c.Current().W.Value() }
