package mac

import (
	"errors"
	"testing"
	"testing/quick"
)

func blockData(seed byte) []byte {
	b := make([]byte, 64)
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

func TestDigestXor(t *testing.T) {
	a := BlockMAC(BlockRef{Secret: 1}, blockData(1))
	b := BlockMAC(BlockRef{Secret: 2}, blockData(2))
	if a.Xor(b) != b.Xor(a) {
		t.Fatal("Xor must commute")
	}
	if !a.Xor(a).IsZero() {
		t.Fatal("a^a must be zero")
	}
	if a.Xor(Digest{}) != a {
		t.Fatal("a^0 must be a")
	}
}

func TestBlockMACBindsEveryField(t *testing.T) {
	data := blockData(5)
	base := BlockRef{Secret: 9, Layer: 1, Fmap: 2, VN: 3, Index: 4}
	ref := BlockMAC(base, data)
	variants := []BlockRef{
		{Secret: 10, Layer: 1, Fmap: 2, VN: 3, Index: 4},
		{Secret: 9, Layer: 2, Fmap: 2, VN: 3, Index: 4},
		{Secret: 9, Layer: 1, Fmap: 3, VN: 3, Index: 4},
		{Secret: 9, Layer: 1, Fmap: 2, VN: 4, Index: 4},
		{Secret: 9, Layer: 1, Fmap: 2, VN: 3, Index: 5},
	}
	for _, v := range variants {
		if BlockMAC(v, data) == ref {
			t.Fatalf("MAC did not bind field change: %+v", v)
		}
	}
	tampered := append([]byte(nil), data...)
	tampered[17] ^= 1
	if BlockMAC(base, tampered) == ref {
		t.Fatal("MAC did not bind data")
	}
	if BlockMAC(base, data) != ref {
		t.Fatal("MAC must be deterministic")
	}
}

func TestRegister(t *testing.T) {
	var r Register
	m1 := BlockMAC(BlockRef{Index: 1}, blockData(1))
	m2 := BlockMAC(BlockRef{Index: 2}, blockData(2))
	r.Fold(m1)
	r.Fold(m2)
	if r.Folds() != 2 {
		t.Fatalf("Folds = %d", r.Folds())
	}
	if r.Value() != m1.Xor(m2) {
		t.Fatal("register value wrong")
	}
	r.Fold(m1) // folding again cancels (XOR)
	if r.Value() != m2 {
		t.Fatal("XOR cancellation failed")
	}
	r.Reset()
	if !r.Value().IsZero() || r.Folds() != 0 {
		t.Fatal("Reset failed")
	}
}

// simulateLayer writes `tiles` blocks `versions` times each through the
// checker, reading back every non-final version, exactly as the dataflow
// engine guarantees. Returns the final-version MACs (the next layer's
// first-read set).
func simulateLayer(c *LayerChecker, layer uint32, secret uint64, tiles, versions int,
	corruptFinal, corruptPartialRead bool) []Digest {
	finals := make([]Digest, 0, tiles)
	for tile := 0; tile < tiles; tile++ {
		for vn := 1; vn <= versions; vn++ {
			data := blockData(byte(tile*16 + vn))
			ref := BlockRef{Secret: secret, Layer: layer, Fmap: uint32(tile), VN: uint32(vn), Index: 0}
			m := BlockMAC(ref, data)
			if vn > 1 {
				// Read back the previous version first.
				prev := BlockRef{Secret: secret, Layer: layer, Fmap: uint32(tile), VN: uint32(vn - 1), Index: 0}
				pd := blockData(byte(tile*16 + vn - 1))
				if corruptPartialRead && tile == 0 && vn == 2 {
					pd = blockData(0xFF) // attacker swapped the partial
				}
				c.OnPartialRead(BlockMAC(prev, pd))
			}
			c.OnWrite(m)
			if vn == versions {
				if corruptFinal && tile == 0 {
					// Attacker tampers the final output in DRAM: the next
					// layer will first-read different data.
					m = BlockMAC(ref, blockData(0xEE))
				}
				finals = append(finals, m)
			}
		}
	}
	return finals
}

func TestEquationOneHappyPath(t *testing.T) {
	var c LayerChecker
	secret := uint64(0xabc)

	c.Begin(1)
	finals := simulateLayer(&c, 1, secret, 4, 3, false, false)

	// Layer 2 first-reads all of layer 1's outputs.
	c.Begin(2)
	for _, m := range finals {
		c.OnFirstRead(m)
	}
	if err := c.VerifyPrevious(Digest{}); err != nil {
		t.Fatalf("Equation 1 failed on honest execution: %v", err)
	}
}

func TestEquationOneDetectsTamperedFinal(t *testing.T) {
	var c LayerChecker
	c.Begin(1)
	finals := simulateLayer(&c, 1, 7, 4, 3, true, false)
	c.Begin(2)
	for _, m := range finals {
		c.OnFirstRead(m)
	}
	err := c.VerifyPrevious(Digest{})
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered final output not detected: %v", err)
	}
}

func TestEquationOneDetectsTamperedPartial(t *testing.T) {
	var c LayerChecker
	c.Begin(1)
	finals := simulateLayer(&c, 1, 7, 4, 3, false, true)
	c.Begin(2)
	for _, m := range finals {
		c.OnFirstRead(m)
	}
	err := c.VerifyPrevious(Digest{})
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered partial read not detected: %v", err)
	}
}

// Replay: the attacker serves version 1 of a block when version 2 is
// current. The read-side MAC is computed with the expected (current) VN, so
// the folded digest differs and Equation 1 fails.
func TestEquationOneDetectsReplay(t *testing.T) {
	var c LayerChecker
	secret := uint64(1)
	c.Begin(1)
	// One tile, three versions, but the partial read of version 2 returns
	// version 1's data (replayed ciphertext decrypts to garbage; modeled
	// here as stale plaintext under the expected ref).
	tile := uint32(0)
	for vn := 1; vn <= 3; vn++ {
		if vn > 1 {
			served := blockData(byte(1)) // always serve version 1's data
			ref := BlockRef{Secret: secret, Layer: 1, Fmap: tile, VN: uint32(vn - 1), Index: 0}
			c.OnPartialRead(BlockMAC(ref, served))
		}
		c.OnWrite(BlockMAC(BlockRef{Secret: secret, Layer: 1, Fmap: tile, VN: uint32(vn), Index: 0},
			blockData(byte(vn))))
	}
	c.Begin(2)
	c.OnFirstRead(BlockMAC(BlockRef{Secret: secret, Layer: 1, Fmap: tile, VN: 3, Index: 0},
		blockData(3)))
	if err := c.VerifyPrevious(Digest{}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replay not detected: %v", err)
	}
}

// Order independence: the XOR fold verifies regardless of the order the
// next layer reads the data in — the paper's key flexibility argument.
func TestEquationOneOrderIndependent(t *testing.T) {
	var c LayerChecker
	c.Begin(1)
	finals := simulateLayer(&c, 1, 3, 6, 2, false, false)
	c.Begin(2)
	// Read in reverse order.
	for i := len(finals) - 1; i >= 0; i-- {
		c.OnFirstRead(finals[i])
	}
	if err := c.VerifyPrevious(Digest{}); err != nil {
		t.Fatalf("order-independent verification failed: %v", err)
	}
}

// External digest: the host consumes part of the outputs (e.g. the last
// layer); Equation 1 balances with the host-provided XOR-MAC.
func TestVerifyWithExternalConsumer(t *testing.T) {
	var c LayerChecker
	c.Begin(1)
	finals := simulateLayer(&c, 1, 9, 4, 2, false, false)
	c.Begin(2)
	// The next layer reads only half; the host reads the rest.
	var external Digest
	for i, m := range finals {
		if i%2 == 0 {
			c.OnFirstRead(m)
		} else {
			external = external.Xor(m)
		}
	}
	if err := c.VerifyPrevious(external); err != nil {
		t.Fatalf("external-consumer verification failed: %v", err)
	}
}

func TestVerifyPreviousProtocol(t *testing.T) {
	var c LayerChecker
	c.Begin(1)
	if err := c.VerifyPrevious(Digest{}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("expected protocol error, got %v", err)
	}
}

func TestVerifyFirstLayerInputs(t *testing.T) {
	var c LayerChecker
	if err := c.VerifyFirstLayerInputs(Digest{}); !errors.Is(err, ErrProtocol) {
		t.Fatal("checker with no layer should refuse")
	}
	c.Begin(0)
	m1 := BlockMAC(BlockRef{Layer: 0, Fmap: 0}, blockData(1))
	m2 := BlockMAC(BlockRef{Layer: 0, Fmap: 1}, blockData(2))
	c.OnFirstRead(m1)
	c.OnFirstRead(m2)
	if err := c.VerifyFirstLayerInputs(m1.Xor(m2)); err != nil {
		t.Fatalf("golden input verification failed: %v", err)
	}
	if err := c.VerifyFirstLayerInputs(m1); !errors.Is(err, ErrIntegrity) {
		t.Fatal("wrong golden digest accepted")
	}
}

func TestVerifyRereads(t *testing.T) {
	var c LayerChecker
	if err := c.VerifyRereads(1); !errors.Is(err, ErrProtocol) {
		t.Fatal("no layer in flight should refuse")
	}
	c.Begin(1)
	m1 := BlockMAC(BlockRef{Fmap: 1}, blockData(1))
	m2 := BlockMAC(BlockRef{Fmap: 2}, blockData(2))
	c.OnFirstRead(m1)
	c.OnFirstRead(m2)
	// One sweep: IR == FR.
	if err := c.VerifyRereads(1); err != nil {
		t.Fatalf("odd sweeps: %v", err)
	}
	// Second sweep re-reads both: IR == 0.
	c.OnRepeatRead(m1)
	c.OnRepeatRead(m2)
	if err := c.VerifyRereads(2); err != nil {
		t.Fatalf("even sweeps: %v", err)
	}
	// Tampered re-read breaks the invariant.
	c.OnRepeatRead(m1)
	c.OnRepeatRead(BlockMAC(BlockRef{Fmap: 2}, blockData(0x99)))
	if err := c.VerifyRereads(3); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered re-read not detected: %v", err)
	}
}

func TestBankAlternation(t *testing.T) {
	var c LayerChecker
	c.Begin(1)
	l1 := simulateLayer(&c, 1, 5, 2, 2, false, false)
	c.Begin(2)
	for _, m := range l1 {
		c.OnFirstRead(m)
	}
	l2 := simulateLayer(&c, 2, 5, 3, 2, false, false)
	if err := c.VerifyPrevious(Digest{}); err != nil {
		t.Fatalf("layer 1 verification: %v", err)
	}
	c.Begin(3)
	for _, m := range l2 {
		c.OnFirstRead(m)
	}
	if err := c.VerifyPrevious(Digest{}); err != nil {
		t.Fatalf("layer 2 verification: %v", err)
	}
	if c.FinalW().IsZero() != true {
		// Layer 3 wrote nothing yet; its W must be zero.
		t.Fatal("fresh layer W register should be zero")
	}
}

func TestDigestString(t *testing.T) {
	d := BlockMAC(BlockRef{}, blockData(0))
	if len(d.String()) == 0 {
		t.Fatal("empty digest string")
	}
}

// Property: Equation 1 holds for random honest executions and fails under a
// random single-bit data corruption.
func TestEquationOneProperty(t *testing.T) {
	f := func(tiles, versions uint8, corrupt bool) bool {
		nt := int(tiles%5) + 1
		nv := int(versions%4) + 1
		var c LayerChecker
		c.Begin(1)
		finals := simulateLayer(&c, 1, 0x55, nt, nv, corrupt, false)
		c.Begin(2)
		for _, m := range finals {
			c.OnFirstRead(m)
		}
		err := c.VerifyPrevious(Digest{})
		if corrupt {
			return errors.Is(err, ErrIntegrity)
		}
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
