// Package vngen implements Seculator's hardware version-number generator
// (Section 6.2): a small FSM that, configured with the master-equation
// triplet ⟨η, κ, ρ⟩ for a layer, regenerates every version number the layer
// will use at runtime — eliminating the VN tables, counter caches and
// host-side VN schedulers of prior work.
//
// The package also provides the first-read detector circuit (Section 6.4):
// a pure combinational predicate over the current loop indices that flags
// when an input tile is touched for the first time, so its block MACs can
// be folded into the MAC_FR register.
package vngen

import (
	"fmt"

	"seculator/internal/dataflow"
	"seculator/internal/pattern"
)

// Generator is the streaming VN FSM. Its entire architectural state is
// three configuration registers (η, κ, ρ) and three small counters — the
// hardware cost reported in Table 6 (40 µm², 4.4 µW).
type Generator struct {
	eta, kappa, rho int // configuration registers

	run int // position within the current value's run   [0, η)
	val int // current value                              [1, κ]
	rep int // completed ramp repetitions                 [0, ρ)

	emitted int
}

// New returns a generator for the given triplet. An empty triplet yields a
// generator that is immediately exhausted.
func New(t pattern.Triplet) *Generator {
	if !t.Valid() {
		panic(fmt.Sprintf("vngen: invalid triplet %+v", t))
	}
	g := &Generator{eta: t.Eta, kappa: t.Kappa, rho: t.Rho, val: 1}
	return g
}

// Next emits the next VN of the sequence. ok is false once η·κ·ρ values
// have been produced.
func (g *Generator) Next() (vn int, ok bool) {
	if g.Exhausted() {
		return 0, false
	}
	vn = g.val
	g.emitted++
	g.run++
	if g.run == g.eta {
		g.run = 0
		g.val++
		if g.val > g.kappa {
			g.val = 1
			g.rep++
		}
	}
	return vn, true
}

// Peek returns the VN Next would emit, without advancing.
func (g *Generator) Peek() (vn int, ok bool) {
	if g.Exhausted() {
		return 0, false
	}
	return g.val, true
}

// Exhausted reports whether the full sequence has been emitted.
func (g *Generator) Exhausted() bool {
	if g.eta == 0 || g.kappa == 0 || g.rho == 0 {
		return true
	}
	return g.rep >= g.rho
}

// Emitted returns how many VNs have been produced so far.
func (g *Generator) Emitted() int { return g.emitted }

// Remaining returns how many VNs are left.
func (g *Generator) Remaining() int { return g.eta*g.kappa*g.rho - g.emitted }

// Reset rewinds the FSM to the start of the sequence.
func (g *Generator) Reset() {
	g.run, g.rep, g.emitted = 0, 0, 0
	g.val = 1
	if g.eta == 0 {
		g.val = 0
	}
}

// StateBits returns the architectural state of the FSM in bits, assuming
// 32-bit configuration and counter registers. Used by the hardware model.
func (g *Generator) StateBits() int { return 6 * 32 }

// FirstIfmapRead is the first-read detector for ifmap tiles: among the tile
// loops (S, C, K) only K does not participate in an ifmap tile's identity
// (c, s), so a read is the tile's first exactly when the K index is zero.
func FirstIfmapRead(idx dataflow.LoopIdx) bool { return idx.K == 0 }

// FirstWeightRead is the first-read detector for weight groups (k, c):
// the non-binding loop is S.
func FirstWeightRead(idx dataflow.LoopIdx) bool { return idx.S == 0 }

// LayerUnit bundles the per-layer VN machinery Seculator configures when
// the host issues a "run layer" command: a write-VN generator, a read-VN
// generator (for partial-sum read-backs), and the cross-layer constants for
// read-only data.
type LayerUnit struct {
	LayerID uint32

	write *Generator
	read  *Generator

	ifmapVN  int // VN of all ifmap data: final VN of the producing layer
	weightVN int // VN of weights: always 1 (written once by the host)
}

// NewLayerUnit derives the layer's triplets from its mapping and the final
// VN of the previous layer's write pattern.
func NewLayerUnit(layerID uint32, m *dataflow.Mapping, prevWrite pattern.Triplet) *LayerUnit {
	return &LayerUnit{
		LayerID:  layerID,
		write:    New(dataflow.DeriveWrite(m)),
		read:     New(dataflow.DeriveRead(m)),
		ifmapVN:  FinalVN(prevWrite),
		weightVN: 1,
	}
}

// WriteVN produces the VN for the next ofmap tile write-back.
func (u *LayerUnit) WriteVN() (int, bool) { return u.write.Next() }

// ReadVN produces the VN for the next partial-sum read-back.
func (u *LayerUnit) ReadVN() (int, bool) { return u.read.Next() }

// IfmapVN is the (constant) VN used to decrypt all ifmap reads this layer.
func (u *LayerUnit) IfmapVN() int { return u.ifmapVN }

// WeightVN is the (constant) VN used to decrypt weight reads.
func (u *LayerUnit) WeightVN() int { return u.weightVN }

// Done reports whether both generators have emitted their full sequences —
// the layer-completion condition the security module checks before running
// the layer MAC verification.
func (u *LayerUnit) Done() bool { return u.write.Exhausted() && u.read.Exhausted() }

// FinalVN returns the VN carried by the final write of every ofmap tile
// under the given write triplet — κ for partial-sum dataflows (every tile's
// last write tops the ramp), 1 for output-stationary ones. This is the VN
// the next layer uses for all its ifmap reads. For an empty triplet (first
// layer: inputs written by the host) it is 1.
func FinalVN(write pattern.Triplet) int {
	if write.IsEmpty() || write.Kappa < 1 {
		return 1
	}
	return write.Kappa
}
