package vngen

import (
	"testing"
	"testing/quick"

	"seculator/internal/dataflow"
	"seculator/internal/mem"
	"seculator/internal/npu"
	"seculator/internal/pattern"
	"seculator/internal/sched"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

func TestGeneratorMatchesExpand(t *testing.T) {
	tr := pattern.Triplet{Eta: 3, Kappa: 4, Rho: 2}
	g := New(tr)
	for i, want := range tr.Expand() {
		if p, ok := g.Peek(); !ok || p != want {
			t.Fatalf("Peek at %d = %d,%v want %d", i, p, ok, want)
		}
		got, ok := g.Next()
		if !ok || got != want {
			t.Fatalf("Next at %d = %d,%v want %d", i, got, ok, want)
		}
	}
	if !g.Exhausted() {
		t.Fatal("generator should be exhausted")
	}
	if _, ok := g.Next(); ok {
		t.Fatal("Next after exhaustion should fail")
	}
	if _, ok := g.Peek(); ok {
		t.Fatal("Peek after exhaustion should fail")
	}
}

func TestGeneratorEmptyTriplet(t *testing.T) {
	g := New(pattern.Empty)
	if !g.Exhausted() {
		t.Fatal("empty triplet generator should start exhausted")
	}
	if g.Remaining() != 0 || g.Emitted() != 0 {
		t.Fatal("empty generator counts wrong")
	}
}

func TestGeneratorInvalidTripletPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid triplet should panic")
		}
	}()
	New(pattern.Triplet{Eta: 1, Kappa: 0, Rho: 2})
}

func TestGeneratorResetAndCounts(t *testing.T) {
	tr := pattern.Triplet{Eta: 2, Kappa: 2, Rho: 2}
	g := New(tr)
	for i := 0; i < 3; i++ {
		g.Next()
	}
	if g.Emitted() != 3 || g.Remaining() != 5 {
		t.Fatalf("counts: emitted=%d remaining=%d", g.Emitted(), g.Remaining())
	}
	g.Reset()
	if g.Emitted() != 0 || g.Remaining() != 8 {
		t.Fatal("Reset did not rewind counters")
	}
	got := []int{}
	for {
		v, ok := g.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := tr.Expand()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after Reset sequence diverges at %d: %v vs %v", i, got, want)
		}
	}
}

func TestStateBits(t *testing.T) {
	if bits := New(pattern.Triplet{Eta: 1, Kappa: 1, Rho: 1}).StateBits(); bits != 192 {
		t.Fatalf("StateBits = %d, want 192", bits)
	}
}

// Property: the streaming FSM reproduces Triplet.Expand for all triplets.
func TestGeneratorEquivalenceProperty(t *testing.T) {
	f := func(e, k, r uint8) bool {
		tr := pattern.Triplet{Eta: int(e%6) + 1, Kappa: int(k%6) + 1, Rho: int(r%4) + 1}
		g := New(tr)
		for _, want := range tr.Expand() {
			got, ok := g.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := g.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFinalVN(t *testing.T) {
	if FinalVN(pattern.Empty) != 1 {
		t.Fatal("empty write pattern (host-written data) should map to VN 1")
	}
	if FinalVN(pattern.Triplet{Eta: 5, Kappa: 1, Rho: 1}) != 1 {
		t.Fatal("stationary layer final VN should be 1")
	}
	if FinalVN(pattern.Triplet{Eta: 2, Kappa: 7, Rho: 3}) != 7 {
		t.Fatal("ramp final VN should be kappa")
	}
}

// End-to-end: the LayerUnit's generated VNs must equal the ground-truth VNs
// of the simulated event stream — the paper's "rigorously experimentally
// validated" claim for the VN scheme.
func TestLayerUnitMatchesEventStream(t *testing.T) {
	for _, entry := range dataflow.AllTableEntries() {
		m := entry.Build(dataflow.GridSpec{
			AlphaHW: 3, AlphaC: 4, AlphaK: 2,
			IfmapTileBlocks: 2, OfmapTileBlocks: 2, WeightTileBlocks: 1,
		})
		unit := NewLayerUnit(1, m, pattern.Triplet{Eta: 1, Kappa: 3, Rho: 1})
		ok := true
		err := dataflow.Generate(m, func(e dataflow.Event) bool {
			if e.Tensor != tensor.Ofmap {
				return true
			}
			switch e.Kind {
			case sim.Write:
				vn, has := unit.WriteVN()
				if !has || vn != e.VN {
					ok = false
					return false
				}
			case sim.Read:
				vn, has := unit.ReadVN()
				if !has || vn != e.VN {
					ok = false
					return false
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s row %d: FSM VNs diverge from simulated VNs", entry.Table, entry.Row)
		}
		if !unit.Done() {
			t.Fatalf("%s row %d: generators not exhausted at layer end", entry.Table, entry.Row)
		}
		if unit.IfmapVN() != 3 {
			t.Fatalf("ifmap VN = %d, want previous layer's final VN 3", unit.IfmapVN())
		}
		if unit.WeightVN() != 1 {
			t.Fatal("weight VN must be 1")
		}
	}
}

// The first-read detectors must agree with the generator's ground truth on
// every table row — this is the combinational circuit of Section 6.4.
func TestFirstReadDetectors(t *testing.T) {
	for _, entry := range dataflow.AllTableEntries() {
		m := entry.Build(dataflow.GridSpec{
			AlphaHW: 2, AlphaC: 3, AlphaK: 4,
			IfmapTileBlocks: 1, OfmapTileBlocks: 1, WeightTileBlocks: 1,
		})
		err := dataflow.Generate(m, func(e dataflow.Event) bool {
			if e.Kind != sim.Read {
				return true
			}
			switch e.Tensor {
			case tensor.Ifmap:
				if got := FirstIfmapRead(e.Idx); got != e.First {
					t.Errorf("%s row %d: ifmap detector %v != truth %v at %+v",
						entry.Table, entry.Row, got, e.First, e.Idx)
				}
			case tensor.Weight:
				if m.WeightsResident {
					return true
				}
				if got := FirstWeightRead(e.Idx); got != e.First {
					t.Errorf("%s row %d: weight detector %v != truth %v at %+v",
						entry.Table, entry.Row, got, e.First, e.Idx)
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Integration: for every layer mapping the scheduler actually picks across
// all seven workloads (five CNNs + transformer + GAN), the FSM must
// regenerate the simulated VN streams exactly — the deployment-shaped
// version of the table-row validation.
func TestLayerUnitOnScheduledMappings(t *testing.T) {
	if testing.Short() {
		t.Skip("full mapping sweep in -short mode")
	}
	nets := workload.All()
	if tr, err := workload.Transformer(workload.TinyTransformer()); err == nil {
		nets = append(nets, tr)
	}
	if g, err := workload.GANGenerator(workload.TinyGAN()); err == nil {
		nets = append(nets, g)
	}
	ncfg := npu.DefaultConfig()
	dcfg := mem.DefaultConfig()
	for _, n := range nets {
		choices, err := sched.MapNetwork(n, ncfg, dcfg)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		prev := pattern.Empty
		for li, c := range choices {
			unit := NewLayerUnit(uint32(li+1), c.Mapping, prev)
			ok := true
			err := dataflow.Generate(c.Mapping, func(e dataflow.Event) bool {
				if e.Tensor != tensor.Ofmap {
					return true
				}
				var vn int
				var has bool
				if e.Kind == sim.Write {
					vn, has = unit.WriteVN()
				} else {
					vn, has = unit.ReadVN()
				}
				if !has || vn != e.VN {
					ok = false
					return false
				}
				return true
			})
			if err != nil || !ok || !unit.Done() {
				t.Fatalf("%s layer %d (%s): FSM diverged (err=%v done=%v)",
					n.Name, li, c.Layer.Name, err, unit.Done())
			}
			prev = dataflow.DeriveWrite(c.Mapping)
		}
	}
}
