// Package protect implements the memory-protection engines of the six
// simulated designs (Table 5):
//
//	Baseline   — no security.
//	Secure     — SGX-Client-style: per-block CTR encryption with
//	             major/minor counters (4 KB counter cache + Merkle tree)
//	             and per-block MACs (8 KB MAC cache).
//	TNPU       — AES-XTS encryption, tile VNs in a host-side tensor table,
//	             per-block MACs in the 8 KB on-chip MAC cache.
//	GuardNN    — CTR encryption with host-scheduler VNs (secure-channel
//	             round trip per tile read), per-block MACs stored off-chip
//	             with no cache.
//	Seculator  — CTR encryption with FSM-generated VNs and layer-level
//	             XOR-MACs: no stored metadata at all.
//	Seculator+ — Seculator plus MEA countermeasures (layer widening /
//	             dummy traffic), handled by package widen.
//
// An Engine consumes the tile-event stream of a layer and returns, per
// event, the metadata blocks it adds to the DRAM stream and the serialized
// latency it cannot hide — the two quantities that differentiate the
// designs in Figures 7 and 8.
//
// Error discipline: constructors and verification paths return errors; the
// package panics only on unreachable programmer-error invariants (e.g. a
// functional memory used before BeginLayer), never on attacker-reachable
// or configuration-dependent paths.
package protect

import (
	"fmt"

	"seculator/internal/cache"
	"seculator/internal/crypto"
	"seculator/internal/dataflow"
	"seculator/internal/sim"
	"seculator/internal/tensor"
)

// Design identifies a simulated protection scheme.
type Design uint8

const (
	// Baseline has no protection.
	Baseline Design = iota
	// Secure is the SGX-Client-style configuration.
	Secure
	// TNPU is Lee et al.'s tree-less NPU protection.
	TNPU
	// GuardNN is Hua et al.'s host-managed protection.
	GuardNN
	// Seculator is the paper's design.
	Seculator
	// SeculatorPlus adds MEA protection via layer widening.
	SeculatorPlus

	numDesigns
)

// Designs returns every design in Table 5 order.
func Designs() []Design {
	out := make([]Design, numDesigns)
	for i := range out {
		out[i] = Design(i)
	}
	return out
}

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case Baseline:
		return "Baseline"
	case Secure:
		return "Secure"
	case TNPU:
		return "TNPU"
	case GuardNN:
		return "GuardNN"
	case Seculator:
		return "Seculator"
	case SeculatorPlus:
		return "Seculator+"
	default:
		return fmt.Sprintf("Design(%d)", uint8(d))
	}
}

// Properties is the security feature matrix of Table 5.
type Properties struct {
	Encryption     string // "", "CTR", "XTS"
	IntegrityLevel string // "", "block", "layer"
	AntiReplay     string // "", "counters", "VN"
	MEAProtection  bool
}

// PropertiesOf returns the Table 5 row for a design.
func PropertiesOf(d Design) Properties {
	switch d {
	case Secure:
		return Properties{Encryption: "CTR", IntegrityLevel: "block", AntiReplay: "counters"}
	case TNPU:
		return Properties{Encryption: "XTS", IntegrityLevel: "block", AntiReplay: "VN"}
	case GuardNN:
		return Properties{Encryption: "CTR", IntegrityLevel: "block", AntiReplay: "VN"}
	case Seculator:
		return Properties{Encryption: "CTR", IntegrityLevel: "layer", AntiReplay: "VN"}
	case SeculatorPlus:
		return Properties{Encryption: "CTR", IntegrityLevel: "layer", AntiReplay: "VN", MEAProtection: true}
	default:
		return Properties{}
	}
}

// Params are the microarchitectural knobs of the protection machinery,
// with defaults from Table 1 and Section 7.
type Params struct {
	MACCacheBytes      int // 8 KB (Secure, TNPU)
	MACCacheWays       int
	CounterCacheBytes  int // 4 KB (Secure)
	CounterCacheWays   int
	MerkleLevelsDRAM   int // uncached tree levels fetched per counter miss
	AES                crypto.LatencyModel
	SHA                crypto.LatencyModel
	HostVNRoundTrip    sim.Cycles // GuardNN: secure-channel VN fetch per tile read
	TableLatency       sim.Cycles // TNPU: tensor-table access per tile
	CounterMissPenalty sim.Cycles // serialized latency per counter-cache miss

	// GuardNNMACFraction is the DRAM blocks each uncached 8-byte MAC
	// request effectively moves per data block: 8 B requests ride
	// burst-chopped beats with partial write-combining in the memory
	// controller. Calibrated to GuardNN's published ~40% traffic overhead.
	GuardNNMACFraction float64
}

// DefaultParams returns the configuration of Table 1 / Section 7.
func DefaultParams() Params {
	return Params{
		MACCacheBytes:      8 * 1024,
		MACCacheWays:       4,
		CounterCacheBytes:  4 * 1024,
		CounterCacheWays:   4,
		MerkleLevelsDRAM:   2,
		AES:                crypto.AESLatency,
		SHA:                crypto.SHALatency,
		HostVNRoundTrip:    40,
		TableLatency:       40,
		CounterMissPenalty: 25,
		GuardNNMACFraction: 0.40,
	}
}

// LayerInfo gives an engine the address-space layout of a layer: base
// block addresses of the three tensors and the tile geometry needed to
// turn tile IDs into block address ranges.
type LayerInfo struct {
	Index        int
	Mapping      *dataflow.Mapping
	IfmapBase    uint64 // block address of the ifmap region
	OfmapBase    uint64
	WeightBase   uint64
	SpatialTiles int // tiles per fmap row dimension (Bound(LoopS))
}

// BlockRange returns the contiguous block range of an event's tile in the
// layer's address-space layout.
func (li *LayerInfo) BlockRange(e dataflow.Event) (start uint64, n int) {
	var base uint64
	var per int
	switch e.Tensor {
	case tensor.Ifmap:
		base, per = li.IfmapBase, li.Mapping.IfmapTileBlocks
	case tensor.Ofmap:
		base, per = li.OfmapBase, li.Mapping.OfmapTileBlocks
	case tensor.Weight:
		base, per = li.WeightBase, li.Mapping.WeightTileBlocks
	}
	linear := uint64(e.Tile.Fmap*li.SpatialTiles + e.Tile.Spatial)
	return base + linear*uint64(per), e.Blocks
}

// Cost is the protection overhead of one event (or of layer finalization):
// extra DRAM blocks per traffic class and direction, plus serialized
// latency that cannot be hidden behind the data burst.
type Cost struct {
	ReadBlocks  [6]uint64 // indexed by sim.Traffic
	WriteBlocks [6]uint64
	Latency     sim.Cycles
}

// ExtraBlocks returns the total metadata blocks of the cost.
func (c Cost) ExtraBlocks() uint64 {
	var n uint64
	for i := range c.ReadBlocks {
		n += c.ReadBlocks[i] + c.WriteBlocks[i]
	}
	return n
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	for i := range c.ReadBlocks {
		c.ReadBlocks[i] += o.ReadBlocks[i]
		c.WriteBlocks[i] += o.WriteBlocks[i]
	}
	c.Latency = c.Latency.Add(o.Latency)
}

// Engine is a protection scheme's timing model.
type Engine interface {
	// Design identifies the scheme.
	Design() Design
	// BeginLayer resets per-layer state; metadata caches persist.
	BeginLayer(li LayerInfo)
	// OnEvent accounts one tile transfer and returns its overhead.
	OnEvent(e dataflow.Event) Cost
	// EndLayer performs layer finalization (verification, flushes).
	EndLayer() Cost
	// MACCacheStats returns the MAC cache statistics, if the design has one.
	MACCacheStats() (cache.Stats, bool)
	// CounterCacheStats returns counter-cache statistics, if present.
	CounterCacheStats() (cache.Stats, bool)
}

// New builds the engine for a design. Seculator+ uses the Seculator engine;
// its extra widening traffic is produced by package widen upstream.
func New(d Design, p Params) (Engine, error) {
	switch d {
	case Baseline:
		return &baselineEngine{}, nil
	case Secure:
		return newSecureEngine(p)
	case TNPU:
		return newTNPUEngine(p)
	case GuardNN:
		return &guardnnEngine{p: p}, nil
	case Seculator:
		return &seculatorEngine{p: p, design: Seculator}, nil
	case SeculatorPlus:
		return &seculatorEngine{p: p, design: SeculatorPlus}, nil
	default:
		return nil, fmt.Errorf("protect: unknown design %d", uint8(d))
	}
}
