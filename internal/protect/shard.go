package protect

import (
	"seculator/internal/crypto"
	"seculator/internal/mac"
	"seculator/internal/sim"
	"seculator/internal/tensor"
)

// SeculatorShard is a per-worker view of a SeculatorMemory for the sharded
// secure execution path. Each shard owns a private clone of the CTR engine
// (the AES key schedule is shared and immutable, the scratch is not), a
// private mac.PartialBank, private ciphertext/plaintext staging buffers,
// and local traffic counters — so any number of shards may encrypt, MAC and
// fold concurrently without touching shared mutable state, as long as they
// operate on distinct, pre-reserved DRAM lines (mem.DRAM.Reserve).
//
// Ownership rules (DESIGN.md §10): a shard is single-goroutine; plaintext
// slices returned by its Read* methods alias the shard's scratch and are
// valid only until the shard's next operation; nothing a shard accumulates
// is visible to the checker until the orchestrator calls Merge on the main
// goroutine after the shards have joined.
type SeculatorShard struct {
	parent  *SeculatorMemory
	engine  *crypto.CTREngine
	partial mac.PartialBank

	reads  int // blocks fetched, merged into the DRAM traffic counters
	writes int // blocks stored, merged into the DRAM traffic counters

	ct   [tensor.BlockBytes]byte
	pt   [tensor.BlockBytes]byte
	rowh mac.RowHasher
}

// Shard creates a worker view of the memory. Shards are cheap; the secure
// executor keeps one per worker for the whole run.
func (m *SeculatorMemory) Shard() *SeculatorShard {
	return &SeculatorShard{parent: m, engine: m.engine.Clone()}
}

// PadEngine returns a private clone of the memory's CTR engine — the
// keystream-precompute stage generates pads ahead of use with it.
func (m *SeculatorMemory) PadEngine() *crypto.CTREngine { return m.engine.Clone() }

// Recycle scrubs a shard for reuse across runs of its (recycled) parent
// memory: MAC partials and traffic counts reset, the plaintext/ciphertext
// staging is zeroed so no block of the previous run survives in pooled
// scratch, and the row hasher returns to its zero-value-ready state. The
// engine clone is kept — it shares the parent's immutable key schedule,
// which Recycle on the parent guarantees is unchanged.
func (s *SeculatorShard) Recycle() {
	s.partial.Reset()
	s.reads, s.writes = 0, 0
	clear(s.ct[:])
	clear(s.pt[:])
	s.rowh = mac.RowHasher{}
}

// Merge reduces shard state back into the memory: per-shard partial MAC
// banks fold into the current layer's bank (commutative XOR, so the shard
// order is immaterial), and local transfer counts flush into the DRAM
// traffic counters. Must run on the orchestrating goroutine after every
// merged shard has quiesced; it resets the shards for reuse.
func (m *SeculatorMemory) Merge(shards ...*SeculatorShard) {
	for _, s := range shards {
		if s == nil {
			continue
		}
		if s.reads > 0 {
			m.dram.Record(sim.Read, sim.DataTraffic, s.reads)
			s.reads = 0
		}
		if s.writes > 0 {
			m.dram.Record(sim.Write, sim.DataTraffic, s.writes)
			s.writes = 0
		}
		if s.partial.Folds() > 0 {
			m.mustStart()
			m.checker.FoldBank(&s.partial)
			s.partial.Reset()
		}
	}
}

// Registers returns the four XOR-MAC register values of the current layer's
// bank — the observability hook the serial/parallel equivalence tests use
// to assert bit-identical digests.
func (m *SeculatorMemory) Registers() (w, r, fr, ir mac.Digest) {
	b := m.checker.Current()
	return b.W.Value(), b.R.Value(), b.FR.Value(), b.IR.Value()
}

// fetch reads and decrypts one block into the shard's plaintext scratch.
func (s *SeculatorShard) fetch(addr uint64, layer, fmapID uint32, vn int, blockIdx uint32) []byte {
	m := s.parent
	m.dram.ReadBlockQuiet(addr, s.ct[:])
	s.reads++
	s.engine.DecryptBlock(s.pt[:], s.ct[:], m.counter(layer, fmapID, vn, blockIdx))
	return s.pt[:]
}

// ReadInput is the shard counterpart of SeculatorMemory.ReadInput: it folds
// into the shard's partial bank instead of the checker. The returned slice
// is shard scratch, valid until the shard's next operation.
func (s *SeculatorShard) ReadInput(addr uint64, prevLayer, fmapID uint32, vn int, blockIdx uint32, first bool) []byte {
	pt := s.fetch(addr, prevLayer, fmapID, vn, blockIdx)
	d := mac.BlockMAC(s.parent.ref(prevLayer, fmapID, vn, blockIdx), pt)
	if first {
		s.partial.OnFirstRead(d)
	} else {
		s.partial.OnRepeatRead(d)
	}
	return pt
}

// ReadInputPad is ReadInput consuming a precomputed keystream pad instead
// of running AES: dst = ciphertext ⊕ pad. The pad must have been generated
// for exactly this block's counter; the MAC fold is unchanged, so the
// result is bit-identical to the engine path.
func (s *SeculatorShard) ReadInputPad(addr uint64, prevLayer, fmapID uint32, vn int, blockIdx uint32, first bool, pad []byte) []byte {
	m := s.parent
	m.dram.ReadBlockQuiet(addr, s.ct[:])
	s.reads++
	crypto.XORPad(s.pt[:], s.ct[:], pad)
	d := mac.BlockMAC(m.ref(prevLayer, fmapID, vn, blockIdx), s.pt[:])
	if first {
		s.partial.OnFirstRead(d)
	} else {
		s.partial.OnRepeatRead(d)
	}
	return s.pt[:]
}

// ReadPartial is the shard counterpart of SeculatorMemory.ReadPartial.
func (s *SeculatorShard) ReadPartial(addr uint64, fmapID uint32, vn int, blockIdx uint32) []byte {
	m := s.parent
	pt := s.fetch(addr, m.layer, fmapID, vn, blockIdx)
	s.partial.OnPartialRead(mac.BlockMAC(m.ref(m.layer, fmapID, vn, blockIdx), pt))
	return pt
}

// ReadStatic is the shard counterpart of SeculatorMemory.ReadStatic: no
// register folds; the block's MAC is returned for the caller's private
// golden accumulation.
func (s *SeculatorShard) ReadStatic(addr uint64, ownerLayer, fmapID uint32, vn int, blockIdx uint32) ([]byte, mac.Digest) {
	pt := s.fetch(addr, ownerLayer, fmapID, vn, blockIdx)
	return pt, mac.BlockMAC(s.parent.ref(ownerLayer, fmapID, vn, blockIdx), pt)
}

// WriteBlock is the shard counterpart of SeculatorMemory.WriteBlock.
func (s *SeculatorShard) WriteBlock(addr uint64, fmapID uint32, vn int, blockIdx uint32, plaintext []byte) {
	m := s.parent
	s.engine.EncryptBlock(s.ct[:], plaintext, m.counter(m.layer, fmapID, vn, blockIdx))
	m.dram.WriteBlockQuiet(addr, s.ct[:])
	s.writes++
	s.partial.OnWrite(mac.BlockMAC(m.ref(m.layer, fmapID, vn, blockIdx), plaintext))
}

// WriteRow encrypts and stores n consecutive blocks of one fmap row —
// block indices blockIdx, blockIdx+1, … at line addresses addr, addr+1, …
// — folding each block's MAC into the shard's partial MAC_W. plaintext
// holds the n packed blocks; ctScratch is caller-owned ciphertext staging
// of at least the same size (the batch API never allocates).
func (s *SeculatorShard) WriteRow(addr uint64, fmapID uint32, vn int, blockIdx uint32, plaintext, ctScratch []byte) {
	m := s.parent
	n := len(plaintext) / tensor.BlockBytes
	s.engine.EncryptBlocks(ctScratch, plaintext, m.counter(m.layer, fmapID, vn, blockIdx), n)
	for b := 0; b < n; b++ {
		o := b * tensor.BlockBytes
		m.dram.WriteBlockQuiet(addr+uint64(b), ctScratch[o:o+tensor.BlockBytes])
		s.partial.OnWrite(mac.BlockMAC(m.ref(m.layer, fmapID, vn, blockIdx+uint32(b)), plaintext[o:o+tensor.BlockBytes]))
	}
	s.writes += n
}

// HostWriteBlock is the shard counterpart of SeculatorMemory.HostWriteBlock.
func (s *SeculatorShard) HostWriteBlock(addr uint64, ownerLayer, fmapID uint32, vn int, blockIdx uint32, plaintext []byte) mac.Digest {
	m := s.parent
	s.engine.EncryptBlock(s.ct[:], plaintext, m.counter(ownerLayer, fmapID, vn, blockIdx))
	m.dram.WriteBlockQuiet(addr, s.ct[:])
	s.writes++
	return mac.BlockMAC(m.ref(ownerLayer, fmapID, vn, blockIdx), plaintext)
}

// HostWriteRow encrypts and stores n consecutive blocks on behalf of the
// host (model load), returning the XOR of their MACs for the caller's
// golden digest. Scratch rules match WriteRow.
func (s *SeculatorShard) HostWriteRow(addr uint64, ownerLayer, fmapID uint32, vn int, blockIdx uint32, plaintext, ctScratch []byte) mac.Digest {
	m := s.parent
	n := len(plaintext) / tensor.BlockBytes
	s.engine.EncryptBlocks(ctScratch, plaintext, m.counter(ownerLayer, fmapID, vn, blockIdx), n)
	for b := 0; b < n; b++ {
		o := b * tensor.BlockBytes
		m.dram.WriteBlockQuiet(addr+uint64(b), ctScratch[o:o+tensor.BlockBytes])
	}
	g, _ := s.rowh.FoldRow(m.ref(ownerLayer, fmapID, vn, blockIdx), plaintext[:n*tensor.BlockBytes])
	s.writes += n
	return g
}

// BlockDigest computes the MAC of a plaintext block at a position, like
// SeculatorMemory.BlockDigest (pure; safe from any goroutine).
func (s *SeculatorShard) BlockDigest(ownerLayer, fmapID uint32, vn int, blockIdx uint32, plaintext []byte) mac.Digest {
	return s.parent.BlockDigest(ownerLayer, fmapID, vn, blockIdx, plaintext)
}
