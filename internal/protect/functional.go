package protect

import (
	"fmt"

	"seculator/internal/crypto"
	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/tensor"
)

// SeculatorMemory is the functional counterpart of the Seculator timing
// engine: it really encrypts blocks with the paper's AES-CTR counter layout
// (Section 6.3), really folds per-block SHA-256 MACs into the XOR-MAC
// registers (Section 6.4), and really runs the Equation 1 layer check —
// against a DRAM whose contents an attacker can mutate at will. It backs
// the attack-detection test suite and the attackdemo example.
type SeculatorMemory struct {
	dram    *mem.DRAM
	engine  *crypto.CTREngine
	checker mac.LayerChecker

	secret  uint64
	random  uint64
	layer   uint32
	started bool

	// ct is the reusable ciphertext staging buffer: DRAM copies payloads
	// on write and into the caller's dst on read, so the block only lives
	// here transiently. One buffer per memory keeps the per-block path
	// allocation-free; like its crypto engine, a SeculatorMemory is
	// single-goroutine by contract.
	ct [tensor.BlockBytes]byte
}

// NewSeculatorMemory builds the functional secure memory. secret is the
// accelerator's embedded ID; bootRandom the per-execution random number.
func NewSeculatorMemory(d *mem.DRAM, secret, bootRandom uint64) *SeculatorMemory {
	return &SeculatorMemory{
		dram:   d,
		engine: crypto.NewCTR(secret, bootRandom),
		secret: secret,
		random: bootRandom,
	}
}

// Recycle returns the memory to its post-New state for reuse under the
// same crypto identity, keeping the expensive part — the AES key schedule —
// alive. It reports false (and changes nothing) when the requested
// (secret, bootRandom) differ from the ones the engine was keyed with:
// a pooled memory must never be rebound to a different key, so the caller
// then builds a fresh one. The ciphertext staging buffer is scrubbed; the
// caller owns scrubbing the DRAM it passed in.
func (m *SeculatorMemory) Recycle(d *mem.DRAM, secret, bootRandom uint64) bool {
	if secret != m.secret || bootRandom != m.random {
		return false
	}
	m.dram = d
	m.checker = mac.LayerChecker{}
	m.layer = 0
	m.started = false
	clear(m.ct[:])
	return true
}

// BeginLayer starts accumulating MAC state for the given layer.
func (m *SeculatorMemory) BeginLayer(layerID uint32) {
	m.layer = layerID
	m.started = true
	m.checker.Begin(layerID)
}

// RestartLayer discards the current layer's accumulated MAC folds while
// keeping the previous layer's pending bank — the first step of a
// layer-level recovery: the executor re-fetches the working set and
// re-executes the layer, re-accumulating FR/R/W from scratch.
func (m *SeculatorMemory) RestartLayer() {
	m.mustStart()
	m.checker.Restart()
}

// TamperMACRegister XORs mask into the named register ("W", "R", "FR",
// "IR") of the current layer's bank — the fault-injection hook for on-chip
// MAC-register upsets. The corruption is caught by the next Equation 1
// check exactly like off-chip tampering.
func (m *SeculatorMemory) TamperMACRegister(register string, mask byte) {
	m.mustStart()
	m.checker.Tamper(register, mask)
}

func (m *SeculatorMemory) counter(layer, fmapID uint32, vn int, blockIdx uint32) crypto.Counter {
	return crypto.Counter{Fmap: fmapID, Layer: layer, VN: uint32(vn), Block: blockIdx}
}

func (m *SeculatorMemory) ref(layer, fmapID uint32, vn int, blockIdx uint32) mac.BlockRef {
	return mac.BlockRef{Secret: m.secret, Layer: layer, Fmap: fmapID, VN: uint32(vn), Index: blockIdx}
}

// WriteBlock encrypts plaintext under the current layer's identity and the
// given (fmap, vn, index) position, stores it to DRAM, and folds its MAC
// into MAC_W.
func (m *SeculatorMemory) WriteBlock(addr uint64, fmapID uint32, vn int, blockIdx uint32, plaintext []byte) {
	m.mustStart()
	m.engine.EncryptBlock(m.ct[:], plaintext, m.counter(m.layer, fmapID, vn, blockIdx))
	m.dram.WriteBlock(addr, m.ct[:], 0)
	m.checker.OnWrite(mac.BlockMAC(m.ref(m.layer, fmapID, vn, blockIdx), plaintext))
}

// ReadPartial fetches and decrypts a partial ofmap block written earlier in
// this layer, folding its MAC into MAC_R.
func (m *SeculatorMemory) ReadPartial(addr uint64, fmapID uint32, vn int, blockIdx uint32) []byte {
	m.mustStart()
	pt := m.fetch(addr, m.layer, fmapID, vn, blockIdx)
	m.checker.OnPartialRead(mac.BlockMAC(m.ref(m.layer, fmapID, vn, blockIdx), pt))
	return pt
}

// ReadInput fetches and decrypts an ifmap block produced by prevLayer at
// version vn. first marks the block's first touch this layer (MAC_FR);
// repeats fold into MAC_IR only.
func (m *SeculatorMemory) ReadInput(addr uint64, prevLayer, fmapID uint32, vn int, blockIdx uint32, first bool) []byte {
	m.mustStart()
	pt := m.fetch(addr, prevLayer, fmapID, vn, blockIdx)
	d := mac.BlockMAC(m.ref(prevLayer, fmapID, vn, blockIdx), pt)
	if first {
		m.checker.OnFirstRead(d)
	} else {
		m.checker.OnRepeatRead(d)
	}
	return pt
}

// ReadStatic fetches and decrypts a block without touching the layer MAC
// registers — the path for read-only data (weights) whose integrity is
// checked against a host-provided golden XOR-MAC by the caller. The block's
// MAC is returned alongside the plaintext for that fold.
func (m *SeculatorMemory) ReadStatic(addr uint64, ownerLayer, fmapID uint32, vn int, blockIdx uint32) ([]byte, mac.Digest) {
	pt := m.fetch(addr, ownerLayer, fmapID, vn, blockIdx)
	return pt, mac.BlockMAC(m.ref(ownerLayer, fmapID, vn, blockIdx), pt)
}

// HostWriteBlock encrypts and stores a block on behalf of the host (model
// load: weights, layer-0 inputs) under an arbitrary owner layer ID, without
// touching the NPU's MAC registers. It returns the block's MAC so the host
// can accumulate golden digests.
func (m *SeculatorMemory) HostWriteBlock(addr uint64, ownerLayer, fmapID uint32, vn int, blockIdx uint32, plaintext []byte) mac.Digest {
	m.engine.EncryptBlock(m.ct[:], plaintext, m.counter(ownerLayer, fmapID, vn, blockIdx))
	m.dram.WriteBlock(addr, m.ct[:], 0)
	return mac.BlockMAC(m.ref(ownerLayer, fmapID, vn, blockIdx), plaintext)
}

// BlockDigest computes the MAC of a plaintext block at a position — the
// host-side helper for golden digests and external (host-consumed) folds.
func (m *SeculatorMemory) BlockDigest(ownerLayer, fmapID uint32, vn int, blockIdx uint32, plaintext []byte) mac.Digest {
	return mac.BlockMAC(m.ref(ownerLayer, fmapID, vn, blockIdx), plaintext)
}

func (m *SeculatorMemory) fetch(addr uint64, layer, fmapID uint32, vn int, blockIdx uint32) []byte {
	m.dram.ReadBlock(addr, m.ct[:], 0)
	// The plaintext is returned to the caller and must survive the next
	// fetch: it is the one allocation left on this path.
	pt := make([]byte, tensor.BlockBytes)
	m.engine.DecryptBlock(pt, m.ct[:], m.counter(layer, fmapID, vn, blockIdx))
	return pt
}

// VerifyPreviousLayer runs the Equation 1 check for the layer before the
// current one: MAC_W(prev) == MAC_R(prev) xor MAC_FR(current) xor external,
// where external covers final outputs consumed outside the NPU.
func (m *SeculatorMemory) VerifyPreviousLayer(external mac.Digest) error {
	m.mustStart()
	return m.checker.VerifyPrevious(external)
}

// VerifyInputsGolden checks the current layer's first reads against a
// host-provided XOR-MAC (layer-0 inputs, weights).
func (m *SeculatorMemory) VerifyInputsGolden(golden mac.Digest) error {
	m.mustStart()
	return m.checker.VerifyFirstLayerInputs(golden)
}

// VerifyRereads checks the MAC_IR invariant given the deterministic number
// of full input sweeps of the current layer's mapping.
func (m *SeculatorMemory) VerifyRereads(sweeps int) error {
	m.mustStart()
	return m.checker.VerifyRereads(sweeps)
}

// FinalOutputMAC returns the XOR-MAC the host needs to verify the current
// layer's outputs when it consumes them directly.
func (m *SeculatorMemory) FinalOutputMAC() mac.Digest { return m.checker.FinalW() }

// RegisterState is a read-only snapshot of the four XOR-MAC registers of the
// bank accumulating the current layer, with their fold counts — the
// observable architectural state of the MAC unit at a layer boundary. The
// commutative XOR fold makes every field bit-identical across worker counts;
// the conformance harness asserts exactly that.
type RegisterState struct {
	W, R, FR, IR                     mac.Digest
	WFolds, RFolds, FRFolds, IRFolds uint64
}

// RegisterSnapshot captures the current bank's four XOR-MAC registers with
// their fold counts (Registers returns the values alone).
func (m *SeculatorMemory) RegisterSnapshot() RegisterState {
	b := m.checker.Current()
	return RegisterState{
		W: b.W.Value(), R: b.R.Value(), FR: b.FR.Value(), IR: b.IR.Value(),
		WFolds: b.W.Folds(), RFolds: b.R.Folds(), FRFolds: b.FR.Folds(), IRFolds: b.IR.Folds(),
	}
}

// GoldenInputMAC computes the XOR-MAC a host would supply for data it wrote
// itself: the fold of the block MACs of `blocks` plaintext blocks written
// under (layer, fmapID) with the given vn, at consecutive block indices.
func (m *SeculatorMemory) GoldenInputMAC(layer, fmapID uint32, vn int, blocks [][]byte) mac.Digest {
	var g mac.Digest
	for i, b := range blocks {
		g = g.Xor(mac.BlockMAC(m.ref(layer, fmapID, vn, uint32(i)), b))
	}
	return g
}

func (m *SeculatorMemory) mustStart() {
	if !m.started {
		panic(fmt.Sprintf("protect: SeculatorMemory used before BeginLayer (layer %d)", m.layer))
	}
}
