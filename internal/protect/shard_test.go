package protect

import (
	"bytes"
	"sync"
	"testing"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/tensor"
)

func shardTestDRAM(t *testing.T) *mem.DRAM {
	t.Helper()
	d, err := mem.New(mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// shardPattern builds a deterministic, index-unique plaintext block.
func shardPattern(i int) []byte {
	b := make([]byte, tensor.BlockBytes)
	for j := range b {
		b[j] = byte(i*31 + j*7)
	}
	return b
}

// runSerialScript drives the two-layer reference workload through the
// serial SeculatorMemory API: layer 1 writes n blocks, layer 2 first-reads
// them all, repeat-reads every fifth, and writes n more.
func runSerialScript(t *testing.T, n int) (*mem.DRAM, *SeculatorMemory) {
	t.Helper()
	d := shardTestDRAM(t)
	m := NewSeculatorMemory(d, 7, 9)
	m.BeginLayer(1)
	for i := 0; i < n; i++ {
		m.WriteBlock(uint64(i), uint32(i%3), 1, uint32(i), shardPattern(i))
	}
	m.BeginLayer(2)
	for i := 0; i < n; i++ {
		pt := m.ReadInput(uint64(i), 1, uint32(i%3), 1, uint32(i), true)
		if !bytes.Equal(pt, shardPattern(i)) {
			t.Fatalf("serial read %d decrypted wrong plaintext", i)
		}
	}
	for i := 0; i < n; i += 5 {
		m.ReadInput(uint64(i), 1, uint32(i%3), 1, uint32(i), false)
	}
	for i := 0; i < n; i++ {
		m.WriteBlock(uint64(n+i), 0, 2, uint32(i), shardPattern(n+i))
	}
	return d, m
}

// runShardedScript drives the same workload through w shards running on w
// real goroutines against pre-reserved DRAM, interleaving the work by
// index so the fold order differs maximally from the serial run.
func runShardedScript(t *testing.T, n, w int) (*mem.DRAM, *SeculatorMemory) {
	t.Helper()
	d := shardTestDRAM(t)
	d.Reserve(uint64(2 * n))
	m := NewSeculatorMemory(d, 7, 9)
	shards := make([]*SeculatorShard, w)
	for s := range shards {
		shards[s] = m.Shard()
	}
	fork := func(fn func(s int, sh *SeculatorShard)) {
		var wg sync.WaitGroup
		for s := range shards {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				fn(s, shards[s])
			}(s)
		}
		wg.Wait()
		m.Merge(shards...)
	}

	m.BeginLayer(1)
	fork(func(s int, sh *SeculatorShard) {
		for i := s; i < n; i += w {
			sh.WriteBlock(uint64(i), uint32(i%3), 1, uint32(i), shardPattern(i))
		}
	})
	m.BeginLayer(2)
	fork(func(s int, sh *SeculatorShard) {
		for i := s; i < n; i += w {
			pt := sh.ReadInput(uint64(i), 1, uint32(i%3), 1, uint32(i), true)
			if !bytes.Equal(pt, shardPattern(i)) {
				t.Errorf("shard %d read %d decrypted wrong plaintext", s, i)
			}
		}
		for i := s * 5; i < n; i += w * 5 {
			sh.ReadInput(uint64(i), 1, uint32(i%3), 1, uint32(i), false)
		}
	})
	fork(func(s int, sh *SeculatorShard) {
		for i := s; i < n; i += w {
			sh.WriteBlock(uint64(n+i), 0, 2, uint32(i), shardPattern(n+i))
		}
	})
	return d, m
}

// TestShardedFoldsMatchSerial is the soundness test of the sharded crypto
// path: for worker counts 1, 2 and 8, the four XOR-MAC registers, every
// ciphertext byte in DRAM, and the traffic totals must be bit-identical to
// the serial run — commutativity of the XOR fold makes the shard
// interleaving immaterial.
func TestShardedFoldsMatchSerial(t *testing.T) {
	const n = 100
	sd, sm := runSerialScript(t, n)
	sw, sr, sfr, sir := sm.Registers()

	for _, w := range []int{1, 2, 8} {
		pd, pm := runShardedScript(t, n, w)
		gw, gr, gfr, gir := pm.Registers()
		if gw != sw || gr != sr || gfr != sfr || gir != sir {
			t.Fatalf("w=%d: register mismatch\n  W  %x vs %x\n  R  %x vs %x\n  FR %x vs %x\n  IR %x vs %x",
				w, gw, sw, gr, sr, gfr, sfr, gir, sir)
		}
		for a := uint64(0); a < 2*n; a++ {
			if !bytes.Equal(pd.Peek(a), sd.Peek(a)) {
				t.Fatalf("w=%d: ciphertext mismatch at line %d", w, a)
			}
		}
		if pt, st := pd.Traffic(), sd.Traffic(); pt != st {
			t.Fatalf("w=%d: traffic %+v, serial %+v", w, pt, st)
		}
		if pd.Lines() != sd.Lines() {
			t.Fatalf("w=%d: %d lines, serial %d", w, pd.Lines(), sd.Lines())
		}
	}
}

// TestShardedEquationOneVerifies: layer 2 first-reads exactly layer 1's
// writes, so Equation 1 must verify with a zero external digest on the
// sharded path just as on the serial one.
func TestShardedEquationOneVerifies(t *testing.T) {
	_, m := runShardedScript(t, 60, 4)
	if err := m.VerifyPreviousLayer(mac.Digest{}); err != nil {
		t.Fatalf("Equation 1 failed on the sharded path: %v", err)
	}
}

// TestShardBatchRowMatchesBlocks: the batch WriteRow path must produce the
// same ciphertext and the same MAC folds as per-block WriteBlock calls.
func TestShardBatchRowMatchesBlocks(t *testing.T) {
	const n = 8
	row := make([]byte, n*tensor.BlockBytes)
	for i := 0; i < n; i++ {
		copy(row[i*tensor.BlockBytes:], shardPattern(i))
	}

	da := shardTestDRAM(t)
	ma := NewSeculatorMemory(da, 3, 4)
	ma.BeginLayer(1)
	sa := ma.Shard()
	ct := make([]byte, n*tensor.BlockBytes)
	sa.WriteRow(0, 2, 1, 0, row, ct)
	ma.Merge(sa)
	aw, _, _, _ := ma.Registers()

	db := shardTestDRAM(t)
	mb := NewSeculatorMemory(db, 3, 4)
	mb.BeginLayer(1)
	for i := 0; i < n; i++ {
		mb.WriteBlock(uint64(i), 2, 1, uint32(i), shardPattern(i))
	}
	bw, _, _, _ := mb.Registers()

	if aw != bw {
		t.Fatalf("MAC_W differs: batch %x, per-block %x", aw, bw)
	}
	for a := uint64(0); a < n; a++ {
		if !bytes.Equal(da.Peek(a), db.Peek(a)) {
			t.Fatalf("ciphertext differs at line %d", a)
		}
	}
}
