package protect

import (
	"bytes"
	"testing"

	"seculator/internal/mac"
)

func TestMACStorePrimitives(t *testing.T) {
	s := NewMACStore()
	var d mac.Digest
	d[0] = 0x42
	s.Put(1, d)
	got, ok := s.Get(1)
	if !ok || got != d {
		t.Fatal("Put/Get broken")
	}
	if _, ok := s.Get(99); ok {
		t.Fatal("missing entry reported present")
	}
	snap, ok := s.Snapshot(1)
	if !ok || snap != d {
		t.Fatal("Snapshot broken")
	}
	if !s.TamperMAC(1, 0xFF) {
		t.Fatal("TamperMAC failed")
	}
	if got, _ := s.Get(1); got == d {
		t.Fatal("TamperMAC did not change the digest")
	}
	if s.TamperMAC(99, 1) {
		t.Fatal("tampering a missing MAC should fail")
	}
	s.Restore(1, snap)
	if got, _ := s.Get(1); got != d {
		t.Fatal("Restore broken")
	}
	var d2 mac.Digest
	d2[0] = 0x24
	s.Put(2, d2)
	if !s.Swap(1, 2) {
		t.Fatal("Swap failed")
	}
	if got, _ := s.Get(1); got != d2 {
		t.Fatal("Swap did not exchange")
	}
	if s.Swap(1, 99) {
		t.Fatal("Swap with missing entry should fail")
	}
}

func TestBaselineMemory(t *testing.T) {
	d := mustDRAM(t)
	m := NewBaselineMemory(d)
	if m.DesignName() != Baseline {
		t.Fatal("wrong design")
	}
	m.BeginLayer(1)
	pt := plainBlock(5)
	m.Write(0, 0, 1, 0, pt)
	got, err := m.Read(0, 1, 0, 1, 0, true)
	if err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("baseline round trip: %v", err)
	}
	// Baseline stores plaintext: the DRAM holds it verbatim (no
	// confidentiality at all).
	if !bytes.Equal(d.Peek(0), pt) {
		t.Fatal("baseline should store plaintext")
	}
	if err := m.EndLayer(); err != nil {
		t.Fatal("baseline EndLayer must be a no-op")
	}
}

func TestSGXMemoryConfidentialityAndVersioning(t *testing.T) {
	d := mustDRAM(t)
	m, err := NewSGXMemory(d, 1, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.DesignName() != Secure {
		t.Fatal("wrong design")
	}
	m.BeginLayer(1)
	pt := plainBlock(6)
	m.Write(0, 0, 1, 0, pt)
	if bytes.Equal(d.Peek(0), pt) {
		t.Fatal("SGX memory leaked plaintext to DRAM")
	}
	first, _ := d.Snapshot(0)
	m.Write(0, 0, 2, 0, pt)
	second, _ := d.Snapshot(0)
	if bytes.Equal(first, second) {
		t.Fatal("counter bump must refresh the ciphertext")
	}
	got, err := m.Read(0, 1, 0, 2, 0, true)
	if err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("SGX round trip: %v", err)
	}
	if err := m.EndLayer(); err != nil {
		t.Fatal("per-block design EndLayer must be a no-op")
	}
}

func TestSGXMemoryBadPageCount(t *testing.T) {
	d := mustDRAM(t)
	if _, err := NewSGXMemory(d, 1, 2, 0); err == nil {
		t.Fatal("zero pages accepted")
	}
}

func TestTNPUMemoryMissingTableEntry(t *testing.T) {
	d := mustDRAM(t)
	m := NewTNPUMemory(d, 1, 2)
	if m.DesignName() != TNPU {
		t.Fatal("wrong design")
	}
	m.BeginLayer(1)
	if _, err := m.Read(0, 1, 42, 1, 0, true); err == nil {
		t.Fatal("read of an untracked tile should fail")
	}
	if err := m.EndLayer(); err != nil {
		t.Fatal("EndLayer must be a no-op")
	}
}

func TestGuardNNMemoryMissingSchedulerEntry(t *testing.T) {
	d := mustDRAM(t)
	m := NewGuardNNMemory(d, 1, 2)
	if m.DesignName() != GuardNN {
		t.Fatal("wrong design")
	}
	m.BeginLayer(1)
	if _, err := m.Read(0, 1, 42, 1, 0, true); err == nil {
		t.Fatal("read without a scheduler VN should fail")
	}
	pt := plainBlock(8)
	m.Write(5, 3, 1, 0, pt)
	if bytes.Equal(d.Peek(5), pt) {
		t.Fatal("GuardNN leaked plaintext")
	}
	got, err := m.Read(5, 1, 3, 1, 0, true)
	if err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("GuardNN round trip: %v", err)
	}
	if err := m.EndLayer(); err != nil {
		t.Fatal("EndLayer must be a no-op")
	}
}
