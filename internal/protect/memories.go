package protect

import (
	"fmt"

	"seculator/internal/counter"
	"seculator/internal/crypto"
	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/merkle"
	"seculator/internal/tensor"
)

// FunctionalMemory abstracts the functional data path of a design so the
// attack suite can mount the same attacks against every scheme of Table 5.
// Per-block designs (Secure, TNPU, GuardNN) detect violations at the
// offending Read; Seculator defers detection to the layer check in
// EndLayer; Baseline never detects anything.
type FunctionalMemory interface {
	// DesignName identifies the scheme for reporting.
	DesignName() Design
	// BeginLayer starts a new layer epoch.
	BeginLayer(layer uint32)
	// Write stores a plaintext block at addr under position (fmap, idx)
	// with the layer-assigned version vn.
	Write(addr uint64, fmap uint32, vn int, idx uint32, plaintext []byte)
	// Read fetches the block written by ownerLayer at version vn. first
	// marks the block's first touch this layer (Seculator's MAC_FR path).
	// Per-block designs return an integrity error immediately.
	Read(addr uint64, ownerLayer, fmap uint32, vn int, idx uint32, first bool) ([]byte, error)
	// EndLayer closes the epoch: Seculator verifies the previous layer.
	EndLayer() error
}

// MACStore is the off-chip store of per-block MACs used by the Secure,
// TNPU and GuardNN designs. Like data DRAM, it is attacker-accessible:
// Snapshot/Restore/TamperMAC model coherent data+MAC attacks.
type MACStore struct {
	macs map[uint64]mac.Digest
}

// NewMACStore returns an empty store.
func NewMACStore() *MACStore { return &MACStore{macs: make(map[uint64]mac.Digest)} }

// Put stores the MAC of the block at addr.
func (s *MACStore) Put(addr uint64, d mac.Digest) { s.macs[addr] = d }

// Get returns the stored MAC.
func (s *MACStore) Get(addr uint64) (mac.Digest, bool) {
	d, ok := s.macs[addr]
	return d, ok
}

// Snapshot captures the current MAC (attacker primitive).
func (s *MACStore) Snapshot(addr uint64) (mac.Digest, bool) { return s.Get(addr) }

// Restore overwrites the MAC with a captured value (attacker primitive).
func (s *MACStore) Restore(addr uint64, d mac.Digest) { s.macs[addr] = d }

// TamperMAC flips a bit of the stored MAC (attacker primitive).
func (s *MACStore) TamperMAC(addr uint64, m byte) bool {
	d, ok := s.macs[addr]
	if !ok {
		return false
	}
	d[0] ^= m
	s.macs[addr] = d
	return true
}

// Swap exchanges two MAC entries (attacker splice primitive).
func (s *MACStore) Swap(a, b uint64) bool {
	da, oka := s.macs[a]
	db, okb := s.macs[b]
	if !oka || !okb {
		return false
	}
	s.macs[a], s.macs[b] = db, da
	return true
}

// ErrBlockIntegrity wraps mac.ErrIntegrity for per-block violations.
var ErrBlockIntegrity = mac.ErrIntegrity

// ---------------------------------------------------------------- baseline

// BaselineMemory stores plaintext with no protection: every attack
// succeeds silently.
type BaselineMemory struct {
	dram *mem.DRAM
}

// NewBaselineMemory wraps a DRAM with no protection.
func NewBaselineMemory(d *mem.DRAM) *BaselineMemory { return &BaselineMemory{dram: d} }

// DesignName implements FunctionalMemory.
func (m *BaselineMemory) DesignName() Design { return Baseline }

// BeginLayer implements FunctionalMemory.
func (m *BaselineMemory) BeginLayer(uint32) {}

// Write implements FunctionalMemory.
func (m *BaselineMemory) Write(addr uint64, _ uint32, _ int, _ uint32, pt []byte) {
	m.dram.WriteBlock(addr, pt, 0)
}

// Read implements FunctionalMemory: returns whatever DRAM holds, unchecked.
func (m *BaselineMemory) Read(addr uint64, _, _ uint32, _ int, _ uint32, _ bool) ([]byte, error) {
	out := make([]byte, tensor.BlockBytes)
	m.dram.ReadBlock(addr, out, 0)
	return out, nil
}

// EndLayer implements FunctionalMemory.
func (m *BaselineMemory) EndLayer() error { return nil }

// ------------------------------------------------------------------ secure

// SGXMemory is the functional Secure design: AES-CTR under SGX-style
// major/minor counters, a Merkle tree anchoring the counters on-chip, and
// per-block MACs in an (attacker-accessible) MAC store. Reads verify the
// counter path and the block MAC immediately.
type SGXMemory struct {
	dram     *mem.DRAM
	engine   *crypto.CTREngine
	counters *counter.Store
	tree     *merkle.Tree
	macs     *MACStore
	secret   uint64
	layer    uint32

	// deferred holds a Merkle-update failure from Write, surfaced at the
	// next Read or EndLayer (FunctionalMemory.Write has no error return).
	deferred error

	ct [tensor.BlockBytes]byte // reusable ciphertext staging (single-goroutine)
}

// NewSGXMemory builds the Secure functional memory covering `pages` 4 KB
// pages of protected address space.
func NewSGXMemory(d *mem.DRAM, secret, random uint64, pages int) (*SGXMemory, error) {
	cs := counter.NewStore()
	tree, err := merkle.New(pages, cs)
	if err != nil {
		return nil, err
	}
	return &SGXMemory{
		dram:     d,
		engine:   crypto.NewCTR(secret, random),
		counters: cs,
		tree:     tree,
		macs:     NewMACStore(),
		secret:   secret,
	}, nil
}

// MACs exposes the off-chip MAC store to attack tests.
func (m *SGXMemory) MACs() *MACStore { return m.macs }

// Counters exposes the counter store (tamper target; Merkle-protected).
func (m *SGXMemory) Counters() *counter.Store { return m.counters }

// DesignName implements FunctionalMemory.
func (m *SGXMemory) DesignName() Design { return Secure }

// BeginLayer implements FunctionalMemory.
func (m *SGXMemory) BeginLayer(l uint32) { m.layer = l }

func (m *SGXMemory) ctrOf(addr uint64, v counter.Value) crypto.Counter {
	// SGX derives the pad from the address and the combined counter.
	return crypto.Counter{
		Fmap:  uint32(addr >> 32),
		Layer: uint32(addr),
		VN:    uint32(v.Major<<8) | uint32(v.Minor),
		Block: 0,
	}
}

func (m *SGXMemory) macOf(addr uint64, v counter.Value, data []byte) mac.Digest {
	return mac.BlockMAC(mac.BlockRef{
		Secret: m.secret,
		Layer:  uint32(addr >> 32),
		Fmap:   uint32(addr),
		VN:     uint32(v.Major<<8) | uint32(v.Minor),
		Index:  0,
	}, data)
}

// Write implements FunctionalMemory: bump the block counter, re-encrypt,
// update the Merkle path and the block MAC.
func (m *SGXMemory) Write(addr uint64, _ uint32, _ int, _ uint32, pt []byte) {
	v, _ := m.counters.Increment(addr)
	if err := m.tree.Update(counter.PageOf(addr)); err != nil {
		if m.deferred == nil {
			m.deferred = fmt.Errorf("protect: merkle update: %w", err)
		}
		return
	}
	m.engine.EncryptBlock(m.ct[:], pt, m.ctrOf(addr, v))
	m.dram.WriteBlock(addr, m.ct[:], 0)
	m.macs.Put(addr, m.macOf(addr, v, pt))
}

// Read implements FunctionalMemory: verify the counter's Merkle path,
// decrypt under the current counter, verify the block MAC.
func (m *SGXMemory) Read(addr uint64, _, _ uint32, _ int, _ uint32, _ bool) ([]byte, error) {
	if m.deferred != nil {
		return nil, m.deferred
	}
	if err := m.tree.Verify(counter.PageOf(addr)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBlockIntegrity, err)
	}
	v := m.counters.Value(addr)
	m.dram.ReadBlock(addr, m.ct[:], 0)
	pt := make([]byte, tensor.BlockBytes)
	m.engine.DecryptBlock(pt, m.ct[:], m.ctrOf(addr, v))
	want, ok := m.macs.Get(addr)
	if !ok || m.macOf(addr, v, pt) != want {
		return nil, fmt.Errorf("%w: Secure: block %#x MAC mismatch", ErrBlockIntegrity, addr)
	}
	return pt, nil
}

// EndLayer implements FunctionalMemory: surfaces any deferred Write error.
func (m *SGXMemory) EndLayer() error { return m.deferred }

// -------------------------------------------------------------------- tnpu

// TNPUMemory is the functional TNPU design: AES-XTS keyed by address (no
// counters), tile version numbers in an on-chip/host tensor table (not
// attacker-accessible), and per-block MACs binding the VN, stored off-chip.
type TNPUMemory struct {
	dram   *mem.DRAM
	engine *crypto.XTSEngine
	table  map[uint32]int // tensor table: fmap/tile -> current VN
	macs   *MACStore
	secret uint64

	ct [tensor.BlockBytes]byte // reusable ciphertext staging (single-goroutine)
}

// NewTNPUMemory builds the TNPU functional memory.
func NewTNPUMemory(d *mem.DRAM, key1, key2 uint64) *TNPUMemory {
	return &TNPUMemory{
		dram:   d,
		engine: crypto.NewXTS(key1, key2),
		table:  make(map[uint32]int),
		macs:   NewMACStore(),
		secret: key1 ^ key2,
	}
}

// MACs exposes the off-chip MAC store to attack tests.
func (m *TNPUMemory) MACs() *MACStore { return m.macs }

// DesignName implements FunctionalMemory.
func (m *TNPUMemory) DesignName() Design { return TNPU }

// BeginLayer implements FunctionalMemory.
func (m *TNPUMemory) BeginLayer(uint32) {}

func (m *TNPUMemory) macOf(addr uint64, fmap uint32, vn int, idx uint32, data []byte) mac.Digest {
	return mac.BlockMAC(mac.BlockRef{
		Secret: m.secret, Layer: uint32(addr), Fmap: fmap, VN: uint32(vn), Index: idx,
	}, data)
}

// Write implements FunctionalMemory: encrypt by position, record the tile
// VN in the tensor table, store a VN-binding MAC.
func (m *TNPUMemory) Write(addr uint64, fmap uint32, vn int, idx uint32, pt []byte) {
	m.table[fmap] = vn
	m.engine.EncryptBlock(m.ct[:], pt, addr)
	m.dram.WriteBlock(addr, m.ct[:], 0)
	m.macs.Put(addr, m.macOf(addr, fmap, vn, idx, pt))
}

// Read implements FunctionalMemory: decrypt by position and verify the MAC
// under the table's current VN — a replayed (data, MAC) pair embeds a stale
// VN and fails.
func (m *TNPUMemory) Read(addr uint64, _, fmap uint32, _ int, idx uint32, _ bool) ([]byte, error) {
	vn, ok := m.table[fmap]
	if !ok {
		return nil, fmt.Errorf("%w: TNPU: no table entry for fmap %d", ErrBlockIntegrity, fmap)
	}
	m.dram.ReadBlock(addr, m.ct[:], 0)
	pt := make([]byte, tensor.BlockBytes)
	m.engine.DecryptBlock(pt, m.ct[:], addr)
	want, ok := m.macs.Get(addr)
	if !ok || m.macOf(addr, fmap, vn, idx, pt) != want {
		return nil, fmt.Errorf("%w: TNPU: block %#x MAC mismatch", ErrBlockIntegrity, addr)
	}
	return pt, nil
}

// EndLayer implements FunctionalMemory.
func (m *TNPUMemory) EndLayer() error { return nil }

// ----------------------------------------------------------------- guardnn

// GuardNNMemory is the functional GuardNN design: AES-CTR with version
// numbers managed by the host scheduler over a secure channel (modeled as a
// non-tamperable map), per-block MACs stored off-chip with no cache.
type GuardNNMemory struct {
	dram      *mem.DRAM
	engine    *crypto.CTREngine
	scheduler map[uint32]int // host scheduler's VN ledger: fmap -> VN
	macs      *MACStore
	secret    uint64

	ct [tensor.BlockBytes]byte // reusable ciphertext staging (single-goroutine)
}

// NewGuardNNMemory builds the GuardNN functional memory.
func NewGuardNNMemory(d *mem.DRAM, secret, random uint64) *GuardNNMemory {
	return &GuardNNMemory{
		dram:      d,
		engine:    crypto.NewCTR(secret, random),
		scheduler: make(map[uint32]int),
		macs:      NewMACStore(),
		secret:    secret,
	}
}

// MACs exposes the off-chip MAC store to attack tests.
func (m *GuardNNMemory) MACs() *MACStore { return m.macs }

// DesignName implements FunctionalMemory.
func (m *GuardNNMemory) DesignName() Design { return GuardNN }

// BeginLayer implements FunctionalMemory.
func (m *GuardNNMemory) BeginLayer(uint32) {}

func (m *GuardNNMemory) ctrOf(addr uint64, fmap uint32, vn int) crypto.Counter {
	return crypto.Counter{Fmap: fmap, Layer: uint32(addr), VN: uint32(vn), Block: uint32(addr >> 32)}
}

func (m *GuardNNMemory) macOf(addr uint64, fmap uint32, vn int, idx uint32, data []byte) mac.Digest {
	return mac.BlockMAC(mac.BlockRef{
		Secret: m.secret, Layer: uint32(addr), Fmap: fmap, VN: uint32(vn), Index: idx,
	}, data)
}

// Write implements FunctionalMemory: on-chip counters assign the VN, which
// the scheduler mirrors.
func (m *GuardNNMemory) Write(addr uint64, fmap uint32, vn int, idx uint32, pt []byte) {
	m.scheduler[fmap] = vn
	m.engine.EncryptBlock(m.ct[:], pt, m.ctrOf(addr, fmap, vn))
	m.dram.WriteBlock(addr, m.ct[:], 0)
	m.macs.Put(addr, m.macOf(addr, fmap, vn, idx, pt))
}

// Read implements FunctionalMemory: the VN comes from the host scheduler.
func (m *GuardNNMemory) Read(addr uint64, _, fmap uint32, _ int, idx uint32, _ bool) ([]byte, error) {
	vn, ok := m.scheduler[fmap]
	if !ok {
		return nil, fmt.Errorf("%w: GuardNN: scheduler has no VN for fmap %d", ErrBlockIntegrity, fmap)
	}
	m.dram.ReadBlock(addr, m.ct[:], 0)
	pt := make([]byte, tensor.BlockBytes)
	m.engine.DecryptBlock(pt, m.ct[:], m.ctrOf(addr, fmap, vn))
	want, ok := m.macs.Get(addr)
	if !ok || m.macOf(addr, fmap, vn, idx, pt) != want {
		return nil, fmt.Errorf("%w: GuardNN: block %#x MAC mismatch", ErrBlockIntegrity, addr)
	}
	return pt, nil
}

// EndLayer implements FunctionalMemory.
func (m *GuardNNMemory) EndLayer() error { return nil }

// --------------------------------------------------------------- seculator

// SeculatorFunctional adapts SeculatorMemory to the FunctionalMemory
// interface: reads never fail individually; EndLayer runs the Equation 1
// verification for the previous layer.
type SeculatorFunctional struct {
	inner *SeculatorMemory
	layer uint32
}

// NewSeculatorFunctional wraps a SeculatorMemory.
func NewSeculatorFunctional(d *mem.DRAM, secret, random uint64) *SeculatorFunctional {
	return &SeculatorFunctional{inner: NewSeculatorMemory(d, secret, random)}
}

// DesignName implements FunctionalMemory.
func (m *SeculatorFunctional) DesignName() Design { return Seculator }

// BeginLayer implements FunctionalMemory.
func (m *SeculatorFunctional) BeginLayer(l uint32) {
	m.layer = l
	m.inner.BeginLayer(l)
}

// Write implements FunctionalMemory.
func (m *SeculatorFunctional) Write(addr uint64, fmap uint32, vn int, idx uint32, pt []byte) {
	m.inner.WriteBlock(addr, fmap, vn, idx, pt)
}

// Read implements FunctionalMemory: in-layer reads are partial-sum reads,
// cross-layer reads are input reads; detection is deferred to EndLayer.
func (m *SeculatorFunctional) Read(addr uint64, ownerLayer, fmap uint32, vn int, idx uint32, first bool) ([]byte, error) {
	if ownerLayer == m.layer {
		return m.inner.ReadPartial(addr, fmap, vn, idx), nil
	}
	return m.inner.ReadInput(addr, ownerLayer, fmap, vn, idx, first), nil
}

// EndLayer implements FunctionalMemory: with at least two layer epochs in
// flight, run the deferred Equation 1 check for the previous layer.
func (m *SeculatorFunctional) EndLayer() error {
	if m.layer < 2 {
		return nil
	}
	return m.inner.VerifyPreviousLayer(mac.Digest{})
}
