package protect

import (
	"bytes"
	"errors"
	"testing"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/tensor"
)

func plainBlock(seed byte) []byte {
	b := make([]byte, tensor.BlockBytes)
	for i := range b {
		b[i] = seed ^ byte(3*i)
	}
	return b
}

func mustDRAM(t *testing.T) *mem.DRAM {
	t.Helper()
	d, err := mem.New(mem.DefaultConfig())
	if err != nil {
		t.Fatalf("mem.New: %v", err)
	}
	return d
}

func newSecMem(t *testing.T) (*SeculatorMemory, *mem.DRAM) {
	t.Helper()
	d := mustDRAM(t)
	return NewSeculatorMemory(d, 0xabc, 0xdef), d
}

func TestSeculatorMemoryRoundTrip(t *testing.T) {
	sm, _ := newSecMem(t)
	sm.BeginLayer(1)
	pt := plainBlock(1)
	sm.WriteBlock(10, 0, 1, 0, pt)
	got := sm.ReadPartial(10, 0, 1, 0)
	if !bytes.Equal(got, pt) {
		t.Fatal("partial read did not return the written plaintext")
	}
	// A write under layer 1 is readable as input from layer 2.
	sm.WriteBlock(11, 0, 2, 0, pt)
	sm.BeginLayer(2)
	got = sm.ReadInput(11, 1, 0, 2, 0, true)
	if !bytes.Equal(got, pt) {
		t.Fatal("input read did not return the written plaintext")
	}
}

func TestSeculatorMemoryEquationOne(t *testing.T) {
	sm, _ := newSecMem(t)
	sm.BeginLayer(1)
	finals := make([][]byte, 3)
	for i := range finals {
		finals[i] = plainBlock(byte(i + 1))
		sm.WriteBlock(uint64(i), uint32(i), 1, 0, finals[i])
	}
	sm.BeginLayer(2)
	for i, pt := range finals {
		got := sm.ReadInput(uint64(i), 1, uint32(i), 1, 0, true)
		if !bytes.Equal(got, pt) {
			t.Fatal("decrypt mismatch")
		}
	}
	if err := sm.VerifyPreviousLayer(mac.Digest{}); err != nil {
		t.Fatalf("honest Equation 1 failed: %v", err)
	}
}

func TestSeculatorMemoryDetectsTamper(t *testing.T) {
	sm, d := newSecMem(t)
	sm.BeginLayer(1)
	sm.WriteBlock(0, 0, 1, 0, plainBlock(9))
	d.Tamper(0, 4, 0x08)
	sm.BeginLayer(2)
	sm.ReadInput(0, 1, 0, 1, 0, true)
	if err := sm.VerifyPreviousLayer(mac.Digest{}); !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("tamper not detected: %v", err)
	}
}

func TestSeculatorMemoryGoldenHelpers(t *testing.T) {
	sm, _ := newSecMem(t)
	blocks := [][]byte{plainBlock(1), plainBlock(2)}
	var want mac.Digest
	for i, b := range blocks {
		d := sm.HostWriteBlock(uint64(100+i), 0, 5, 1, uint32(i), b)
		want = want.Xor(d)
		if d != sm.BlockDigest(0, 5, 1, uint32(i), b) {
			t.Fatal("HostWriteBlock digest != BlockDigest")
		}
	}
	if g := sm.GoldenInputMAC(0, 5, 1, blocks); g != want {
		t.Fatal("GoldenInputMAC mismatch")
	}
	// ReadStatic round-trips and returns the matching digest.
	sm.BeginLayer(1)
	pt, d := sm.ReadStatic(100, 0, 5, 1, 0)
	if !bytes.Equal(pt, blocks[0]) {
		t.Fatal("ReadStatic plaintext mismatch")
	}
	if d != sm.BlockDigest(0, 5, 1, 0, blocks[0]) {
		t.Fatal("ReadStatic digest mismatch")
	}
	// Golden input verification through the checker.
	sm.ReadInput(100, 0, 5, 1, 0, true)
	sm.ReadInput(101, 0, 5, 1, 1, true)
	if err := sm.VerifyInputsGolden(want); err != nil {
		t.Fatalf("golden verification failed: %v", err)
	}
}

func TestSeculatorMemoryRereadCheck(t *testing.T) {
	sm, _ := newSecMem(t)
	sm.BeginLayer(1)
	sm.WriteBlock(0, 0, 1, 0, plainBlock(3))
	sm.BeginLayer(2)
	sm.ReadInput(0, 1, 0, 1, 0, true)
	sm.ReadInput(0, 1, 0, 1, 0, false) // second sweep
	if err := sm.VerifyRereads(2); err != nil {
		t.Fatalf("even-sweep IR check failed: %v", err)
	}
}

func TestSeculatorMemoryMustStart(t *testing.T) {
	sm, _ := newSecMem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("use before BeginLayer should panic")
		}
	}()
	sm.WriteBlock(0, 0, 1, 0, plainBlock(0))
}

func TestSeculatorFunctionalAdapter(t *testing.T) {
	d := mustDRAM(t)
	fm := NewSeculatorFunctional(d, 1, 2)
	if fm.DesignName() != Seculator {
		t.Fatal("wrong design name")
	}
	fm.BeginLayer(1)
	pt := plainBlock(7)
	fm.Write(0, 0, 1, 0, pt)
	// In-layer read = partial path.
	got, err := fm.Read(0, 1, 0, 1, 0, false)
	if err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("adapter partial read: %v", err)
	}
	fm.Write(0, 0, 2, 0, pt)
	if err := fm.EndLayer(); err != nil {
		t.Fatalf("layer-1 EndLayer should be a no-op: %v", err)
	}
	fm.BeginLayer(2)
	if _, err := fm.Read(0, 1, 0, 2, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := fm.EndLayer(); err != nil {
		t.Fatalf("honest adapter verification failed: %v", err)
	}
}
