package protect

import (
	"testing"

	"seculator/internal/dataflow"
	"seculator/internal/sim"
	"seculator/internal/tensor"
)

func testLayerInfo() LayerInfo {
	m := &dataflow.Mapping{
		Name:    "test",
		Reuse:   dataflow.InputReuse,
		Order:   dataflow.LoopOrder{dataflow.LoopS, dataflow.LoopC, dataflow.LoopK},
		AlphaHW: 4, AlphaC: 3, AlphaK: 2,
		IfmapTileBlocks: 16, OfmapTileBlocks: 16, WeightTileBlocks: 4,
	}
	return LayerInfo{
		Index: 1, Mapping: m,
		IfmapBase: 0, OfmapBase: 10_000, WeightBase: 20_000,
		SpatialTiles: 4,
	}
}

func readEvent(li LayerInfo) dataflow.Event {
	return dataflow.Event{
		Kind: sim.Read, Tensor: tensor.Ifmap,
		Tile:   tensor.TileID{Kind: tensor.Ifmap, Fmap: 1, Spatial: 2},
		Blocks: li.Mapping.IfmapTileBlocks,
	}
}

func writeEvent(li LayerInfo) dataflow.Event {
	return dataflow.Event{
		Kind: sim.Write, Tensor: tensor.Ofmap,
		Tile:   tensor.TileID{Kind: tensor.Ofmap, Fmap: 0, Spatial: 1},
		Blocks: li.Mapping.OfmapTileBlocks, VN: 1,
	}
}

func TestDesignsAndStrings(t *testing.T) {
	ds := Designs()
	if len(ds) != 6 {
		t.Fatalf("Designs = %d, want 6", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		s := d.String()
		if s == "" || seen[s] {
			t.Fatalf("bad design string %q", s)
		}
		seen[s] = true
	}
	if Design(99).String() == "" {
		t.Fatal("unknown design should render")
	}
}

// Table 5 feature matrix.
func TestPropertiesMatrix(t *testing.T) {
	if p := PropertiesOf(Baseline); p.Encryption != "" || p.IntegrityLevel != "" {
		t.Fatal("baseline must have no protection")
	}
	if p := PropertiesOf(Secure); p.Encryption != "CTR" || p.IntegrityLevel != "block" || p.AntiReplay != "counters" {
		t.Fatalf("Secure row wrong: %+v", p)
	}
	if p := PropertiesOf(TNPU); p.Encryption != "XTS" || p.IntegrityLevel != "block" || p.AntiReplay != "VN" {
		t.Fatalf("TNPU row wrong: %+v", p)
	}
	if p := PropertiesOf(GuardNN); p.Encryption != "CTR" || p.IntegrityLevel != "block" {
		t.Fatalf("GuardNN row wrong: %+v", p)
	}
	if p := PropertiesOf(Seculator); p.IntegrityLevel != "layer" || p.MEAProtection {
		t.Fatalf("Seculator row wrong: %+v", p)
	}
	if p := PropertiesOf(SeculatorPlus); !p.MEAProtection || p.IntegrityLevel != "layer" {
		t.Fatalf("Seculator+ row wrong: %+v", p)
	}
}

func TestNewAllDesigns(t *testing.T) {
	for _, d := range Designs() {
		e, err := New(d, DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if e.Design() != d {
			t.Fatalf("engine for %s reports %s", d, e.Design())
		}
	}
	if _, err := New(Design(99), DefaultParams()); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func mustEngine(t *testing.T, d Design, p Params) Engine {
	t.Helper()
	e, err := New(d, p)
	if err != nil {
		t.Fatalf("New(%v): %v", d, err)
	}
	return e
}

func TestBaselineCostsNothing(t *testing.T) {
	e := mustEngine(t, Baseline, DefaultParams())
	li := testLayerInfo()
	e.BeginLayer(li)
	if c := e.OnEvent(readEvent(li)); c.ExtraBlocks() != 0 || c.Latency != 0 {
		t.Fatal("baseline charged a cost")
	}
	if c := e.EndLayer(); c.ExtraBlocks() != 0 || c.Latency != 0 {
		t.Fatal("baseline EndLayer charged a cost")
	}
}

func TestSeculatorCostsNoBlocks(t *testing.T) {
	e := mustEngine(t, Seculator, DefaultParams())
	li := testLayerInfo()
	e.BeginLayer(li)
	if c := e.OnEvent(readEvent(li)); c.ExtraBlocks() != 0 {
		t.Fatal("Seculator moved metadata blocks")
	}
	if c := e.OnEvent(writeEvent(li)); c.ExtraBlocks() != 0 {
		t.Fatal("Seculator moved metadata blocks on write")
	}
	end := e.EndLayer()
	if end.ExtraBlocks() != 0 {
		t.Fatal("Seculator EndLayer moved blocks")
	}
	if end.Latency == 0 {
		t.Fatal("Seculator must still pay the crypto pipeline fill")
	}
}

func TestSecureChargesMetadata(t *testing.T) {
	e := mustEngine(t, Secure, DefaultParams())
	li := testLayerInfo()
	e.BeginLayer(li)
	c := e.OnEvent(readEvent(li))
	// 16 cold blocks: 2 MAC lines missed, 1 counter line missed (+Merkle).
	if c.ReadBlocks[sim.MACTraffic] != 2 {
		t.Fatalf("MAC fetches = %d, want 2", c.ReadBlocks[sim.MACTraffic])
	}
	if c.ReadBlocks[sim.CounterTraffic] != 1 {
		t.Fatalf("counter fetches = %d, want 1", c.ReadBlocks[sim.CounterTraffic])
	}
	if c.ReadBlocks[sim.MerkleTraffic] != 2 {
		t.Fatalf("merkle fetches = %d, want 2 (levels)", c.ReadBlocks[sim.MerkleTraffic])
	}
	if c.Latency == 0 {
		t.Fatal("counter miss must add serialized latency")
	}
	// Re-reading the same tile hits everywhere.
	c2 := e.OnEvent(readEvent(li))
	if c2.ExtraBlocks() != 0 {
		t.Fatalf("warm re-read still charged %d blocks", c2.ExtraBlocks())
	}
	ms, ok := e.MACCacheStats()
	if !ok || ms.Accesses != 32 {
		t.Fatalf("MAC cache stats: %+v ok=%v", ms, ok)
	}
	cs, ok := e.CounterCacheStats()
	if !ok || cs.Accesses != 32 {
		t.Fatalf("counter cache stats: %+v ok=%v", cs, ok)
	}
}

func TestSecureWritebacksOnDirtyEviction(t *testing.T) {
	p := DefaultParams()
	p.MACCacheBytes = 2 * 64 // two MAC lines only
	p.MACCacheWays = 1
	p.CounterCacheBytes = 2 * 64
	p.CounterCacheWays = 1
	e, err := New(Secure, p)
	if err != nil {
		t.Fatal(err)
	}
	li := testLayerInfo()
	e.BeginLayer(li)
	// Dirty the caches with a write, then stream far-away writes to force
	// dirty evictions.
	e.OnEvent(writeEvent(li))
	ev := writeEvent(li)
	ev.Tile.Spatial = 3
	ev.Tile.Fmap = 1
	var total Cost
	total.Add(e.OnEvent(ev))
	evw := dataflow.Event{
		Kind: sim.Write, Tensor: tensor.Weight,
		Tile: tensor.TileID{Kind: tensor.Weight, Fmap: 1, Spatial: 2}, Blocks: 4,
	}
	total.Add(e.OnEvent(evw))
	if total.WriteBlocks[sim.MACTraffic] == 0 {
		t.Fatal("dirty MAC lines never written back")
	}
}

func TestTNPUTableTraffic(t *testing.T) {
	e := mustEngine(t, TNPU, DefaultParams())
	li := testLayerInfo()
	e.BeginLayer(li)
	cr := e.OnEvent(readEvent(li))
	if cr.ReadBlocks[sim.TableTraffic] != 1 || cr.WriteBlocks[sim.TableTraffic] != 0 {
		t.Fatalf("tile read table traffic: %+v", cr.ReadBlocks)
	}
	if cr.Latency == 0 {
		t.Fatal("tensor table access must cost latency")
	}
	cw := e.OnEvent(writeEvent(li))
	if cw.WriteBlocks[sim.TableTraffic] != 1 {
		t.Fatal("tile write must update the table")
	}
	if cr.ReadBlocks[sim.CounterTraffic] != 0 {
		t.Fatal("TNPU has no counters")
	}
	if _, ok := e.CounterCacheStats(); ok {
		t.Fatal("TNPU must not report a counter cache")
	}
}

func TestGuardNNUncachedMACs(t *testing.T) {
	e := mustEngine(t, GuardNN, DefaultParams())
	li := testLayerInfo()
	e.BeginLayer(li)
	cr := e.OnEvent(readEvent(li))
	// 16 blocks x the calibrated 0.4 MAC fraction -> ceil(6.4) = 7 beats.
	want := uint64(7)
	if cr.ReadBlocks[sim.MACTraffic] != want {
		t.Fatalf("read MAC beats = %d, want %d", cr.ReadBlocks[sim.MACTraffic], want)
	}
	if cr.Latency < DefaultParams().HostVNRoundTrip {
		t.Fatal("tile read must pay the host VN round trip")
	}
	cw := e.OnEvent(writeEvent(li))
	if cw.WriteBlocks[sim.MACTraffic] != want {
		t.Fatalf("write MAC beats = %d, want %d", cw.WriteBlocks[sim.MACTraffic], want)
	}
	if cw.Latency != 0 {
		t.Fatal("writes use on-chip counters: no host round trip")
	}
	// No cache: the same tile re-read pays again.
	cr2 := e.OnEvent(readEvent(li))
	if cr2.ReadBlocks[sim.MACTraffic] != want {
		t.Fatal("GuardNN must re-fetch MACs on every access")
	}
	if _, ok := e.MACCacheStats(); ok {
		t.Fatal("GuardNN must not report a MAC cache")
	}
}

func TestCostAddAndExtraBlocks(t *testing.T) {
	var a, b Cost
	a.ReadBlocks[sim.MACTraffic] = 3
	a.Latency = 10
	b.WriteBlocks[sim.CounterTraffic] = 2
	b.Latency = 5
	a.Add(b)
	if a.ExtraBlocks() != 5 || a.Latency != 15 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestBlockRangeLayout(t *testing.T) {
	li := testLayerInfo()
	start, n := li.BlockRange(readEvent(li))
	// Ifmap tile (fmap=1, spatial=2): linear = 1*4+2 = 6; 6*16 = 96.
	if start != 96 || n != 16 {
		t.Fatalf("blockRange = (%d, %d), want (96, 16)", start, n)
	}
	w := dataflow.Event{Kind: sim.Read, Tensor: tensor.Weight,
		Tile: tensor.TileID{Kind: tensor.Weight, Fmap: 1, Spatial: 0}, Blocks: 4}
	start, n = li.BlockRange(w)
	if start != 20_000+4*4 || n != 4 {
		t.Fatalf("weight blockRange = (%d, %d)", start, n)
	}
}
