package protect

import (
	"seculator/internal/cache"
	"seculator/internal/dataflow"
	"seculator/internal/sim"
)

// macLineShift converts a data-block address to its MAC-line address:
// one 64-byte MAC line holds 8 eight-byte per-block MACs.
const macLineShift = 3 // log2(tensor.MACsPerBlock)

// counterLineShift converts a data-block address to its counter-line
// address: one counter line covers a 64-block page.
const counterLineShift = 6

// ---------------------------------------------------------------- baseline

type baselineEngine struct{}

func (*baselineEngine) Design() Design                         { return Baseline }
func (*baselineEngine) BeginLayer(LayerInfo)                   {}
func (*baselineEngine) OnEvent(dataflow.Event) Cost            { return Cost{} }
func (*baselineEngine) EndLayer() Cost                         { return Cost{} }
func (*baselineEngine) MACCacheStats() (cache.Stats, bool)     { return cache.Stats{}, false }
func (*baselineEngine) CounterCacheStats() (cache.Stats, bool) { return cache.Stats{}, false }

// ------------------------------------------------------------------ secure

// secureEngine models the SGX-Client-style design: per-block counters
// behind a 4 KB counter cache protected by a Merkle tree, per-block MACs
// behind an 8 KB MAC cache, AES-CTR decryption on every block.
type secureEngine struct {
	p        Params
	macCache *cache.Cache
	ctrCache *cache.Cache
	li       LayerInfo
}

func newSecureEngine(p Params) (*secureEngine, error) {
	mc, err := cache.New(p.MACCacheBytes, p.MACCacheWays)
	if err != nil {
		return nil, err
	}
	cc, err := cache.New(p.CounterCacheBytes, p.CounterCacheWays)
	if err != nil {
		return nil, err
	}
	return &secureEngine{p: p, macCache: mc, ctrCache: cc}, nil
}

func (e *secureEngine) Design() Design          { return Secure }
func (e *secureEngine) BeginLayer(li LayerInfo) { e.li = li }

func (e *secureEngine) OnEvent(ev dataflow.Event) Cost {
	var c Cost
	start, n := e.li.BlockRange(ev)
	write := ev.Kind == sim.Write
	for b := uint64(0); b < uint64(n); b++ {
		addr := start + b

		// Counter lookup: reads need the counter to build the OTP; writes
		// bump the minor counter (dirtying the line).
		cr := e.ctrCache.Access(addr>>counterLineShift, write)
		if !cr.Hit {
			c.ReadBlocks[sim.CounterTraffic]++
			c.ReadBlocks[sim.MerkleTraffic] += uint64(e.p.MerkleLevelsDRAM)
			c.Latency = c.Latency.Add(e.p.CounterMissPenalty)
		}
		if cr.WritebackReq {
			c.WriteBlocks[sim.CounterTraffic]++
			// The tree path over the evicted counter line is re-hashed;
			// dirty levels flow out with it.
			c.WriteBlocks[sim.MerkleTraffic] += uint64(e.p.MerkleLevelsDRAM)
		}

		// MAC lookup: reads verify, writes update (dirty line).
		mr := e.macCache.Access(addr>>macLineShift, write)
		if !mr.Hit {
			c.ReadBlocks[sim.MACTraffic]++
		}
		if mr.WritebackReq {
			c.WriteBlocks[sim.MACTraffic]++
		}
	}
	return c
}

// EndLayer charges the crypto pipelines' fill latency once per layer: the
// AES and SHA units stay full across back-to-back bursts, so only the
// initial fill is exposed.
func (e *secureEngine) EndLayer() Cost {
	return Cost{Latency: e.p.AES.PipelineDepth.Add(e.p.SHA.PipelineDepth)}
}

func (e *secureEngine) MACCacheStats() (cache.Stats, bool)     { return e.macCache.Stats(), true }
func (e *secureEngine) CounterCacheStats() (cache.Stats, bool) { return e.ctrCache.Stats(), true }

// -------------------------------------------------------------------- tnpu

// tnpuEngine models TNPU: XTS encryption (no counters), tile-granular VNs
// in a tensor table held in host secure memory, per-block MACs behind the
// 8 KB on-chip MAC cache.
type tnpuEngine struct {
	p        Params
	macCache *cache.Cache
	li       LayerInfo
}

func newTNPUEngine(p Params) (*tnpuEngine, error) {
	mc, err := cache.New(p.MACCacheBytes, p.MACCacheWays)
	if err != nil {
		return nil, err
	}
	return &tnpuEngine{p: p, macCache: mc}, nil
}

func (e *tnpuEngine) Design() Design          { return TNPU }
func (e *tnpuEngine) BeginLayer(li LayerInfo) { e.li = li }

func (e *tnpuEngine) OnEvent(ev dataflow.Event) Cost {
	var c Cost
	start, n := e.li.BlockRange(ev)
	write := ev.Kind == sim.Write

	// Tensor-table access per tile: a VN read for loads, a VN bump for
	// stores. The table lives in the host CPU's secure memory region.
	if write {
		c.WriteBlocks[sim.TableTraffic]++
	} else {
		c.ReadBlocks[sim.TableTraffic]++
	}
	c.Latency = c.Latency.Add(e.p.TableLatency)

	for b := uint64(0); b < uint64(n); b++ {
		addr := start + b
		mr := e.macCache.Access(addr>>macLineShift, write)
		if !mr.Hit {
			c.ReadBlocks[sim.MACTraffic]++
		}
		if mr.WritebackReq {
			c.WriteBlocks[sim.MACTraffic]++
		}
	}
	return c
}

// EndLayer charges the crypto pipeline fill once per layer (see secureEngine).
func (e *tnpuEngine) EndLayer() Cost {
	return Cost{Latency: e.p.AES.PipelineDepth.Add(e.p.SHA.PipelineDepth)}
}

func (e *tnpuEngine) MACCacheStats() (cache.Stats, bool)     { return e.macCache.Stats(), true }
func (e *tnpuEngine) CounterCacheStats() (cache.Stats, bool) { return cache.Stats{}, false }

// ----------------------------------------------------------------- guardnn

// guardnnEngine models GuardNN: per-block MACs read/written straight from
// DRAM with no cache, and version numbers served by a scheduler on the host
// CPU over a secure channel — one round trip per tile read.
type guardnnEngine struct {
	p  Params
	li LayerInfo
}

func (e *guardnnEngine) Design() Design          { return GuardNN }
func (e *guardnnEngine) BeginLayer(li LayerInfo) { e.li = li }

func (e *guardnnEngine) OnEvent(ev dataflow.Event) Cost {
	var c Cost
	_, n := e.li.BlockRange(ev)
	// Every data block access is accompanied by its own 8-byte MAC request
	// straight to DRAM — GuardNN has no MAC cache, so each request moves a
	// burst-chopped beat, partially write-combined by the memory controller
	// (GuardNNMACFraction blocks per data block; see Params).
	macBlocks := uint64(float64(n)*e.p.GuardNNMACFraction + 0.999999)
	if ev.Kind == sim.Read {
		c.ReadBlocks[sim.MACTraffic] += macBlocks
		// VNs for reads come from the host scheduler over the secure
		// channel — one round trip per tile.
		c.Latency = c.Latency.Add(e.p.HostVNRoundTrip)
	} else {
		c.WriteBlocks[sim.MACTraffic] += macBlocks
		// Write VNs come from on-chip counters: free.
	}
	return c
}

// EndLayer charges the crypto pipeline fill once per layer (see secureEngine).
func (e *guardnnEngine) EndLayer() Cost {
	return Cost{Latency: e.p.AES.PipelineDepth.Add(e.p.SHA.PipelineDepth)}
}
func (e *guardnnEngine) MACCacheStats() (cache.Stats, bool)     { return cache.Stats{}, false }
func (e *guardnnEngine) CounterCacheStats() (cache.Stats, bool) { return cache.Stats{}, false }

// --------------------------------------------------------------- seculator

// seculatorEngine models Seculator (and Seculator+): version numbers come
// from the on-chip FSM and integrity state lives in four 256-bit registers,
// so no event moves any metadata block. The only residual cost is the
// crypto pipeline fill per burst and a constant layer-verification step.
type seculatorEngine struct {
	p      Params
	design Design
}

func (e *seculatorEngine) Design() Design       { return e.design }
func (e *seculatorEngine) BeginLayer(LayerInfo) {}

func (e *seculatorEngine) OnEvent(ev dataflow.Event) Cost { return Cost{} }

// EndLayer charges the crypto pipeline fill (once per layer, like every
// design) plus the Equation 1 register comparison — a handful of cycles,
// no memory traffic.
func (e *seculatorEngine) EndLayer() Cost {
	return Cost{Latency: e.p.AES.PipelineDepth.Add(e.p.SHA.PipelineDepth).Add(8)}
}

func (e *seculatorEngine) MACCacheStats() (cache.Stats, bool)     { return cache.Stats{}, false }
func (e *seculatorEngine) CounterCacheStats() (cache.Stats, bool) { return cache.Stats{}, false }
