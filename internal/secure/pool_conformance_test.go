package secure

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/protect"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// pool_conformance_test.go — the oracle for cross-request run-state reuse
// (parallel.go). A pooled runtime that leaks one request's state into the
// next would not crash; it would silently skew activations, MAC registers,
// or the keystream. So the conformance harness runs the same request
// sequence twice — once on fresh state per run (pooling off), once reusing
// one pooled state across consecutive runs — and demands bit-identical
// outputs AND bit-identical final MAC registers, across worker counts.

// conformanceCase is one request in the reuse sequence: deliberately
// different networks and seeds back to back, so any stale geometry,
// stale slab contents, or stale digest from the previous run shows up.
type conformanceCase struct {
	net  workload.Network
	seed int64
}

func conformanceSequence() []conformanceCase {
	strided := workload.Network{
		Name: "strided",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 2, H: 11, W: 11, K: 4, R: 5, S: 5, Stride: 2, Valid: true},
			{Name: "c2", Type: workload.Conv, C: 4, H: 4, W: 4, K: 6, R: 3, S: 3, Stride: 2},
		},
	}
	deepER := workload.Network{
		Name: "two",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
		},
	}
	return []conformanceCase{
		{miniNet(), 42},   // every layer type
		{strided, 7},      // different geometry, valid + strided convs
		{deepER, 3},       // different depth and seed
		{miniNet(), 1000}, // back to the first geometry with new weights
	}
}

// runCase executes one case on x and returns the output plus the final
// layer's MAC register snapshot.
func runCase(t *testing.T, x *Executor, c conformanceCase) (*nn.Tensor, protect.RegisterState) {
	t.Helper()
	in, ws := nn.RandomModel(c.net, c.seed)
	var last protect.RegisterState
	x.OnLayerMACs = func(phase int, regs protect.RegisterState) { last = regs }
	res, err := x.Run(context.Background(), c.net, in, ws)
	if err != nil {
		t.Fatalf("%s/seed=%d: %v", c.net.Name, c.seed, err)
	}
	return res.Output, last
}

// TestPooledRuntimeConformance is the reuse oracle: one executor serving
// the whole sequence with pooling on (every run after the first rides the
// recycled state) must match fresh-state baselines bit for bit — outputs
// and all four XOR-MAC registers with their fold counts.
func TestPooledRuntimeConformance(t *testing.T) {
	seq := conformanceSequence()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Fresh-state baselines: pooling off, a new executor per run.
			SetRunPooling(false)
			baselines := make([]*nn.Tensor, len(seq))
			baseRegs := make([]protect.RegisterState, len(seq))
			for i, c := range seq {
				x := NewExecutor()
				x.Parallel = workers
				baselines[i], baseRegs[i] = runCase(t, x, c)
			}

			// Pooled: one executor, consecutive runs, state recycled
			// between them.
			SetRunPooling(true)
			defer SetRunPooling(true)
			x := NewExecutor()
			x.Parallel = workers
			for i, c := range seq {
				out, regs := runCase(t, x, c)
				if !out.Equal(baselines[i]) {
					t.Fatalf("run %d (%s/seed=%d): pooled output diverged from fresh-state baseline",
						i, c.net.Name, c.seed)
				}
				if regs != baseRegs[i] {
					t.Fatalf("run %d (%s/seed=%d): pooled MAC registers diverged:\npooled %+v\nfresh  %+v",
						i, c.net.Name, c.seed, regs, baseRegs[i])
				}
			}
		})
	}
}

// TestPooledRuntimeIdentityMismatch: a pooled state keyed to one crypto
// identity must never serve a run under another. The second executor uses
// a different secret; its run must still match its own fresh reference.
func TestPooledRuntimeIdentityMismatch(t *testing.T) {
	SetRunPooling(true)
	defer SetRunPooling(true)
	c := conformanceSequence()[0]
	in, ws := nn.RandomModel(c.net, c.seed)

	x1 := NewExecutor()
	res1, err := x1.Run(context.Background(), c.net, in, ws)
	if err != nil {
		t.Fatal(err)
	}

	x2 := NewExecutor()
	x2.Secret = DefaultSecret ^ 0xdead
	x2.Random = DefaultRandom ^ 0xbeef
	res2, err := x2.Run(context.Background(), c.net, in, ws)
	if err != nil {
		t.Fatalf("different-identity run after pooled run: %v", err)
	}
	if !res1.Output.Equal(res2.Output) {
		t.Fatal("crypto identity must not change functional output")
	}
}

// TestRunPoolHammer floods the run-state pool from many goroutines with
// mixed networks, seeds, and worker counts — the shape of a busy serving
// tier. Under -race it is the data-race detector's view of the pool
// (acquire/scrub/release and the preload hand-off); functionally every
// result must match its golden reference.
func TestRunPoolHammer(t *testing.T) {
	SetRunPooling(true)
	defer SetRunPooling(true)

	seq := conformanceSequence()
	goldens := make([]*nn.Tensor, len(seq))
	for i, c := range seq {
		in, ws := nn.RandomModel(c.net, c.seed)
		g, err := nn.ForwardNetwork(c.net, in, ws)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = g
	}

	const goroutines = 8
	iters := 6
	if testing.Short() {
		iters = 2
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(seq)
				c := seq[i]
				x := NewExecutor()
				x.Parallel = 1 + (g+it)%4 // mix pool keys: workers 1..4
				in, ws := nn.RandomModel(c.net, c.seed)
				res, err := x.Run(context.Background(), c.net, in, ws)
				if err != nil {
					errc <- fmt.Errorf("g%d it%d %s: %v", g, it, c.net.Name, err)
					return
				}
				if !res.Output.Equal(goldens[i]) {
					errc <- fmt.Errorf("g%d it%d %s: pooled output diverged under contention", g, it, c.net.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPooledStateNotResurrectedByReserve pins the mem.DRAM contract the
// pool depends on: after Reset, re-Reserving the same range must observe
// zeroed, unwritten lines — not the previous run's ciphertext.
func TestPooledStateNotResurrectedByReserve(t *testing.T) {
	d, err := mem.New(mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.Reserve(8)
	var line [tensor.BlockBytes]byte
	line[0] = 0xAA
	d.WriteBlockQuiet(3, line[:])
	d.Reset()
	d.Reserve(8)
	if got := d.Lines(); got != 0 {
		t.Fatalf("Reserve after Reset resurrected %d written lines", got)
	}
}
