// Acceptance tests for the verify-once-then-resident weight cache: a
// resident run must be observationally identical to per-request
// provisioning — output, output MAC, every per-layer register snapshot,
// and the DRAM block count — tampered pinned state must fail the epoch
// check, and the attack-instrumentation guards must keep the detection
// surface intact.
package secure_test

import (
	"context"
	"errors"
	"testing"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/secure"
	"seculator/internal/workload"
)

func buildResidency(t *testing.T, net workload.Network, ws []*nn.Weights) *secure.WeightResidency {
	t.Helper()
	cfg := runner.DefaultConfig()
	res, err := secure.BuildWeightResidency(context.Background(), net, cfg.NPU, cfg.DRAM,
		secure.DefaultSecret, secure.DefaultRandom, ws)
	if err != nil {
		t.Fatalf("BuildWeightResidency: %v", err)
	}
	return res
}

// TestResidencyMatchesNonResident: attaching to the pinned weights must be
// bit-identical to host-side provisioning — the skipped weight reads never
// folded MAC registers in the first place (ReadStatic), so every observable
// matches, including the per-layer register snapshots the conformance
// oracles compare.
func TestResidencyMatchesNonResident(t *testing.T) {
	for _, workers := range []int{1, 8} {
		for _, net := range []workload.Network{pipeNet(), twoConvNet()} {
			in, ws, golden := modelAndGolden(t, net, 17)
			cfg := runner.DefaultConfig()

			base := secure.NewExecutor()
			base.NPU, base.DRAM = cfg.NPU, cfg.DRAM
			base.Parallel = workers
			var baseRegs []protect.RegisterState
			base.OnLayerMACs = func(_ int, regs protect.RegisterState) { baseRegs = append(baseRegs, regs) }
			want, err := base.Run(context.Background(), net, in, ws)
			if err != nil {
				t.Fatalf("%s w=%d non-resident: %v", net.Name, workers, err)
			}
			if !want.Output.Equal(golden) {
				t.Fatalf("%s w=%d: non-resident run diverged from reference", net.Name, workers)
			}

			res := buildResidency(t, net, ws)
			x := secure.NewExecutor()
			x.NPU, x.DRAM = cfg.NPU, cfg.DRAM
			x.Parallel = workers
			x.Residency = res
			var regs []protect.RegisterState
			x.OnLayerMACs = func(_ int, r protect.RegisterState) { regs = append(regs, r) }
			got, err := x.Run(context.Background(), net, in, ws)
			if err != nil {
				t.Fatalf("%s w=%d resident: %v", net.Name, workers, err)
			}
			if !got.Output.Equal(want.Output) {
				t.Fatalf("%s w=%d: resident output differs", net.Name, workers)
			}
			if got.OutputMAC != want.OutputMAC {
				t.Fatalf("%s w=%d: resident OutputMAC %x, want %x", net.Name, workers, got.OutputMAC, want.OutputMAC)
			}
			if got.Blocks != want.Blocks {
				t.Fatalf("%s w=%d: resident %d blocks, want %d", net.Name, workers, got.Blocks, want.Blocks)
			}
			if len(regs) != len(baseRegs) {
				t.Fatalf("%s w=%d: %d register snapshots, want %d", net.Name, workers, len(regs), len(baseRegs))
			}
			for i := range regs {
				if regs[i] != baseRegs[i] {
					t.Fatalf("%s w=%d: register snapshot %d differs under residency", net.Name, workers, i)
				}
			}
		}
	}
}

// TestResidencyVerify: a clean pin passes its epoch check; a single flipped
// ciphertext bit fails it with the integrity class, and the executor
// refuses to consume state the check rejected.
func TestResidencyVerify(t *testing.T) {
	net := pipeNet()
	_, ws := nn.RandomModel(net, 5)
	res := buildResidency(t, net, ws)
	if err := res.Verify(); err != nil {
		t.Fatalf("clean residency failed its epoch check: %v", err)
	}
	if !res.TamperCiphertext(0, 7) {
		t.Fatal("TamperCiphertext found no layer-0 ciphertext")
	}
	if err := res.Verify(); !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("tampered residency passed the epoch check: %v", err)
	}
}

// TestResidencyHookGuard: with a DRAM phase hook installed the executor
// must refuse the resident fast path — otherwise a weight tamper the hook
// mounts after provisioning would go unread and undetected. The hook
// flips a weight bit at phase -1; detection proves the per-request
// verification path ran despite Residency being set.
func TestResidencyHookGuard(t *testing.T) {
	net := pipeNet()
	in, ws := nn.RandomModel(net, 9)
	res := buildResidency(t, net, ws)
	cfg := runner.DefaultConfig()
	x := secure.NewExecutor()
	x.NPU, x.DRAM = cfg.NPU, cfg.DRAM
	x.Residency = res
	x.AfterPhase = func(phase int, d *mem.DRAM) {
		if phase != -1 {
			return
		}
		var last uint64
		found := false
		for addr := uint64(0); addr < 100000; addr++ {
			if d.Peek(addr) != nil {
				last, found = addr, true
			}
		}
		if !found {
			t.Error("no DRAM line to tamper")
			return
		}
		d.Tamper(last, 3, 0x40)
	}
	if _, err := x.Run(context.Background(), net, in, ws); !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("hooked run with Residency set did not detect the tamper: %v", err)
	}
}

// TestResidencyWeightIdentityGuard: the resident path only engages for the
// exact verified tensors (pointer identity). Equal-valued copies fall back
// to provisioning — and still produce the right answer.
func TestResidencyWeightIdentityGuard(t *testing.T) {
	net := twoConvNet()
	in, ws, golden := modelAndGolden(t, net, 21)
	res := buildResidency(t, net, ws)

	// Same values, different tensors: must not attach, must still be right.
	_, copies := nn.RandomModel(net, 21)
	cfg := runner.DefaultConfig()
	x := secure.NewExecutor()
	x.NPU, x.DRAM = cfg.NPU, cfg.DRAM
	x.Residency = res
	got, err := x.Run(context.Background(), net, in, copies)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Output.Equal(golden) {
		t.Fatal("fallback run diverged from reference")
	}
}
