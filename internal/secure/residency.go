// residency.go — the verify-once-then-resident weight cache.
//
// GuardNN and MGX both observe that DNN weights are read-only at inference
// time: their integrity can be verified once and then trusted for an
// epoch, instead of being re-proven on every access. The serving tier
// applies that insight at the request level. A WeightResidency pins one
// model's provisioned state — the encrypted weight ciphertext exactly as
// the host load would write it to DRAM, the per-layer golden XOR-MACs, the
// AES-CTR pads (keystream) covering every weight block, the verified
// plaintext weights, and the pinned mapping choices — as an immutable
// object shared across requests. A resident run installs the ciphertext
// into its DRAM image by memcpy, skips the per-request host encrypt +
// golden-MAC pass entirely, and computes from the verified plaintext
// without the per-tile weight fetch/decrypt/fold, because the weight
// region's integrity was established when the residency was built (and is
// re-established once per epoch by Verify).
//
// Security argument. The weight-read path (ReadStatic) never folds into
// the four XOR-MAC registers — weight integrity is a private golden-digest
// comparison, not part of the Equation 1 chain. Skipping it therefore
// leaves every register, every activation MAC, and the final output MAC
// bit-identical to the non-resident run; only the *moment* of weight
// verification moves, from per-request to per-epoch. The trust is refused
// outright when an attacker hook or fault injector is installed (those
// observe or mutate the DRAM image mid-run, and the per-request
// verification is exactly what detects them) and when the caller's weights
// are not the residency's own verified tensors.
package secure

import (
	"context"
	"fmt"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/npu"
	"seculator/internal/protect"
	"seculator/internal/sched"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// residentLayer is one layer's pinned weight state. Pool/upsample layers
// (no weights) pin nothing.
type residentLayer struct {
	wl     weightLayout
	golden mac.Digest
	ct     []byte // encrypted region, wl block count × 64 bytes
	pads   []byte // AES-CTR keystream per block, same extent as ct
}

func (rl *residentLayer) blocks() int {
	return rl.wl.k * rl.wl.cGroups * rl.wl.sliceBlocks
}

// WeightResidency is the immutable pinned state of one verified model.
// Build it once with BuildWeightResidency, re-check it per epoch with
// Verify, and share it freely: attaching executors only read it.
type WeightResidency struct {
	net     workload.Network
	npuCfg  npu.Config
	dramCfg mem.Config
	secret  uint64
	random  uint64

	choices []sched.Choice
	weights []*nn.Weights
	layers  []residentLayer
	bytes   int64
}

// BuildWeightResidency provisions and verifies the weights once: it maps
// the network (memoized), lays out the address space exactly as a run's
// plan would, encrypts every weight slice under the host-load counters,
// folds the per-layer golden XOR-MACs with the batched row hasher, and
// derives the pad bank as plaintext ⊕ ciphertext (the CTR keystream, by
// construction). The returned object is self-consistent by construction;
// Verify re-establishes that from the pinned state alone.
func BuildWeightResidency(ctx context.Context, net workload.Network,
	npuCfg npu.Config, dramCfg mem.Config, secret, random uint64,
	weights []*nn.Weights) (*WeightResidency, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != len(net.Layers) {
		return nil, fmt.Errorf("secure: residency: %d weight tensors for %d layers", len(weights), len(net.Layers))
	}
	choices, err := sched.MapNetworkCached(net, npuCfg, dramCfg)
	if err != nil {
		return nil, err
	}
	states, _, _ := planLayout(net, weights, choices)

	res := &WeightResidency{
		net: net, npuCfg: npuCfg, dramCfg: dramCfg,
		secret: secret, random: random,
		choices: choices, weights: weights,
		layers: make([]residentLayer, len(states)),
	}
	// A throwaway memory supplies the exact host-load crypto: same engine
	// construction, same counters, same block MAC positions.
	dram, err := mem.New(dramCfg)
	if err != nil {
		return nil, err
	}
	sh := protect.NewSeculatorMemory(dram, secret, random).Shard()
	for i := range states {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if weights[i] == nil {
			continue
		}
		st := &states[i]
		wl := st.wl
		rl := &res.layers[i]
		rl.wl = wl
		nblk := rl.blocks()
		rl.ct = make([]byte, nblk*tensor.BlockBytes)
		rl.pads = make([]byte, nblk*tensor.BlockBytes)
		pt := make([]byte, wl.sliceBlocks*tensor.BlockBytes)
		ctRow := make([]byte, wl.sliceBlocks*tensor.BlockBytes)
		for k := 0; k < wl.k; k++ {
			for cg := 0; cg < wl.cGroups; cg++ {
				ints := weightSlice(st.layer, weights[i], k, cg, wl.sliceInts)
				encodeRowInto(pt, ints)
				rl.golden = rl.golden.Xor(sh.HostWriteRow(wl.addr(k, cg, 0), wl.ownerID,
					uint32(k), 1, uint32(cg*wl.sliceBlocks), pt, ctRow))
				off := ((k*wl.cGroups + cg) * wl.sliceBlocks) * tensor.BlockBytes
				copy(rl.ct[off:], ctRow)
				// pad = plaintext ⊕ ciphertext: the CTR keystream, pinned so
				// epoch verification decrypts without an AES pass.
				for b := range ctRow {
					rl.pads[off+b] = pt[b] ^ ctRow[b]
				}
			}
		}
		res.bytes += int64(len(rl.ct) + len(rl.pads))
	}
	if err := res.Verify(); err != nil {
		return nil, err
	}
	return res, nil
}

// Verify re-establishes the residency's integrity from the pinned state
// alone: every resident ciphertext block is decrypted through the pad bank
// and its MAC re-folded (batched row hashing, zero allocations per row)
// into a digest that must equal the pinned golden value. A mismatch means
// the resident ciphertext (or pad bank) was corrupted since the last
// check; callers must drop the residency and re-provision from scratch.
func (res *WeightResidency) Verify() error {
	var rowh mac.RowHasher
	var pt [tensor.BlockBytes * 16]byte
	for i := range res.layers {
		rl := &res.layers[i]
		if len(rl.ct) == 0 {
			continue
		}
		wl := rl.wl
		var got mac.Digest
		rowBytes := wl.sliceBlocks * tensor.BlockBytes
		scratch := pt[:]
		if rowBytes > len(scratch) {
			scratch = make([]byte, rowBytes)
		}
		for k := 0; k < wl.k; k++ {
			for cg := 0; cg < wl.cGroups; cg++ {
				off := ((k*wl.cGroups + cg) * wl.sliceBlocks) * tensor.BlockBytes
				for b := 0; b < rowBytes; b++ {
					scratch[b] = rl.ct[off+b] ^ rl.pads[off+b]
				}
				ref := mac.BlockRef{Secret: res.secret, Layer: wl.ownerID, Fmap: uint32(k),
					VN: 1, Index: uint32(cg * wl.sliceBlocks)}
				d, _ := rowh.FoldRow(ref, scratch[:rowBytes])
				got = got.Xor(d)
			}
		}
		if got != rl.golden {
			return fmt.Errorf("%w: resident layer %q weights: digest mismatch",
				mac.ErrIntegrity, res.net.Layers[i].Name)
		}
	}
	return nil
}

// Weights returns the verified plaintext weight tensors. Treat them as
// immutable: they are shared by every attached run.
func (res *WeightResidency) Weights() []*nn.Weights { return res.weights }

// Network returns the residency's network.
func (res *WeightResidency) Network() workload.Network { return res.net }

// Bytes reports the pinned footprint (ciphertext + pad bank).
func (res *WeightResidency) Bytes() int64 { return res.bytes }

// TamperCiphertext flips one bit of a resident weight ciphertext block —
// the test primitive behind the "tampered residency is detected on epoch
// check" coverage. It returns false if the layer pins no weights.
func (res *WeightResidency) TamperCiphertext(layer, offset int) bool {
	if layer < 0 || layer >= len(res.layers) {
		return false
	}
	rl := &res.layers[layer]
	if len(rl.ct) == 0 {
		return false
	}
	rl.ct[offset%len(rl.ct)] ^= 0x01
	return true
}

// matches reports whether an executor configured with (npu, dram, secret,
// random) running net with the given weight tensors can attach: everything
// that determines ciphertext, counters, MAC positions, and mapping choices
// must be identical, and the weights must be the residency's own verified
// tensors (pointer identity — trusting lookalike tensors would bypass
// verification).
func (res *WeightResidency) matches(net workload.Network, npuCfg npu.Config,
	dramCfg mem.Config, secret, random uint64, weights []*nn.Weights) bool {
	if res == nil || npuCfg != res.npuCfg || dramCfg != res.dramCfg ||
		secret != res.secret || random != res.random {
		return false
	}
	if len(net.Layers) != len(res.net.Layers) || len(weights) != len(res.weights) {
		return false
	}
	for i := range net.Layers {
		if net.Layers[i] != res.net.Layers[i] {
			return false
		}
		if weights[i] != res.weights[i] {
			return false
		}
	}
	return true
}

// install memcpys the resident ciphertext into a run's DRAM image at the
// pinned addresses and accounts the same write traffic the host load would
// have recorded, so the run's DRAM line count and traffic counters match
// the non-resident run block for block.
func (res *WeightResidency) install(dram *mem.DRAM) {
	total := 0
	for i := range res.layers {
		rl := &res.layers[i]
		n := rl.blocks()
		if n == 0 {
			continue
		}
		for b := 0; b < n; b++ {
			o := b * tensor.BlockBytes
			dram.WriteBlockQuiet(rl.wl.base+uint64(b), rl.ct[o:o+tensor.BlockBytes])
		}
		total += n
	}
	dram.Record(sim.Write, sim.DataTraffic, total)
}
