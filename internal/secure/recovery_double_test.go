package secure_test

import (
	"context"
	"testing"

	"seculator/internal/mem"
	"seculator/internal/secure"
)

// anchorFlip injects one transient bit flip per layer attempt, for a
// bounded number of attempts: the first read after Arm() names the anchor
// address, and because a restarted layer re-fetches its working set in the
// same deterministic order, every subsequent attempt re-reads the anchor.
// Each anchor read within budget gets (after skipping `delay` further
// reads) a single-bit corruption — delay 0 faults the fetch itself, a
// positive delay lands the fault in the middle of the recovery re-fetch.
type anchorFlip struct {
	armed      bool
	haveAnchor bool
	anchor     uint64
	budget     int // flips remaining
	delay      int // reads to skip after an anchor read before flipping
	pending    int // countdown when a flip is scheduled
	scheduled  bool
	fires      int
	attempts   int       // anchor reads seen (== layer attempts reached)
	onFire     func(int) // optional: observe each fire (receives new count)
}

func (f *anchorFlip) Arm(budget, delay int) {
	f.armed = true
	f.budget = budget
	f.delay = delay
}

func (f *anchorFlip) OnRead(addr uint64, data []byte) {
	if !f.armed {
		return
	}
	if !f.haveAnchor {
		f.haveAnchor = true
		f.anchor = addr
	}
	if addr == f.anchor {
		f.attempts++
		if f.budget > 0 && !f.scheduled {
			f.scheduled = true
			f.pending = f.delay
			f.budget--
		}
	}
	if f.scheduled {
		if f.pending > 0 {
			f.pending--
			return
		}
		data[0] ^= 0x01
		f.scheduled = false
		f.fires++
		if f.onFire != nil {
			f.onFire(f.fires)
		}
	}
}

func (f *anchorFlip) OnWrite(uint64, []byte) {}

var _ mem.Injector = (*anchorFlip)(nil)

// TestDoubleFaultSameLayerRecovered: two independent transient faults hit
// the same layer on successive attempts — the first mid-execution, the
// second during the recovery re-execution. Both must be detected, cost one
// retry each, and the third attempt must complete bit-identical to the
// reference with no breach latched.
func TestDoubleFaultSameLayerRecovered(t *testing.T) {
	net := twoConvNet()
	in, ws, golden := modelAndGolden(t, net, 3)

	inj := &anchorFlip{}
	x := secure.NewExecutor()
	x.Injector = inj
	x.AfterPhase = func(phase int, _ *mem.DRAM) {
		if phase == 0 {
			inj.Arm(2, 0) // two faults, each on the attempt's anchor fetch
		}
	}
	res, err := x.Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatalf("double transient aborted the run: %v", err)
	}
	if inj.fires != 2 {
		t.Fatalf("injector fired %d times, want 2", inj.fires)
	}
	if inj.attempts < 3 {
		t.Fatalf("layer reached %d attempts, want at least 3 (two faulted + one clean)", inj.attempts)
	}
	if res.Recovery.Retries != 2 {
		t.Fatalf("recovery spent %d retries, want 2 (one per fault): %+v", res.Recovery.Retries, res.Recovery)
	}
	if res.Recovery.Recovered != 1 {
		t.Fatalf("recovered %d layers, want exactly the one twice-hit layer: %+v", res.Recovery.Recovered, res.Recovery)
	}
	if res.Recovery.Breached || res.Recovery.Persistent != 0 {
		t.Fatalf("transient double fault latched a breach: %+v", res.Recovery)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("recovered output differs from the reference")
	}
}

// TestFaultDuringRecoveryRecovered: the first fault triggers a layer
// restart; the second lands deep inside the recovery re-fetch itself (many
// reads after the retry's anchor fetch). Recovery must stack: detect again,
// restart again, and still converge to the reference output.
func TestFaultDuringRecoveryRecovered(t *testing.T) {
	net := twoConvNet()
	in, ws, golden := modelAndGolden(t, net, 7)

	inj := &anchorFlip{}
	first := true
	x := secure.NewExecutor()
	x.Injector = inj
	x.AfterPhase = func(phase int, _ *mem.DRAM) {
		if phase == 0 && first {
			first = false
			inj.Arm(1, 0) // fault 1: corrupt the next layer's first fetch
		}
	}
	res, err := x.Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatalf("priming fault aborted the run: %v", err)
	}
	if inj.fires != 1 || res.Recovery.Retries != 1 {
		t.Fatalf("priming run: fires=%d stats=%+v", inj.fires, res.Recovery)
	}

	// Now the real scenario: same workload, but after the first detection
	// the retry is hit again mid-re-fetch (25 reads past its anchor).
	inj2 := &anchorFlip{}
	armedRecovery := false
	x2 := secure.NewExecutor()
	x2.Injector = inj2
	x2.AfterPhase = func(phase int, _ *mem.DRAM) {
		if phase == 0 && !armedRecovery {
			armedRecovery = true
			inj2.Arm(2, 0)
			inj2.delay = 0 // fault 1 on the anchor fetch of attempt 1
		}
	}
	// Switch the delay after the first fire so the second fault lands deep
	// in the recovery attempt rather than on its first fetch.
	inj2.onFire = func(fires int) {
		if fires == 1 {
			inj2.delay = 25
		}
	}
	res2, err := x2.Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatalf("fault during recovery aborted the run: %v", err)
	}
	if inj2.fires != 2 {
		t.Fatalf("injector fired %d times, want 2", inj2.fires)
	}
	if res2.Recovery.Retries != 2 || res2.Recovery.Recovered != 1 {
		t.Fatalf("recovery stats %+v, want 2 retries on the one layer", res2.Recovery)
	}
	if res2.Recovery.Breached || res2.Recovery.Persistent != 0 {
		t.Fatalf("stacked transients latched a breach: %+v", res2.Recovery)
	}
	if !res2.Output.Equal(golden) {
		t.Fatal("output after fault-during-recovery differs from the reference")
	}
}
