// Serial/parallel equivalence acceptance tests for the intra-inference
// crypto pipeline: sharded execution must be observationally identical to
// serial — same output tensor, same XOR-MAC digests, same block count —
// and detection/recovery must keep working above one worker. External test
// package like recovery_test.go, so the fault-injection helpers are shared.
package secure_test

import (
	"context"
	"errors"
	"testing"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/secure"
	"seculator/internal/workload"
)

// pipeNet exercises every layer type through the parallel pipeline: conv
// (same pad), pool (valid), depthwise, pointwise, and a flattening FC —
// the FC's repeated-block reads stress the run-sharded flat read path.
func pipeNet() workload.Network {
	return workload.Network{
		Name: "pipe",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 12, W: 12, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "p1", Type: workload.Pool, C: 8, H: 12, W: 12, K: 8, R: 2, S: 2, Stride: 2, Valid: true},
			{Name: "dw", Type: workload.Depthwise, C: 8, H: 6, W: 6, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "pw", Type: workload.Pointwise, C: 8, H: 6, W: 6, K: 16, R: 1, S: 1, Stride: 1},
			{Name: "fc", Type: workload.FC, C: 16 * 6 * 6, H: 1, W: 1, K: 5, R: 1, S: 1, Stride: 1},
		},
	}
}

// TestParallelMatchesSerial is the tentpole's acceptance test: for worker
// counts 1, 2 and 8, the output tensor, the final-output XOR-MAC and the
// block count must be bit-identical — the commutative fold makes shard
// interleaving unobservable.
func TestParallelMatchesSerial(t *testing.T) {
	for _, net := range []workload.Network{pipeNet(), twoConvNet()} {
		in, ws, golden := modelAndGolden(t, net, 11)

		serial := secure.NewExecutor()
		serial.Parallel = 1
		base, err := serial.Run(context.Background(), net, in, ws)
		if err != nil {
			t.Fatalf("%s serial: %v", net.Name, err)
		}
		if !base.Output.Equal(golden) {
			t.Fatalf("%s serial diverged from reference", net.Name)
		}
		if base.OutputMAC == (mac.Digest{}) {
			t.Fatalf("%s: zero OutputMAC", net.Name)
		}

		for _, w := range []int{2, 8} {
			x := secure.NewExecutor()
			x.Parallel = w
			res, err := x.Run(context.Background(), net, in, ws)
			if err != nil {
				t.Fatalf("%s w=%d: %v", net.Name, w, err)
			}
			if !res.Output.Equal(base.Output) {
				t.Fatalf("%s w=%d: output differs from serial", net.Name, w)
			}
			if res.OutputMAC != base.OutputMAC {
				t.Fatalf("%s w=%d: OutputMAC %x, serial %x", net.Name, w, res.OutputMAC, base.OutputMAC)
			}
			if res.Blocks != base.Blocks {
				t.Fatalf("%s w=%d: %d blocks, serial %d", net.Name, w, res.Blocks, base.Blocks)
			}
		}
	}
}

// TestParallelSeeds: the equivalence is not an artifact of one weight draw.
func TestParallelSeeds(t *testing.T) {
	net := twoConvNet()
	for seed := int64(1); seed <= 4; seed++ {
		in, ws, golden := modelAndGolden(t, net, seed)
		x := secure.NewExecutor()
		x.Parallel = 8
		res, err := x.Run(context.Background(), net, in, ws)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Output.Equal(golden) {
			t.Fatalf("seed %d diverged at 8 workers", seed)
		}
	}
}

// TestParallelTamperDetected: an activation tampered between layers must
// still break Equation 1 when the consuming layer's reads are sharded.
func TestParallelTamperDetected(t *testing.T) {
	net := pipeNet()
	in, ws := nn.RandomModel(net, 42)
	x := secure.NewExecutor()
	x.Parallel = 8
	x.AfterPhase = func(phase int, d *mem.DRAM) {
		if phase != 1 {
			return
		}
		var last uint64
		found := false
		for addr := uint64(0); addr < 100000; addr++ {
			if d.Peek(addr) != nil {
				last, found = addr, true
			}
		}
		if !found {
			t.Fatal("no DRAM line to tamper")
		}
		d.Tamper(last, 5, 0x80)
	}
	_, err := x.Run(context.Background(), net, in, ws)
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("tamper not detected at 8 workers: %v", err)
	}
}

// TestParallelInputTamperDetected: the golden input check must hold with
// the sharded input load.
func TestParallelInputTamperDetected(t *testing.T) {
	net := pipeNet()
	in, ws := nn.RandomModel(net, 42)
	x := secure.NewExecutor()
	x.Parallel = 8
	x.AfterPhase = func(phase int, d *mem.DRAM) {
		if phase == -1 {
			d.Tamper(0, 0, 0x01)
		}
	}
	_, err := x.Run(context.Background(), net, in, ws)
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("input tamper not detected at 8 workers: %v", err)
	}
}

// TestParallelSingleBitFlipRecovered: layer-level detect-and-recover must
// survive sharding — the injector is serialized behind the runtime's lock,
// the corrupted layer re-executes, and the output matches the reference.
func TestParallelSingleBitFlipRecovered(t *testing.T) {
	net := twoConvNet()
	in, ws, golden := modelAndGolden(t, net, 3)

	inj := &armedFlip{}
	x := secure.NewExecutor()
	x.Parallel = 8
	x.Injector = inj
	x.AfterPhase = func(phase int, _ *mem.DRAM) {
		if phase == 0 {
			inj.Arm()
		}
	}
	res, err := x.Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatalf("recoverable transient aborted the parallel run: %v", err)
	}
	if !inj.fired {
		t.Fatal("injector never fired; test exercised nothing")
	}
	if res.Recovery.Recovered != 1 {
		t.Fatalf("recovery stats %+v, want one recovered layer", res.Recovery)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("recovered parallel output differs from the reference")
	}
}

// TestDefaultParallelKnob: the process default resolves Executor.Parallel=0
// runs, floors at serial, and is what SECULATOR_INFER_PARALLEL seeds.
func TestDefaultParallelKnob(t *testing.T) {
	saved := secure.DefaultParallel()
	defer secure.SetDefaultParallel(saved)

	secure.SetDefaultParallel(6)
	if got := secure.DefaultParallel(); got != 6 {
		t.Fatalf("DefaultParallel = %d, want 6", got)
	}
	secure.SetDefaultParallel(0)
	if got := secure.DefaultParallel(); got != 1 {
		t.Fatalf("DefaultParallel after 0 = %d, want 1 (serial)", got)
	}

	secure.SetDefaultParallel(8)
	net := twoConvNet()
	in, ws, golden := modelAndGolden(t, net, 13)
	res, err := secure.NewExecutor().Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("default-parallel run diverged from reference")
	}
}
