package secure

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"seculator/internal/crypto"
	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/parallel"
	"seculator/internal/protect"
	"seculator/internal/tensor"
)

// Tuning thresholds of the intra-inference pipeline. Sharding has a
// fork/join cost, so tiny tiles run inline on the orchestrator.
const (
	// minForkBlocks is the smallest number of 64-byte blocks per shard worth
	// a fork: one block costs ~4 AES + 1 SHA-256 invocation, so below this
	// the handshake dominates.
	minForkBlocks = 16

	// minComputeOps is the smallest estimated MAC-free arithmetic volume
	// (multiply-accumulates) worth forking a compute range for.
	minComputeOps = 1 << 13

	// ksChunk is how many pads one keystream task generates before
	// re-submitting itself to the pool, so pad generation interleaves
	// fairly with forked shard work instead of hogging a worker.
	ksChunk = 256

	// ksMaxBlocks bounds the precomputed keystream slab (64 B per block).
	ksMaxBlocks = 1 << 13

	// minStageBytes auto-tunes the serial-vs-parallel cutover by layer byte
	// size: a background pipeline stage (keystream precompute, weight
	// preload) only engages for regions at least this large. Below it the
	// pool handshake plus the per-layer cancel/join latency cost more than
	// the crypto the stage hides, so small layers run the serial path even
	// at high worker counts — the forked-shard paths have their own
	// per-call cutover in shardCount.
	minStageBytes = 32 << 10
)

// defaultParallel is the process-wide default worker count for Executor
// runs that leave Parallel at 0. It starts at 1 (serial) and can be raised
// by SetDefaultParallel or the SECULATOR_INFER_PARALLEL environment
// variable — the latter lets CI force every existing test through the
// sharded path without code changes.
var defaultParallel atomic.Int64

func init() {
	if v, err := strconv.Atoi(os.Getenv("SECULATOR_INFER_PARALLEL")); err == nil && v > 0 {
		defaultParallel.Store(int64(v))
	}
	runPooling.Store(true)
}

// SetDefaultParallel sets the process default intra-inference worker count
// (values below 1 mean serial).
func SetDefaultParallel(n int) {
	if n < 1 {
		n = 1
	}
	defaultParallel.Store(int64(n))
}

// DefaultParallel returns the process default intra-inference worker count.
func DefaultParallel() int {
	if v := defaultParallel.Load(); v > 1 {
		return int(v)
	}
	return 1
}

// cryptoPool is the persistent worker pool shared by every parallel
// inference in the process — workers outlive any single Run, like the
// serving scheduler's pool. Sized generously relative to GOMAXPROCS: tasks
// are short and CPU-bound, and the pool also absorbs the keystream and
// weight-preload stages, which must make progress while forks are waiting.
var (
	cryptoPoolOnce sync.Once
	cryptoPool     *parallel.Pool
)

func sharedPool() *parallel.Pool {
	cryptoPoolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
		cryptoPool = parallel.NewPool(n)
	})
	return cryptoPool
}

// lockedInjector serializes fault-injector callbacks when DRAM transfers
// happen from multiple shards: the injectors in package fault keep state
// (RNG, replay maps) and are single-goroutine by contract.
type lockedInjector struct {
	mu sync.Mutex
	in mem.Injector
}

func (li *lockedInjector) OnRead(lineAddr uint64, data []byte) {
	li.mu.Lock()
	li.in.OnRead(lineAddr, data)
	li.mu.Unlock()
}

func (li *lockedInjector) OnWrite(lineAddr uint64, data []byte) {
	li.mu.Lock()
	li.in.OnWrite(lineAddr, data)
	li.mu.Unlock()
}

// inferRuntime is the per-Run parallel execution state: the worker shards,
// their scratch, the keystream precompute stage and the weight-preload
// pipeline. workers == 1 routes everything inline through shard 0, which
// preserves the exact serial order of every DRAM access and MAC fold.
type inferRuntime struct {
	workers int
	pool    *parallel.Pool // nil when workers == 1
	sm      *protect.SeculatorMemory
	dram    *mem.DRAM

	shards []*protect.SeculatorShard

	// Per-shard staging for the row-batch encrypt path (caller-owned
	// scratch contract of protect's batch APIs). Indexed by shard; grown on
	// demand, never shared across concurrently running shards.
	rowPT [][]byte
	rowCT [][]byte

	// wDigest collects per-shard XOR folds of first-touch weight MACs
	// during one forked weight-tile read.
	wDigest []mac.Digest

	ks       keystream
	ksEngine *crypto.CTREngine

	preload preloadState

	// Per-layer bookkeeping slabs: grown to the largest layer seen and
	// reused across layers, recovery attempts, and — through the run pool —
	// requests, so the steady-state layer loop performs no per-tile or
	// per-layer slice allocation. Every slab is kept at full length (len ==
	// cap) so scrub's clear() reaches every byte it ever held.
	lr        layerRun // the per-layer execution context, reset per layer
	inTouched []bool   // producer-block first-read bitmap
	wTouched  []bool   // weight-block first-read bitmap
	inData    []int32  // input-assembly tensor backing
	inTensor  nn.Tensor
	// outData double-buffers the layer outputs by layer parity: layer i
	// assembles into buffer i&1 while layer i-1's output (buffer (i-1)&1,
	// the producer plaintext for external folds) stays intact. Only the
	// host readout's tensor escapes the run and stays freshly allocated.
	outData   [2][]int32
	outTensor [2]nn.Tensor
	wData     []int32 // decoded-weight tensor backing
	wTensor   nn.Weights
	flatRuns  []flatRun // FC block-run staging (orchestrator only)
	wInts     [][]int32 // per-shard weight-slice decode scratch
	ldInts    []int32   // host-load weight-slice staging (orchestrator)
	blockBuf  [tensor.BlockBytes]byte

	// Preload-stage private staging: the loader task runs concurrently
	// with the executing layer's shards, so it must never share rowScratch
	// or wInts with them.
	preloadPT   []byte
	preloadCT   []byte
	preloadInts []int32
}

// workerCount resolves the executor's effective intra-inference worker
// count (the run-pool key).
func (x *Executor) workerCount() int {
	w := x.Parallel
	if w == 0 {
		w = DefaultParallel()
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (x *Executor) newRuntime(w int, sm *protect.SeculatorMemory, dram *mem.DRAM) *inferRuntime {
	rt := &inferRuntime{workers: w, sm: sm, dram: dram}
	rt.shards = make([]*protect.SeculatorShard, w)
	for i := range rt.shards {
		rt.shards[i] = sm.Shard()
	}
	rt.rowPT = make([][]byte, w)
	rt.rowCT = make([][]byte, w)
	rt.wDigest = make([]mac.Digest, w)
	rt.wInts = make([][]int32, w)
	if w > 1 {
		rt.pool = sharedPool()
		rt.ksEngine = sm.PadEngine()
	}
	return rt
}

func (rt *inferRuntime) parallelOn() bool { return rt.workers > 1 }

// stageWorth reports whether a region of the given block count is large
// enough to engage a background stage for (see minStageBytes).
func (rt *inferRuntime) stageWorth(blocks int) bool {
	return rt.parallelOn() && blocks*tensor.BlockBytes >= minStageBytes
}

// rowScratch returns shard s's plaintext and ciphertext staging for a row
// of nblocks blocks, growing it if needed. Distinct shards own distinct
// buffers, so concurrent calls with distinct s are safe.
func (rt *inferRuntime) rowScratch(s, nblocks int) (pt, ct []byte) {
	need := nblocks * tensor.BlockBytes
	if cap(rt.rowPT[s]) < need {
		rt.rowPT[s] = make([]byte, need)
		rt.rowCT[s] = make([]byte, need)
	}
	return rt.rowPT[s][:need], rt.rowCT[s][:need]
}

// shardCount picks how many shards to fork for n items of `weight` blocks
// each: enough that every shard gets at least minForkBlocks of crypto work,
// never more than the worker count or the item count.
func (rt *inferRuntime) shardCount(n, weight int) int {
	if rt.workers <= 1 || n <= 0 {
		return 1
	}
	total := n * weight
	if total < 2*minForkBlocks {
		return 1
	}
	nsh := total / minForkBlocks
	if nsh > rt.workers {
		nsh = rt.workers
	}
	if nsh > n {
		nsh = n
	}
	if nsh < 1 {
		nsh = 1
	}
	return nsh
}

// forkBlocks partitions n work items (each covering `weight` blocks of
// crypto work) into contiguous chunks across the shard set, runs fn on each
// chunk, and folds every shard's partial MAC state and traffic counts back
// into the memory once all chunks have joined. Shard 0 runs on the calling
// goroutine; fn must confine itself to its own shard and to state disjoint
// from every other chunk. With one worker the chunk is the whole range and
// runs inline — the serial path is literally the parallel path at n=1, so
// serial and parallel runs execute identical per-block operations.
func (rt *inferRuntime) forkBlocks(n, weight int, fn func(shard int, sh *protect.SeculatorShard, lo, hi int)) {
	if n <= 0 {
		return
	}
	nsh := rt.shardCount(n, weight)
	if nsh <= 1 {
		fn(0, rt.shards[0], 0, n)
		rt.sm.Merge(rt.shards[0])
		return
	}
	rt.pool.Fork(nsh, func(s int) {
		lo, hi := n*s/nsh, n*(s+1)/nsh
		if lo < hi {
			fn(s, rt.shards[s], lo, hi)
		}
	})
	rt.sm.Merge(rt.shards[:nsh]...)
}

// forkCompute splits a (k-range × row-range) of MAC-free arithmetic across
// the pool. Each sub-range owns a disjoint set of output elements and
// performs its per-element accumulations in the same order as the serial
// nest, so results are bit-identical. cost is the estimated op count.
func (rt *inferRuntime) forkCompute(k0, k1, y0, y1, cost int, fn func(k0, k1, y0, y1 int)) {
	splitK := (k1 - k0) >= (y1 - y0)
	n := y1 - y0
	if splitK {
		n = k1 - k0
	}
	nsh := min(rt.workers, n)
	if rt.workers <= 1 || cost < minComputeOps || nsh <= 1 {
		fn(k0, k1, y0, y1)
		return
	}
	rt.pool.Fork(nsh, func(s int) {
		lo, hi := n*s/nsh, n*(s+1)/nsh
		if lo >= hi {
			return
		}
		if splitK {
			fn(k0+lo, k0+hi, y0, y1)
		} else {
			fn(k0, k1, y0+lo, y0+hi)
		}
	})
}

// keystream is the bounded pad-precompute stage. AES-CTR pads are
// data-independent and every counter of a layer is deterministic before the
// layer runs — the producer's identity and final version number come from
// the VN FSM ⟨η, κ, ρ⟩ — so pads for the producer region are generated on
// the pool ahead of the reads that consume them. Generation runs in flat
// block order behind an atomic watermark; consumers past the watermark
// simply fall back to their shard engine, which produces the identical pad.
type keystream struct {
	pads   []byte // slab: one 64-byte pad per covered block, reused across layers
	limit  int    // blocks covered: min(region blocks, ksMaxBlocks)
	layout actLayout
	ready  atomic.Int64 // pads [0, ready) are generated (release/acquire)
	stop   atomic.Bool
	wg     sync.WaitGroup
	engine *crypto.CTREngine
	pool   *parallel.Pool
	active bool
}

// start cancels any previous generation and begins precomputing pads for
// the producer region p. Must run on the orchestrating goroutine.
func (ks *keystream) start(pool *parallel.Pool, engine *crypto.CTREngine, p actLayout) {
	ks.cancel()
	n := min(p.blocks(), ksMaxBlocks)
	if n <= 0 || pool == nil || engine == nil {
		return
	}
	need := n * tensor.BlockBytes
	if cap(ks.pads) < need {
		ks.pads = make([]byte, need)
	}
	// The slab keeps its full length (limit bounds what is consumed), so a
	// pool-release scrub can wipe every pad it ever held.
	ks.pads = ks.pads[:cap(ks.pads)]
	ks.limit = n
	ks.layout = p
	ks.ready.Store(0)
	ks.stop.Store(false)
	ks.engine = engine
	ks.pool = pool
	ks.wg.Add(1)
	if pool.Submit(func() { ks.step(0) }) != nil {
		ks.wg.Done()
		return
	}
	ks.active = true
}

// step generates one chunk of pads and re-submits itself for the next.
func (ks *keystream) step(from int) {
	to := min(from+ksChunk, ks.limit)
	p := ks.layout
	for b := from; b < to && !ks.stop.Load(); b++ {
		ch := b / (p.rows * p.bpr)
		blockIdx := b % (p.rows * p.bpr)
		ks.engine.Keystream(ks.pads[b*tensor.BlockBytes:(b+1)*tensor.BlockBytes], crypto.Counter{
			Fmap: uint32(ch), Layer: p.ownerID, VN: uint32(p.vn), Block: uint32(blockIdx),
		})
		ks.ready.Store(int64(b + 1))
	}
	if to < ks.limit && !ks.stop.Load() {
		if ks.pool.Submit(func() { ks.step(to) }) == nil {
			return
		}
	}
	ks.wg.Done()
}

// pad returns the precomputed pad for the producer block at flat index
// `flat`, or nil if it is outside the slab or not generated yet. Safe from
// shard goroutines while generation is running: the atomic watermark
// publishes each pad before it becomes visible.
func (ks *keystream) pad(flat int) []byte {
	if !ks.active || flat >= ks.limit || int64(flat) >= ks.ready.Load() {
		return nil
	}
	return ks.pads[flat*tensor.BlockBytes : (flat+1)*tensor.BlockBytes]
}

// cancel stops generation and waits for the in-flight chunk to finish.
func (ks *keystream) cancel() {
	if !ks.active {
		return
	}
	ks.stop.Store(true)
	ks.wg.Wait()
	ks.active = false
}

// preloadState tracks the layer-overlap pipeline: while layer k executes,
// a dedicated loader shard host-writes layer k+1's weights and accumulates
// their golden XOR-MAC on the pool.
type preloadState struct {
	pending  bool
	done     chan struct{}
	golden   mac.Digest
	panicVal any
	sh       *protect.SeculatorShard
}

// startPreload kicks off layer st's weight load on the pool. Only legal in
// overlap mode (no attacker hook, no injector): the load mutates DRAM while
// the previous layer is still executing, which is invisible to the
// architecture (disjoint, pre-reserved lines) but not to a hook that
// expects "all loads precede phase -1" ordering.
func (rt *inferRuntime) startPreload(x *Executor, st *layerState, w *nn.Weights) {
	if w == nil || !rt.stageWorth(st.wl.blocks()) {
		return
	}
	if rt.preload.sh == nil {
		rt.preload.sh = rt.sm.Shard()
	}
	done := make(chan struct{})
	rt.preload.done = done
	rt.preload.panicVal = nil
	task := func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				rt.preload.panicVal = r
			}
		}()
		ints, pt, ct := rt.preloadScratch(st.wl.sliceInts, st.wl.sliceBlocks)
		rt.preload.golden = x.loadLayerWeights(rt.preload.sh, st, w, ints, pt, ct)
	}
	if rt.pool.Submit(task) != nil {
		return
	}
	rt.preload.pending = true
}

// waitPreload joins the in-flight weight preload, merges the loader shard's
// traffic, re-raises any captured panic on the orchestrator, and returns
// the golden weight digest. ok is false when no preload was pending (the
// caller then loads inline).
func (rt *inferRuntime) waitPreload() (golden mac.Digest, ok bool) {
	if !rt.preload.pending {
		return mac.Digest{}, false
	}
	<-rt.preload.done
	rt.preload.pending = false
	rt.sm.Merge(rt.preload.sh)
	if r := rt.preload.panicVal; r != nil {
		rt.preload.panicVal = nil
		panic(r)
	}
	return rt.preload.golden, true
}

// drain quiesces every background stage — called on any exit from Run so
// no pool task touches the run's DRAM after Run returns.
func (rt *inferRuntime) drain() {
	rt.ks.cancel()
	if rt.preload.pending {
		<-rt.preload.done
		rt.preload.pending = false
		rt.sm.Merge(rt.preload.sh)
		rt.preload.panicVal = nil
	}
}

// ---- per-layer slab accessors ----

// flatRun is one run of consecutive FC input elements hitting the same
// producer block (see readFlatRange).
type flatRun struct{ ch, row, j, n int }

func growInts(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:cap(s)]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:cap(s)]
}

// touchedInput returns the producer first-read bitmap sized to n blocks,
// cleared for a fresh layer attempt.
func (rt *inferRuntime) touchedInput(n int) []bool {
	rt.inTouched = growBools(rt.inTouched, n)
	clear(rt.inTouched[:n])
	return rt.inTouched[:n]
}

// touchedWeights is touchedInput for the weight-block bitmap.
func (rt *inferRuntime) touchedWeights(n int) []bool {
	rt.wTouched = growBools(rt.wTouched, n)
	clear(rt.wTouched[:n])
	return rt.wTouched[:n]
}

// inputTensor returns the reusable input-assembly tensor shaped for the
// producer, zeroed: untouched blocks must decode as zeros, exactly like a
// fresh allocation.
func (rt *inferRuntime) inputTensor(chans, rows, cols int) *nn.Tensor {
	n := chans * rows * cols
	rt.inData = growInts(rt.inData, n)
	clear(rt.inData[:n])
	rt.inTensor = nn.Tensor{Chans: chans, H: rows, W: cols, Data: rt.inData[:n]}
	return &rt.inTensor
}

// outputTensor returns the layer-output tensor for parity (layer index &
// 1), zeroed for accumulation. The other parity — the previous layer's
// output, still consumed as producer plaintext — is untouched.
func (rt *inferRuntime) outputTensor(parity, chans, rows, cols int) *nn.Tensor {
	n := chans * rows * cols
	rt.outData[parity] = growInts(rt.outData[parity], n)
	clear(rt.outData[parity][:n])
	rt.outTensor[parity] = nn.Tensor{Chans: chans, H: rows, W: cols, Data: rt.outData[parity][:n]}
	return &rt.outTensor[parity]
}

// weightsTensor returns the reusable decoded-weight tensor for a layer,
// zeroed (never-decoded padded slices must read as zero weights).
func (rt *inferRuntime) weightsTensor(k, c, r, s int) *nn.Weights {
	n := k * c * r * s
	rt.wData = growInts(rt.wData, n)
	clear(rt.wData[:n])
	rt.wTensor = nn.Weights{K: k, C: c, R: r, S: s, Data: rt.wData[:n]}
	return &rt.wTensor
}

// weightInts returns shard s's weight-slice decode scratch of n ints.
// Distinct shards own distinct slabs, so concurrent calls with distinct s
// are safe (the rowScratch contract).
func (rt *inferRuntime) weightInts(s, n int) []int32 {
	rt.wInts[s] = growInts(rt.wInts[s], n)
	return rt.wInts[s][:n]
}

// loadScratch returns the host-load staging (ints, pt, ct) for slices of
// sliceInts values in sliceBlocks blocks, drawn from shard s's row scratch.
// Never call it from the preload stage — that runs concurrently with layer
// shards; use preloadScratch.
func (rt *inferRuntime) loadScratch(s, sliceInts, sliceBlocks int) ([]int32, []byte, []byte) {
	rt.ldInts = growInts(rt.ldInts, sliceInts)
	pt, ct := rt.rowScratch(s, sliceBlocks)
	return rt.ldInts[:sliceInts], pt, ct
}

// preloadScratch is loadScratch for the overlapped weight-preload task,
// backed by slabs no executing shard touches.
func (rt *inferRuntime) preloadScratch(sliceInts, sliceBlocks int) ([]int32, []byte, []byte) {
	rt.preloadInts = growInts(rt.preloadInts, sliceInts)
	need := sliceBlocks * tensor.BlockBytes
	if cap(rt.preloadPT) < need {
		rt.preloadPT = make([]byte, need)
		rt.preloadCT = make([]byte, need)
	}
	return rt.preloadInts[:sliceInts], rt.preloadPT[:need], rt.preloadCT[:need]
}

// ---- pooled run state ----

// runState bundles everything one Executor.Run builds before executing:
// the DRAM image, the secure memory (AES key schedule, MAC checker), and
// the runtime (shards, staging slabs, background stages). Steady-state
// serving traffic recreates exactly this state on every request, keyed by
// nothing but (worker count, DRAM config, crypto identity) — so completed
// runs park their state in a sync.Pool and later runs with the same key
// reuse it instead of re-allocating ~10^4 objects.
//
// Scrub discipline (DESIGN.md §15): a state enters the pool only after
// every plaintext byte of the run — activations, weights, keystream pads,
// DRAM ciphertext — has been zeroed. The AES key schedule is retained, but
// only because the pool key pins the exact (secret, random) identity: a
// run under any other identity builds fresh state.
type runState struct {
	dram *mem.DRAM
	sm   *protect.SeculatorMemory
	rt   *inferRuntime

	dramCfg        mem.Config
	secret, random uint64
	poolable       bool
}

var (
	// runPools maps worker count -> *sync.Pool of *runState. Worker count
	// keys the pool because the shard set is sized at build time; the
	// remaining identity (DRAM config, secret, random) is checked on Get.
	runPools sync.Map

	// runPooling gates cross-request run-state reuse; tests flip it off to
	// produce fresh-state baselines for dirty-reset detection.
	runPooling atomic.Bool
)

// SetRunPooling enables or disables cross-request reuse of executor run
// state (on by default). The conformance harness turns it off to build
// fresh-runtime baselines and compares them bit for bit against pooled
// runs.
func SetRunPooling(on bool) { runPooling.Store(on) }

// RunPooling reports whether run-state pooling is enabled.
func RunPooling() bool { return runPooling.Load() }

func runPoolFor(workers int) *sync.Pool {
	if p, ok := runPools.Load(workers); ok {
		return p.(*sync.Pool)
	}
	p, _ := runPools.LoadOrStore(workers, &sync.Pool{})
	return p.(*sync.Pool)
}

// acquireRun returns a run state for this executor: a pooled one when a
// compatible state is parked, else a freshly built one. Runs with an
// attacker hook or fault injector never use the pool — those harnesses
// may retain the DRAM handle past Run, and their runs are not the steady
// state this path optimizes.
func (x *Executor) acquireRun() (*runState, error) {
	w := x.workerCount()
	poolable := runPooling.Load() && x.AfterPhase == nil && x.Injector == nil
	if poolable {
		if v := runPoolFor(w).Get(); v != nil {
			rs := v.(*runState)
			if rs.dramCfg == x.DRAM && rs.secret == x.Secret && rs.random == x.Random {
				return rs, nil
			}
			// Keyed to a different config or crypto identity: a pooled
			// state must never be rebound, so drop it and build fresh.
		}
	}
	dram, err := mem.New(x.DRAM)
	if err != nil {
		return nil, err
	}
	sm := protect.NewSeculatorMemory(dram, x.Secret, x.Random)
	return &runState{
		dram: dram, sm: sm, rt: x.newRuntime(w, sm, dram),
		dramCfg: x.DRAM, secret: x.Secret, random: x.Random,
		poolable: poolable,
	}, nil
}

// release quiesces the run's background stages and, when the state is
// pool-eligible, scrubs and parks it for the next compatible run.
func (rs *runState) release() {
	rs.rt.drain()
	if !rs.poolable || !runPooling.Load() {
		return
	}
	if !rs.sm.Recycle(rs.dram, rs.secret, rs.random) {
		return
	}
	rs.dram.Reset()
	rs.rt.scrub()
	runPoolFor(rs.rt.workers).Put(rs)
}

// scrub wipes every byte of run-derived data from the runtime's pooled
// scratch: shard staging, row buffers, keystream pads (they ARE the CTR
// pads — key material), decoded activations and weights, and the preload
// stage. Bitmaps and digests clear too, so a dirty reset cannot leak one
// run's protocol state into the next.
func (rt *inferRuntime) scrub() {
	for _, sh := range rt.shards {
		sh.Recycle()
	}
	if rt.preload.sh != nil {
		rt.preload.sh.Recycle()
	}
	rt.preload = preloadState{sh: rt.preload.sh}
	for i := range rt.rowPT {
		clear(rt.rowPT[i])
		clear(rt.rowCT[i])
	}
	clear(rt.wDigest)
	clear(rt.ks.pads)
	rt.ks.limit = 0
	rt.ks.ready.Store(0)
	rt.ks.layout = actLayout{}
	clear(rt.inData)
	clear(rt.outData[0])
	clear(rt.outData[1])
	clear(rt.wData)
	for i := range rt.wInts {
		clear(rt.wInts[i])
	}
	clear(rt.ldInts)
	clear(rt.preloadPT)
	clear(rt.preloadCT)
	clear(rt.preloadInts)
	clear(rt.blockBuf[:])
	clear(rt.inTouched)
	clear(rt.wTouched)
	rt.flatRuns = rt.flatRuns[:0]
	rt.lr = layerRun{}
	rt.inTensor = nn.Tensor{}
	rt.outTensor[0] = nn.Tensor{}
	rt.outTensor[1] = nn.Tensor{}
	rt.wTensor = nn.Weights{}
}
