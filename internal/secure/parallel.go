package secure

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"seculator/internal/crypto"
	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/parallel"
	"seculator/internal/protect"
	"seculator/internal/tensor"
)

// Tuning thresholds of the intra-inference pipeline. Sharding has a
// fork/join cost, so tiny tiles run inline on the orchestrator.
const (
	// minForkBlocks is the smallest number of 64-byte blocks per shard worth
	// a fork: one block costs ~4 AES + 1 SHA-256 invocation, so below this
	// the handshake dominates.
	minForkBlocks = 16

	// minComputeOps is the smallest estimated MAC-free arithmetic volume
	// (multiply-accumulates) worth forking a compute range for.
	minComputeOps = 1 << 13

	// ksChunk is how many pads one keystream task generates before
	// re-submitting itself to the pool, so pad generation interleaves
	// fairly with forked shard work instead of hogging a worker.
	ksChunk = 256

	// ksMaxBlocks bounds the precomputed keystream slab (64 B per block).
	ksMaxBlocks = 1 << 13

	// minStageBytes auto-tunes the serial-vs-parallel cutover by layer byte
	// size: a background pipeline stage (keystream precompute, weight
	// preload) only engages for regions at least this large. Below it the
	// pool handshake plus the per-layer cancel/join latency cost more than
	// the crypto the stage hides, so small layers run the serial path even
	// at high worker counts — the forked-shard paths have their own
	// per-call cutover in shardCount.
	minStageBytes = 32 << 10
)

// defaultParallel is the process-wide default worker count for Executor
// runs that leave Parallel at 0. It starts at 1 (serial) and can be raised
// by SetDefaultParallel or the SECULATOR_INFER_PARALLEL environment
// variable — the latter lets CI force every existing test through the
// sharded path without code changes.
var defaultParallel atomic.Int64

func init() {
	if v, err := strconv.Atoi(os.Getenv("SECULATOR_INFER_PARALLEL")); err == nil && v > 0 {
		defaultParallel.Store(int64(v))
	}
}

// SetDefaultParallel sets the process default intra-inference worker count
// (values below 1 mean serial).
func SetDefaultParallel(n int) {
	if n < 1 {
		n = 1
	}
	defaultParallel.Store(int64(n))
}

// DefaultParallel returns the process default intra-inference worker count.
func DefaultParallel() int {
	if v := defaultParallel.Load(); v > 1 {
		return int(v)
	}
	return 1
}

// cryptoPool is the persistent worker pool shared by every parallel
// inference in the process — workers outlive any single Run, like the
// serving scheduler's pool. Sized generously relative to GOMAXPROCS: tasks
// are short and CPU-bound, and the pool also absorbs the keystream and
// weight-preload stages, which must make progress while forks are waiting.
var (
	cryptoPoolOnce sync.Once
	cryptoPool     *parallel.Pool
)

func sharedPool() *parallel.Pool {
	cryptoPoolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
		cryptoPool = parallel.NewPool(n)
	})
	return cryptoPool
}

// lockedInjector serializes fault-injector callbacks when DRAM transfers
// happen from multiple shards: the injectors in package fault keep state
// (RNG, replay maps) and are single-goroutine by contract.
type lockedInjector struct {
	mu sync.Mutex
	in mem.Injector
}

func (li *lockedInjector) OnRead(lineAddr uint64, data []byte) {
	li.mu.Lock()
	li.in.OnRead(lineAddr, data)
	li.mu.Unlock()
}

func (li *lockedInjector) OnWrite(lineAddr uint64, data []byte) {
	li.mu.Lock()
	li.in.OnWrite(lineAddr, data)
	li.mu.Unlock()
}

// inferRuntime is the per-Run parallel execution state: the worker shards,
// their scratch, the keystream precompute stage and the weight-preload
// pipeline. workers == 1 routes everything inline through shard 0, which
// preserves the exact serial order of every DRAM access and MAC fold.
type inferRuntime struct {
	workers int
	pool    *parallel.Pool // nil when workers == 1
	sm      *protect.SeculatorMemory
	dram    *mem.DRAM

	shards []*protect.SeculatorShard

	// Per-shard staging for the row-batch encrypt path (caller-owned
	// scratch contract of protect's batch APIs). Indexed by shard; grown on
	// demand, never shared across concurrently running shards.
	rowPT [][]byte
	rowCT [][]byte

	// wDigest collects per-shard XOR folds of first-touch weight MACs
	// during one forked weight-tile read.
	wDigest []mac.Digest

	ks       keystream
	ksEngine *crypto.CTREngine

	preload preloadState
}

func (x *Executor) newRuntime(sm *protect.SeculatorMemory, dram *mem.DRAM) *inferRuntime {
	w := x.Parallel
	if w == 0 {
		w = DefaultParallel()
	}
	if w < 1 {
		w = 1
	}
	rt := &inferRuntime{workers: w, sm: sm, dram: dram}
	rt.shards = make([]*protect.SeculatorShard, w)
	for i := range rt.shards {
		rt.shards[i] = sm.Shard()
	}
	rt.rowPT = make([][]byte, w)
	rt.rowCT = make([][]byte, w)
	rt.wDigest = make([]mac.Digest, w)
	if w > 1 {
		rt.pool = sharedPool()
		rt.ksEngine = sm.PadEngine()
	}
	return rt
}

func (rt *inferRuntime) parallelOn() bool { return rt.workers > 1 }

// stageWorth reports whether a region of the given block count is large
// enough to engage a background stage for (see minStageBytes).
func (rt *inferRuntime) stageWorth(blocks int) bool {
	return rt.parallelOn() && blocks*tensor.BlockBytes >= minStageBytes
}

// rowScratch returns shard s's plaintext and ciphertext staging for a row
// of nblocks blocks, growing it if needed. Distinct shards own distinct
// buffers, so concurrent calls with distinct s are safe.
func (rt *inferRuntime) rowScratch(s, nblocks int) (pt, ct []byte) {
	need := nblocks * tensor.BlockBytes
	if cap(rt.rowPT[s]) < need {
		rt.rowPT[s] = make([]byte, need)
		rt.rowCT[s] = make([]byte, need)
	}
	return rt.rowPT[s][:need], rt.rowCT[s][:need]
}

// shardCount picks how many shards to fork for n items of `weight` blocks
// each: enough that every shard gets at least minForkBlocks of crypto work,
// never more than the worker count or the item count.
func (rt *inferRuntime) shardCount(n, weight int) int {
	if rt.workers <= 1 || n <= 0 {
		return 1
	}
	total := n * weight
	if total < 2*minForkBlocks {
		return 1
	}
	nsh := total / minForkBlocks
	if nsh > rt.workers {
		nsh = rt.workers
	}
	if nsh > n {
		nsh = n
	}
	if nsh < 1 {
		nsh = 1
	}
	return nsh
}

// forkBlocks partitions n work items (each covering `weight` blocks of
// crypto work) into contiguous chunks across the shard set, runs fn on each
// chunk, and folds every shard's partial MAC state and traffic counts back
// into the memory once all chunks have joined. Shard 0 runs on the calling
// goroutine; fn must confine itself to its own shard and to state disjoint
// from every other chunk. With one worker the chunk is the whole range and
// runs inline — the serial path is literally the parallel path at n=1, so
// serial and parallel runs execute identical per-block operations.
func (rt *inferRuntime) forkBlocks(n, weight int, fn func(shard int, sh *protect.SeculatorShard, lo, hi int)) {
	if n <= 0 {
		return
	}
	nsh := rt.shardCount(n, weight)
	if nsh <= 1 {
		fn(0, rt.shards[0], 0, n)
		rt.sm.Merge(rt.shards[0])
		return
	}
	rt.pool.Fork(nsh, func(s int) {
		lo, hi := n*s/nsh, n*(s+1)/nsh
		if lo < hi {
			fn(s, rt.shards[s], lo, hi)
		}
	})
	rt.sm.Merge(rt.shards[:nsh]...)
}

// forkCompute splits a (k-range × row-range) of MAC-free arithmetic across
// the pool. Each sub-range owns a disjoint set of output elements and
// performs its per-element accumulations in the same order as the serial
// nest, so results are bit-identical. cost is the estimated op count.
func (rt *inferRuntime) forkCompute(k0, k1, y0, y1, cost int, fn func(k0, k1, y0, y1 int)) {
	splitK := (k1 - k0) >= (y1 - y0)
	n := y1 - y0
	if splitK {
		n = k1 - k0
	}
	nsh := min(rt.workers, n)
	if rt.workers <= 1 || cost < minComputeOps || nsh <= 1 {
		fn(k0, k1, y0, y1)
		return
	}
	rt.pool.Fork(nsh, func(s int) {
		lo, hi := n*s/nsh, n*(s+1)/nsh
		if lo >= hi {
			return
		}
		if splitK {
			fn(k0+lo, k0+hi, y0, y1)
		} else {
			fn(k0, k1, y0+lo, y0+hi)
		}
	})
}

// keystream is the bounded pad-precompute stage. AES-CTR pads are
// data-independent and every counter of a layer is deterministic before the
// layer runs — the producer's identity and final version number come from
// the VN FSM ⟨η, κ, ρ⟩ — so pads for the producer region are generated on
// the pool ahead of the reads that consume them. Generation runs in flat
// block order behind an atomic watermark; consumers past the watermark
// simply fall back to their shard engine, which produces the identical pad.
type keystream struct {
	pads   []byte // slab: one 64-byte pad per covered block, reused across layers
	limit  int    // blocks covered: min(region blocks, ksMaxBlocks)
	layout actLayout
	ready  atomic.Int64 // pads [0, ready) are generated (release/acquire)
	stop   atomic.Bool
	wg     sync.WaitGroup
	engine *crypto.CTREngine
	pool   *parallel.Pool
	active bool
}

// start cancels any previous generation and begins precomputing pads for
// the producer region p. Must run on the orchestrating goroutine.
func (ks *keystream) start(pool *parallel.Pool, engine *crypto.CTREngine, p actLayout) {
	ks.cancel()
	n := min(p.blocks(), ksMaxBlocks)
	if n <= 0 || pool == nil || engine == nil {
		return
	}
	need := n * tensor.BlockBytes
	if cap(ks.pads) < need {
		ks.pads = make([]byte, need)
	}
	ks.pads = ks.pads[:need]
	ks.limit = n
	ks.layout = p
	ks.ready.Store(0)
	ks.stop.Store(false)
	ks.engine = engine
	ks.pool = pool
	ks.wg.Add(1)
	if pool.Submit(func() { ks.step(0) }) != nil {
		ks.wg.Done()
		return
	}
	ks.active = true
}

// step generates one chunk of pads and re-submits itself for the next.
func (ks *keystream) step(from int) {
	to := min(from+ksChunk, ks.limit)
	p := ks.layout
	for b := from; b < to && !ks.stop.Load(); b++ {
		ch := b / (p.rows * p.bpr)
		blockIdx := b % (p.rows * p.bpr)
		ks.engine.Keystream(ks.pads[b*tensor.BlockBytes:(b+1)*tensor.BlockBytes], crypto.Counter{
			Fmap: uint32(ch), Layer: p.ownerID, VN: uint32(p.vn), Block: uint32(blockIdx),
		})
		ks.ready.Store(int64(b + 1))
	}
	if to < ks.limit && !ks.stop.Load() {
		if ks.pool.Submit(func() { ks.step(to) }) == nil {
			return
		}
	}
	ks.wg.Done()
}

// pad returns the precomputed pad for the producer block at flat index
// `flat`, or nil if it is outside the slab or not generated yet. Safe from
// shard goroutines while generation is running: the atomic watermark
// publishes each pad before it becomes visible.
func (ks *keystream) pad(flat int) []byte {
	if !ks.active || flat >= ks.limit || int64(flat) >= ks.ready.Load() {
		return nil
	}
	return ks.pads[flat*tensor.BlockBytes : (flat+1)*tensor.BlockBytes]
}

// cancel stops generation and waits for the in-flight chunk to finish.
func (ks *keystream) cancel() {
	if !ks.active {
		return
	}
	ks.stop.Store(true)
	ks.wg.Wait()
	ks.active = false
}

// preloadState tracks the layer-overlap pipeline: while layer k executes,
// a dedicated loader shard host-writes layer k+1's weights and accumulates
// their golden XOR-MAC on the pool.
type preloadState struct {
	pending  bool
	done     chan struct{}
	golden   mac.Digest
	panicVal any
	sh       *protect.SeculatorShard
}

// startPreload kicks off layer st's weight load on the pool. Only legal in
// overlap mode (no attacker hook, no injector): the load mutates DRAM while
// the previous layer is still executing, which is invisible to the
// architecture (disjoint, pre-reserved lines) but not to a hook that
// expects "all loads precede phase -1" ordering.
func (rt *inferRuntime) startPreload(x *Executor, st *layerState, w *nn.Weights) {
	if w == nil || !rt.stageWorth(st.wl.blocks()) {
		return
	}
	if rt.preload.sh == nil {
		rt.preload.sh = rt.sm.Shard()
	}
	done := make(chan struct{})
	rt.preload.done = done
	rt.preload.panicVal = nil
	task := func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				rt.preload.panicVal = r
			}
		}()
		rt.preload.golden = x.loadLayerWeights(rt.preload.sh, st, w)
	}
	if rt.pool.Submit(task) != nil {
		return
	}
	rt.preload.pending = true
}

// waitPreload joins the in-flight weight preload, merges the loader shard's
// traffic, re-raises any captured panic on the orchestrator, and returns
// the golden weight digest. ok is false when no preload was pending (the
// caller then loads inline).
func (rt *inferRuntime) waitPreload() (golden mac.Digest, ok bool) {
	if !rt.preload.pending {
		return mac.Digest{}, false
	}
	<-rt.preload.done
	rt.preload.pending = false
	rt.sm.Merge(rt.preload.sh)
	if r := rt.preload.panicVal; r != nil {
		rt.preload.panicVal = nil
		panic(r)
	}
	return rt.preload.golden, true
}

// drain quiesces every background stage — called on any exit from Run so
// no pool task touches the run's DRAM after Run returns.
func (rt *inferRuntime) drain() {
	rt.ks.cancel()
	if rt.preload.pending {
		<-rt.preload.done
		rt.preload.pending = false
		rt.sm.Merge(rt.preload.sh)
		rt.preload.panicVal = nil
	}
}
