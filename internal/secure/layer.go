package secure

import (
	"fmt"

	"seculator/internal/dataflow"
	"seculator/internal/mac"
	"seculator/internal/nn"
	"seculator/internal/protect"
	"seculator/internal/sim"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// layerRun is the per-layer execution context: the decrypted working set
// being assembled from DRAM reads, first-touch bitmaps, and the weight
// integrity digest. The tile-event handlers shard their block loops across
// the runtime's workers; the first-touch bitmaps stay race-free because a
// chunk partition never assigns the same block to two shards within one
// event, and across events the handlers run sequentially on the
// orchestrator with a merge barrier in between.
type layerRun struct {
	rt *inferRuntime
	sm *protect.SeculatorMemory
	st *layerState

	producer     actLayout
	producerData *nn.Tensor // plaintext the host/producer knows (for external folds)

	in  *nn.Tensor // input assembled from decrypted first reads
	w   *nn.Weights
	out *nn.Tensor

	inTouched []bool // per producer block: first-read seen
	wTouched  []bool // per weight block: first-read seen
	wDigest   mac.Digest

	// flatIn is the reusable flattened-input header FC compute visits view
	// the producer volume through (same backing data, collapsed shape).
	flatIn nn.Tensor

	err error
}

// runLayer executes one layer's tile-event stream and returns the external
// digest covering producer blocks this layer never read (folded host-side
// into the producer's verification). restart re-runs the layer after a
// failed verification: the layer's own MAC folds are discarded while the
// producer's pending bank is kept for re-verification.
func (x *Executor) runLayer(rt *inferRuntime, st *layerState,
	producer actLayout, producerData *nn.Tensor, weights *nn.Weights, restart bool) (mac.Digest, error) {

	sm := rt.sm
	if restart {
		sm.RestartLayer()
	} else {
		sm.BeginLayer(st.act.ownerID)
	}
	if rt.stageWorth(producer.blocks()) {
		// Precompute the producer region's keystream ahead of the reads
		// that consume it; the VN FSM makes every counter known up front.
		rt.ks.start(rt.pool, rt.ksEngine, producer)
		defer rt.ks.cancel()
	}
	// The layer context and its working set live in the runtime's reusable
	// slabs: the input/output tensors, first-touch bitmaps and decoded
	// weights are zeroed views over run-pooled backing arrays, so the layer
	// loop allocates nothing in steady state. Outputs double-buffer by layer
	// parity — layer i assembles into buffer i&1 while layer i-1's output
	// (this layer's producerData, consumed by unreadExternal) stays intact
	// in the other buffer.
	run := &rt.lr
	*run = layerRun{
		rt: rt, sm: sm, st: st,
		producer: producer, producerData: producerData,
		in:        rt.inputTensor(producer.chans, producer.rows, producer.cols),
		out:       rt.outputTensor(int(st.act.ownerID-1)&1, st.layer.K, st.layer.OutH(), st.layer.OutW()),
		inTouched: rt.touchedInput(producer.blocks()),
	}
	if weights != nil {
		if st.resident {
			// Residency attach: compute straight from the pinned, verified
			// plaintext; the weight region's tile events are skipped (see
			// onEvent) and so is the golden comparison — both happened when
			// the residency was built / last epoch-checked.
			run.w = weights
		} else {
			if st.layer.Type == workload.Depthwise {
				run.w = rt.weightsTensor(st.layer.K, 1, st.layer.R, st.layer.S)
			} else {
				run.w = rt.weightsTensor(st.layer.K, st.layer.C, st.layer.R, st.layer.S)
			}
			run.wTouched = rt.touchedWeights(st.wl.k * st.wl.cGroups * st.wl.sliceBlocks)
		}
	}

	err := dataflow.GenerateWithCompute(st.choice.Mapping, run.onEvent, run.onCompute)
	if err == nil {
		err = run.err
	}
	if err != nil {
		return mac.Digest{}, err
	}

	if weights != nil && !st.resident {
		if err := run.verifyWeights(); err != nil {
			return mac.Digest{}, err
		}
	}
	st.out = run.out
	return run.unreadExternal(), nil
}

// onEvent translates one tile event into the corresponding DRAM block
// operations through the secure memory.
func (r *layerRun) onEvent(e dataflow.Event) bool {
	if r.err != nil {
		return false
	}
	switch {
	case e.Tensor == tensor.Ifmap && e.Kind == sim.Read:
		r.readIfmapTile(e)
	case e.Tensor == tensor.Weight && e.Kind == sim.Read:
		if r.st.resident {
			// Weights were verified when the residency was built; the
			// fetch/decrypt/golden-fold pass would only reproduce r.w.
			return true
		}
		r.readWeightTile(e)
	case e.Tensor == tensor.Ofmap && e.Kind == sim.Read:
		r.readPartialTile(e)
	case e.Tensor == tensor.Ofmap && e.Kind == sim.Write:
		r.writeOfmapTile(e)
	}
	return r.err == nil
}

// onCompute runs the arithmetic of one loop-nest body visit: all tiles the
// visit needs have been fetched and decrypted by onEvent.
func (r *layerRun) onCompute(idx dataflow.LoopIdx) bool {
	if r.err != nil {
		return false
	}
	l := r.st.layer
	c := r.st.choice
	k0 := idx.K * c.KT
	k1 := min(l.K, k0+c.KT)
	y0 := idx.S * c.OHT
	y1 := min(l.OutH(), y0+c.OHT)
	in := r.in
	if l.Type == workload.FC && l.H == 1 && l.W == 1 {
		// FC consumes the flattened producer volume (a reusable header over
		// the same backing data).
		r.flatIn = nn.Tensor{Chans: l.C, H: 1, W: 1, Data: r.in.Data}
		in = &r.flatIn
	}
	// The arithmetic itself shards like the crypto: sub-ranges own disjoint
	// output elements and keep the serial per-element accumulation order,
	// so the int32 results are bit-identical.
	switch l.Type {
	case workload.Pool:
		cost := (k1 - k0) * (y1 - y0) * l.OutW() * max(1, l.R*l.S)
		r.rt.forkCompute(k0, k1, y0, y1, cost, func(k0, k1, y0, y1 int) {
			nn.AccumulatePool(r.out, in, l, k0, k1, y0, y1)
		})
	case workload.Upsample:
		cost := (k1 - k0) * (y1 - y0) * l.OutW()
		r.rt.forkCompute(k0, k1, y0, y1, cost, func(k0, k1, y0, y1 int) {
			nn.AccumulateUpsample(r.out, in, l, k0, k1, y0, y1)
		})
	default:
		creduce := l.ReductionChannels()
		c0 := idx.C * c.CT
		c1 := min(creduce, c0+c.CT)
		cost := (k1 - k0) * (y1 - y0) * l.OutW() * max(1, l.R*l.S) * max(1, c1-c0)
		r.rt.forkCompute(k0, k1, y0, y1, cost, func(k0, k1, y0, y1 int) {
			nn.AccumulateConv(r.out, in, r.w, l, k0, k1, c0, c1, y0, y1)
		})
	}
	return true
}

// readIfmapTile fetches the producer blocks one ifmap tile covers. The
// producer's layout is fmap-relative, so the consumer's (possibly
// different) tiling just resolves to a set of (channel, row) block ranges;
// FC layers resolve their flattened channel range element-wise.
func (r *layerRun) readIfmapTile(e dataflow.Event) {
	l := r.st.layer
	c := r.st.choice

	if l.Type == workload.FC && l.H == 1 && l.W == 1 {
		f0 := e.Idx.C * c.CT
		f1 := min(l.C, f0+c.CT)
		r.readFlatRange(f0, f1)
		return
	}

	// Channel range: the reduction group, or the output-channel group for
	// per-channel layers (depthwise, pool, upsample).
	var c0, c1 int
	if l.PerChannel() {
		c0 = e.Idx.K * c.KT
		c1 = min(l.C, c0+c.KT)
	} else {
		c0 = e.Idx.C * c.CT
		c1 = min(l.C, c0+c.CT)
	}
	// Input row range for the output band: the convolution halo, or the
	// source rows an upsampled band expands from.
	y0 := e.Idx.S * c.OHT
	y1 := min(l.OutH(), y0+c.OHT)
	var iy0, iy1 int
	if l.Type == workload.Upsample {
		iy0 = y0 / l.Stride
		iy1 = min(l.H, (y1+l.Stride-1)/l.Stride)
	} else {
		padY, _ := nn.PadOrigin(l)
		iy0 = max(0, y0*l.Stride-padY)
		iy1 = min(l.H, (y1-1)*l.Stride+l.R-padY)
	}
	rows := (c1 - c0) * (iy1 - iy0)
	if rows <= 0 {
		return
	}
	span := iy1 - iy0
	r.rt.forkBlocks(rows, r.producer.bpr, func(_ int, sh *protect.SeculatorShard, lo, hi int) {
		for it := lo; it < hi; it++ {
			ch := c0 + it/span
			iy := iy0 + it%span
			for j := 0; j < r.producer.bpr; j++ {
				r.readProducerBlock(sh, ch, iy, j)
			}
		}
	})
}

// readFlatRange reads the producer blocks containing flattened elements
// [f0, f1) of an FC input. Consecutive elements hit the same 16-element
// block, and the repeat-read MAC folds of those hits are part of the
// protocol — so the range shards by runs of identical blocks, each run
// executing its first-touch + repeats serially on one shard exactly like
// the serial path.
func (r *layerRun) readFlatRange(f0, f1 int) {
	p := r.producer
	perChan := p.rows * p.cols
	runs := r.rt.flatRuns[:0]
	for f := f0; f < f1; {
		ch := f / perChan
		rem := f % perChan
		row := rem / p.cols
		j := (rem % p.cols) * 4 / tensor.BlockBytes
		n := 1
		for f+n < f1 {
			fn := f + n
			remn := fn % perChan
			if fn/perChan != ch || remn/p.cols != row || (remn%p.cols)*4/tensor.BlockBytes != j {
				break
			}
			n++
		}
		runs = append(runs, flatRun{ch: ch, row: row, j: j, n: n})
		f += n
	}
	r.rt.flatRuns = runs // keep any growth for the next range/layer/run
	r.rt.forkBlocks(len(runs), 1, func(_ int, sh *protect.SeculatorShard, lo, hi int) {
		for i := lo; i < hi; i++ {
			b := runs[i]
			for t := 0; t < b.n; t++ {
				r.readProducerBlock(sh, b.ch, b.row, b.j)
			}
		}
	})
}

// readProducerBlock performs one decrypted block read from the producer
// region through a shard, folding it into the shard's partial MAC_FR on
// first touch and MAC_IR on repeats, and assembling the plaintext into the
// layer's input tensor. When the keystream stage has the block's pad ready
// it is consumed instead of running AES — bit-identical either way.
func (r *layerRun) readProducerBlock(sh *protect.SeculatorShard, ch, row, j int) {
	p := r.producer
	flat := (ch*p.rows+row)*p.bpr + j
	first := !r.inTouched[flat]
	r.inTouched[flat] = true
	blockIdx := uint32(row*p.bpr + j)
	var pt []byte
	if pad := r.rt.ks.pad(flat); pad != nil {
		pt = sh.ReadInputPad(p.addr(ch, row, j), p.ownerID, uint32(ch), p.vn, blockIdx, first, pad)
	} else {
		pt = sh.ReadInput(p.addr(ch, row, j), p.ownerID, uint32(ch), p.vn, blockIdx, first)
	}
	if first {
		off := (ch*p.rows+row)*p.cols + j*intsPerBlock
		end := min(len(r.in.Data), (ch*p.rows+row)*p.cols+p.cols)
		decodeBlock(r.in.Data[:end], off, pt)
	}
}

// readWeightTile fetches the (k-group x c-group) weight slices of a tile
// through the static-read path, folding first-touch MACs for the golden
// comparison and decoding the weights. Shards split the k range; each
// shard accumulates its first-touch folds into a private digest that the
// orchestrator XORs together after the join.
func (r *layerRun) readWeightTile(e dataflow.Event) {
	l := r.st.layer
	c := r.st.choice
	wl := r.st.wl
	k0 := e.Idx.K * c.KT
	k1 := min(l.K, k0+c.KT)
	cg := e.Idx.C
	rt := r.rt
	clear(rt.wDigest)
	rt.forkBlocks(k1-k0, wl.sliceBlocks, func(s int, sh *protect.SeculatorShard, lo, hi int) {
		ints := rt.weightInts(s, wl.sliceInts)
		for k := k0 + lo; k < k0+hi; k++ {
			for j := 0; j < wl.sliceBlocks; j++ {
				flat := (k*wl.cGroups+cg)*wl.sliceBlocks + j
				pt, d := sh.ReadStatic(wl.addr(k, cg, j), wl.ownerID, uint32(k), 1,
					uint32(cg*wl.sliceBlocks+j))
				if !r.wTouched[flat] {
					r.wTouched[flat] = true
					rt.wDigest[s] = rt.wDigest[s].Xor(d)
				}
				decodeBlock(ints, j*intsPerBlock, pt)
			}
			r.decodeWeightSlice(k, cg, ints)
		}
	})
	for _, d := range rt.wDigest {
		r.wDigest = r.wDigest.Xor(d)
	}
}

// decodeWeightSlice scatters a decoded (k, c-group) slice into the weight
// tensor.
func (r *layerRun) decodeWeightSlice(k, cg int, ints []int32) {
	l := r.st.layer
	if l.Type == workload.Depthwise {
		i := 0
		for rr := 0; rr < l.R; rr++ {
			for ss := 0; ss < l.S; ss++ {
				r.w.Data[((k*r.w.C+0)*r.w.R+rr)*r.w.S+ss] = ints[i]
				i++
			}
		}
		return
	}
	ct := r.st.wl.sliceInts / (l.R * l.S)
	i := 0
	for cc := cg * ct; cc < (cg+1)*ct; cc++ {
		for rr := 0; rr < l.R; rr++ {
			for ss := 0; ss < l.S; ss++ {
				if cc < l.C {
					r.w.Data[((k*r.w.C+cc)*r.w.R+rr)*r.w.S+ss] = ints[i]
				}
				i++
			}
		}
	}
}

// ofmapRows returns the (k-range, row-range) of an ofmap tile event.
func (r *layerRun) ofmapRows(e dataflow.Event) (k0, k1, y0, y1 int) {
	l := r.st.layer
	c := r.st.choice
	k0 = e.Tile.Fmap * c.KT
	k1 = min(l.K, k0+c.KT)
	y0 = e.Tile.Spatial * c.OHT
	y1 = min(l.OutH(), y0+c.OHT)
	return
}

// readPartialTile decrypts a partial-sum tile back into the output tensor,
// folding its MACs into MAC_R. Shards split the (k, y) rows; each row
// decodes straight into its disjoint slice of the output tensor.
func (r *layerRun) readPartialTile(e dataflow.Event) {
	a := r.st.act
	k0, k1, y0, y1 := r.ofmapRows(e)
	rows := (k1 - k0) * (y1 - y0)
	if rows <= 0 {
		return
	}
	span := y1 - y0
	r.rt.forkBlocks(rows, a.bpr, func(_ int, sh *protect.SeculatorShard, lo, hi int) {
		for it := lo; it < hi; it++ {
			k := k0 + it/span
			y := y0 + it%span
			dst := rowOf(r.out, k, y)
			for j := 0; j < a.bpr; j++ {
				pt := sh.ReadPartial(a.addr(k, y, j), uint32(k), e.VN, uint32(y*a.bpr+j))
				decodeBlock(dst, j*intsPerBlock, pt)
			}
		}
	})
}

// writeOfmapTile encrypts the tile's current accumulation under the event's
// version number, folding its MACs into MAC_W. Shards split the (k, y)
// rows and use the row-batch encrypt path with per-shard staging.
func (r *layerRun) writeOfmapTile(e dataflow.Event) {
	a := r.st.act
	k0, k1, y0, y1 := r.ofmapRows(e)
	rows := (k1 - k0) * (y1 - y0)
	if rows <= 0 {
		return
	}
	span := y1 - y0
	r.rt.forkBlocks(rows, a.bpr, func(s int, sh *protect.SeculatorShard, lo, hi int) {
		pt, ct := r.rt.rowScratch(s, a.bpr)
		for it := lo; it < hi; it++ {
			k := k0 + it/span
			y := y0 + it%span
			encodeRowInto(pt, rowOf(r.out, k, y))
			sh.WriteRow(a.addr(k, y, 0), uint32(k), e.VN, uint32(y*a.bpr), pt, ct)
		}
	})
}

// verifyWeights compares the accumulated first-touch weight MACs (plus
// host-side folds for never-read padded slices) against the golden digest.
func (r *layerRun) verifyWeights() error {
	got := r.wDigest
	// Fold unread weight blocks host-side (slices of fully padded channel
	// groups, or resident groups skipped by the mapping's reuse). The slice
	// is re-derived at most once per (k, cg) into runtime scratch — the
	// events have quiesced, so shard 0's decode slab is free.
	wl := r.st.wl
	l := r.st.layer
	blk := r.rt.blockBuf[:]
	for k := 0; k < wl.k; k++ {
		for cg := 0; cg < wl.cGroups; cg++ {
			var ints []int32
			for j := 0; j < wl.sliceBlocks; j++ {
				flat := (k*wl.cGroups+cg)*wl.sliceBlocks + j
				if r.wTouched[flat] {
					continue
				}
				if ints == nil {
					ints = r.rt.weightInts(0, wl.sliceInts)
					weightSliceInto(ints, l, r.wOrig(), k, cg)
				}
				encodeBlockInto(blk, ints, j)
				got = got.Xor(r.sm.BlockDigest(wl.ownerID, uint32(k), 1, uint32(cg*wl.sliceBlocks+j), blk))
			}
		}
	}
	if got != r.st.goldenWeights {
		return fmt.Errorf("%w: layer %q weights: digest mismatch", mac.ErrIntegrity, l.Name)
	}
	return nil
}

// wOrig returns the decoded weights — by the time verifyWeights runs every
// slice the mapping touches has been decoded, and untouched slices are
// only host-folded, so the decoded tensor stands in for the host's copy.
func (r *layerRun) wOrig() *nn.Weights { return r.w }

// unreadExternal folds the MACs of producer blocks this layer never read —
// the host-assisted external term of the producer's Equation 1 check.
func (r *layerRun) unreadExternal() mac.Digest {
	var d mac.Digest
	p := r.producer
	blk := r.rt.blockBuf[:]
	for ch := 0; ch < p.chans; ch++ {
		for row := 0; row < p.rows; row++ {
			vals := rowOf(r.producerData, ch, row)
			for j := 0; j < p.bpr; j++ {
				flat := (ch*p.rows+row)*p.bpr + j
				if r.inTouched[flat] {
					continue
				}
				encodeBlockInto(blk, vals, j)
				d = d.Xor(r.sm.BlockDigest(p.ownerID, uint32(ch), p.vn, uint32(row*p.bpr+j), blk))
			}
		}
	}
	return d
}

// readout is the host consuming the final outputs: a fresh layer epoch that
// first-reads every output block and closes the last layer's verification.
// restart re-runs the epoch after a failed verification, keeping the last
// layer's pending bank. Like a layer's reads, the readout shards its rows
// and draws on a precomputed keystream for the final region.
func (x *Executor) readout(rt *inferRuntime, states []layerState,
	final actLayout, restart bool) (*nn.Tensor, error) {

	sm := rt.sm
	last := states[len(states)-1]
	if restart {
		sm.RestartLayer()
	} else {
		sm.BeginLayer(uint32(len(states) + 1))
	}
	if rt.stageWorth(final.blocks()) {
		rt.ks.start(rt.pool, rt.ksEngine, final)
		defer rt.ks.cancel()
	}
	out := nn.NewTensor(final.chans, final.rows, final.cols)
	n := final.chans * final.rows
	rt.forkBlocks(n, final.bpr, func(_ int, sh *protect.SeculatorShard, lo, hi int) {
		for it := lo; it < hi; it++ {
			ch := it / final.rows
			row := it % final.rows
			dst := rowOf(out, ch, row)
			for j := 0; j < final.bpr; j++ {
				flat := (ch*final.rows+row)*final.bpr + j
				var pt []byte
				if pad := rt.ks.pad(flat); pad != nil {
					pt = sh.ReadInputPad(final.addr(ch, row, j), final.ownerID, uint32(ch),
						final.vn, uint32(row*final.bpr+j), true, pad)
				} else {
					pt = sh.ReadInput(final.addr(ch, row, j), final.ownerID, uint32(ch),
						final.vn, uint32(row*final.bpr+j), true)
				}
				decodeBlock(dst, j*intsPerBlock, pt)
			}
		}
	})
	if err := sm.VerifyPreviousLayer(mac.Digest{}); err != nil {
		return nil, fmt.Errorf("secure: verifying final layer %q: %w", last.layer.Name, err)
	}
	return out, nil
}
