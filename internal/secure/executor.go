// Package secure is the functional end-to-end execution path: it runs a
// real (int32) neural network through Seculator's protection machinery,
// layer by layer, exactly as the architecture would —
//
//   - the host encrypts the model inputs and weights into DRAM and keeps
//     golden XOR-MACs for them;
//   - each layer executes as the tile-event stream of its scheduled
//     mapping: every ifmap/weight/partial-ofmap tile is fetched from DRAM
//     and decrypted with the paper's AES-CTR counter layout, every
//     write-back is encrypted under its generated version number, and
//     every block MAC folds into the XOR-MAC registers;
//   - at each layer boundary the Equation 1 check verifies the previous
//     layer, first-layer inputs are checked against the host's golden
//     digest, and weights against their per-layer golden digests;
//   - finally the host reads the outputs back through the same path.
//
// The output must equal package nn's direct reference computation bit for
// bit, demonstrating that the protection is transparent to the numerics;
// any DRAM tampering between or during layers must surface as an integrity
// error. This is the "rigorously experimentally validated" half of
// Section 7.4.
package secure

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"seculator/internal/dataflow"
	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/npu"
	"seculator/internal/protect"
	"seculator/internal/resilience"
	"seculator/internal/sched"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// intsPerBlock is how many int32 activations one 64-byte block holds.
const intsPerBlock = tensor.BlockBytes / 4

// Hook lets tests interpose an attacker between execution phases.
// phase -1 runs after model load; phase i >= 0 runs after layer i completes
// (before the next layer, or before host readout for the last).
type Hook func(phase int, d *mem.DRAM)

// Region is one contiguous block range of the executor's DRAM layout.
type Region struct {
	Base   uint64
	Blocks int
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+uint64(r.Blocks)
}

// PlanInfo describes the run's address-space layout: the layer-0 input
// region followed by each layer's output-activation and weight regions,
// all contiguous from line 0. Attack harnesses use it to aim mutations at
// blocks the protection protocol is guaranteed to consume (every weight
// block is read by its layer, every final-output block by the host
// readout), so detection claims carry no false negatives.
type PlanInfo struct {
	Input   Region
	Acts    []Region // per layer: its output activation region
	Weights []Region // per layer: its weight region (Blocks == 0 for pools)
}

// Final returns the last layer's output region — the blocks the host
// readout first-reads in full.
func (p PlanInfo) Final() Region {
	if len(p.Acts) == 0 {
		return Region{}
	}
	return p.Acts[len(p.Acts)-1]
}

// Executor drives the functional execution.
type Executor struct {
	NPU    npu.Config
	DRAM   mem.Config
	Secret uint64
	Random uint64

	// AfterPhase, when non-nil, is the attacker hook.
	AfterPhase Hook

	// OnPlan, when non-nil, receives the address-space layout right after
	// planning, before anything is written — the targeting information an
	// in-position attacker (or the conformance attack fuzzer) works from.
	OnPlan func(PlanInfo)

	// OnLayerMACs, when non-nil, observes the four XOR-MAC registers of the
	// bank accumulating layer `phase` right after that layer's event stream
	// and verification close (phase i >= 0), and of the readout epoch's bank
	// with phase == Layers. The serial/parallel equivalence oracle compares
	// these snapshots across worker counts bit for bit.
	OnLayerMACs func(phase int, regs protect.RegisterState)

	// Injector, when non-nil, is installed on the DRAM read/write paths —
	// the fault-injection attachment point (package fault).
	Injector mem.Injector

	// Retry bounds the layer-level detect-and-recover loop: on an
	// integrity-check failure the executor re-fetches the layer's working
	// set, re-derives its VN sequence, and re-executes the layer up to
	// MaxRetries times with exponential backoff. The zero policy disables
	// recovery (every detection is terminal).
	Retry resilience.Policy

	// Parallel is the intra-inference worker count: how many shards the
	// per-tile AES-CTR + SHA-256 work (and the MAC-free arithmetic) is
	// split across. The XOR-MAC's commutative fold makes the sharded run
	// bit-identical to the serial one — outputs and all four registers.
	// 0 means the process default (DefaultParallel, settable via
	// SetDefaultParallel or SECULATOR_INFER_PARALLEL); 1 runs serial.
	Parallel int

	// Residency, when non-nil, attaches the run to a pinned
	// verify-once-then-resident weight cache (see residency.go): the
	// pinned ciphertext is installed by memcpy, the per-request host
	// encrypt + golden-MAC pass and the per-tile weight fetch/decrypt are
	// skipped, and compute reads the residency's verified plaintext. The
	// attach is refused — the run silently takes the full path — unless
	// the residency matches this executor's config exactly, the caller's
	// weights ARE the residency's verified tensors, and no attacker hook
	// or fault injector is installed.
	Residency *WeightResidency
}

// DefaultSecret and DefaultRandom are the process's DRAM crypto identity:
// the accelerator secret ID (P in every block MAC) and the boot-time
// randomness of the CTR engine. They are deliberately process constants —
// ciphertext and golden MACs are then a pure function of (network, model
// seed, design), which is what lets the serving tier pin verified weights
// across requests (residency.go).
const (
	DefaultSecret uint64 = 0x5ec1_a70f_ee1d_c0de
	DefaultRandom uint64 = 0xb007_5eed
)

// NewExecutor returns an executor with the default system configuration
// and the default recovery policy.
func NewExecutor() *Executor {
	return &Executor{
		NPU:    npu.DefaultConfig(),
		DRAM:   mem.DefaultConfig(),
		Secret: DefaultSecret,
		Random: DefaultRandom,
		Retry:  resilience.DefaultPolicy(),
	}
}

// actLayout is the DRAM layout of one activation tensor: each channel's
// rows are padded to block boundaries so any row range is block-aligned,
// and MAC positions are fmap-relative (fmap ID = channel, block index =
// row*bpr + j) so consumers may retile freely — the paper's order-freedom.
type actLayout struct {
	base    uint64
	chans   int
	rows    int
	cols    int
	bpr     int // blocks per row
	ownerID uint32
	vn      int
}

func (a actLayout) addr(ch, row, blk int) uint64 {
	return a.base + uint64((ch*a.rows+row)*a.bpr+blk)
}

func (a actLayout) blocks() int { return a.chans * a.rows * a.bpr }

// weightLayout stores layer weights as (k, c-group) slices, each padded to
// a block boundary: fmap ID = filter k, block index = cg*sliceBlocks + j.
type weightLayout struct {
	base        uint64
	k           int
	cGroups     int
	sliceInts   int // int32 weights per (k, cg) slice
	sliceBlocks int
	ownerID     uint32
}

func (w weightLayout) blocks() int { return w.k * w.cGroups * w.sliceBlocks }

func (w weightLayout) addr(k, cg, blk int) uint64 {
	return w.base + uint64((k*w.cGroups+cg)*w.sliceBlocks+blk)
}

// layerState carries everything the executor tracks per layer.
type layerState struct {
	layer  workload.Layer
	choice sched.Choice

	act actLayout    // this layer's output region
	wl  weightLayout // this layer's weight region (zero for pools)

	goldenWeights mac.Digest // XOR of all weight-block MACs
	resident      bool       // weights pre-verified by an attached residency
	out           *nn.Tensor
}

// Result is the outcome of a functional run.
type Result struct {
	Output *nn.Tensor
	Layers int
	Blocks int // DRAM lines holding the encrypted model + activations

	// OutputMAC is the final layer's MAC_W register — the XOR-MAC a host
	// consuming the outputs verifies against. Because the XOR fold is
	// commutative, it is bit-identical across worker counts; the
	// serial/parallel equivalence tests assert exactly that.
	OutputMAC mac.Digest

	// Recovery reports the detect-and-recover activity of the run: layer
	// retries performed, layers recovered from transient faults, and
	// whether a persistent violation latched the breach.
	Recovery resilience.Stats
}

// Run executes the network on input with the given per-layer weights (nil
// for pools), returning the decrypted output. An integrity violation —
// induced by the AfterPhase hook, the fault Injector, or real tampering —
// triggers the layer-level recovery loop: the layer's working set is
// re-fetched, its VN sequence re-derived, and the layer re-executed under
// the Retry policy. A violation that clears is counted as a recovered
// transient; one that persists aborts the run with the breach latched and a
// typed error (resilience.FreshnessError on the versioned activation path,
// a persistent resilience.IntegrityError on host-golden data). No panic
// escapes this method; ctx cancels between layers and between retries.
func (x *Executor) Run(ctx context.Context, net workload.Network, input *nn.Tensor, weights []*nn.Weights) (res Result, err error) {
	defer resilience.Recover(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := x.NPU.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if err := x.DRAM.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if err := net.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if len(weights) != len(net.Layers) {
		return Result{}, &resilience.ConfigError{
			Err: fmt.Errorf("secure: %d weight tensors for %d layers", len(weights), len(net.Layers)),
		}
	}
	rs, err := x.acquireRun()
	if err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	dram, sm, rt := rs.dram, rs.sm, rs.rt
	defer rs.release()
	if x.Injector != nil {
		if rt.parallelOn() {
			// Fault injectors keep state (RNG, replay maps) and are
			// single-goroutine by contract; shards reach them through a
			// serializing wrapper.
			dram.SetInjector(&lockedInjector{in: x.Injector})
		} else {
			dram.SetInjector(x.Injector)
		}
	}

	states, inputLayout, total, err := x.plan(net, weights)
	if err != nil {
		return Result{}, err
	}
	if x.OnPlan != nil {
		x.OnPlan(planInfo(states, inputLayout))
	}
	// Pre-allocate every line the run will touch, carved from one slab
	// (mem.DRAM.Reserve): sharded execution needs the store map read-only,
	// and the serial path sheds its dominant cost — one heap allocation per
	// first-written DRAM line. Reservation is attacker-invisible, so the
	// two paths stay bit- and observation-identical.
	dram.Reserve(total)
	goldenInput := x.loadInput(rt, input, inputLayout)

	// Residency attach: install the pinned, pre-verified ciphertext by
	// memcpy and mark every layer trusted — no host encrypt, no golden
	// re-MAC, no per-tile weight fetch. Otherwise provision normally.
	resident := x.residentFor(net, weights)
	// Layer-overlap pipeline: while layer k executes, a loader shard
	// host-writes layer k+1's weights and computes their golden XOR-MAC on
	// the pool. Only without an attacker hook or injector — both observe
	// load/execute ordering that overlapping would change.
	overlap := !resident && rt.parallelOn() && x.AfterPhase == nil && x.Injector == nil
	switch {
	case resident:
		x.Residency.install(dram)
		for i := range states {
			states[i].resident = true
			states[i].goldenWeights = x.Residency.layers[i].golden
		}
	case overlap:
		if weights[0] != nil {
			ints, pt, ct := rt.loadScratch(0, states[0].wl.sliceInts, states[0].wl.sliceBlocks)
			states[0].goldenWeights = x.loadLayerWeights(rt.shards[0], &states[0], weights[0], ints, pt, ct)
			sm.Merge(rt.shards[0])
		}
	default:
		x.loadAllWeights(rt, states, weights)
	}
	x.hook(-1, dram)

	var stats resilience.Stats
	producer := inputLayout
	producerData := input
	for i := range states {
		st := &states[i]
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if overlap {
			if i > 0 && weights[i] != nil {
				if g, ok := rt.waitPreload(); ok {
					st.goldenWeights = g
				} else {
					ints, pt, ct := rt.loadScratch(0, st.wl.sliceInts, st.wl.sliceBlocks)
					st.goldenWeights = x.loadLayerWeights(rt.shards[0], st, weights[i], ints, pt, ct)
					sm.Merge(rt.shards[0])
				}
			}
			if i+1 < len(states) {
				rt.startPreload(x, &states[i+1], weights[i+1])
			}
		}
		// One attempt = re-fetch + re-execute the layer's event stream,
		// then close the pending verification (layer-0 golden inputs, or
		// the previous layer's Equation 1 check).
		attempt := func(restart bool) error {
			unread, err := x.runLayer(rt, st, producer, producerData, weights[i], restart)
			if err != nil {
				return classify(err, i, resilience.ClassWeight)
			}
			if i == 0 {
				// First-layer inputs verify against the host's golden
				// digest; blocks the mapping never touched fold host-side.
				if err := sm.VerifyInputsGolden(goldenInput.Xor(unread)); err != nil {
					return classify(fmt.Errorf("secure: layer 0 inputs: %w", err), 0, resilience.ClassInput)
				}
				return nil
			}
			if err := sm.VerifyPreviousLayer(unread); err != nil {
				return classify(fmt.Errorf("secure: verifying layer %d: %w", i-1, err), i-1, resilience.ClassActivation)
			}
			return nil
		}
		if err := x.recoverLoop(ctx, attempt, &stats); err != nil {
			return Result{Recovery: stats}, fmt.Errorf("secure: layer %d (%s): %w", i, st.layer.Name, err)
		}
		producer = st.act
		producerData = st.out
		if x.OnLayerMACs != nil {
			x.OnLayerMACs(i, sm.RegisterSnapshot())
		}
		x.hook(i, dram)
	}

	// The final layer's W register is the output MAC the host verifies
	// against; capture it before the readout epoch swaps banks.
	outputMAC := sm.FinalOutputMAC()

	// Host readout epoch: consume the last layer's outputs through the
	// same first-read path and close its Equation 1 check.
	var out *nn.Tensor
	readAttempt := func(restart bool) error {
		var err error
		out, err = x.readout(rt, states, producer, restart)
		if err != nil {
			return classify(err, len(states)-1, resilience.ClassOutput)
		}
		return nil
	}
	if err := x.recoverLoop(ctx, readAttempt, &stats); err != nil {
		return Result{Recovery: stats}, err
	}
	if x.OnLayerMACs != nil {
		x.OnLayerMACs(len(states), sm.RegisterSnapshot())
	}
	return Result{Output: out, OutputMAC: outputMAC, Layers: len(states),
		Blocks: dram.Lines(), Recovery: stats}, nil
}

// residentFor reports whether this run may attach to x.Residency: the
// pinned state must match the executor's config and the caller's weight
// tensors exactly, and no hook or injector may be installed — per-request
// weight verification is precisely the check those harnesses exercise.
func (x *Executor) residentFor(net workload.Network, weights []*nn.Weights) bool {
	return x.Residency != nil && x.AfterPhase == nil && x.Injector == nil &&
		x.Residency.matches(net, x.NPU, x.DRAM, x.Secret, x.Random, weights)
}

// classify wraps an integrity failure in the typed taxonomy; other errors
// (mapping, protocol, context) pass through untouched.
func classify(err error, layer int, class resilience.TensorClass) error {
	if !errors.Is(err, mac.ErrIntegrity) {
		return err
	}
	return &resilience.IntegrityError{Layer: layer, Tensor: class, Err: err}
}

// recoverLoop drives one layer (or the readout epoch) through the bounded
// detect-and-recover policy: retry transient integrity failures with
// backoff; classify survivors as persistent, latch the breach, and — on the
// versioned activation/output path — promote them to freshness violations,
// the signature of replay or splice tampering that re-fetching cannot fix.
func (x *Executor) recoverLoop(ctx context.Context, attempt func(restart bool) error, stats *resilience.Stats) error {
	for try := 0; ; try++ {
		err := attempt(try > 0)
		if err == nil {
			if try > 0 {
				stats.Recovered++
			}
			return nil
		}
		if !resilience.Retryable(err) {
			return err
		}
		if try >= x.Retry.MaxRetries {
			stats.Persistent++
			stats.Breached = true
			var ie *resilience.IntegrityError
			if errors.As(err, &ie) {
				ie.Persistent = true
				if ie.Tensor == resilience.ClassActivation || ie.Tensor == resilience.ClassOutput {
					return &resilience.FreshnessError{Layer: ie.Layer, Tensor: ie.Tensor, Retries: try, Err: ie}
				}
			}
			return err
		}
		stats.Retries++
		if werr := x.Retry.Wait(ctx, try+1); werr != nil {
			return werr
		}
	}
}

func (x *Executor) hook(phase int, d *mem.DRAM) {
	if x.AfterPhase != nil {
		x.AfterPhase(phase, d)
	}
}

// plan maps every layer and lays out the address space without writing
// anything: the input region, then per layer its activation and weight
// regions, all contiguous from line 0. It returns the total line count so
// parallel runs can pre-reserve the DRAM store before sharding. The
// mapping search is memoized (sched.MapCached) — the serving tier plans
// the same layers on every request — and a residency attach reuses its
// pinned choices outright.
func (x *Executor) plan(net workload.Network, weights []*nn.Weights) ([]layerState, actLayout, uint64, error) {
	var choices []sched.Choice
	if x.residentFor(net, weights) {
		choices = x.Residency.choices
	} else {
		var err error
		choices, err = sched.MapNetworkCached(net, x.NPU, x.DRAM)
		if err != nil {
			return nil, actLayout{}, 0, err
		}
	}
	states, inputLayout, next := planLayout(net, weights, choices)
	return states, inputLayout, next, nil
}

// planLayout lays out the address space for a fixed set of mapping
// choices: the deterministic half of plan, shared with the residency
// build so pinned weight regions land at exactly the addresses any
// attaching run will plan.
func planLayout(net workload.Network, weights []*nn.Weights, choices []sched.Choice) ([]layerState, actLayout, uint64) {
	var next uint64

	// Layer-0 input region, owned by host "layer" 0 at version 1.
	first := net.Layers[0]
	inputLayout := actLayout{
		base: next, chans: first.C, rows: first.H, cols: first.W,
		bpr: tensor.CeilDiv(first.W*4, tensor.BlockBytes), ownerID: 0, vn: 1,
	}
	next += uint64(inputLayout.blocks())

	states := make([]layerState, len(net.Layers))
	for i, choice := range choices {
		l := choice.Layer
		st := layerState{layer: l, choice: choice}

		// Output activation region.
		wp := dataflow.DeriveWrite(choice.Mapping)
		st.act = actLayout{
			base: 0, chans: l.K, rows: l.OutH(), cols: l.OutW(),
			bpr:     tensor.CeilDiv(l.OutW()*4, tensor.BlockBytes),
			ownerID: uint32(i + 1),
			vn:      finalVN(wp),
		}
		st.act.base = next
		next += uint64(st.act.blocks())

		// Weight region (host-written, owner tag 0x8000+i, version 1).
		if weights[i] != nil {
			ct := choice.CT
			if l.Type == workload.Depthwise {
				ct = 1
			}
			st.wl = weightLayout{
				base:        next,
				k:           l.K,
				cGroups:     choice.Mapping.AlphaC,
				sliceInts:   ct * l.R * l.S,
				sliceBlocks: tensor.CeilDiv(ct*l.R*l.S*4, tensor.BlockBytes),
				ownerID:     uint32(0x8000 + i),
			}
			next += uint64(st.wl.k * st.wl.cGroups * st.wl.sliceBlocks)
		}
		states[i] = st
	}
	return states, inputLayout, next
}

// planInfo flattens the planned layout into the public PlanInfo view.
func planInfo(states []layerState, input actLayout) PlanInfo {
	p := PlanInfo{Input: Region{Base: input.base, Blocks: input.blocks()}}
	for i := range states {
		st := &states[i]
		p.Acts = append(p.Acts, Region{Base: st.act.base, Blocks: st.act.blocks()})
		var w Region
		if st.wl.sliceBlocks > 0 {
			w = Region{Base: st.wl.base, Blocks: st.wl.k * st.wl.cGroups * st.wl.sliceBlocks}
		}
		p.Weights = append(p.Weights, w)
	}
	return p
}

// loadInput host-writes the encrypted layer-0 input, sharded across the
// runtime, and returns the host's golden XOR-MAC over all its blocks. The
// per-shard partial digests XOR together, so the golden value is identical
// for any worker count.
func (x *Executor) loadInput(rt *inferRuntime, input *nn.Tensor, il actLayout) mac.Digest {
	golden := rt.wDigest
	clear(golden)
	n := input.Chans * input.H
	rt.forkBlocks(n, il.bpr, func(s int, sh *protect.SeculatorShard, lo, hi int) {
		pt, ct := rt.rowScratch(s, il.bpr)
		for it := lo; it < hi; it++ {
			c, y := it/input.H, it%input.H
			encodeRowInto(pt, rowOf(input, c, y))
			d := sh.HostWriteRow(il.addr(c, y, 0), 0, uint32(c), 1, uint32(y*il.bpr), pt, ct)
			golden[s] = golden[s].Xor(d)
		}
	})
	var g mac.Digest
	for _, d := range golden {
		g = g.Xor(d)
	}
	return g
}

// loadLayerWeights host-writes one layer's weights through a shard, slice
// by slice, returning the layer's golden XOR-MAC. The caller supplies the
// staging (ints of wl.sliceInts values, pt/ct of wl.sliceBlocks blocks):
// inline loads pass the runtime's loadScratch, forked loads their shard's
// scratch, and the overlapped preload its private preloadScratch — so no
// path shares staging with a concurrently executing layer shard.
func (x *Executor) loadLayerWeights(sh *protect.SeculatorShard, st *layerState, w *nn.Weights, ints []int32, pt, ct []byte) mac.Digest {
	var golden mac.Digest
	wl := st.wl
	for k := 0; k < wl.k; k++ {
		for cg := 0; cg < wl.cGroups; cg++ {
			weightSliceInto(ints, st.layer, w, k, cg)
			encodeRowInto(pt, ints)
			golden = golden.Xor(sh.HostWriteRow(wl.addr(k, cg, 0), wl.ownerID, uint32(k), 1,
				uint32(cg*wl.sliceBlocks), pt, ct))
		}
	}
	return golden
}

// loadAllWeights host-writes every layer's weights (non-overlap mode),
// forked across layers: each layer's region and golden digest belong to
// exactly one chunk.
func (x *Executor) loadAllWeights(rt *inferRuntime, states []layerState, weights []*nn.Weights) {
	total := 0
	for i := range states {
		if weights[i] != nil {
			total += states[i].wl.k * states[i].wl.cGroups * states[i].wl.sliceBlocks
		}
	}
	n := len(states)
	rt.forkBlocks(n, total/max(n, 1), func(s int, sh *protect.SeculatorShard, lo, hi int) {
		for i := lo; i < hi; i++ {
			if weights[i] == nil {
				continue
			}
			wl := states[i].wl
			ints := rt.weightInts(s, wl.sliceInts)
			pt, ct := rt.rowScratch(s, wl.sliceBlocks)
			states[i].goldenWeights = x.loadLayerWeights(sh, &states[i], weights[i], ints, pt, ct)
		}
	})
}

// weightSliceInto fills dst (the (k, c-group) slice, len == sliceInts) with
// the flat int32 weight row — the allocation-free counterpart of weightSlice
// for the hot load paths. Padded channel groups read as zero.
func weightSliceInto(dst []int32, l workload.Layer, w *nn.Weights, k, cg int) {
	i := 0
	if l.Type == workload.Depthwise {
		for r := 0; r < l.R; r++ {
			for s := 0; s < l.S; s++ {
				dst[i] = w.At(k, 0, r, s)
				i++
			}
		}
		return
	}
	ct := len(dst) / (l.R * l.S)
	for c := cg * ct; c < (cg+1)*ct; c++ {
		for r := 0; r < l.R; r++ {
			for s := 0; s < l.S; s++ {
				if c < l.C {
					dst[i] = w.At(k, c, r, s)
				} else {
					dst[i] = 0 // padded channel group
				}
				i++
			}
		}
	}
}

// weightSlice extracts the (k, c-group) weight slice as a flat int32 row.
func weightSlice(l workload.Layer, w *nn.Weights, k, cg, sliceInts int) []int32 {
	out := make([]int32, 0, sliceInts)
	if l.Type == workload.Depthwise {
		for r := 0; r < l.R; r++ {
			for s := 0; s < l.S; s++ {
				out = append(out, w.At(k, 0, r, s))
			}
		}
		return out
	}
	ct := sliceInts / (l.R * l.S)
	for c := cg * ct; c < (cg+1)*ct; c++ {
		for r := 0; r < l.R; r++ {
			for s := 0; s < l.S; s++ {
				if c < l.C {
					out = append(out, w.At(k, c, r, s))
				} else {
					out = append(out, 0) // padded channel group
				}
			}
		}
	}
	return out
}

func finalVN(write interface{ MaxVN() int }) int {
	if v := write.MaxVN(); v > 0 {
		return v
	}
	return 1
}

func rowOf(t *nn.Tensor, c, y int) []int32 {
	return t.Data[(c*t.H+y)*t.W : (c*t.H+y)*t.W+t.W]
}

// encodeBlockInto packs block j of a value row into dst (one zero-padded
// 64-byte block) without allocating — the per-block counterpart of
// encodeRowInto for paths that re-derive single blocks (golden re-MACs of
// unread weights, external folds of unconsumed outputs).
func encodeBlockInto(dst []byte, vals []int32, j int) {
	clear(dst)
	for i := 0; i < intsPerBlock; i++ {
		idx := j*intsPerBlock + i
		if idx >= len(vals) {
			return
		}
		binary.BigEndian.PutUint32(dst[i*4:], uint32(vals[idx]))
	}
}

// encodeRowInto packs vals into dst — a whole number of zero-padded
// 64-byte blocks — without allocating: the flat-buffer counterpart of
// encodeRow for the batch write path. Values beyond dst's capacity are
// dropped, matching encodeRow's clipping.
func encodeRowInto(dst []byte, vals []int32) {
	clear(dst)
	n := min(len(vals), len(dst)/4)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(dst[i*4:], uint32(vals[i]))
	}
}

// decodeBlock unpacks a 64-byte block into up to n int32 values appended to
// dst starting at offset off (clipped to len(dst)).
func decodeBlock(dst []int32, off int, blk []byte) {
	for i := 0; i < intsPerBlock; i++ {
		idx := off + i
		if idx >= len(dst) {
			return
		}
		dst[idx] = int32(binary.BigEndian.Uint32(blk[i*4:]))
	}
}
