// Package secure is the functional end-to-end execution path: it runs a
// real (int32) neural network through Seculator's protection machinery,
// layer by layer, exactly as the architecture would —
//
//   - the host encrypts the model inputs and weights into DRAM and keeps
//     golden XOR-MACs for them;
//   - each layer executes as the tile-event stream of its scheduled
//     mapping: every ifmap/weight/partial-ofmap tile is fetched from DRAM
//     and decrypted with the paper's AES-CTR counter layout, every
//     write-back is encrypted under its generated version number, and
//     every block MAC folds into the XOR-MAC registers;
//   - at each layer boundary the Equation 1 check verifies the previous
//     layer, first-layer inputs are checked against the host's golden
//     digest, and weights against their per-layer golden digests;
//   - finally the host reads the outputs back through the same path.
//
// The output must equal package nn's direct reference computation bit for
// bit, demonstrating that the protection is transparent to the numerics;
// any DRAM tampering between or during layers must surface as an integrity
// error. This is the "rigorously experimentally validated" half of
// Section 7.4.
package secure

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"seculator/internal/dataflow"
	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/npu"
	"seculator/internal/protect"
	"seculator/internal/resilience"
	"seculator/internal/sched"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// intsPerBlock is how many int32 activations one 64-byte block holds.
const intsPerBlock = tensor.BlockBytes / 4

// Hook lets tests interpose an attacker between execution phases.
// phase -1 runs after model load; phase i >= 0 runs after layer i completes
// (before the next layer, or before host readout for the last).
type Hook func(phase int, d *mem.DRAM)

// Executor drives the functional execution.
type Executor struct {
	NPU    npu.Config
	DRAM   mem.Config
	Secret uint64
	Random uint64

	// AfterPhase, when non-nil, is the attacker hook.
	AfterPhase Hook

	// Injector, when non-nil, is installed on the DRAM read/write paths —
	// the fault-injection attachment point (package fault).
	Injector mem.Injector

	// Retry bounds the layer-level detect-and-recover loop: on an
	// integrity-check failure the executor re-fetches the layer's working
	// set, re-derives its VN sequence, and re-executes the layer up to
	// MaxRetries times with exponential backoff. The zero policy disables
	// recovery (every detection is terminal).
	Retry resilience.Policy
}

// NewExecutor returns an executor with the default system configuration
// and the default recovery policy.
func NewExecutor() *Executor {
	return &Executor{
		NPU:    npu.DefaultConfig(),
		DRAM:   mem.DefaultConfig(),
		Secret: 0x5ec1_a70f_ee1d_c0de,
		Random: 0xb007_5eed,
		Retry:  resilience.DefaultPolicy(),
	}
}

// actLayout is the DRAM layout of one activation tensor: each channel's
// rows are padded to block boundaries so any row range is block-aligned,
// and MAC positions are fmap-relative (fmap ID = channel, block index =
// row*bpr + j) so consumers may retile freely — the paper's order-freedom.
type actLayout struct {
	base    uint64
	chans   int
	rows    int
	cols    int
	bpr     int // blocks per row
	ownerID uint32
	vn      int
}

func (a actLayout) addr(ch, row, blk int) uint64 {
	return a.base + uint64((ch*a.rows+row)*a.bpr+blk)
}

func (a actLayout) blocks() int { return a.chans * a.rows * a.bpr }

// weightLayout stores layer weights as (k, c-group) slices, each padded to
// a block boundary: fmap ID = filter k, block index = cg*sliceBlocks + j.
type weightLayout struct {
	base        uint64
	k           int
	cGroups     int
	sliceInts   int // int32 weights per (k, cg) slice
	sliceBlocks int
	ownerID     uint32
}

func (w weightLayout) addr(k, cg, blk int) uint64 {
	return w.base + uint64((k*w.cGroups+cg)*w.sliceBlocks+blk)
}

// layerState carries everything the executor tracks per layer.
type layerState struct {
	layer  workload.Layer
	choice sched.Choice

	act actLayout    // this layer's output region
	wl  weightLayout // this layer's weight region (zero for pools)

	goldenWeights mac.Digest // XOR of all weight-block MACs
	out           *nn.Tensor
}

// Result is the outcome of a functional run.
type Result struct {
	Output *nn.Tensor
	Layers int
	Blocks int // DRAM lines holding the encrypted model + activations

	// Recovery reports the detect-and-recover activity of the run: layer
	// retries performed, layers recovered from transient faults, and
	// whether a persistent violation latched the breach.
	Recovery resilience.Stats
}

// Run executes the network on input with the given per-layer weights (nil
// for pools), returning the decrypted output. An integrity violation —
// induced by the AfterPhase hook, the fault Injector, or real tampering —
// triggers the layer-level recovery loop: the layer's working set is
// re-fetched, its VN sequence re-derived, and the layer re-executed under
// the Retry policy. A violation that clears is counted as a recovered
// transient; one that persists aborts the run with the breach latched and a
// typed error (resilience.FreshnessError on the versioned activation path,
// a persistent resilience.IntegrityError on host-golden data). No panic
// escapes this method; ctx cancels between layers and between retries.
func (x *Executor) Run(ctx context.Context, net workload.Network, input *nn.Tensor, weights []*nn.Weights) (res Result, err error) {
	defer resilience.Recover(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := x.NPU.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if err := x.DRAM.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if err := net.Validate(); err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if len(weights) != len(net.Layers) {
		return Result{}, &resilience.ConfigError{
			Err: fmt.Errorf("secure: %d weight tensors for %d layers", len(weights), len(net.Layers)),
		}
	}
	dram, err := mem.New(x.DRAM)
	if err != nil {
		return Result{}, &resilience.ConfigError{Err: err}
	}
	if x.Injector != nil {
		dram.SetInjector(x.Injector)
	}
	sm := protect.NewSeculatorMemory(dram, x.Secret, x.Random)

	states, inputLayout, goldenInput, err := x.load(net, input, weights, sm)
	if err != nil {
		return Result{}, err
	}
	x.hook(-1, dram)

	var stats resilience.Stats
	producer := inputLayout
	producerData := input
	for i := range states {
		st := &states[i]
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		// One attempt = re-fetch + re-execute the layer's event stream,
		// then close the pending verification (layer-0 golden inputs, or
		// the previous layer's Equation 1 check).
		attempt := func(restart bool) error {
			unread, err := x.runLayer(sm, st, producer, producerData, weights[i], restart)
			if err != nil {
				return classify(err, i, resilience.ClassWeight)
			}
			if i == 0 {
				// First-layer inputs verify against the host's golden
				// digest; blocks the mapping never touched fold host-side.
				if err := sm.VerifyInputsGolden(goldenInput.Xor(unread)); err != nil {
					return classify(fmt.Errorf("secure: layer 0 inputs: %w", err), 0, resilience.ClassInput)
				}
				return nil
			}
			if err := sm.VerifyPreviousLayer(unread); err != nil {
				return classify(fmt.Errorf("secure: verifying layer %d: %w", i-1, err), i-1, resilience.ClassActivation)
			}
			return nil
		}
		if err := x.recoverLoop(ctx, attempt, &stats); err != nil {
			return Result{Recovery: stats}, fmt.Errorf("secure: layer %d (%s): %w", i, st.layer.Name, err)
		}
		producer = st.act
		producerData = st.out
		x.hook(i, dram)
	}

	// Host readout epoch: consume the last layer's outputs through the
	// same first-read path and close its Equation 1 check.
	var out *nn.Tensor
	readAttempt := func(restart bool) error {
		var err error
		out, err = x.readout(sm, states, producer, restart)
		if err != nil {
			return classify(err, len(states)-1, resilience.ClassOutput)
		}
		return nil
	}
	if err := x.recoverLoop(ctx, readAttempt, &stats); err != nil {
		return Result{Recovery: stats}, err
	}
	return Result{Output: out, Layers: len(states), Blocks: dram.Lines(), Recovery: stats}, nil
}

// classify wraps an integrity failure in the typed taxonomy; other errors
// (mapping, protocol, context) pass through untouched.
func classify(err error, layer int, class resilience.TensorClass) error {
	if !errors.Is(err, mac.ErrIntegrity) {
		return err
	}
	return &resilience.IntegrityError{Layer: layer, Tensor: class, Err: err}
}

// recoverLoop drives one layer (or the readout epoch) through the bounded
// detect-and-recover policy: retry transient integrity failures with
// backoff; classify survivors as persistent, latch the breach, and — on the
// versioned activation/output path — promote them to freshness violations,
// the signature of replay or splice tampering that re-fetching cannot fix.
func (x *Executor) recoverLoop(ctx context.Context, attempt func(restart bool) error, stats *resilience.Stats) error {
	for try := 0; ; try++ {
		err := attempt(try > 0)
		if err == nil {
			if try > 0 {
				stats.Recovered++
			}
			return nil
		}
		if !resilience.Retryable(err) {
			return err
		}
		if try >= x.Retry.MaxRetries {
			stats.Persistent++
			stats.Breached = true
			var ie *resilience.IntegrityError
			if errors.As(err, &ie) {
				ie.Persistent = true
				if ie.Tensor == resilience.ClassActivation || ie.Tensor == resilience.ClassOutput {
					return &resilience.FreshnessError{Layer: ie.Layer, Tensor: ie.Tensor, Retries: try, Err: ie}
				}
			}
			return err
		}
		stats.Retries++
		if werr := x.Retry.Wait(ctx, try+1); werr != nil {
			return werr
		}
	}
}

func (x *Executor) hook(phase int, d *mem.DRAM) {
	if x.AfterPhase != nil {
		x.AfterPhase(phase, d)
	}
}

// load maps every layer, lays out the address space, and host-writes the
// encrypted input and weights.
func (x *Executor) load(net workload.Network, input *nn.Tensor, weights []*nn.Weights,
	sm *protect.SeculatorMemory) ([]layerState, actLayout, mac.Digest, error) {

	choices, err := sched.MapNetwork(net, x.NPU, x.DRAM)
	if err != nil {
		return nil, actLayout{}, mac.Digest{}, err
	}
	var next uint64

	// Layer-0 input region, owned by host "layer" 0 at version 1.
	first := net.Layers[0]
	inputLayout := actLayout{
		base: next, chans: first.C, rows: first.H, cols: first.W,
		bpr: tensor.CeilDiv(first.W*4, tensor.BlockBytes), ownerID: 0, vn: 1,
	}
	next += uint64(inputLayout.blocks())
	var goldenInput mac.Digest
	for c := 0; c < input.Chans; c++ {
		for y := 0; y < input.H; y++ {
			row := encodeRow(rowOf(input, c, y), inputLayout.bpr)
			for j, blk := range row {
				d := sm.HostWriteBlock(inputLayout.addr(c, y, j), 0, uint32(c), 1, uint32(y*inputLayout.bpr+j), blk)
				goldenInput = goldenInput.Xor(d)
			}
		}
	}

	states := make([]layerState, len(net.Layers))
	for i, choice := range choices {
		l := choice.Layer
		st := layerState{layer: l, choice: choice}

		// Output activation region.
		wp := dataflow.DeriveWrite(choice.Mapping)
		st.act = actLayout{
			base: 0, chans: l.K, rows: l.OutH(), cols: l.OutW(),
			bpr:     tensor.CeilDiv(l.OutW()*4, tensor.BlockBytes),
			ownerID: uint32(i + 1),
			vn:      finalVN(wp),
		}
		st.act.base = next
		next += uint64(st.act.blocks())

		// Weight region (host-written, owner tag 0x8000+i, version 1).
		if w := weights[i]; w != nil {
			ct := choice.CT
			if l.Type == workload.Depthwise {
				ct = 1
			}
			st.wl = weightLayout{
				base:        next,
				k:           l.K,
				cGroups:     choice.Mapping.AlphaC,
				sliceInts:   ct * l.R * l.S,
				sliceBlocks: tensor.CeilDiv(ct*l.R*l.S*4, tensor.BlockBytes),
				ownerID:     uint32(0x8000 + i),
			}
			next += uint64(st.wl.k * st.wl.cGroups * st.wl.sliceBlocks)
			st.goldenWeights = x.loadWeights(sm, &st, w)
		}
		states[i] = st
	}
	return states, inputLayout, goldenInput, nil
}

// loadWeights host-writes one layer's weights slice by slice.
func (x *Executor) loadWeights(sm *protect.SeculatorMemory, st *layerState, w *nn.Weights) mac.Digest {
	var golden mac.Digest
	wl := st.wl
	for k := 0; k < wl.k; k++ {
		for cg := 0; cg < wl.cGroups; cg++ {
			ints := weightSlice(st.layer, w, k, cg, wl.sliceInts)
			blocks := encodeRow(ints, wl.sliceBlocks)
			for j, blk := range blocks {
				d := sm.HostWriteBlock(wl.addr(k, cg, j), wl.ownerID, uint32(k), 1,
					uint32(cg*wl.sliceBlocks+j), blk)
				golden = golden.Xor(d)
			}
		}
	}
	return golden
}

// weightSlice extracts the (k, c-group) weight slice as a flat int32 row.
func weightSlice(l workload.Layer, w *nn.Weights, k, cg, sliceInts int) []int32 {
	out := make([]int32, 0, sliceInts)
	if l.Type == workload.Depthwise {
		for r := 0; r < l.R; r++ {
			for s := 0; s < l.S; s++ {
				out = append(out, w.At(k, 0, r, s))
			}
		}
		return out
	}
	ct := sliceInts / (l.R * l.S)
	for c := cg * ct; c < (cg+1)*ct; c++ {
		for r := 0; r < l.R; r++ {
			for s := 0; s < l.S; s++ {
				if c < l.C {
					out = append(out, w.At(k, c, r, s))
				} else {
					out = append(out, 0) // padded channel group
				}
			}
		}
	}
	return out
}

func finalVN(write interface{ MaxVN() int }) int {
	if v := write.MaxVN(); v > 0 {
		return v
	}
	return 1
}

func rowOf(t *nn.Tensor, c, y int) []int32 {
	return t.Data[(c*t.H+y)*t.W : (c*t.H+y)*t.W+t.W]
}

// encodeRow packs int32 values into zero-padded 64-byte blocks.
func encodeRow(vals []int32, nblocks int) [][]byte {
	out := make([][]byte, nblocks)
	for j := range out {
		blk := make([]byte, tensor.BlockBytes)
		for i := 0; i < intsPerBlock; i++ {
			idx := j*intsPerBlock + i
			if idx < len(vals) {
				binary.BigEndian.PutUint32(blk[i*4:], uint32(vals[idx]))
			}
		}
		out[j] = blk
	}
	return out
}

// decodeBlock unpacks a 64-byte block into up to n int32 values appended to
// dst starting at offset off (clipped to len(dst)).
func decodeBlock(dst []int32, off int, blk []byte) {
	for i := 0; i < intsPerBlock; i++ {
		idx := off + i
		if idx >= len(dst) {
			return
		}
		dst[idx] = int32(binary.BigEndian.Uint32(blk[i*4:]))
	}
}
