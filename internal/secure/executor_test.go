package secure

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"seculator/internal/mac"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/tensor"
	"seculator/internal/workload"
)

// miniNet exercises every layer type: conv (same pad), pool (valid),
// depthwise, pointwise, and a flattening FC.
func miniNet() workload.Network {
	return workload.Network{
		Name: "mini",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 12, W: 12, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "p1", Type: workload.Pool, C: 8, H: 12, W: 12, K: 8, R: 2, S: 2, Stride: 2, Valid: true},
			{Name: "dw", Type: workload.Depthwise, C: 8, H: 6, W: 6, K: 8, R: 3, S: 3, Stride: 1},
			{Name: "pw", Type: workload.Pointwise, C: 8, H: 6, W: 6, K: 16, R: 1, S: 1, Stride: 1},
			{Name: "fc", Type: workload.FC, C: 16 * 6 * 6, H: 1, W: 1, K: 5, R: 1, S: 1, Stride: 1},
		},
	}
}

// The headline functional test: the encrypted, MAC-verified, tile-by-tile
// execution must produce bit-identical results to the direct reference.
func TestSecureExecutionMatchesGolden(t *testing.T) {
	net := miniNet()
	in, ws := nn.RandomModel(net, 42)

	golden, err := nn.ForwardNetwork(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewExecutor().Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("secure execution diverged from the golden reference")
	}
	if res.Layers != len(net.Layers) || res.Blocks == 0 {
		t.Fatalf("result metadata: %+v", res)
	}
}

// Strided same-pad convolutions and valid convolutions must round-trip too.
func TestSecureExecutionStridesAndValid(t *testing.T) {
	net := workload.Network{
		Name: "strided",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 2, H: 11, W: 11, K: 4, R: 5, S: 5, Stride: 2, Valid: true},
			{Name: "c2", Type: workload.Conv, C: 4, H: 4, W: 4, K: 6, R: 3, S: 3, Stride: 2},
		},
	}
	in, ws := nn.RandomModel(net, 7)
	golden, err := nn.ForwardNetwork(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewExecutor().Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("strided/valid execution diverged from reference")
	}
}

// Multiple seeds: the equivalence is not an artifact of one weight draw.
func TestSecureExecutionSeeds(t *testing.T) {
	net := workload.Network{
		Name: "two",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
		},
	}
	for seed := int64(1); seed <= 5; seed++ {
		in, ws := nn.RandomModel(net, seed)
		golden, err := nn.ForwardNetwork(net, in, ws)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewExecutor().Run(context.Background(), net, in, ws)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Output.Equal(golden) {
			t.Fatalf("seed %d diverged", seed)
		}
	}
}

func runWithHook(t *testing.T, hook Hook) error {
	t.Helper()
	net := miniNet()
	in, ws := nn.RandomModel(net, 42)
	x := NewExecutor()
	x.AfterPhase = hook
	_, err := x.Run(context.Background(), net, in, ws)
	return err
}

// Tampering with an activation block between layers must break Equation 1.
func TestTamperBetweenLayersDetected(t *testing.T) {
	err := runWithHook(t, func(phase int, d *mem.DRAM) {
		if phase == 1 { // after the pool layer wrote its outputs
			// Corrupt the highest allocated line: the most recently
			// written region is the pool layer's output, which the
			// depthwise layer is about to consume.
			var last uint64
			found := false
			for addr := uint64(0); addr < 100000; addr++ {
				if d.Peek(addr) != nil {
					last, found = addr, true
				}
			}
			if !found {
				t.Fatal("no DRAM line to tamper")
			}
			d.Tamper(last, 5, 0x80)
		}
	})
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("tamper not detected: %v", err)
	}
}

// Tampering the model input after load must fail the golden input check.
func TestTamperInputDetected(t *testing.T) {
	err := runWithHook(t, func(phase int, d *mem.DRAM) {
		if phase == -1 {
			d.Tamper(0, 0, 0x01) // input region starts at address 0
		}
	})
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("input tamper not detected: %v", err)
	}
}

// Replaying a stale input block (captured before a later overwrite doesn't
// apply here, so emulate via direct corruption of high addresses where
// weights live) must fail the weight golden check.
func TestTamperWeightsDetected(t *testing.T) {
	err := runWithHook(t, func(phase int, d *mem.DRAM) {
		if phase != -1 {
			return
		}
		// Weights live in the highest allocated lines; corrupt the last one.
		var last uint64
		for addr := uint64(0); addr < 100000; addr++ {
			if d.Peek(addr) != nil {
				last = addr
			}
		}
		d.Tamper(last, 3, 0xFF)
	})
	if !errors.Is(err, mac.ErrIntegrity) {
		t.Fatalf("weight tamper not detected: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	x := NewExecutor()
	if _, err := x.Run(context.Background(), workload.Network{Name: "empty"}, nil, nil); err == nil {
		t.Fatal("invalid network accepted")
	}
	net := miniNet()
	in, _ := nn.RandomModel(net, 1)
	if _, err := x.Run(context.Background(), net, in, nil); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []int32{1, -2, 3, -4, 5, 1 << 30, -(1 << 30)}
	var blk [tensor.BlockBytes]byte
	encodeBlockInto(blk[:], vals, 0)
	got := make([]int32, len(vals))
	decodeBlock(got, 0, blk[:])
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("round trip at %d: %d != %d", i, got[i], vals[i])
		}
	}
	// Multi-block rows pad with zeros, and encodeBlockInto scrubs stale
	// bytes left in the destination by a previous block.
	long := make([]int32, 20)
	long[19] = 7
	got = make([]int32, 20)
	encodeBlockInto(blk[:], long, 0)
	decodeBlock(got, 0, blk[:])
	encodeBlockInto(blk[:], long, 1)
	decodeBlock(got, 16, blk[:])
	if got[19] != 7 || got[15] != 0 || got[0] != 0 {
		t.Fatal("multi-block round trip failed")
	}
}

// Property: for randomly shaped small networks and random models, the
// secure execution always matches the reference bit for bit and always
// verifies. This fuzzes tile geometry (strides, kernels, paddings, channel
// counts) against the executor's block layout and MAC accounting.
func TestSecureExecutionRandomNetsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz in -short mode")
	}
	f := func(seed int64, c0, k1, k2, r1, stride, hsel, pad uint8) bool {
		h := []int{8, 11, 12, 16}[int(hsel)%4]
		l1 := workload.Layer{
			Name: "c1", Type: workload.Conv,
			C: int(c0%3) + 1, H: h, W: h,
			K: int(k1%6) + 1, R: int(r1%2)*2 + 1, S: int(r1%2)*2 + 1,
			Stride: int(stride%2) + 1, Valid: pad%2 == 0,
		}
		if l1.Valid && (l1.H < l1.R) {
			return true // degenerate
		}
		l2 := workload.Layer{
			Name: "c2", Type: workload.Conv,
			C: l1.K, H: l1.OutH(), W: l1.OutW(),
			K: int(k2%6) + 1, R: 3, S: 3, Stride: 1,
		}
		if l2.H < 1 || l2.W < 1 {
			return true
		}
		net := workload.Network{Name: "fuzz", Layers: []workload.Layer{l1, l2}}
		if net.Validate() != nil {
			return true
		}
		in, ws := nn.RandomModel(net, seed)
		golden, err := nn.ForwardNetwork(net, in, ws)
		if err != nil {
			return false
		}
		res, err := NewExecutor().Run(context.Background(), net, in, ws)
		if err != nil {
			t.Logf("seed=%d l1=%+v: %v", seed, l1, err)
			return false
		}
		return res.Output.Equal(golden)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// GAN generator end to end: the deconvolution (upsample + conv) chain must
// round-trip through the secure path bit-exactly — the paper's Section 5.2
// claim that its machinery covers deconvolution.
func TestSecureExecutionGANGenerator(t *testing.T) {
	net, err := workload.GANGenerator(workload.TinyGAN())
	if err != nil {
		t.Fatal(err)
	}
	in, ws := nn.RandomModel(net, 17)
	golden, err := nn.ForwardNetwork(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewExecutor().Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("GAN generator execution diverged from reference")
	}
	if res.Output.Chans != 3 || res.Output.H != 16 {
		t.Fatalf("unexpected generator output shape %dx%dx%d", res.Output.Chans, res.Output.H, res.Output.W)
	}
}

// The image pre-processing pipeline (Styles 1-3) round-trips functionally.
func TestSecureExecutionPreprocPipeline(t *testing.T) {
	net, err := workload.PreprocPipeline(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	in, ws := nn.RandomModel(net, 23)
	golden, err := nn.ForwardNetwork(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewExecutor().Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("preprocessing pipeline diverged from reference")
	}
}

// A tiny transformer's matmul chain (Table 4's class) round-trips too.
func TestSecureExecutionTransformer(t *testing.T) {
	net, err := workload.Transformer(workload.TransformerConfig{
		Name: "micro", Layers: 1, SeqLen: 4, Model: 8, FFN: 16, AttnMats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in, ws := nn.RandomModel(net, 31)
	golden, err := nn.ForwardNetwork(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewExecutor().Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("transformer matmul chain diverged from reference")
	}
}

// The headline functional validation: every Table 1 benchmark topology —
// all layers with their types, kernels, strides and padding intact, shrunk
// 16x for tractability — executes through the encrypted path bit-exactly.
func TestSecureExecutionMiniBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("mini benchmarks in -short mode")
	}
	for _, full := range workload.All() {
		net, err := workload.Shrink(full, 16)
		if err != nil {
			t.Fatalf("%s: %v", full.Name, err)
		}
		in, ws := nn.RandomModel(net, 2026)
		golden, err := nn.ForwardNetwork(net, in, ws)
		if err != nil {
			t.Fatalf("%s: %v", net.Name, err)
		}
		res, err := NewExecutor().Run(context.Background(), net, in, ws)
		if err != nil {
			t.Fatalf("%s: %v", net.Name, err)
		}
		if !res.Output.Equal(golden) {
			t.Fatalf("%s diverged from reference", net.Name)
		}
		if res.Layers != len(net.Layers) {
			t.Fatalf("%s: executed %d layers, want %d", net.Name, res.Layers, len(net.Layers))
		}
	}
}
