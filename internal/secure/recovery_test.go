// Recovery acceptance tests: the executor's layer-level detect-and-recover
// loop against injected faults. External test package so it can use the
// fault injectors (package fault imports secure for its campaign runner).
package secure_test

import (
	"context"
	"errors"
	"testing"

	"seculator/internal/fault"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/resilience"
	"seculator/internal/secure"
	"seculator/internal/workload"
)

func twoConvNet() workload.Network {
	return workload.Network{
		Name: "recovery",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Stride: 1},
		},
	}
}

func modelAndGolden(t *testing.T, net workload.Network, seed int64) (*nn.Tensor, []*nn.Weights, *nn.Tensor) {
	t.Helper()
	in, ws := nn.RandomModel(net, seed)
	golden, err := nn.ForwardNetwork(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	return in, ws, golden
}

// armedFlip flips a single bit on the first read observed after Arm() —
// the deterministic "one transient upset mid-layer" fault.
type armedFlip struct {
	armed bool
	fired bool
}

func (f *armedFlip) Arm() { f.armed = true }

func (f *armedFlip) OnRead(_ uint64, data []byte) {
	if !f.armed || f.fired {
		return
	}
	data[0] ^= 0x01
	f.fired = true
}

func (f *armedFlip) OnWrite(uint64, []byte) {}

// TestSingleBitFlipRecovered is the headline acceptance test: a single bit
// flip injected mid-network (on the first DRAM read after layer 0
// completes — a first-read of layer 0's outputs or a layer-1 weight fetch)
// is caught by the XOR-MAC check, the layer is re-executed, and the final
// output is bit-identical to the unprotected reference.
func TestSingleBitFlipRecovered(t *testing.T) {
	net := twoConvNet()
	in, ws, golden := modelAndGolden(t, net, 3)

	inj := &armedFlip{}
	x := secure.NewExecutor()
	x.Injector = inj
	x.AfterPhase = func(phase int, _ *mem.DRAM) {
		if phase == 0 {
			inj.Arm()
		}
	}
	res, err := x.Run(context.Background(), net, in, ws)
	if err != nil {
		t.Fatalf("recoverable transient aborted the run: %v", err)
	}
	if !inj.fired {
		t.Fatal("injector never fired; test exercised nothing")
	}
	if res.Recovery.Recovered != 1 || res.Recovery.Retries < 1 {
		t.Fatalf("recovery stats %+v, want exactly one recovered layer", res.Recovery)
	}
	if res.Recovery.Breached || res.Recovery.Persistent != 0 {
		t.Fatalf("transient flip latched a breach: %+v", res.Recovery)
	}
	if !res.Output.Equal(golden) {
		t.Fatal("recovered output differs from the reference")
	}
}

// spliceServe persistently serves the ciphertext of the first activation
// line written after Arm() on reads of the second — a cross-address splice
// on the pins. Re-fetching re-observes the same forged data, so recovery
// must classify it persistent and abort with a freshness violation.
type spliceServe struct {
	armed   bool
	src     []byte
	srcAddr uint64
	dstAddr uint64
	haveDst bool
	served  int
}

func (f *spliceServe) Arm() { f.armed = true }

func (f *spliceServe) OnWrite(addr uint64, data []byte) {
	if !f.armed {
		return
	}
	if f.src == nil {
		f.src = append([]byte(nil), data...)
		f.srcAddr = addr
		return
	}
	if !f.haveDst && addr != f.srcAddr {
		f.dstAddr = addr
		f.haveDst = true
	}
}

func (f *spliceServe) OnRead(addr uint64, data []byte) {
	if f.haveDst && addr == f.dstAddr {
		copy(data, f.src)
		f.served++
	}
}

// TestPersistentSpliceAbortsWithFreshnessError: a persistently spliced
// activation line defeats every retry, so the run must abort with a typed
// FreshnessError, the breach latched and the violation marked persistent.
func TestPersistentSpliceAbortsWithFreshnessError(t *testing.T) {
	net := twoConvNet()
	in, ws, _ := modelAndGolden(t, net, 5)

	inj := &spliceServe{}
	x := secure.NewExecutor()
	x.Injector = inj
	x.AfterPhase = func(phase int, _ *mem.DRAM) {
		if phase == -1 {
			inj.Arm() // capture layer-0 activation writes, not host loads
		}
	}
	res, err := x.Run(context.Background(), net, in, ws)
	if err == nil {
		t.Fatal("persistent splice completed without error")
	}
	if inj.served == 0 {
		t.Fatal("splice never served forged data; test exercised nothing")
	}
	var fe *resilience.FreshnessError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want FreshnessError", err)
	}
	if fe.Tensor != resilience.ClassActivation {
		t.Fatalf("freshness violation on %v, want the activation path", fe.Tensor)
	}
	var ie *resilience.IntegrityError
	if !errors.As(err, &ie) || !ie.Persistent {
		t.Fatalf("underlying integrity error not marked persistent: %v", err)
	}
	if !res.Recovery.Breached || res.Recovery.Persistent != 1 {
		t.Fatalf("breach not latched: %+v", res.Recovery)
	}
	if res.Recovery.Retries != x.Retry.MaxRetries {
		t.Fatalf("%d retries before aborting, want the policy's %d",
			res.Recovery.Retries, x.Retry.MaxRetries)
	}
	if resilience.Retryable(err) {
		t.Fatal("terminal freshness error reported as retryable")
	}
}

// TestDisabledPolicyAbortsFirstDetection: the zero policy turns every
// detection terminal — no retries are spent before aborting.
func TestDisabledPolicyAbortsFirstDetection(t *testing.T) {
	net := twoConvNet()
	in, ws, _ := modelAndGolden(t, net, 5)

	inj := &spliceServe{}
	x := secure.NewExecutor()
	x.Injector = inj
	x.Retry = resilience.Disabled()
	x.AfterPhase = func(phase int, _ *mem.DRAM) {
		if phase == -1 {
			inj.Arm()
		}
	}
	res, err := x.Run(context.Background(), net, in, ws)
	if err == nil {
		t.Fatal("detection with recovery disabled completed without error")
	}
	if res.Recovery.Retries != 0 {
		t.Fatalf("disabled policy spent %d retries", res.Recovery.Retries)
	}
	if !res.Recovery.Breached {
		t.Fatal("breach not latched")
	}
}

// TestBitFlipStormNoSilentCorruption: seeded random bit-flip storms across
// several seeds; whatever the injector hits, a run that completes must be
// bit-identical to the reference — detection has no false negatives.
func TestBitFlipStormNoSilentCorruption(t *testing.T) {
	net := twoConvNet()
	in, ws, golden := modelAndGolden(t, net, 9)

	outcomes := 0
	for seed := int64(1); seed <= 6; seed++ {
		inj := fault.NewBitFlip(0.002, seed)
		x := secure.NewExecutor()
		x.Injector = inj
		res, err := x.Run(context.Background(), net, in, ws)
		if err != nil {
			var fe *resilience.FreshnessError
			var ie *resilience.IntegrityError
			if !errors.As(err, &fe) && !errors.As(err, &ie) {
				t.Fatalf("seed %d: abort outside the taxonomy: %v", seed, err)
			}
			outcomes++
			continue
		}
		if !res.Output.Equal(golden) {
			t.Fatalf("seed %d: %d flips injected, run completed with corrupted output",
				seed, inj.Injected())
		}
		if inj.Injected() > 0 {
			outcomes++
		}
	}
	if outcomes == 0 {
		t.Fatal("no storm seed delivered a fault; raise the rate")
	}
}

// TestRunNoPanicEscapes: a nil input tensor would panic inside the loader;
// the public API must convert it into a typed InternalError instead.
func TestRunNoPanicEscapes(t *testing.T) {
	net := twoConvNet()
	_, ws := nn.RandomModel(net, 1)
	_, err := secure.NewExecutor().Run(context.Background(), net, nil, ws)
	if err == nil {
		t.Fatal("nil input accepted")
	}
	var ie *resilience.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want InternalError from the panic backstop", err)
	}
}

func TestRunCancelled(t *testing.T) {
	net := twoConvNet()
	in, ws := nn.RandomModel(net, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := secure.NewExecutor().Run(ctx, net, in, ws)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
