// Package sweep runs sensitivity studies over the system parameters — the
// robustness analysis an architecture evaluation owes its headline claim.
// Each sweep varies one knob (DRAM bandwidth, global-buffer capacity, PE
// array extent, MAC-cache size) and re-measures the design comparison, so
// one can check where, if anywhere, Seculator's advantage inverts.
package sweep

import (
	"context"
	"fmt"

	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/workload"
)

// Point is one sweep sample: the parameter value and each design's
// normalized performance at it.
type Point struct {
	Param       float64
	Performance map[protect.Design]float64
}

// Result is a full sweep.
type Result struct {
	Name    string
	Unit    string
	Designs []protect.Design
	Points  []Point
}

// designSet is the comparison the sweeps run.
var designSet = []protect.Design{
	protect.Baseline, protect.Secure, protect.TNPU, protect.GuardNN, protect.Seculator,
}

func runPoint(ctx context.Context, n workload.Network, cfg runner.Config, param float64) (Point, error) {
	rs, err := runner.RunAll(ctx, n, designSet, cfg)
	if err != nil {
		return Point{}, err
	}
	p := Point{Param: param, Performance: map[protect.Design]float64{}}
	for _, r := range rs {
		p.Performance[r.Design] = r.Performance(rs[0])
	}
	return p, nil
}

// Bandwidth sweeps the DRAM bandwidth (blocks per NPU cycle). ctx cancels
// between simulation points.
func Bandwidth(ctx context.Context, n workload.Network, base runner.Config, values []float64) (Result, error) {
	res := Result{Name: "DRAM bandwidth", Unit: "blocks/cycle", Designs: designSet}
	for _, v := range values {
		if v <= 0 {
			return Result{}, fmt.Errorf("sweep: bandwidth %g must be positive", v)
		}
		cfg := base
		cfg.DRAM.BlocksPerCycle = v
		p, err := runPoint(ctx, n, cfg, v)
		if err != nil {
			return Result{}, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// GlobalBuffer sweeps the on-chip buffer capacity in KB.
func GlobalBuffer(ctx context.Context, n workload.Network, base runner.Config, kbs []int) (Result, error) {
	res := Result{Name: "global buffer", Unit: "KB", Designs: designSet}
	for _, kb := range kbs {
		if kb <= 0 {
			return Result{}, fmt.Errorf("sweep: GB size %d must be positive", kb)
		}
		cfg := base
		cfg.NPU.GlobalBufferBytes = kb * 1024
		p, err := runPoint(ctx, n, cfg, float64(kb))
		if err != nil {
			return Result{}, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// PEArray sweeps the (square) systolic array extent.
func PEArray(ctx context.Context, n workload.Network, base runner.Config, dims []int) (Result, error) {
	res := Result{Name: "PE array", Unit: "rows=cols", Designs: designSet}
	for _, d := range dims {
		if d <= 0 {
			return Result{}, fmt.Errorf("sweep: PE dim %d must be positive", d)
		}
		cfg := base
		cfg.NPU.Rows, cfg.NPU.Cols = d, d
		p, err := runPoint(ctx, n, cfg, float64(d))
		if err != nil {
			return Result{}, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// MACCache sweeps the MAC-cache capacity of the per-block designs in KB.
func MACCache(ctx context.Context, n workload.Network, base runner.Config, kbs []int) (Result, error) {
	res := Result{Name: "MAC cache", Unit: "KB", Designs: designSet}
	for _, kb := range kbs {
		if kb <= 0 {
			return Result{}, fmt.Errorf("sweep: MAC cache %d must be positive", kb)
		}
		cfg := base
		cfg.Protect.MACCacheBytes = kb * 1024
		p, err := runPoint(ctx, n, cfg, float64(kb))
		if err != nil {
			return Result{}, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AdvantageRange returns the min and max of Seculator's speedup over TNPU
// across the sweep — the robustness headline.
func (r Result) AdvantageRange() (lo, hi float64) {
	for i, p := range r.Points {
		adv := p.Performance[protect.Seculator]/p.Performance[protect.TNPU] - 1
		if i == 0 || adv < lo {
			lo = adv
		}
		if i == 0 || adv > hi {
			hi = adv
		}
	}
	return lo, hi
}
