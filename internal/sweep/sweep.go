// Package sweep runs sensitivity studies over the system parameters — the
// robustness analysis an architecture evaluation owes its headline claim.
// Each sweep varies one knob (DRAM bandwidth, global-buffer capacity, PE
// array extent, MAC-cache size) and re-measures the design comparison, so
// one can check where, if anywhere, Seculator's advantage inverts.
package sweep

import (
	"context"
	"fmt"

	"seculator/internal/parallel"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/workload"
)

// Point is one sweep sample: the parameter value and each design's
// normalized performance at it.
type Point struct {
	Param       float64
	Performance map[protect.Design]float64
}

// Result is a full sweep.
type Result struct {
	Name    string
	Unit    string
	Designs []protect.Design
	Points  []Point
}

// designSet is the comparison the sweeps run.
var designSet = []protect.Design{
	protect.Baseline, protect.Secure, protect.TNPU, protect.GuardNN, protect.Seculator,
}

func runPoint(ctx context.Context, n workload.Network, cfg runner.Config, param float64) (Point, error) {
	rs, err := runner.RunAll(ctx, n, designSet, cfg)
	if err != nil {
		return Point{}, err
	}
	// Normalize against the Baseline result looked up by design, never by
	// slice position: reordering designSet (or any future change in how
	// results land) must not silently change the denominator.
	var base *runner.Result
	for i := range rs {
		if rs[i].Design == protect.Baseline {
			base = &rs[i]
			break
		}
	}
	if base == nil {
		return Point{}, fmt.Errorf("sweep: design set %v has no Baseline to normalize against", designSet)
	}
	p := Point{Param: param, Performance: map[protect.Design]float64{}}
	for _, r := range rs {
		p.Performance[r.Design] = r.Performance(*base)
	}
	return p, nil
}

// sweepPoints runs one simulation point per value concurrently on the
// worker pool; points land in values order regardless of completion order.
func sweepPoints[V any](ctx context.Context, n workload.Network, values []V,
	point func(ctx context.Context, v V) (Point, error)) ([]Point, error) {
	return parallel.Map(ctx, 0, values, func(ctx context.Context, v V) (Point, error) {
		return point(ctx, v)
	})
}

// Bandwidth sweeps the DRAM bandwidth (blocks per NPU cycle). Points run
// concurrently; ctx cancels the in-flight simulations.
func Bandwidth(ctx context.Context, n workload.Network, base runner.Config, values []float64) (Result, error) {
	for _, v := range values {
		if v <= 0 {
			return Result{}, fmt.Errorf("sweep: bandwidth %g must be positive", v)
		}
	}
	points, err := sweepPoints(ctx, n, values, func(ctx context.Context, v float64) (Point, error) {
		cfg := base
		cfg.DRAM.BlocksPerCycle = v
		return runPoint(ctx, n, cfg, v)
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "DRAM bandwidth", Unit: "blocks/cycle", Designs: designSet, Points: points}, nil
}

// GlobalBuffer sweeps the on-chip buffer capacity in KB.
func GlobalBuffer(ctx context.Context, n workload.Network, base runner.Config, kbs []int) (Result, error) {
	for _, kb := range kbs {
		if kb <= 0 {
			return Result{}, fmt.Errorf("sweep: GB size %d must be positive", kb)
		}
	}
	points, err := sweepPoints(ctx, n, kbs, func(ctx context.Context, kb int) (Point, error) {
		cfg := base
		cfg.NPU.GlobalBufferBytes = kb * 1024
		return runPoint(ctx, n, cfg, float64(kb))
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "global buffer", Unit: "KB", Designs: designSet, Points: points}, nil
}

// PEArray sweeps the (square) systolic array extent.
func PEArray(ctx context.Context, n workload.Network, base runner.Config, dims []int) (Result, error) {
	for _, d := range dims {
		if d <= 0 {
			return Result{}, fmt.Errorf("sweep: PE dim %d must be positive", d)
		}
	}
	points, err := sweepPoints(ctx, n, dims, func(ctx context.Context, d int) (Point, error) {
		cfg := base
		cfg.NPU.Rows, cfg.NPU.Cols = d, d
		return runPoint(ctx, n, cfg, float64(d))
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "PE array", Unit: "rows=cols", Designs: designSet, Points: points}, nil
}

// MACCache sweeps the MAC-cache capacity of the per-block designs in KB.
func MACCache(ctx context.Context, n workload.Network, base runner.Config, kbs []int) (Result, error) {
	for _, kb := range kbs {
		if kb <= 0 {
			return Result{}, fmt.Errorf("sweep: MAC cache %d must be positive", kb)
		}
	}
	points, err := sweepPoints(ctx, n, kbs, func(ctx context.Context, kb int) (Point, error) {
		cfg := base
		cfg.Protect.MACCacheBytes = kb * 1024
		return runPoint(ctx, n, cfg, float64(kb))
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "MAC cache", Unit: "KB", Designs: designSet, Points: points}, nil
}

// AdvantageRange returns the min and max of Seculator's speedup over TNPU
// across the sweep — the robustness headline.
func (r Result) AdvantageRange() (lo, hi float64) {
	for i, p := range r.Points {
		adv := p.Performance[protect.Seculator]/p.Performance[protect.TNPU] - 1
		if i == 0 || adv < lo {
			lo = adv
		}
		if i == 0 || adv > hi {
			hi = adv
		}
	}
	return lo, hi
}
