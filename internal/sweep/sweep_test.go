package sweep

import (
	"context"
	"testing"

	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/workload"
)

func net() workload.Network {
	return workload.Network{
		Name: "s",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 32, W: 32, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 16, H: 16, W: 16, K: 32, R: 3, S: 3, Stride: 1, Valid: false},
		},
	}
}

func fixNet() workload.Network {
	n := net()
	n.Layers[1].H = n.Layers[0].OutH()
	n.Layers[1].W = n.Layers[0].OutW()
	return n
}

func TestBandwidthSweep(t *testing.T) {
	res, err := Bandwidth(context.Background(), fixNet(), runner.DefaultConfig(), []float64{0.1, 0.22, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Seculator must beat TNPU at every bandwidth.
	for _, p := range res.Points {
		if p.Performance[protect.Seculator] <= p.Performance[protect.TNPU] {
			t.Fatalf("advantage inverted at bandwidth %g", p.Param)
		}
	}
	lo, hi := res.AdvantageRange()
	if lo < 0 || hi < lo {
		t.Fatalf("advantage range (%.3f, %.3f)", lo, hi)
	}
	if _, err := Bandwidth(context.Background(), fixNet(), runner.DefaultConfig(), []float64{0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestGlobalBufferSweep(t *testing.T) {
	res, err := GlobalBuffer(context.Background(), fixNet(), runner.DefaultConfig(), []int{120, 240, 480})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Performance[protect.Baseline] != 1.0 {
			t.Fatalf("baseline not normalized at GB %g", p.Param)
		}
		if p.Performance[protect.Seculator] < p.Performance[protect.Secure] {
			t.Fatalf("advantage inverted at GB %g", p.Param)
		}
	}
	if _, err := GlobalBuffer(context.Background(), fixNet(), runner.DefaultConfig(), []int{0}); err == nil {
		t.Fatal("zero GB accepted")
	}
}

func TestPEArraySweep(t *testing.T) {
	res, err := PEArray(context.Background(), fixNet(), runner.DefaultConfig(), []int{16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatal("missing points")
	}
	if _, err := PEArray(context.Background(), fixNet(), runner.DefaultConfig(), []int{-1}); err == nil {
		t.Fatal("negative dim accepted")
	}
}

func TestMACCacheSweep(t *testing.T) {
	res, err := MACCache(context.Background(), fixNet(), runner.DefaultConfig(), []int{2, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	// Growing the MAC cache must not change Seculator at all and must not
	// let TNPU catch up (streaming defeats caching).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Performance[protect.TNPU] >= first.Performance[protect.Seculator] {
		t.Fatalf("64 KB MAC cache (%.3f) caught Seculator (%.3f)",
			last.Performance[protect.TNPU], first.Performance[protect.Seculator])
	}
	if _, err := MACCache(context.Background(), fixNet(), runner.DefaultConfig(), []int{0}); err == nil {
		t.Fatal("zero cache accepted")
	}
}
