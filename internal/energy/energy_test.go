package energy

import (
	"context"
	"testing"

	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/workload"
)

func results(t *testing.T) (workload.Network, []runner.Result) {
	t.Helper()
	n := workload.Network{
		Name: "e",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 32, W: 32, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 16, H: 32, W: 32, K: 16, R: 3, S: 3, Stride: 1},
		},
	}
	rs, err := runner.RunAll(context.Background(), n, []protect.Design{
		protect.Baseline, protect.TNPU, protect.GuardNN, protect.Seculator,
	}, runner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n, rs
}

func TestEstimateBreakdown(t *testing.T) {
	n, rs := results(t)
	m := DefaultModel()
	b := Estimate(m, n, rs[0], 0)
	if b.DRAMnJ <= 0 || b.MACnJ <= 0 {
		t.Fatalf("baseline breakdown: %+v", b)
	}
	if b.CryptonJ != 0 {
		t.Fatal("baseline must pay no crypto energy")
	}
	sec := Estimate(m, n, rs[3], 0)
	if sec.CryptonJ <= 0 {
		t.Fatal("Seculator must pay crypto energy")
	}
	if sec.Total() <= 0 || sec.MilliJoules() != sec.Total()/1e6 {
		t.Fatal("totals inconsistent")
	}
	h := Estimate(m, n, rs[2], 100)
	if h.HostnJ != 100*m.HostMsgNJ {
		t.Fatalf("host energy = %f", h.HostnJ)
	}
}

// The energy story mirrors the traffic story: metadata-heavy designs burn
// more DRAM energy; Seculator's overhead over the baseline is only the
// (tiny) crypto term.
func TestEnergyOrdering(t *testing.T) {
	n, rs := results(t)
	bs, over, err := Compare(n, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 4 || len(over) != 4 {
		t.Fatalf("compare sizes: %d %d", len(bs), len(over))
	}
	base, tnpu, gnn, sec := bs[0], bs[1], bs[2], bs[3]
	if !(gnn.Total() > tnpu.Total() && tnpu.Total() > sec.Total()) {
		t.Fatalf("energy ordering broken: gnn=%.0f tnpu=%.0f sec=%.0f", gnn.Total(), tnpu.Total(), sec.Total())
	}
	if sec.DRAMnJ != base.DRAMnJ {
		t.Fatal("Seculator must move exactly the baseline's blocks")
	}
	// Seculator's total overhead is under 1%.
	if over[3] > 1.01 {
		t.Fatalf("Seculator energy overhead = %.3fx", over[3])
	}
	// GuardNN's is substantial (~traffic ratio).
	if over[2] < 1.2 {
		t.Fatalf("GuardNN energy overhead = %.3fx, expected >1.2x", over[2])
	}
}

func TestCompareEmpty(t *testing.T) {
	if _, _, err := Compare(workload.Network{}, nil); err == nil {
		t.Fatal("empty compare accepted")
	}
}
