// Package energy estimates the energy cost of an inference under each
// protection design — an extension the paper's power numbers (Table 6)
// invite: since DRAM accesses dominate accelerator energy, a design's
// metadata traffic translates directly into an energy overhead, and
// Seculator's zero-metadata property saves energy in the same proportion
// as it saves bandwidth.
//
// The model combines three terms:
//
//	DRAM    blocks moved x energy per 64-byte access
//	compute MACs x energy per MAC
//	crypto  blocks processed x AES/SHA energy (derived from Table 6's
//	        power at the 2.75 GHz clock)
package energy

import (
	"fmt"

	"seculator/internal/runner"
	"seculator/internal/workload"
)

// Model holds the per-operation energy constants.
type Model struct {
	DRAMBlockNJ float64 // energy per 64-byte DRAM access (activate+IO), nJ
	MACpJ       float64 // energy per 8-bit-class MAC at 8 nm, pJ
	AESBlockPJ  float64 // AES-CTR energy per 64-byte block, pJ
	SHABlockPJ  float64 // SHA-256 energy per 64-byte block, pJ
	HostMsgNJ   float64 // secure-channel message energy (GuardNN VN fetches), nJ
	FreqHz      float64 // clock used to derive crypto energies
}

// DefaultModel returns constants from the literature and Table 6:
// ~10 nJ per DRAM block (≈20 pJ/bit DDR4), 0.5 pJ/MAC at the scaled node,
// and crypto energies from Table 6's power draws at 2.75 GHz assuming one
// block per cycle when streaming (640 µW / 2.75 GHz ≈ 0.23 pJ + lane
// inefficiency).
func DefaultModel() Model {
	return Model{
		DRAMBlockNJ: 10.0,
		MACpJ:       0.5,
		AESBlockPJ:  0.93, // 4 lanes x 640 uW / 2.75 GHz
		SHABlockPJ:  0.6,  // iterative core over ~40 cycles/block
		HostMsgNJ:   50,   // PCIe/secure-channel message
		FreqHz:      2.75e9,
	}
}

// Breakdown is the per-inference energy estimate in nanojoules.
type Breakdown struct {
	Design   string
	DRAMnJ   float64
	MACnJ    float64
	CryptonJ float64
	HostnJ   float64
}

// Total returns the summed energy in nJ.
func (b Breakdown) Total() float64 { return b.DRAMnJ + b.MACnJ + b.CryptonJ + b.HostnJ }

// MilliJoules returns the total in mJ.
func (b Breakdown) MilliJoules() float64 { return b.Total() / 1e6 }

// Estimate computes the energy of one simulated inference: the network
// supplies the MAC count, the result the traffic (data + metadata blocks).
// Crypto runs over every block the design moves except on the Baseline;
// GuardNN additionally pays a host message per tile-read round trip, which
// the timing model has already folded into latency, so here it is
// approximated by its share of extra latency events (one per HostVNRoundTrip).
func Estimate(m Model, n workload.Network, r runner.Result, hostMessages uint64) Breakdown {
	b := Breakdown{Design: r.Design.String()}
	totalBlocks := float64(r.Traffic.Total())
	b.DRAMnJ = totalBlocks * m.DRAMBlockNJ
	b.MACnJ = float64(n.MACs()) * m.MACpJ / 1e3

	if r.Design.String() != "Baseline" {
		b.CryptonJ = totalBlocks * (m.AESBlockPJ + m.SHABlockPJ) / 1e3
	}
	b.HostnJ = float64(hostMessages) * m.HostMsgNJ
	return b
}

// Compare runs the network across the designs and returns per-design
// breakdowns plus the overhead of each relative to the Baseline.
func Compare(n workload.Network, designs []runner.Result) ([]Breakdown, []float64, error) {
	if len(designs) == 0 {
		return nil, nil, fmt.Errorf("energy: no results to compare")
	}
	m := DefaultModel()
	out := make([]Breakdown, len(designs))
	for i, r := range designs {
		out[i] = Estimate(m, n, r, 0)
	}
	base := out[0].Total()
	over := make([]float64, len(designs))
	for i := range out {
		if base > 0 {
			over[i] = out[i].Total() / base
		}
	}
	return out, over, nil
}
