// Package serve is the secure inference serving layer: a multi-tenant host
// daemon that brokers secure sessions to the simulated NPU and schedules
// inference requests onto it, reproducing the deployment shape the paper's
// host/NPU split implies (Section 6.1's authenticated command channel
// behind a host service, as TNPU and GuardNN are evaluated).
//
// The HTTP/JSON surface:
//
//	POST /v1/sessions                   issue a secure session (key stays server-side)
//	DELETE /v1/sessions/{id}            close a session
//	GET  /v1/sessions/{id}/snapshot     export a sealed session snapshot
//	POST /v1/sessions/restore           import a sealed session snapshot
//	POST /v1/infer                      run one secure inference (optionally in-session)
//	GET  /v1/designs                    the design/network registry
//	GET  /healthz                       liveness + drain state
//	GET  /metrics                       Prometheus-style counters
//
// Requests authenticate to a tenant (tenant.go: API-key registry, token
// buckets) and flow through weighted fair-share admission (fair.go: deficit
// round-robin over per-tenant bounded sub-queues) into the micro-batching
// scheduler (scheduler.go): requests for the same network admitted within a
// linger window execute as one batch on a persistent worker pool, admission
// control bounds every queue with 429/503 backpressure, and per-request
// deadlines come from context. An inference that latches a security breach
// (replay, splice, channel tampering) maps to 409 with the typed class and
// layer index, evicts its session — the serving-layer "security breach →
// reboot" of Figure 6 — and feeds the tenant's quarantine circuit breaker
// (breaker.go), which escalates repeat offenders from throttled probation
// to a full 451 quarantine with timed half-open probes.
package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seculator/internal/host"
	"seculator/internal/mem"
	"seculator/internal/nn"
	"seculator/internal/npu"
	"seculator/internal/protect"
	"seculator/internal/resilience"
	"seculator/internal/runner"
	"seculator/internal/secure"
	"seculator/internal/workload"
)

// Options configures a Server. The zero value serves with defaults.
type Options struct {
	// Config is the simulated system; zero means runner.DefaultConfig().
	Config runner.Config
	// Scheduler bounds the micro-batching scheduler.
	Scheduler SchedulerConfig
	// SessionIdle is the default session idle expiry (default 5m).
	SessionIdle time.Duration
	// DefaultTimeout is the per-request deadline when the request names
	// none (default 30s); MaxTimeout clamps requested deadlines (default
	// 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxInputLen caps the explicit input override length (default 1<<20).
	MaxInputLen int

	// Residency shapes the verified-weight residency cache (residency.go):
	// first use of a (network, model seed) pays encryption + golden-MAC
	// verification once, pins the result, and later requests attach to the
	// pinned state. The zero value enables it with defaults; set Disabled
	// to restore per-request provisioning.
	Residency ResidencyConfig

	// InferWorkers is the intra-inference crypto worker count applied to
	// every inference this server runs: 0 uses the process default
	// (secure.SetDefaultParallel / SECULATOR_INFER_PARALLEL), 1 forces
	// serial, >1 shards each request's block MACs and keystreams across
	// that many workers. Outputs are bit-identical at any setting; the
	// knob trades per-request latency against cross-request throughput
	// on the shared worker pool.
	InferWorkers int

	// Intercept and Hook are attack instrumentation applied to every
	// session-bound inference: the command-channel man in the middle and
	// the DRAM phase hook. Tests and demos use them to mount replay and
	// splice attacks through the HTTP boundary; production servers leave
	// them nil.
	Intercept host.Intercept
	Hook      secure.Hook

	// InterceptFor and HookFor are the per-tenant variants, used by the
	// chaos harness to lace one tenant's traffic with attacks while the
	// others run clean. When set they take precedence over Intercept/Hook
	// for that tenant (a nil return means clean).
	InterceptFor func(tenant string) host.Intercept
	HookFor      func(tenant string) secure.Hook

	// Tenants registers API keys with their fair-share weights, rate
	// limits, and queue bounds. Empty means single-tenant mode: no auth,
	// no rate limit, no quarantine — the PR 3 behaviour.
	Tenants []TenantConfig
	// Quarantine shapes the per-tenant breach circuit breakers (zero value
	// = defaults). Only configured tenants get breakers.
	Quarantine QuarantineConfig

	// SnapshotKey seals session snapshot envelopes (HMAC-SHA256). Empty
	// means a fresh random key: snapshots then verify only within this
	// process; set it to restore across restarts.
	SnapshotKey []byte

	// AdminKey gates the /admin/* surface (drain, unscoped session
	// snapshot/restore/evict — the hooks a replica-sharding gateway drives
	// migration through). When set, admin requests must carry it in
	// X-Admin-Key; when empty the surface is open, which is only
	// appropriate when the listener itself is trusted (loopback, tests).
	AdminKey string
}

func (o *Options) setDefaults() {
	if o.SessionIdle <= 0 {
		o.SessionIdle = 5 * time.Minute
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.MaxInputLen <= 0 {
		o.MaxInputLen = 1 << 20
	}
}

// Server is the serving daemon: tenant registry + fair-share admission +
// scheduler + session store.
type Server struct {
	opts        Options
	cfg         runner.Config
	fair        *FairQueue
	tenants     *TenantRegistry
	sessions    *SessionManager
	metrics     *Metrics
	residency   *residencyManager // nil when disabled
	snapshotKey []byte
	mux         *http.ServeMux

	networks map[string]workload.Network
	netNames []string // registry order

	draining  atomic.Bool // full drain: Close() was called, all new work refused
	preDrain  atomic.Bool // graceful pre-drain: no new sessions, in-flight work finishes
	closeOnce sync.Once
	closed    chan struct{}
	janitor   chan struct{}
	janitorWG sync.WaitGroup
}

// New builds a server. The configuration is validated up front so a
// misconfigured daemon fails at start, not on its first request.
func New(opts Options) (*Server, error) {
	opts.setDefaults()
	cfg := opts.Config
	if cfg.NPU == (npu.Config{}) && cfg.DRAM == (mem.Config{}) {
		cfg = runner.DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, &resilience.ConfigError{Err: err}
	}
	s := &Server{
		opts:        opts,
		cfg:         cfg,
		tenants:     NewTenantRegistry(opts.Tenants, opts.Quarantine, nil),
		sessions:    NewSessionManager(opts.SessionIdle),
		metrics:     NewMetrics(),
		snapshotKey: opts.SnapshotKey,
		networks:    make(map[string]workload.Network),
		closed:      make(chan struct{}),
		janitor:     make(chan struct{}),
	}
	if len(s.snapshotKey) == 0 {
		s.snapshotKey = newSnapshotKey()
	}
	if !opts.Residency.Disabled {
		s.residency = newResidencyManager(opts.Residency, s.metrics)
	}
	s.fair = NewFairQueue(opts.Scheduler)
	s.fair.Scheduler().onBatch = s.metrics.Batch

	s.register(MiniNet())
	for _, n := range workload.All() {
		s.register(n)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/infer", s.handleInfer)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/sessions/restore", s.handleRestore)
	s.mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /admin/drain", s.handleAdminDrain)
	s.mux.HandleFunc("GET /admin/sessions/{id}/snapshot", s.handleAdminSnapshot)
	s.mux.HandleFunc("POST /admin/sessions/restore", s.handleAdminRestore)
	s.mux.HandleFunc("DELETE /admin/sessions/{id}", s.handleAdminEvict)

	s.janitorWG.Add(1)
	go s.runJanitor()
	return s, nil
}

func (s *Server) register(n workload.Network) {
	if _, dup := s.networks[n.Name]; !dup {
		s.networks[n.Name] = n
		s.netNames = append(s.netNames, n.Name)
	}
}

// MiniNet is the serving demo network: one layer of every type, small
// enough that a functional secure inference completes in milliseconds —
// the unit of work for load generation and smoke tests. The definition
// lives in workload (workload.Mini) so the mix registry can validate model
// names without importing serve.
func MiniNet() workload.Network { return workload.Mini() }

// resolveNetwork looks a request's network up: a registry name, or
// "Name/div" for a shrunk benchmark (workload.Shrink), so load tests can
// dial model size without a registry change.
func (s *Server) resolveNetwork(name string) (workload.Network, error) {
	if n, ok := s.networks[name]; ok {
		return n, nil
	}
	if base, divs, ok := strings.Cut(name, "/"); ok {
		div, err := strconv.Atoi(divs)
		if err == nil {
			if n, ok := s.networks[base]; ok {
				return workload.Shrink(n, div)
			}
		}
	}
	return workload.Network{}, fmt.Errorf("serve: unknown network %q", name)
}

// ResolveNetwork resolves a network name against the default registry
// (MiniNet plus workload.All, including the "Name/div" shrink form) — the
// same set every server registers. Clients that need model geometry
// without a round trip (the load generator building input overrides) use
// this.
func ResolveNetwork(name string) (workload.Network, error) {
	s := &Server{networks: make(map[string]workload.Network)}
	s.register(MiniNet())
	for _, n := range workload.All() {
		s.register(n)
	}
	return s.resolveNetwork(name)
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain puts the server into graceful pre-drain: new sessions and
// snapshot imports are refused with 503, but inference — stateless and on
// existing sessions — keeps flowing and admitted micro-batches finish.
// /healthz reports "draining" so a fronting gateway can migrate this
// replica's sessions away and stop routing to it before the hard stop,
// instead of discovering the death through ejection. Idempotent; Close()
// implies it.
func (s *Server) BeginDrain() { s.preDrain.Store(true) }

// Draining reports whether the server refuses new sessions (pre-drain or
// full close).
func (s *Server) Draining() bool { return s.preDrain.Load() || s.draining.Load() }

// Close drains the server: new work is rejected with 503, admitted work
// finishes, sessions are dropped. It returns nil once fully drained, or
// ctx's error if the deadline passes first (the drain keeps finishing in
// the background either way).
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.preDrain.Store(true)
		s.draining.Store(true)
		close(s.janitor)
		go func() {
			s.fair.Close()
			s.janitorWG.Wait()
			close(s.closed)
		}()
	})
	select {
	case <-s.closed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) runJanitor() {
	defer s.janitorWG.Done()
	period := s.opts.SessionIdle / 2
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitor:
			return
		case <-t.C:
			s.sessions.Sweep()
		}
	}
}

// ---- handlers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	s, err := encodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(s.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(s.buf.Bytes())
	putJSON(s)
}

func (s *Server) writeError(w http.ResponseWriter, status int, body ErrorBody) {
	if body.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((body.RetryAfterMs+999)/1000, 10))
	}
	s.metrics.Request(status)
	writeJSON(w, status, body)
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenants.Resolve(r)
	if err != nil {
		status, body := statusFor(err)
		writeJSON(w, status, body)
		return
	}
	var req SessionCreateRequest
	if r.ContentLength != 0 {
		if err := decodeJSON(r.Body, 1<<16, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "malformed JSON: " + err.Error(), Class: ClassBadRequest})
			return
		}
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: ErrShuttingDown.Error(), Class: ClassShutdown, RetryAfterMs: retryAfter.Milliseconds()})
		return
	}
	resp, err := s.sessions.Create(t.Name(), time.Duration(req.IdleTimeoutMs)*time.Millisecond)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorBody{Error: err.Error(), Class: ClassInternal})
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenants.Resolve(r)
	if err != nil {
		status, body := statusFor(err)
		writeJSON(w, status, body)
		return
	}
	if s.sessions.Evict(r.PathValue("id"), t.Name(), EvictClose) {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusNotFound, ErrorBody{Error: ErrSessionUnknown.Error(), Class: ClassUnknownSession})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenants.Resolve(r)
	if err != nil {
		status, body := statusFor(err)
		writeJSON(w, status, body)
		return
	}
	id := r.PathValue("id")
	env, err := s.SnapshotSession(id, t.Name())
	if err != nil {
		status, body := statusFor(err)
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{SessionID: id, Snapshot: env})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenants.Resolve(r)
	if err != nil {
		status, body := statusFor(err)
		writeJSON(w, status, body)
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: ErrShuttingDown.Error(), Class: ClassShutdown, RetryAfterMs: retryAfter.Milliseconds()})
		return
	}
	var req RestoreRequest
	if err := decodeJSON(r.Body, 1<<20, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "malformed JSON: " + err.Error(), Class: ClassBadRequest})
		return
	}
	resp, err := s.RestoreSession(req.Snapshot, t.Name())
	if err != nil {
		status, body := statusFor(err)
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleDesigns(w http.ResponseWriter, _ *http.Request) {
	var resp DesignsResponse
	for _, d := range protect.Designs() {
		p := protect.PropertiesOf(d)
		resp.Designs = append(resp.Designs, DesignInfo{
			Name:          d.String(),
			Encryption:    p.Encryption,
			Integrity:     p.IntegrityLevel,
			AntiReplay:    p.AntiReplay,
			MEAProtection: p.MEAProtection,
		})
	}
	for _, name := range s.netNames {
		n := s.networks[name]
		resp.Networks = append(resp.Networks, NetworkInfo{
			Name: n.Name, Layers: len(n.Layers), Params: n.Params(), MACs: n.MACs(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Status: "ok", Sessions: s.sessions.Active(), Queue: s.fair.Depth()}
	if s.Draining() {
		resp.Status = "draining"
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- admin surface (gateway migration hooks) ----

// adminOK authorizes an /admin/* request: the configured key must match
// (constant-time); an unconfigured key leaves the surface open for trusted
// listeners.
func (s *Server) adminOK(r *http.Request) bool {
	if s.opts.AdminKey == "" {
		return true
	}
	return hmacEqualString(r.Header.Get("X-Admin-Key"), s.opts.AdminKey)
}

func (s *Server) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	if !s.adminOK(r) {
		writeJSON(w, http.StatusUnauthorized, ErrorBody{Error: ErrUnauthorized.Error(), Class: ClassUnauthorized})
		return
	}
	s.BeginDrain()
	w.WriteHeader(http.StatusNoContent)
}

// handleAdminSnapshot exports any tenant's session — the gateway acts for
// the platform, not for one tenant, when it migrates sessions between
// replicas.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.adminOK(r) {
		writeJSON(w, http.StatusUnauthorized, ErrorBody{Error: ErrUnauthorized.Error(), Class: ClassUnauthorized})
		return
	}
	id := r.PathValue("id")
	env, err := s.SnapshotSession(id, "")
	if err != nil {
		status, body := statusFor(err)
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{SessionID: id, Snapshot: env})
}

// handleAdminRestore imports a sealed envelope without a tenant-ownership
// check (the envelope MAC still gates integrity; only the "acting tenant
// must own the snapshot" rule is waived for the trusted front).
func (s *Server) handleAdminRestore(w http.ResponseWriter, r *http.Request) {
	if !s.adminOK(r) {
		writeJSON(w, http.StatusUnauthorized, ErrorBody{Error: ErrUnauthorized.Error(), Class: ClassUnauthorized})
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: ErrShuttingDown.Error(), Class: ClassShutdown, RetryAfterMs: retryAfter.Milliseconds()})
		return
	}
	var req RestoreRequest
	if err := decodeJSON(r.Body, 1<<20, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "malformed JSON: " + err.Error(), Class: ClassBadRequest})
		return
	}
	resp, err := s.RestoreSession(req.Snapshot, "")
	if err != nil {
		status, body := statusFor(err)
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// handleAdminEvict removes a session regardless of owner — the source side
// of a completed migration.
func (s *Server) handleAdminEvict(w http.ResponseWriter, r *http.Request) {
	if !s.adminOK(r) {
		writeJSON(w, http.StatusUnauthorized, ErrorBody{Error: ErrUnauthorized.Error(), Class: ClassUnauthorized})
		return
	}
	if s.sessions.Evict(r.PathValue("id"), "", EvictMigrate) {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusNotFound, ErrorBody{Error: ErrSessionUnknown.Error(), Class: ClassUnknownSession})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	created, restored, evicted := s.sessions.Counters()
	var statuses []TenantStatus
	for _, t := range s.tenants.All() {
		if br := t.Breaker(); br != nil {
			statuses = append(statuses, TenantStatus{Name: t.Name(), State: br.State(), Opens: br.Opens()})
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, s.metrics.Render(s.fair.Depth(), s.sessions.Active(), created, restored, evicted, statuses))
}

// inferOutcome is what an executed inference task returns through the
// scheduler.
type inferOutcome struct {
	out      *nn.Tensor
	cycles   uint64
	commands int
	recovery resilience.Stats
	runMs    float64

	lastSeq  uint64 // command-channel sequence the session finished at
	haveRegs bool
	regs     protect.RegisterState // final MAC registers (session runs)

	residencyHit bool // rode an already-resident weight cache entry
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	admitted := time.Now()
	tenant, err := s.tenants.Resolve(r)
	if err != nil {
		status, body := statusFor(err)
		s.writeError(w, status, body)
		return
	}
	var req InferRequest
	if err := decodeJSON(r.Body, 8<<20, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, ErrorBody{Error: "malformed JSON: " + err.Error(), Class: ClassBadRequest})
		return
	}
	if s.draining.Load() {
		status, body := statusFor(ErrShuttingDown)
		s.writeError(w, status, body)
		return
	}

	// Tenant gates, in trust order: quarantine first (a quarantined tenant
	// gets no rate tokens back), then the rate bucket.
	probe := false
	if br := tenant.Breaker(); br != nil {
		var qerr error
		probe, qerr = br.Allow(tenant.Name(), s.tenants.Now())
		if qerr != nil {
			s.metrics.TenantShed(tenant.Name(), ShedQuarantine)
			status, body := statusFor(qerr)
			s.writeError(w, status, body)
			return
		}
	}
	if ok, wait := tenant.TakeToken(s.tenants.Now()); !ok {
		s.metrics.TenantShed(tenant.Name(), ShedRate)
		status, body := statusFor(ErrRateLimited)
		if ms := wait.Milliseconds(); ms > 0 {
			body.RetryAfterMs = ms
		}
		s.writeError(w, status, body)
		return
	}

	// release frees an unused half-open probe slot on paths where the
	// request never executes; outcome feeds an executed request's result
	// back to the quarantine breaker.
	release := func() {
		if br := tenant.Breaker(); br != nil {
			br.Release(probe)
		}
	}
	outcome := func(breach bool) {
		if br := tenant.Breaker(); br != nil {
			br.Record(breach, probe, s.tenants.Now())
		}
		if breach {
			s.metrics.TenantBreach(tenant.Name())
			// A breached tenant never rides a stale trust decision: its
			// pinned residency epochs re-verify before the next attach.
			s.residency.InvalidateTenant(tenant.Name())
		}
	}

	net, err := s.resolveNetwork(req.Network)
	if err != nil {
		release()
		s.writeError(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Class: ClassBadRequest})
		return
	}
	first := net.Layers[0]
	if len(req.Input) > 0 {
		if len(req.Input) > s.opts.MaxInputLen {
			release()
			s.writeError(w, http.StatusBadRequest, ErrorBody{
				Error: fmt.Sprintf("serve: input too large (%d > %d)", len(req.Input), s.opts.MaxInputLen), Class: ClassBadRequest})
			return
		}
		if want := first.C * first.H * first.W; len(req.Input) != want {
			release()
			s.writeError(w, http.StatusBadRequest, ErrorBody{
				Error: fmt.Sprintf("serve: input length %d, network %s wants %d", len(req.Input), net.Name, want), Class: ClassBadRequest})
			return
		}
	}

	var grant *SessionGrant
	if req.Session != "" {
		g, err := s.sessions.Acquire(req.Session, tenant.Name())
		if err != nil {
			release()
			status, body := statusFor(err)
			s.writeError(w, status, body)
			return
		}
		grant = &g
	}

	timeout := s.opts.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.opts.MaxTimeout {
			timeout = s.opts.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	key := "net=" + net.Name
	res, info, err := s.fair.Submit(ctx, tenant, key, func(ctx context.Context, b BatchInfo) (any, error) {
		return s.runInference(ctx, net, &req, grant, tenant.Name(), b.Stage)
	})
	if err != nil {
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantQueueFull) || errors.Is(err, ErrShuttingDown) {
			// Shed at admission: the request never executed.
			s.metrics.TenantShed(tenant.Name(), ShedQueue)
			release()
		} else {
			s.metrics.TenantAdmitted(tenant.Name())
			outcome(breachError(err))
		}
		status, body := statusFor(err)
		if req.Session != "" && breachError(err) {
			body.SessionEvicted = s.sessions.Evict(req.Session, tenant.Name(), EvictBreach)
		}
		s.writeError(w, status, body)
		return
	}
	s.metrics.TenantAdmitted(tenant.Name())
	outcome(false)

	oc := res.(*inferOutcome)
	var piggyback *SnapshotEnvelope
	if req.Session != "" {
		s.sessions.Commit(req.Session, oc.lastSeq, oc.regs, oc.haveRegs, OutputSum(oc.out))
		if req.ReturnSnapshot {
			// Snapshot piggyback: export the just-committed session state in
			// the same response, so a gateway's write-through vault is never
			// a round trip behind the session it would have to resurrect.
			if env, err := s.SnapshotSession(req.Session, tenant.Name()); err == nil {
				piggyback = &env
			}
		}
	}
	resp := InferResponse{
		Network:      net.Name,
		Layers:       len(net.Layers),
		OutputSum:    OutputSum(oc.out),
		Cycles:       oc.cycles,
		Commands:     oc.commands,
		BatchSize:    info.Size,
		QueueMs:      float64(info.Queued) / float64(time.Millisecond),
		RunMs:        oc.runMs,
		ResidencyHit: oc.residencyHit,
		Recovery: RecoveryInfo{
			Retries:    oc.recovery.Retries,
			Recovered:  oc.recovery.Recovered,
			Persistent: oc.recovery.Persistent,
			Breached:   oc.recovery.Breached,
		},
	}
	resp.OutputDims = [3]int{oc.out.Chans, oc.out.H, oc.out.W}
	resp.Snapshot = piggyback
	if req.ReturnOutput {
		resp.Output = oc.out.Data
	}
	s.metrics.Inference(time.Since(admitted), info.Queued)
	s.metrics.Request(http.StatusOK)
	writeJSON(w, http.StatusOK, resp)
}

// interceptFor resolves the command-channel attack instrumentation for a
// tenant's inference: the per-tenant hook wins, then the global one.
func (s *Server) interceptFor(tenant string) host.Intercept {
	if s.opts.InterceptFor != nil {
		if ic := s.opts.InterceptFor(tenant); ic != nil {
			return ic
		}
	}
	return s.opts.Intercept
}

// hookFor resolves the DRAM phase hook for a tenant's inference.
func (s *Server) hookFor(tenant string) secure.Hook {
	if s.opts.HookFor != nil {
		if h := s.opts.HookFor(tenant); h != nil {
			return h
		}
	}
	return s.opts.Hook
}

// runInference executes one request on a pool worker: build (or attach to)
// the deterministic model, then either the full secure session (command
// channel + functional execution) or the sessionless secure inference
// with the memoized timing simulation alongside. Session runs continue the
// session's command-channel sequence window (grant.BaseSeq) and capture the
// final MAC registers for the session's durable state.
//
// When the batch is pipelined, gate is the request's layer-stage handle:
// the request enters layer k only once its batch predecessor has left it
// (pipeline.go). The gate's Done/Wait calls ride the executor's
// OnLayerMACs layer boundary, so per-request execution is untouched.
func (s *Server) runInference(ctx context.Context, net workload.Network, req *InferRequest, grant *SessionGrant, tenant string, gate *StageGate) (*inferOutcome, error) {
	start := time.Now()
	oc := &inferOutcome{}

	// Weight residency: attach to (or build) the pinned verified weights
	// for (network, seed). Attack-instrumented tenants keep the
	// per-request provisioning path — the residency cache never hides a
	// hook's attack surface — and any attach error falls back silently.
	var in *nn.Tensor
	var ws []*nn.Weights
	var resident *secure.WeightResidency
	if s.residency != nil && s.hookFor(tenant) == nil {
		r, hit, err := s.residency.attach(tenant, req.Network, req.Seed, func() (*secure.WeightResidency, error) {
			_, bws := nn.RandomModel(net, req.Seed)
			return secure.BuildWeightResidency(ctx, net, s.cfg.NPU, s.cfg.DRAM, secure.DefaultSecret, secure.DefaultRandom, bws)
		})
		if err == nil {
			resident, oc.residencyHit = r, hit
			ws = resident.Weights()
			first := net.Layers[0]
			in = nn.NewTensor(first.C, first.H, first.W)
			in.Randomize(req.Seed)
		}
	}
	if in == nil {
		in, ws = nn.RandomModel(net, req.Seed)
	}
	if len(req.Input) > 0 {
		copy(in.Data, req.Input)
	}

	// Layer-stage gate protocol: entering layer k needs the predecessor to
	// have completed k+1 stages (provisioning counts as part of layer 0).
	// OnLayerMACs(p) fires when layer p closes (p == len(layers) for the
	// readout epoch): publish p+1 stages done, then wait to enter p+1. A
	// context expiry inside the wait just returns — the executor aborts at
	// its own next context check — and the scheduler finishes the gate on
	// every task exit, so successors are never stranded.
	stages := len(net.Layers)
	onMACs := func(phase int, regs protect.RegisterState) {
		oc.regs = regs
		oc.haveRegs = true
		gate.Done(phase + 1)
		if phase < stages {
			_ = gate.Wait(ctx, phase+2)
		}
	}
	if err := gate.Wait(ctx, 1); err != nil {
		return nil, err
	}

	if grant != nil {
		res, err := host.RunSession(ctx, net, s.cfg, grant.Key, host.SessionOptions{
			Input: in, Weights: ws,
			Intercept:   s.interceptFor(tenant),
			Hook:        s.hookFor(tenant),
			Parallel:    s.opts.InferWorkers,
			BaseSeq:     grant.BaseSeq,
			Residency:   resident,
			OnLayerMACs: onMACs,
		})
		oc.recovery = res.Recovery
		if err != nil {
			return nil, err
		}
		oc.out = res.Output
		oc.cycles = uint64(res.Cycles)
		oc.commands = res.Commands
		oc.lastSeq = res.LastSeq
	} else {
		x := secure.NewExecutor()
		x.NPU, x.DRAM = s.cfg.NPU, s.cfg.DRAM
		x.AfterPhase = s.hookFor(tenant)
		x.Parallel = s.opts.InferWorkers
		x.Residency = resident
		x.OnLayerMACs = onMACs
		fr, err := x.Run(ctx, net, in, ws)
		oc.recovery = fr.Recovery
		if err != nil {
			return nil, err
		}
		oc.out = fr.Output
		// Timing rides the memoized simulation cache: the first request
		// for a network pays the simulation, the batch (and every later
		// request) shares it.
		tr, err := runner.RunCached(ctx, net, protect.Seculator, s.cfg)
		if err != nil {
			return nil, err
		}
		oc.cycles = uint64(tr.Cycles)
	}
	oc.runMs = float64(time.Since(start)) / float64(time.Millisecond)
	return oc, nil
}

// OutputSum is the FNV-1a checksum of a tensor's dims and data — the
// client-verifiable fingerprint carried in InferResponse.
func OutputSum(t *nn.Tensor) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, d := range []int{t.Chans, t.H, t.W} {
		binary.BigEndian.PutUint32(b[:], uint32(d))
		_, _ = h.Write(b[:])
	}
	for _, v := range t.Data {
		binary.BigEndian.PutUint32(b[:], uint32(v))
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}
