// Package chaos drives the serving layer through seeded fault campaigns
// and checks the multi-tenant isolation invariants the hardening work
// promises: while an adversarial tenant floods the front with attack-laced
// traffic at a multiple of its rate limit, honest tenants keep a zero
// error rate and a bounded p99; the adversary's breaker opens, holds, and
// recovers through half-open probes once the attack stops; and a
// mid-campaign process restart carries every live session across on sealed
// snapshots, bit-identically.
//
// A campaign is three phases over a fresh in-process server:
//
//	baseline — every tenant offers honest traffic; per-tenant p99 recorded.
//	attack   — adversarial plans switch to replay-MITM traffic at
//	           AttackRPS; slow plans stall inside the executor; honest
//	           plans keep their baseline load. With Restart set, the
//	           server dies mid-attack: all sessions are snapshotted,
//	           a fresh process restores them, and the attack resumes
//	           against it (re-opening the adversary's breaker there).
//	recovery — the attack stops; everyone offers honest traffic again and
//	           the adversary's breaker must close via clean probes.
//
// Everything is deterministic from Options.Seed apart from goroutine
// scheduling: client jitter, load seeds, and fault choices all derive from
// it, so a failing campaign replays.
package chaos

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seculator/internal/host"
	"seculator/internal/mem"
	"seculator/internal/secure"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
	"seculator/internal/serve/loadgen"
)

// Phase names a campaign stage.
type Phase string

// The campaign stages, in order.
const (
	PhaseBaseline Phase = "baseline"
	PhaseAttack   Phase = "attack"
	PhaseRecovery Phase = "recovery"
)

// Phases returns the campaign stages in execution order.
func Phases() []Phase { return []Phase{PhaseBaseline, PhaseAttack, PhaseRecovery} }

// TenantPlan is one tenant's role in the campaign.
type TenantPlan struct {
	// Tenant is registered with the server as-is (key, weight, rate).
	Tenant serve.TenantConfig
	// RPS is the tenant's honest offered rate (default 20).
	RPS float64
	// AttackRPS is the offered rate during the attack phase for
	// adversarial plans (default 2x the tenant's rate limit).
	AttackRPS float64
	// Adversarial routes the tenant's attack-phase traffic through a
	// replay man-in-the-middle: every request opens a session and splices
	// a captured layer-2 command over layer 4, a guaranteed VN breach.
	Adversarial bool
	// SlowEveryLayerMs stalls this tenant's executor after every layer —
	// the slow-tenant fault. Slow tenants are exempt from the honest
	// invariants but must not perturb anyone else.
	SlowEveryLayerMs int
	// Sessions binds the tenant's honest traffic to a secure session so
	// the authenticated command channel rides through the campaign (and
	// across the restart).
	Sessions bool
}

// honestStrict reports whether the plan is held to the honest-tenant
// invariants (zero errors, bounded p99).
func (p TenantPlan) honestStrict() bool { return !p.Adversarial && p.SlowEveryLayerMs == 0 }

// Options shapes a campaign.
type Options struct {
	// Seed drives every derived PRNG (client jitter, load seeds).
	Seed int64
	// Plans are the tenants; at least one adversarial and one strict
	// honest plan make the invariants meaningful.
	Plans []TenantPlan
	// Scheduler, Quarantine and SnapshotKey configure the server under
	// test (zero values use the serve defaults; a random snapshot key is
	// generated once and shared across the restart).
	Scheduler   serve.SchedulerConfig
	Quarantine  serve.QuarantineConfig
	SnapshotKey []byte
	// Network names the model all traffic runs (default "Mini").
	Network string
	// PhaseFor is the wall time per phase (default 1s).
	PhaseFor time.Duration
	// Restart kills the server halfway through the attack phase: all
	// sessions are snapshotted, a fresh process restores them, and the
	// attack resumes against the new process. Mid-attack (rather than
	// between phases) so the campaign also proves the breaker re-earns
	// the quarantine on the replacement replica.
	Restart bool
	// P99Floor absorbs timer noise on fast paths: the honest p99 bound is
	// max(2x baseline, P99Floor) (default 100ms).
	P99Floor time.Duration
	// Logf, when set, narrates the campaign (e.g. t.Logf).
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Network == "" {
		o.Network = "Mini"
	}
	if o.PhaseFor <= 0 {
		o.PhaseFor = time.Second
	}
	if o.P99Floor <= 0 {
		o.P99Floor = 100 * time.Millisecond
	}
	for i := range o.Plans {
		if o.Plans[i].RPS <= 0 {
			o.Plans[i].RPS = 20
		}
		if o.Plans[i].Adversarial && o.Plans[i].AttackRPS <= 0 {
			o.Plans[i].AttackRPS = 2 * o.Plans[i].Tenant.RateRPS
			if o.Plans[i].AttackRPS <= 0 {
				o.Plans[i].AttackRPS = 2 * o.Plans[i].RPS
			}
		}
	}
}

// Result is the campaign outcome: per-phase per-tenant load reports, the
// breaker evidence scraped from /metrics, and the invariant violations
// (empty means the campaign passed).
type Result struct {
	Reports      map[Phase]map[string]loadgen.Report
	BreakerOpens map[string]float64 // tenant -> breaker opens at campaign end
	FinalState   map[string]float64 // tenant -> breaker state gauge at campaign end
	// RestartVerified is true when Options.Restart ran and every probe
	// session came back bit-identical (same sealed payload, same output).
	RestartVerified bool
	Violations      []string
}

// Ok reports whether every isolation invariant held.
func (r Result) Ok() bool { return len(r.Violations) == 0 }

// String renders the campaign outcome for humans.
func (r Result) String() string {
	var b strings.Builder
	for _, ph := range Phases() {
		byTenant := r.Reports[ph]
		names := make([]string, 0, len(byTenant))
		for n := range byTenant {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rep := byTenant[n]
			errs := rep.Sent - rep.OK - rep.Shed
			fmt.Fprintf(&b, "%-8s %-8s ok=%-5d errors=%-5d shed=%-4d p99=%v\n",
				ph, n, rep.OK, errs, rep.Shed, rep.P99.Round(time.Millisecond))
		}
	}
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "campaign PASS (restart verified: %v)\n", r.RestartVerified)
	} else {
		fmt.Fprintf(&b, "campaign FAIL: %d violations\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}

// campaign holds the live state of one run.
type campaign struct {
	opts      Options
	attacking atomic.Bool

	srv  *serve.Server
	hs   *http.Server
	base string
}

// Run executes the campaign and returns the evidence. The error covers
// harness-level failures (server refused to start, snapshot API broke);
// invariant breaks land in Result.Violations instead so a test can print
// the whole picture before failing.
func Run(ctx context.Context, opts Options) (Result, error) {
	opts.setDefaults()
	if len(opts.Plans) == 0 {
		return Result{}, errors.New("chaos: no tenant plans")
	}
	if len(opts.SnapshotKey) == 0 {
		// Both server incarnations must share the sealing key or the
		// mid-attack restore would (correctly) reject every snapshot.
		opts.SnapshotKey = make([]byte, 32)
		if _, err := rand.Read(opts.SnapshotKey); err != nil {
			return Result{}, fmt.Errorf("chaos: snapshot key: %w", err)
		}
	}
	c := &campaign{opts: opts}
	res := Result{
		Reports:      make(map[Phase]map[string]loadgen.Report),
		BreakerOpens: make(map[string]float64),
		FinalState:   make(map[string]float64),
	}
	if err := c.start(); err != nil {
		return res, err
	}
	defer c.stop(context.Background())

	c.logf("chaos: baseline phase (%v)", opts.PhaseFor)
	res.Reports[PhaseBaseline] = c.runPhase(ctx, PhaseBaseline, opts.PhaseFor)
	c.attacking.Store(true)
	if opts.Restart {
		half := opts.PhaseFor / 2
		c.logf("chaos: attack phase, first half (%v)", half)
		first := c.runPhase(ctx, PhaseAttack, half)
		c.logf("chaos: mid-attack restart")
		ok, err := c.restart(ctx, &res)
		if err != nil {
			return res, err
		}
		res.RestartVerified = ok
		c.logf("chaos: attack phase, second half (%v)", half)
		res.Reports[PhaseAttack] = mergeReports(first, c.runPhase(ctx, PhaseAttack, half))
	} else {
		c.logf("chaos: attack phase (%v)", opts.PhaseFor)
		res.Reports[PhaseAttack] = c.runPhase(ctx, PhaseAttack, opts.PhaseFor)
	}
	c.attacking.Store(false)

	c.logf("chaos: recovery phase (%v)", opts.PhaseFor)
	res.Reports[PhaseRecovery] = c.runPhase(ctx, PhaseRecovery, opts.PhaseFor)

	scrape, err := client.New(c.base, nil).Metrics(ctx)
	if err != nil {
		return res, fmt.Errorf("chaos: final scrape: %w", err)
	}
	c.check(&res, scrape)
	return res, nil
}

func (c *campaign) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// serveOptions builds the server config; the fault injectors key off the
// campaign's live attack switch so the same server serves every phase.
func (c *campaign) serveOptions() serve.Options {
	adversarial := make(map[string]bool)
	slow := make(map[string]time.Duration)
	tenants := make([]serve.TenantConfig, 0, len(c.opts.Plans))
	for _, p := range c.opts.Plans {
		tenants = append(tenants, p.Tenant)
		if p.Adversarial {
			adversarial[p.Tenant.Name] = true
		}
		if p.SlowEveryLayerMs > 0 {
			slow[p.Tenant.Name] = time.Duration(p.SlowEveryLayerMs) * time.Millisecond
		}
	}
	return serve.Options{
		Scheduler:   c.opts.Scheduler,
		Tenants:     tenants,
		Quarantine:  c.opts.Quarantine,
		SnapshotKey: c.opts.SnapshotKey,
		InterceptFor: func(tenant string) host.Intercept {
			if adversarial[tenant] && c.attacking.Load() {
				return replayIntercept()
			}
			return nil
		},
		HookFor: func(tenant string) secure.Hook {
			d, ok := slow[tenant]
			if !ok {
				return nil
			}
			return func(phase int, _ *mem.DRAM) {
				if c.attacking.Load() {
					time.Sleep(d)
				}
			}
		},
	}
}

func (c *campaign) start() error {
	srv, err := serve.New(c.serveOptions())
	if err != nil {
		return fmt.Errorf("chaos: server: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("chaos: listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	c.srv, c.hs, c.base = srv, hs, "http://"+ln.Addr().String()
	return nil
}

func (c *campaign) stop(ctx context.Context) {
	if c.hs == nil {
		return
	}
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	_ = c.hs.Shutdown(sctx)
	_ = c.srv.Close(sctx)
	c.hs = nil
}

// clientFor builds the tenant's typed client. Honest tenants run the
// production retry policy (jittered backoff honoring Retry-After, plus
// transport retries so a mid-campaign restart reads as latency, not
// errors); adversaries get no such help.
func (c *campaign) clientFor(p TenantPlan, ordinal int) *client.Client {
	cl := client.New(c.base, nil)
	cl.SetAPIKey(p.Tenant.Key)
	if !p.Adversarial {
		cl.SetRetryPolicy(client.RetryPolicy{
			MaxAttempts:    5,
			BaseDelay:      20 * time.Millisecond,
			MaxDelay:       500 * time.Millisecond,
			Seed:           c.opts.Seed + int64(ordinal) + 1,
			RetryTransport: true,
		})
	}
	return cl
}

// runPhase offers every plan's traffic concurrently for the given wall
// time and returns the per-tenant reports.
func (c *campaign) runPhase(ctx context.Context, ph Phase, d time.Duration) map[string]loadgen.Report {
	reports := make(map[string]loadgen.Report, len(c.opts.Plans))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, p := range c.opts.Plans {
		wg.Add(1)
		go func(i int, p TenantPlan) {
			defer wg.Done()
			cl := c.clientFor(p, i)
			var rep loadgen.Report
			var err error
			if p.Adversarial && ph == PhaseAttack {
				rep = c.attackLoop(ctx, cl, p, d)
			} else {
				rep, err = loadgen.Run(ctx, cl, loadgen.Options{
					RPS:      p.RPS,
					Duration: d,
					Network:  c.opts.Network,
					Sessions: p.Sessions,
				})
				if err != nil {
					rep.Errors = map[string]int{"harness: " + err.Error(): 1}
				}
			}
			mu.Lock()
			reports[p.Tenant.Name] = rep
			mu.Unlock()
		}(i, p)
	}
	wg.Wait()
	return reports
}

// attackLoop adapts the campaign's plan to the shared adversarial stream.
func (c *campaign) attackLoop(ctx context.Context, cl *client.Client, p TenantPlan, d time.Duration) loadgen.Report {
	return AttackStream(ctx, cl, c.opts.Network, p.AttackRPS, d, c.opts.Seed)
}

// AttackStream is the adversarial generator: an open-loop arrival process
// at rps where every arrival opens a fresh session and runs one inference
// through the server's replay MITM intercept — each executed request is a
// guaranteed VN breach, and refused ones probe the quarantine the breach
// history earned. No retries: the adversary takes every refusal. Request
// seeds derive from seed, so the stream replays. The chaos campaign's
// attack phase and the workload suite's attack-laced mixes both ride it.
func AttackStream(ctx context.Context, cl *client.Client, network string, rps float64, d time.Duration, seed int64) loadgen.Report {
	rep := loadgen.Report{Errors: make(map[string]int)}
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		slots = make(chan struct{}, 64)
	)
	start := time.Now()
	deadline := start.Add(d)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
arrivals:
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			break arrivals
		case <-ticker.C:
		}
		rep.Sent++
		select {
		case slots <- struct{}{}:
		default:
			rep.Shed++
			continue
		}
		wg.Add(1)
		go func(reqSeed int64) {
			defer wg.Done()
			defer func() { <-slots }()
			record := func(err error) {
				mu.Lock()
				defer mu.Unlock()
				var ae *client.APIError
				switch {
				case err == nil:
					rep.OK++
				case errors.As(err, &ae):
					rep.Errors[ae.Body.Class]++
				case ctx.Err() != nil:
					rep.Errors["canceled"]++
				default:
					rep.Errors["transport"]++
				}
			}
			sess, err := cl.CreateSession(ctx, serve.SessionCreateRequest{})
			if err != nil {
				record(err)
				return
			}
			_, err = cl.Infer(ctx, serve.InferRequest{
				Network: network, Seed: reqSeed, Session: sess.SessionID,
			})
			record(err)
		}(seed + int64(rep.Sent))
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep
}

// mergeReports folds the two restart-split halves of a phase into one
// report per tenant. Counters add; percentiles take the worse half, which
// is conservative for the invariant bounds (exact percentiles would need
// the raw samples).
func mergeReports(a, b map[string]loadgen.Report) map[string]loadgen.Report {
	out := make(map[string]loadgen.Report, len(a))
	maxd := func(x, y time.Duration) time.Duration {
		if x > y {
			return x
		}
		return y
	}
	for name, ra := range a {
		rb := b[name]
		m := loadgen.Report{
			Sent: ra.Sent + rb.Sent, OK: ra.OK + rb.OK, Shed: ra.Shed + rb.Shed,
			Elapsed: ra.Elapsed + rb.Elapsed,
			P50:     maxd(ra.P50, rb.P50), P95: maxd(ra.P95, rb.P95),
			P99: maxd(ra.P99, rb.P99), Max: maxd(ra.Max, rb.Max),
			Errors: make(map[string]int, len(ra.Errors)+len(rb.Errors)),
		}
		for cls, n := range ra.Errors {
			m.Errors[cls] += n
		}
		for cls, n := range rb.Errors {
			m.Errors[cls] += n
		}
		if m.Elapsed > 0 {
			m.AchievedRPS = float64(m.OK) / m.Elapsed.Seconds()
		}
		out[name] = m
	}
	return out
}

// restart carries the platform across a process death: snapshot every live
// session, tear the server down, boot a fresh one on the same snapshot
// key, restore, and prove bit-identity with a probe session — the sealed
// payload re-exported from the new process must equal the old bytes (MAC
// registers and sequence window included) and a replayed inference must
// produce the same output.
func (c *campaign) restart(ctx context.Context, res *Result) (bool, error) {
	probeOwner := -1
	for i, p := range c.opts.Plans {
		if p.honestStrict() {
			probeOwner = i
			break
		}
	}
	if probeOwner < 0 {
		return false, errors.New("chaos: restart needs a strict honest plan to own the probe session")
	}
	probe := c.clientFor(c.opts.Plans[probeOwner], probeOwner)
	const probeSeed = 31337

	sess, err := probe.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		return false, fmt.Errorf("chaos: probe session: %w", err)
	}
	before, err := probe.Infer(ctx, serve.InferRequest{Network: c.opts.Network, Seed: probeSeed, Session: sess.SessionID})
	if err != nil {
		return false, fmt.Errorf("chaos: probe infer: %w", err)
	}
	exported, err := probe.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		return false, fmt.Errorf("chaos: probe export: %w", err)
	}

	envs, err := c.srv.SnapshotAll()
	if err != nil {
		return false, fmt.Errorf("chaos: snapshot all: %w", err)
	}
	c.stop(ctx)
	if err := c.start(); err != nil {
		return false, err
	}
	restored, err := c.srv.RestoreAll(envs)
	if err != nil {
		return false, fmt.Errorf("chaos: restore all: %w", err)
	}
	c.logf("chaos: restarted, %d/%d sessions restored", restored, len(envs))

	probe = c.clientFor(c.opts.Plans[probeOwner], probeOwner)
	again, err := probe.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		return false, fmt.Errorf("chaos: probe re-export: %w", err)
	}
	if !bytes.Equal(again.Snapshot.Payload, exported.Snapshot.Payload) {
		res.Violations = append(res.Violations, "restart: restored session state not bit-identical to snapshot")
		return false, nil
	}
	after, err := probe.Infer(ctx, serve.InferRequest{Network: c.opts.Network, Seed: probeSeed, Session: sess.SessionID})
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("restart: probe infer after restore: %v", err))
		return false, nil
	}
	if after.OutputSum != before.OutputSum {
		res.Violations = append(res.Violations,
			fmt.Sprintf("restart: restored session output %#x, want %#x", after.OutputSum, before.OutputSum))
		return false, nil
	}
	return true, nil
}

// check evaluates the isolation invariants against the reports and the
// final metrics scrape, appending one violation line per break.
func (c *campaign) check(res *Result, scrape string) {
	for _, p := range c.opts.Plans {
		name := p.Tenant.Name
		if p.Adversarial {
			opens := metricValue(scrape, "seculator_serve_tenant_breaker_opens_total", name)
			state := metricValue(scrape, "seculator_serve_tenant_breaker_state", name)
			res.BreakerOpens[name] = opens
			res.FinalState[name] = state
			if opens < 1 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("adversary %s: breaker never opened (opens=%v)", name, opens))
			}
			if state != float64(serve.BreakerClosed) {
				res.Violations = append(res.Violations,
					fmt.Sprintf("adversary %s: breaker not recovered by campaign end (state=%v)", name, state))
			}
			if rec := res.Reports[PhaseRecovery][name]; rec.OK == 0 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("adversary %s: no request readmitted during recovery", name))
			}
			continue
		}
		// Honest and slow tenants must never be quarantined or blamed for
		// a breach — quarantine is attributable, not collective.
		if v := metricValue(scrape, "seculator_serve_tenant_breaches_total", name); v != 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("honest %s: %v breaches attributed", name, v))
		}
		if v := metricValueLabeled(scrape, "seculator_serve_tenant_shed_total",
			`tenant=`+strconv.Quote(name)+`,reason="quarantine"`); v != 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("honest %s: %v requests shed by quarantine", name, v))
		}
		if !p.honestStrict() {
			continue
		}
		baseline := res.Reports[PhaseBaseline][name]
		for _, ph := range Phases() {
			rep := res.Reports[ph][name]
			if n := rep.Sent - rep.OK - rep.Shed; n != 0 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("honest %s: %d errors in %s phase (%v)", name, n, ph, rep.Errors))
			}
			if rep.OK == 0 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("honest %s: no request completed in %s phase", name, ph))
			}
		}
		bound := 2 * baseline.P99
		if bound < c.opts.P99Floor {
			bound = c.opts.P99Floor
		}
		if atk := res.Reports[PhaseAttack][name]; atk.P99 > bound {
			res.Violations = append(res.Violations,
				fmt.Sprintf("honest %s: attack-phase p99 %v exceeds bound %v (baseline %v)",
					name, atk.P99, bound, baseline.P99))
		}
	}
}

// ReplayIntercept is the command-channel MITM: capture the layer-2 packet,
// splice it over layer 4 — the version-number check downstream flags it.
// One intercept carries the capture state of one inference; callers hand a
// fresh one to every session-bound run (serve.Options.InterceptFor does).
func ReplayIntercept() host.Intercept { return replayIntercept() }

func replayIntercept() host.Intercept {
	var mu sync.Mutex
	var captured *host.Packet
	return func(layer int, p *host.Packet) {
		mu.Lock()
		defer mu.Unlock()
		switch layer {
		case 2:
			cp := *p
			cp.Payload = append([]byte(nil), p.Payload...)
			captured = &cp
		case 4:
			if captured != nil {
				*p = *captured
			}
		}
	}
}

// MetricValue returns the value of a /metrics scrape line for the given
// tenant label (or an unlabeled line when tenant is empty); absent lines
// read 0. The chaos invariants and the workload scenario runner both read
// their evidence through it.
func MetricValue(scrape, name, tenant string) float64 { return metricValue(scrape, name, tenant) }

// MetricValueLabeled is MetricValue with a raw label-substring match, for
// multi-label lines like shed-by-reason.
func MetricValueLabeled(scrape, name, labels string) float64 {
	return metricValueLabeled(scrape, name, labels)
}

func metricValue(scrape, name, tenant string) float64 {
	if tenant == "" {
		return metricValueLabeled(scrape, name, "")
	}
	return metricValueLabeled(scrape, name, "tenant="+strconv.Quote(tenant))
}

func metricValueLabeled(scrape, name, labels string) float64 {
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if labels != "" && !strings.Contains(rest, labels) {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		return v
	}
	return 0
}
