package chaos_test

import (
	"context"
	"testing"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/chaos"
)

// The acceptance campaign: one adversarial tenant at 2x its rate limit
// lacing traffic with command replays, one slow tenant stalling in the
// executor, one strict honest tenant on sessions — with a full process
// restart between the attack and recovery phases. Every isolation
// invariant must hold: honest error rate 0, honest p99 within 2x baseline,
// the adversary's breaker opens and recovers via half-open probes, and the
// restart restores the snapshotted sessions bit-identically.
func TestChaosCampaign(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	res, err := chaos.Run(ctx, chaos.Options{
		Seed: 1,
		Plans: []chaos.TenantPlan{
			{
				Tenant:   serve.TenantConfig{Key: "k-good", Name: "good", Weight: 2, RateRPS: 200, Burst: 50, MaxPending: 64},
				RPS:      30,
				Sessions: true,
			},
			{
				Tenant:           serve.TenantConfig{Key: "k-slow", Name: "slow", Weight: 1, RateRPS: 200, Burst: 50, MaxPending: 64},
				RPS:              10,
				SlowEveryLayerMs: 2,
			},
			{
				Tenant:      serve.TenantConfig{Key: "k-evil", Name: "evil", Weight: 1, RateRPS: 40, Burst: 10, MaxPending: 64},
				RPS:         20,
				Adversarial: true, // AttackRPS defaults to 2x the rate limit
			},
		},
		Scheduler:   serve.SchedulerConfig{Workers: 4, MaxQueue: 256, MaxBatch: 4},
		Quarantine:  serve.QuarantineConfig{ThrottleAfter: 1, OpenAfter: 3, Window: time.Minute, OpenFor: 50 * time.Millisecond, MaxOpenFor: 300 * time.Millisecond, ThrottleRPS: 1000, ThrottleBurst: 1000, ProbeSuccesses: 2},
		SnapshotKey: []byte("chaos-campaign-snapshot-key-----"),
		PhaseFor:    time.Second,
		Restart:     true,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("campaign harness: %v", err)
	}
	t.Logf("\n%s", res)
	if !res.Ok() {
		t.Fatalf("isolation invariants violated:\n%s", res)
	}
	if !res.RestartVerified {
		t.Fatal("mid-campaign restart not verified bit-identical")
	}
	if res.BreakerOpens["evil"] < 1 {
		t.Fatalf("adversary breaker opens = %v", res.BreakerOpens["evil"])
	}
	// The attack really was offered at ~2x the rate limit, and the
	// adversary really was refused service while quarantined.
	atk := res.Reports[chaos.PhaseAttack]["evil"]
	if atk.Sent < 40 {
		t.Fatalf("adversary only offered %d attack requests", atk.Sent)
	}
	if atk.OK+len(atk.Errors) == 0 {
		t.Fatal("adversary attack traffic produced no outcomes")
	}
}

// A campaign with no adversary and no restart still runs and passes — the
// harness itself must not manufacture violations.
func TestChaosQuietCampaign(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := chaos.Run(ctx, chaos.Options{
		Seed: 7,
		Plans: []chaos.TenantPlan{
			{Tenant: serve.TenantConfig{Key: "k-a", Name: "a", Weight: 1, RateRPS: 200, Burst: 50, MaxPending: 64}, RPS: 20, Sessions: true},
			{Tenant: serve.TenantConfig{Key: "k-b", Name: "b", Weight: 1, RateRPS: 200, Burst: 50, MaxPending: 64}, RPS: 20},
		},
		Scheduler: serve.SchedulerConfig{Workers: 2, MaxQueue: 128, MaxBatch: 4},
		PhaseFor:  400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("campaign harness: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("quiet campaign violated invariants:\n%s", res)
	}
}
