package chaos_test

import (
	"context"
	"testing"
	"time"

	"seculator/internal/serve/chaos"
)

// The fleet acceptance campaign: stateless traffic flows through the
// replica-sharding gateway while one replica — the one homing the most
// live sessions — is killed abruptly mid-run. Zero session loss (every
// session resumes on a survivor with bit-identical sealed state and an
// advancing replay window), zero errors beyond the gateway's
// retry-on-alternate budget, and the gateway's metrics attest the
// ejection and the failover migrations.
func TestGatewayChaosCampaign(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	res, err := chaos.RunGateway(ctx, chaos.GatewayOptions{
		Seed:     1,
		Replicas: 3,
		Sessions: 4,
		RPS:      40,
		Duration: 2 * time.Second,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("gateway campaign harness: %v", err)
	}
	t.Logf("\n%s", res)
	if !res.Ok() {
		t.Fatalf("gateway invariants violated:\n%s", res)
	}
	if res.Moved < 1 {
		t.Fatalf("kill of %s exercised no failover (moved=%d)", res.Victim, res.Moved)
	}
}
