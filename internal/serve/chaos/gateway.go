package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"seculator/internal/gateway"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
	"seculator/internal/serve/loadgen"
)

// gateway.go — the multi-replica campaign: kill a replica under load
// behind the replica-sharding gateway and prove the fleet absorbs it.
//
// The single-process campaign (chaos.Run) already proves tenant isolation
// and snapshot-carried restarts; this campaign proves the *routing* layer:
// while stateless traffic flows through the gateway, one replica dies
// abruptly mid-run, and
//
//   - every live session homed on the victim fails over to a survivor
//     with bit-identical sealed state (zero session loss),
//   - the open-loop traffic sees no errors beyond the gateway's
//     retry-once-on-alternate budget (MaxErrors, default 0),
//   - the gateway's own evidence agrees: the victim was ejected and the
//     failover migrations are counted.

// GatewayOptions shapes a gateway campaign.
type GatewayOptions struct {
	// Seed drives the deterministic parts (load seeds).
	Seed int64
	// Replicas is the fleet size (default 3, min 2 — someone must survive).
	Replicas int
	// Sessions is how many live sessions ride through the kill (default 4).
	Sessions int
	// RPS is the stateless open-loop rate through the gateway (default 50).
	RPS float64
	// Duration is the traffic window; the kill lands halfway (default 2s).
	Duration time.Duration
	// Network names the model (default "Mini").
	Network string
	// MaxErrors bounds the non-OK, non-shed completions the open-loop
	// traffic may see across the kill (default 0: the retry budget must
	// absorb the crash entirely).
	MaxErrors int
	// Scheduler configures every replica (zero = serve defaults).
	Scheduler serve.SchedulerConfig
	// Logf, when set, narrates the campaign.
	Logf func(format string, args ...any)
}

func (o *GatewayOptions) setDefaults() {
	if o.Replicas < 2 {
		o.Replicas = 3
	}
	if o.Sessions <= 0 {
		o.Sessions = 4
	}
	if o.RPS <= 0 {
		o.RPS = 50
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Network == "" {
		o.Network = "Mini"
	}
}

// GatewayResult is the campaign outcome.
type GatewayResult struct {
	Victim     string         // replica killed mid-run
	Moved      int            // sessions that failed over off the victim
	Sessions   int            // live sessions carried through the campaign
	Traffic    loadgen.Report // the open-loop stateless run
	Ejections  float64        // gateway replica ejections at campaign end
	Failovers  float64        // gateway failover migrations at campaign end
	Violations []string
}

// Ok reports whether every invariant held.
func (r GatewayResult) Ok() bool { return len(r.Violations) == 0 }

// String renders the outcome for humans.
func (r GatewayResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gateway chaos: killed %s, %d/%d sessions failed over, %v ejections, %v failover migrations\n",
		r.Victim, r.Moved, r.Sessions, r.Ejections, r.Failovers)
	fmt.Fprintf(&b, "traffic: %d sent, %d ok, %d shed, %d errors, p99 %v\n",
		r.Traffic.Sent, r.Traffic.OK, r.Traffic.Shed,
		r.Traffic.Sent-r.Traffic.OK-r.Traffic.Shed, r.Traffic.P99.Round(time.Millisecond))
	for name, rs := range r.Traffic.ByReplica {
		fmt.Fprintf(&b, "  replica %s: %d ok  p99 %v\n", name, rs.OK, rs.P99.Round(time.Millisecond))
	}
	if r.Ok() {
		fmt.Fprintf(&b, "gateway campaign PASS\n")
	} else {
		fmt.Fprintf(&b, "gateway campaign FAIL: %d violations\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}

// sealedSeq peeks the replay-window position out of a sealed payload (the
// payload is plain JSON; only its integrity is MAC-protected).
func sealedSeq(payload []byte) uint64 {
	var st struct {
		LastSeq uint64 `json:"last_seq"`
	}
	_ = json.Unmarshal(payload, &st)
	return st.LastSeq
}

// RunGateway executes the replica-kill campaign. The error covers harness
// failures; invariant breaks land in GatewayResult.Violations.
func RunGateway(ctx context.Context, opts GatewayOptions) (GatewayResult, error) {
	opts.setDefaults()
	res := GatewayResult{Sessions: opts.Sessions}

	lc, err := gateway.StartLocal(gateway.LocalOptions{
		Replicas: opts.Replicas,
		ServeOptions: func(int) serve.Options {
			return serve.Options{Scheduler: opts.Scheduler}
		},
		Gateway: gateway.Options{
			Health: gateway.HealthConfig{
				ProbeInterval: 50 * time.Millisecond,
				ProbeTimeout:  time.Second,
				FailAfter:     2,
				EjectFor:      300 * time.Millisecond,
				RecoverAfter:  2,
			},
		},
	})
	if err != nil {
		return res, fmt.Errorf("gateway chaos: cluster: %w", err)
	}
	defer lc.Stop()
	logf := func(format string, args ...any) {
		if opts.Logf != nil {
			opts.Logf(format, args...)
		}
	}
	gc := client.New(lc.GatewayURL, nil)

	// Phase 1: open the live sessions and give each durable state; the last
	// piggybacked snapshot per session is the bit-identity reference.
	type liveSession struct {
		id      string
		payload []byte
		sum     uint64
	}
	sessions := make([]liveSession, 0, opts.Sessions)
	for i := 0; i < opts.Sessions; i++ {
		sres, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
		if err != nil {
			return res, fmt.Errorf("gateway chaos: session %d: %w", i, err)
		}
		var ls liveSession
		ls.id = sres.SessionID
		for j := 0; j < 2; j++ {
			resp, err := gc.Infer(ctx, serve.InferRequest{
				Network: opts.Network, Seed: opts.Seed + int64(i*10+j),
				Session: ls.id, ReturnSnapshot: true,
			})
			if err != nil {
				return res, fmt.Errorf("gateway chaos: warm session %d: %w", i, err)
			}
			if resp.Snapshot == nil {
				return res, fmt.Errorf("gateway chaos: session %d infer returned no snapshot", i)
			}
			ls.payload = resp.Snapshot.Payload
			ls.sum = resp.OutputSum
		}
		sessions = append(sessions, ls)
	}

	// The victim is the replica homing the most sessions (ties break on
	// name) so the kill always exercises failover.
	homes := lc.Gateway.Locations()
	count := make(map[string]int)
	for _, ls := range sessions {
		count[homes[ls.id]]++
	}
	for name, n := range count {
		if name == "" {
			return res, fmt.Errorf("gateway chaos: %d sessions not vaulted", n)
		}
		if res.Victim == "" || n > count[res.Victim] || (n == count[res.Victim] && name < res.Victim) {
			res.Victim = name
		}
	}
	victimSessions := count[res.Victim]
	logf("gateway chaos: %d replicas, %d sessions (%d homed on victim %s)",
		opts.Replicas, len(sessions), victimSessions, res.Victim)

	// Phase 2: stateless open-loop traffic; the kill lands halfway through.
	trafficDone := make(chan struct{})
	var trafficErr error
	go func() {
		defer close(trafficDone)
		res.Traffic, trafficErr = loadgen.Run(ctx, gc, loadgen.Options{
			RPS: opts.RPS, Duration: opts.Duration, Network: opts.Network,
		})
	}()
	select {
	case <-time.After(opts.Duration / 2):
	case <-ctx.Done():
		return res, ctx.Err()
	}
	logf("gateway chaos: killing %s mid-traffic", res.Victim)
	lc.Kill(res.Victim)

	// Failover completes when no session calls the victim home anymore.
	moveDeadline := time.Now().Add(15 * time.Second)
	for {
		moved := 0
		homes = lc.Gateway.Locations()
		for _, ls := range sessions {
			if h := homes[ls.id]; h != "" && h != res.Victim {
				moved++
			}
		}
		if moved == len(sessions) {
			break
		}
		if time.Now().After(moveDeadline) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("failover incomplete: %d/%d sessions off the victim after 15s", moved, len(sessions)))
			break
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return res, ctx.Err()
		}
	}
	res.Moved = victimSessions
	<-trafficDone
	if trafficErr != nil {
		return res, fmt.Errorf("gateway chaos: traffic: %w", trafficErr)
	}

	// Phase 3: zero session loss, bit-identically. Every session's sealed
	// state on its survivor must equal the last payload its old home
	// acknowledged, and inference must continue with the replay window
	// advancing — never rewinding (a rewind would be a resurrected MAC
	// register fork, exactly what the liveness-checked failover prevents).
	for i, ls := range sessions {
		snap, err := gc.SnapshotSession(ctx, ls.id)
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("session %d lost after kill: %v", i, err))
			continue
		}
		if !bytes.Equal(snap.Snapshot.Payload, ls.payload) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("session %d state diverged across failover", i))
			continue
		}
		resp, err := gc.Infer(ctx, serve.InferRequest{
			Network: opts.Network, Seed: opts.Seed + 1000 + int64(i),
			Session: ls.id, ReturnSnapshot: true,
		})
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("session %d infer after failover: %v", i, err))
			continue
		}
		if resp.Commands == 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("session %d post-failover inference skipped the command channel", i))
		}
		if resp.Replica == res.Victim {
			res.Violations = append(res.Violations,
				fmt.Sprintf("session %d served by the dead replica %s", i, res.Victim))
		}
		if resp.Snapshot != nil && sealedSeq(resp.Snapshot.Payload) <= sealedSeq(ls.payload) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("session %d replay window rewound across failover", i))
		}
	}

	// Traffic invariant: the crash must be absorbed by the retry budget.
	if errs := res.Traffic.Sent - res.Traffic.OK - res.Traffic.Shed; errs > opts.MaxErrors {
		res.Violations = append(res.Violations,
			fmt.Sprintf("traffic: %d errors exceed budget %d (%v)", errs, opts.MaxErrors, res.Traffic.Errors))
	}
	if res.Traffic.OK == 0 {
		res.Violations = append(res.Violations, "traffic: nothing completed")
	}

	// The gateway's own evidence: the victim was ejected and the failovers
	// were counted and attributed.
	scrape, err := gc.Metrics(ctx)
	if err != nil {
		return res, fmt.Errorf("gateway chaos: final scrape: %w", err)
	}
	res.Ejections = metricValueLabeled(scrape, "seculator_gateway_replica_ejections_total",
		`replica="`+res.Victim+`"`)
	res.Failovers = metricValueLabeled(scrape, "seculator_gateway_migrations_total",
		`reason="failover"`)
	if res.Ejections < 1 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("victim %s never ejected (ejections=%v)", res.Victim, res.Ejections))
	}
	if res.Failovers < float64(victimSessions) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("failover migrations %v < victim sessions %d", res.Failovers, victimSessions))
	}
	if v := metricValueLabeled(scrape, "seculator_gateway_requests_total", `code="502"`); v > float64(opts.MaxErrors) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("gateway returned %v upstream 502s, budget %d", v, opts.MaxErrors))
	}
	logf("gateway chaos: done (%d violations)", len(res.Violations))
	return res, nil
}
