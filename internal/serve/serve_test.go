package serve_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seculator"
	"seculator/internal/mem"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// newTestServer brings up a server behind httptest and returns a typed
// client for it. Cleanup drains the scheduler before the listener dies.
func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *client.Client) {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		hs.Close()
	})
	return s, client.New(hs.URL, hs.Client())
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// The headline round-trip: a stateless secure inference over HTTP whose
// output checksum matches the local reference computation.
func TestInferRoundTrip(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	resp, err := c.Infer(ctxT(t), serve.InferRequest{Network: "Mini", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	net := serve.MiniNet()
	in, ws := seculator.RandomModel(net, 42)
	golden, err := seculator.ReferenceInference(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OutputSum != serve.OutputSum(golden) {
		t.Fatalf("served checksum %#x, reference %#x", resp.OutputSum, serve.OutputSum(golden))
	}
	if resp.Cycles == 0 || resp.Layers != len(net.Layers) || resp.BatchSize < 1 {
		t.Fatalf("response metadata: %+v", resp)
	}
	if resp.Commands != 0 {
		t.Fatalf("sessionless inference reported %d commands", resp.Commands)
	}
	if resp.OutputDims != [3]int{golden.Chans, golden.H, golden.W} {
		t.Fatalf("dims %v", resp.OutputDims)
	}
}

// A session-bound inference runs the authenticated command channel and the
// ReturnOutput flag round-trips the full tensor.
func TestSessionInferRoundTrip(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	ctx := ctxT(t)
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.SessionID == "" || sess.IdleTimeoutMs <= 0 {
		t.Fatalf("session grant: %+v", sess)
	}
	resp, err := c.Infer(ctx, serve.InferRequest{
		Network: "Mini", Seed: 7, Session: sess.SessionID, ReturnOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := serve.MiniNet()
	if resp.Commands != len(net.Layers) {
		t.Fatalf("%d commands for %d layers", resp.Commands, len(net.Layers))
	}
	in, ws := seculator.RandomModel(net, 7)
	golden, err := seculator.ReferenceInference(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Output) != len(golden.Data) {
		t.Fatalf("output length %d, want %d", len(resp.Output), len(golden.Data))
	}
	for i := range golden.Data {
		if resp.Output[i] != golden.Data[i] {
			t.Fatalf("output[%d] = %d, reference %d", i, resp.Output[i], golden.Data[i])
		}
	}
	// Close the session; reuse must then 404.
	if err := c.CloseSession(ctx, sess.SessionID); err != nil {
		t.Fatal(err)
	}
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 7, Session: sess.SessionID})
	if !client.IsUnknownSession(err) {
		t.Fatalf("inference on closed session: %v", err)
	}
}

// An explicit input override replaces the seed-generated activations.
func TestInferInputOverride(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	net := serve.MiniNet()
	in, ws := seculator.RandomModel(net, 3)
	for i := range in.Data {
		in.Data[i] = int32(i % 11)
	}
	golden, err := seculator.ReferenceInference(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Infer(ctxT(t), serve.InferRequest{Network: "Mini", Seed: 3, Input: in.Data})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OutputSum != serve.OutputSum(golden) {
		t.Fatal("override input did not reach the execution")
	}
	// Wrong length must be rejected up front.
	_, err = c.Infer(ctxT(t), serve.InferRequest{Network: "Mini", Seed: 3, Input: []int32{1, 2, 3}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input: %v", err)
	}
}

func TestInferBadRequests(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	var ae *client.APIError
	_, err := c.Infer(ctxT(t), serve.InferRequest{Network: "NoSuchNet"})
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest || ae.Body.Class != serve.ClassBadRequest {
		t.Fatalf("unknown network: %v", err)
	}
	_, err = c.Infer(ctxT(t), serve.InferRequest{Network: "Mini", Session: "s-deadbeef"})
	if !client.IsUnknownSession(err) {
		t.Fatalf("unknown session: %v", err)
	}
}

// Micro-batching over HTTP: concurrent requests for the same network share
// a batch.
func TestInferBatchesOverHTTP(t *testing.T) {
	_, c := newTestServer(t, serve.Options{
		Scheduler: serve.SchedulerConfig{Workers: 2, MaxBatch: 4, Linger: 50 * time.Millisecond, MaxQueue: 64},
	})
	ctx := ctxT(t)
	const n = 4
	var wg sync.WaitGroup
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i)})
			if err != nil {
				t.Errorf("infer %d: %v", i, err)
				return
			}
			sizes[i] = resp.BatchSize
		}()
	}
	wg.Wait()
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	if max < 2 {
		t.Fatalf("no micro-batch formed: batch sizes %v", sizes)
	}
}

// Sessions expire after their idle timeout and the janitor sweeps them.
func TestSessionIdleExpiry(t *testing.T) {
	_, c := newTestServer(t, serve.Options{SessionIdle: 30 * time.Millisecond})
	ctx := ctxT(t)
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Session: sess.SessionID})
	if !client.IsUnknownSession(err) {
		t.Fatalf("expired session still served: %v", err)
	}
}

func TestDesignsRegistry(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	resp, err := c.Designs(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Designs) != 6 {
		t.Fatalf("%d designs, want 6", len(resp.Designs))
	}
	names := map[string]bool{}
	for _, n := range resp.Networks {
		names[n.Name] = true
	}
	for _, want := range []string{"Mini", "MobileNet", "ResNet18", "AlexNet", "VGG16", "VGG19"} {
		if !names[want] {
			t.Fatalf("registry missing %s (have %v)", want, resp.Networks)
		}
	}
}

// /metrics carries the serving counters and the simulation-cache lines,
// and ResetSimCacheStats windows the cache counters without evicting.
func TestMetricsAndCacheWindowing(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	ctx := ctxT(t)
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`seculator_serve_requests_total{code="200"} 2`,
		"seculator_serve_infer_ok_total 2",
		"seculator_serve_batches_total",
		"seculator_serve_sim_cache_hits",
		"seculator_serve_sim_cache_misses",
		"seculator_serve_sim_cache_entries",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, m)
		}
	}

	// Window the cache counters: hits/misses reset, entries survive.
	seculator.ResetSimCacheStats()
	m, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "seculator_serve_sim_cache_hits 0\n") ||
		!strings.Contains(m, "seculator_serve_sim_cache_misses 0\n") {
		t.Fatalf("cache counters not windowed:\n%s", m)
	}
	if strings.Contains(m, "seculator_serve_sim_cache_entries 0\n") {
		t.Fatal("windowing evicted the cache entries")
	}
	// The warm entry serves the next request as a hit in the new window.
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 3}); err != nil {
		t.Fatal(err)
	}
	m, _ = c.Metrics(ctx)
	if !strings.Contains(m, "seculator_serve_sim_cache_hits 1\n") {
		t.Fatalf("windowed hit not counted:\n%s", m)
	}
}

// Queue-full admission control surfaces as 429 with Retry-After over HTTP.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	_, c := newTestServer(t, serve.Options{
		Scheduler: serve.SchedulerConfig{Workers: 1, MaxQueue: 1, MaxBatch: 1, Linger: 0},
		Hook: func(phase int, _ *mem.DRAM) {
			<-release
		},
	})
	defer once.Do(func() { close(release) })
	ctx := ctxT(t)

	first := make(chan error, 1)
	go func() {
		_, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1})
		first <- err
	}()
	waitForHealth(t, c, func(h serve.HealthResponse) bool { return h.Queue == 1 })

	_, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 2})
	if !client.IsQueueFull(err) {
		t.Fatalf("over-admission: %v, want queue_full", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests || ae.RetryAfter() <= 0 {
		t.Fatalf("429 shape: %v", err)
	}

	once.Do(func() { close(release) })
	if err := <-first; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
}

// A per-request deadline expiring under load surfaces as 503 with the
// deadline class and Retry-After.
func TestDeadline503(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	_, c := newTestServer(t, serve.Options{
		Scheduler: serve.SchedulerConfig{Workers: 1, MaxQueue: 8, MaxBatch: 1, Linger: 0},
		Hook: func(phase int, _ *mem.DRAM) {
			<-release
		},
	})
	defer once.Do(func() { close(release) })
	ctx := ctxT(t)

	first := make(chan error, 1)
	go func() {
		_, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1})
		first <- err
	}()
	waitForHealth(t, c, func(h serve.HealthResponse) bool { return h.Queue == 1 })

	_, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 2, TimeoutMs: 50})
	if !client.IsDeadline(err) {
		t.Fatalf("deadline expiry: %v, want deadline class", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable || ae.RetryAfter() <= 0 {
		t.Fatalf("503 shape: %v", err)
	}
	once.Do(func() { close(release) })
	if err := <-first; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
}

// Graceful drain over HTTP: Close finishes admitted work, healthz reports
// draining, and new inferences are rejected with the shutdown class.
func TestDrainOverHTTP(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, err := serve.New(serve.Options{
		Scheduler: serve.SchedulerConfig{Workers: 1, MaxQueue: 8, MaxBatch: 1, Linger: 0},
		Hook: func(phase int, _ *mem.DRAM) {
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := ctxT(t)
	defer once.Do(func() { close(release) })

	first := make(chan error, 1)
	go func() {
		_, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1})
		first <- err
	}()
	waitForHealth(t, c, func(h serve.HealthResponse) bool { return h.Queue == 1 })

	closed := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		closed <- s.Close(dctx)
	}()
	waitForHealth(t, c, func(h serve.HealthResponse) bool { return h.Status == "draining" })

	// New work is rejected while draining.
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 2})
	if !client.IsShutdown(err) {
		t.Fatalf("infer during drain: %v, want shutdown class", err)
	}
	// Close must not return while the admitted request is still executing.
	select {
	case err := <-closed:
		t.Fatalf("Close returned before drain finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	once.Do(func() { close(release) })
	if err := <-first; err != nil {
		t.Fatalf("admitted request dropped during drain: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func waitForHealth(t *testing.T, c *client.Client, cond func(serve.HealthResponse) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h, err := c.Health(context.Background())
		if err == nil && cond(h) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timed out waiting for health condition")
}

// Shrunk benchmarks serve end to end ("AlexNet/32" is small enough for a
// functional secure inference in test time).
func TestInferShrunkBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("functional inference on a shrunk benchmark")
	}
	_, c := newTestServer(t, serve.Options{})
	resp, err := c.Infer(ctxT(t), serve.InferRequest{Network: "AlexNet/32", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Network != "AlexNet/32" || resp.Cycles == 0 {
		t.Fatalf("shrunk inference: %+v", resp)
	}
}
