package client

import (
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// retry.go — capped exponential backoff with jitter for backpressure
// responses. The policy retries only rejections that re-sending an
// unchanged request can cure: 429 (queue full, rate limited) and 503
// (deadline, drain), optionally transport errors. It deliberately does NOT
// retry 451 quarantine refusals (the tenant is cut off for what its traffic
// did — hammering the breaker only keeps it open), 409 breaches (the
// session is evicted; re-sending can never succeed), or any 4xx request
// error. A server Retry-After hint, when longer than the computed backoff,
// wins: the server knows its own queue.

// RetryPolicy shapes the client's automatic retries. The zero value
// disables them.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (<=1 disables retries).
	MaxAttempts int
	// BaseDelay is the first backoff (default 50ms); each retry doubles it,
	// capped at MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the uniform ± fraction applied to each delay (default 0.2,
	// clamped to [0,1]).
	Jitter float64
	// Seed makes the jitter sequence deterministic for tests; 0 seeds from
	// BaseDelay (still deterministic, but distinct policies diverge).
	Seed int64
	// RetryTransport also retries transport-level failures (connection
	// refused, reset) — useful against a restarting server, wrong against
	// a non-idempotent API. The serving API's inference is a pure function
	// of the request, so the chaos harness turns this on.
	RetryTransport bool
}

func (p *RetryPolicy) setDefaults() {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
}

// retrier is the runtime state of a policy: the jitter source is shared
// across a client's concurrent requests, so it locks.
type retrier struct {
	policy RetryPolicy
	mu     *sync.Mutex
	rng    *rand.Rand
}

func newRetrier(p RetryPolicy) retrier {
	p.setDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = int64(p.BaseDelay)
	}
	return retrier{policy: p, mu: &sync.Mutex{}, rng: rand.New(rand.NewSource(seed))}
}

// next decides whether attempt's failure is retried and with what delay.
func (r retrier) next(attempt int, err error) (time.Duration, bool) {
	if attempt >= r.policy.MaxAttempts-1 || !retryable(err, r.policy.RetryTransport) {
		return 0, false
	}
	return r.delay(attempt, retryAfterHint(err)), true
}

// retryable classifies an error: 429/503 API rejections always, transport
// errors when asked, everything else never.
func retryable(err error, transport bool) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode == http.StatusTooManyRequests ||
			ae.StatusCode == http.StatusServiceUnavailable
	}
	return transport
}

// retryAfterHint extracts the server's Retry-After (zero if none).
func retryAfterHint(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter()
	}
	return 0
}

// delay computes the attempt's backoff: doubled base capped at max,
// jittered, floored at the server hint.
func (r retrier) delay(attempt int, hint time.Duration) time.Duration {
	d := r.policy.BaseDelay
	for i := 0; i < attempt && d < r.policy.MaxDelay; i++ {
		d *= 2
	}
	if d > r.policy.MaxDelay {
		d = r.policy.MaxDelay
	}
	r.mu.Lock()
	f := 1 + r.policy.Jitter*(2*r.rng.Float64()-1)
	r.mu.Unlock()
	d = time.Duration(float64(d) * f)
	if hint > d {
		d = hint
	}
	if d > r.policy.MaxDelay {
		d = r.policy.MaxDelay
	}
	return d
}
