package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"seculator/internal/serve"
)

// rejectNTimes serves count rejections with the given status/class, then
// succeeds with an empty health body.
func rejectNTimes(t *testing.T, count *atomic.Int64, status int, class string, retryAfterMs int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if count.Add(-1) >= 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(serve.ErrorBody{
				Error: "rejected", Class: class, RetryAfterMs: retryAfterMs,
			})
			return
		}
		_ = json.NewEncoder(w).Encode(serve.HealthResponse{Status: "ok"})
	}))
}

func TestRetrySucceedsAfterBackpressure(t *testing.T) {
	var rejects atomic.Int64
	rejects.Store(2)
	srv := rejectNTimes(t, &rejects, http.StatusTooManyRequests, serve.ClassQueueFull, 1)
	defer srv.Close()

	c := New(srv.URL, nil)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 1})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retries should have absorbed the 429s: %v", err)
	}
	if got := rejects.Load(); got != -1 {
		t.Fatalf("expected exactly one success after 2 rejects, counter=%d", got)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var rejects atomic.Int64
	rejects.Store(100)
	srv := rejectNTimes(t, &rejects, http.StatusServiceUnavailable, serve.ClassShutdown, 1)
	defer srv.Close()

	c := New(srv.URL, nil)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	_, err := c.Health(context.Background())
	if !IsShutdown(err) {
		t.Fatalf("want shutdown APIError after exhausting retries, got %v", err)
	}
	if tried := 100 - rejects.Load(); tried != 3 {
		t.Fatalf("want exactly MaxAttempts=3 tries, got %d", tried)
	}
}

func TestNoRetryOnQuarantineOpen(t *testing.T) {
	var rejects atomic.Int64
	rejects.Store(100)
	srv := rejectNTimes(t, &rejects, http.StatusUnavailableForLegalReasons, serve.ClassQuarantined, 1000)
	defer srv.Close()

	c := New(srv.URL, nil)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1})
	_, err := c.Health(context.Background())
	if !IsQuarantined(err) {
		t.Fatalf("want quarantined APIError, got %v", err)
	}
	if tried := 100 - rejects.Load(); tried != 1 {
		t.Fatalf("451 quarantine must not be retried, got %d tries", tried)
	}
}

func TestNoRetryOnBreach(t *testing.T) {
	var rejects atomic.Int64
	rejects.Store(100)
	srv := rejectNTimes(t, &rejects, http.StatusConflict, serve.ClassFreshness, 0)
	defer srv.Close()

	c := New(srv.URL, nil)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1})
	_, err := c.Health(context.Background())
	if !IsBreach(err) {
		t.Fatalf("want breach APIError, got %v", err)
	}
	if tried := 100 - rejects.Load(); tried != 1 {
		t.Fatalf("409 breach must not be retried, got %d tries", tried)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var rejects atomic.Int64
	rejects.Store(1)
	srv := rejectNTimes(t, &rejects, http.StatusTooManyRequests, serve.ClassRateLimited, 80)
	defer srv.Close()

	c := New(srv.URL, nil)
	// Tiny base delay: the only way the elapsed time reaches the hint is by
	// honoring Retry-After.
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 1})
	start := time.Now()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retry should succeed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("Retry-After 80ms not honored: elapsed %v", elapsed)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	var rejects atomic.Int64
	rejects.Store(100)
	srv := rejectNTimes(t, &rejects, http.StatusTooManyRequests, serve.ClassQueueFull, 5000)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := New(srv.URL, nil)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 10, BaseDelay: time.Second, Seed: 1})
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("want error after context cancel")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel should cut the backoff short, waited %v", elapsed)
	}
}

func TestRetryTransportErrors(t *testing.T) {
	// A server that is down: transport errors only.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	c := New(url, nil)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("want transport error")
	} else if errors.As(err, new(*APIError)) {
		t.Fatalf("transport failure should not surface as APIError: %v", err)
	}

	// Default policy: transport errors are not retried.
	r := newRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	if _, ok := r.next(0, errors.New("connection refused")); ok {
		t.Fatal("transport retry must be opt-in")
	}
	r = newRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, RetryTransport: true})
	if _, ok := r.next(0, errors.New("connection refused")); !ok {
		t.Fatal("RetryTransport should retry transport errors")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	r := newRetrier(RetryPolicy{
		MaxAttempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Jitter: 0.0001, Seed: 7,
	})
	var prev time.Duration
	for attempt := 0; attempt < 6; attempt++ {
		d := r.delay(attempt, 0)
		if attempt < 3 && d < prev {
			t.Fatalf("backoff should grow: attempt %d gave %v after %v", attempt, d, prev)
		}
		if d > 81*time.Millisecond {
			t.Fatalf("backoff above cap: %v", d)
		}
		prev = d
	}
}
