// Package client is the typed Go client of the serving API: it speaks the
// wire types of internal/serve and converts non-2xx responses into
// *APIError values that carry the machine-readable error class, the layer
// index of a security violation, and the server's Retry-After hint.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"seculator/internal/serve"
)

// APIError is a non-2xx response from the serving API.
type APIError struct {
	StatusCode int
	Body       serve.ErrorBody
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("serve API %d (%s): %s", e.StatusCode, e.Body.Class, e.Body.Error)
}

// RetryAfter returns the server's backoff hint (zero if none).
func (e *APIError) RetryAfter() time.Duration {
	return time.Duration(e.Body.RetryAfterMs) * time.Millisecond
}

// classIs reports whether err is an *APIError of the given class.
func classIs(err error, class string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Body.Class == class
}

// IsQueueFull reports 429 admission-control rejection.
func IsQueueFull(err error) bool { return classIs(err, serve.ClassQueueFull) }

// IsDeadline reports a 503 deadline expiry.
func IsDeadline(err error) bool { return classIs(err, serve.ClassDeadline) }

// IsShutdown reports a 503 drain rejection.
func IsShutdown(err error) bool { return classIs(err, serve.ClassShutdown) }

// IsBreach reports a 409 security violation (freshness, channel, or
// persistent integrity).
func IsBreach(err error) bool {
	return classIs(err, serve.ClassFreshness) || classIs(err, serve.ClassChannel) ||
		classIs(err, serve.ClassIntegrity)
}

// IsUnknownSession reports a 404 session lookup failure.
func IsUnknownSession(err error) bool { return classIs(err, serve.ClassUnknownSession) }

// IsUnauthorized reports a 401 API-key rejection.
func IsUnauthorized(err error) bool { return classIs(err, serve.ClassUnauthorized) }

// IsRateLimited reports a 429 tenant rate-limit rejection.
func IsRateLimited(err error) bool { return classIs(err, serve.ClassRateLimited) }

// IsQuarantined reports a 429/451 tenant-quarantine refusal.
func IsQuarantined(err error) bool { return classIs(err, serve.ClassQuarantined) }

// IsSnapshotRejected reports a 422 snapshot integrity rejection.
func IsSnapshotRejected(err error) bool { return classIs(err, serve.ClassSnapshot) }

// Client talks to one serving daemon.
type Client struct {
	base     string
	http     *http.Client
	apiKey   string
	adminKey string
	retry    retrier
}

// New creates a client for a base URL ("http://127.0.0.1:8080"). A nil
// httpClient uses http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// SetAPIKey attaches a tenant API key to every request (X-API-Key header).
// Call before issuing requests; not safe to change concurrently with them.
func (c *Client) SetAPIKey(key string) { c.apiKey = key }

// SetAdminKey attaches the replica admin key to every request (X-Admin-Key
// header) for the /admin/* migration surface. Call before issuing requests.
func (c *Client) SetAdminKey(key string) { c.adminKey = key }

// SetRetryPolicy enables automatic retries of backpressure rejections; see
// RetryPolicy. Call before issuing requests.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = newRetrier(p) }

// do issues a request through the retry policy and decodes the final
// response into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if c.retry.policy.MaxAttempts <= 1 {
		return c.doOnce(ctx, method, path, in, out)
	}
	var last error
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, in, out)
		if err == nil {
			return nil
		}
		last = err
		wait, ok := c.retry.next(attempt, err)
		if !ok {
			return last
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return last
		}
	}
}

// doOnce issues a single request attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	if c.adminKey != "" {
		req.Header.Set("X-Admin-Key", c.adminKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		ae := &APIError{StatusCode: resp.StatusCode}
		if jerr := json.Unmarshal(data, &ae.Body); jerr != nil || ae.Body.Error == "" {
			ae.Body.Error = strings.TrimSpace(string(data))
			if ae.Body.Class == "" {
				ae.Body.Class = "http"
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (serve.HealthResponse, error) {
	var out serve.HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Designs fetches the design/network registry.
func (c *Client) Designs(ctx context.Context) (serve.DesignsResponse, error) {
	var out serve.DesignsResponse
	err := c.do(ctx, http.MethodGet, "/v1/designs", nil, &out)
	return out, err
}

// CreateSession opens a secure session.
func (c *Client) CreateSession(ctx context.Context, req serve.SessionCreateRequest) (serve.SessionCreateResponse, error) {
	var out serve.SessionCreateResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out)
	return out, err
}

// CloseSession deletes a session.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Infer runs one secure inference.
func (c *Client) Infer(ctx context.Context, req serve.InferRequest) (serve.InferResponse, error) {
	var out serve.InferResponse
	err := c.do(ctx, http.MethodPost, "/v1/infer", req, &out)
	return out, err
}

// SnapshotSession exports a session as a sealed snapshot envelope.
func (c *Client) SnapshotSession(ctx context.Context, id string) (serve.SnapshotResponse, error) {
	var out serve.SnapshotResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/snapshot", nil, &out)
	return out, err
}

// RestoreSession imports a previously exported snapshot envelope.
func (c *Client) RestoreSession(ctx context.Context, env serve.SnapshotEnvelope) (serve.SessionCreateResponse, error) {
	var out serve.SessionCreateResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/restore", serve.RestoreRequest{Snapshot: env}, &out)
	return out, err
}

// Drain asks the replica to stop accepting new sessions while continuing
// to serve inference (POST /admin/drain) — the gateway's pre-drain hook.
func (c *Client) Drain(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/admin/drain", nil, nil)
}

// AdminSnapshot exports any tenant's session as a sealed envelope
// (GET /admin/sessions/{id}/snapshot) — the gateway migration path.
func (c *Client) AdminSnapshot(ctx context.Context, id string) (serve.SnapshotResponse, error) {
	var out serve.SnapshotResponse
	err := c.do(ctx, http.MethodGet, "/admin/sessions/"+id+"/snapshot", nil, &out)
	return out, err
}

// AdminRestore imports a sealed envelope regardless of tenant ownership
// (POST /admin/sessions/restore) — the gateway migration path.
func (c *Client) AdminRestore(ctx context.Context, env serve.SnapshotEnvelope) (serve.SessionCreateResponse, error) {
	var out serve.SessionCreateResponse
	err := c.do(ctx, http.MethodPost, "/admin/sessions/restore", serve.RestoreRequest{Snapshot: env}, &out)
	return out, err
}

// AdminEvict removes a session from the replica without tenant scoping
// (DELETE /admin/sessions/{id}) — the source side of a migration.
func (c *Client) AdminEvict(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/admin/sessions/"+id, nil, nil)
}

// Metrics fetches the raw /metrics text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: /metrics returned %d", resp.StatusCode)
	}
	return string(data), nil
}
