package serve

import "time"

// The JSON wire types of the serving API. The typed client
// (internal/serve/client) shares these; keep every field backward
// compatible — add, never repurpose.

// SessionCreateRequest opens a secure session (POST /v1/sessions). The
// server negotiates the session key; the client only ever sees the opaque
// session ID.
type SessionCreateRequest struct {
	// IdleTimeoutMs, when positive, requests a shorter idle expiry than the
	// server default. Requests above the server default are clamped.
	IdleTimeoutMs int64 `json:"idle_timeout_ms,omitempty"`
}

// SessionCreateResponse describes the issued session.
type SessionCreateResponse struct {
	SessionID     string    `json:"session_id"`
	IdleTimeoutMs int64     `json:"idle_timeout_ms"`
	ExpiresAt     time.Time `json:"expires_at"` // idle horizon; each use extends it
}

// InferRequest is one secure-inference order (POST /v1/infer).
type InferRequest struct {
	// Network names the model ("MobileNet", "ResNet18", …, or the serving
	// demo network "Mini"); see GET /v1/designs for the registry.
	Network string `json:"network"`
	// Seed deterministically generates the model weights and input
	// (nn.RandomModel), so a request is self-contained and repeatable.
	Seed int64 `json:"seed"`
	// Input, when non-empty, overrides the seed-generated input activations
	// (flat channel-major C*H*W int32 layout).
	Input []int32 `json:"input,omitempty"`
	// Session, when non-empty, binds the inference to a secure session:
	// the host issues one authenticated command per layer under the
	// session key before the functional execution.
	Session string `json:"session,omitempty"`
	// ReturnOutput asks for the full output tensor in the response
	// (otherwise only dimensions and a checksum are returned).
	ReturnOutput bool `json:"return_output,omitempty"`
	// TimeoutMs, when positive, sets the per-request deadline (queue wait
	// included); the server clamps it to its configured maximum.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// ReturnSnapshot, on a session-bound inference, asks the server to
	// piggyback the session's sealed post-inference snapshot on the
	// response. The replica-sharding gateway sets it so its write-through
	// session vault is updated atomically with every inference; ordinary
	// clients can ignore it.
	ReturnSnapshot bool `json:"return_snapshot,omitempty"`
}

// RecoveryInfo mirrors resilience.Stats on the wire.
type RecoveryInfo struct {
	Retries    int  `json:"retries"`
	Recovered  int  `json:"recovered"`
	Persistent int  `json:"persistent"`
	Breached   bool `json:"breached"`
}

// InferResponse is a completed secure inference.
type InferResponse struct {
	Network    string `json:"network"`
	Layers     int    `json:"layers"`
	OutputDims [3]int `json:"output_dims"` // channels, height, width
	// OutputSum is the FNV-1a checksum of the output tensor — enough for a
	// client to verify against a local reference run.
	OutputSum uint64  `json:"output_sum"`
	Output    []int32 `json:"output,omitempty"` // only with ReturnOutput

	// Cycles is the simulated NPU execution time of the model under the
	// Seculator design; Commands counts authenticated layer commands (zero
	// for sessionless requests, which skip the command channel).
	Cycles   uint64 `json:"cycles"`
	Commands int    `json:"commands"`

	// BatchSize is how many requests rode in this request's micro-batch.
	BatchSize int     `json:"batch_size"`
	QueueMs   float64 `json:"queue_ms"` // admission to execution start
	RunMs     float64 `json:"run_ms"`   // execution wall time

	// ResidencyHit reports that this inference attached to an
	// already-resident verified weight cache entry instead of
	// re-provisioning its weights.
	ResidencyHit bool `json:"residency_hit,omitempty"`

	Recovery RecoveryInfo `json:"recovery"`

	// Snapshot is the sealed post-inference session snapshot, present only
	// when the request set ReturnSnapshot on a session-bound inference.
	Snapshot *SnapshotEnvelope `json:"snapshot,omitempty"`
	// Replica is the name of the replica that served the request. The
	// gateway injects it on proxied responses; a standalone server leaves
	// it empty.
	Replica string `json:"replica,omitempty"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// Class is the machine-readable error class; see the error→status
	// table in DESIGN.md §9: bad_request, config, unknown_session,
	// queue_full, deadline, shutdown, integrity, freshness, channel,
	// internal, unauthorized, rate_limited, quarantined,
	// snapshot_integrity, session_exists.
	Class string `json:"class"`
	// Layer carries the layer index of a security violation when the
	// typed error localized one.
	Layer *int `json:"layer,omitempty"`
	// RetryAfterMs accompanies 429/503 backpressure responses.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// SessionEvicted reports that the offending session was evicted
	// (breach latched server-side); the client must open a new session.
	SessionEvicted bool `json:"session_evicted,omitempty"`
}

// SnapshotEnvelope is an integrity-sealed session snapshot
// (GET /v1/sessions/{id}/snapshot response, POST /v1/sessions/restore
// request body). Payload is the serialized session state; MAC is
// hex(HMAC-SHA256) over the domain-separated version and payload under the
// server's snapshot key. Clients treat the envelope as opaque: any
// modification makes the import fail with class snapshot_integrity.
type SnapshotEnvelope struct {
	Version int    `json:"version"`
	Payload []byte `json:"payload"` // base64 on the wire (encoding/json default)
	MAC     string `json:"mac"`
}

// SnapshotResponse wraps the exported envelope with its session identity.
type SnapshotResponse struct {
	SessionID string           `json:"session_id"`
	Snapshot  SnapshotEnvelope `json:"snapshot"`
}

// RestoreRequest imports a previously exported snapshot
// (POST /v1/sessions/restore).
type RestoreRequest struct {
	Snapshot SnapshotEnvelope `json:"snapshot"`
}

// DesignInfo is one protection design of the registry (the Table 5 row).
type DesignInfo struct {
	Name          string `json:"name"`
	Encryption    string `json:"encryption,omitempty"`
	Integrity     string `json:"integrity,omitempty"`
	AntiReplay    string `json:"anti_replay,omitempty"`
	MEAProtection bool   `json:"mea_protection,omitempty"`
}

// NetworkInfo is one servable network of the registry.
type NetworkInfo struct {
	Name   string `json:"name"`
	Layers int    `json:"layers"`
	Params int64  `json:"params"`
	MACs   int64  `json:"macs"`
}

// DesignsResponse is GET /v1/designs: what the server can run.
type DesignsResponse struct {
	Designs  []DesignInfo  `json:"designs"`
	Networks []NetworkInfo `json:"networks"`
}

// HealthResponse is GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	Sessions int    `json:"sessions"`
	Queue    int    `json:"queue"`
}
