// Package loadgen drives the serving layer at a target request rate and
// reports the latency distribution — the serving-performance counterpart
// of the microbenchmark trajectory in BENCH_baseline.json.
//
// The generator is open-loop: arrivals fire on a fixed schedule regardless
// of completions (the "millions of users" shape — users do not wait for
// each other), with a concurrency cap as the safety valve. Requests that
// would exceed the cap are counted as shed rather than silently delaying
// the schedule, so overload shows up in the report instead of bending the
// arrival process.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// Inferer is the request sink: the typed client satisfies it, and tests
// can drive a server in-process through it.
type Inferer interface {
	Infer(ctx context.Context, req serve.InferRequest) (serve.InferResponse, error)
}

// Options shapes a load run.
type Options struct {
	// RPS is the target arrival rate (default 50).
	RPS float64
	// Duration is how long to generate load (default 3s).
	Duration time.Duration
	// Concurrency caps in-flight requests (default 4x RPS, min 8);
	// arrivals beyond it are shed and counted.
	Concurrency int
	// Network names the model every request runs (default "Mini").
	Network string
	// Sessions, when true, opens one secure session per worker slot and
	// binds its requests to it — the command channel joins the measured
	// path.
	Sessions bool
	// TimeoutMs is the per-request deadline sent to the server (0 uses
	// the server default).
	TimeoutMs int64
	// FixedModel pins every request to one model (ModelSeed) and varies
	// the activation input instead — the production serving shape, where
	// the server's residency cache verifies and pins the weights once and
	// every later request attaches. Without it, seeds vary per request
	// (seed = request index): a distinct model per request, the
	// residency-hostile worst case.
	FixedModel bool
	// ModelSeed is the pinned model under FixedModel.
	ModelSeed int64

	// Seed makes the whole arrival/think-time process reproducible: the
	// inter-arrival gaps (under Poisson), the per-request model seeds, and
	// therefore the entire request schedule derive from it. Two runs with
	// the same options produce the identical Schedule. Zero keeps the
	// legacy shape: uniform spacing with sequential request seeds 1, 2, …
	Seed int64
	// Poisson draws exponential (memoryless) inter-arrival gaps with mean
	// 1/RPS instead of uniform spacing — the open-loop arrival process the
	// workload scenario curves are built from. The gap sequence is seeded
	// by Seed, so it is reproducible run to run.
	Poisson bool
	// SessionEvery, with Sessions, rotates to a freshly created session
	// every N arrivals — session-churn traffic, where session setup joins
	// the steady-state path. Replaced sessions are left to idle expiry so
	// in-flight requests on them still complete. Zero keeps one session
	// for the whole run.
	SessionEvery int
	// KeepSamples retains the sorted OK latency samples on the report, so
	// callers merging several concurrent streams (the workload scenario
	// runner) can compute exact cross-stream percentiles.
	KeepSamples bool
}

func (o *Options) setDefaults() {
	if o.RPS <= 0 {
		o.RPS = 50
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = int(4 * o.RPS)
		if o.Concurrency < 8 {
			o.Concurrency = 8
		}
	}
	if o.Network == "" {
		o.Network = "Mini"
	}
}

// Report is the outcome of a load run.
type Report struct {
	Sent, OK, Shed int
	Errors         map[string]int // error class (or "transport") -> count
	Elapsed        time.Duration
	AchievedRPS    float64 // completed OK per second of run time
	P50, P95, P99  time.Duration
	Max            time.Duration
	MeanBatch      float64 // mean server-reported batch size over OK requests
	ResidencyHits  int     // OK requests that rode the server's pinned weights
	SessionsOpened int     // sessions created (initial + churn rotations)

	// Samples holds the sorted OK latencies when Options.KeepSamples was
	// set; nil otherwise.
	Samples []time.Duration

	// ByReplica attributes completed requests to the replica that served
	// them. Populated only when the target is a gateway (which stamps
	// InferResponse.Replica); direct single-replica runs leave it empty.
	ByReplica map[string]ReplicaStats

	// GC is the process-wide memory churn over the run window
	// (runtime.ReadMemStats deltas). For in-process targets it covers the
	// full server hot path; against a remote -target it measures only the
	// generator's own side, which is still the regression signal the
	// zero-allocation serving work watches.
	GC GCStats
}

// GCStats is the allocation/collector activity attributable to a run.
type GCStats struct {
	Mallocs    uint64        // heap objects allocated during the run
	AllocBytes uint64        // bytes allocated during the run
	Cycles     uint32        // GC cycles completed during the run
	PauseTotal time.Duration // stop-the-world pause time accumulated
}

// perThousand normalizes a per-run counter to per-1000-requests so runs of
// different lengths compare directly.
func perThousand(v uint64, requests int) float64 {
	if requests == 0 {
		return 0
	}
	return float64(v) * 1000 / float64(requests)
}

// ReplicaStats is one replica's slice of a gateway load run.
type ReplicaStats struct {
	OK            int
	P50, P95, P99 time.Duration
}

// String renders the report for humans.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d sent, %d ok, %d shed, %d errors in %v\n",
		r.Sent, r.OK, r.Shed, r.Sent-r.OK-r.Shed, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput: %.1f req/s sustained\n", r.AchievedRPS)
	fmt.Fprintf(&b, "  latency: p50 %v  p95 %v  p99 %v  max %v\n",
		r.P50.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond),
		r.P99.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond))
	fmt.Fprintf(&b, "  batching: mean batch size %.2f\n", r.MeanBatch)
	if r.Sent > 0 {
		fmt.Fprintf(&b, "  gc: %.0f allocs / %.0f KiB per 1k requests, %d cycles (%.2f per 1k), pause total %v\n",
			perThousand(r.GC.Mallocs, r.Sent), perThousand(r.GC.AllocBytes, r.Sent)/1024,
			r.GC.Cycles, perThousand(uint64(r.GC.Cycles), r.Sent),
			r.GC.PauseTotal.Round(10*time.Microsecond))
	}
	if r.ResidencyHits > 0 {
		fmt.Fprintf(&b, "  residency: %d/%d hits\n", r.ResidencyHits, r.OK)
	}
	if len(r.ByReplica) > 0 {
		names := make([]string, 0, len(r.ByReplica))
		for n := range r.ByReplica {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rs := r.ByReplica[n]
			fmt.Fprintf(&b, "  replica %s: %d ok  p50 %v  p95 %v  p99 %v\n", n, rs.OK,
				rs.P50.Round(10*time.Microsecond), rs.P95.Round(10*time.Microsecond),
				rs.P99.Round(10*time.Microsecond))
		}
	}
	if len(r.Errors) > 0 {
		classes := make([]string, 0, len(r.Errors))
		for c := range r.Errors {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(&b, "  errors:")
		for _, c := range classes {
			fmt.Fprintf(&b, " %s=%d", c, r.Errors[c])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Arrival is one scheduled request: its offset from the run start and the
// model seed it carries (the input seed under FixedModel).
type Arrival struct {
	At   time.Duration
	Seed int64
}

// Schedule derives the request schedule from the options, deterministically:
// the same options (Seed included) always produce the identical arrival
// sequence, which is what makes workload runs reproducible and diffable.
// Constant arrivals space uniformly at 1/RPS; Poisson draws exponential
// gaps with the same mean from the seeded generator. Per-request seeds are
// sequential (1, 2, …) when Seed is zero — the legacy loadgen shape — and
// drawn from the seeded generator otherwise, so distinct Seeds also offer
// distinct model populations.
func Schedule(opts Options) []Arrival {
	opts.setDefaults()
	interval := time.Duration(float64(time.Second) / opts.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var rng *rand.Rand
	if opts.Seed != 0 || opts.Poisson {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	sched := make([]Arrival, 0, int(opts.Duration/interval)+1)
	at := time.Duration(0)
	for i := 0; ; i++ {
		gap := interval
		if opts.Poisson {
			gap = time.Duration(rng.ExpFloat64() * float64(interval))
			if gap < time.Nanosecond {
				gap = time.Nanosecond
			}
		}
		at += gap
		if at > opts.Duration {
			break
		}
		seed := int64(i) + 1
		if opts.Seed != 0 {
			seed = rng.Int63()
		}
		sched = append(sched, Arrival{At: at, Seed: seed})
	}
	return sched
}

// Run drives target at the configured rate until the duration elapses or
// ctx is cancelled, then waits for in-flight requests and reports.
func Run(ctx context.Context, target Inferer, opts Options) (Report, error) {
	opts.setDefaults()

	var (
		mu        sync.Mutex
		lats      []time.Duration
		byReplica = make(map[string][]time.Duration)
		batchSum  int
		rep       Report
		wg        sync.WaitGroup
		slots     = make(chan struct{}, opts.Concurrency)
		sessionID string
		inputLen  int
	)
	rep.Errors = make(map[string]int)

	if opts.FixedModel {
		net, err := serve.ResolveNetwork(opts.Network)
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: FixedModel: %w", err)
		}
		first := net.Layers[0]
		inputLen = first.C * first.H * first.W
	}

	var sessClient *client.Client
	if opts.Sessions {
		c, ok := target.(*client.Client)
		if !ok {
			return Report{}, fmt.Errorf("loadgen: Sessions requires a *client.Client target")
		}
		sessClient = c
		sres, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: opening session: %w", err)
		}
		sessionID = sres.SessionID
		rep.SessionsOpened = 1
	}

	// currentSession reads the live session id; rotate swaps in a fresh one
	// (session churn). Replaced sessions are abandoned to idle expiry so
	// requests already holding the old id still complete.
	var sessMu sync.Mutex
	currentSession := func() string {
		sessMu.Lock()
		defer sessMu.Unlock()
		return sessionID
	}
	rotate := func() {
		sres, err := sessClient.CreateSession(ctx, serve.SessionCreateRequest{})
		mu.Lock()
		if err != nil {
			rep.Errors["session-rotate"]++
			mu.Unlock()
			return
		}
		rep.SessionsOpened++
		mu.Unlock()
		sessMu.Lock()
		sessionID = sres.SessionID
		sessMu.Unlock()
	}

	sched := Schedule(opts)

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	start := time.Now()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()

arrivals:
	for i, a := range sched {
		// Open loop: fire at the scheduled offset; a generator running
		// behind fires immediately rather than bending the schedule.
		if wait := time.Until(start.Add(a.At)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break arrivals
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break arrivals
		}
		rep.Sent++
		if sessClient != nil && opts.SessionEvery > 0 && i > 0 && i%opts.SessionEvery == 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rotate()
			}()
		}
		select {
		case slots <- struct{}{}:
		default:
			rep.Shed++
			continue
		}
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-slots }()
			req := serve.InferRequest{
				Network:   opts.Network,
				Seed:      seed,
				Session:   currentSession(),
				TimeoutMs: opts.TimeoutMs,
			}
			if opts.FixedModel {
				req.Seed = opts.ModelSeed
				req.Input = varyInput(inputLen, seed)
			}
			t0 := time.Now()
			resp, err := target.Infer(ctx, req)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				var ae *client.APIError
				switch {
				case errors.As(err, &ae):
					rep.Errors[ae.Body.Class]++
				case ctx.Err() != nil:
					rep.Errors["canceled"]++
				default:
					rep.Errors["transport"]++
				}
				return
			}
			rep.OK++
			lats = append(lats, lat)
			if resp.Replica != "" {
				byReplica[resp.Replica] = append(byReplica[resp.Replica], lat)
			}
			batchSum += resp.BatchSize
			if resp.ResidencyHit {
				rep.ResidencyHits++
			}
		}(a.Seed)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	rep.GC = GCStats{
		Mallocs:    msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
		Cycles:     msAfter.NumGC - msBefore.NumGC,
		PauseTotal: time.Duration(msAfter.PauseTotalNs - msBefore.PauseTotalNs),
	}

	if rep.Elapsed > 0 {
		rep.AchievedRPS = float64(rep.OK) / rep.Elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50 = Percentile(lats, 0.50)
		rep.P95 = Percentile(lats, 0.95)
		rep.P99 = Percentile(lats, 0.99)
		rep.Max = lats[len(lats)-1]
		rep.MeanBatch = float64(batchSum) / float64(rep.OK)
		if opts.KeepSamples {
			rep.Samples = lats
		}
	}
	if len(byReplica) > 0 {
		rep.ByReplica = make(map[string]ReplicaStats, len(byReplica))
		for name, rl := range byReplica {
			sort.Slice(rl, func(i, j int) bool { return rl[i] < rl[j] })
			rep.ByReplica[name] = ReplicaStats{
				OK:  len(rl),
				P50: Percentile(rl, 0.50),
				P95: Percentile(rl, 0.95),
				P99: Percentile(rl, 0.99),
			}
		}
	}
	return rep, nil
}

// varyInput derives a deterministic per-request activation input: under
// FixedModel the model stays pinned while every request still computes on
// distinct data.
func varyInput(n int, seed int64) []int32 {
	in := make([]int32, n)
	x := uint64(seed)*2654435761 + 12345
	for i := range in {
		x = x*6364136223846793005 + 1442695040888963407
		in[i] = int32(x>>33)%257 - 128
	}
	return in
}

// Percentile returns the p-quantile of the ascending-sorted samples by the
// nearest-rank method: the smallest value with at least p of the sample at
// or below it, rank ⌈p·n⌉. The previous rounding formula read one rank low
// whenever p·n had a fraction under one half — on 99 samples p99 reported
// the 98th value instead of the maximum — which matters exactly in the
// small-sample per-phase reports the workload suite gates on. The epsilon
// absorbs float artifacts like 0.95·1000 = 950.0000000000001, which would
// otherwise ceil to rank 951.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
