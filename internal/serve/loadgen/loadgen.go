// Package loadgen drives the serving layer at a target request rate and
// reports the latency distribution — the serving-performance counterpart
// of the microbenchmark trajectory in BENCH_baseline.json.
//
// The generator is open-loop: arrivals fire on a fixed schedule regardless
// of completions (the "millions of users" shape — users do not wait for
// each other), with a concurrency cap as the safety valve. Requests that
// would exceed the cap are counted as shed rather than silently delaying
// the schedule, so overload shows up in the report instead of bending the
// arrival process.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// Inferer is the request sink: the typed client satisfies it, and tests
// can drive a server in-process through it.
type Inferer interface {
	Infer(ctx context.Context, req serve.InferRequest) (serve.InferResponse, error)
}

// Options shapes a load run.
type Options struct {
	// RPS is the target arrival rate (default 50).
	RPS float64
	// Duration is how long to generate load (default 3s).
	Duration time.Duration
	// Concurrency caps in-flight requests (default 4x RPS, min 8);
	// arrivals beyond it are shed and counted.
	Concurrency int
	// Network names the model every request runs (default "Mini").
	Network string
	// Sessions, when true, opens one secure session per worker slot and
	// binds its requests to it — the command channel joins the measured
	// path.
	Sessions bool
	// TimeoutMs is the per-request deadline sent to the server (0 uses
	// the server default).
	TimeoutMs int64
	// FixedModel pins every request to one model (ModelSeed) and varies
	// the activation input instead — the production serving shape, where
	// the server's residency cache verifies and pins the weights once and
	// every later request attaches. Without it, seeds vary per request
	// (seed = request index): a distinct model per request, the
	// residency-hostile worst case.
	FixedModel bool
	// ModelSeed is the pinned model under FixedModel.
	ModelSeed int64
}

func (o *Options) setDefaults() {
	if o.RPS <= 0 {
		o.RPS = 50
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = int(4 * o.RPS)
		if o.Concurrency < 8 {
			o.Concurrency = 8
		}
	}
	if o.Network == "" {
		o.Network = "Mini"
	}
}

// Report is the outcome of a load run.
type Report struct {
	Sent, OK, Shed int
	Errors         map[string]int // error class (or "transport") -> count
	Elapsed        time.Duration
	AchievedRPS    float64 // completed OK per second of run time
	P50, P95, P99  time.Duration
	Max            time.Duration
	MeanBatch      float64 // mean server-reported batch size over OK requests
	ResidencyHits  int     // OK requests that rode the server's pinned weights

	// ByReplica attributes completed requests to the replica that served
	// them. Populated only when the target is a gateway (which stamps
	// InferResponse.Replica); direct single-replica runs leave it empty.
	ByReplica map[string]ReplicaStats

	// GC is the process-wide memory churn over the run window
	// (runtime.ReadMemStats deltas). For in-process targets it covers the
	// full server hot path; against a remote -target it measures only the
	// generator's own side, which is still the regression signal the
	// zero-allocation serving work watches.
	GC GCStats
}

// GCStats is the allocation/collector activity attributable to a run.
type GCStats struct {
	Mallocs    uint64        // heap objects allocated during the run
	AllocBytes uint64        // bytes allocated during the run
	Cycles     uint32        // GC cycles completed during the run
	PauseTotal time.Duration // stop-the-world pause time accumulated
}

// perThousand normalizes a per-run counter to per-1000-requests so runs of
// different lengths compare directly.
func perThousand(v uint64, requests int) float64 {
	if requests == 0 {
		return 0
	}
	return float64(v) * 1000 / float64(requests)
}

// ReplicaStats is one replica's slice of a gateway load run.
type ReplicaStats struct {
	OK            int
	P50, P95, P99 time.Duration
}

// String renders the report for humans.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d sent, %d ok, %d shed, %d errors in %v\n",
		r.Sent, r.OK, r.Shed, r.Sent-r.OK-r.Shed, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput: %.1f req/s sustained\n", r.AchievedRPS)
	fmt.Fprintf(&b, "  latency: p50 %v  p95 %v  p99 %v  max %v\n",
		r.P50.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond),
		r.P99.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond))
	fmt.Fprintf(&b, "  batching: mean batch size %.2f\n", r.MeanBatch)
	if r.Sent > 0 {
		fmt.Fprintf(&b, "  gc: %.0f allocs / %.0f KiB per 1k requests, %d cycles (%.2f per 1k), pause total %v\n",
			perThousand(r.GC.Mallocs, r.Sent), perThousand(r.GC.AllocBytes, r.Sent)/1024,
			r.GC.Cycles, perThousand(uint64(r.GC.Cycles), r.Sent),
			r.GC.PauseTotal.Round(10*time.Microsecond))
	}
	if r.ResidencyHits > 0 {
		fmt.Fprintf(&b, "  residency: %d/%d hits\n", r.ResidencyHits, r.OK)
	}
	if len(r.ByReplica) > 0 {
		names := make([]string, 0, len(r.ByReplica))
		for n := range r.ByReplica {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rs := r.ByReplica[n]
			fmt.Fprintf(&b, "  replica %s: %d ok  p50 %v  p95 %v  p99 %v\n", n, rs.OK,
				rs.P50.Round(10*time.Microsecond), rs.P95.Round(10*time.Microsecond),
				rs.P99.Round(10*time.Microsecond))
		}
	}
	if len(r.Errors) > 0 {
		classes := make([]string, 0, len(r.Errors))
		for c := range r.Errors {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(&b, "  errors:")
		for _, c := range classes {
			fmt.Fprintf(&b, " %s=%d", c, r.Errors[c])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Run drives target at the configured rate until the duration elapses or
// ctx is cancelled, then waits for in-flight requests and reports.
func Run(ctx context.Context, target Inferer, opts Options) (Report, error) {
	opts.setDefaults()
	interval := time.Duration(float64(time.Second) / opts.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}

	var (
		mu        sync.Mutex
		lats      []time.Duration
		byReplica = make(map[string][]time.Duration)
		batchSum  int
		rep       Report
		wg        sync.WaitGroup
		slots     = make(chan struct{}, opts.Concurrency)
		sessionID string
		inputLen  int
	)
	rep.Errors = make(map[string]int)

	if opts.FixedModel {
		net, err := serve.ResolveNetwork(opts.Network)
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: FixedModel: %w", err)
		}
		first := net.Layers[0]
		inputLen = first.C * first.H * first.W
	}

	if opts.Sessions {
		c, ok := target.(*client.Client)
		if !ok {
			return Report{}, fmt.Errorf("loadgen: Sessions requires a *client.Client target")
		}
		sres, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: opening session: %w", err)
		}
		sessionID = sres.SessionID
	}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	start := time.Now()
	deadline := start.Add(opts.Duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	seed := int64(0)
arrivals:
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			break arrivals
		case <-ticker.C:
		}
		rep.Sent++
		seed++
		select {
		case slots <- struct{}{}:
		default:
			rep.Shed++
			continue
		}
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-slots }()
			req := serve.InferRequest{
				Network:   opts.Network,
				Seed:      seed,
				Session:   sessionID,
				TimeoutMs: opts.TimeoutMs,
			}
			if opts.FixedModel {
				req.Seed = opts.ModelSeed
				req.Input = varyInput(inputLen, seed)
			}
			t0 := time.Now()
			resp, err := target.Infer(ctx, req)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				var ae *client.APIError
				switch {
				case errors.As(err, &ae):
					rep.Errors[ae.Body.Class]++
				case ctx.Err() != nil:
					rep.Errors["canceled"]++
				default:
					rep.Errors["transport"]++
				}
				return
			}
			rep.OK++
			lats = append(lats, lat)
			if resp.Replica != "" {
				byReplica[resp.Replica] = append(byReplica[resp.Replica], lat)
			}
			batchSum += resp.BatchSize
			if resp.ResidencyHit {
				rep.ResidencyHits++
			}
		}(seed)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	rep.GC = GCStats{
		Mallocs:    msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
		Cycles:     msAfter.NumGC - msBefore.NumGC,
		PauseTotal: time.Duration(msAfter.PauseTotalNs - msBefore.PauseTotalNs),
	}

	if rep.Elapsed > 0 {
		rep.AchievedRPS = float64(rep.OK) / rep.Elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50 = percentile(lats, 0.50)
		rep.P95 = percentile(lats, 0.95)
		rep.P99 = percentile(lats, 0.99)
		rep.Max = lats[len(lats)-1]
		rep.MeanBatch = float64(batchSum) / float64(rep.OK)
	}
	if len(byReplica) > 0 {
		rep.ByReplica = make(map[string]ReplicaStats, len(byReplica))
		for name, rl := range byReplica {
			sort.Slice(rl, func(i, j int) bool { return rl[i] < rl[j] })
			rep.ByReplica[name] = ReplicaStats{
				OK:  len(rl),
				P50: percentile(rl, 0.50),
				P95: percentile(rl, 0.95),
				P99: percentile(rl, 0.99),
			}
		}
	}
	return rep, nil
}

// varyInput derives a deterministic per-request activation input: under
// FixedModel the model stays pinned while every request still computes on
// distinct data.
func varyInput(n int, seed int64) []int32 {
	in := make([]int32, n)
	x := uint64(seed)*2654435761 + 12345
	for i := range in {
		x = x*6364136223846793005 + 1442695040888963407
		in[i] = int32(x>>33)%257 - 128
	}
	return in
}

// percentile returns the p-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
