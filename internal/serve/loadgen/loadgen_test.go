package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
	"seculator/internal/serve/loadgen"
)

func newTarget(t *testing.T) *client.Client {
	t.Helper()
	s, err := serve.New(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Close(ctx)
		hs.Close()
	})
	return client.New(hs.URL, hs.Client())
}

// The load generator sustains a rate against a live server and reports a
// complete latency distribution.
func TestLoadgenReportsLatencyAndThroughput(t *testing.T) {
	c := newTarget(t)
	rep, err := loadgen.Run(context.Background(), c, loadgen.Options{
		RPS: 200, Duration: 500 * time.Millisecond, Network: "Mini",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.OK+rep.Shed+errCount(rep) != rep.Sent {
		t.Fatalf("accounting broken: %+v", rep)
	}
	if rep.P50 <= 0 || rep.P95 < rep.P50 || rep.P99 < rep.P95 || rep.Max < rep.P99 {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v max=%v", rep.P50, rep.P95, rep.P99, rep.Max)
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("throughput %v", rep.AchievedRPS)
	}
	out := rep.String()
	for _, want := range []string{"p50", "p95", "p99", "req/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// Session mode binds the whole run to one secure session.
func TestLoadgenSessions(t *testing.T) {
	c := newTarget(t)
	rep, err := loadgen.Run(context.Background(), c, loadgen.Options{
		RPS: 100, Duration: 300 * time.Millisecond, Network: "Mini", Sessions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatalf("no session traffic succeeded: %+v", rep)
	}
}

func errCount(r loadgen.Report) int {
	n := 0
	for _, v := range r.Errors {
		n += v
	}
	return n
}
