package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
	"seculator/internal/serve/loadgen"
)

func newTarget(t *testing.T) *client.Client {
	t.Helper()
	s, err := serve.New(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Close(ctx)
		hs.Close()
	})
	return client.New(hs.URL, hs.Client())
}

// The load generator sustains a rate against a live server and reports a
// complete latency distribution.
func TestLoadgenReportsLatencyAndThroughput(t *testing.T) {
	c := newTarget(t)
	rep, err := loadgen.Run(context.Background(), c, loadgen.Options{
		RPS: 200, Duration: 500 * time.Millisecond, Network: "Mini",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.OK+rep.Shed+errCount(rep) != rep.Sent {
		t.Fatalf("accounting broken: %+v", rep)
	}
	if rep.P50 <= 0 || rep.P95 < rep.P50 || rep.P99 < rep.P95 || rep.Max < rep.P99 {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v max=%v", rep.P50, rep.P95, rep.P99, rep.Max)
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("throughput %v", rep.AchievedRPS)
	}
	out := rep.String()
	for _, want := range []string{"p50", "p95", "p99", "req/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// Session mode binds the whole run to one secure session.
func TestLoadgenSessions(t *testing.T) {
	c := newTarget(t)
	rep, err := loadgen.Run(context.Background(), c, loadgen.Options{
		RPS: 100, Duration: 300 * time.Millisecond, Network: "Mini", Sessions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatalf("no session traffic succeeded: %+v", rep)
	}
}

func errCount(r loadgen.Report) int {
	n := 0
	for _, v := range r.Errors {
		n += v
	}
	return n
}

// Two schedules derived from the same seed are identical — arrival offsets
// and per-request model seeds both — so a workload run replays exactly.
// A different seed must produce a different schedule, and the legacy
// (unseeded, uniform) shape must stay sequentially seeded.
func TestScheduleReproducible(t *testing.T) {
	for _, poisson := range []bool{false, true} {
		opts := loadgen.Options{RPS: 500, Duration: time.Second, Seed: 42, Poisson: poisson}
		a := loadgen.Schedule(opts)
		b := loadgen.Schedule(opts)
		if len(a) == 0 {
			t.Fatalf("poisson=%v: empty schedule", poisson)
		}
		if len(a) != len(b) {
			t.Fatalf("poisson=%v: lengths differ: %d vs %d", poisson, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("poisson=%v: arrival %d differs: %+v vs %+v", poisson, i, a[i], b[i])
			}
		}

		opts.Seed = 43
		c := loadgen.Schedule(opts)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("poisson=%v: seeds 42 and 43 produced the identical schedule", poisson)
		}
	}

	legacy := loadgen.Schedule(loadgen.Options{RPS: 100, Duration: 100 * time.Millisecond})
	if len(legacy) == 0 {
		t.Fatal("legacy schedule empty")
	}
	for i, a := range legacy {
		if a.Seed != int64(i)+1 {
			t.Fatalf("legacy arrival %d has seed %d, want %d", i, a.Seed, i+1)
		}
		if want := time.Duration(i+1) * 10 * time.Millisecond; a.At != want {
			t.Fatalf("legacy arrival %d at %v, want %v", i, a.At, want)
		}
	}
}

// Poisson schedules keep the configured mean rate: the arrival count over
// a long window stays near RPS*Duration.
func TestSchedulePoissonRate(t *testing.T) {
	opts := loadgen.Options{RPS: 1000, Duration: 10 * time.Second, Seed: 7, Poisson: true}
	n := len(loadgen.Schedule(opts))
	if n < 9000 || n > 11000 {
		t.Fatalf("poisson schedule has %d arrivals for a 10000-mean window", n)
	}
}

// Nearest-rank percentiles at the sample sizes the per-phase workload
// reports actually see. Samples are 1ms..n ms so the expected quantile is
// just ceil(p*n) ms — in particular p99 of 99 samples is the maximum, which
// the old round-based index got wrong (it read the 98th).
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		n             int
		p50, p95, p99 int // expected rank (1-based)
	}{
		{1, 1, 1, 1},
		{3, 2, 3, 3},
		{99, 50, 95, 99},
		{100, 50, 95, 99},
		{1000, 500, 950, 990},
	}
	for _, tc := range cases {
		samples := make([]time.Duration, tc.n)
		for i := range samples {
			samples[i] = time.Duration(i+1) * time.Millisecond
		}
		for _, q := range []struct {
			p    float64
			rank int
		}{{0.50, tc.p50}, {0.95, tc.p95}, {0.99, tc.p99}} {
			got := loadgen.Percentile(samples, q.p)
			want := time.Duration(q.rank) * time.Millisecond
			if got != want {
				t.Errorf("n=%d p%.0f: got %v, want %v (rank %d)", tc.n, q.p*100, got, want, q.rank)
			}
		}
	}
	if got := loadgen.Percentile(nil, 0.99); got != 0 {
		t.Errorf("empty sample p99 = %v, want 0", got)
	}
}

// Session churn rotates to fresh sessions on schedule and the run still
// completes; the report carries the opened-session count.
func TestLoadgenSessionChurn(t *testing.T) {
	c := newTarget(t)
	rep, err := loadgen.Run(context.Background(), c, loadgen.Options{
		RPS: 100, Duration: 400 * time.Millisecond, Network: "Mini",
		Sessions: true, SessionEvery: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatalf("no churned-session traffic succeeded: %+v", rep)
	}
	if rep.SessionsOpened < 2 {
		t.Fatalf("expected session rotations, got %d opened", rep.SessionsOpened)
	}
	if rep.Errors["session-rotate"] > 0 {
		t.Fatalf("session rotations failed: %+v", rep.Errors)
	}
}

// KeepSamples retains the full sorted latency sample for cross-stream
// percentile merging.
func TestLoadgenKeepSamples(t *testing.T) {
	c := newTarget(t)
	rep, err := loadgen.Run(context.Background(), c, loadgen.Options{
		RPS: 200, Duration: 300 * time.Millisecond, Network: "Mini", KeepSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) != rep.OK {
		t.Fatalf("kept %d samples for %d OK requests", len(rep.Samples), rep.OK)
	}
	for i := 1; i < len(rep.Samples); i++ {
		if rep.Samples[i] < rep.Samples[i-1] {
			t.Fatalf("samples not sorted at %d", i)
		}
	}
	if rep.P99 != loadgen.Percentile(rep.Samples, 0.99) {
		t.Fatalf("report p99 %v disagrees with Percentile over its own samples", rep.P99)
	}
}
