package serve_test

import (
	"fmt"
	"sync"
	"testing"

	"seculator"
	"seculator/internal/serve"
	"seculator/internal/workload"
)

// pool_hammer_test.go — the serving tier's view of run-state pooling. The
// secure package's conformance oracle proves sequential reuse is clean;
// this hammer drives one server with concurrent HTTP requests across
// different networks and seeds, so pooled runtimes are acquired, scrubbed,
// and re-acquired under real contention (scheduler batching, residency
// cache, JSON arenas all live). Run it under -race: the pooled slabs, the
// preload hand-off, and the serve-layer buffer pools are all in play.
// Functionally, every response checksum must match the per-(network, seed)
// reference computation — a dirty pooled state anywhere in the stack shows
// up as a checksum mismatch.

func TestServePoolHammer(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})

	type caseKey struct {
		network string
		seed    int64
	}
	cases := []caseKey{
		{"Mini", 1}, {"Mini", 2}, {"Mini/2", 1}, {"Mini/2", 5}, {"Mini", 99},
	}
	goldens := make(map[caseKey]uint64, len(cases))
	for _, ck := range cases {
		net, err := serve.ResolveNetwork(ck.network)
		if err != nil {
			t.Fatal(err)
		}
		goldens[ck] = referenceSum(t, net, ck.seed)
	}

	const goroutines = 8
	iters := 6
	if testing.Short() {
		iters = 2
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				ck := cases[(g+it)%len(cases)]
				resp, err := c.Infer(ctxT(t), serve.InferRequest{Network: ck.network, Seed: ck.seed})
				if err != nil {
					errc <- fmt.Errorf("g%d it%d %s/%d: %v", g, it, ck.network, ck.seed, err)
					return
				}
				if resp.OutputSum != goldens[ck] {
					errc <- fmt.Errorf("g%d it%d %s/%d: checksum %#x, reference %#x — pooled state leaked across requests",
						g, it, ck.network, ck.seed, resp.OutputSum, goldens[ck])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func referenceSum(t *testing.T, net workload.Network, seed int64) uint64 {
	t.Helper()
	in, ws := seculator.RandomModel(net, seed)
	golden, err := seculator.ReferenceInference(net, in, ws)
	if err != nil {
		t.Fatal(err)
	}
	return serve.OutputSum(golden)
}
