package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"seculator/internal/protect"
)

// Session-store lookup failures; the HTTP layer maps ErrSessionUnknown to
// 404 with the unknown_session class (an evicted or expired session is
// indistinguishable from one that never existed — no oracle for attackers
// probing IDs, and none for probing other tenants' sessions either), and
// ErrSessionExists to 409 on a snapshot import colliding with a live ID.
var (
	ErrSessionUnknown = errors.New("serve: unknown or expired session")
	ErrSessionExists  = errors.New("serve: session id already exists")
)

// Eviction reasons, reported on /metrics.
const (
	EvictIdle    = "idle"
	EvictBreach  = "breach"
	EvictClose   = "close"
	EvictMigrate = "migrate" // source side of a gateway-driven migration
)

// sessionKeyBytes is the negotiated session-key length. The command
// channel's HMAC-SHA256 takes any length; 32 bytes matches the hash.
const sessionKeyBytes = 32

// session is one issued secure session: the key the host controller and
// NPU endpoint share, the tenant that owns it, its idle horizon, and the
// durable security state that survives snapshot/restore — the command
// channel's last sequence number (so replay protection spans the session's
// whole life) and the XOR-MAC registers observed at the end of its last
// inference (the architectural state a migrated session must reproduce
// bit-identically).
type session struct {
	id      string
	tenant  string
	key     [sessionKeyBytes]byte
	idle    time.Duration
	expires time.Time

	lastSeq  uint64 // channel sequence of the last successful inference
	infers   uint64 // successful inferences under this session
	haveRegs bool
	regs     protect.RegisterState // final MAC registers of the last inference
	lastSum  uint64                // OutputSum of the last inference
}

// SessionGrant is what Acquire hands an inference: the session key and the
// channel continuation point.
type SessionGrant struct {
	Key     []byte
	BaseSeq uint64
}

// SessionManager issues and tracks secure sessions. Sessions expire after
// an idle period (each use extends the horizon) and are evicted immediately
// when an inference under their key latches a security breach — the
// serving-layer analogue of Figure 6's "security breach → reboot": the
// session key is dead, the client must negotiate a new one.
type SessionManager struct {
	mu       sync.Mutex
	m        map[string]*session
	idle     time.Duration
	now      func() time.Time // injectable for tests
	created  uint64
	restored uint64
	evicted  map[string]uint64 // reason -> count
}

// NewSessionManager creates a store with the given default idle timeout.
func NewSessionManager(idle time.Duration) *SessionManager {
	return &SessionManager{
		m:       make(map[string]*session),
		idle:    idle,
		now:     time.Now,
		evicted: make(map[string]uint64),
	}
}

// Create issues a new session owned by tenant. A positive idle below the
// server default shortens this session's expiry.
func (sm *SessionManager) Create(tenant string, idle time.Duration) (SessionCreateResponse, error) {
	s := &session{tenant: tenant, idle: sm.idle}
	if idle > 0 && idle < sm.idle {
		s.idle = idle
	}
	var idb [16]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return SessionCreateResponse{}, fmt.Errorf("serve: session id: %w", err)
	}
	if _, err := rand.Read(s.key[:]); err != nil {
		return SessionCreateResponse{}, fmt.Errorf("serve: session key: %w", err)
	}
	s.id = "s-" + hex.EncodeToString(idb[:])

	sm.mu.Lock()
	s.expires = sm.now().Add(s.idle)
	sm.m[s.id] = s
	sm.created++
	sm.mu.Unlock()
	return SessionCreateResponse{
		SessionID:     s.id,
		IdleTimeoutMs: s.idle.Milliseconds(),
		ExpiresAt:     s.expires,
	}, nil
}

// Acquire resolves a session ID to its grant and extends the idle horizon.
// A session owned by a different tenant resolves exactly like one that
// never existed. Expired sessions are evicted on touch.
func (sm *SessionManager) Acquire(id, tenant string) (SessionGrant, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, ok := sm.m[id]
	if !ok || s.tenant != tenant {
		return SessionGrant{}, ErrSessionUnknown
	}
	if sm.now().After(s.expires) {
		delete(sm.m, id)
		sm.evicted[EvictIdle]++
		return SessionGrant{}, ErrSessionUnknown
	}
	s.expires = sm.now().Add(s.idle)
	key := make([]byte, sessionKeyBytes)
	copy(key, s.key[:])
	return SessionGrant{Key: key, BaseSeq: s.lastSeq}, nil
}

// Commit records a successful inference's durable state: the channel
// sequence it finished at and the final MAC registers it observed.
// Concurrent inferences on one session serialize here; the last writer's
// state wins (sequence numbers only move forward).
func (sm *SessionManager) Commit(id string, lastSeq uint64, regs protect.RegisterState, haveRegs bool, outputSum uint64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, ok := sm.m[id]
	if !ok {
		return
	}
	if lastSeq > s.lastSeq {
		s.lastSeq = lastSeq
	}
	if haveRegs {
		s.regs = regs
		s.haveRegs = true
	}
	s.lastSum = outputSum
	s.infers++
}

// Evict removes a session (breach latch, explicit delete). It reports
// whether the session existed (and, when tenant is non-empty, belonged to
// that tenant).
func (sm *SessionManager) Evict(id, tenant, reason string) bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, ok := sm.m[id]
	if !ok || (tenant != "" && s.tenant != tenant) {
		return false
	}
	delete(sm.m, id)
	sm.evicted[reason]++
	return true
}

// Sweep evicts every expired session and returns how many it removed; the
// server's janitor calls it periodically so abandoned sessions don't pin
// memory until their next (never-coming) use.
func (sm *SessionManager) Sweep() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	now := sm.now()
	n := 0
	for id, s := range sm.m {
		if now.After(s.expires) {
			delete(sm.m, id)
			sm.evicted[EvictIdle]++
			n++
		}
	}
	return n
}

// Active returns the live session count.
func (sm *SessionManager) Active() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return len(sm.m)
}

// Counters returns (created, restored, evicted-by-reason) totals for
// /metrics.
func (sm *SessionManager) Counters() (uint64, uint64, map[string]uint64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	ev := make(map[string]uint64, len(sm.evicted))
	for k, v := range sm.evicted {
		ev[k] = v
	}
	return sm.created, sm.restored, ev
}

// export serializes a session's full durable state. Tenant-scoped like
// Acquire: a foreign session exports as unknown.
func (sm *SessionManager) export(id, tenant string) (snapshotPayload, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, ok := sm.m[id]
	if !ok || (tenant != "" && s.tenant != tenant) {
		return snapshotPayload{}, ErrSessionUnknown
	}
	if sm.now().After(s.expires) {
		delete(sm.m, id)
		sm.evicted[EvictIdle]++
		return snapshotPayload{}, ErrSessionUnknown
	}
	p := snapshotPayload{
		ID:      s.id,
		Tenant:  s.tenant,
		Key:     hex.EncodeToString(s.key[:]),
		IdleMs:  s.idle.Milliseconds(),
		LastSeq: s.lastSeq,
		Infers:  s.infers,
		LastSum: s.lastSum,
	}
	if s.haveRegs {
		p.Regs = encodeRegs(s.regs)
	}
	return p, nil
}

// exportAll snapshots every live session (server drain path).
func (sm *SessionManager) exportAll() []snapshotPayload {
	sm.mu.Lock()
	ids := make([][2]string, 0, len(sm.m))
	for id, s := range sm.m {
		ids = append(ids, [2]string{id, s.tenant})
	}
	sm.mu.Unlock()
	out := make([]snapshotPayload, 0, len(ids))
	for _, it := range ids {
		if p, err := sm.export(it[0], it[1]); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// importPayload rebuilds a session from a verified snapshot payload. The
// idle horizon restarts from now — a snapshot is a live hand-off, not a
// resurrection of long-dead state.
func (sm *SessionManager) importPayload(p snapshotPayload) (SessionCreateResponse, error) {
	keyBytes, err := hex.DecodeString(p.Key)
	if err != nil || len(keyBytes) != sessionKeyBytes {
		return SessionCreateResponse{}, fmt.Errorf("serve: snapshot key malformed")
	}
	s := &session{
		id:      p.ID,
		tenant:  p.Tenant,
		idle:    time.Duration(p.IdleMs) * time.Millisecond,
		lastSeq: p.LastSeq,
		infers:  p.Infers,
		lastSum: p.LastSum,
	}
	if s.idle <= 0 {
		s.idle = sm.idle
	}
	copy(s.key[:], keyBytes)
	if p.Regs != nil {
		regs, err := decodeRegs(p.Regs)
		if err != nil {
			return SessionCreateResponse{}, err
		}
		s.regs = regs
		s.haveRegs = true
	}

	sm.mu.Lock()
	defer sm.mu.Unlock()
	if _, dup := sm.m[s.id]; dup {
		return SessionCreateResponse{}, ErrSessionExists
	}
	s.expires = sm.now().Add(s.idle)
	sm.m[s.id] = s
	sm.restored++
	return SessionCreateResponse{
		SessionID:     s.id,
		IdleTimeoutMs: s.idle.Milliseconds(),
		ExpiresAt:     s.expires,
	}, nil
}
