package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Session-store lookup failures; the HTTP layer maps both to 404 with the
// unknown_session class (an evicted or expired session is indistinguishable
// from one that never existed — no oracle for attackers probing IDs).
var (
	ErrSessionUnknown = errors.New("serve: unknown or expired session")
)

// Eviction reasons, reported on /metrics.
const (
	EvictIdle   = "idle"
	EvictBreach = "breach"
	EvictClose  = "close"
)

// sessionKeyBytes is the negotiated session-key length. The command
// channel's HMAC-SHA256 takes any length; 32 bytes matches the hash.
const sessionKeyBytes = 32

// session is one issued secure session: the key the host controller and
// NPU endpoint share, and its idle horizon.
type session struct {
	id      string
	key     [sessionKeyBytes]byte
	idle    time.Duration
	expires time.Time
}

// SessionManager issues and tracks secure sessions. Sessions expire after
// an idle period (each use extends the horizon) and are evicted immediately
// when an inference under their key latches a security breach — the
// serving-layer analogue of Figure 6's "security breach → reboot": the
// session key is dead, the client must negotiate a new one.
type SessionManager struct {
	mu      sync.Mutex
	m       map[string]*session
	idle    time.Duration
	now     func() time.Time // injectable for tests
	created uint64
	evicted map[string]uint64 // reason -> count
}

// NewSessionManager creates a store with the given default idle timeout.
func NewSessionManager(idle time.Duration) *SessionManager {
	return &SessionManager{
		m:       make(map[string]*session),
		idle:    idle,
		now:     time.Now,
		evicted: make(map[string]uint64),
	}
}

// Create issues a new session. A positive idle below the server default
// shortens this session's expiry.
func (sm *SessionManager) Create(idle time.Duration) (SessionCreateResponse, error) {
	s := &session{idle: sm.idle}
	if idle > 0 && idle < sm.idle {
		s.idle = idle
	}
	var idb [16]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return SessionCreateResponse{}, fmt.Errorf("serve: session id: %w", err)
	}
	if _, err := rand.Read(s.key[:]); err != nil {
		return SessionCreateResponse{}, fmt.Errorf("serve: session key: %w", err)
	}
	s.id = "s-" + hex.EncodeToString(idb[:])

	sm.mu.Lock()
	s.expires = sm.now().Add(s.idle)
	sm.m[s.id] = s
	sm.created++
	sm.mu.Unlock()
	return SessionCreateResponse{
		SessionID:     s.id,
		IdleTimeoutMs: s.idle.Milliseconds(),
		ExpiresAt:     s.expires,
	}, nil
}

// Acquire resolves a session ID to its key and extends the idle horizon.
// Expired sessions are evicted on touch.
func (sm *SessionManager) Acquire(id string) ([]byte, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, ok := sm.m[id]
	if !ok {
		return nil, ErrSessionUnknown
	}
	if sm.now().After(s.expires) {
		delete(sm.m, id)
		sm.evicted[EvictIdle]++
		return nil, ErrSessionUnknown
	}
	s.expires = sm.now().Add(s.idle)
	key := make([]byte, sessionKeyBytes)
	copy(key, s.key[:])
	return key, nil
}

// Evict removes a session (breach latch, explicit delete). It reports
// whether the session existed.
func (sm *SessionManager) Evict(id, reason string) bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if _, ok := sm.m[id]; !ok {
		return false
	}
	delete(sm.m, id)
	sm.evicted[reason]++
	return true
}

// Sweep evicts every expired session and returns how many it removed; the
// server's janitor calls it periodically so abandoned sessions don't pin
// memory until their next (never-coming) use.
func (sm *SessionManager) Sweep() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	now := sm.now()
	n := 0
	for id, s := range sm.m {
		if now.After(s.expires) {
			delete(sm.m, id)
			sm.evicted[EvictIdle]++
			n++
		}
	}
	return n
}

// Active returns the live session count.
func (sm *SessionManager) Active() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return len(sm.m)
}

// Counters returns (created, evicted-by-reason) totals for /metrics.
func (sm *SessionManager) Counters() (uint64, map[string]uint64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	ev := make(map[string]uint64, len(sm.evicted))
	for k, v := range sm.evicted {
		ev[k] = v
	}
	return sm.created, ev
}
