package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"seculator/internal/parallel"
)

// The scheduler's admission-control errors; the HTTP layer maps them to
// 429 (queue full) and 503 (shutting down) with Retry-After.
var (
	ErrQueueFull    = errors.New("serve: admission queue full")
	ErrShuttingDown = errors.New("serve: shutting down")
)

// SchedulerConfig bounds the request scheduler.
type SchedulerConfig struct {
	// Workers is the batch-executor pool size (<= 0 means
	// parallel.Workers()).
	Workers int
	// MaxQueue bounds the total requests admitted but not yet finished
	// executing; submissions beyond it fail fast with ErrQueueFull.
	MaxQueue int
	// MaxBatch caps how many compatible requests one micro-batch carries;
	// a batch reaching it dispatches immediately.
	MaxBatch int
	// Linger is how long a forming batch waits for companions before it
	// dispatches anyway. Zero dispatches every request alone.
	Linger time.Duration
	// SerialBatches restores the pre-pipeline behavior: a batch's requests
	// run back to back on one pool worker instead of being layer-stage
	// pipelined across workers (see pipeline.go). The pipelined and serial
	// paths are bit-identical per request; this knob exists for A/B
	// benchmarking and as an escape hatch.
	SerialBatches bool
}

func (c *SchedulerConfig) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = parallel.Workers()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
}

// BatchInfo tells an executing request about the micro-batch it rode in.
type BatchInfo struct {
	Size   int           // requests in the batch
	Queued time.Duration // admission to execution start
	// Stage is the request's layer-pipeline gate, nil when the batch runs
	// serially (SerialBatches, or a pool-closed fallback). Tasks that
	// understand stages wait/publish on it; tasks that ignore it are still
	// correct — the scheduler finishes the gate when the task returns.
	Stage *StageGate
}

// Task is one unit of request work: it runs on a pool worker with the
// request's context and its batch's shape.
type Task func(ctx context.Context, b BatchInfo) (any, error)

// item is one admitted request waiting for (or in) execution.
type item struct {
	ctx      context.Context
	task     Task
	enqueued time.Time

	res  any
	err  error
	info BatchInfo
	done chan struct{}
}

// batch is a forming micro-batch: requests sharing a compatibility key
// that will execute together on one pool worker.
type batch struct {
	key   string
	items []*item
	timer *time.Timer
}

// batchPool recycles batch headers and their item-slice backing across
// dispatches — steady-state traffic forms and retires batches at request
// rate, so the slices live in a pool instead of the heap. Only the batch
// and its slice recycle; items are owned jointly by the executor and the
// submitting goroutine and stay garbage-collected.
var batchPool = sync.Pool{New: func() any { return new(batch) }}

// releaseBatch scrubs an executed batch and parks it. It serializes with
// the scheduler lock because a stale linger timer may still hold the batch
// pointer: its flush finds the batch already detached (pointer comparison
// under the same lock) and walks away, but only if the reset cannot race
// the read.
func (s *Scheduler) releaseBatch(b *batch) {
	s.mu.Lock()
	clear(b.items)
	*b = batch{items: b.items[:0]}
	s.mu.Unlock()
	batchPool.Put(b)
}

// Scheduler micro-batches compatible requests onto a persistent worker
// pool. Requests submitted under the same key within the linger window (or
// until MaxBatch) form one batch; each batch is one pool task, so the pool
// size bounds execution concurrency while the queue bound caps admitted
// work. Within a batch, requests execute sequentially — the batch is the
// scheduling unit, the pool provides the parallelism across batches.
type Scheduler struct {
	cfg  SchedulerConfig
	pool *parallel.Pool

	mu      sync.Mutex
	forming map[string]*batch
	depth   int // admitted, not yet delivered
	closed  bool

	// metrics hooks (nil-safe), set by the server
	onBatch func(size int)
}

// NewScheduler starts a scheduler and its worker pool.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	cfg.setDefaults()
	return &Scheduler{
		cfg:     cfg,
		pool:    parallel.NewPool(cfg.Workers),
		forming: make(map[string]*batch),
	}
}

// Depth returns the number of admitted requests not yet delivered.
func (s *Scheduler) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// Submit admits a request under a compatibility key and blocks until its
// batch executed it or its context expired. A context expiry while queued
// abandons the slot (the executor skips it); the returned error is then
// ctx.Err(). Admission failures (ErrQueueFull, ErrShuttingDown) return
// immediately.
func (s *Scheduler) Submit(ctx context.Context, key string, task Task) (any, BatchInfo, error) {
	it := &item{ctx: ctx, task: task, enqueued: time.Now(), done: make(chan struct{})}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, BatchInfo{}, ErrShuttingDown
	}
	if s.depth >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, BatchInfo{}, ErrQueueFull
	}
	s.depth++
	b, ok := s.forming[key]
	if !ok {
		b = batchPool.Get().(*batch)
		b.key = key
		s.forming[key] = b
		if s.cfg.Linger > 0 {
			b.timer = time.AfterFunc(s.cfg.Linger, func() { s.flush(b) })
		}
	}
	b.items = append(b.items, it)
	full := len(b.items) >= s.cfg.MaxBatch
	var dispatch *batch
	if full || s.cfg.Linger <= 0 {
		dispatch = s.detachLocked(b)
	}
	s.mu.Unlock()
	if dispatch != nil {
		s.dispatch(dispatch)
	}

	select {
	case <-it.done:
		return it.res, it.info, it.err
	case <-ctx.Done():
		// The slot stays admitted until the executor reaches and skips it;
		// that keeps depth accounting one-owner and race-free.
		return nil, BatchInfo{}, ctx.Err()
	}
}

// detachLocked removes a forming batch from the map (so new submissions
// start a fresh one) and stops its linger timer. Caller holds s.mu.
func (s *Scheduler) detachLocked(b *batch) *batch {
	cur, ok := s.forming[b.key]
	if !ok || cur != b {
		return nil // already detached by the timer or a full-batch dispatch
	}
	delete(s.forming, b.key)
	if b.timer != nil {
		b.timer.Stop()
	}
	return b
}

// flush is the linger-timer path: detach and dispatch.
func (s *Scheduler) flush(b *batch) {
	s.mu.Lock()
	d := s.detachLocked(b)
	s.mu.Unlock()
	if d != nil {
		s.dispatch(d)
	}
}

// dispatch hands a detached batch to the pool: pipelined by default (one
// pool task per item, chained by StageGates), or as one sequential task
// under SerialBatches. If the pool is already closed (shutdown race), the
// batch fails over to direct execution so no admitted request is ever
// dropped.
func (s *Scheduler) dispatch(b *batch) {
	if s.cfg.SerialBatches {
		if err := s.pool.Submit(func() { s.execute(b) }); err != nil {
			s.execute(b)
		}
		return
	}
	s.executePipelined(b)
}

// executePipelined submits each batch item as its own pool task, chained
// to its predecessor by a StageGate. Submission order is batch order, and
// the pool starts tasks in FIFO order, so every gate's predecessor is
// already running (or done) when the waiter starts — see pipeline.go for
// the deadlock-freedom argument. The per-item bookkeeping (context-expiry
// skip, depth decrement, done signal) matches execute exactly.
func (s *Scheduler) executePipelined(b *batch) {
	start := time.Now()
	size := 0
	for _, it := range b.items {
		if it.ctx.Err() == nil {
			size++
		}
	}
	if s.onBatch != nil && size > 0 {
		s.onBatch(size)
	}
	var prev *stageProgress
	for _, it := range b.items {
		it := it
		gate := &StageGate{prev: prev, self: newStageProgress()}
		prev = gate.self
		info := BatchInfo{Size: size, Queued: start.Sub(it.enqueued), Stage: gate}
		run := func() {
			defer gate.Finish()
			if err := it.ctx.Err(); err != nil {
				it.err = err
			} else {
				it.info = info
				it.res, it.err = it.task(it.ctx, info)
			}
			close(it.done)
			s.mu.Lock()
			s.depth--
			s.mu.Unlock()
		}
		if s.pool.Submit(run) != nil {
			// Pool closed mid-drain: run inline. Predecessors already ran to
			// completion on this goroutine, so every gate is open.
			run()
		}
	}
	s.releaseBatch(b)
}

// execute runs a batch: each live item in admission order, each under its
// own request context. Expired items are skipped and delivered their
// context error.
func (s *Scheduler) execute(b *batch) {
	start := time.Now()
	size := 0
	for _, it := range b.items {
		if it.ctx.Err() == nil {
			size++
		}
	}
	if s.onBatch != nil && size > 0 {
		s.onBatch(size)
	}
	for _, it := range b.items {
		info := BatchInfo{Size: size, Queued: start.Sub(it.enqueued)}
		if err := it.ctx.Err(); err != nil {
			it.err = err
		} else {
			it.info = info
			it.res, it.err = it.task(it.ctx, info)
		}
		close(it.done)
		s.mu.Lock()
		s.depth--
		s.mu.Unlock()
	}
	s.releaseBatch(b)
}

// Close drains the scheduler: forming batches dispatch immediately, new
// submissions fail with ErrShuttingDown, and Close returns once every
// admitted request has been delivered.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	var pending []*batch
	for _, b := range s.forming {
		if d := s.detachLocked(b); d != nil {
			pending = append(pending, d)
		}
	}
	s.mu.Unlock()
	for _, b := range pending {
		s.dispatch(b)
	}
	s.pool.Close()
}
