package serve_test

import (
	"errors"
	"testing"
	"time"

	"seculator/internal/resilience"
	"seculator/internal/serve"
)

// The breaker FSM under a hand-driven clock: throttle on the first breach,
// open on the third, escalate the hold on re-open, recover through
// half-open probes.
func TestBreakerStateMachine(t *testing.T) {
	b := serve.NewBreaker(serve.QuarantineConfig{
		ThrottleAfter: 1, OpenAfter: 3, Window: time.Minute,
		OpenFor: time.Second, MaxOpenFor: 8 * time.Second,
		ThrottleRPS: 1000, ThrottleBurst: 1000, ProbeSuccesses: 2,
	})
	now := time.Unix(1000, 0)

	// Closed admits freely.
	probe, err := b.Allow("t", now)
	if probe || err != nil {
		t.Fatalf("closed breaker: probe=%v err=%v", probe, err)
	}
	// First breach: throttled, still admitting (big probation bucket).
	if opened := b.Record(true, false, now); opened {
		t.Fatal("one breach must not open")
	}
	if st := b.State(); st != serve.BreakerThrottled {
		t.Fatalf("state %v, want throttled", st)
	}
	if _, err := b.Allow("t", now); err != nil {
		t.Fatalf("throttled probation should admit: %v", err)
	}
	// Second and third breach: opens.
	b.Record(true, false, now)
	if opened := b.Record(true, false, now); !opened {
		t.Fatal("third breach in window must open")
	}
	if st := b.State(); st != serve.BreakerOpen {
		t.Fatalf("state %v, want open", st)
	}
	// Open refuses with a Retry-After bounded by the hold.
	_, err = b.Allow("t", now)
	var qe *resilience.QuarantineError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 || qe.RetryAfter > time.Second {
		t.Fatalf("open refusal: %v", err)
	}
	// Before the hold expires: still refused.
	if _, err := b.Allow("t", now.Add(900*time.Millisecond)); err == nil {
		t.Fatal("hold not yet expired")
	}
	// After the hold: half-open, exactly one probe at a time.
	now = now.Add(1100 * time.Millisecond)
	probe, err = b.Allow("t", now)
	if !probe || err != nil {
		t.Fatalf("first half-open admission should be the probe: probe=%v err=%v", probe, err)
	}
	if _, err := b.Allow("t", now); err == nil {
		t.Fatal("second admission during an in-flight probe must refuse")
	}
	// The probe breaches: re-open with a doubled hold.
	if opened := b.Record(true, true, now); !opened {
		t.Fatal("probe breach must re-open")
	}
	if _, err := b.Allow("t", now.Add(1500*time.Millisecond)); err == nil {
		t.Fatal("escalated hold (2s) should still refuse at +1.5s")
	}
	now = now.Add(2100 * time.Millisecond)
	// Two clean probes close the breaker.
	for i := 0; i < 2; i++ {
		probe, err = b.Allow("t", now)
		if !probe || err != nil {
			t.Fatalf("probe %d: probe=%v err=%v", i, probe, err)
		}
		b.Record(false, probe, now)
		now = now.Add(10 * time.Millisecond)
	}
	if st := b.State(); st != serve.BreakerClosed {
		t.Fatalf("state %v after clean probes, want closed", st)
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	// Closing reset the escalation: a fresh open uses the base hold again.
	for i := 0; i < 3; i++ {
		b.Record(true, false, now)
	}
	_, err = b.Allow("t", now)
	if !errors.As(err, &qe) || qe.RetryAfter > time.Second {
		t.Fatalf("escalation not reset after close: %v", err)
	}
}

// The throttled probation bucket sheds above its own rate with a
// Retry-After, and the window draining clean closes the breaker.
func TestBreakerThrottleBucketAndWindow(t *testing.T) {
	b := serve.NewBreaker(serve.QuarantineConfig{
		ThrottleAfter: 1, OpenAfter: 10, Window: time.Second,
		ThrottleRPS: 1, ThrottleBurst: 1,
	})
	now := time.Unix(2000, 0)
	b.Record(true, false, now)
	if st := b.State(); st != serve.BreakerThrottled {
		t.Fatalf("state %v, want throttled", st)
	}
	if _, err := b.Allow("t", now); err != nil {
		t.Fatalf("burst token: %v", err)
	}
	_, err := b.Allow("t", now)
	var qe *resilience.QuarantineError
	if !errors.As(err, &qe) || qe.State != "throttled" || qe.RetryAfter <= 0 {
		t.Fatalf("empty probation bucket should refuse with Retry-After: %v", err)
	}
	// The breach ages out of the window: closed again, unlimited.
	now = now.Add(2 * time.Second)
	if _, err := b.Allow("t", now); err != nil {
		t.Fatalf("window drained, should be closed: %v", err)
	}
	if st := b.State(); st != serve.BreakerClosed {
		t.Fatalf("state %v after window drain, want closed", st)
	}
}

// Release frees an abandoned probe slot without counting a clean probe, so
// non-executing requests cannot close a breaker.
func TestBreakerProbeRelease(t *testing.T) {
	b := serve.NewBreaker(serve.QuarantineConfig{
		ThrottleAfter: 1, OpenAfter: 1, Window: time.Minute,
		OpenFor: time.Second, ProbeSuccesses: 1,
	})
	now := time.Unix(3000, 0)
	b.Record(true, false, now) // opens (OpenAfter: 1)
	now = now.Add(1100 * time.Millisecond)
	probe, err := b.Allow("t", now)
	if !probe || err != nil {
		t.Fatalf("want probe: %v", err)
	}
	b.Release(probe)
	if st := b.State(); st != serve.BreakerHalfOpen {
		t.Fatalf("release must not close: state %v", st)
	}
	// The slot is free again for a real probe.
	probe, err = b.Allow("t", now)
	if !probe || err != nil {
		t.Fatalf("slot not freed: %v", err)
	}
	b.Record(false, probe, now)
	if st := b.State(); st != serve.BreakerClosed {
		t.Fatalf("clean probe should close: state %v", st)
	}
}
