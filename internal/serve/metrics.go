package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"seculator/internal/runner"
)

// Metrics is the server's counter set, rendered Prometheus-style on
// GET /metrics. Everything is monotonic except the gauges (queue depth,
// active sessions) sampled at scrape time; the simulation-cache lines come
// from runner.CacheStats, which ResetSimCacheStats can window.
type Metrics struct {
	mu sync.Mutex

	requests   map[int]uint64 // HTTP status -> count (infer endpoint)
	batches    uint64
	batchItems uint64
	maxBatch   int

	inferOK    uint64
	latencySum time.Duration // successful inferences, admission to response
	queueSum   time.Duration

	tenantAdmitted map[string]uint64            // tenant -> admitted infers
	tenantShed     map[string]map[string]uint64 // tenant -> shed reason -> count
	tenantBreaches map[string]uint64            // tenant -> breach-class errors

	snapshotExports uint64
	restoreOK       uint64
	restoreRejected uint64

	residencyHits        uint64
	residencyMisses      uint64
	residencyReverifies  uint64
	residencyVerifyFails uint64
	residencyEvictions   uint64
	residentBytes        int64 // gauge: pinned ciphertext + pad bank footprint
}

// Shed reasons of the tenant admission path, as rendered on /metrics.
const (
	ShedRate       = "rate"       // token bucket empty
	ShedQueue      = "queue"      // global or per-tenant queue full
	ShedQuarantine = "quarantine" // breaker refused (throttled/open/half-open)
)

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:       make(map[int]uint64),
		tenantAdmitted: make(map[string]uint64),
		tenantShed:     make(map[string]map[string]uint64),
		tenantBreaches: make(map[string]uint64),
	}
}

// Request records one inference request's final status.
func (m *Metrics) Request(status int) {
	m.mu.Lock()
	m.requests[status]++
	m.mu.Unlock()
}

// Batch records a dispatched micro-batch of the given live size.
func (m *Metrics) Batch(size int) {
	m.mu.Lock()
	m.batches++
	m.batchItems += uint64(size)
	if size > m.maxBatch {
		m.maxBatch = size
	}
	m.mu.Unlock()
}

// Inference records one successful inference's latency split.
func (m *Metrics) Inference(total, queued time.Duration) {
	m.mu.Lock()
	m.inferOK++
	m.latencySum += total
	m.queueSum += queued
	m.mu.Unlock()
}

// TenantAdmitted records one request admitted past every tenant gate.
func (m *Metrics) TenantAdmitted(tenant string) {
	m.mu.Lock()
	m.tenantAdmitted[tenant]++
	m.mu.Unlock()
}

// TenantShed records one request refused at a tenant gate.
func (m *Metrics) TenantShed(tenant, reason string) {
	m.mu.Lock()
	byReason := m.tenantShed[tenant]
	if byReason == nil {
		byReason = make(map[string]uint64)
		m.tenantShed[tenant] = byReason
	}
	byReason[reason]++
	m.mu.Unlock()
}

// TenantBreach records one breach-class inference error attributed to a
// tenant.
func (m *Metrics) TenantBreach(tenant string) {
	m.mu.Lock()
	m.tenantBreaches[tenant]++
	m.mu.Unlock()
}

// SnapshotExport records one sealed session export.
func (m *Metrics) SnapshotExport() {
	m.mu.Lock()
	m.snapshotExports++
	m.mu.Unlock()
}

// SnapshotRestore records one import attempt's outcome.
func (m *Metrics) SnapshotRestore(ok bool) {
	m.mu.Lock()
	if ok {
		m.restoreOK++
	} else {
		m.restoreRejected++
	}
	m.mu.Unlock()
}

// ResidencyHit records one inference attached to an already-resident,
// in-epoch weight cache entry.
func (m *Metrics) ResidencyHit() {
	m.mu.Lock()
	m.residencyHits++
	m.mu.Unlock()
}

// ResidencyMiss records one first-touch residency build (including a
// rebuild after a failed epoch check).
func (m *Metrics) ResidencyMiss() {
	m.mu.Lock()
	m.residencyMisses++
	m.mu.Unlock()
}

// ResidencyReverify records one epoch re-verification of a resident entry
// (expiry or tenant invalidation); ok is false when the check detected
// corruption of the pinned state.
func (m *Metrics) ResidencyReverify(ok bool) {
	m.mu.Lock()
	m.residencyReverifies++
	if !ok {
		m.residencyVerifyFails++
	}
	m.mu.Unlock()
}

// ResidencyEviction records one entry evicted from the residency cache
// (capacity or corruption).
func (m *Metrics) ResidencyEviction() {
	m.mu.Lock()
	m.residencyEvictions++
	m.mu.Unlock()
}

// ResidencyBytes adjusts the resident-footprint gauge by delta.
func (m *Metrics) ResidencyBytes(delta int64) {
	m.mu.Lock()
	m.residentBytes += delta
	m.mu.Unlock()
}

// TenantStatus is the scrape-time breaker view of one tenant, sampled by
// the server (the metrics type stays free of tenant dependencies).
type TenantStatus struct {
	Name  string
	State BreakerState
	Opens uint64
}

// Render writes the scrape text. The gauges are passed in by the server so
// the metrics type stays free of scheduler/session dependencies.
func (m *Metrics) Render(queueDepth, sessionsActive int, sessionsCreated, sessionsRestored uint64, evicted map[string]uint64, tenants []TenantStatus) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	codes := make([]int, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "seculator_serve_requests_total{code=%q} %d\n", fmt.Sprint(c), m.requests[c])
	}
	fmt.Fprintf(&b, "seculator_serve_infer_ok_total %d\n", m.inferOK)
	fmt.Fprintf(&b, "seculator_serve_infer_latency_ms_total %.3f\n", float64(m.latencySum)/float64(time.Millisecond))
	fmt.Fprintf(&b, "seculator_serve_infer_queue_ms_total %.3f\n", float64(m.queueSum)/float64(time.Millisecond))
	fmt.Fprintf(&b, "seculator_serve_batches_total %d\n", m.batches)
	fmt.Fprintf(&b, "seculator_serve_batch_items_total %d\n", m.batchItems)
	fmt.Fprintf(&b, "seculator_serve_batch_max_size %d\n", m.maxBatch)
	fmt.Fprintf(&b, "seculator_serve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(&b, "seculator_serve_sessions_active %d\n", sessionsActive)
	fmt.Fprintf(&b, "seculator_serve_sessions_created_total %d\n", sessionsCreated)
	fmt.Fprintf(&b, "seculator_serve_sessions_restored_total %d\n", sessionsRestored)
	reasons := make([]string, 0, len(evicted))
	for r := range evicted {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, "seculator_serve_sessions_evicted_total{reason=%q} %d\n", r, evicted[r])
	}
	fmt.Fprintf(&b, "seculator_serve_snapshot_exports_total %d\n", m.snapshotExports)
	fmt.Fprintf(&b, "seculator_serve_snapshot_restored_total %d\n", m.restoreOK)
	fmt.Fprintf(&b, "seculator_serve_snapshot_rejected_total %d\n", m.restoreRejected)

	tnames := make([]string, 0, len(m.tenantAdmitted))
	for t := range m.tenantAdmitted {
		tnames = append(tnames, t)
	}
	sort.Strings(tnames)
	for _, t := range tnames {
		fmt.Fprintf(&b, "seculator_serve_tenant_admitted_total{tenant=%q} %d\n", t, m.tenantAdmitted[t])
	}
	tnames = tnames[:0]
	for t := range m.tenantShed {
		tnames = append(tnames, t)
	}
	sort.Strings(tnames)
	for _, t := range tnames {
		byReason := m.tenantShed[t]
		rs := make([]string, 0, len(byReason))
		for r := range byReason {
			rs = append(rs, r)
		}
		sort.Strings(rs)
		for _, r := range rs {
			fmt.Fprintf(&b, "seculator_serve_tenant_shed_total{tenant=%q,reason=%q} %d\n", t, r, byReason[r])
		}
	}
	tnames = tnames[:0]
	for t := range m.tenantBreaches {
		tnames = append(tnames, t)
	}
	sort.Strings(tnames)
	for _, t := range tnames {
		fmt.Fprintf(&b, "seculator_serve_tenant_breaches_total{tenant=%q} %d\n", t, m.tenantBreaches[t])
	}
	for _, ts := range tenants {
		fmt.Fprintf(&b, "seculator_serve_tenant_breaker_state{tenant=%q} %d\n", ts.Name, int(ts.State))
		fmt.Fprintf(&b, "seculator_serve_tenant_breaker_opens_total{tenant=%q} %d\n", ts.Name, ts.Opens)
	}
	fmt.Fprintf(&b, "seculator_serve_residency_hits_total %d\n", m.residencyHits)
	fmt.Fprintf(&b, "seculator_serve_residency_misses_total %d\n", m.residencyMisses)
	fmt.Fprintf(&b, "seculator_serve_residency_reverifies_total %d\n", m.residencyReverifies)
	fmt.Fprintf(&b, "seculator_serve_residency_verify_failures_total %d\n", m.residencyVerifyFails)
	fmt.Fprintf(&b, "seculator_serve_residency_evictions_total %d\n", m.residencyEvictions)
	fmt.Fprintf(&b, "seculator_serve_residency_resident_bytes %d\n", m.residentBytes)
	cs := runner.CacheStats()
	fmt.Fprintf(&b, "seculator_serve_sim_cache_hits %d\n", cs.Hits)
	fmt.Fprintf(&b, "seculator_serve_sim_cache_misses %d\n", cs.Misses)
	fmt.Fprintf(&b, "seculator_serve_sim_cache_entries %d\n", cs.Entries)
	return b.String()
}
