package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"seculator/internal/runner"
)

// Metrics is the server's counter set, rendered Prometheus-style on
// GET /metrics. Everything is monotonic except the gauges (queue depth,
// active sessions) sampled at scrape time; the simulation-cache lines come
// from runner.CacheStats, which ResetSimCacheStats can window.
type Metrics struct {
	mu sync.Mutex

	requests   map[int]uint64 // HTTP status -> count (infer endpoint)
	batches    uint64
	batchItems uint64
	maxBatch   int

	inferOK    uint64
	latencySum time.Duration // successful inferences, admission to response
	queueSum   time.Duration
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{requests: make(map[int]uint64)}
}

// Request records one inference request's final status.
func (m *Metrics) Request(status int) {
	m.mu.Lock()
	m.requests[status]++
	m.mu.Unlock()
}

// Batch records a dispatched micro-batch of the given live size.
func (m *Metrics) Batch(size int) {
	m.mu.Lock()
	m.batches++
	m.batchItems += uint64(size)
	if size > m.maxBatch {
		m.maxBatch = size
	}
	m.mu.Unlock()
}

// Inference records one successful inference's latency split.
func (m *Metrics) Inference(total, queued time.Duration) {
	m.mu.Lock()
	m.inferOK++
	m.latencySum += total
	m.queueSum += queued
	m.mu.Unlock()
}

// Render writes the scrape text. The gauges are passed in by the server so
// the metrics type stays free of scheduler/session dependencies.
func (m *Metrics) Render(queueDepth, sessionsActive int, sessionsCreated uint64, evicted map[string]uint64) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	codes := make([]int, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "seculator_serve_requests_total{code=%q} %d\n", fmt.Sprint(c), m.requests[c])
	}
	fmt.Fprintf(&b, "seculator_serve_infer_ok_total %d\n", m.inferOK)
	fmt.Fprintf(&b, "seculator_serve_infer_latency_ms_total %.3f\n", float64(m.latencySum)/float64(time.Millisecond))
	fmt.Fprintf(&b, "seculator_serve_infer_queue_ms_total %.3f\n", float64(m.queueSum)/float64(time.Millisecond))
	fmt.Fprintf(&b, "seculator_serve_batches_total %d\n", m.batches)
	fmt.Fprintf(&b, "seculator_serve_batch_items_total %d\n", m.batchItems)
	fmt.Fprintf(&b, "seculator_serve_batch_max_size %d\n", m.maxBatch)
	fmt.Fprintf(&b, "seculator_serve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(&b, "seculator_serve_sessions_active %d\n", sessionsActive)
	fmt.Fprintf(&b, "seculator_serve_sessions_created_total %d\n", sessionsCreated)
	reasons := make([]string, 0, len(evicted))
	for r := range evicted {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, "seculator_serve_sessions_evicted_total{reason=%q} %d\n", r, evicted[r])
	}
	cs := runner.CacheStats()
	fmt.Fprintf(&b, "seculator_serve_sim_cache_hits %d\n", cs.Hits)
	fmt.Fprintf(&b, "seculator_serve_sim_cache_misses %d\n", cs.Misses)
	fmt.Fprintf(&b, "seculator_serve_sim_cache_entries %d\n", cs.Entries)
	return b.String()
}
