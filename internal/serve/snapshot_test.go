package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"testing"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// Snapshot/restore across a process "restart": a session with inference
// history exports from one server and restores bit-identically into a
// fresh server sharing the snapshot key — same MAC registers, same channel
// sequence window, same subsequent outputs.
func TestSnapshotRestoreAcrossRestart(t *testing.T) {
	key := []byte("snapshot-sealing-key-for-tests--")
	_, c1 := newTestServer(t, serve.Options{SnapshotKey: key})
	ctx := ctxT(t)

	sess, err := c1.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := c1.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 777, Session: sess.SessionID})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c1.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SessionID != sess.SessionID || snap.Snapshot.MAC == "" {
		t.Fatalf("snapshot response: %+v", snap)
	}

	// "Restart": a brand-new server process with the same sealing key.
	_, c2 := newTestServer(t, serve.Options{SnapshotKey: key})
	restored, err := c2.RestoreSession(ctx, snap.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SessionID != sess.SessionID {
		t.Fatalf("restored id %s, want %s", restored.SessionID, sess.SessionID)
	}

	// Bit-identity: re-exporting the untouched restored session must give
	// the exact payload that went in — key, sequence window, MAC registers.
	again, err := c2.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Snapshot.Payload, snap.Snapshot.Payload) {
		t.Fatalf("restored state not bit-identical:\n before %s\n after  %s",
			snap.Snapshot.Payload, again.Snapshot.Payload)
	}

	// The restored session computes the same inference it would have on the
	// original server, and its command channel continues past the restored
	// sequence window (replay protection spans the restart).
	after, err := c2.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 777, Session: sess.SessionID})
	if err != nil {
		t.Fatal(err)
	}
	if after.OutputSum != before.OutputSum || after.Commands != before.Commands {
		t.Fatalf("restored session diverged: sum %#x/%#x commands %d/%d",
			after.OutputSum, before.OutputSum, after.Commands, before.Commands)
	}
	var p1, p2 struct {
		LastSeq uint64 `json:"last_seq"`
		Infers  uint64 `json:"infers"`
	}
	if err := json.Unmarshal(snap.Snapshot.Payload, &p1); err != nil {
		t.Fatal(err)
	}
	final, err := c2.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(final.Snapshot.Payload, &p2); err != nil {
		t.Fatal(err)
	}
	if p1.LastSeq == 0 || p2.LastSeq <= p1.LastSeq || p2.Infers != p1.Infers+1 {
		t.Fatalf("sequence window did not continue: before seq=%d/infers=%d, after seq=%d/infers=%d",
			p1.LastSeq, p1.Infers, p2.LastSeq, p2.Infers)
	}
}

// Satellite: every tampered import is rejected with the typed
// snapshot_integrity class and creates no session state.
func TestSnapshotTamperRejected(t *testing.T) {
	key := []byte("snapshot-sealing-key-for-tests--")
	_, c1 := newTestServer(t, serve.Options{SnapshotKey: key})
	ctx := ctxT(t)
	sess, err := c1.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 5, Session: sess.SessionID}); err != nil {
		t.Fatal(err)
	}
	snap, err := c1.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}

	_, c2 := newTestServer(t, serve.Options{SnapshotKey: key})
	expectReject := func(env serve.SnapshotEnvelope, what string) {
		t.Helper()
		_, err := c2.RestoreSession(ctx, env)
		if !client.IsSnapshotRejected(err) {
			t.Fatalf("%s: want snapshot_integrity rejection, got %v", what, err)
		}
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: want 422, got %v", what, err)
		}
	}

	// Seeded byte flips across the payload: every single-bit corruption
	// must fail the envelope MAC.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		env := snap.Snapshot
		env.Payload = append([]byte(nil), snap.Snapshot.Payload...)
		env.Payload[rng.Intn(len(env.Payload))] ^= byte(1 << rng.Intn(8))
		expectReject(env, "payload bit flip")
	}
	// A tampered MAC, a wrong version, and a spliced (foreign-payload)
	// envelope all fail closed.
	env := snap.Snapshot
	env.MAC = "00" + env.MAC[2:]
	expectReject(env, "MAC tamper")
	env = snap.Snapshot
	env.Version = 2
	expectReject(env, "version confusion")

	// Nothing restored: the session must not exist on the target server.
	if _, err := c2.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 5, Session: sess.SessionID}); !client.IsUnknownSession(err) {
		t.Fatalf("tampered import leaked session state: %v", err)
	}
	scrape, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, scrape, "seculator_serve_snapshot_rejected_total"); v < 10 {
		t.Fatalf("snapshot_rejected_total = %v, want >= 10", v)
	}
	if v := metricValue(t, scrape, "seculator_serve_snapshot_restored_total"); v != 0 {
		t.Fatalf("snapshot_restored_total = %v, want 0", v)
	}
}

// A snapshot restores neither into a server where the session still lives
// (duplicate) nor under a different tenant (splice across trust domains).
func TestSnapshotDuplicateAndForeignTenant(t *testing.T) {
	key := []byte("snapshot-sealing-key-for-tests--")
	_, c := newTestServer(t, serve.Options{
		SnapshotKey: key,
		Tenants: []serve.TenantConfig{
			{Key: "k-alice", Name: "alice"},
			{Key: "k-bob", Name: "bob"},
		},
	})
	ctx := ctxT(t)
	c.SetAPIKey("k-alice")
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate: the session is still live on this server.
	_, err = c.RestoreSession(ctx, snap.Snapshot)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict || ae.Body.Class != serve.ClassSessionExists {
		t.Fatalf("duplicate import: want 409/session_exists, got %v", err)
	}
	// Foreign tenant: bob restoring alice's snapshot is an integrity
	// failure, not a session transfer.
	c.SetAPIKey("k-bob")
	if _, err := c.RestoreSession(ctx, snap.Snapshot); !client.IsSnapshotRejected(err) {
		t.Fatalf("cross-tenant restore: %v", err)
	}
}
