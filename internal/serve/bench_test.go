package serve_test

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

func newBenchServer(b *testing.B, opts serve.Options) *client.Client {
	b.Helper()
	s, err := serve.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Close(ctx)
		hs.Close()
	})
	return client.New(hs.URL, hs.Client())
}

// benchInput derives a distinct deterministic activation input per
// iteration, so the fixed-model benchmarks measure the residency hit path
// (weights pinned, inputs varying) the way production traffic looks.
func benchInput(i int) []int32 {
	net := serve.MiniNet()
	first := net.Layers[0]
	in := make([]int32, first.C*first.H*first.W)
	x := uint64(i)*2654435761 + 99
	for j := range in {
		x = x*6364136223846793005 + 1442695040888963407
		in[j] = int32(x>>33)%257 - 128
	}
	return in
}

// BenchmarkServeInfer is the serving-layer round-trip: HTTP + scheduler +
// secure functional inference, one request at a time (no batching
// headroom). Seeds vary per iteration — a distinct model per request, so
// every request pays a residency build: the cold path.
func BenchmarkServeInfer(b *testing.B) {
	c := newBenchServer(b, serve.Options{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeInferResident is the production serving shape: one pinned
// model, per-request inputs — after the first request, every inference
// attaches to the verified residency and skips weight provisioning.
func BenchmarkServeInferResident(b *testing.B) {
	c := newBenchServer(b, serve.Options{})
	ctx := context.Background()
	// Warm the pin outside the timed region.
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Input: benchInput(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeInferParallel drives concurrent clients at one pinned
// model so the micro-batcher, the layer-stage pipeline, and the residency
// cache all engage — the serving throughput figure.
func BenchmarkServeInferParallel(b *testing.B) {
	c := newBenchServer(b, serve.Options{
		Scheduler: serve.SchedulerConfig{MaxBatch: 8, Linger: time.Millisecond, MaxQueue: 4096},
	})
	ctx := context.Background()
	var iter atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := serve.InferRequest{Network: "Mini", Seed: 1, Input: benchInput(int(iter.Add(1)))}
			if _, err := c.Infer(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeSessionInfer adds the authenticated command channel to the
// measured path, riding the same pinned model.
func BenchmarkServeSessionInfer(b *testing.B) {
	c := newBenchServer(b, serve.Options{})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := serve.InferRequest{Network: "Mini", Seed: 1, Input: benchInput(i), Session: sess.SessionID}
		if _, err := c.Infer(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
