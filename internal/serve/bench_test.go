package serve_test

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

func newBenchServer(b *testing.B, opts serve.Options) *client.Client {
	b.Helper()
	s, err := serve.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Close(ctx)
		hs.Close()
	})
	return client.New(hs.URL, hs.Client())
}

// BenchmarkServeInfer is the serving-layer round-trip: HTTP + scheduler +
// secure functional inference, one request at a time (no batching headroom).
func BenchmarkServeInfer(b *testing.B) {
	c := newBenchServer(b, serve.Options{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeInferParallel drives concurrent clients so the
// micro-batcher and the worker pool both engage — the serving throughput
// figure.
func BenchmarkServeInferParallel(b *testing.B) {
	c := newBenchServer(b, serve.Options{
		Scheduler: serve.SchedulerConfig{MaxBatch: 8, Linger: time.Millisecond, MaxQueue: 4096},
	})
	ctx := context.Background()
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: seed.Add(1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeSessionInfer adds the authenticated command channel to the
// measured path.
func BenchmarkServeSessionInfer(b *testing.B) {
	c := newBenchServer(b, serve.Options{})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i), Session: sess.SessionID}); err != nil {
			b.Fatal(err)
		}
	}
}
