package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The PR 9 batch-header pool recycles batch structs while stale linger
// timers may still hold pointers to them: releaseBatch scrubs under the
// scheduler lock precisely so a timer flush that lost the detach race
// observes a cleanly reset header and walks away. This test targets that
// interaction: a linger window short enough that timers fire constantly, a
// MaxBatch small enough that full-batch dispatches constantly detach the
// same headers the timers are racing for, and enough submitters that
// recycled headers are immediately reused under new keys. Run under -race
// (CI does), and verify integrity end to end — every submission gets its
// own result back, never a neighbour's from a scrambled batch.
func TestSchedulerLingerPoolRace(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		Workers:  4,
		MaxQueue: 4096,
		MaxBatch: 3,
		Linger:   50 * time.Microsecond,
	})
	defer s.Close()

	const (
		goroutines = 8
		perG       = 250
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	var executed atomic.Int64
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				// Two hot keys: collisions form shared batches (full-batch
				// dispatch path) while stragglers ride the linger timer.
				key := fmt.Sprintf("net=k%d", rng.Intn(2))
				want := g*perG + i
				res, info, err := s.Submit(ctx, key, func(ctx context.Context, b BatchInfo) (any, error) {
					if d := rng.Intn(3); d > 0 {
						// Occasional stalls keep batches in flight while their
						// headers' previous incarnations are being flushed.
						time.Sleep(time.Duration(d) * 10 * time.Microsecond)
					}
					executed.Add(1)
					return want, nil
				})
				if err != nil {
					errs <- fmt.Errorf("submit %d/%d: %w", g, i, err)
					return
				}
				if got, ok := res.(int); !ok || got != want {
					errs <- fmt.Errorf("submit %d/%d: got result %v, want %d (batch of %d)", g, i, res, want, info.Size)
					return
				}
				if info.Size < 1 || info.Size > 3 {
					errs <- fmt.Errorf("submit %d/%d: batch size %d out of range", g, i, info.Size)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := executed.Load(); got != goroutines*perG {
		t.Fatalf("executed %d tasks, want %d", got, goroutines*perG)
	}
	if d := s.Depth(); d != 0 {
		t.Fatalf("scheduler depth %d after drain, want 0", d)
	}
}

// The same flood while some requests expire mid-queue: expired items must
// be skipped with their context error and the depth accounting must still
// drain to zero — the stale-timer path and the context-expiry path share
// the batch headers being recycled.
func TestSchedulerLingerPoolRaceWithExpiry(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		Workers:  2,
		MaxQueue: 4096,
		MaxBatch: 2,
		Linger:   30 * time.Microsecond,
	})
	defer s.Close()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%5 == 0 {
					// A sliver of a deadline: some of these expire while
					// queued, some while their batch is dispatching.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*25*time.Microsecond)
				}
				_, _, err := s.Submit(ctx, "net=hot", func(ctx context.Context, b BatchInfo) (any, error) {
					return nil, nil
				})
				if cancel != nil {
					cancel()
				}
				if err != nil && err != context.DeadlineExceeded {
					// Only context expiry is an acceptable failure here.
					panic(fmt.Sprintf("unexpected submit error: %v", err))
				}
			}
		}(g)
	}
	wg.Wait()

	// The scheduler keeps expired slots admitted until the executor skips
	// them; give in-flight batches a moment to deliver, then the depth must
	// be exactly zero.
	deadline := time.Now().Add(5 * time.Second)
	for s.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler depth %d never drained", s.Depth())
		}
		time.Sleep(time.Millisecond)
	}
}
