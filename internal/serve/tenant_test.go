package serve_test

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"seculator/internal/host"
	"seculator/internal/mem"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// A configured tenant registry turns authentication on: no key and unknown
// keys are 401, a known key serves and shows up on /metrics.
func TestTenantAuth(t *testing.T) {
	_, c := newTestServer(t, serve.Options{
		Tenants: []serve.TenantConfig{{Key: "k-alice", Name: "alice"}},
	})
	ctx := ctxT(t)

	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1}); !client.IsUnauthorized(err) {
		t.Fatalf("missing key: %v", err)
	}
	if _, err := c.CreateSession(ctx, serve.SessionCreateRequest{}); !client.IsUnauthorized(err) {
		t.Fatalf("missing key on session create: %v", err)
	}
	c.SetAPIKey("k-wrong")
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1}); !client.IsUnauthorized(err) {
		t.Fatalf("unknown key: %v", err)
	}
	c.SetAPIKey("k-alice")
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1}); err != nil {
		t.Fatalf("known key refused: %v", err)
	}
	scrape, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, scrape, `seculator_serve_tenant_admitted_total{tenant="alice"}`); v != 1 {
		t.Fatalf("admitted{alice} = %v, want 1", v)
	}
	if !strings.Contains(scrape, `seculator_serve_tenant_breaker_state{tenant="alice"} 0`) {
		t.Fatalf("breaker state gauge missing:\n%s", scrape)
	}
}

// The per-tenant token bucket sheds above the configured rate with a
// Retry-After hint and a rate_limited class.
func TestTenantRateLimit(t *testing.T) {
	_, c := newTestServer(t, serve.Options{
		Tenants: []serve.TenantConfig{{Key: "k-a", Name: "a", RateRPS: 0.001, Burst: 1}},
	})
	ctx := ctxT(t)
	c.SetAPIKey("k-a")
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1}); err != nil {
		t.Fatalf("burst token refused: %v", err)
	}
	_, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 2})
	if !client.IsRateLimited(err) {
		t.Fatalf("second request should exceed the bucket: %v", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests || ae.RetryAfter() <= 0 {
		t.Fatalf("want 429 with Retry-After, got %v", err)
	}
	scrape, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, scrape, `seculator_serve_tenant_shed_total{tenant="a",reason="rate"}`); v != 1 {
		t.Fatalf(`shed{a,rate} = %v, want 1`, v)
	}
}

// A tenant cannot see, use, close, or snapshot another tenant's session —
// the failure is indistinguishable from an unknown session.
func TestTenantSessionIsolation(t *testing.T) {
	_, c := newTestServer(t, serve.Options{
		Tenants: []serve.TenantConfig{
			{Key: "k-alice", Name: "alice"},
			{Key: "k-bob", Name: "bob"},
		},
	})
	ctx := ctxT(t)
	c.SetAPIKey("k-alice")
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	c.SetAPIKey("k-bob")
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Session: sess.SessionID}); !client.IsUnknownSession(err) {
		t.Fatalf("cross-tenant session use: %v", err)
	}
	if err := c.CloseSession(ctx, sess.SessionID); !client.IsUnknownSession(err) {
		t.Fatalf("cross-tenant session close: %v", err)
	}
	if _, err := c.SnapshotSession(ctx, sess.SessionID); !client.IsUnknownSession(err) {
		t.Fatalf("cross-tenant snapshot: %v", err)
	}
	c.SetAPIKey("k-alice")
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Session: sess.SessionID}); err != nil {
		t.Fatalf("owner locked out: %v", err)
	}
}

// A tenant's bounded sub-queue sheds its own overflow while the global
// queue still has room.
func TestTenantQueueBound(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	_, c := newTestServer(t, serve.Options{
		Scheduler: serve.SchedulerConfig{Workers: 1, MaxQueue: 64, MaxBatch: 1},
		Tenants:   []serve.TenantConfig{{Key: "k-a", Name: "a", MaxPending: 1}},
		Hook: func(phase int, _ *mem.DRAM) {
			<-release
		},
	})
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	ctx := ctxT(t)
	c.SetAPIKey("k-a")

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i)})
			done <- err
		}(i)
	}
	// One request executing (blocked in the hook), one waiting in the
	// tenant's sub-queue.
	waitForHealth(t, c, func(h serve.HealthResponse) bool { return h.Queue == 2 })

	_, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 9})
	if !client.IsQueueFull(err) {
		t.Fatalf("third request should hit the tenant bound: %v", err)
	}
	once.Do(func() { close(release) })
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("blocked request %d: %v", i, err)
		}
	}
}

// Weighted fair share under contention: with both sub-queues saturated and
// the release window scarce, a weight-3 tenant drains ~3 requests for every
// one of a weight-1 tenant.
func TestFairShareWeights(t *testing.T) {
	reg := serve.NewTenantRegistry([]serve.TenantConfig{
		{Key: "k-a", Name: "a", Weight: 3},
		{Key: "k-b", Name: "b", Weight: 1},
	}, serve.QuarantineConfig{}, nil)
	tenants := reg.All()
	a, b := tenants[0], tenants[1]
	if a.Name() != "a" || b.Name() != "b" {
		t.Fatalf("registry order: %s, %s", a.Name(), b.Name())
	}

	fq := serve.NewFairQueue(serve.SchedulerConfig{Workers: 2, MaxQueue: 256, MaxBatch: 1})
	defer fq.Close()

	// Hold the release window with blockers so both tenant queues fill
	// before any contested grant happens.
	blockers := make(chan struct{})
	started := make(chan struct{}, 2)
	var blocked sync.WaitGroup
	for i := 0; i < 2; i++ {
		blocked.Add(1)
		go func() {
			defer blocked.Done()
			_, _, err := fq.Submit(context.Background(), a, "block", func(context.Context, serve.BatchInfo) (any, error) {
				started <- struct{}{}
				<-blockers
				return nil, nil
			})
			if err != nil {
				t.Errorf("blocker: %v", err)
			}
		}()
	}
	// Both blockers must own the release window before any work enqueues.
	for i := 0; i < 2; i++ {
		<-started
	}

	var mu sync.Mutex
	var order []string
	const perTenant = 40
	var wg sync.WaitGroup
	submit := func(ten *serve.Tenant) {
		defer wg.Done()
		_, _, err := fq.Submit(context.Background(), ten, "work", func(context.Context, serve.BatchInfo) (any, error) {
			mu.Lock()
			order = append(order, ten.Name())
			mu.Unlock()
			time.Sleep(time.Millisecond)
			return nil, nil
		})
		if err != nil {
			t.Errorf("submit %s: %v", ten.Name(), err)
		}
	}
	for i := 0; i < perTenant; i++ {
		wg.Add(2)
		go submit(a)
		go submit(b)
	}
	// Both queues full behind the blockers, then contest the window.
	waitFor(t, func() bool { return fq.Depth() == 2*perTenant+2 })
	close(blockers)
	blocked.Wait()
	wg.Wait()

	// In the first half of the drain, the weight-3 tenant must have clearly
	// outpaced the weight-1 tenant (ideal split 30:10; allow slack for
	// worker-level reordering around grant boundaries).
	half := order[:perTenant]
	countA := 0
	for _, name := range half {
		if name == "a" {
			countA++
		}
	}
	if countA < 2*(perTenant-countA) {
		t.Fatalf("weight-3 tenant got %d of first %d executions (weight-1 got %d); fair share not honored",
			countA, perTenant, perTenant-countA)
	}
}

// waitFor polls a condition with a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// replayIntercept builds the layer-2 → layer-4 command replay MITM used to
// drive breach-class errors through the HTTP boundary.
func replayIntercept() host.Intercept {
	var mu sync.Mutex
	var captured *host.Packet
	return func(layer int, p *host.Packet) {
		mu.Lock()
		defer mu.Unlock()
		switch layer {
		case 2:
			cp := *p
			cp.Payload = append([]byte(nil), p.Payload...)
			captured = &cp
		case 4:
			if captured != nil {
				*p = *captured
			}
		}
	}
}

// Tenant breach quarantine through the HTTP boundary: an attacking tenant's
// breaches escalate its breaker from throttled to open (451 with
// Retry-After), half-open probes let it back only once clean, and an honest
// tenant on the same server never sees a quarantine response.
func TestTenantQuarantineEscalation(t *testing.T) {
	attack := true // flips off for the recovery phase
	var mu sync.Mutex
	setAttack := func(v bool) { mu.Lock(); attack = v; mu.Unlock() }
	attacking := func() bool { mu.Lock(); defer mu.Unlock(); return attack }

	_, c := newTestServer(t, serve.Options{
		Tenants: []serve.TenantConfig{
			{Key: "k-evil", Name: "evil"},
			{Key: "k-good", Name: "good"},
		},
		Quarantine: serve.QuarantineConfig{
			ThrottleAfter: 1, OpenAfter: 3, Window: time.Minute,
			OpenFor: 50 * time.Millisecond, MaxOpenFor: time.Second,
			ThrottleRPS: 1000, ThrottleBurst: 1000, ProbeSuccesses: 2,
		},
		InterceptFor: func(tenant string) host.Intercept {
			if tenant == "evil" && attacking() {
				return replayIntercept()
			}
			return nil
		},
	})
	ctx := ctxT(t)
	evil := c
	evil.SetAPIKey("k-evil")

	breach := func() {
		t.Helper()
		sess, err := evil.CreateSession(ctx, serve.SessionCreateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = evil.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Session: sess.SessionID})
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
			t.Fatalf("attack should breach with 409: %v", err)
		}
	}

	breach() // 1st breach: closed -> throttled (still admits at probation rate)
	breach() // 2nd
	breach() // 3rd: opens

	_, err := evil.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 2})
	if !client.IsQuarantined(err) {
		t.Fatalf("open breaker should refuse: %v", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnavailableForLegalReasons || ae.RetryAfter() <= 0 {
		t.Fatalf("want 451 with Retry-After, got %v", err)
	}

	// The honest tenant is untouched while the attacker sits in quarantine
	// (same client, sequential re-key).
	c.SetAPIKey("k-good")
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 10}); err != nil {
		t.Fatalf("honest tenant refused during attacker quarantine: %v", err)
	}
	c.SetAPIKey("k-evil")

	// Recovery: attacker goes clean; after the hold, half-open probes admit
	// one at a time and enough clean probes close the breaker.
	setAttack(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered via half-open probes")
		}
		_, err := evil.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 3})
		if err == nil {
			break // a probe (or post-close request) went through clean
		}
		if !client.IsQuarantined(err) {
			t.Fatalf("unexpected error during recovery: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// After two clean probes the breaker closes; sustained traffic flows.
	for i := 0; i < 3; i++ {
		if _, err := evil.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(4 + i)}); err != nil && !client.IsQuarantined(err) {
			t.Fatalf("clean traffic after recovery: %v", err)
		}
	}
	scrape, err := evil.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, scrape, `seculator_serve_tenant_breaker_opens_total{tenant="evil"}`); v < 1 {
		t.Fatalf("breaker_opens{evil} = %v, want >= 1", v)
	}
	if v := metricValue(t, scrape, `seculator_serve_tenant_breaches_total{tenant="evil"}`); v < 3 {
		t.Fatalf("breaches{evil} = %v, want >= 3", v)
	}
	if v, ok := metricLookup(t, scrape, `seculator_serve_tenant_breaches_total{tenant="good"}`); ok && v != 0 {
		t.Fatalf("honest tenant charged with breaches: %v", v)
	}
}
