package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// arena.go — request-scoped buffer arenas for the HTTP surface. Every
// request used to allocate its own JSON decode scratch, response encoder,
// and encode buffer; the steady-state serving path instead draws them from
// process-wide pools and returns them when the response is written, so the
// per-request handler overhead is a handful of fixed-size pool round trips
// (DESIGN.md §15). Buffers that grew beyond maxPooledBuf (one oversized
// snapshot import, a huge input override) are dropped rather than pooled so
// a burst cannot pin its high-water mark forever.

// maxPooledBuf bounds the capacity a buffer may keep when returned to its
// pool.
const maxPooledBuf = 1 << 20

// bodyPool holds request-body read scratch: the decode path slurps the
// (limited) body into a pooled buffer and unmarshals from its bytes —
// json.Unmarshal reuses scanner state from encoding/json's internal pool,
// where a per-request json.NewDecoder would allocate its own.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody reads at most limit bytes of body into pooled scratch. The
// returned buffer's bytes are valid until putBody.
func readBody(body io.Reader, limit int64) (*bytes.Buffer, error) {
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(io.LimitReader(body, limit)); err != nil {
		putBody(buf)
		return nil, err
	}
	return buf, nil
}

func putBody(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		bodyPool.Put(buf)
	}
}

// jsonScratch is one pooled response encoder: a buffer with a json.Encoder
// permanently bound to it, so encoding a response allocates neither.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() any {
	s := &jsonScratch{}
	s.enc = json.NewEncoder(&s.buf)
	return s
}}

// encodeJSON renders v through a pooled encoder and returns the scratch;
// the caller writes scratch.buf.Bytes() and calls putJSON.
func encodeJSON(v any) (*jsonScratch, error) {
	s := jsonPool.Get().(*jsonScratch)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		putJSON(s)
		return nil, err
	}
	return s, nil
}

func putJSON(s *jsonScratch) {
	if s.buf.Cap() <= maxPooledBuf {
		jsonPool.Put(s)
	}
}

// decodeJSON is the pooled-scratch counterpart of a one-shot
// json.NewDecoder(...).Decode: read the limited body, unmarshal, release.
func decodeJSON(body io.Reader, limit int64, v any) error {
	buf, err := readBody(body, limit)
	if err != nil {
		return err
	}
	err = json.Unmarshal(buf.Bytes(), v)
	putBody(buf)
	return err
}
