package serve

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"

	"seculator/internal/mac"
	"seculator/internal/protect"
	"seculator/internal/resilience"
)

// snapshot.go — serializable session snapshots. A snapshot is the complete
// durable state of one secure session (key, channel sequence window, final
// MAC registers) sealed in an integrity-protected envelope, so a session
// can survive a process restart or migrate to another replica without
// weakening the security state machine: the restored command channel
// continues the strictly-increasing sequence window, and the restored MAC
// registers are bit-identical to the exported ones.
//
// The envelope is authenticated, not encrypted: a snapshot travels back to
// the session's own tenant over the (assumed confidential) API channel, and
// the tenant already owns everything the session computes. What the MAC
// prevents is exactly what the paper's threat model grants the attacker —
// tampering and splicing: any bit flipped in the payload, any version
// confusion, any envelope stitched from two snapshots fails verification
// and creates no session state.

// snapshotVersion is the envelope format version; imports of any other
// version are rejected as integrity failures (no silent downgrades).
const snapshotVersion = 1

// snapshotDomain separates the snapshot MAC from every other HMAC use of
// the serving layer.
const snapshotDomain = "seculator-session-snapshot-v"

// snapshotPayload is the serialized session state inside the envelope.
type snapshotPayload struct {
	ID      string        `json:"id"`
	Tenant  string        `json:"tenant"`
	Key     string        `json:"key"` // hex session key
	IdleMs  int64         `json:"idle_ms"`
	LastSeq uint64        `json:"last_seq"`
	Infers  uint64        `json:"infers"`
	LastSum uint64        `json:"last_sum"`
	Regs    *snapshotRegs `json:"regs,omitempty"` // nil before the first inference
}

// snapshotRegs is the wire form of protect.RegisterState: the four XOR-MAC
// registers with their fold counts, hex-encoded.
type snapshotRegs struct {
	W, R, FR, IR                     string `json:",omitempty"`
	WFolds, RFolds, FRFolds, IRFolds uint64
}

func encodeRegs(r protect.RegisterState) *snapshotRegs {
	return &snapshotRegs{
		W: hex.EncodeToString(r.W[:]), R: hex.EncodeToString(r.R[:]),
		FR: hex.EncodeToString(r.FR[:]), IR: hex.EncodeToString(r.IR[:]),
		WFolds: r.WFolds, RFolds: r.RFolds, FRFolds: r.FRFolds, IRFolds: r.IRFolds,
	}
}

func decodeRegs(s *snapshotRegs) (protect.RegisterState, error) {
	var out protect.RegisterState
	for _, f := range []struct {
		src string
		dst *mac.Digest
	}{{s.W, &out.W}, {s.R, &out.R}, {s.FR, &out.FR}, {s.IR, &out.IR}} {
		b, err := hex.DecodeString(f.src)
		if err != nil || len(b) != len(f.dst) {
			return out, fmt.Errorf("serve: snapshot MAC register malformed")
		}
		copy(f.dst[:], b)
	}
	out.WFolds, out.RFolds, out.FRFolds, out.IRFolds = s.WFolds, s.RFolds, s.FRFolds, s.IRFolds
	return out, nil
}

// newSnapshotKey returns a fresh random sealing key — the default when the
// operator configures none. Snapshots sealed under it verify only within
// this process; cross-restart restore needs a configured key.
func newSnapshotKey() []byte {
	k := make([]byte, 32)
	if _, err := rand.Read(k); err != nil {
		panic(fmt.Sprintf("serve: snapshot key: %v", err))
	}
	return k
}

// sealSnapshot wraps a payload in the authenticated envelope.
func sealSnapshot(key []byte, p snapshotPayload) (SnapshotEnvelope, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return SnapshotEnvelope{}, err
	}
	sum := snapshotMAC(key, snapshotVersion, raw)
	return SnapshotEnvelope{
		Version: snapshotVersion,
		Payload: raw,
		MAC:     hex.EncodeToString(sum[:]),
	}, nil
}

// openSnapshot verifies an envelope and decodes its payload. Every failure
// is a typed *resilience.SnapshotIntegrityError and must not create any
// session state.
func openSnapshot(key []byte, env SnapshotEnvelope) (snapshotPayload, error) {
	if env.Version != snapshotVersion {
		return snapshotPayload{}, &resilience.SnapshotIntegrityError{
			Reason: "version", Err: fmt.Errorf("version %d, want %d", env.Version, snapshotVersion),
		}
	}
	want, err := hex.DecodeString(env.MAC)
	if err != nil || len(want) != sha256.Size {
		return snapshotPayload{}, &resilience.SnapshotIntegrityError{Reason: "mac"}
	}
	got := snapshotMAC(key, env.Version, env.Payload)
	if !hmac.Equal(want, got[:]) {
		return snapshotPayload{}, &resilience.SnapshotIntegrityError{Reason: "mac"}
	}
	var p snapshotPayload
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return snapshotPayload{}, &resilience.SnapshotIntegrityError{Reason: "payload", Err: err}
	}
	if p.ID == "" || p.Key == "" {
		return snapshotPayload{}, &resilience.SnapshotIntegrityError{
			Reason: "payload", Err: fmt.Errorf("missing session id or key"),
		}
	}
	return p, nil
}

// hmacEqualString compares two strings in constant time (admin-key check).
func hmacEqualString(a, b string) bool { return hmac.Equal([]byte(a), []byte(b)) }

// snapshotMAC computes HMAC-SHA256 over the domain-separated envelope. The
// prefix is built with append into stack scratch and the sum lands in a
// value array — the seal/unseal path performs no heap allocation beyond the
// HMAC state itself.
func snapshotMAC(key []byte, version int, payload []byte) [sha256.Size]byte {
	h := hmac.New(sha256.New, key)
	prefix := make([]byte, 0, len(snapshotDomain)+24)
	prefix = append(prefix, snapshotDomain...)
	prefix = strconv.AppendInt(prefix, int64(version), 10)
	prefix = append(prefix, ':')
	h.Write(prefix)
	h.Write(payload)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// SnapshotSession exports one session as a sealed envelope (server-side
// API; the HTTP surface is GET /v1/sessions/{id}/snapshot).
func (s *Server) SnapshotSession(id, tenant string) (SnapshotEnvelope, error) {
	p, err := s.sessions.export(id, tenant)
	if err != nil {
		return SnapshotEnvelope{}, err
	}
	env, err := sealSnapshot(s.snapshotKey, p)
	if err == nil {
		s.metrics.SnapshotExport()
	}
	return env, err
}

// RestoreSession imports a sealed envelope. tenant, when non-empty, must
// match the snapshot's owner (a tenant cannot restore another tenant's
// session — that would be a splice across trust domains, so it fails as an
// integrity violation rather than leaking whose snapshot it was).
func (s *Server) RestoreSession(env SnapshotEnvelope, tenant string) (SessionCreateResponse, error) {
	p, err := openSnapshot(s.snapshotKey, env)
	if err != nil {
		s.metrics.SnapshotRestore(false)
		return SessionCreateResponse{}, err
	}
	if tenant != "" && p.Tenant != tenant {
		s.metrics.SnapshotRestore(false)
		return SessionCreateResponse{}, &resilience.SnapshotIntegrityError{
			Reason: "tenant", Err: fmt.Errorf("snapshot owner mismatch"),
		}
	}
	resp, err := s.sessions.importPayload(p)
	s.metrics.SnapshotRestore(err == nil)
	return resp, err
}

// SnapshotAll exports every live session — the drain-time persistence path
// (and the chaos harness's restart hand-off).
func (s *Server) SnapshotAll() ([]SnapshotEnvelope, error) {
	payloads := s.sessions.exportAll()
	out := make([]SnapshotEnvelope, 0, len(payloads))
	for _, p := range payloads {
		env, err := sealSnapshot(s.snapshotKey, p)
		if err != nil {
			return nil, err
		}
		out = append(out, env)
	}
	return out, nil
}

// RestoreAll imports a batch of envelopes (process start). It returns how
// many restored; individual failures (tampered, duplicate) are skipped and
// reported in the error joined at the end.
func (s *Server) RestoreAll(envs []SnapshotEnvelope) (int, error) {
	n := 0
	var firstErr error
	for i, env := range envs {
		if _, err := s.RestoreSession(env, ""); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: restore %d: %w", i, err)
			}
			continue
		}
		n++
	}
	return n, firstErr
}
