package serve

import (
	"context"
	"math"
	"sync"
)

// pipeline.go — cross-request layer-stage pipelining inside a micro-batch.
//
// The pre-pipeline scheduler ran a batch's requests back to back on one
// pool worker: request B waited for every layer of request A. But the
// secure executor's layers are naturally staged — provisioning, layer 0,
// layer 1, …, readout — and the XOR-MAC protocol makes each request's
// state private (its own DRAM image, its own register banks), so request B
// can run layer k while request A runs layer k+1 with zero shared mutable
// state. The scheduler therefore submits each batch item as its own pool
// task, chained by StageGates: item j may enter layer k only after item
// j-1 has left it. Stage handoff reuses the executor's OnLayerMACs layer
// boundary, so the per-request execution is bit-identical to the serial
// batch — same event streams, same folds, same outputs — only the
// interleaving across requests changes.
//
// Deadlock freedom: the pool starts tasks in FIFO order and each gate
// waits only on the item submitted immediately before it. Any blocked item
// therefore waits on an item that already started, and the chain bottoms
// out at an item with no predecessor — which always progresses. With one
// worker the pipeline degrades to exactly the old sequential batch.

// stageProgress is a monotone stage counter with channel broadcast: Done
// re-makes the channel so any number of waiters wake per advance, and
// waiters can select against their request context.
type stageProgress struct {
	mu sync.Mutex
	n  int
	ch chan struct{}
}

func newStageProgress() *stageProgress {
	return &stageProgress{ch: make(chan struct{})}
}

func (p *stageProgress) advance(n int) {
	p.mu.Lock()
	if n > p.n {
		p.n = n
		close(p.ch)
		p.ch = make(chan struct{})
	}
	p.mu.Unlock()
}

func (p *stageProgress) wait(ctx context.Context, n int) error {
	for {
		p.mu.Lock()
		if p.n >= n {
			p.mu.Unlock()
			return nil
		}
		ch := p.ch
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// StageGate is one batch item's handle on the pipeline: it waits on the
// predecessor item's progress and publishes its own. The zero stage count
// convention is "stages completed": after a request finishes layer i it
// calls Done(i+1); Finish (always called by the scheduler when the item's
// task returns, on every path) releases all successors unconditionally.
type StageGate struct {
	prev *stageProgress // nil for the batch head
	self *stageProgress
}

// Wait blocks until the predecessor has completed n stages (returns
// immediately for the batch head), or ctx expires.
func (g *StageGate) Wait(ctx context.Context, n int) error {
	if g == nil || g.prev == nil {
		return nil
	}
	return g.prev.wait(ctx, n)
}

// Done publishes that this item has completed n stages.
func (g *StageGate) Done(n int) {
	if g == nil {
		return
	}
	g.self.advance(n)
}

// Finish publishes unconditional completion: successors blocked on any
// stage are released. Idempotent; safe on error and cancellation paths.
func (g *StageGate) Finish() {
	if g == nil {
		return
	}
	g.self.advance(math.MaxInt)
}
