package serve

import (
	"sync"
	"time"

	"seculator/internal/resilience"
)

// BreakerState is the quarantine state of one tenant's circuit breaker.
type BreakerState int32

// The quarantine state machine. A tenant starts Closed; breach-class
// errors (replay, splice, channel tampering — the typed resilience breach
// taxonomy) escalate it:
//
//	Closed ──breach──▶ Throttled ──more breaches──▶ Open ──timer──▶ HalfOpen
//	   ▲                   │                          ▲                 │
//	   │          window drains clean                 │ probe breaches  │
//	   └───────────────────┘            └─────────────┘  probes clean ──▶ Closed
//
// Throttled still admits, but only at a probation rate — one noisy-but-
// possibly-honest breach does not cut a tenant off. Open refuses
// everything until its hold expires (the hold doubles on every re-open,
// capped), then HalfOpen lets exactly one probe through at a time; enough
// consecutive clean probes close the breaker, a probe breach re-opens it.
const (
	BreakerClosed BreakerState = iota
	BreakerThrottled
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for errors and /metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerThrottled:
		return "throttled"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// QuarantineConfig shapes the per-tenant breach quarantine. The zero value
// gets defaults suitable for the simulated system.
type QuarantineConfig struct {
	// ThrottleAfter is how many breaches inside Window move a closed
	// breaker to throttled (default 1).
	ThrottleAfter int
	// OpenAfter is how many breaches inside Window open the breaker
	// (default 3).
	OpenAfter int
	// Window is the breach observation window (default 30s): breaches
	// older than it stop counting against the tenant.
	Window time.Duration
	// OpenFor is the first open hold before half-open probing (default 5s);
	// every re-open doubles it, capped at MaxOpenFor (default 60s).
	OpenFor    time.Duration
	MaxOpenFor time.Duration
	// ThrottleRPS and ThrottleBurst are the probation token bucket while
	// throttled (default 1 rps, burst 1).
	ThrottleRPS   float64
	ThrottleBurst int
	// ProbeSuccesses is how many consecutive clean half-open probes close
	// the breaker (default 2).
	ProbeSuccesses int
}

func (c *QuarantineConfig) setDefaults() {
	if c.ThrottleAfter <= 0 {
		c.ThrottleAfter = 1
	}
	if c.OpenAfter <= 0 {
		c.OpenAfter = 3
	}
	if c.OpenAfter < c.ThrottleAfter {
		c.OpenAfter = c.ThrottleAfter
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.MaxOpenFor <= 0 {
		c.MaxOpenFor = 60 * time.Second
	}
	if c.MaxOpenFor < c.OpenFor {
		c.MaxOpenFor = c.OpenFor
	}
	if c.ThrottleRPS <= 0 {
		c.ThrottleRPS = 1
	}
	if c.ThrottleBurst <= 0 {
		c.ThrottleBurst = 1
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
}

// Breaker is one tenant's breach-quarantine circuit breaker. All methods
// take the current time explicitly so tests drive it deterministically.
type Breaker struct {
	mu  sync.Mutex
	cfg QuarantineConfig

	state    BreakerState
	breaches []time.Time // inside the window
	until    time.Time   // open hold deadline
	opens    uint64      // times the breaker opened (monotone, for metrics)
	opensRow uint64      // consecutive opens without a close (escalation exponent)
	probing  bool        // a half-open probe is in flight
	probeOK  int         // consecutive clean probes

	throttleTokens float64
	throttleLast   time.Time
}

// NewBreaker builds a breaker with defaults applied.
func NewBreaker(cfg QuarantineConfig) *Breaker {
	cfg.setDefaults()
	return &Breaker{cfg: cfg, throttleTokens: float64(cfg.ThrottleBurst)}
}

// prune drops breaches older than the window. Caller holds b.mu.
func (b *Breaker) prune(now time.Time) {
	cut := now.Add(-b.cfg.Window)
	i := 0
	for i < len(b.breaches) && !b.breaches[i].After(cut) {
		i++
	}
	if i > 0 {
		b.breaches = append(b.breaches[:0], b.breaches[i:]...)
	}
}

// Allow decides admission for tenant work. probe reports that this request
// is the half-open probe — the caller must hand the same flag back to
// Record so the probe's outcome drives the state machine. A refusal returns
// the typed *resilience.QuarantineError carrying the state and Retry-After.
func (b *Breaker) Allow(tenant string, now time.Time) (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.prune(now)

	if b.state == BreakerOpen && !now.Before(b.until) {
		b.state = BreakerHalfOpen
		b.probing = false
		b.probeOK = 0
	}
	if b.state == BreakerThrottled && len(b.breaches) == 0 {
		b.state = BreakerClosed
	}

	switch b.state {
	case BreakerClosed:
		return false, nil
	case BreakerThrottled:
		if b.takeThrottleToken(now) {
			return false, nil
		}
		need := (1 - b.throttleTokens) / b.cfg.ThrottleRPS
		return false, &resilience.QuarantineError{
			Tenant: tenant, State: b.state.String(), Breaches: len(b.breaches),
			RetryAfter: time.Duration(need * float64(time.Second)),
		}
	case BreakerOpen:
		return false, &resilience.QuarantineError{
			Tenant: tenant, State: b.state.String(), Breaches: len(b.breaches),
			RetryAfter: b.until.Sub(now),
		}
	default: // BreakerHalfOpen
		if !b.probing {
			b.probing = true
			return true, nil
		}
		return false, &resilience.QuarantineError{
			Tenant: tenant, State: b.state.String(), Breaches: len(b.breaches),
			RetryAfter: b.cfg.OpenFor / 4,
		}
	}
}

// takeThrottleToken is the probation bucket. Caller holds b.mu.
func (b *Breaker) takeThrottleToken(now time.Time) bool {
	if b.throttleLast.IsZero() {
		b.throttleTokens = float64(b.cfg.ThrottleBurst)
	} else if dt := now.Sub(b.throttleLast).Seconds(); dt > 0 {
		b.throttleTokens += dt * b.cfg.ThrottleRPS
		if max := float64(b.cfg.ThrottleBurst); b.throttleTokens > max {
			b.throttleTokens = max
		}
	}
	b.throttleLast = now
	if b.throttleTokens >= 1 {
		b.throttleTokens--
		return true
	}
	return false
}

// Record feeds a completed request's outcome back: breach says it latched
// a security breach, probe must be the flag Allow returned for it. It
// reports whether the breaker opened on this event (for metrics).
func (b *Breaker) Record(breach, probe bool, now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.prune(now)
	if probe {
		b.probing = false
	}

	if breach {
		b.breaches = append(b.breaches, now)
		switch {
		case b.state == BreakerHalfOpen:
			b.open(now)
			return true
		case len(b.breaches) >= b.cfg.OpenAfter:
			b.open(now)
			return true
		case b.state == BreakerClosed && len(b.breaches) >= b.cfg.ThrottleAfter:
			b.state = BreakerThrottled
			b.throttleTokens = float64(b.cfg.ThrottleBurst)
			b.throttleLast = now
		}
		return false
	}

	if b.state == BreakerHalfOpen && probe {
		b.probeOK++
		if b.probeOK >= b.cfg.ProbeSuccesses {
			b.state = BreakerClosed
			b.breaches = nil
			b.opensRow = 0
		}
	}
	if b.state == BreakerThrottled && len(b.breaches) == 0 {
		b.state = BreakerClosed
	}
	return false
}

// Release abandons a probe admission whose request never reached the NPU
// (validation failure, queue shed): the probe slot frees without counting
// as a clean probe, so a quarantined tenant cannot talk its breaker closed
// with requests that never execute.
func (b *Breaker) Release(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// open transitions to Open with the escalated hold. Caller holds b.mu.
func (b *Breaker) open(now time.Time) {
	hold := b.cfg.OpenFor
	for i := uint64(0); i < b.opensRow && hold < b.cfg.MaxOpenFor; i++ {
		hold *= 2
	}
	if hold > b.cfg.MaxOpenFor {
		hold = b.cfg.MaxOpenFor
	}
	b.state = BreakerOpen
	b.until = now.Add(hold)
	b.opens++
	b.opensRow++
	b.probing = false
	b.probeOK = 0
}

// State returns the current state without advancing timers.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has opened (monotone).
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
