package serve_test

import (
	"errors"
	"net/http"
	"testing"

	"seculator/internal/host"
	"seculator/internal/mem"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// A command-channel replay through the server: the MITM captures layer 2's
// authenticated packet and plays it back in place of layer 4's command.
// The NPU endpoint rejects the stale sequence number, the server maps the
// typed ChannelError to 409 with the layer index in the body, and the
// session is evicted — reuse must 404.
func TestSessionChannelReplayOverHTTP(t *testing.T) {
	var captured *host.Packet
	_, c := newTestServer(t, serve.Options{
		Intercept: func(layer int, p *host.Packet) {
			switch layer {
			case 2:
				cp := *p
				cp.Payload = append([]byte(nil), p.Payload...)
				captured = &cp
			case 4:
				if captured != nil {
					*p = *captured
				}
			}
		},
	})
	ctx := ctxT(t)
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Session: sess.SessionID})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("replayed command accepted: %v", err)
	}
	if ae.StatusCode != http.StatusConflict || ae.Body.Class != serve.ClassChannel {
		t.Fatalf("got %d/%s, want 409/channel", ae.StatusCode, ae.Body.Class)
	}
	if ae.Body.Layer == nil || *ae.Body.Layer != 4 {
		t.Fatalf("violation layer %v, want 4", ae.Body.Layer)
	}
	if !ae.Body.SessionEvicted {
		t.Fatal("breach did not evict the session")
	}
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Session: sess.SessionID})
	if !client.IsUnknownSession(err) {
		t.Fatalf("evicted session still resolvable: %v", err)
	}
}

// A DRAM-level replay through the server: the attacker restores stale
// layer-0 ciphertext over a block of layer 1's freshly written output.
// Layer 2's verification keeps failing across every recovery retry — the
// signature of stale-ciphertext replay — so the typed FreshnessError
// surfaces as 409 with the violated layer index, and the session is
// evicted.
func TestSessionFreshnessReplayOverHTTP(t *testing.T) {
	const scan = 1 << 14
	written := func(d *mem.DRAM) map[uint64][]byte {
		m := make(map[uint64][]byte)
		for a := uint64(0); a < scan; a++ {
			if p, ok := d.Snapshot(a); ok {
				m[a] = p
			}
		}
		return m
	}
	var afterLoad, afterL0 map[uint64][]byte
	fired := false
	hook := func(phase int, d *mem.DRAM) {
		switch phase {
		case -1:
			afterLoad = written(d)
		case 0:
			afterL0 = written(d)
		case 1:
			if fired {
				return
			}
			// Stale ciphertext: a block layer 0 wrote (absent after load).
			var stale []byte
			for a, p := range afterL0 {
				if _, old := afterLoad[a]; !old {
					stale = p
					break
				}
			}
			// Victim: a block layer 1 just wrote (absent after layer 0).
			cur := written(d)
			for a := range cur {
				if _, old := afterL0[a]; !old {
					d.Restore(a, stale)
					fired = true
					return
				}
			}
		}
	}
	_, c := newTestServer(t, serve.Options{Hook: hook})
	ctx := ctxT(t)
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 5, Session: sess.SessionID})
	if !fired {
		t.Fatal("replay hook never fired; test exercised nothing")
	}
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("stale-ciphertext replay went undetected: %v", err)
	}
	if ae.StatusCode != http.StatusConflict || ae.Body.Class != serve.ClassFreshness {
		t.Fatalf("got %d/%s, want 409/freshness", ae.StatusCode, ae.Body.Class)
	}
	if ae.Body.Layer == nil || *ae.Body.Layer != 1 {
		t.Fatalf("violation layer %v, want 1 (the replayed layer)", ae.Body.Layer)
	}
	if !ae.Body.SessionEvicted {
		t.Fatal("freshness breach did not evict the session")
	}
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 5, Session: sess.SessionID})
	if !client.IsUnknownSession(err) {
		t.Fatalf("evicted session still resolvable: %v", err)
	}
}

// A sessionless breach must not crash anything and still carry the typed
// class; there is no session to evict.
func TestSessionlessBreachMapsWithoutEviction(t *testing.T) {
	fired := false
	_, c := newTestServer(t, serve.Options{
		Hook: func(phase int, d *mem.DRAM) {
			if phase == 1 && !fired {
				// Corrupt a line layer 2 will consume.
				for a := uint64(1 << 14); a > 0; a-- {
					if d.Peek(a-1) != nil {
						d.Tamper(a-1, 3, 0x40)
						fired = true
						return
					}
				}
			}
		},
	})
	_, err := c.Infer(ctxT(t), serve.InferRequest{Network: "Mini", Seed: 9})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("tamper went undetected: %v", err)
	}
	if ae.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", ae.StatusCode)
	}
	if ae.Body.SessionEvicted {
		t.Fatal("sessionless request reported a session eviction")
	}
}
