package serve

import (
	"context"
	"testing"
	"time"

	"seculator/internal/nn"
	"seculator/internal/runner"
	"seculator/internal/secure"
)

// Manager-level residency tests with an injected clock: epoch expiry,
// corruption caught on the epoch check, per-tenant verification floors,
// and LRU capacity eviction.

type resHarness struct {
	m     *residencyManager
	clock time.Time
}

func newResHarness(cfg ResidencyConfig) *resHarness {
	h := &resHarness{m: newResidencyManager(cfg, NewMetrics()), clock: time.Unix(1_000_000, 0)}
	h.m.now = func() time.Time { return h.clock }
	return h
}

func (h *resHarness) build(seed int64) func() (*secure.WeightResidency, error) {
	return func() (*secure.WeightResidency, error) {
		net := MiniNet()
		cfg := runner.DefaultConfig()
		_, ws := nn.RandomModel(net, seed)
		return secure.BuildWeightResidency(context.Background(), net, cfg.NPU, cfg.DRAM,
			secure.DefaultSecret, secure.DefaultRandom, ws)
	}
}

func (h *resHarness) counters() (hits, misses, reverifies, fails, evictions uint64, bytes int64) {
	m := h.m.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.residencyHits, m.residencyMisses, m.residencyReverifies,
		m.residencyVerifyFails, m.residencyEvictions, m.residentBytes
}

func TestResidencyEpochExpiryForcesReverify(t *testing.T) {
	h := newResHarness(ResidencyConfig{Epoch: time.Minute})

	r1, hit, err := h.m.attach("a", "Mini", 1, h.build(1))
	if err != nil || hit {
		t.Fatalf("first attach: hit=%v err=%v", hit, err)
	}
	r2, hit, err := h.m.attach("a", "Mini", 1, h.build(1))
	if err != nil || !hit || r2 != r1 {
		t.Fatalf("in-epoch attach: hit=%v same=%v err=%v", hit, r2 == r1, err)
	}
	if _, _, rev, _, _, _ := h.counters(); rev != 0 {
		t.Fatalf("in-epoch attach re-verified (%d)", rev)
	}

	h.clock = h.clock.Add(61 * time.Second)
	r3, hit, err := h.m.attach("a", "Mini", 1, h.build(1))
	if err != nil || !hit || r3 != r1 {
		t.Fatalf("post-epoch attach: hit=%v same=%v err=%v", hit, r3 == r1, err)
	}
	hits, misses, rev, fails, _, bytes := h.counters()
	if rev != 1 || fails != 0 {
		t.Fatalf("post-epoch reverifies=%d fails=%d, want 1/0", rev, fails)
	}
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	if bytes != r1.Bytes() {
		t.Fatalf("resident_bytes=%d, want %d", bytes, r1.Bytes())
	}

	// The epoch check was just paid; the next attach inside the window
	// must not pay it again.
	h.clock = h.clock.Add(30 * time.Second)
	if _, hit, _ := h.m.attach("a", "Mini", 1, h.build(1)); !hit {
		t.Fatal("attach after refreshed epoch missed")
	}
	if _, _, rev, _, _, _ := h.counters(); rev != 1 {
		t.Fatalf("refreshed epoch re-verified again (%d)", rev)
	}
}

func TestResidencyTamperCaughtOnEpochCheck(t *testing.T) {
	h := newResHarness(ResidencyConfig{Epoch: time.Minute})

	r1, _, err := h.m.attach("a", "Mini", 1, h.build(1))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.TamperCiphertext(0, 3) {
		t.Fatal("TamperCiphertext found nothing to flip")
	}

	// Inside the epoch the corruption is latent — that's the trust window
	// the epoch bounds.
	h.clock = h.clock.Add(61 * time.Second)
	r2, hit, err := h.m.attach("a", "Mini", 1, h.build(1))
	if err != nil {
		t.Fatalf("rebuild after failed epoch check: %v", err)
	}
	if hit || r2 == r1 {
		t.Fatalf("tampered entry served: hit=%v same=%v", hit, r2 == r1)
	}
	if err := r2.Verify(); err != nil {
		t.Fatalf("rebuilt residency dirty: %v", err)
	}
	hits, misses, rev, fails, evict, bytes := h.counters()
	if rev != 1 || fails != 1 || evict != 1 {
		t.Fatalf("reverifies=%d fails=%d evictions=%d, want 1/1/1", rev, fails, evict)
	}
	if hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", hits, misses)
	}
	if bytes != r2.Bytes() {
		t.Fatalf("resident_bytes=%d after rebuild, want %d", bytes, r2.Bytes())
	}
}

func TestResidencyTenantFloorForcesReverify(t *testing.T) {
	h := newResHarness(ResidencyConfig{Epoch: time.Hour})

	if _, _, err := h.m.attach("a", "Mini", 1, h.build(1)); err != nil {
		t.Fatal(err)
	}
	h.clock = h.clock.Add(time.Second)
	h.m.InvalidateTenant("a")
	h.clock = h.clock.Add(time.Second)

	// An untouched tenant rides the pin without a re-check.
	if _, hit, _ := h.m.attach("b", "Mini", 1, h.build(1)); !hit {
		t.Fatal("clean tenant missed")
	}
	if _, _, rev, _, _, _ := h.counters(); rev != 0 {
		t.Fatalf("clean tenant triggered a reverify (%d)", rev)
	}

	// The quarantined tenant pays a fresh verification first.
	if _, hit, _ := h.m.attach("a", "Mini", 1, h.build(1)); !hit {
		t.Fatal("quarantined tenant should still hit after a clean reverify")
	}
	if _, _, rev, fails, _, _ := h.counters(); rev != 1 || fails != 0 {
		t.Fatalf("quarantined tenant reverifies=%d fails=%d, want 1/0", rev, fails)
	}
}

func TestResidencyCapacityEviction(t *testing.T) {
	h := newResHarness(ResidencyConfig{Epoch: time.Hour, MaxModels: 2})

	var sizes []int64
	for seed := int64(1); seed <= 3; seed++ {
		r, _, err := h.m.attach("a", "Mini", seed, h.build(seed))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, r.Bytes())
		h.clock = h.clock.Add(time.Second)
	}
	h.m.mu.Lock()
	n := len(h.m.entries)
	_, oldest := h.m.entries[resKey{network: "Mini", seed: 1}]
	h.m.mu.Unlock()
	if n != 2 || oldest {
		t.Fatalf("entries=%d oldestPresent=%v, want 2/false", n, oldest)
	}
	_, _, _, _, evict, bytes := h.counters()
	if evict != 1 {
		t.Fatalf("evictions=%d, want 1", evict)
	}
	if want := sizes[1] + sizes[2]; bytes != want {
		t.Fatalf("resident_bytes=%d, want %d", bytes, want)
	}
}
