package serve

import (
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Tenant-admission errors; the HTTP layer maps them to 401 (unknown or
// missing API key) and 429 (token bucket empty, per-tenant queue full).
var (
	ErrUnauthorized    = errors.New("serve: unknown or missing API key")
	ErrRateLimited     = errors.New("serve: tenant rate limit exceeded")
	ErrTenantQueueFull = errors.New("serve: tenant admission queue full")
)

// AnonymousTenant is the implicit tenant of a server with no registry:
// every request shares one identity, one fair-share queue, and no rate
// limit — exactly the PR 3 behaviour, so single-tenant deployments and
// existing clients keep working unchanged.
const AnonymousTenant = "default"

// TenantConfig registers one API key with its service shape.
type TenantConfig struct {
	// Key is the API key presented as "Authorization: Bearer <key>" or
	// "X-API-Key: <key>". Required.
	Key string `json:"key"`
	// Name is the tenant's metrics/display identity (default: the key).
	Name string `json:"name,omitempty"`
	// Weight is the fair-share weight of the tenant's admission queue
	// (default 1): a weight-3 tenant drains three requests for every one of
	// a weight-1 tenant under contention.
	Weight int `json:"weight,omitempty"`
	// RateRPS is the token-bucket refill rate in requests/second; 0 means
	// no rate limit.
	RateRPS float64 `json:"rate_rps,omitempty"`
	// Burst is the bucket capacity (default max(1, ceil(2*RateRPS))).
	Burst int `json:"burst,omitempty"`
	// MaxPending bounds the tenant's admission sub-queue (default: the
	// scheduler's global MaxQueue — no extra per-tenant bound).
	MaxPending int `json:"max_pending,omitempty"`
}

func (c *TenantConfig) setDefaults() {
	if c.Name == "" {
		c.Name = c.Key
	}
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.Burst <= 0 {
		c.Burst = int(2 * c.RateRPS)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
}

// Tenant is one admitted identity: its config, its token bucket, and its
// breach-quarantine circuit breaker.
type Tenant struct {
	cfg TenantConfig

	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time

	breaker *Breaker // nil for the anonymous tenant (quarantine off)
}

// Name returns the tenant's metrics identity.
func (t *Tenant) Name() string { return t.cfg.Name }

// Weight returns the tenant's fair-share weight.
func (t *Tenant) Weight() int { return t.cfg.Weight }

// MaxPending returns the tenant's sub-queue bound (0 = global bound only).
func (t *Tenant) MaxPending() int { return t.cfg.MaxPending }

// Breaker returns the tenant's quarantine breaker (nil when quarantine is
// off, i.e. the anonymous tenant).
func (t *Tenant) Breaker() *Breaker { return t.breaker }

// TakeToken consumes one token from the tenant's rate bucket. It returns
// ok=false with the wait until the next token when the bucket is empty.
// A tenant with no rate limit always admits.
func (t *Tenant) TakeToken(now time.Time) (ok bool, retryAfter time.Duration) {
	if t.cfg.RateRPS <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lastRefill.IsZero() {
		t.tokens = float64(t.cfg.Burst)
	} else if dt := now.Sub(t.lastRefill).Seconds(); dt > 0 {
		t.tokens += dt * t.cfg.RateRPS
		if max := float64(t.cfg.Burst); t.tokens > max {
			t.tokens = max
		}
	}
	t.lastRefill = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	need := (1 - t.tokens) / t.cfg.RateRPS
	return false, time.Duration(need * float64(time.Second))
}

// TenantRegistry resolves API keys to tenants. An empty registry serves
// everyone as the anonymous tenant; a non-empty one requires a known key on
// every request.
type TenantRegistry struct {
	byKey     map[string]*Tenant
	names     []string // registration order, for stable /metrics rendering
	anonymous *Tenant
	now       func() time.Time
}

// NewTenantRegistry builds the registry. With no configs, the anonymous
// tenant (no auth, no rate limit, no quarantine) serves every request.
// Configured tenants each get a quarantine breaker with the given config.
func NewTenantRegistry(configs []TenantConfig, quar QuarantineConfig, now func() time.Time) *TenantRegistry {
	if now == nil {
		now = time.Now
	}
	r := &TenantRegistry{byKey: make(map[string]*Tenant), now: now}
	for _, cfg := range configs {
		if cfg.Key == "" {
			continue
		}
		cfg.setDefaults()
		if _, dup := r.byKey[cfg.Key]; dup {
			continue
		}
		t := &Tenant{cfg: cfg, breaker: NewBreaker(quar)}
		r.byKey[cfg.Key] = t
		r.names = append(r.names, cfg.Name)
	}
	if len(r.byKey) == 0 {
		r.anonymous = &Tenant{cfg: TenantConfig{Key: "", Name: AnonymousTenant, Weight: 1, Burst: 1}}
		r.names = []string{AnonymousTenant}
	}
	return r
}

// Resolve authenticates a request: with a configured registry the API key
// must be present and known; without one, everyone is the anonymous tenant.
func (r *TenantRegistry) Resolve(req *http.Request) (*Tenant, error) {
	if r.anonymous != nil {
		return r.anonymous, nil
	}
	key := req.Header.Get("X-API-Key")
	if key == "" {
		if auth := req.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key == "" {
		return nil, ErrUnauthorized
	}
	t, ok := r.byKey[key]
	if !ok {
		return nil, ErrUnauthorized
	}
	return t, nil
}

// Now returns the registry clock (injectable for tests).
func (r *TenantRegistry) Now() time.Time { return r.now() }

// All returns every tenant in registration order.
func (r *TenantRegistry) All() []*Tenant {
	if r.anonymous != nil {
		return []*Tenant{r.anonymous}
	}
	out := make([]*Tenant, 0, len(r.byKey))
	seen := make(map[string]bool, len(r.byKey))
	for _, t := range r.byKey {
		if !seen[t.cfg.Name] {
			seen[t.cfg.Name] = true
			out = append(out, t)
		}
	}
	// Stable order: registration order by name.
	ordered := make([]*Tenant, 0, len(out))
	for _, name := range r.names {
		for _, t := range out {
			if t.cfg.Name == name {
				ordered = append(ordered, t)
				break
			}
		}
	}
	return ordered
}
