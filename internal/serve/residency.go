package serve

import (
	"sync"
	"time"

	"seculator/internal/secure"
)

// residency.go — the serving tier's verified-weight residency cache.
//
// Every admitted request used to re-encrypt and re-MAC the same model
// weights. Because weights are read-only at inference time (the GuardNN /
// MGX observation), the server instead provisions them once per
// (network, model seed) into a secure.WeightResidency — verified
// ciphertext, golden XOR-MACs, pad bank, pinned mapping — and attaches
// every later request to the shared pin. Invalidation rules:
//
//   - epoch expiry: entries older than ResidencyConfig.Epoch are
//     re-verified (WeightResidency.Verify) before the next attach; a
//     failed check evicts the entry and re-provisions from scratch;
//   - tenant breach: a quarantined tenant's verification floor moves to
//     "now", so that tenant's next attach forces a re-verify regardless of
//     epoch age — a breached tenant never rides a stale trust decision;
//   - capacity: least-recently-used entries are evicted beyond MaxModels.
//
// The cache is shared across tenants by design: the pinned state is
// content-addressed (network + seed fully determine the ciphertext under
// the process DRAM identity), so there is nothing tenant-private in it —
// what is per-tenant is only the *trust freshness* floor above.

// ResidencyConfig shapes the serving tier's weight residency cache.
type ResidencyConfig struct {
	// Disabled turns residency off: every request re-provisions its
	// weights (the pre-residency behavior).
	Disabled bool
	// Epoch is how long a verified entry is trusted before the next attach
	// re-verifies it (default 5m).
	Epoch time.Duration
	// MaxModels bounds distinct resident (network, seed) entries; least
	// recently used entries are evicted beyond it (default 32).
	MaxModels int
}

func (c *ResidencyConfig) setDefaults() {
	if c.Epoch <= 0 {
		c.Epoch = 5 * time.Minute
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 32
	}
}

// resKey identifies one resident model: the raw requested network name
// (including "Name/div" shrink forms) plus the model seed that derives its
// weights.
type resKey struct {
	network string
	seed    int64
}

// resEntry is one resident model. The entry mutex is the singleflight: the
// first request to need a build (or an epoch re-verify) holds it for the
// duration, and concurrent requests for the same key block on it instead
// of each paying the provisioning cost.
type resEntry struct {
	mu         sync.Mutex
	res        *secure.WeightResidency
	verifiedAt time.Time

	// Maintained under the manager lock.
	lastUse time.Time
	bytes   int64
}

// residencyManager owns the resident entries and the per-tenant
// verification floors.
type residencyManager struct {
	cfg     ResidencyConfig
	metrics *Metrics
	now     func() time.Time

	mu      sync.Mutex
	entries map[resKey]*resEntry
	floors  map[string]time.Time
}

func newResidencyManager(cfg ResidencyConfig, metrics *Metrics) *residencyManager {
	cfg.setDefaults()
	return &residencyManager{
		cfg:     cfg,
		metrics: metrics,
		now:     time.Now,
		entries: make(map[resKey]*resEntry),
		floors:  make(map[string]time.Time),
	}
}

// InvalidateTenant moves a tenant's verification floor to now: the
// tenant's next attach to any resident entry re-verifies it first. Called
// on every breach-class inference error, alongside the quarantine breaker.
func (m *residencyManager) InvalidateTenant(tenant string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.floors[tenant] = m.now()
	m.mu.Unlock()
}

// attach returns the resident weights for (network, seed), building or
// re-verifying as the invalidation rules demand. hit reports whether the
// request rode an existing in-epoch entry. A build error (unmappable
// network, canceled context) is returned for the caller to fall back on
// the non-resident path.
func (m *residencyManager) attach(tenant, network string, seed int64,
	build func() (*secure.WeightResidency, error)) (res *secure.WeightResidency, hit bool, err error) {

	key := resKey{network: network, seed: seed}
	m.mu.Lock()
	e := m.entries[key]
	if e == nil {
		e = &resEntry{}
		m.entries[key] = e
		m.evictLocked(key)
	}
	e.lastUse = m.now()
	floor := m.floors[tenant]
	m.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.res != nil {
		stale := m.now().Sub(e.verifiedAt) >= m.cfg.Epoch || e.verifiedAt.Before(floor)
		if !stale {
			m.metrics.ResidencyHit()
			return e.res, true, nil
		}
		verr := e.res.Verify()
		m.metrics.ResidencyReverify(verr == nil)
		if verr == nil {
			e.verifiedAt = m.now()
			m.metrics.ResidencyHit()
			return e.res, true, nil
		}
		// The pinned state failed its epoch check: drop it and fall
		// through to a from-scratch rebuild. The tampered bytes are never
		// served — Verify rejected them before any request attached.
		m.drop(key, e)
		m.metrics.ResidencyEviction()
	}
	built, err := build()
	if err != nil {
		return nil, false, err
	}
	e.res, e.verifiedAt = built, m.now()
	m.metrics.ResidencyMiss()
	m.mu.Lock()
	if m.entries[key] == e { // not evicted while building
		e.bytes = built.Bytes()
		m.metrics.ResidencyBytes(e.bytes)
	}
	m.mu.Unlock()
	return built, false, nil
}

// drop clears a corrupted entry's pinned state and footprint accounting.
func (m *residencyManager) drop(key resKey, e *resEntry) {
	e.res = nil
	m.mu.Lock()
	if m.entries[key] == e && e.bytes != 0 {
		m.metrics.ResidencyBytes(-e.bytes)
		e.bytes = 0
	}
	m.mu.Unlock()
}

// evictLocked enforces MaxModels after an insert of keep: the least
// recently used other entry goes. Caller holds m.mu.
func (m *residencyManager) evictLocked(keep resKey) {
	for len(m.entries) > m.cfg.MaxModels {
		var victimKey resKey
		var victim *resEntry
		for k, e := range m.entries {
			if k == keep {
				continue
			}
			if victim == nil || e.lastUse.Before(victim.lastUse) {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(m.entries, victimKey)
		if victim.bytes != 0 {
			m.metrics.ResidencyBytes(-victim.bytes)
			victim.bytes = 0
		}
		m.metrics.ResidencyEviction()
	}
}
