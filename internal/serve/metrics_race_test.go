package serve_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"seculator/internal/serve"
)

// metricValue extracts one sample from a /metrics scrape. Labeled families
// are summed across label sets when name has no label selector.
func metricValue(t *testing.T, scrape, name string) float64 {
	t.Helper()
	v, ok := metricLookup(t, scrape, name)
	if !ok {
		t.Fatalf("metric %s missing from scrape:\n%s", name, scrape)
	}
	return v
}

func metricLookup(t *testing.T, scrape, name string) (float64, bool) {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // prefix of a longer metric name
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q: %v", line, err)
		}
		sum += v
		found = true
	}
	return sum, found
}

// TestMetricsConcurrentScrapeConsistency hammers /v1/infer and /metrics
// concurrently (the interesting schedule under -race: renders interleaving
// with counter updates mid-batch), asserts every monotone counter only ever
// moves forward across each scraper's observations, and finally checks the
// quiesced counters line up exactly with the work performed.
func TestMetricsConcurrentScrapeConsistency(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	ctx := ctxT(t)

	const inferWorkers = 4
	const infersPerWorker = 8
	const scrapeWorkers = 3

	monotone := []string{
		"seculator_serve_requests_total",
		"seculator_serve_infer_ok_total",
		"seculator_serve_infer_latency_ms_total",
		"seculator_serve_batches_total",
		"seculator_serve_batch_items_total",
		"seculator_serve_tenant_admitted_total",
		"seculator_serve_tenant_shed_total",
		"seculator_serve_tenant_breaches_total",
		"seculator_serve_tenant_breaker_opens_total",
		"seculator_serve_sessions_restored_total",
		"seculator_serve_snapshot_exports_total",
		"seculator_serve_snapshot_restored_total",
		"seculator_serve_snapshot_rejected_total",
		"seculator_serve_residency_hits_total",
		"seculator_serve_residency_misses_total",
		"seculator_serve_residency_reverifies_total",
		"seculator_serve_residency_verify_failures_total",
		"seculator_serve_residency_evictions_total",
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for w := 0; w < scrapeWorkers; w++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			last := make(map[string]float64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				scrape, err := c.Metrics(ctx)
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				for _, name := range monotone {
					// A family with no samples yet (e.g. requests_total
					// before the first response) reads as zero.
					v, _ := metricLookup(t, scrape, name)
					if v < last[name] {
						t.Errorf("%s went backwards: %v -> %v", name, last[name], v)
					}
					last[name] = v
				}
			}
		}()
	}

	var infers sync.WaitGroup
	errc := make(chan error, inferWorkers)
	for w := 0; w < inferWorkers; w++ {
		infers.Add(1)
		go func(w int) {
			defer infers.Done()
			for i := 0; i < infersPerWorker; i++ {
				if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(w*1000 + i)}); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}

	infers.Wait()
	close(stop)
	scrapers.Wait()
	select {
	case err := <-errc:
		t.Fatalf("infer: %v", err)
	default:
	}

	// Quiesced consistency: everything submitted succeeded, so the counters
	// must line up exactly with the load.
	scrape, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(inferWorkers * infersPerWorker)
	if ok := metricValue(t, scrape, "seculator_serve_infer_ok_total"); ok != total {
		t.Errorf("infer_ok_total = %v, want %v", ok, total)
	}
	if items := metricValue(t, scrape, "seculator_serve_batch_items_total"); items != total {
		t.Errorf("batch_items_total = %v, want %v", items, total)
	}
	if ok200 := metricValue(t, scrape, `seculator_serve_requests_total{code="200"}`); ok200 != total {
		t.Errorf(`requests_total{code="200"} = %v, want %v`, ok200, total)
	}
	batches := metricValue(t, scrape, "seculator_serve_batches_total")
	if batches < 1 || batches > total {
		t.Errorf("batches_total = %v, want within [1, %v]", batches, total)
	}
	maxBatch := metricValue(t, scrape, "seculator_serve_batch_max_size")
	if maxBatch < 1 || maxBatch > total {
		t.Errorf("batch_max_size = %v out of range", maxBatch)
	}
	// items = Σ batch sizes ⇒ the average size cannot exceed the max seen.
	if avg := total / batches; avg > maxBatch {
		t.Errorf("average batch size %v exceeds batch_max_size %v", avg, maxBatch)
	}
	if lat := metricValue(t, scrape, "seculator_serve_infer_latency_ms_total"); lat < 0 {
		t.Errorf("negative latency sum %v", lat)
	}
	if q := metricValue(t, scrape, "seculator_serve_infer_queue_ms_total"); q < 0 {
		t.Errorf("negative queue sum %v", q)
	}
	// Every request rode the anonymous tenant's fair-share queue.
	if adm := metricValue(t, scrape, `seculator_serve_tenant_admitted_total{tenant="default"}`); adm != total {
		t.Errorf(`tenant_admitted_total{tenant="default"} = %v, want %v`, adm, total)
	}
	if shed, ok := metricLookup(t, scrape, "seculator_serve_tenant_shed_total"); ok && shed != 0 {
		t.Errorf("tenant_shed_total = %v on an uncontended run", shed)
	}
	// Every clean inference attaches to the residency cache exactly once:
	// one hit or one miss per request.
	hits := metricValue(t, scrape, "seculator_serve_residency_hits_total")
	misses := metricValue(t, scrape, "seculator_serve_residency_misses_total")
	if hits+misses != total {
		t.Errorf("residency hits %v + misses %v != %v requests", hits, misses, total)
	}
	if rb := metricValue(t, scrape, "seculator_serve_residency_resident_bytes"); rb <= 0 {
		t.Errorf("resident_bytes = %v after %v resident inferences", rb, total)
	}
}
