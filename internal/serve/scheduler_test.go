package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// Batch formation: requests for the same key admitted within the linger
// window ride one micro-batch, and a batch reaching MaxBatch dispatches
// without waiting out the linger.
func TestSchedulerBatchFormation(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, MaxQueue: 64, MaxBatch: 4, Linger: 2 * time.Second})
	defer s.Close()

	var wg sync.WaitGroup
	sizes := make([]int, 4)
	start := time.Now()
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, info, err := s.Submit(context.Background(), "net=Mini", func(context.Context, BatchInfo) (any, error) {
				return nil, nil
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			sizes[i] = info.Size
		}()
	}
	wg.Wait()
	// MaxBatch dispatch must beat the 2s linger by a wide margin.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("full batch waited out the linger (%v)", elapsed)
	}
	for i, sz := range sizes {
		if sz != 4 {
			t.Fatalf("request %d rode a batch of %d, want 4 (sizes %v)", i, sz, sizes)
		}
	}
}

// A short-handed batch dispatches when its linger expires.
func TestSchedulerLingerFlush(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 64, MaxBatch: 100, Linger: 20 * time.Millisecond})
	defer s.Close()

	var wg sync.WaitGroup
	sizes := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, info, err := s.Submit(context.Background(), "k", func(context.Context, BatchInfo) (any, error) {
				return nil, nil
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			sizes[i] = info.Size
		}()
	}
	wg.Wait()
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("linger flush sizes %v, want [2 2]", sizes)
	}
}

// Requests under different keys never share a batch.
func TestSchedulerKeysDoNotMix(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, MaxQueue: 64, MaxBatch: 8, Linger: 10 * time.Millisecond})
	defer s.Close()

	var wg sync.WaitGroup
	var bad atomic.Int32
	for i := 0; i < 6; i++ {
		key := "a"
		if i%2 == 1 {
			key = "b"
		}
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			_, info, err := s.Submit(context.Background(), key, func(context.Context, BatchInfo) (any, error) {
				return nil, nil
			})
			if err != nil || info.Size > 3 {
				bad.Add(1)
			}
		}(key)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatal("a batch mixed keys or a submit failed")
	}
}

// Admission control: submissions beyond MaxQueue fail fast with
// ErrQueueFull while earlier work is still queued or executing.
func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 2, MaxBatch: 1, Linger: 0})
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 2)
	go func() {
		_, _, err := s.Submit(context.Background(), "k", func(context.Context, BatchInfo) (any, error) {
			close(started)
			<-release
			return nil, nil
		})
		done <- err
	}()
	<-started // worker busy; depth 1
	go func() {
		_, _, err := s.Submit(context.Background(), "k", func(context.Context, BatchInfo) (any, error) {
			return nil, nil
		})
		done <- err
	}()
	waitFor(t, "queue depth 2", func() bool { return s.Depth() == 2 })

	_, _, err := s.Submit(context.Background(), "k", func(context.Context, BatchInfo) (any, error) {
		return nil, nil
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
}

// A deadline expiring while queued returns the context error and the
// abandoned task never executes.
func TestSchedulerDeadlineWhileQueued(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 8, MaxBatch: 1, Linger: 0})
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	go s.Submit(context.Background(), "k", func(context.Context, BatchInfo) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	var ran atomic.Bool
	_, _, err := s.Submit(ctx, "k", func(context.Context, BatchInfo) (any, error) {
		ran.Store(true)
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline submit: %v, want DeadlineExceeded", err)
	}
	close(release)
	waitFor(t, "abandoned slot reclaimed", func() bool { return s.Depth() == 0 })
	if ran.Load() {
		t.Fatal("abandoned request executed anyway")
	}
}

// Drain on shutdown: Close dispatches forming batches, finishes every
// admitted request, and rejects new work with ErrShuttingDown.
func TestSchedulerDrainOnShutdown(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 64, MaxBatch: 100, Linger: 10 * time.Second})

	const n = 3
	var wg sync.WaitGroup
	var completed atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := s.Submit(context.Background(), "k", func(context.Context, BatchInfo) (any, error) {
				completed.Add(1)
				return nil, nil
			})
			if err != nil {
				t.Errorf("admitted request failed during drain: %v", err)
			}
		}()
	}
	waitFor(t, "3 admitted", func() bool { return s.Depth() == n })

	// Close must flush the forming batch immediately (not wait out the
	// 10s linger) and deliver all three.
	start := time.Now()
	s.Close()
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain waited out the linger (%v)", elapsed)
	}
	if completed.Load() != n {
		t.Fatalf("drain completed %d of %d admitted requests", completed.Load(), n)
	}

	_, _, err := s.Submit(context.Background(), "k", func(context.Context, BatchInfo) (any, error) {
		return nil, nil
	})
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-close submit: %v, want ErrShuttingDown", err)
	}
}

// resolveNetwork supports shrunk benchmark names ("ResNet18/8").
func TestResolveNetworkShrunk(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	n, err := s.resolveNetwork("ResNet18/8")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "ResNet18/8" || len(n.Layers) == 0 {
		t.Fatalf("shrunk network %q with %d layers", n.Name, len(n.Layers))
	}
	if _, err := s.resolveNetwork("NoSuchNet"); err == nil {
		t.Fatal("unknown network resolved")
	}
	if _, err := s.resolveNetwork("ResNet18/x"); err == nil {
		t.Fatal("malformed shrink divisor resolved")
	}
}
