package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"seculator/internal/resilience"
)

// Error classes carried in ErrorBody.Class. They are the wire names of the
// resilience taxonomy plus the serving layer's own admission classes; the
// full error→status table lives in DESIGN.md §9.
const (
	ClassBadRequest     = "bad_request"
	ClassConfig         = "config"
	ClassUnknownSession = "unknown_session"
	ClassQueueFull      = "queue_full"
	ClassDeadline       = "deadline"
	ClassShutdown       = "shutdown"
	ClassIntegrity      = "integrity"
	ClassFreshness      = "freshness"
	ClassChannel        = "channel"
	ClassInternal       = "internal"
	ClassUnauthorized   = "unauthorized"
	ClassRateLimited    = "rate_limited"
	ClassQuarantined    = "quarantined"
	ClassSnapshot       = "snapshot_integrity"
	ClassSessionExists  = "session_exists"
)

// retryAfter is the hint sent with 429/503 backpressure responses.
const retryAfter = 1 * time.Second

// statusFor maps an inference error to its HTTP status and JSON body —
// the serving-layer rendering of the resilience taxonomy:
//
//	ConfigError               → 400 (the request described an invalid run)
//	ErrSessionUnknown         → 404 (expired, evicted, or never issued)
//	FreshnessError            → 409 (replay/splice breach; session evicted)
//	ChannelError              → 409 (command-channel breach; session evicted)
//	IntegrityError            → 409 (persistent tampering on golden data)
//	ErrQueueFull              → 429 + Retry-After (admission control)
//	ErrTenantQueueFull        → 429 + Retry-After (tenant sub-queue full)
//	ErrRateLimited            → 429 + Retry-After (tenant token bucket empty)
//	ErrUnauthorized           → 401 (unknown or missing API key)
//	ErrSessionExists          → 409 (snapshot import collides with live ID)
//	QuarantineError           → 429 throttled / 451 open + Retry-After
//	SnapshotIntegrityError    → 422 (tampered or malformed snapshot)
//	deadline/cancel           → 503 + Retry-After (the request ran out of time)
//	ErrShuttingDown           → 503 + Retry-After (drain in progress)
//	InternalError, everything else → 500
//
// 409 Conflict is deliberate for the breach classes: the request conflicted
// with the security state of the NPU (the breach latch), re-sending it
// unchanged can never succeed, and the body says what to do instead (open
// a new session).
func statusFor(err error) (int, ErrorBody) {
	body := ErrorBody{Error: err.Error()}

	switch {
	case errors.Is(err, ErrQueueFull):
		body.Class = ClassQueueFull
		body.RetryAfterMs = retryAfter.Milliseconds()
		return http.StatusTooManyRequests, body
	case errors.Is(err, ErrTenantQueueFull):
		body.Class = ClassQueueFull
		body.RetryAfterMs = retryAfter.Milliseconds()
		return http.StatusTooManyRequests, body
	case errors.Is(err, ErrRateLimited):
		body.Class = ClassRateLimited
		body.RetryAfterMs = retryAfter.Milliseconds()
		return http.StatusTooManyRequests, body
	case errors.Is(err, ErrUnauthorized):
		body.Class = ClassUnauthorized
		return http.StatusUnauthorized, body
	case errors.Is(err, ErrSessionExists):
		body.Class = ClassSessionExists
		return http.StatusConflict, body
	case errors.Is(err, ErrShuttingDown):
		body.Class = ClassShutdown
		body.RetryAfterMs = retryAfter.Milliseconds()
		return http.StatusServiceUnavailable, body
	case errors.Is(err, ErrSessionUnknown):
		body.Class = ClassUnknownSession
		return http.StatusNotFound, body
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		body.Class = ClassDeadline
		body.RetryAfterMs = retryAfter.Milliseconds()
		return http.StatusServiceUnavailable, body
	}

	var qe *resilience.QuarantineError
	if errors.As(err, &qe) {
		body.Class = ClassQuarantined
		body.RetryAfterMs = qe.RetryAfter.Milliseconds()
		if body.RetryAfterMs < 1 {
			body.RetryAfterMs = 1
		}
		if qe.State == BreakerThrottled.String() {
			// Throttled is ordinary backpressure: retry slower.
			return http.StatusTooManyRequests, body
		}
		// Open/half-open refusal: the tenant is quarantined for what its own
		// traffic did, not for load — 451 keeps it distinguishable from 429
		// so clients don't treat a security quarantine as a congestion hint.
		return http.StatusUnavailableForLegalReasons, body
	}
	var se *resilience.SnapshotIntegrityError
	if errors.As(err, &se) {
		body.Class = ClassSnapshot
		return http.StatusUnprocessableEntity, body
	}
	var fe *resilience.FreshnessError
	if errors.As(err, &fe) {
		body.Class = ClassFreshness
		layer := fe.Layer
		body.Layer = &layer
		return http.StatusConflict, body
	}
	var ce *resilience.ChannelError
	if errors.As(err, &ce) {
		body.Class = ClassChannel
		layer := ce.Layer
		body.Layer = &layer
		return http.StatusConflict, body
	}
	var ie *resilience.IntegrityError
	if errors.As(err, &ie) {
		body.Class = ClassIntegrity
		layer := ie.Layer
		body.Layer = &layer
		return http.StatusConflict, body
	}
	var cfge *resilience.ConfigError
	if errors.As(err, &cfge) {
		body.Class = ClassConfig
		return http.StatusBadRequest, body
	}
	body.Class = ClassInternal
	return http.StatusInternalServerError, body
}

// breachError reports whether err is a security breach that must evict the
// offending session: freshness and channel violations always latch the
// breach; an integrity violation only when it survived recovery.
func breachError(err error) bool {
	var fe *resilience.FreshnessError
	var ce *resilience.ChannelError
	if errors.As(err, &fe) || errors.As(err, &ce) {
		return true
	}
	var ie *resilience.IntegrityError
	return errors.As(err, &ie) && ie.Persistent
}
