package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// fair.go — weighted fair-share admission in front of the micro-batching
// scheduler. PR 3's single global queue let one hot tenant fill every slot
// and starve the rest; here each tenant owns a bounded FIFO sub-queue and a
// single dispatcher drains them by deficit round-robin (DRR): on every
// visit a tenant's deficit grows by its weight and it releases that many
// requests into the execution scheduler, so under contention tenants share
// admitted capacity in weight proportion regardless of who floods.
//
// The released window (maxInFlight) is deliberately small — just enough to
// keep the worker pool busy and micro-batches forming. Releasing everything
// at once would decide execution order at enqueue time and reduce DRR to
// FIFO; holding requests in the sub-queues keeps the ordering decision with
// the fair scheduler until the last moment.

// fqItem states (atomic): exactly one owner ever transitions an item out of
// fqQueued — the canceling submitter or the granting dispatcher, never both.
const (
	fqQueued int32 = iota
	fqCanceled
	fqGranted
)

// fqItem is one request waiting in a tenant sub-queue for its DRR grant.
type fqItem struct {
	state   atomic.Int32
	granted chan struct{}
}

// fqTenant is one tenant's sub-queue with its DRR bookkeeping.
type fqTenant struct {
	id         string
	weight     int
	maxPending int // 0 = no per-tenant bound
	items      []*fqItem
	deficit    int
}

// FairQueue is the tenant-fair admission stage. Submit enqueues under the
// caller's tenant and blocks until the dispatcher grants the request a slot
// (DRR order), then runs it through the inner micro-batching scheduler.
type FairQueue struct {
	inner *Scheduler

	mu          sync.Mutex
	cond        *sync.Cond
	tenants     map[string]*fqTenant
	order       []*fqTenant // DRR visiting order (first-seen)
	queued      int         // items in sub-queues (canceled-but-unreaped included)
	inFlight    int         // granted, not yet finished
	maxQueue    int         // bound on queued+inFlight
	maxInFlight int
	next        int // rotating DRR start index
	closed      bool
	done        chan struct{} // dispatcher exited and inner scheduler drained
}

// NewFairQueue builds the admission stage over an execution scheduler
// configured by cfg. The global bound is cfg.MaxQueue; the release window
// is min(Workers*MaxBatch, MaxQueue) so the pool stays busy, batches can
// fill, and the inner scheduler never rejects what the fair stage admitted.
func NewFairQueue(cfg SchedulerConfig) *FairQueue {
	cfg.setDefaults()
	maxInFlight := cfg.Workers * cfg.MaxBatch
	if maxInFlight > cfg.MaxQueue {
		maxInFlight = cfg.MaxQueue
	}
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	inner := cfg
	inner.MaxQueue = maxInFlight
	fq := &FairQueue{
		inner:       NewScheduler(inner),
		tenants:     make(map[string]*fqTenant),
		maxQueue:    cfg.MaxQueue,
		maxInFlight: maxInFlight,
		done:        make(chan struct{}),
	}
	fq.cond = sync.NewCond(&fq.mu)
	go fq.dispatch()
	return fq
}

// Scheduler exposes the inner micro-batching scheduler (metrics hooks).
func (fq *FairQueue) Scheduler() *Scheduler { return fq.inner }

// Depth returns admitted-but-unfinished requests (queued + in flight).
func (fq *FairQueue) Depth() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.queued + fq.inFlight
}

// Submit admits a request under a tenant and blocks until its micro-batch
// executed it or its context expired. Admission failures return
// immediately: ErrShuttingDown on drain, ErrQueueFull when the global bound
// is hit, ErrTenantQueueFull when the tenant's own sub-queue is full.
func (fq *FairQueue) Submit(ctx context.Context, t *Tenant, key string, task Task) (any, BatchInfo, error) {
	it := &fqItem{granted: make(chan struct{})}

	fq.mu.Lock()
	if fq.closed {
		fq.mu.Unlock()
		return nil, BatchInfo{}, ErrShuttingDown
	}
	if fq.queued+fq.inFlight >= fq.maxQueue {
		fq.mu.Unlock()
		return nil, BatchInfo{}, ErrQueueFull
	}
	q := fq.tenants[t.Name()]
	if q == nil {
		q = &fqTenant{id: t.Name(), weight: t.Weight(), maxPending: t.MaxPending()}
		fq.tenants[q.id] = q
		fq.order = append(fq.order, q)
	}
	if q.maxPending > 0 && len(q.items) >= q.maxPending {
		fq.mu.Unlock()
		return nil, BatchInfo{}, ErrTenantQueueFull
	}
	q.items = append(q.items, it)
	fq.queued++
	fq.cond.Signal()
	fq.mu.Unlock()

	select {
	case <-it.granted:
	case <-ctx.Done():
		if it.state.CompareAndSwap(fqQueued, fqCanceled) {
			// The slot stays counted until the dispatcher reaps it — same
			// one-owner accounting as the execution scheduler.
			return nil, BatchInfo{}, ctx.Err()
		}
		// The dispatcher granted concurrently; proceed (the inner scheduler
		// delivers the context error promptly).
		<-it.granted
	}
	res, info, err := fq.inner.Submit(ctx, key, task)
	fq.mu.Lock()
	fq.inFlight--
	fq.cond.Signal()
	fq.mu.Unlock()
	return res, info, err
}

// dispatch is the DRR loop: wait for pending work, then run rounds that
// grant in weight proportion across tenant sub-queues.
func (fq *FairQueue) dispatch() {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for {
		for fq.queued == 0 {
			if fq.closed && fq.inFlight == 0 {
				fq.mu.Unlock()
				fq.inner.Close()
				close(fq.done)
				fq.mu.Lock()
				return
			}
			fq.cond.Wait()
		}
		fq.round()
	}
}

// round is one DRR pass over every tenant with pending work. Caller holds
// fq.mu. Canceled items are reaped without consuming deficit or slots.
//
// When release slots run out mid-visit, the visit WAITS for a slot rather
// than moving on: the release window is the serialized output link of
// classic DRR, and a tenant must spend its whole quantum per visit for the
// weight proportion to hold. (Banking unspent deficit and moving on would
// let slot scarcity erode the ratio toward 1:1 — every visit would grant
// "whatever slots are free" regardless of weight.) The visiting order still
// rotates across rounds so no tenant permanently owns the first claim on a
// freed slot.
func (fq *FairQueue) round() {
	n := len(fq.order)
	if n == 0 {
		return
	}
	start := fq.next % n
	for k := 0; k < n; k++ {
		q := fq.order[(start+k)%n]
		if len(q.items) == 0 {
			q.deficit = 0
			continue
		}
		q.deficit += q.weight
		for q.deficit > 0 && len(q.items) > 0 {
			for fq.inFlight >= fq.maxInFlight {
				fq.cond.Wait()
			}
			it := q.items[0]
			q.items = q.items[1:]
			fq.queued--
			if it.state.CompareAndSwap(fqQueued, fqGranted) {
				q.deficit--
				fq.inFlight++
				close(it.granted)
			}
		}
		if len(q.items) == 0 {
			q.deficit = 0
		}
	}
	fq.next = (start + 1) % n
}

// Close drains the admission stage: new submissions fail with
// ErrShuttingDown, queued requests are still granted and executed, and
// Close returns once everything admitted has been delivered and the inner
// scheduler has shut down.
func (fq *FairQueue) Close() {
	fq.mu.Lock()
	if !fq.closed {
		fq.closed = true
		fq.cond.Broadcast()
	}
	fq.mu.Unlock()
	<-fq.done
}
