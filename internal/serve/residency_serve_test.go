package serve_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"seculator"
	"seculator/internal/host"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// Server-level residency and pipelining tests: the pipelined scheduler and
// the resident weight cache must be invisible to clients except in speed —
// same checksums as the serial, non-resident configuration — and a breach
// must drop the offending tenant's pinned trust epoch.

// TestPipelinedBatchMatchesSerial fires a concurrent burst at two servers
// — layer-pipelined (default) and SerialBatches — and cross-checks every
// response against the local reference. Identical checksums on both sides
// mean the stage interleaving changed nothing observable.
func TestPipelinedBatchMatchesSerial(t *testing.T) {
	sched := serve.SchedulerConfig{MaxBatch: 8, Linger: 5 * time.Millisecond, MaxQueue: 256}
	_, piped := newTestServer(t, serve.Options{Scheduler: sched})
	_, serial := newTestServer(t, serve.Options{
		Scheduler: serve.SchedulerConfig{MaxBatch: 8, Linger: 5 * time.Millisecond, MaxQueue: 256, SerialBatches: true},
	})
	ctx := ctxT(t)

	const burst = 8
	net := serve.MiniNet()
	golden := make([]uint64, burst)
	for i := range golden {
		in, ws := seculator.RandomModel(net, int64(i))
		ref, err := seculator.ReferenceInference(net, in, ws)
		if err != nil {
			t.Fatal(err)
		}
		golden[i] = serve.OutputSum(ref)
	}

	for name, c := range map[string]*client.Client{"pipelined": piped, "serial": serial} {
		sums := make([]uint64, burst)
		errs := make([]error, burst)
		var wg sync.WaitGroup
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i)})
				if err != nil {
					errs[i] = err
					return
				}
				sums[i] = resp.OutputSum
			}(i)
		}
		wg.Wait()
		for i := 0; i < burst; i++ {
			if errs[i] != nil {
				t.Fatalf("%s seed %d: %v", name, i, errs[i])
			}
			if sums[i] != golden[i] {
				t.Fatalf("%s seed %d: checksum %#x, reference %#x", name, i, sums[i], golden[i])
			}
		}
	}
}

// TestResidencyHitOverHTTP: the second request for a (network, seed) rides
// the pinned weights and says so; a different input on the same model still
// hits (weights are what's resident, not activations).
func TestResidencyHitOverHTTP(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	ctx := ctxT(t)

	first, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.ResidencyHit {
		t.Fatal("first request for the model claims a residency hit")
	}
	second, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !second.ResidencyHit {
		t.Fatal("second request for the model did not attach to the pin")
	}
	if second.OutputSum != first.OutputSum {
		t.Fatalf("resident checksum %#x, first %#x", second.OutputSum, first.OutputSum)
	}

	net := serve.MiniNet()
	in := make([]int32, net.Layers[0].C*net.Layers[0].H*net.Layers[0].W)
	for i := range in {
		in[i] = int32(i%13 - 6)
	}
	withInput, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 3, Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if !withInput.ResidencyHit {
		t.Fatal("input override lost the residency hit")
	}
	if withInput.OutputSum == first.OutputSum {
		t.Fatal("distinct input produced the cached output")
	}
}

// TestBreachDropsTenantResidencyEpoch: a command-channel breach moves the
// tenant's verification floor, so the tenant's next attach re-verifies the
// pinned weights before use — visible as a reverify on /metrics.
func TestBreachDropsTenantResidencyEpoch(t *testing.T) {
	var captured *host.Packet
	armed := false
	_, c := newTestServer(t, serve.Options{
		Intercept: func(layer int, p *host.Packet) {
			if !armed {
				return
			}
			switch layer {
			case 2:
				cp := *p
				cp.Payload = append([]byte(nil), p.Payload...)
				captured = &cp
			case 4:
				if captured != nil {
					*p = *captured
				}
			}
		},
	})
	ctx := ctxT(t)

	// Warm the pin, then breach from a session run.
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	armed = true
	_, err = c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Session: sess.SessionID})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("replayed command accepted: %v", err)
	}
	armed = false

	scrape, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rev := metricValue(t, scrape, "seculator_serve_residency_reverifies_total"); rev != 0 {
		t.Fatalf("reverifies=%v before the tenant's next attach, want 0", rev)
	}

	// The breached tenant's next request re-verifies the pin first.
	resp, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.ResidencyHit {
		t.Fatal("post-breach request should hit after a clean reverify")
	}
	scrape, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rev := metricValue(t, scrape, "seculator_serve_residency_reverifies_total"); rev != 1 {
		t.Fatalf("reverifies=%v after the breached tenant reattached, want 1", rev)
	}
	if fails := metricValue(t, scrape, "seculator_serve_residency_verify_failures_total"); fails != 0 {
		t.Fatalf("verify_failures=%v on clean pinned state", fails)
	}
}

// TestSnapshotCarriesNoResidency: a snapshot taken from a server running
// resident inferences restores into a server with residency disabled and
// continues bit-identically — proof the envelope carries only the
// session's own state (key, sequence window, MAC registers), never the
// shared pinned weights.
func TestSnapshotCarriesNoResidency(t *testing.T) {
	key := []byte("snapshot-sealing-key-for-tests--")
	_, c1 := newTestServer(t, serve.Options{SnapshotKey: key})
	ctx := ctxT(t)

	sess, err := c1.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// Two infers so the exported session has resident history (the second
	// is a residency hit).
	if _, err := c1.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 11, Session: sess.SessionID}); err != nil {
		t.Fatal(err)
	}
	before, err := c1.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 11, Session: sess.SessionID})
	if err != nil {
		t.Fatal(err)
	}
	if !before.ResidencyHit {
		t.Fatal("session inference never attached to the pin; test exercised nothing")
	}
	snap, err := c1.SnapshotSession(ctx, sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}

	_, c2 := newTestServer(t, serve.Options{
		SnapshotKey: key,
		Residency:   serve.ResidencyConfig{Disabled: true},
	})
	if _, err := c2.RestoreSession(ctx, snap.Snapshot); err != nil {
		t.Fatalf("restore into a residency-free server: %v", err)
	}
	after, err := c2.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 11, Session: sess.SessionID})
	if err != nil {
		t.Fatal(err)
	}
	if after.ResidencyHit {
		t.Fatal("residency-disabled server reported a hit")
	}
	if after.OutputSum != before.OutputSum || after.Commands != before.Commands {
		t.Fatalf("restored session diverged without residency: sum %#x/%#x commands %d/%d",
			after.OutputSum, before.OutputSum, after.Commands, before.Commands)
	}
}
