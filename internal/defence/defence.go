// Package defence plans a Seculator+ obfuscation configuration: given a
// victim network and a model-extraction leakage target, it searches the
// widening factors (and, when geometry alone cannot reach the target, adds
// dummy-network injection) for the cheapest schedule that meets the bound —
// turning Section 7.5's individual mechanisms into a usable policy.
//
// Leakage is the attacker's mean shape-reconstruction error (package
// attack): 0 means perfect extraction, so a defence target of e.g. 0.5
// demands at least 50 % mean error. Cost is the execution-time ratio
// against the unprotected-size Seculator+ run.
package defence

import (
	"context"
	"fmt"

	"seculator/internal/attack"
	"seculator/internal/protect"
	"seculator/internal/runner"
	"seculator/internal/widen"
	"seculator/internal/workload"
)

// Plan is a chosen obfuscation configuration.
type Plan struct {
	WidenFactor float64
	DummyPeriod int // 0: no dummy injection
	DummyLayers int

	Leakage  float64 // attacker's mean shape error under the plan
	Overhead float64 // cycles ratio vs the unwidened Seculator+ run

	Network  workload.Network // the widened network
	Schedule []workload.Layer // execution schedule incl. decoys (nil if none)
}

// Options bound the planner's search.
type Options struct {
	Factors     []float64 // widening factors to consider, ascending
	DummyEvery  int       // injection period when decoys are needed
	DummyLayers int       // decoy depth
}

// DefaultOptions returns a pragmatic search space.
func DefaultOptions() Options {
	return Options{
		Factors:     []float64{1.0, 1.25, 1.5, 2.0, 3.0},
		DummyEvery:  2,
		DummyLayers: 4,
	}
}

// PlanDefence finds the cheapest configuration with Leakage >= target and
// Overhead <= maxOverhead. Factors are tried in order (ascending cost);
// if no pure widening reaches the target, dummy injection is added to the
// smallest factor that fits the budget — decoys break layer alignment,
// which the leakage metric scores as total confusion.
func PlanDefence(ctx context.Context, victim workload.Network, cfg runner.Config, target, maxOverhead float64, opt Options) (Plan, error) {
	if target < 0 || maxOverhead < 1 {
		return Plan{}, fmt.Errorf("defence: invalid bounds target=%g maxOverhead=%g", target, maxOverhead)
	}
	if len(opt.Factors) == 0 {
		return Plan{}, fmt.Errorf("defence: no widening factors to search")
	}
	base, err := runner.Run(ctx, victim, protect.SeculatorPlus, cfg)
	if err != nil {
		return Plan{}, err
	}

	var fallback *Plan // cheapest in-budget plan, for dummy augmentation
	for _, f := range opt.Factors {
		wnet, err := widen.Network(victim, f)
		if err != nil {
			return Plan{}, err
		}
		leak, err := attack.NetworkLeakage(victim, wnet, cfg.NPU, cfg.DRAM)
		if err != nil {
			return Plan{}, err
		}
		run, err := runner.Run(ctx, wnet, protect.SeculatorPlus, cfg)
		if err != nil {
			return Plan{}, err
		}
		p := Plan{
			WidenFactor: f,
			Leakage:     leak,
			Overhead:    float64(run.Cycles) / float64(base.Cycles),
			Network:     wnet,
		}
		if p.Overhead > maxOverhead {
			break // factors ascend; everything further is costlier
		}
		if fallback == nil {
			fb := p
			fallback = &fb
		}
		if p.Leakage >= target {
			return p, nil
		}
		fb := p
		fallback = &fb
	}

	// Widening alone cannot reach the target within budget: add decoys to
	// the widest in-budget configuration.
	if fallback == nil {
		return Plan{}, fmt.Errorf("defence: no widening factor fits overhead budget %.2fx", maxOverhead)
	}
	p := *fallback
	first := p.Network.Layers[0]
	dummy, err := widen.Dummy("decoy", opt.DummyLayers, max(4, first.H/4), max(4, first.W/4), 8, 8)
	if err != nil {
		return Plan{}, err
	}
	sched, err := widen.Intersperse(p.Network, dummy, opt.DummyEvery)
	if err != nil {
		return Plan{}, err
	}
	run, err := runner.RunLayers(ctx, "defended", sched, protect.SeculatorPlus, cfg)
	if err != nil {
		return Plan{}, err
	}
	p.DummyPeriod = opt.DummyEvery
	p.DummyLayers = opt.DummyLayers
	p.Schedule = sched
	p.Overhead = float64(run.Cycles) / float64(base.Cycles)
	// Decoys destroy layer alignment entirely: the attacker cannot even
	// segment the model, which the metric scores as total confusion.
	p.Leakage = 1.0
	if p.Leakage < target {
		return Plan{}, fmt.Errorf("defence: target leakage %.2f unreachable", target)
	}
	if p.Overhead > maxOverhead {
		return Plan{}, fmt.Errorf("defence: dummy injection exceeds overhead budget (%.2fx > %.2fx)",
			p.Overhead, maxOverhead)
	}
	return p, nil
}
