package defence

import (
	"context"
	"testing"

	"seculator/internal/runner"
	"seculator/internal/workload"
)

func victim() workload.Network {
	return workload.Network{
		Name: "victim",
		Layers: []workload.Layer{
			{Name: "c1", Type: workload.Conv, C: 3, H: 32, W: 32, K: 16, R: 3, S: 3, Stride: 1},
			{Name: "c2", Type: workload.Conv, C: 16, H: 32, W: 32, K: 32, R: 3, S: 3, Stride: 1},
		},
	}
}

func TestPlanPureWidening(t *testing.T) {
	cfg := runner.DefaultConfig()
	p, err := PlanDefence(context.Background(), victim(), cfg, 0.3, 20, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Leakage < 0.3 {
		t.Fatalf("plan misses the target: leakage %.3f", p.Leakage)
	}
	if p.WidenFactor <= 1.0 {
		t.Fatalf("target 0.3 needs widening, got factor %.2f", p.WidenFactor)
	}
	if p.DummyPeriod != 0 || p.Schedule != nil {
		t.Fatal("pure widening plan should not inject decoys")
	}
	if p.Overhead <= 1.0 || p.Overhead > 20 {
		t.Fatalf("overhead out of budget: %.2fx", p.Overhead)
	}
}

func TestPlanTrivialTarget(t *testing.T) {
	cfg := runner.DefaultConfig()
	p, err := PlanDefence(context.Background(), victim(), cfg, 0.0, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.WidenFactor != 1.0 {
		t.Fatalf("zero target should cost nothing, got factor %.2f", p.WidenFactor)
	}
}

func TestPlanFallsBackToDummies(t *testing.T) {
	cfg := runner.DefaultConfig()
	// A 0.99 target is unreachable by the in-budget widening factors, but
	// decoy injection (alignment destruction) reaches it.
	p, err := PlanDefence(context.Background(), victim(), cfg, 0.99, 50, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.DummyPeriod == 0 || len(p.Schedule) <= len(victim().Layers) {
		t.Fatalf("expected dummy injection: %+v", p)
	}
	if p.Leakage < 0.99 {
		t.Fatalf("plan leakage %.3f below target", p.Leakage)
	}
}

func TestPlanBudgetTooTight(t *testing.T) {
	cfg := runner.DefaultConfig()
	// Overhead budget 1.0 forbids everything beyond the identity; the
	// identity cannot reach a 0.9 target, and dummies exceed the budget.
	if _, err := PlanDefence(context.Background(), victim(), cfg, 0.9, 1.0, DefaultOptions()); err == nil {
		t.Fatal("impossible budget accepted")
	}
}

func TestPlanValidation(t *testing.T) {
	cfg := runner.DefaultConfig()
	if _, err := PlanDefence(context.Background(), victim(), cfg, -1, 2, DefaultOptions()); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := PlanDefence(context.Background(), victim(), cfg, 0.5, 0.5, DefaultOptions()); err == nil {
		t.Fatal("sub-1 budget accepted")
	}
	if _, err := PlanDefence(context.Background(), victim(), cfg, 0.5, 2, Options{}); err == nil {
		t.Fatal("empty factor list accepted")
	}
}
