package gateway

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics.go — the gateway's counter set, rendered Prometheus-style on
// GET /metrics in the same idiom as internal/serve. Per-replica
// attribution is the point: the flat serve counters tell you the fleet is
// slow, these tell you which replica.

// latencyWindow keeps the most recent forward latencies of one replica so
// the scrape can report tail quantiles without a histogram dependency.
const latencyWindow = 1024

// replicaStats is one replica's forward-path accounting.
type replicaStats struct {
	requests   uint64
	errors     uint64
	latencySum time.Duration
	window     []time.Duration // ring buffer of recent latencies
	windowPos  int
}

// Metrics is the gateway counter set. Migration reasons label the
// migrations counter: "place" (create-time move to the ring owner),
// "rebalance" (ring change), "drain" (replica pre-draining), "failover"
// (replica death, vault restore).
type Metrics struct {
	mu sync.Mutex

	requests          map[int]uint64 // gateway HTTP status -> count
	replicas          map[string]*replicaStats
	retries           uint64
	migrations        map[string]uint64 // reason -> count
	migrationFailures uint64
}

// Migration reasons as rendered on /metrics.
const (
	MigratePlace     = "place"
	MigrateRebalance = "rebalance"
	MigrateDrain     = "drain"
	MigrateFailover  = "failover"
)

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:   make(map[int]uint64),
		replicas:   make(map[string]*replicaStats),
		migrations: make(map[string]uint64),
	}
}

// Request records one gateway response's final status.
func (m *Metrics) Request(status int) {
	m.mu.Lock()
	m.requests[status]++
	m.mu.Unlock()
}

// Forward records one forwarded request's outcome against its replica.
// Transport errors count as errors with no latency sample (the duration
// of a refused connection says nothing about the replica's service time).
func (m *Metrics) Forward(replica string, d time.Duration, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.replicas[replica]
	if rs == nil {
		rs = &replicaStats{}
		m.replicas[replica] = rs
	}
	rs.requests++
	if !ok {
		rs.errors++
		return
	}
	rs.latencySum += d
	if len(rs.window) < latencyWindow {
		rs.window = append(rs.window, d)
	} else {
		rs.window[rs.windowPos] = d
	}
	rs.windowPos = (rs.windowPos + 1) % latencyWindow
}

// Retry records one forward retried on an alternate replica.
func (m *Metrics) Retry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

// Migration records one session migration by reason.
func (m *Metrics) Migration(reason string) {
	m.mu.Lock()
	m.migrations[reason]++
	m.mu.Unlock()
}

// MigrationFailure records one migration attempt that failed (the session
// stays where it was; the rebalancer retries on its next pass).
func (m *Metrics) MigrationFailure() {
	m.mu.Lock()
	m.migrationFailures++
	m.mu.Unlock()
}

// quantile returns the q-quantile of the window (copied and sorted).
// Caller holds m.mu.
func (rs *replicaStats) quantile(q float64) time.Duration {
	if len(rs.window) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), rs.window...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ReplicaView is the scrape-time health view of one replica, sampled by
// the gateway (the metrics type stays free of prober dependencies).
type ReplicaView struct {
	Name      string
	State     HealthState
	Draining  bool
	Inflight  int64
	Ejections uint64
}

// Render writes the scrape text. Ring generation, vault size, and the
// replica health views are passed in so the metrics type stays a plain
// counter bag.
func (m *Metrics) Render(ringGen uint64, vaultSessions int, views []ReplicaView) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	codes := make([]int, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "seculator_gateway_requests_total{code=%q} %d\n", fmt.Sprint(c), m.requests[c])
	}
	fmt.Fprintf(&b, "seculator_gateway_ring_generation %d\n", ringGen)
	fmt.Fprintf(&b, "seculator_gateway_vault_sessions %d\n", vaultSessions)
	fmt.Fprintf(&b, "seculator_gateway_retries_total %d\n", m.retries)
	reasons := make([]string, 0, len(m.migrations))
	for r := range m.migrations {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, "seculator_gateway_migrations_total{reason=%q} %d\n", r, m.migrations[r])
	}
	fmt.Fprintf(&b, "seculator_gateway_migration_failures_total %d\n", m.migrationFailures)

	names := make([]string, 0, len(m.replicas))
	for n := range m.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rs := m.replicas[n]
		fmt.Fprintf(&b, "seculator_gateway_replica_requests_total{replica=%q} %d\n", n, rs.requests)
		fmt.Fprintf(&b, "seculator_gateway_replica_errors_total{replica=%q} %d\n", n, rs.errors)
		fmt.Fprintf(&b, "seculator_gateway_replica_latency_ms_total{replica=%q} %.3f\n", n, float64(rs.latencySum)/float64(time.Millisecond))
		fmt.Fprintf(&b, "seculator_gateway_replica_latency_p50_ms{replica=%q} %.3f\n", n, float64(rs.quantile(0.50))/float64(time.Millisecond))
		fmt.Fprintf(&b, "seculator_gateway_replica_latency_p99_ms{replica=%q} %.3f\n", n, float64(rs.quantile(0.99))/float64(time.Millisecond))
	}
	for _, v := range views {
		fmt.Fprintf(&b, "seculator_gateway_replica_state{replica=%q} %d\n", v.Name, int(v.State))
		draining := 0
		if v.Draining {
			draining = 1
		}
		fmt.Fprintf(&b, "seculator_gateway_replica_draining{replica=%q} %d\n", v.Name, draining)
		fmt.Fprintf(&b, "seculator_gateway_replica_inflight{replica=%q} %d\n", v.Name, v.Inflight)
		fmt.Fprintf(&b, "seculator_gateway_replica_ejections_total{replica=%q} %d\n", v.Name, v.Ejections)
	}
	return b.String()
}
