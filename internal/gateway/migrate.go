package gateway

import (
	"context"
	"crypto/hmac"
	"errors"
	"sync"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// migrate.go — the session vault and the migration paths that keep the
// "one session, one replica" invariant across replica drain, death, and
// ring change.
//
// The vault is the gateway's write-through shadow of every session it
// placed: which replica currently holds it, and the latest sealed
// snapshot of its durable state (updated atomically with every
// session-bound inference via the ReturnSnapshot piggyback). Three
// movement paths share the vault:
//
//   - live migration (placeSession, evacuate, rebalance): the source is
//     up, so the gateway exports a fresh sealed snapshot from it, imports
//     at the target, then evicts the source — the session's sequence
//     window and MAC registers hand off bit-identically, and the source
//     copy dies so the state can never fork.
//
//   - failover (sessionFailover, failoverAll): the source is dead, so the
//     vault's last snapshot restores at the survivor. The write-through
//     discipline makes that snapshot exactly the post-state of the last
//     acknowledged inference — nothing a client saw succeed is lost.
//
//   - the vault never migrates a session whose home might still hold
//     newer state: failover paths require the home to be observed down
//     first (the sequence window must not fork across replicas).

// vaultEntry tracks one session. home and env are guarded by mu; the
// entry itself lives in the vault map until the session dies.
type vaultEntry struct {
	mu      sync.Mutex
	replica string
	env     *serve.SnapshotEnvelope // latest sealed state; nil until first snapshot
}

func (e *vaultEntry) home() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replica
}

func (e *vaultEntry) envelope() *serve.SnapshotEnvelope {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.env
}

func (e *vaultEntry) set(replica string, env *serve.SnapshotEnvelope) {
	e.mu.Lock()
	e.replica = replica
	if env != nil {
		e.env = env
	}
	e.mu.Unlock()
}

// vault is the session table: id → entry.
type vault struct {
	mu sync.Mutex
	m  map[string]*vaultEntry
}

func newVault() *vault { return &vault{m: make(map[string]*vaultEntry)} }

// put records a session's home (and, when non-nil, its latest snapshot).
func (v *vault) put(id, replica string, env *serve.SnapshotEnvelope) {
	v.mu.Lock()
	e := v.m[id]
	if e == nil {
		e = &vaultEntry{}
		v.m[id] = e
	}
	v.mu.Unlock()
	e.set(replica, env)
}

func (v *vault) get(id string) *vaultEntry {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.m[id]
}

func (v *vault) drop(id string) {
	v.mu.Lock()
	delete(v.m, id)
	v.mu.Unlock()
}

func (v *vault) size() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.m)
}

// snapshotIDs returns every vaulted session id (unordered).
func (v *vault) snapshotIDs() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.m))
	for id := range v.m {
		out = append(out, id)
	}
	return out
}

// Locations returns a copy of the session table (session id → replica
// name) — the observability hook tests and the chaos harness assert on.
func (g *Gateway) Locations() map[string]string {
	g.vault.mu.Lock()
	ids := make([]string, 0, len(g.vault.m))
	for id := range g.vault.m {
		ids = append(ids, id)
	}
	g.vault.mu.Unlock()
	out := make(map[string]string, len(ids))
	for _, id := range ids {
		if e := g.vault.get(id); e != nil {
			out[id] = e.home()
		}
	}
	return out
}

// migrateLive moves one session from a live source to target: export a
// fresh sealed snapshot, import it at the target, evict the source copy.
// It returns the migrated envelope, or nil on failure (the session stays
// at the source; the caller's next pass retries).
func (g *Gateway) migrateLive(src, target *replica, id, reason string) *serve.SnapshotEnvelope {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.ForwardTimeout)
	defer cancel()
	snap, err := src.admin.AdminSnapshot(ctx, id)
	if err != nil {
		g.metrics.MigrationFailure()
		return nil
	}
	env := snap.Snapshot
	if !g.restoreAt(target, &env) {
		g.metrics.MigrationFailure()
		return nil
	}
	// Source eviction closes the hand-off; a failure here (source died
	// mid-migration) is harmless — the target copy is authoritative in the
	// vault, and the orphan idle-expires.
	_ = src.admin.AdminEvict(ctx, id)
	g.metrics.Migration(reason)
	return &env
}

// restoreAt imports a sealed envelope at a replica through the admin
// surface. A session_exists collision counts as success — the state is
// already there (an earlier half-completed migration), and the envelope's
// MAC guarantees it is the same session.
func (g *Gateway) restoreAt(target *replica, env *serve.SnapshotEnvelope) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.ForwardTimeout)
	defer cancel()
	_, err := target.admin.AdminRestore(ctx, *env)
	if err == nil {
		return true
	}
	var ae *client.APIError
	if errors.As(err, &ae) && ae.Body.Class == serve.ClassSessionExists {
		return true
	}
	return false
}

// failoverAll restores every vaulted session homed on a dead replica at
// its next ring alternative. Runs when the prober (or the forward path)
// ejects a replica; sessions without a vaulted snapshot are dropped (they
// never completed a create, so no client holds their id in good faith).
func (g *Gateway) failoverAll(deadName string) {
	rt := g.routing.Load()
	for _, id := range g.vault.snapshotIDs() {
		ent := g.vault.get(id)
		if ent == nil || ent.home() != deadName {
			continue
		}
		env := ent.envelope()
		if env == nil {
			g.vault.drop(id)
			continue
		}
		alt := sessionTarget(rt, id, deadName, time.Now(), (*prober).Available)
		if alt == nil {
			continue // no survivor; a later probe round retries
		}
		if !g.restoreAt(alt, env) {
			g.metrics.MigrationFailure()
			continue
		}
		// Re-check the home under the entry's own state: a concurrent
		// per-request failover may have already moved it.
		if ent.home() == deadName {
			ent.set(alt.name, env)
			g.metrics.Migration(MigrateFailover)
		}
	}
}

// evacuate live-migrates every vaulted session off a draining replica.
// The replica still serves inference during the sweep, so sessions keep
// flowing until the moment their hand-off completes.
func (g *Gateway) evacuate(drainingName string) {
	rt := g.routing.Load()
	src := rt.replicas[drainingName]
	if src == nil {
		return
	}
	for _, id := range g.vault.snapshotIDs() {
		ent := g.vault.get(id)
		if ent == nil || ent.home() != drainingName {
			continue
		}
		target := sessionTarget(rt, id, drainingName, time.Now(), (*prober).AcceptingSessions)
		if target == nil {
			continue
		}
		if env := g.migrateLive(src, target, id, MigrateDrain); env != nil {
			ent.set(target.name, env)
		}
	}
}

// rebalanceLocked re-homes every vaulted session to its ring owner after
// a membership change. Live homes migrate; dead homes restore from the
// vault. Returns how many sessions moved. Caller holds g.reloadMu.
func (g *Gateway) rebalanceLocked() int {
	rt := g.routing.Load()
	moved := 0
	for _, id := range g.vault.snapshotIDs() {
		ent := g.vault.get(id)
		if ent == nil {
			continue
		}
		home := ent.home()
		desired := sessionTarget(rt, id, "", time.Now(), (*prober).AcceptingSessions)
		if desired == nil || desired.name == home {
			continue
		}
		src := rt.replicas[home]
		if src != nil && src.hp.Available(time.Now()) {
			if env := g.migrateLive(src, desired, id, MigrateRebalance); env != nil {
				ent.set(desired.name, env)
				moved++
			}
			continue
		}
		// The old home left the config or is down: restore from the vault.
		env := ent.envelope()
		if env == nil {
			continue
		}
		if g.restoreAt(desired, env) {
			ent.set(desired.name, env)
			g.metrics.Migration(MigrateRebalance)
			moved++
		} else {
			g.metrics.MigrationFailure()
		}
	}
	return moved
}

// Rebalance re-homes vaulted sessions to their ring owners (the public
// hook the reload path and tests share).
func (g *Gateway) Rebalance() int {
	g.reloadMu.Lock()
	defer g.reloadMu.Unlock()
	return g.rebalanceLocked()
}

// hmacEqual compares two strings in constant time (admin-key check).
func hmacEqual(a, b string) bool { return hmac.Equal([]byte(a), []byte(b)) }
