package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"

	"seculator/internal/serve"
)

// arena.go — reusable proxy buffers and pre-serialized error bodies for
// the gateway hot path (DESIGN.md §15). Forwarding a request used to
// allocate a marshal buffer, an io.ReadAll growth chain, and a response
// encoder per hop; the proxy now stages request bodies and upstream reads
// in pooled buffers and renders the no-replica error classes from bytes
// serialized once at init.

// maxPooledProxyBuf bounds the capacity a proxy buffer may keep when
// returned to its pool, so one oversized response doesn't pin its
// high-water mark forever.
const maxPooledProxyBuf = 1 << 20

var proxyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getProxyBuf() *bytes.Buffer {
	b := proxyBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putProxyBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledProxyBuf {
		proxyBufPool.Put(b)
	}
}

// readInto drains src (already limited by the caller) into pooled scratch
// and returns an exact-size copy the caller owns: one right-sized
// allocation instead of io.ReadAll's doubling growth chain, and no release
// protocol to thread through the relay paths.
func readInto(src io.Reader) ([]byte, error) {
	buf := getProxyBuf()
	defer putProxyBuf(buf)
	if _, err := buf.ReadFrom(src); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// jsonScratch is one pooled response/body encoder: a buffer with a
// json.Encoder permanently bound to it.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() any {
	s := &jsonScratch{}
	s.enc = json.NewEncoder(&s.buf)
	return s
}}

func encodeJSON(v any) (*jsonScratch, error) {
	s := jsonPool.Get().(*jsonScratch)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		putJSON(s)
		return nil, err
	}
	return s, nil
}

func putJSON(s *jsonScratch) {
	if s.buf.Cap() <= maxPooledProxyBuf {
		jsonPool.Put(s)
	}
}

// writeJSONPooled renders v through a pooled encoder straight to the
// response, with Content-Length set from the staged bytes.
func writeJSONPooled(w http.ResponseWriter, status int, v any) {
	s, err := encodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(s.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(s.buf.Bytes())
	putJSON(s)
}

// decodeJSONBody is the pooled-scratch counterpart of a one-shot
// json.NewDecoder(LimitReader(...)).Decode.
func decodeJSONBody(body io.Reader, limit int64, v any) error {
	buf := getProxyBuf()
	defer putProxyBuf(buf)
	if _, err := buf.ReadFrom(io.LimitReader(body, limit)); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), v)
}

// Pre-serialized bodies for the gateway's fixed upstream-error classes:
// these fire exactly when the gateway is saturated or its backends are
// gone — the worst moment to allocate and marshal per request.
var (
	preNoReplica          = mustErrorBody("gateway: no available replica")
	preNoSessionReplica   = mustErrorBody("gateway: no available replica for session")
	preNoSessionAccepting = mustErrorBody("gateway: no replica accepting sessions")
)

func mustErrorBody(msg string) []byte {
	b, err := json.Marshal(serve.ErrorBody{Error: msg, Class: ClassUpstream, RetryAfterMs: 1000})
	if err != nil {
		panic(err)
	}
	return b
}

// upstreamErrorStatic writes a pre-serialized 502 body.
func (g *Gateway) upstreamErrorStatic(w http.ResponseWriter, pre []byte) {
	g.metrics.Request(http.StatusBadGateway)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(pre)))
	w.WriteHeader(http.StatusBadGateway)
	_, _ = w.Write(pre)
}
