package gateway

import (
	"fmt"
	"testing"
)

// The consistent-hash property the rebalancer depends on: growing the
// fleet from N to N+1 replicas only moves keys TO the new replica, and
// the moved fraction stays near K/(N+1) — far from the full reshuffle a
// mod-N hash would cause.
func TestRingRebalanceProperty(t *testing.T) {
	const keys = 4000
	for _, n := range []int{2, 3, 5, 8} {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("replica-%d", i)
		}
		before := NewRing(names, 0)
		after := NewRing(append(append([]string(nil), names...), "replica-new"), 0)

		moved := 0
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("s-%08x", k*2654435761)
			ob, oa := before.Owner(key), after.Owner(key)
			if ob == oa {
				continue
			}
			moved++
			if oa != "replica-new" {
				t.Fatalf("n=%d key %s moved %s→%s, not to the new replica", n, key, ob, oa)
			}
		}
		// Expect ~keys/(n+1) moved; allow 2× slack for vnode imbalance.
		limit := 2 * keys / (n + 1)
		if moved == 0 || moved > limit {
			t.Fatalf("n=%d: %d/%d keys moved, want (0, %d]", n, moved, keys, limit)
		}
	}
}

// Removing a replica must only move that replica's keys.
func TestRingRemovalProperty(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	before := NewRing(names, 0)
	after := NewRing([]string{"a", "b", "d"}, 0)
	for k := 0; k < 2000; k++ {
		key := fmt.Sprintf("s-%06d", k)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != "c" && ob != oa {
			t.Fatalf("key %s moved %s→%s though %s survived", key, ob, oa, ob)
		}
		if oa == "c" {
			t.Fatalf("key %s assigned to removed replica", key)
		}
	}
}

// The ring is deterministic: same membership, same placement, regardless
// of input order.
func TestRingDeterminism(t *testing.T) {
	r1 := NewRing([]string{"a", "b", "c"}, 32)
	r2 := NewRing([]string{"c", "a", "b"}, 32)
	for k := 0; k < 500; k++ {
		key := fmt.Sprintf("s-%d", k)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("placement depends on membership order at key %s", key)
		}
	}
}

// Seq starts at the owner and enumerates every replica exactly once.
func TestRingSeq(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 16)
	for k := 0; k < 100; k++ {
		key := fmt.Sprintf("s-%d", k)
		seq := r.Seq(key)
		if len(seq) != 3 {
			t.Fatalf("Seq(%s) = %v, want 3 distinct replicas", key, seq)
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("Seq(%s) starts at %s, owner is %s", key, seq[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("Seq(%s) repeats %s", key, n)
			}
			seen[n] = true
		}
	}
}

// Rendezvous ordering is total, deterministic, and reasonably balanced in
// its first choice.
func TestRendezvousSpread(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	first := map[string]int{}
	for k := 0; k < 4000; k++ {
		key := fmt.Sprintf("tenant-%d", k)
		order := Rendezvous(names, key)
		if len(order) != 4 {
			t.Fatalf("lost a replica: %v", order)
		}
		again := Rendezvous([]string{"d", "c", "b", "a"}, key)
		for i := range order {
			if order[i] != again[i] {
				t.Fatalf("rendezvous depends on input order: %v vs %v", order, again)
			}
		}
		first[order[0]]++
	}
	for _, n := range names {
		if first[n] < 4000/4/2 {
			t.Fatalf("replica %s got only %d/4000 first picks: %v", n, first[n], first)
		}
	}
}
