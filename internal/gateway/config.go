package gateway

import (
	"encoding/json"
	"fmt"
	"os"
)

// config.go — the reloadable half of the gateway's configuration: the
// replica set and routing knobs an operator changes at runtime (SIGHUP or
// POST /admin/reload) without dropping in-flight requests. Listener
// address, keys, and health cadence stay process-lifetime options.

// ReplicaConfig names one backend replica.
type ReplicaConfig struct {
	// Name is the stable identity of the replica — it is what the ring
	// hashes, so a replica that moves hosts keeps its sessions iff its
	// name survives the move.
	Name string `json:"name"`
	// URL is the base URL of the replica's serving API.
	URL string `json:"url"`
}

// Config is the hot-reloadable gateway configuration (the JSON file
// format of -config).
type Config struct {
	Replicas []ReplicaConfig `json:"replicas"`
	// Vnodes is the per-replica virtual-node count (0 = DefaultVnodes).
	Vnodes int `json:"vnodes,omitempty"`
	// LoadFactor is the bounded-load factor for stateless spread: a
	// replica is skipped while its in-flight count exceeds
	// LoadFactor × (fleet in-flight / available replicas). 0 means
	// DefaultLoadFactor.
	LoadFactor float64 `json:"load_factor,omitempty"`
}

// Validate rejects configurations the router cannot act on.
func (c *Config) Validate() error {
	if len(c.Replicas) == 0 {
		return fmt.Errorf("gateway: config has no replicas")
	}
	seen := make(map[string]bool, len(c.Replicas))
	for i, r := range c.Replicas {
		if r.Name == "" || r.URL == "" {
			return fmt.Errorf("gateway: replica %d needs both name and url", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("gateway: duplicate replica name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if c.LoadFactor != 0 && c.LoadFactor < 1 {
		return fmt.Errorf("gateway: load_factor %v below 1 would refuse all overflow", c.LoadFactor)
	}
	if c.Vnodes < 0 {
		return fmt.Errorf("gateway: negative vnodes")
	}
	return nil
}

// LoadConfig reads and validates a config file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("gateway: read config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("gateway: parse config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
