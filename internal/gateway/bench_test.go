package gateway_test

import (
	"context"
	"testing"
	"time"

	"seculator/internal/gateway"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

func newBenchCluster(b *testing.B, n int) *client.Client {
	b.Helper()
	c, err := gateway.StartLocal(gateway.LocalOptions{Replicas: n})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	return client.New(c.GatewayURL, nil)
}

// benchInput derives a distinct deterministic activation input per
// iteration (same recipe as the serve benches), so the pinned-model
// benches measure the hot path with varying inputs.
func benchInput(i int) []int32 {
	net := serve.MiniNet()
	first := net.Layers[0]
	in := make([]int32, first.C*first.H*first.W)
	x := uint64(i)*2654435761 + 99
	for j := range in {
		x = x*6364136223846793005 + 1442695040888963407
		in[j] = int32(x>>33)%257 - 128
	}
	return in
}

// BenchmarkGatewayInfer measures the proxy overhead the gateway adds on
// top of a replica's stateless inference: one extra HTTP hop plus routing.
// Compare against BenchmarkServeInferResident for the delta.
func BenchmarkGatewayInfer(b *testing.B) {
	c := newBenchCluster(b, 2)
	ctx := context.Background()
	if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 1, Input: benchInput(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewaySessionInfer adds the sticky-session path: vault
// lookup, home routing, and the write-through snapshot piggyback (the
// replica seals a snapshot per inference).
func BenchmarkGatewaySessionInfer(b *testing.B) {
	c := newBenchCluster(b, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	sess, err := c.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := serve.InferRequest{Network: "Mini", Seed: 1, Input: benchInput(i), Session: sess.SessionID}
		if _, err := c.Infer(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
