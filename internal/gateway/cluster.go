package gateway

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http/httptest"
	"time"

	"seculator/internal/serve"
)

// cluster.go — LocalCluster: an in-process replica fleet behind a
// gateway, on loopback listeners. It is the shared fixture of the
// gateway's tests, the loadgen -gateway mode, the multi-replica chaos
// campaign, and the conformance gateway oracle — all of which need "N
// replicas + gateway, shared snapshot/admin keys, and a way to kill or
// drain one replica".

// LocalReplica is one in-process replica: the serve.Server and its
// loopback listener.
type LocalReplica struct {
	Name   string
	URL    string
	Server *serve.Server

	hs     *httptest.Server
	killed bool
}

// LocalOptions configures StartLocal.
type LocalOptions struct {
	// Replicas is the fleet size (default 2).
	Replicas int
	// ServeOptions builds replica i's serve.Options. SnapshotKey and
	// AdminKey are overwritten with the cluster-shared keys after the
	// callback (they must match fleet-wide or migration cannot work).
	// Nil means defaults.
	ServeOptions func(i int) serve.Options
	// Gateway overrides gateway options; Config and AdminKey are filled in
	// by StartLocal.
	Gateway Options
}

// LocalCluster is the running fleet.
type LocalCluster struct {
	Gateway    *Gateway
	GatewayURL string
	Replicas   []*LocalReplica

	SnapshotKey []byte
	AdminKey    string

	ghs *httptest.Server
}

// StartLocal brings up the fleet and its gateway.
func StartLocal(opts LocalOptions) (*LocalCluster, error) {
	n := opts.Replicas
	if n <= 0 {
		n = 2
	}
	snapKey := make([]byte, 32)
	if _, err := rand.Read(snapKey); err != nil {
		return nil, err
	}
	var adminRaw [16]byte
	if _, err := rand.Read(adminRaw[:]); err != nil {
		return nil, err
	}
	c := &LocalCluster{SnapshotKey: snapKey, AdminKey: hex.EncodeToString(adminRaw[:])}

	cfg := Config{}
	for i := 0; i < n; i++ {
		var so serve.Options
		if opts.ServeOptions != nil {
			so = opts.ServeOptions(i)
		}
		so.SnapshotKey = snapKey
		so.AdminKey = c.AdminKey
		srv, err := serve.New(so)
		if err != nil {
			c.Stop()
			return nil, err
		}
		hs := httptest.NewServer(srv.Handler())
		rep := &LocalReplica{
			Name:   fmt.Sprintf("replica-%d", i),
			URL:    hs.URL,
			Server: srv,
			hs:     hs,
		}
		c.Replicas = append(c.Replicas, rep)
		cfg.Replicas = append(cfg.Replicas, ReplicaConfig{Name: rep.Name, URL: rep.URL})
	}

	gopts := opts.Gateway
	gopts.Config = cfg
	gopts.AdminKey = c.AdminKey
	g, err := New(gopts)
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.Gateway = g
	c.ghs = httptest.NewServer(g.Handler())
	c.GatewayURL = c.ghs.URL
	return c, nil
}

// Replica returns the replica by name, or nil.
func (c *LocalCluster) Replica(name string) *LocalReplica {
	for _, r := range c.Replicas {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Kill abruptly takes a replica down: active connections are severed and
// the listener closes, so the gateway sees transport errors immediately —
// the crash the failover path exists for. The serve.Server drains in the
// background (its in-process state is irrelevant once unreachable).
func (c *LocalCluster) Kill(name string) {
	r := c.Replica(name)
	if r == nil || r.killed {
		return
	}
	r.killed = true
	r.hs.CloseClientConnections()
	go r.hs.Close()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = r.Server.Close(ctx)
	}()
}

// Drain puts a replica into graceful pre-drain (it keeps serving, refuses
// new sessions, reports "draining" on /healthz). The gateway's prober
// notices on its next round and evacuates the replica's sessions.
func (c *LocalCluster) Drain(name string) {
	if r := c.Replica(name); r != nil {
		r.Server.BeginDrain()
	}
}

// Stop tears the whole fleet down (gateway first, then replicas).
func (c *LocalCluster) Stop() {
	if c.Gateway != nil {
		c.Gateway.Close()
	}
	if c.ghs != nil {
		c.ghs.Close()
	}
	for _, r := range c.Replicas {
		if r.killed {
			continue
		}
		r.hs.CloseClientConnections()
		r.hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = r.Server.Close(ctx)
		cancel()
	}
}
