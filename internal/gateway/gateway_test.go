package gateway_test

import (
	"context"
	"testing"
	"time"

	"seculator/internal/gateway"
	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// fastHealth is a prober configuration quick enough for tests without
// being racy on a loaded single-core CI box.
func fastHealth() gateway.HealthConfig {
	return gateway.HealthConfig{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		FailAfter:     2,
		EjectFor:      100 * time.Millisecond,
		RecoverAfter:  1,
	}
}

// startCluster brings up n replicas behind a gateway with fast probing
// and returns a typed client pointed at the gateway.
func startCluster(t *testing.T, n int) (*gateway.LocalCluster, *client.Client) {
	t.Helper()
	c, err := gateway.StartLocal(gateway.LocalOptions{
		Replicas: n,
		Gateway:  gateway.Options{Health: fastHealth()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, client.New(c.GatewayURL, nil)
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A stateless inference through the gateway returns the same checksum a
// direct replica run does, stamped with the serving replica's name.
func TestGatewayStatelessInfer(t *testing.T) {
	c, gc := startCluster(t, 2)
	ctx := ctxT(t)
	via, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if via.Replica == "" {
		t.Fatal("gateway did not stamp replica attribution")
	}
	direct, err := client.New(c.Replicas[0].URL, nil).Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if via.OutputSum != direct.OutputSum {
		t.Fatalf("gateway checksum %#x, direct %#x", via.OutputSum, direct.OutputSum)
	}
	if via.Snapshot != nil {
		t.Fatal("stateless response carried a snapshot")
	}
}

// Sessions created through the gateway land on their ring owner and stay
// sticky: every inference of one session serves from the same replica.
func TestGatewaySessionSticky(t *testing.T) {
	c, gc := startCluster(t, 3)
	ctx := ctxT(t)
	sess, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	loc := c.Gateway.Locations()
	home, ok := loc[sess.SessionID]
	if !ok {
		t.Fatalf("session %s not vaulted: %v", sess.SessionID, loc)
	}
	for i := 0; i < 3; i++ {
		resp, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i), Session: sess.SessionID})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != home {
			t.Fatalf("infer %d served by %s, home is %s", i, resp.Replica, home)
		}
		if resp.Commands == 0 {
			t.Fatalf("session inference reported no authenticated commands")
		}
		if resp.Snapshot != nil {
			t.Fatal("piggybacked snapshot leaked to a client that didn't ask")
		}
	}
	// The client can still ask for the snapshot explicitly.
	resp, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 9, Session: sess.SessionID, ReturnSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Snapshot == nil {
		t.Fatal("ReturnSnapshot honored nowhere")
	}
	if err := gc.CloseSession(ctx, sess.SessionID); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Gateway.Locations()[sess.SessionID]; ok {
		t.Fatal("vault entry outlived the session")
	}
}

// Draining a replica migrates its sessions away live: the gateway's
// prober sees "draining" in /healthz and evacuates, after which
// inference for those sessions serves from other replicas with the
// sequence window intact.
func TestGatewayDrainEvacuates(t *testing.T) {
	c, gc := startCluster(t, 2)
	ctx := ctxT(t)

	// Create sessions until at least one lives on each replica.
	homes := map[string]string{}
	for i := 0; i < 8; i++ {
		sess, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i), Session: sess.SessionID}); err != nil {
			t.Fatal(err)
		}
		homes[sess.SessionID] = c.Gateway.Locations()[sess.SessionID]
	}
	victim := c.Replicas[0].Name
	c.Drain(victim)
	waitFor(t, 10*time.Second, "evacuation", func() bool {
		for _, home := range c.Gateway.Locations() {
			if home == victim {
				return false
			}
		}
		return true
	})
	// Every session keeps working, now on the survivor.
	for id := range homes {
		resp, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 99, Session: id})
		if err != nil {
			t.Fatalf("post-drain infer on %s: %v", id, err)
		}
		if resp.Replica == victim {
			t.Fatalf("session %s still served by draining replica", id)
		}
	}
}

// Hot reload: adding a replica bumps the ring generation and rebalances
// only the sessions whose ring owner changed; in-flight service
// continues.
func TestGatewayHotReload(t *testing.T) {
	c, gc := startCluster(t, 3)
	ctx := ctxT(t)
	ids := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		sess, err := gc.CreateSession(ctx, serve.SessionCreateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i), Session: sess.SessionID}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sess.SessionID)
	}
	before := c.Gateway.Locations()
	gen := c.Gateway.Gen()

	// Shrink to two replicas: sessions on the removed replica must re-home.
	cfg := gateway.Config{}
	removed := c.Replicas[2].Name
	for _, r := range c.Replicas[:2] {
		cfg.Replicas = append(cfg.Replicas, gateway.ReplicaConfig{Name: r.Name, URL: r.URL})
	}
	if _, err := c.Gateway.Reload(cfg); err != nil {
		t.Fatal(err)
	}
	if c.Gateway.Gen() != gen+1 {
		t.Fatalf("ring generation %d, want %d", c.Gateway.Gen(), gen+1)
	}
	after := c.Gateway.Locations()
	for _, id := range ids {
		if after[id] == removed {
			t.Fatalf("session %s still homed on removed replica", id)
		}
		if before[id] != removed && before[id] != after[id] {
			t.Fatalf("session %s moved %s→%s though its home survived", id, before[id], after[id])
		}
		if _, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: 5, Session: id}); err != nil {
			t.Fatalf("post-reload infer on %s: %v", id, err)
		}
	}
}

// A dead replica is ejected and stateless traffic retries on the
// survivor within the retry budget — the client sees no error.
func TestGatewayStatelessFailover(t *testing.T) {
	c, gc := startCluster(t, 2)
	ctx := ctxT(t)
	c.Kill(c.Replicas[1].Name)
	for i := 0; i < 6; i++ {
		resp, err := gc.Infer(ctx, serve.InferRequest{Network: "Mini", Seed: int64(i)})
		if err != nil {
			t.Fatalf("infer %d with one dead replica: %v", i, err)
		}
		if resp.Replica == c.Replicas[1].Name {
			t.Fatalf("response attributed to the dead replica")
		}
	}
}

// The gateway /healthz degrades when every replica is gone.
func TestGatewayHealthDegraded(t *testing.T) {
	c, _ := startCluster(t, 2)
	for _, r := range c.Replicas {
		c.Kill(r.Name)
	}
	waitFor(t, 10*time.Second, "all replicas ejected", func() bool {
		_, err := client.New(c.GatewayURL, nil).Infer(context.Background(),
			serve.InferRequest{Network: "Mini", Seed: 1})
		return err != nil
	})
}
