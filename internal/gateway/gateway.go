// Package gateway is the replica-sharding front tier: an HTTP proxy that
// spreads the serving API of internal/serve across N replica daemons
// while preserving the security semantics a single replica provides.
//
// The routing invariant is that a secure session's state — the command
// channel's strictly increasing sequence window and the XOR-MAC registers
// of its last inference — lives on exactly one replica at a time.
// Session-bound requests follow a consistent-hash ring keyed on session
// id; stateless inference spreads by rendezvous hash on the tenant key
// with bounded-load overflow. When placement must change (a replica
// drains, dies, or the ring membership is reloaded), the gateway migrates
// sessions through the sealed-snapshot machinery of internal/serve: the
// HMAC-sealed envelope is the only representation of session state that
// ever crosses replicas, so a migration is bit-identical by construction
// and a tampered hand-off fails closed on import.
//
// The gateway keeps a write-through session vault: every session-bound
// inference it forwards asks the replica to piggyback the post-commit
// sealed snapshot (InferRequest.ReturnSnapshot), so the vault always
// holds the latest sealed state and an abruptly killed replica's sessions
// restore on a survivor with nothing lost. Replica health follows a
// fail-open → eject → half-open FSM (health.go) fed by both active
// /healthz probes and forward-path transport errors.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seculator/internal/serve"
	"seculator/internal/serve/client"
)

// DefaultLoadFactor is the bounded-load overflow factor for stateless
// spread: the classic "power of bounded loads" setting that keeps the
// hottest replica within 25% of the mean before overflowing.
const DefaultLoadFactor = 1.25

// ClassUpstream is the gateway's own error class: no replica could serve
// the request (all candidates dead, or the retry budget ran out).
const ClassUpstream = "upstream"

// Options configures a Gateway. Either Config or ConfigPath must describe
// at least one replica.
type Options struct {
	// Config is the initial routing configuration. When ConfigPath is also
	// set, the file wins (it is the reload source of truth).
	Config Config
	// ConfigPath, when set, is loaded at start and re-loaded on SIGHUP /
	// POST /admin/reload.
	ConfigPath string
	// Health shapes the per-replica prober FSM.
	Health HealthConfig
	// AdminKey authenticates the gateway to the replicas' /admin/*
	// migration surface, and gates the gateway's own /admin/reload. All
	// replicas must share it (and must share SnapshotKey, or sealed
	// snapshots won't verify across replicas and every migration will
	// fail closed).
	AdminKey string
	// ForwardTimeout bounds one proxied request (default 2m, matching the
	// replica-side MaxTimeout default).
	ForwardTimeout time.Duration
	// RetryBudget is how many alternate replicas a retryable request may
	// try after its first pick fails (default 1: retry once).
	RetryBudget int
	// HTTPClient overrides the forwarding client (tests).
	HTTPClient *http.Client
}

func (o *Options) setDefaults() {
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 2 * time.Minute
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 1
	}
	o.Health.setDefaults()
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
}

// replica is one backend's runtime handle. Handles persist across config
// reloads (matched by name+URL) so health state and in-flight accounting
// survive a membership change that keeps the replica.
type replica struct {
	name     string
	url      string
	hp       *prober
	admin    *client.Client
	inflight atomic.Int64
}

// routing is the immutable routing view swapped atomically on reload;
// in-flight requests keep the view they started with.
type routing struct {
	gen        uint64
	ring       *Ring
	replicas   map[string]*replica
	names      []string // sorted
	loadFactor float64
}

// Gateway is the front tier. Create with New, serve Handler, stop with
// Close.
type Gateway struct {
	opts    Options
	http    *http.Client
	metrics *Metrics
	vault   *vault
	mux     *http.ServeMux

	routing atomic.Pointer[routing]
	gen     atomic.Uint64

	reloadMu sync.Mutex // serializes Reload and Rebalance

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a gateway and starts its health prober.
func New(opts Options) (*Gateway, error) {
	opts.setDefaults()
	cfg := opts.Config
	if opts.ConfigPath != "" {
		loaded, err := LoadConfig(opts.ConfigPath)
		if err != nil {
			return nil, err
		}
		cfg = loaded
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Gateway{
		opts:    opts,
		http:    opts.HTTPClient,
		metrics: NewMetrics(),
		vault:   newVault(),
		stop:    make(chan struct{}),
	}
	g.routing.Store(g.buildRouting(cfg, nil))

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/infer", g.handleInfer)
	g.mux.HandleFunc("POST /v1/sessions", g.handleSessionCreate)
	g.mux.HandleFunc("DELETE /v1/sessions/{id}", g.handleSessionDelete)
	g.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", g.handleSnapshot)
	g.mux.HandleFunc("POST /v1/sessions/restore", g.handleRestore)
	g.mux.HandleFunc("GET /v1/designs", g.handleDesigns)
	g.mux.HandleFunc("GET /healthz", g.handleHealth)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("POST /admin/reload", g.handleReload)

	g.wg.Add(1)
	go g.runProber()
	return g, nil
}

// buildRouting constructs a routing view, reusing handles from prev for
// replicas whose (name, URL) survive the change.
func (g *Gateway) buildRouting(cfg Config, prev *routing) *routing {
	lf := cfg.LoadFactor
	if lf == 0 {
		lf = DefaultLoadFactor
	}
	rt := &routing{
		gen:        g.gen.Add(1),
		replicas:   make(map[string]*replica, len(cfg.Replicas)),
		loadFactor: lf,
	}
	for _, rc := range cfg.Replicas {
		if prev != nil {
			if old := prev.replicas[rc.Name]; old != nil && old.url == rc.URL {
				rt.replicas[rc.Name] = old
				rt.names = append(rt.names, rc.Name)
				continue
			}
		}
		admin := client.New(rc.URL, g.http)
		admin.SetAdminKey(g.opts.AdminKey)
		rt.replicas[rc.Name] = &replica{
			name:  rc.Name,
			url:   strings.TrimRight(rc.URL, "/"),
			hp:    newProber(g.opts.Health),
			admin: admin,
		}
		rt.names = append(rt.names, rc.Name)
	}
	rt.ring = NewRing(rt.names, cfg.Vnodes)
	rt.names = rt.ring.Replicas()
	return rt
}

// Handler returns the HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Gen returns the current ring generation (monotone; bumps on reload).
func (g *Gateway) Gen() uint64 { return g.routing.Load().gen }

// Close stops the prober. It does not touch the replicas.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Reload swaps in a new configuration and rebalances the vault: sessions
// whose ring owner changed migrate live to their new home. In-flight
// requests finish on the routing view they started with.
func (g *Gateway) Reload(cfg Config) (moved int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	g.reloadMu.Lock()
	defer g.reloadMu.Unlock()
	prev := g.routing.Load()
	g.routing.Store(g.buildRouting(cfg, prev))
	return g.rebalanceLocked(), nil
}

// ReloadFromFile re-reads ConfigPath (the SIGHUP path).
func (g *Gateway) ReloadFromFile() (int, error) {
	if g.opts.ConfigPath == "" {
		return 0, fmt.Errorf("gateway: no -config file to reload")
	}
	cfg, err := LoadConfig(g.opts.ConfigPath)
	if err != nil {
		return 0, err
	}
	return g.Reload(cfg)
}

// ---- replica selection ----

// available returns the replicas currently accepting forwarded traffic,
// in the order of names.
func available(rt *routing, names []string, now time.Time) []*replica {
	out := make([]*replica, 0, len(names))
	for _, n := range names {
		if rep := rt.replicas[n]; rep != nil && rep.hp.Available(now) {
			out = append(out, rep)
		}
	}
	return out
}

// sessionTarget walks key's ring sequence for the first replica whose
// prober passes ok ((*prober).Available or .AcceptingSessions), skipping
// exclude.
func sessionTarget(rt *routing, key, exclude string, now time.Time, ok func(*prober, time.Time) bool) *replica {
	for _, n := range rt.ring.Seq(key) {
		if n == exclude {
			continue
		}
		if rep := rt.replicas[n]; rep != nil && ok(rep.hp, now) {
			return rep
		}
	}
	return nil
}

// statelessCandidates orders the available replicas for a stateless
// request: rendezvous preference on the tenant key, with bounded-load
// overflow — a candidate whose in-flight count is already past the load
// bound yields to the next, so one hot tenant key cannot bury its
// favourite replica while others idle.
func statelessCandidates(rt *routing, tenantKey string, now time.Time) []*replica {
	avail := available(rt, Rendezvous(rt.names, tenantKey), now)
	if len(avail) <= 1 {
		return avail
	}
	var total int64
	for _, rep := range avail {
		total += rep.inflight.Load()
	}
	bound := int64(rt.loadFactor*float64(total+1)/float64(len(avail))) + 1
	under := make([]*replica, 0, len(avail))
	over := make([]*replica, 0, 2)
	for _, rep := range avail {
		if rep.inflight.Load() < bound {
			under = append(under, rep)
		} else {
			over = append(over, rep)
		}
	}
	return append(under, over...)
}

// tenantKeyOf extracts the routing key of a request's tenant: the API key
// or bearer token when present, else a shared anonymous key (single-tenant
// deployments spread by load alone via the bounded-load overflow).
func tenantKeyOf(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if a := r.Header.Get("Authorization"); a != "" {
		return a
	}
	return "anonymous"
}

// ---- forwarding ----

// forwardResult is one proxied exchange: the replica's status and raw
// body, relayed (or patched) downstream.
type forwardResult struct {
	status int
	body   []byte
}

// forward proxies one request to a replica, copying the tenant auth
// headers. A non-nil error is a transport failure (connection refused,
// reset, timeout) — the HTTP-level outcome, whatever the status, comes
// back as a forwardResult. Transport failures feed the replica's health
// FSM; an ejection triggers failover of its vaulted sessions.
func (g *Gateway) forward(ctx context.Context, rep *replica, method, path string, src *http.Request, in any) (forwardResult, error) {
	var body io.Reader
	var bodyScratch *jsonScratch
	if in != nil {
		s, err := encodeJSON(in)
		if err != nil {
			return forwardResult{}, err
		}
		bodyScratch = s
		body = bytes.NewReader(s.buf.Bytes())
	}
	// The pooled body bytes must outlive the round trip (http.Do may re-read
	// them via GetBody); they recycle once the exchange is over.
	defer func() {
		if bodyScratch != nil {
			putJSON(bodyScratch)
		}
	}()
	ctx, cancel := context.WithTimeout(ctx, g.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, rep.url+path, body)
	if err != nil {
		return forwardResult{}, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if src != nil {
		if k := src.Header.Get("X-API-Key"); k != "" {
			req.Header.Set("X-API-Key", k)
		}
		if a := src.Header.Get("Authorization"); a != "" {
			req.Header.Set("Authorization", a)
		}
	}

	rep.inflight.Add(1)
	start := time.Now()
	resp, err := g.http.Do(req)
	rep.inflight.Add(-1)
	if err != nil {
		g.metrics.Forward(rep.name, 0, false)
		if rep.hp.ObserveFailure(time.Now()) {
			go g.failoverAll(rep.name)
		}
		return forwardResult{}, err
	}
	defer resp.Body.Close()
	data, err := readInto(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		g.metrics.Forward(rep.name, 0, false)
		if rep.hp.ObserveFailure(time.Now()) {
			go g.failoverAll(rep.name)
		}
		return forwardResult{}, err
	}
	g.metrics.Forward(rep.name, time.Since(start), true)
	rep.hp.ObserveSuccess(time.Now())
	return forwardResult{status: resp.StatusCode, body: data}, nil
}

// relay writes a forwarded response downstream verbatim.
func (g *Gateway) relay(w http.ResponseWriter, fr forwardResult) {
	g.metrics.Request(fr.status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(fr.status)
	_, _ = w.Write(fr.body)
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, body serve.ErrorBody) {
	g.metrics.Request(status)
	writeJSONPooled(w, status, &body)
}

func (g *Gateway) upstreamError(w http.ResponseWriter, why string) {
	g.writeError(w, http.StatusBadGateway, serve.ErrorBody{
		Error: "gateway: " + why, Class: ClassUpstream, RetryAfterMs: 1000,
	})
}

// replicaAlive does one quick liveness check outside the prober cadence —
// the guard before a session failover (restoring a vault snapshot away
// from a replica that still holds newer state would fork the session's
// sequence window, so the gateway only fails over when the source is
// demonstrably gone).
func (g *Gateway) replicaAlive(rep *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.Health.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.http.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ---- handlers ----

func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req serve.InferRequest
	if err := decodeJSONBody(r.Body, 8<<20, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, serve.ErrorBody{Error: "malformed JSON: " + err.Error(), Class: serve.ClassBadRequest})
		return
	}
	rt := g.routing.Load()
	if req.Session != "" {
		g.sessionInfer(w, r, rt, &req)
		return
	}
	g.statelessInfer(w, r, rt, &req)
}

// statelessInfer spreads seedful inference by rendezvous + bounded load.
// A stateless request is deterministic in its (network, seed, input), so
// a transport failure or replica-side 5xx retries on the next candidate
// within the budget.
func (g *Gateway) statelessInfer(w http.ResponseWriter, r *http.Request, rt *routing, req *serve.InferRequest) {
	candidates := statelessCandidates(rt, tenantKeyOf(r), time.Now())
	if len(candidates) == 0 {
		g.upstreamErrorStatic(w, preNoReplica)
		return
	}
	attempts := 1 + g.opts.RetryBudget
	if attempts > len(candidates) {
		attempts = len(candidates)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		rep := candidates[i]
		if i > 0 {
			g.metrics.Retry()
		}
		fr, err := g.forward(r.Context(), rep, http.MethodPost, "/v1/infer", r, req)
		if err != nil {
			lastErr = err
			continue
		}
		if fr.status >= 500 && i+1 < attempts {
			lastErr = fmt.Errorf("replica %s returned %d", rep.name, fr.status)
			continue
		}
		g.relayInfer(w, fr, rep.name, req.ReturnSnapshot, "")
		return
	}
	g.upstreamError(w, fmt.Sprintf("all replicas failed: %v", lastErr))
}

// sessionInfer routes a session-bound inference to the session's home
// replica, write-through-vaulting the piggybacked snapshot. On a
// transport failure with the home demonstrably dead, it restores the
// vaulted snapshot at the next replica on the ring and retries once.
func (g *Gateway) sessionInfer(w http.ResponseWriter, r *http.Request, rt *routing, req *serve.InferRequest) {
	id := req.Session
	now := time.Now()
	var rep *replica
	ent := g.vault.get(id)
	if ent != nil {
		rep = rt.replicas[ent.home()]
	}
	if rep == nil {
		// Unknown to the vault (predates the gateway, or its home left the
		// config): the ring owner is the best guess, and the piggybacked
		// snapshot below adopts it into the vault on success.
		rep = sessionTarget(rt, id, "", now, (*prober).Available)
	}
	if rep == nil {
		g.upstreamError(w, "no available replica for session")
		return
	}

	wantSnapshot := req.ReturnSnapshot // the client's own wish
	req.ReturnSnapshot = true          // the vault's write-through hook
	fr, err := g.forward(r.Context(), rep, http.MethodPost, "/v1/infer", r, req)
	if err != nil {
		alt := g.sessionFailover(rt, id, rep, now)
		if alt == nil {
			g.upstreamError(w, fmt.Sprintf("session home %s unreachable: %v", rep.name, err))
			return
		}
		g.metrics.Retry()
		rep = alt
		fr, err = g.forward(r.Context(), rep, http.MethodPost, "/v1/infer", r, req)
		if err != nil {
			g.upstreamError(w, fmt.Sprintf("failover replica %s unreachable: %v", rep.name, err))
			return
		}
	}
	g.relayInfer(w, fr, rep.name, wantSnapshot, id)
}

// sessionFailover decides whether a failed session forward may move to an
// alternate, and prepares the alternate by restoring the vaulted
// snapshot. It returns nil when failing over would be unsafe (the home
// may still hold live state) or impossible (no snapshot, no survivor).
func (g *Gateway) sessionFailover(rt *routing, id string, failed *replica, now time.Time) *replica {
	if g.replicaAlive(failed) {
		return nil // transient transport blip; the home still owns the state
	}
	env := (*serve.SnapshotEnvelope)(nil)
	if ent := g.vault.get(id); ent != nil {
		env = ent.envelope()
	}
	if env == nil {
		return nil
	}
	alt := sessionTarget(rt, id, failed.name, now, (*prober).Available)
	if alt == nil {
		return nil
	}
	if !g.restoreAt(alt, env) {
		return nil
	}
	g.vault.put(id, alt.name, env)
	g.metrics.Migration(MigrateFailover)
	return alt
}

// relayInfer relays an infer response, patching a 200 body: the replica
// attribution is stamped in, the piggybacked snapshot is captured into
// the vault and stripped unless the client asked for it. Error bodies
// relay verbatim, but a session-killing error (breach eviction, unknown
// session) also drops the vault entry — the vault never outlives the
// session it shadows.
func (g *Gateway) relayInfer(w http.ResponseWriter, fr forwardResult, replicaName string, wantSnapshot bool, sessionID string) {
	if fr.status != http.StatusOK {
		if sessionID != "" {
			var eb serve.ErrorBody
			if json.Unmarshal(fr.body, &eb) == nil &&
				(eb.SessionEvicted || eb.Class == serve.ClassUnknownSession) {
				g.vault.drop(sessionID)
			}
		}
		g.relay(w, fr)
		return
	}
	var resp serve.InferResponse
	if err := json.Unmarshal(fr.body, &resp); err != nil {
		g.relay(w, fr)
		return
	}
	if sessionID != "" && resp.Snapshot != nil {
		g.vault.put(sessionID, replicaName, resp.Snapshot)
	}
	if !wantSnapshot {
		resp.Snapshot = nil
	}
	resp.Replica = replicaName
	g.metrics.Request(fr.status)
	writeJSONPooled(w, fr.status, &resp)
}

// handleSessionCreate places a new session. The replica mints the id, so
// the gateway creates on the tenant's rendezvous choice among replicas
// accepting sessions, then moves the newborn session to its ring owner —
// keeping the "sessions live at their ring owner" steady state that makes
// later lookups and rebalances cheap. The move is the same sealed
// snapshot → restore → evict path as every other migration, so routine
// session creation continuously exercises the machinery failover depends
// on.
func (g *Gateway) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req serve.SessionCreateRequest
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, serve.ErrorBody{Error: err.Error(), Class: serve.ClassBadRequest})
		return
	}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			g.writeError(w, http.StatusBadRequest, serve.ErrorBody{Error: "malformed JSON: " + err.Error(), Class: serve.ClassBadRequest})
			return
		}
	}
	rt := g.routing.Load()
	now := time.Now()
	accepting := make([]*replica, 0, len(rt.names))
	for _, n := range Rendezvous(rt.names, tenantKeyOf(r)) {
		if rep := rt.replicas[n]; rep != nil && rep.hp.AcceptingSessions(now) {
			accepting = append(accepting, rep)
		}
	}
	if len(accepting) == 0 {
		g.upstreamErrorStatic(w, preNoSessionAccepting)
		return
	}
	attempts := 1 + g.opts.RetryBudget
	if attempts > len(accepting) {
		attempts = len(accepting)
	}
	var fr forwardResult
	var src *replica
	var lastErr error
	for i := 0; i < attempts; i++ {
		src = accepting[i]
		if i > 0 {
			g.metrics.Retry()
		}
		fr, err = g.forward(r.Context(), src, http.MethodPost, "/v1/sessions", r, &req)
		if err != nil {
			lastErr = err
			continue
		}
		lastErr = nil
		break
	}
	if lastErr != nil {
		g.upstreamError(w, fmt.Sprintf("session create failed: %v", lastErr))
		return
	}
	if fr.status != http.StatusCreated {
		g.relay(w, fr)
		return
	}
	var created serve.SessionCreateResponse
	if err := json.Unmarshal(fr.body, &created); err != nil || created.SessionID == "" {
		g.relay(w, fr)
		return
	}
	g.placeSession(rt, src, created.SessionID, now)
	g.relay(w, fr)
}

// placeSession vaults a newborn session and moves it to its ring owner
// when that differs from where it was minted.
func (g *Gateway) placeSession(rt *routing, src *replica, id string, now time.Time) {
	owner := sessionTarget(rt, id, "", now, (*prober).AcceptingSessions)
	if owner != nil && owner.name != src.name {
		if env := g.migrateLive(src, owner, id, MigratePlace); env != nil {
			g.vault.put(id, owner.name, env)
			return
		}
	}
	// Already home (or the move failed; the rebalancer will retry): seed
	// the vault with the newborn state so even a pre-first-infer kill of
	// the replica loses nothing.
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.ForwardTimeout)
	defer cancel()
	if snap, err := src.admin.AdminSnapshot(ctx, id); err == nil {
		g.vault.put(id, src.name, &snap.Snapshot)
	} else {
		g.vault.put(id, src.name, nil)
	}
}

func (g *Gateway) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt := g.routing.Load()
	rep := g.homeOf(rt, id)
	if rep == nil {
		g.upstreamErrorStatic(w, preNoSessionReplica)
		return
	}
	fr, err := g.forward(r.Context(), rep, http.MethodDelete, "/v1/sessions/"+id, r, nil)
	if err != nil {
		g.upstreamError(w, err.Error())
		return
	}
	if fr.status < 300 || fr.status == http.StatusNotFound {
		g.vault.drop(id)
	}
	g.relay(w, fr)
}

func (g *Gateway) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt := g.routing.Load()
	rep := g.homeOf(rt, id)
	if rep == nil {
		g.upstreamErrorStatic(w, preNoSessionReplica)
		return
	}
	fr, err := g.forward(r.Context(), rep, http.MethodGet, "/v1/sessions/"+id+"/snapshot", r, nil)
	if err != nil {
		g.upstreamError(w, err.Error())
		return
	}
	g.relay(w, fr)
}

// handleRestore imports a tenant's sealed snapshot. The envelope payload
// carries the session id in the clear (the seal is authentication, not
// encryption), so the gateway can route the import straight to the ring
// owner; the owner's MAC verification remains the integrity gate.
func (g *Gateway) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req serve.RestoreRequest
	if err := decodeJSONBody(r.Body, 1<<20, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, serve.ErrorBody{Error: "malformed JSON: " + err.Error(), Class: serve.ClassBadRequest})
		return
	}
	var peek struct {
		ID string `json:"id"`
	}
	_ = json.Unmarshal(req.Snapshot.Payload, &peek)
	rt := g.routing.Load()
	now := time.Now()
	var rep *replica
	if peek.ID != "" {
		rep = sessionTarget(rt, peek.ID, "", now, (*prober).AcceptingSessions)
	}
	if rep == nil {
		for _, cand := range available(rt, rt.names, now) {
			if cand.hp.AcceptingSessions(now) {
				rep = cand
				break
			}
		}
	}
	if rep == nil {
		g.upstreamErrorStatic(w, preNoSessionAccepting)
		return
	}
	fr, err := g.forward(r.Context(), rep, http.MethodPost, "/v1/sessions/restore", r, &req)
	if err != nil {
		g.upstreamError(w, err.Error())
		return
	}
	if fr.status == http.StatusCreated && peek.ID != "" {
		env := req.Snapshot
		g.vault.put(peek.ID, rep.name, &env)
	}
	g.relay(w, fr)
}

func (g *Gateway) handleDesigns(w http.ResponseWriter, r *http.Request) {
	rt := g.routing.Load()
	for _, rep := range available(rt, rt.names, time.Now()) {
		fr, err := g.forward(r.Context(), rep, http.MethodGet, "/v1/designs", r, nil)
		if err == nil {
			g.relay(w, fr)
			return
		}
	}
	g.upstreamErrorStatic(w, preNoReplica)
}

// homeOf resolves a session's current replica: the vault entry when the
// gateway has one, else the first available replica on the id's ring walk.
func (g *Gateway) homeOf(rt *routing, id string) *replica {
	now := time.Now()
	if ent := g.vault.get(id); ent != nil {
		if rep := rt.replicas[ent.home()]; rep != nil && rep.hp.Available(now) {
			return rep
		}
	}
	return sessionTarget(rt, id, "", now, (*prober).Available)
}

// GatewayHealth is the gateway's own GET /healthz body.
type GatewayHealth struct {
	Status    string `json:"status"` // "ok" or "degraded" (no replica available)
	Replicas  int    `json:"replicas"`
	Available int    `json:"available"`
	Sessions  int    `json:"sessions"` // vaulted sessions
	RingGen   uint64 `json:"ring_generation"`
}

func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rt := g.routing.Load()
	avail := len(available(rt, rt.names, time.Now()))
	resp := GatewayHealth{
		Status: "ok", Replicas: len(rt.names), Available: avail,
		Sessions: g.vault.size(), RingGen: rt.gen,
	}
	if avail == 0 {
		resp.Status = "degraded"
	}
	writeJSONPooled(w, http.StatusOK, &resp)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rt := g.routing.Load()
	now := time.Now()
	views := make([]ReplicaView, 0, len(rt.names))
	for _, n := range rt.names {
		rep := rt.replicas[n]
		state, draining, ejects := rep.hp.Snapshot(now)
		views = append(views, ReplicaView{
			Name: n, State: state, Draining: draining,
			Inflight: rep.inflight.Load(), Ejections: ejects,
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, g.metrics.Render(rt.gen, g.vault.size(), views))
}

// ReloadResponse is the POST /admin/reload body.
type ReloadResponse struct {
	Generation uint64 `json:"generation"`
	Migrated   int    `json:"migrated"`
}

func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	if g.opts.AdminKey != "" && !hmacEqual(r.Header.Get("X-Admin-Key"), g.opts.AdminKey) {
		g.writeError(w, http.StatusUnauthorized, serve.ErrorBody{Error: "gateway: admin key required", Class: serve.ClassUnauthorized})
		return
	}
	var moved int
	var err error
	if r.ContentLength != 0 {
		var cfg Config
		if derr := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&cfg); derr != nil {
			g.writeError(w, http.StatusBadRequest, serve.ErrorBody{Error: "malformed JSON: " + derr.Error(), Class: serve.ClassBadRequest})
			return
		}
		moved, err = g.Reload(cfg)
	} else {
		moved, err = g.ReloadFromFile()
	}
	if err != nil {
		g.writeError(w, http.StatusBadRequest, serve.ErrorBody{Error: err.Error(), Class: serve.ClassConfig})
		return
	}
	g.metrics.Request(http.StatusOK)
	writeJSONPooled(w, http.StatusOK, &ReloadResponse{Generation: g.Gen(), Migrated: moved})
}

// ---- active health probing ----

func (g *Gateway) runProber() {
	defer g.wg.Done()
	t := time.NewTicker(g.opts.Health.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	rt := g.routing.Load()
	var wg sync.WaitGroup
	for _, n := range rt.names {
		rep := rt.replicas[n]
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.probe(rep)
		}()
	}
	wg.Wait()
}

func (g *Gateway) probe(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.Health.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := g.http.Do(req)
	if err != nil {
		if rep.hp.ObserveFailure(time.Now()) {
			g.failoverAll(rep.name)
		}
		return
	}
	defer resp.Body.Close()
	var h serve.HealthResponse
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h)
	if resp.StatusCode != http.StatusOK || decodeErr != nil {
		if rep.hp.ObserveFailure(time.Now()) {
			g.failoverAll(rep.name)
		}
		return
	}
	rep.hp.ObserveSuccess(time.Now())
	if rep.hp.SetDraining(h.Status == "draining") {
		g.evacuate(rep.name)
	}
}
