package gateway

import (
	"sync"
	"time"
)

// health.go — per-replica availability tracking. The state machine
// mirrors the tenant quarantine Breaker of internal/serve, transposed
// from "is this tenant attacking us" to "is this replica alive":
//
//	Healthy ──FailAfter consecutive failures──▶ Ejected ──EjectFor──▶ Probing
//	   ▲                                           ▲                    │
//	   │                                           │ probe failure      │
//	   └──────── RecoverAfter clean probes ────────┴────────────────────┘
//
// The gateway fails open: a replica starts Healthy and serves traffic
// until observed otherwise, so a cold gateway in front of a warm fleet
// never blackholes requests waiting for its first probe round. Failures
// come from two feeds — the active /healthz prober and forward-path
// transport errors — so a dead replica ejects after FailAfter quick
// forward failures without waiting out probe intervals.
//
// Draining is deliberately not a state of this FSM: a draining replica is
// *healthy* (it finishes in-flight micro-batches and still serves
// session inference while its sessions migrate away); it just refuses new
// placements. It is tracked as an overlay flag read from the replica's
// own /healthz status.

// HealthState is one replica's availability state.
type HealthState int32

const (
	HealthHealthy HealthState = iota
	HealthEjected
	HealthProbing
)

// String renders the state for /metrics and logs.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthEjected:
		return "ejected"
	case HealthProbing:
		return "probing"
	}
	return "unknown"
}

// HealthConfig shapes the prober. The zero value gets defaults sized for
// the simulated system (sub-second detection without probe spam).
type HealthConfig struct {
	// ProbeInterval is the active /healthz probe period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 2s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive failures (probe or forward) eject
	// a replica (default 3).
	FailAfter int
	// EjectFor is the hold before an ejected replica is probed again
	// (default 2s).
	EjectFor time.Duration
	// RecoverAfter is how many consecutive probe successes return an
	// ejected replica to service (default 2).
	RecoverAfter int
}

func (c *HealthConfig) setDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.EjectFor <= 0 {
		c.EjectFor = 2 * time.Second
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 2
	}
}

// prober is one replica's health record. All methods take the current
// time explicitly so tests drive the FSM deterministically.
type prober struct {
	mu  sync.Mutex
	cfg HealthConfig

	state    HealthState
	fails    int       // consecutive failures while Healthy
	oks      int       // consecutive successes while Probing
	until    time.Time // eject hold deadline
	draining bool      // overlay: replica reported "draining"
	ejects   uint64    // monotone ejection count (metrics)
}

func newProber(cfg HealthConfig) *prober {
	cfg.setDefaults()
	return &prober{cfg: cfg, state: HealthHealthy}
}

// advance moves Ejected→Probing once the hold expires. Caller holds p.mu.
func (p *prober) advance(now time.Time) {
	if p.state == HealthEjected && !now.Before(p.until) {
		p.state = HealthProbing
		p.oks = 0
	}
}

// Available reports whether the replica may receive forwarded traffic:
// healthy, or probing (half-open lets real requests double as probes).
func (p *prober) Available(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advance(now)
	return p.state != HealthEjected
}

// AcceptingSessions reports whether new sessions may be placed here:
// available and not draining.
func (p *prober) AcceptingSessions(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advance(now)
	return p.state != HealthEjected && !p.draining
}

// ObserveSuccess feeds one successful probe or forward.
func (p *prober) ObserveSuccess(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advance(now)
	switch p.state {
	case HealthHealthy:
		p.fails = 0
	case HealthProbing:
		p.oks++
		if p.oks >= p.cfg.RecoverAfter {
			p.state = HealthHealthy
			p.fails = 0
		}
	}
}

// ObserveFailure feeds one failed probe or forward-path transport error.
// It reports whether this observation ejected the replica.
func (p *prober) ObserveFailure(now time.Time) (ejected bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advance(now)
	switch p.state {
	case HealthHealthy:
		p.fails++
		if p.fails >= p.cfg.FailAfter {
			p.eject(now)
			return true
		}
	case HealthProbing:
		// One bad probe re-ejects: a recovering replica earns its way
		// back with RecoverAfter consecutive successes.
		p.eject(now)
		return true
	}
	return false
}

// eject transitions to Ejected. Caller holds p.mu.
func (p *prober) eject(now time.Time) {
	p.state = HealthEjected
	p.until = now.Add(p.cfg.EjectFor)
	p.fails = 0
	p.oks = 0
	p.ejects++
}

// SetDraining updates the drain overlay from a probe's /healthz body and
// reports whether the flag newly turned on (the evacuate trigger).
func (p *prober) SetDraining(d bool) (newlyDraining bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	newlyDraining = d && !p.draining
	p.draining = d
	return newlyDraining
}

// Snapshot returns (state, draining, ejections) for /metrics.
func (p *prober) Snapshot(now time.Time) (HealthState, bool, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advance(now)
	return p.state, p.draining, p.ejects
}
