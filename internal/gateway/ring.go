package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring.go — the placement maths of the gateway, kept pure so the
// rebalance property ("adding a replica moves at most ~K/N sessions") is
// testable without any HTTP machinery.
//
// Two hash families split the traffic classes:
//
//   - Session-bound requests ride a consistent-hash ring keyed on session
//     id. Each replica projects Vnodes points onto the 64-bit circle; a
//     session belongs to the first point at or after its own hash. Adding
//     or removing one replica only reassigns the keys that fall into that
//     replica's arcs — the property the rebalancer depends on to keep
//     migrations (each a sealed snapshot round trip) proportional to the
//     change, not to the fleet.
//
//   - Stateless inference has no placement state worth preserving, so it
//     spreads by rendezvous hashing on the tenant key: every replica
//     scores hash(replica, tenant), highest score wins, and the full
//     descending order doubles as the retry/overflow preference list.

// DefaultVnodes is the per-replica virtual-node count. 128 points per
// replica keeps the arc-length imbalance low single-digit percent at the
// fleet sizes this gateway targets while the ring stays a few KB.
const DefaultVnodes = 128

type ringPoint struct {
	hash uint64
	name string
}

// Ring is an immutable consistent-hash ring over a replica set. Build a
// new one on membership change and swap it in; lookups are lock-free.
type Ring struct {
	points []ringPoint
	names  []string
}

// NewRing builds a ring with vnodes points per replica (0 means
// DefaultVnodes). Point collisions resolve by name order so the ring is
// deterministic across processes — every gateway instance with the same
// membership computes the same placement.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{names: append([]string(nil), names...)}
	sort.Strings(r.names)
	r.points = make([]ringPoint, 0, len(r.names)*vnodes)
	for _, n := range r.names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), name: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

// Replicas returns the member names (sorted).
func (r *Ring) Replicas() []string { return r.names }

// Owner returns the replica owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.at(key)].name
}

// at locates the first point at or after hash(key), wrapping.
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Seq returns every replica in ring order starting at key's owner — the
// preference list a router walks when the owner is ejected or draining.
func (r *Ring) Seq(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	for i, start := 0, r.at(key); i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}

// Rendezvous orders names by descending rendezvous score for key: the
// stateless-spread preference list. Ties break by name so the order is
// total and deterministic.
func Rendezvous(names []string, key string) []string {
	out := append([]string(nil), names...)
	score := make(map[string]uint64, len(out))
	for _, n := range out {
		score[n] = hash64(n + "|" + key)
	}
	sort.Slice(out, func(i, j int) bool {
		if score[out[i]] != score[out[j]] {
			return score[out[i]] > score[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
